#include "phys/pulse.hh"

#include <algorithm>
#include <cmath>
#include <complex>

#include "phys/fft.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"

namespace tlsim
{
namespace phys
{

using Complex = std::complex<double>;

PulseSimulator::PulseSimulator(const Technology &tech_,
                               std::size_t num_samples, double window_)
    : tech(tech_), solver(tech_), numSamples(num_samples),
      window(window_ > 0.0 ? window_ : 8.0 * tech_.cycleTime())
{
    TLSIM_ASSERT(isPowerOfTwo(numSamples), "FFT size must be 2^k");
}

const std::vector<double> &
PulseSimulator::acTableFor(const WireGeometry &geom, std::size_t n) const
{
    for (const auto &t : acTables) {
        if (t.n == n && t.geom.width == geom.width &&
            t.geom.spacing == geom.spacing &&
            t.geom.height == geom.height &&
            t.geom.thickness == geom.thickness) {
            return t.r;
        }
    }
    AcTable t;
    t.geom = geom;
    t.n = n;
    t.r.assign(n / 2 + 1, 0.0);
    const double span = static_cast<double>(n) /
                        static_cast<double>(numSamples) * window;
    for (std::size_t k = 1; k <= n / 2; ++k) {
        double freq = static_cast<double>(k) / span;
        t.r[k] = solver.acResistance(geom, freq);
    }
    acTables.push_back(std::move(t));
    return acTables.back().r;
}

std::vector<double>
PulseSimulator::propagate(std::vector<Complex> signal,
                          const WireGeometry &geom, double length,
                          double source_r) const
{
    const LineParams params = solver.extract(geom);
    const double z0_nominal = params.z0();
    const double rs = source_r > 0.0 ? source_r : z0_nominal;
    const std::size_t n = signal.size();
    const double span = static_cast<double>(n) /
                        static_cast<double>(numSamples) * window;
    const std::vector<double> &r_ac_table = acTableFor(geom, n);

    fft(signal);

    // Apply the telegrapher transfer function per frequency bin:
    //   H = 2 Z0(w) / (Z0(w) + Rs) * e^{-gl} / (1 - Gs e^{-2gl})
    // with an open (fully reflecting) receiver.
    for (std::size_t k = 0; k <= n / 2; ++k) {
        Complex h(1.0, 0.0);
        if (k > 0) {
            double freq = static_cast<double>(k) / span;
            double omega = 2.0 * M_PI * freq;
            double r_ac = r_ac_table[k];
            Complex series(r_ac, omega * params.inductance);
            Complex shunt(0.0, omega * params.capacitance);
            Complex gamma = std::sqrt(series * shunt);
            Complex z0 = std::sqrt(series / shunt);
            Complex gs = (Complex(rs, 0.0) - z0) /
                         (Complex(rs, 0.0) + z0);
            Complex prop = std::exp(-gamma * length);
            Complex denom = Complex(1.0, 0.0) - gs * prop * prop;
            h = 2.0 * z0 / (z0 + Complex(rs, 0.0)) * prop / denom;
        }
        signal[k] *= h;
        if (k > 0 && k < n / 2) {
            // Maintain conjugate symmetry for a real output signal.
            signal[n - k] *= std::conj(h);
        }
    }

    ifft(signal);
    std::vector<double> out(n);
    for (std::size_t i = 0; i < n; ++i)
        out[i] = signal[i].real();
    return out;
}

std::vector<Complex>
PulseSimulator::computeSpectrum(const WireGeometry &geom, double length,
                                double source_r) const
{
    // Build the driver-side trapezoidal pulse: one bit time wide,
    // 10 ps edges, amplitude Vdd.
    const double t_bit = tech.cycleTime();
    const double t_edge = 10e-12;
    const double dt = window / static_cast<double>(numSamples);

    std::vector<Complex> signal(numSamples, Complex(0.0, 0.0));
    for (std::size_t i = 0; i < numSamples; ++i) {
        double t = static_cast<double>(i) * dt;
        double v = 0.0;
        if (t < t_edge) {
            v = t / t_edge;
        } else if (t < t_bit) {
            v = 1.0;
        } else if (t < t_bit + t_edge) {
            v = 1.0 - (t - t_bit) / t_edge;
        }
        signal[i] = Complex(v * tech.vdd, 0.0);
    }
    auto wave = propagate(std::move(signal), geom, length, source_r);
    std::vector<Complex> out(numSamples);
    for (std::size_t i = 0; i < numSamples; ++i)
        out[i] = Complex(wave[i], 0.0);
    return out;
}

std::vector<double>
PulseSimulator::waveform(const WireGeometry &geom, double length,
                         double source_r) const
{
    auto spectrum = computeSpectrum(geom, length, source_r);
    std::vector<double> out(numSamples);
    for (std::size_t i = 0; i < numSamples; ++i)
        out[i] = spectrum[i].real();
    return out;
}

PulseResult
PulseSimulator::simulate(const WireGeometry &geom, double length,
                         double source_r) const
{
    auto wave = waveform(geom, length, source_r);
    const double dt = window / static_cast<double>(numSamples);
    const double half = 0.5 * tech.vdd;
    const double t_edge = 10e-12;

    PulseResult result;

    // Peak amplitude.
    double peak = 0.0;
    for (double v : wave)
        peak = std::max(peak, v);
    result.peakAmplitude = peak / tech.vdd;

    // First 50% crossing (receiver) relative to the driver's 50%
    // crossing at t_edge/2.
    double t_cross = -1.0;
    for (std::size_t i = 1; i < wave.size(); ++i) {
        if (wave[i - 1] < half && wave[i] >= half) {
            double frac = (half - wave[i - 1]) / (wave[i] - wave[i - 1]);
            t_cross = (static_cast<double>(i - 1) + frac) * dt;
            break;
        }
    }
    if (t_cross >= 0.0)
        result.delay = t_cross - 0.5 * t_edge;

    // Time spent above 50% of Vdd (contiguous from first crossing).
    double width = 0.0;
    for (std::size_t i = 0; i < wave.size(); ++i) {
        if (wave[i] >= half)
            width += dt;
    }
    result.pulseWidth = width;

    result.amplitudeOk = result.peakAmplitude >= 0.75;
    result.widthOk = result.pulseWidth >= 0.40 * tech.cycleTime();
    return result;
}

std::vector<double>
PulseSimulator::trainWaveform(const WireGeometry &geom, double length,
                              int num_bits, std::uint64_t seed) const
{
    TLSIM_ASSERT(num_bits > 0, "train needs at least one bit");
    const double t_bit = tech.cycleTime();
    const double t_edge = 10e-12;

    // Size the sample count so the train plus a settling tail fits at
    // the simulator's fixed sampling rate (propagate() derives bin
    // frequencies from the sample count relative to the base window).
    const double dt_base = window / static_cast<double>(numSamples);
    auto samples_per_bit =
        static_cast<std::size_t>(std::ceil(t_bit / dt_base));
    std::size_t n = 1;
    while (n < static_cast<std::size_t>(num_bits + 8) * samples_per_bit)
        n <<= 1;

    // Build the NRZ bit train with linear edges.
    Rng rng(seed);
    std::vector<int> bits(static_cast<std::size_t>(num_bits));
    for (auto &b : bits)
        b = rng.chance(0.5) ? 1 : 0;
    auto bit_at = [&](int idx) {
        return (idx >= 0 && idx < num_bits)
                   ? bits[static_cast<std::size_t>(idx)]
                   : 0;
    };

    const double total = static_cast<double>(n) /
                         static_cast<double>(numSamples) * window;
    const double dt = total / static_cast<double>(n);
    std::vector<Complex> signal(n, Complex(0.0, 0.0));
    for (std::size_t i = 0; i < n; ++i) {
        double t = static_cast<double>(i) * dt;
        int idx = static_cast<int>(t / t_bit);
        double phase = t - idx * t_bit;
        int cur = bit_at(idx);
        int before = bit_at(idx - 1);
        double v = cur;
        if (phase < t_edge && cur != before)
            v = before + (cur - before) * (phase / t_edge);
        signal[i] = Complex(v * tech.vdd, 0.0);
    }

    return propagate(std::move(signal), geom, length, -1.0);
}

EyeResult
PulseSimulator::eyeDiagram(const WireGeometry &geom, double length,
                           int num_bits, std::uint64_t seed) const
{
    auto wave = trainWaveform(geom, length, num_bits, seed);

    // Recover the bit pattern (same deterministic draw).
    Rng rng(seed);
    std::vector<int> bits(static_cast<std::size_t>(num_bits));
    for (auto &b : bits)
        b = rng.chance(0.5) ? 1 : 0;

    const double t_bit = tech.cycleTime();
    const double total = static_cast<double>(wave.size()) /
                         static_cast<double>(numSamples) * window;
    const double dt = total / static_cast<double>(wave.size());

    // Align on the line's flight delay.
    PulseResult single = simulate(geom, length);
    const double t0 = single.delay;

    auto sample_at = [&](double t) {
        auto idx = static_cast<std::size_t>(t / dt);
        if (idx >= wave.size())
            idx = wave.size() - 1;
        return wave[idx];
    };

    EyeResult eye;
    // Centre-of-eye levels over the steady part of the train.
    double worst_high = tech.vdd, worst_low = 0.0;
    bool saw_high = false, saw_low = false;
    const int skip = 4;
    for (int i = skip; i < num_bits; ++i) {
        double t = t0 + (i + 0.5) * t_bit;
        double v = sample_at(t);
        if (bits[static_cast<std::size_t>(i)]) {
            worst_high = std::min(worst_high, v);
            saw_high = true;
        } else {
            worst_low = std::max(worst_low, v);
            saw_low = true;
        }
    }
    if (!saw_high)
        worst_high = tech.vdd;
    if (!saw_low)
        worst_low = 0.0;
    eye.worstHigh = worst_high;
    eye.worstLow = worst_low;
    eye.eyeHeight = std::max(0.0, (worst_high - worst_low) / tech.vdd);

    // Eye width: fraction of intra-bit offsets where highs and lows
    // stay separated around Vdd/2 with a 5% guard band.
    const int offsets = 32;
    int open = 0;
    for (int o = 0; o < offsets; ++o) {
        double tau = (o + 0.5) / offsets;
        double lo_high = tech.vdd;
        double hi_low = 0.0;
        for (int i = skip; i < num_bits; ++i) {
            double t = t0 + (i + tau) * t_bit;
            double v = sample_at(t);
            if (bits[static_cast<std::size_t>(i)])
                lo_high = std::min(lo_high, v);
            else
                hi_low = std::max(hi_low, v);
        }
        if (lo_high >= 0.55 * tech.vdd && hi_low <= 0.45 * tech.vdd)
            ++open;
    }
    eye.eyeWidth = static_cast<double>(open) / offsets;
    return eye;
}

} // namespace phys
} // namespace tlsim
