/**
 * @file
 * On-chip transmission line: the latency / power / circuit-cost view
 * consumed by the TLC cache models.
 */

#ifndef TLSIM_PHYS_TRANSLINE_HH
#define TLSIM_PHYS_TRANSLINE_HH

#include "phys/fieldsolver.hh"
#include "phys/geometry.hh"
#include "phys/technology.hh"

namespace tlsim
{
namespace phys
{

/**
 * A point-to-point source-terminated on-chip transmission line of a
 * given length, using the paper's Table 1 geometry for that length.
 *
 * Derives flight latency (in seconds and clock cycles), dynamic
 * energy per transmitted bit, and driver/receiver circuit cost.
 */
class TransmissionLine
{
  public:
    /**
     * @param tech Technology assumptions.
     * @param length Routed length [m]; picks the Table 1 geometry.
     */
    TransmissionLine(const Technology &tech, double length);

    double length() const { return _length; }
    const WireGeometry &geometry() const { return spec.geometry; }

    /** Lossless characteristic impedance [Ohm]. */
    double z0() const { return params.z0(); }

    /** Wave velocity on the line [m/s]. */
    double velocity() const { return params.velocity(); }

    /** One-way flight time [s]. */
    double flightTime() const { return _length / velocity(); }

    /** One-way flight latency in (ceil) clock cycles. */
    int flightCycles() const;

    /** DC attenuation factor e^{-alpha*l} of the incident wave. */
    double incidentAttenuation() const;

    /**
     * Dynamic energy to signal one '1' bit for one bit time:
     * E = t_b * V^2 / (Rd + Z0), with a matched driver Rd == Z0.
     */
    double energyPerBit() const;

    /**
     * Transistors in one driver (source-terminated with
     * digitally-tuned resistance) plus one receiver.
     */
    static int transistorsPerLine();

    /** Total driver+receiver gate width for one line, in lambda. */
    double gateWidthLambda() const;

  private:
    const Technology &tech;
    double _length;
    TransmissionLineSpec spec;
    LineParams params;
};

} // namespace phys
} // namespace tlsim

#endif // TLSIM_PHYS_TRANSLINE_HH
