#include "phys/crosstalk.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"

namespace tlsim
{
namespace phys
{

CrosstalkModel::CrosstalkModel(const Technology &tech_)
    : tech(tech_), solver(tech_)
{}

CrosstalkResult
CrosstalkModel::analyze(const WireGeometry &geom, double length,
                        bool shielded, double rise_time) const
{
    TLSIM_ASSERT(length > 0.0 && rise_time > 0.0,
                 "bad crosstalk query");

    CrosstalkResult result;
    result.shielded = shielded;

    LineParams params = solver.extract(geom);
    const double eps = tech.dielectricK * constants::epsilon0;

    // Mutual capacitance: sidewall coupling over the edge-to-edge
    // gap. Without a shield the victim is the adjacent line at one
    // pitch; with one, the shield intercepts most of the lateral
    // field and the victim retreats to two pitches — only a fringing
    // residue (empirically ~8%) couples past a well-grounded shield.
    double gap = geom.spacing;
    double cm = 2.0 * eps * geom.thickness / gap; // parallel edges
    if (shielded) {
        double leak = 0.08;
        cm = leak * eps * geom.thickness / (2.0 * geom.pitch());
    }
    result.capacitiveRatio = cm / params.capacitance;

    // Mutual inductance: set by loop geometry. With only the distant
    // reference planes as return, adjacent loops overlap strongly
    // (Lm/L ~ ln-ratio); a shield line provides a tight local return
    // that collapses the shared flux.
    double d = geom.pitch(); // centre-to-centre
    double h = geom.height + geom.thickness / 2.0;
    double lm_over_l =
        std::log(1.0 + (2.0 * h / d) * (2.0 * h / d)) /
        std::log(1.0 + (2.0 * h / (geom.width / 2.0)) *
                           (2.0 * h / (geom.width / 2.0)));
    if (shielded)
        lm_over_l *= 0.22; // local return path shunts the flux
    result.inductiveRatio = std::min(0.9, lm_over_l);

    // Weakly-coupled-line theory (Dally & Poulton ch. 6):
    //  - backward (near-end) crosstalk saturates at kb for coupled
    //    flight times longer than the edge:
    //      kb = (Cm/C + Lm/L) / 4
    //  - forward (far-end) crosstalk grows with coupled length and
    //    edge rate:
    //      vfe = (Cm/C - Lm/L) / 2 * (t_flight / t_rise)
    double flight = length / params.velocity();
    double kb = (result.capacitiveRatio + result.inductiveRatio) / 4.0;
    double saturation = std::min(1.0, 2.0 * flight / rise_time);
    result.nearEnd = kb * saturation;

    // Forward crosstalk needs a velocity mismatch between even and
    // odd modes; the stripline's homogeneous dielectric cancels most
    // of it (factor 0.3 residual), leaving the Cm/C vs Lm/L mismatch
    // integrated over the coupled flight.
    double kf =
        std::abs(result.capacitiveRatio - result.inductiveRatio) / 2.0;
    result.farEnd = 0.3 * kf * std::min(8.0, flight / rise_time);
    result.farEnd = std::min(result.farEnd, 1.0);
    return result;
}

} // namespace phys
} // namespace tlsim
