/**
 * @file
 * Closed-form RLC extraction for shielded on-chip striplines.
 *
 * Substitutes for the Linpar 2-D field solver used in the paper: the
 * downstream analysis consumes only the per-unit-length R, L, C of a
 * signal line laid out stripline-fashion between reference planes
 * with power/ground shield lines on both sides. Wheeler/Cohn-style
 * closed forms reproduce those parameters to the accuracy the delay,
 * impedance, and attenuation analysis requires.
 */

#ifndef TLSIM_PHYS_FIELDSOLVER_HH
#define TLSIM_PHYS_FIELDSOLVER_HH

#include "phys/geometry.hh"
#include "phys/technology.hh"

namespace tlsim
{
namespace phys
{

/** Per-unit-length electrical parameters of a line. */
struct LineParams
{
    /** DC resistance [Ohm/m]. */
    double resistance;
    /** Loop inductance [H/m]. */
    double inductance;
    /** Total capacitance [F/m]. */
    double capacitance;

    /** Lossless characteristic impedance sqrt(L/C) [Ohm]. */
    double z0() const;

    /** Propagation velocity 1/sqrt(L*C) [m/s]. */
    double velocity() const;
};

/**
 * Closed-form extractor for shielded stripline geometries.
 */
class FieldSolver
{
  public:
    explicit FieldSolver(const Technology &tech);

    /**
     * Extract per-unit-length R, L, C for a stripline of the given
     * cross-section (reference planes above/below at distance
     * geometry.height, shield lines at geometry.spacing laterally).
     */
    LineParams extract(const WireGeometry &geometry) const;

    /**
     * Skin depth at frequency f [m].
     */
    double skinDepth(double freq) const;

    /**
     * Frequency-dependent series resistance per meter, accounting
     * for the skin effect confining current to the conductor surface
     * (never less than the DC resistance).
     */
    double acResistance(const WireGeometry &geometry, double freq) const;

  private:
    const Technology &tech;
};

} // namespace phys
} // namespace tlsim

#endif // TLSIM_PHYS_FIELDSOLVER_HH
