#include "phys/geometry.hh"

#include "sim/logging.hh"

namespace tlsim
{
namespace phys
{

const std::vector<TransmissionLineSpec> &
paperTable1Lines()
{
    // Paper Table 1: length, W, S, H, T.
    static const std::vector<TransmissionLineSpec> specs = {
        {0.9e-2, {2.0e-6, 2.0e-6, 1.75e-6, 3.0e-6}},
        {1.1e-2, {2.5e-6, 2.5e-6, 1.75e-6, 3.0e-6}},
        {1.3e-2, {3.0e-6, 3.0e-6, 1.75e-6, 3.0e-6}},
    };
    return specs;
}

const TransmissionLineSpec &
specForLength(double length)
{
    const auto &specs = paperTable1Lines();
    for (const auto &spec : specs) {
        if (length <= spec.length + 1e-9)
            return spec;
    }
    // Longer than Table 1's longest: use the widest geometry.
    return specs.back();
}

WireGeometry
conventionalGlobalWire()
{
    // Repeated global wire at 45 nm (ITRS-class minimum global
    // pitch): a much smaller cross-section than the transmission
    // lines (Figure 3). Yields ~90 ps/mm repeated — consistent with
    // the paper's "25+ cycles across a 2 cm die at 10 GHz" premise.
    return {0.10e-6, 0.10e-6, 0.20e-6, 0.15e-6};
}

WireGeometry
conventionalSemiGlobalWire()
{
    // Fatter intra-controller wires (~60 ps/mm repeated), used for
    // the TLC controller's internal routing between the transmission
    // line landings and the central controller logic.
    return {0.15e-6, 0.15e-6, 0.25e-6, 0.25e-6};
}

} // namespace phys
} // namespace tlsim
