/**
 * @file
 * Process-wide memoization of the expensive closed-form physics.
 *
 * A sweep evaluates the same handful of (technology, geometry,
 * length) tuples thousands of times: every RunSpec rebuilds its
 * System, and every System re-runs FieldSolver::extract for each
 * floorplan pair, the per-pair PulseSimulator::simulate fault-margin
 * loop, and RcWireModel::delay for the RC fallback bundles. The
 * PhysCache memoizes those three entry points behind a shared-mutex
 * (read-mostly) table so each unique waveform is computed exactly
 * once per process, no matter how many runs or worker threads ask.
 *
 * Determinism: the cache only stores values that the underlying
 * models compute deterministically from the key, so a memo-hot run
 * returns bit-identical results to a memo-cold run (asserted by
 * tests/test_physcache.cc and the sweep determinism tests).
 */

#ifndef TLSIM_PHYS_PHYSCACHE_HH
#define TLSIM_PHYS_PHYSCACHE_HH

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <shared_mutex>
#include <unordered_map>

#include "phys/fieldsolver.hh"
#include "phys/geometry.hh"
#include "phys/pulse.hh"
#include "phys/technology.hh"

namespace tlsim
{
namespace phys
{

/**
 * Shared, thread-safe memo table for extract/simulate/delay results.
 *
 * Keys hash the exact bit patterns of every double that feeds the
 * computation (all Technology fields, the geometry, the length and
 * simulator parameters), so two technologies that differ in any
 * assumption never share an entry. On a miss the value is computed
 * outside the lock; a racing duplicate insert is benign because both
 * threads compute the identical value from the identical key.
 */
class PhysCache
{
  public:
    /** The process-wide instance. */
    static PhysCache &instance();

    /** Memoized FieldSolver::extract. */
    LineParams extract(const Technology &tech, const WireGeometry &geom);

    /**
     * Memoized PulseSimulator::simulate with explicit simulator
     * parameters (num_samples / window follow PulseSimulator's
     * constructor defaults).
     */
    PulseResult pulse(const Technology &tech, const WireGeometry &geom,
                      double length, double source_r = -1.0,
                      std::size_t num_samples = 4096, double window = 0.0);

    /** Memoized RcWireModel(tech, geom).delay(length). */
    double rcDelay(const Technology &tech, const WireGeometry &geom,
                   double length);

    /** Drop every entry (for memo-cold determinism tests/benches). */
    void clear();

    /** Lookups served from the table since construction/clear(). */
    std::uint64_t hits() const { return hitCount.load(); }

    /** Lookups that had to run the underlying model. */
    std::uint64_t misses() const { return missCount.load(); }

  private:
    PhysCache() = default;

    /**
     * Fixed-capacity key: a tag plus the bit patterns of every input
     * double. Full-width equality backs the hash, so distinct inputs
     * can never alias.
     */
    struct Key
    {
        static constexpr std::size_t maxWords = 24;
        std::array<std::uint64_t, maxWords> words{};
        std::uint32_t len = 0;

        void push(std::uint64_t w);
        void push(double v);
        bool operator==(const Key &o) const;
    };

    struct KeyHash
    {
        std::size_t operator()(const Key &k) const;
    };

    /** One value slot; only the field matching the key's tag is set. */
    struct Value
    {
        LineParams params{};
        PulseResult pulse{};
        double scalar = 0.0;
    };

    static Key baseKey(std::uint64_t tag, const Technology &tech,
                       const WireGeometry &geom);

    /** Returns true and fills out on a hit. */
    bool lookup(const Key &key, Value &out);
    void insert(const Key &key, const Value &value);

    mutable std::shared_mutex mutex;
    std::unordered_map<Key, Value, KeyHash> table;
    std::atomic<std::uint64_t> hitCount{0};
    std::atomic<std::uint64_t> missCount{0};
};

} // namespace phys
} // namespace tlsim

#endif // TLSIM_PHYS_PHYSCACHE_HH
