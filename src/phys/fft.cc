#include "phys/fft.hh"

#include <cmath>

#include "sim/logging.hh"

namespace tlsim
{
namespace phys
{

bool
isPowerOfTwo(std::size_t n)
{
    return n != 0 && (n & (n - 1)) == 0;
}

namespace
{

void
transform(std::vector<std::complex<double>> &data, bool inverse)
{
    const std::size_t n = data.size();
    TLSIM_ASSERT(isPowerOfTwo(n), "FFT size {} is not a power of two", n);

    // Bit-reversal permutation.
    for (std::size_t i = 1, j = 0; i < n; ++i) {
        std::size_t bit = n >> 1;
        for (; j & bit; bit >>= 1)
            j ^= bit;
        j ^= bit;
        if (i < j)
            std::swap(data[i], data[j]);
    }

    // Danielson-Lanczos butterflies.
    for (std::size_t len = 2; len <= n; len <<= 1) {
        double angle = 2.0 * M_PI / static_cast<double>(len);
        if (!inverse)
            angle = -angle;
        std::complex<double> wlen(std::cos(angle), std::sin(angle));
        for (std::size_t i = 0; i < n; i += len) {
            std::complex<double> w(1.0, 0.0);
            for (std::size_t k = 0; k < len / 2; ++k) {
                std::complex<double> u = data[i + k];
                std::complex<double> v = data[i + k + len / 2] * w;
                data[i + k] = u + v;
                data[i + k + len / 2] = u - v;
                w *= wlen;
            }
        }
    }

    if (inverse) {
        double inv_n = 1.0 / static_cast<double>(n);
        for (auto &x : data)
            x *= inv_n;
    }
}

} // namespace

void
fft(std::vector<std::complex<double>> &data)
{
    transform(data, false);
}

void
ifft(std::vector<std::complex<double>> &data)
{
    transform(data, true);
}

} // namespace phys
} // namespace tlsim
