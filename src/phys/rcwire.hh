/**
 * @file
 * Conventional repeated RC wire model.
 *
 * Models the global wires used by the (S/D)NUCA interconnect:
 * distributed RC delay with optimal repeater insertion (Bakoglu),
 * plus the repeater area / transistor / energy accounting consumed by
 * the Table 7/8/9 experiments.
 */

#ifndef TLSIM_PHYS_RCWIRE_HH
#define TLSIM_PHYS_RCWIRE_HH

#include "phys/geometry.hh"
#include "phys/technology.hh"

namespace tlsim
{
namespace phys
{

/**
 * A repeated RC wire of a given cross-section in a given technology.
 *
 * The model computes per-unit-length R and C from geometry, then
 * derives the delay-optimal repeater spacing and sizing, yielding the
 * wire's latency per unit length, its dynamic energy per bit, and the
 * substrate cost of its repeaters.
 */
class RcWireModel
{
  public:
    RcWireModel(const Technology &tech, const WireGeometry &geom);

    /** Resistance per meter [Ohm/m]. */
    double resistancePerMeter() const { return rPerM; }

    /** Capacitance per meter [F/m] (plate + fringe + coupling). */
    double capacitancePerMeter() const { return cPerM; }

    /** Delay-optimal repeater spacing [m]. */
    double repeaterSpacing() const { return repSpacing; }

    /** Delay-optimal repeater size (multiple of minimum inverter). */
    double repeaterSize() const { return repSize; }

    /** End-to-end delay of a repeated wire of given length [s]. */
    double delay(double length) const;

    /** Delay of the wire left unrepeated (0.38*R*C*l^2 + ...) [s]. */
    double unrepeatedDelay(double length) const;

    /** Signal velocity on the repeated wire [m/s]. */
    double velocity() const;

    /** Number of repeaters needed for a wire of given length. */
    int repeaterCount(double length) const;

    /** Transistor count of all repeaters on a wire of given length. */
    long transistorCount(double length) const;

    /** Total repeater gate width for the wire, in lambda. */
    double gateWidthLambda(double length) const;

    /** Substrate area of the repeaters for a wire of length l [m^2]. */
    double repeaterArea(double length) const;

    /**
     * Dynamic energy to send one bit transition across the full wire
     * (wire capacitance + repeater input/parasitic caps) [J].
     */
    double energyPerTransition(double length) const;

  private:
    const Technology &tech;
    WireGeometry geometry;
    double rPerM = 0.0;
    double cPerM = 0.0;
    double repSpacing = 0.0;
    double repSize = 1.0;
};

} // namespace phys
} // namespace tlsim

#endif // TLSIM_PHYS_RCWIRE_HH
