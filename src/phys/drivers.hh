/**
 * @file
 * Transmission-line driver/receiver signalling schemes.
 *
 * The paper's base design uses single-ended voltage-mode signalling
 * with source termination (Section 3), and names two higher-immunity
 * alternatives it chose not to pay for: differential signalling with
 * a sinusoidal carrier (Chang et al. [8]) and current-mode drivers
 * (Dally & Poulton [10]). This module models the energy, wire, and
 * circuit cost of all three so the trade can be quantified (see
 * bench_ablation_drivers).
 */

#ifndef TLSIM_PHYS_DRIVERS_HH
#define TLSIM_PHYS_DRIVERS_HH

#include <string>
#include <vector>

#include "phys/transline.hh"

namespace tlsim
{
namespace phys
{

/** Signalling schemes for on-chip transmission lines. */
enum class DriverKind
{
    /** Single-ended voltage mode, source-terminated (TLC's choice). */
    VoltageMode,
    /** Current-mode driver with low-impedance receiver termination. */
    CurrentMode,
    /** Differential pair modulating a sinusoidal carrier. */
    DifferentialCarrier,
};

/** Cost/robustness summary of one scheme on one line. */
struct DriverProfile
{
    DriverKind kind;
    std::string name;
    /** Wires consumed per logical signal. */
    int wiresPerSignal;
    /** Dynamic energy per transmitted bit [J]. */
    double dynamicEnergyPerBit;
    /** Static power while idle [W] (bias/termination current). */
    double staticPower;
    /** Driver+receiver transistors per logical signal. */
    int transistors;
    /** Relative noise margin (1.0 == voltage-mode baseline). */
    double noiseMargin;
};

/**
 * Evaluate a signalling scheme for a transmission line.
 */
DriverProfile evaluateDriver(const Technology &tech,
                             const TransmissionLine &line,
                             DriverKind kind);

/** All modeled schemes. */
const std::vector<DriverKind> &allDriverKinds();

} // namespace phys
} // namespace tlsim

#endif // TLSIM_PHYS_DRIVERS_HH
