#include "phys/physcache.hh"

#include <bit>
#include <mutex>

#include "phys/rcwire.hh"
#include "sim/prof/prof.hh"

namespace tlsim
{
namespace phys
{

namespace
{

/** Distinct tags keep the three memoized entry points disjoint. */
constexpr std::uint64_t tagExtract = 0x45585452ULL; // "EXTR"
constexpr std::uint64_t tagPulse = 0x50554c53ULL;   // "PULS"
constexpr std::uint64_t tagRcDelay = 0x52435744ULL; // "RCWD"

} // namespace

PhysCache &
PhysCache::instance()
{
    static PhysCache cache;
    return cache;
}

void
PhysCache::Key::push(std::uint64_t w)
{
    words[len++] = w;
}

void
PhysCache::Key::push(double v)
{
    // Bit patterns, not values: -0.0 != 0.0 is fine (both compute the
    // same way every time), and NaNs never reach the physics inputs.
    push(std::bit_cast<std::uint64_t>(v));
}

bool
PhysCache::Key::operator==(const Key &o) const
{
    if (len != o.len)
        return false;
    for (std::uint32_t i = 0; i < len; ++i) {
        if (words[i] != o.words[i])
            return false;
    }
    return true;
}

std::size_t
PhysCache::KeyHash::operator()(const Key &k) const
{
    // FNV-1a over the used words.
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (std::uint32_t i = 0; i < k.len; ++i) {
        std::uint64_t w = k.words[i];
        for (int b = 0; b < 8; ++b) {
            h ^= (w >> (8 * b)) & 0xffULL;
            h *= 0x100000001b3ULL;
        }
    }
    return static_cast<std::size_t>(h);
}

PhysCache::Key
PhysCache::baseKey(std::uint64_t tag, const Technology &tech,
                   const WireGeometry &geom)
{
    Key key;
    key.push(tag);
    key.push(tech.featureSize);
    key.push(tech.lambda);
    key.push(tech.vdd);
    key.push(tech.clockFreq);
    key.push(tech.copperResistivity);
    key.push(tech.bulkCopperResistivity);
    key.push(tech.dielectricK);
    key.push(tech.minInverterResistance);
    key.push(tech.minInverterCapacitance);
    key.push(tech.minInverterParasitic);
    key.push(tech.sramCellArea);
    key.push(tech.minInverterWidthLambda);
    key.push(tech.activityFactor);
    key.push(tech.channelBlockageFraction);
    key.push(geom.width);
    key.push(geom.spacing);
    key.push(geom.height);
    key.push(geom.thickness);
    return key;
}

bool
PhysCache::lookup(const Key &key, Value &out)
{
    {
        std::shared_lock lock(mutex);
        auto it = table.find(key);
        if (it != table.end()) {
            out = it->second;
            hitCount.fetch_add(1, std::memory_order_relaxed);
            return true;
        }
    }
    missCount.fetch_add(1, std::memory_order_relaxed);
    return false;
}

void
PhysCache::insert(const Key &key, const Value &value)
{
    std::unique_lock lock(mutex);
    // A racing thread may have inserted the same key; both computed
    // the identical value from the identical inputs, so first wins.
    table.try_emplace(key, value);
}

LineParams
PhysCache::extract(const Technology &tech, const WireGeometry &geom)
{
    Key key = baseKey(tagExtract, tech, geom);
    Value v;
    if (lookup(key, v)) {
        prof::Scope prof_scope("physcache:hit");
        return v.params;
    }
    prof::Scope prof_scope("physcache:miss");
    FieldSolver solver(tech);
    v.params = solver.extract(geom);
    insert(key, v);
    return v.params;
}

PulseResult
PhysCache::pulse(const Technology &tech, const WireGeometry &geom,
                 double length, double source_r, std::size_t num_samples,
                 double window)
{
    Key key = baseKey(tagPulse, tech, geom);
    key.push(length);
    key.push(source_r);
    key.push(static_cast<std::uint64_t>(num_samples));
    key.push(window);
    Value v;
    if (lookup(key, v)) {
        prof::Scope prof_scope("physcache:hit");
        return v.pulse;
    }
    prof::Scope prof_scope("physcache:miss");
    PulseSimulator sim(tech, num_samples, window);
    v.pulse = sim.simulate(geom, length, source_r);
    insert(key, v);
    return v.pulse;
}

double
PhysCache::rcDelay(const Technology &tech, const WireGeometry &geom,
                   double length)
{
    Key key = baseKey(tagRcDelay, tech, geom);
    key.push(length);
    Value v;
    if (lookup(key, v)) {
        prof::Scope prof_scope("physcache:hit");
        return v.scalar;
    }
    prof::Scope prof_scope("physcache:miss");
    RcWireModel rc(tech, geom);
    v.scalar = rc.delay(length);
    insert(key, v);
    return v.scalar;
}

void
PhysCache::clear()
{
    std::unique_lock lock(mutex);
    table.clear();
    hitCount.store(0);
    missCount.store(0);
}

} // namespace phys
} // namespace tlsim
