/**
 * @file
 * Minimal iterative radix-2 complex FFT used by the pulse simulator.
 */

#ifndef TLSIM_PHYS_FFT_HH
#define TLSIM_PHYS_FFT_HH

#include <complex>
#include <vector>

namespace tlsim
{
namespace phys
{

/** In-place forward FFT; size must be a power of two. */
void fft(std::vector<std::complex<double>> &data);

/** In-place inverse FFT (includes the 1/N normalization). */
void ifft(std::vector<std::complex<double>> &data);

/** True if n is a power of two (and nonzero). */
bool isPowerOfTwo(std::size_t n);

} // namespace phys
} // namespace tlsim

#endif // TLSIM_PHYS_FFT_HH
