#include "phys/drivers.hh"

#include "sim/logging.hh"

namespace tlsim
{
namespace phys
{

DriverProfile
evaluateDriver(const Technology &tech, const TransmissionLine &line,
               DriverKind kind)
{
    DriverProfile profile;
    profile.kind = kind;

    const double z0 = line.z0();
    const double t_bit = tech.cycleTime();
    const double vdd = tech.vdd;

    switch (kind) {
      case DriverKind::VoltageMode:
        // Matched source termination: energy only while driving a
        // '1'; no standing current (the receiver is high-impedance).
        profile.name = "voltage-mode";
        profile.wiresPerSignal = 1;
        profile.dynamicEnergyPerBit = t_bit * vdd * vdd / (2.0 * z0);
        profile.staticPower = 0.0;
        profile.transistors = TransmissionLine::transistorsPerLine();
        profile.noiseMargin = 1.0;
        break;

      case DriverKind::CurrentMode:
        // A current source drives a receiver-terminated line: the
        // swing can drop to ~Vdd/4, cutting dynamic energy, but the
        // termination draws bias current whenever the link is
        // enabled — the static cost the paper rejects for a <2%
        // utilized network.
        profile.name = "current-mode";
        profile.wiresPerSignal = 1;
        profile.dynamicEnergyPerBit =
            t_bit * (vdd / 4.0) * (vdd / 4.0) / z0;
        // Bias: ~ (Vdd/4)/Z0 standing current at Vdd/2 headroom.
        profile.staticPower = (vdd / 4.0) / z0 * (vdd / 2.0);
        profile.transistors =
            TransmissionLine::transistorsPerLine() + 30;
        profile.noiseMargin = 1.4;
        break;

      case DriverKind::DifferentialCarrier:
        // Chang et al.-style differential pair with a sinusoidal
        // carrier: superb common-mode rejection, but two wires per
        // signal plus mixers/oscillator bias power.
        profile.name = "differential-carrier";
        profile.wiresPerSignal = 2;
        profile.dynamicEnergyPerBit = t_bit * vdd * vdd / (4.0 * z0);
        profile.staticPower = 2.0e-3; // oscillator + mixer bias
        profile.transistors =
            2 * TransmissionLine::transistorsPerLine() + 60;
        profile.noiseMargin = 2.5;
        break;

      default:
        panic("unknown driver kind");
    }
    return profile;
}

const std::vector<DriverKind> &
allDriverKinds()
{
    static const std::vector<DriverKind> kinds = {
        DriverKind::VoltageMode,
        DriverKind::CurrentMode,
        DriverKind::DifferentialCarrier,
    };
    return kinds;
}

} // namespace phys
} // namespace tlsim
