#include "phys/technology.hh"

#include <cmath>

namespace tlsim
{
namespace phys
{

double
Technology::sqrtK() const
{
    return std::sqrt(dielectricK);
}

const Technology &
tech45()
{
    static const Technology tech{};
    return tech;
}

} // namespace phys
} // namespace tlsim
