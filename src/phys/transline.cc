#include "phys/transline.hh"

#include <cmath>

#include "phys/physcache.hh"
#include "sim/logging.hh"

namespace tlsim
{
namespace phys
{

TransmissionLine::TransmissionLine(const Technology &tech_, double length)
    : tech(tech_), _length(length), spec(specForLength(length))
{
    TLSIM_ASSERT(length > 0.0, "transmission line needs positive length");
    params = PhysCache::instance().extract(tech, spec.geometry);
}

int
TransmissionLine::flightCycles() const
{
    return static_cast<int>(std::ceil(flightTime() / tech.cycleTime()));
}

double
TransmissionLine::incidentAttenuation() const
{
    double alpha = params.resistance / (2.0 * params.z0());
    return std::exp(-alpha * _length);
}

double
TransmissionLine::energyPerBit() const
{
    double rd = params.z0(); // matched source termination
    double t_bit = tech.cycleTime();
    return t_bit * tech.vdd * tech.vdd / (rd + params.z0());
}

int
TransmissionLine::transistorsPerLine()
{
    // Driver: output stage + 4-bit digitally tuned source resistance
    // (binary-weighted legs) + predriver: ~56 devices. Receiver:
    // high-impedance comparator + latch: ~34 devices.
    return 56 + 34;
}

double
TransmissionLine::gateWidthLambda() const
{
    // The driver's source termination must match Z0, so its output
    // stage is ~R0/Z0 times a minimum device; the high-impedance
    // receiver adds a small comparator/latch.
    double driver_scale = tech.minInverterResistance / params.z0();
    return (driver_scale + 8.0) * tech.minInverterWidthLambda;
}

} // namespace phys
} // namespace tlsim
