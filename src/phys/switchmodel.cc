#include "phys/switchmodel.hh"

#include "sim/logging.hh"

namespace tlsim
{
namespace phys
{

SwitchModel::SwitchModel(const Technology &tech_, int ports,
                         int flit_bits, int buffer_depth)
    : tech(tech_), _ports(ports), _flitBits(flit_bits),
      _bufferDepth(buffer_depth)
{
    TLSIM_ASSERT(ports > 0 && flit_bits > 0 && buffer_depth > 0,
                 "bad switch configuration");
}

long
SwitchModel::transistorCount() const
{
    // Input buffers: 6T cell + read/write ports per bit.
    long buffer_bits = static_cast<long>(_ports) * _bufferDepth *
                       _flitBits;
    long buffers = buffer_bits * 10;
    // Crossbar: one tristate driver (4T) per input-output bit pair.
    long crossbar = static_cast<long>(_ports) * _ports * _flitBits * 4;
    // Arbiter + control: ~200 devices per port.
    long control = static_cast<long>(_ports) * 200;
    // Output latches/drivers: 12T per bit.
    long output = static_cast<long>(_ports) * _flitBits * 12;
    return buffers + crossbar + control + output;
}

double
SwitchModel::gateWidthLambda() const
{
    // Crossbar and output drivers are sized up (~8x min) to drive the
    // inter-switch links; buffers are near minimum size.
    long buffer_bits = static_cast<long>(_ports) * _bufferDepth *
                       _flitBits;
    double buffer_w = buffer_bits * 10 * 2.0;
    double crossbar_w = static_cast<double>(_ports) * _ports *
                        _flitBits * 4 * 6.0;
    double output_w = static_cast<double>(_ports) * _flitBits * 12 * 8.0;
    double control_w = static_cast<double>(_ports) * 200 * 3.0;
    return buffer_w + crossbar_w + output_w + control_w;
}

double
SwitchModel::area() const
{
    // Layout density: ~800 lambda^2 of substrate per transistor for
    // dense datapath-style logic (devices + local wiring).
    double lam2 = tech.lambda * tech.lambda;
    return static_cast<double>(transistorCount()) * 800.0 * lam2;
}

double
SwitchModel::energyPerFlit() const
{
    // Buffer write+read, crossbar traversal, and output latch: model
    // as toggling an effective capacitance proportional to the flit
    // width, at the assumed activity factor.
    double cap_per_bit = 18.0 * tech.minInverterCapacitance * 8.0;
    double c_eff = cap_per_bit * _flitBits;
    return tech.activityFactor * c_eff * tech.vdd * tech.vdd;
}

} // namespace phys
} // namespace tlsim
