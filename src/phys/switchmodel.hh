/**
 * @file
 * Mesh switch circuit model (Orion-style accounting).
 *
 * Provides the transistor count, gate width, area, and per-traversal
 * dynamic energy of the wormhole switches used by the NUCA mesh
 * interconnect, for the Table 7/8/9 experiments.
 */

#ifndef TLSIM_PHYS_SWITCHMODEL_HH
#define TLSIM_PHYS_SWITCHMODEL_HH

#include "phys/technology.hh"

namespace tlsim
{
namespace phys
{

/**
 * A virtual-channel-less wormhole switch: input FIFOs, a crossbar,
 * and round-robin arbiters, with the paper/NUCA configuration of
 * narrow address links and 16-byte data links.
 */
class SwitchModel
{
  public:
    /**
     * @param tech Technology assumptions.
     * @param ports Number of bidirectional ports (5 for a mesh node).
     * @param flit_bits Datapath width in bits.
     * @param buffer_depth FIFO entries per input port.
     */
    SwitchModel(const Technology &tech, int ports, int flit_bits,
                int buffer_depth);

    int ports() const { return _ports; }
    int flitBits() const { return _flitBits; }

    /** Total transistors in this switch. */
    long transistorCount() const;

    /** Total transistor gate width, in lambda. */
    double gateWidthLambda() const;

    /** Substrate area of the switch [m^2]. */
    double area() const;

    /** Dynamic energy for one flit to traverse the switch [J]. */
    double energyPerFlit() const;

  private:
    const Technology &tech;
    int _ports;
    int _flitBits;
    int _bufferDepth;
};

} // namespace phys
} // namespace tlsim

#endif // TLSIM_PHYS_SWITCHMODEL_HH
