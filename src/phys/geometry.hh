/**
 * @file
 * Wire cross-section geometries (paper Figure 3 / Table 1).
 */

#ifndef TLSIM_PHYS_GEOMETRY_HH
#define TLSIM_PHYS_GEOMETRY_HH

#include <vector>

namespace tlsim
{
namespace phys
{

/**
 * Cross-sectional geometry of an on-chip wire (stripline for
 * transmission lines, conventional stack for RC wires). All
 * dimensions in meters, matching the W/S/H/T notation of Figure 3.
 */
struct WireGeometry
{
    /** Signal conductor width W [m]. */
    double width;
    /** Spacing S to the adjacent (shield) conductor [m]. */
    double spacing;
    /** Dielectric height H to the reference plane [m]. */
    double height;
    /** Conductor thickness T [m]. */
    double thickness;

    /** Conductor cross-sectional area [m^2]. */
    double crossSection() const { return width * thickness; }

    /** Signal pitch (width + spacing) [m]. */
    double pitch() const { return width + spacing; }
};

/**
 * One row of paper Table 1: a transmission line of a given routed
 * length with the geometry chosen to keep R and C appropriate.
 */
struct TransmissionLineSpec
{
    /** Routed length [m]. */
    double length;
    /** Cross-section geometry. */
    WireGeometry geometry;
};

/**
 * The three transmission-line design points of paper Table 1
 * (0.9 cm / 1.1 cm / 1.3 cm with widths 2.0 / 2.5 / 3.0 um).
 */
const std::vector<TransmissionLineSpec> &paperTable1Lines();

/**
 * Pick the Table 1 geometry appropriate for a given routed length:
 * the shortest spec whose length is >= the requested length (longer
 * lines need wider conductors).
 */
const TransmissionLineSpec &specForLength(double length);

/** Conventional 45 nm global RC wire (DNUCA links, Figure 3 top). */
WireGeometry conventionalGlobalWire();

/** Conventional 45 nm semi-global wire (intra-controller routing). */
WireGeometry conventionalSemiGlobalWire();

} // namespace phys
} // namespace tlsim

#endif // TLSIM_PHYS_GEOMETRY_HH
