#include "phys/rcwire.hh"

#include <cmath>

#include "sim/logging.hh"

namespace tlsim
{
namespace phys
{

RcWireModel::RcWireModel(const Technology &tech_, const WireGeometry &geom)
    : tech(tech_), geometry(geom)
{
    TLSIM_ASSERT(geom.width > 0 && geom.thickness > 0,
                 "degenerate wire geometry");

    rPerM = tech.copperResistivity / geom.crossSection();

    // Capacitance: parallel-plate to the planes above/below plus
    // lateral coupling to neighbours plus a fringing allowance.
    const double eps = tech.dielectricK * constants::epsilon0;
    double plate = 2.0 * eps * geom.width / geom.height;
    double coupling = 2.0 * eps * geom.thickness / geom.spacing;
    double fringe = 1.5 * eps; // ~ constant fringe term per meter scale
    cPerM = plate + coupling + fringe;

    // Bakoglu delay-optimal repeater insertion.
    const double r0 = tech.minInverterResistance;
    const double c0 = tech.minInverterCapacitance +
                      tech.minInverterParasitic;
    repSpacing = std::sqrt(2.0 * r0 * c0 / (rPerM * cPerM));
    repSize = std::sqrt(r0 * cPerM / (rPerM * c0));
}

double
RcWireModel::delay(double length) const
{
    // Per-segment Elmore delay of the optimally repeated line:
    //   ~ 2.5 * sqrt(r0 c0 r c) per meter (Bakoglu-style constant).
    const double r0 = tech.minInverterResistance;
    const double c0 = tech.minInverterCapacitance +
                      tech.minInverterParasitic;
    double per_meter = 2.5 * std::sqrt(r0 * c0 * rPerM * cPerM);
    return per_meter * length;
}

double
RcWireModel::unrepeatedDelay(double length) const
{
    // Distributed RC delay (0.38 factor) plus the driver charging the
    // whole line through its output resistance.
    const double r0 = tech.minInverterResistance;
    double rc = rPerM * cPerM * length * length;
    return 0.38 * rc + 0.69 * r0 * cPerM * length;
}

double
RcWireModel::velocity() const
{
    return 1.0 / (delay(1.0));
}

int
RcWireModel::repeaterCount(double length) const
{
    if (length <= repSpacing)
        return 1; // at least the driver
    return static_cast<int>(std::ceil(length / repSpacing));
}

long
RcWireModel::transistorCount(double length) const
{
    return static_cast<long>(repeaterCount(length)) *
           Technology::transistorsPerInverter;
}

double
RcWireModel::gateWidthLambda(double length) const
{
    return repeaterCount(length) * repSize * tech.minInverterWidthLambda;
}

double
RcWireModel::repeaterArea(double length) const
{
    // Approximate repeater footprint: gate width times a fixed cell
    // depth of 40 lambda (diffusion, contacts, spacing).
    double width_m = gateWidthLambda(length) * tech.lambda;
    double depth_m = 40.0 * tech.lambda;
    return width_m * depth_m;
}

double
RcWireModel::energyPerTransition(double length) const
{
    double wire_cap = cPerM * length;
    double rep_cap = repeaterCount(length) * repSize *
                     (tech.minInverterCapacitance +
                      tech.minInverterParasitic);
    return (wire_cap + rep_cap) * tech.vdd * tech.vdd;
}

} // namespace phys
} // namespace tlsim
