/**
 * @file
 * Technology parameters for the 45 nm design point targeted by the
 * paper (ITRS-2002-style projections, 10 GHz aggressive clock).
 *
 * All physical models in src/phys and src/cacti read their constants
 * from a Technology instance so experiments can sweep the technology
 * assumptions (e.g. dielectric constant, supply voltage) coherently.
 */

#ifndef TLSIM_PHYS_TECHNOLOGY_HH
#define TLSIM_PHYS_TECHNOLOGY_HH

namespace tlsim
{
namespace phys
{

/** Physical constants (SI units). */
namespace constants
{
/** Speed of light in vacuum [m/s]. */
constexpr double speedOfLight = 2.998e8;
/** Vacuum permittivity [F/m]. */
constexpr double epsilon0 = 8.854e-12;
/** Vacuum permeability [H/m]. */
constexpr double mu0 = 1.2566e-6;
} // namespace constants

/**
 * Process/technology assumptions for one design point.
 *
 * Defaults model the paper's 45 nm / 10 GHz target. Linear dimensions
 * are in meters, times in seconds, unless noted otherwise.
 */
struct Technology
{
    /** Feature size [m]. */
    double featureSize = 45e-9;

    /** Lambda (half the feature size), the layout unit [m]. */
    double lambda = 22.5e-9;

    /** Supply voltage [V]. */
    double vdd = 1.0;

    /** Target clock frequency [Hz]. */
    double clockFreq = 10e9;

    /** Clock cycle time [s]. */
    double cycleTime() const { return 1.0 / clockFreq; }

    /** Effective copper resistivity incl. barriers/scattering [Ohm*m]. */
    double copperResistivity = 2.2e-8;

    /**
     * Bulk copper resistivity [Ohm*m]: applies to the fat upper-layer
     * transmission lines where barrier layers and surface scattering
     * are negligible.
     */
    double bulkCopperResistivity = 1.7e-8;

    /** Relative permittivity of the low-k interlayer dielectric. */
    double dielectricK = 2.4;

    /**
     * Equivalent output resistance of a minimum-sized inverter [Ohm].
     */
    double minInverterResistance = 25e3;

    /** Input capacitance of a minimum-sized inverter [F]. */
    double minInverterCapacitance = 0.15e-15;

    /** Intrinsic (parasitic) output cap of a minimum inverter [F]. */
    double minInverterParasitic = 0.15e-15;

    /** SRAM cell area at this node [m^2]. */
    double sramCellArea = 0.236e-12;

    /** Transistors in a minimum inverter. */
    static constexpr int transistorsPerInverter = 2;

    /** Gate width of a minimum inverter, in lambda (n + p device). */
    double minInverterWidthLambda = 10.0;

    /** Signal activity factor assumed for data wires. */
    double activityFactor = 0.5;

    /**
     * Fraction of a substrate wiring channel's footprint that cannot
     * be reclaimed for logic (repeater farms, via blockage).
     */
    double channelBlockageFraction = 0.20;

    /** Propagation speed in the dielectric [m/s]. */
    double
    dielectricVelocity() const
    {
        return constants::speedOfLight / sqrtK();
    }

    /** sqrt(dielectricK), cached-by-formula. */
    double sqrtK() const;
};

/** The default 45 nm / 10 GHz technology used throughout the paper. */
const Technology &tech45();

} // namespace phys
} // namespace tlsim

#endif // TLSIM_PHYS_TECHNOLOGY_HH
