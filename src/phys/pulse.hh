/**
 * @file
 * Frequency-domain lossy transmission-line pulse simulator.
 *
 * Substitutes for the paper's HSPICE W-element runs: a trapezoidal
 * 10 GHz pulse is launched through a source-terminated driver into a
 * lossy line with frequency-dependent (skin effect) resistance; the
 * receiver is a high-impedance (open) termination. The received
 * waveform is computed via the telegrapher-equation transfer function
 * evaluated per frequency bin and inverse-FFT'd, then checked against
 * the paper's signalling requirements: received amplitude >= 75% Vdd
 * and pulse width >= 40% of the clock cycle.
 */

#ifndef TLSIM_PHYS_PULSE_HH
#define TLSIM_PHYS_PULSE_HH

#include <complex>
#include <cstddef>
#include <vector>

#include "phys/fieldsolver.hh"
#include "phys/geometry.hh"
#include "phys/technology.hh"

namespace tlsim
{
namespace phys
{

/** Eye-diagram metrics for a random bit train through one line. */
struct EyeResult
{
    /** Worst-case high level sampled at the eye centre [V]. */
    double worstHigh = 0.0;
    /** Worst-case low level sampled at the eye centre [V]. */
    double worstLow = 0.0;
    /** Eye opening (worstHigh - worstLow) as a fraction of Vdd. */
    double eyeHeight = 0.0;
    /** Fraction of the bit time the eye stays open at Vdd/2. */
    double eyeWidth = 0.0;

    /** The paper's 40%-of-cycle setup/hold margin, train edition. */
    bool
    passes() const
    {
        return eyeHeight >= 0.5 && eyeWidth >= 0.40;
    }
};

/** Result of simulating one pulse through one line. */
struct PulseResult
{
    /** Flight latency: 50% crossing at receiver minus at driver [s]. */
    double delay = 0.0;
    /** Peak received voltage as a fraction of Vdd. */
    double peakAmplitude = 0.0;
    /** Time the received waveform spends above Vdd/2 [s]. */
    double pulseWidth = 0.0;
    /** Amplitude >= 75% of Vdd? (paper's amplitude requirement) */
    bool amplitudeOk = false;
    /** Width >= 40% of the cycle? (paper's setup/hold requirement) */
    bool widthOk = false;

    bool passes() const { return amplitudeOk && widthOk; }
};

/**
 * Simulates single-ended voltage-mode pulses over lossy striplines.
 */
class PulseSimulator
{
  public:
    /**
     * @param tech Technology assumptions (Vdd, clock, resistivity).
     * @param num_samples FFT size (power of two).
     * @param window Simulated time window [s]; defaults to 8 cycles.
     */
    explicit PulseSimulator(const Technology &tech,
                            std::size_t num_samples = 4096,
                            double window = 0.0);

    /**
     * Simulate one isolated pulse of one bit time through the line.
     *
     * @param geom Line cross-section (shielded stripline).
     * @param length Routed length [m].
     * @param source_r Driver source resistance [Ohm]; pass <= 0 for
     *                 a digitally-tuned matched termination (== Z0).
     */
    PulseResult simulate(const WireGeometry &geom, double length,
                         double source_r = -1.0) const;

    /**
     * The received waveform itself (volts at each sample), for
     * plotting/inspection; same settings as simulate().
     */
    std::vector<double> waveform(const WireGeometry &geom, double length,
                                 double source_r = -1.0) const;

    /**
     * Drive a pseudo-random bit train through the line and fold the
     * received waveform into an eye diagram: inter-symbol
     * interference from the dispersive (skin-effect) tail closes the
     * eye on marginal lines even when a single pulse looks clean.
     *
     * @param geom Line cross-section.
     * @param length Routed length [m].
     * @param num_bits Bits in the train (<= numSamples per window).
     * @param seed Pattern seed (deterministic).
     */
    EyeResult eyeDiagram(const WireGeometry &geom, double length,
                         int num_bits = 64,
                         std::uint64_t seed = 1) const;

    /**
     * The raw received bit-train waveform used by eyeDiagram().
     */
    std::vector<double> trainWaveform(const WireGeometry &geom,
                                      double length, int num_bits,
                                      std::uint64_t seed) const;

    /** Sample spacing of the simulated waveform [s]. */
    double sampleTime() const { return window / numSamples; }

  private:
    std::vector<std::complex<double>>
    computeSpectrum(const WireGeometry &geom, double length,
                    double source_r) const;

    /** Apply the line transfer function to a time-domain signal. */
    std::vector<double>
    propagate(std::vector<std::complex<double>> signal,
              const WireGeometry &geom, double length,
              double source_r) const;

    /**
     * Skin-effect resistance per frequency bin, hoisted out of the
     * per-bin transfer-function loop and memoized per (geometry,
     * spectrum size) across propagate() calls on this instance.
     * Entries are exact per-bin acResistance values, so cached and
     * uncached propagation are bit-identical. Instances are not
     * shared across threads (each user constructs its own).
     */
    struct AcTable
    {
        WireGeometry geom{};
        std::size_t n = 0;
        std::vector<double> r;
    };

    /** Find or build the r_ac table for one spectrum. */
    const std::vector<double> &acTableFor(const WireGeometry &geom,
                                          std::size_t n) const;

    mutable std::vector<AcTable> acTables;

    const Technology &tech;
    FieldSolver solver;
    std::size_t numSamples;
    double window;
};

} // namespace phys
} // namespace tlsim

#endif // TLSIM_PHYS_PULSE_HH
