/**
 * @file
 * Coupled-line crosstalk analysis for the transmission-line bundles.
 *
 * The paper (Section 3) routes an alternating power/ground shield
 * line between every pair of signal lines, on top of the reference
 * planes, to control capacitive and inductive coupling. This module
 * quantifies that choice: classic weakly-coupled-line theory gives
 * the near-end (backward) and far-end (forward) crosstalk amplitudes
 * from the capacitive and inductive coupling ratios, with and without
 * the shield.
 */

#ifndef TLSIM_PHYS_CROSSTALK_HH
#define TLSIM_PHYS_CROSSTALK_HH

#include <algorithm>

#include "phys/fieldsolver.hh"
#include "phys/geometry.hh"
#include "phys/technology.hh"

namespace tlsim
{
namespace phys
{

/** Crosstalk summary for one aggressor-victim pair. */
struct CrosstalkResult
{
    /** Capacitive coupling ratio Cm/C. */
    double capacitiveRatio = 0.0;
    /** Inductive coupling ratio Lm/L. */
    double inductiveRatio = 0.0;
    /** Near-end (backward) crosstalk amplitude [fraction of Vdd]. */
    double nearEnd = 0.0;
    /** Far-end (forward) crosstalk amplitude [fraction of Vdd]. */
    double farEnd = 0.0;
    /** Shield line present between aggressor and victim? */
    bool shielded = false;

    /** Worst coupled noise on the victim [fraction of Vdd]. */
    double
    worstNoise() const
    {
        return std::max(nearEnd, farEnd);
    }

    /**
     * Within the noise budget? The paper reserves 25% of Vdd for all
     * noise sources; we allot 15% of Vdd to neighbour crosstalk.
     */
    bool withinBudget() const { return worstNoise() <= 0.15; }
};

/**
 * Weakly-coupled-line crosstalk estimator.
 */
class CrosstalkModel
{
  public:
    explicit CrosstalkModel(const Technology &tech);

    /**
     * Analyze the aggressor->victim coupling for two parallel lines
     * of the given geometry and routed length.
     *
     * @param geom Cross-section of both lines (TLC bundles use equal
     *             signal and shield geometry).
     * @param length Coupled length [m].
     * @param shielded True if a grounded shield line separates them
     *                 (the victim then sits at 2*pitch, behind the
     *                 shield).
     * @param rise_time Aggressor edge rate [s].
     */
    CrosstalkResult analyze(const WireGeometry &geom, double length,
                            bool shielded,
                            double rise_time = 10e-12) const;

  private:
    const Technology &tech;
    FieldSolver solver;
};

} // namespace phys
} // namespace tlsim

#endif // TLSIM_PHYS_CROSSTALK_HH
