#include "phys/fieldsolver.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"

namespace tlsim
{
namespace phys
{

double
LineParams::z0() const
{
    return std::sqrt(inductance / capacitance);
}

double
LineParams::velocity() const
{
    return 1.0 / std::sqrt(inductance * capacitance);
}

FieldSolver::FieldSolver(const Technology &tech_)
    : tech(tech_)
{}

LineParams
FieldSolver::extract(const WireGeometry &geom) const
{
    TLSIM_ASSERT(geom.width > 0 && geom.height > 0, "bad geometry");

    LineParams params;
    params.resistance = tech.bulkCopperResistivity / geom.crossSection();

    // Symmetric stripline characteristic impedance (Cohn/Wheeler
    // closed form): ground-plane separation b, effective width
    // correcting for finite thickness.
    const double b = 2.0 * geom.height + geom.thickness;
    const double t_over_b = geom.thickness / b;
    double w_eff = geom.width;
    if (t_over_b > 0.0) {
        // Thickness correction increases the effective width.
        w_eff += (geom.thickness / M_PI) *
                 (1.0 + std::log(2.0 * b / geom.thickness));
    }
    double z0_lossless =
        (30.0 * M_PI / tech.sqrtK()) * b / (w_eff + 0.441 * b);

    // Side shield lines add capacitance, lowering Z0 somewhat. Only
    // a fraction of the lateral field terminates on the shields (the
    // reference planes capture most of it), hence the 0.5 factor.
    const double eps = tech.dielectricK * constants::epsilon0;
    double shield_cap = 0.5 * 2.0 * eps * geom.thickness / geom.spacing;

    // Convert Z0 to L and C using the TEM relations, then add the
    // shield capacitance (inductance is reduced correspondingly
    // because the shields carry return current).
    double v = tech.dielectricVelocity();
    double c_plane = 1.0 / (z0_lossless * v);
    double c_total = c_plane + shield_cap;
    double l_plane = z0_lossless / v;
    // Shield return paths reduce the loop inductance ~10%.
    double l_total = 0.90 * l_plane;

    params.capacitance = c_total;
    params.inductance = l_total;
    return params;
}

double
FieldSolver::skinDepth(double freq) const
{
    TLSIM_ASSERT(freq > 0, "skin depth needs positive frequency");
    return std::sqrt(tech.copperResistivity /
                     (M_PI * freq * constants::mu0));
}

double
FieldSolver::acResistance(const WireGeometry &geom, double freq) const
{
    double r_dc = tech.bulkCopperResistivity / geom.crossSection();
    if (freq <= 0.0)
        return r_dc;

    double delta = skinDepth(freq);
    // Current crowds into a shell of depth delta around the
    // conductor perimeter. When delta reaches half the smaller
    // conductor dimension the current fully penetrates and the
    // resistance is simply the DC value.
    double w = geom.width;
    double t = geom.thickness;
    if (2.0 * delta >= std::min(w, t))
        return r_dc;
    double shell = 2.0 * delta * (w + t) - 4.0 * delta * delta;
    shell = std::clamp(shell, 1e-18, geom.crossSection());
    double r_ac = tech.bulkCopperResistivity / shell;
    return std::max(r_dc, r_ac);
}

} // namespace phys
} // namespace tlsim
