#include "cacti/srambank.hh"

#include <cmath>

#include "sim/logging.hh"

namespace tlsim
{
namespace cacti
{

namespace
{

// Calibrated access-time decomposition, in seconds, as a function of
// capacity in KB. The constant term covers decoder + sense + output
// stages; the sqrt term covers the wordline/bitline RC growth with
// array edge length. Fit so 64 KB -> ~299 ps, 512 KB -> ~724 ps,
// 1 MB -> ~997 ps (3 / 8 / 10 cycles at 10 GHz).
constexpr double accessBase = 66.0e-12;
constexpr double accessSqrtKb = 29.10e-12;

} // namespace

SramBankModel::SramBankModel(const phys::Technology &tech_,
                             std::uint64_t capacity_bytes, int assoc_,
                             int block_bytes)
    : tech(tech_), capacityBytes(capacity_bytes), assoc(assoc_),
      blockBytes(block_bytes)
{
    TLSIM_ASSERT(capacity_bytes >= 1024, "bank too small: {} B",
                 capacity_bytes);
    TLSIM_ASSERT(assoc_ > 0 && block_bytes > 0, "bad bank params");
}

double
SramBankModel::accessTime() const
{
    double kb = static_cast<double>(capacityBytes) / 1024.0;
    return accessBase + accessSqrtKb * std::sqrt(kb);
}

int
SramBankModel::accessCycles() const
{
    return static_cast<int>(std::ceil(accessTime() / tech.cycleTime()));
}

double
SramBankModel::area() const
{
    // Data bits plus tag bits (tag ~ 30 bits per block at 16 MB /
    // 64 B), times cell area, times a periphery overhead factor that
    // shrinks for larger banks (decoders/sense amps amortize).
    double data_bits = static_cast<double>(capacityBytes) * 8.0;
    double blocks = static_cast<double>(capacityBytes) / blockBytes;
    double tag_bits = blocks * 30.0;
    double kb = static_cast<double>(capacityBytes) / 1024.0;
    double overhead = 2.06 + 5.45 / std::sqrt(kb);
    return (data_bits + tag_bits) * tech.sramCellArea * overhead;
}

double
SramBankModel::readEnergy() const
{
    // Bitline + sense energy scales with the array edge (sqrt of
    // capacity); roughly 50 pJ for a 64 KB bank at 45 nm.
    double kb = static_cast<double>(capacityBytes) / 1024.0;
    return 6.25e-12 * std::sqrt(kb);
}

long
SramBankModel::transistorCount() const
{
    double data_bits = static_cast<double>(capacityBytes) * 8.0;
    double blocks = static_cast<double>(capacityBytes) / blockBytes;
    double tag_bits = blocks * 30.0;
    // 6T cells plus ~6% periphery devices.
    return static_cast<long>((data_bits + tag_bits) * 6.0 * 1.06);
}

} // namespace cacti
} // namespace tlsim
