/**
 * @file
 * CACTI-style SRAM bank timing / area / energy model.
 *
 * Substitutes for ECACTI in the paper's methodology. The model uses a
 * CACTI-like decomposition (decoder + wordline + bitline + sense +
 * output) with constants calibrated at the 45 nm / 10 GHz design
 * point so the paper's published operating points fall out: a 64 KB
 * bank accesses in 3 cycles, 512 KB in 8, and 1 MB in 10 (Table 2),
 * and the storage areas of the DNUCA and TLC organizations land near
 * Table 7.
 */

#ifndef TLSIM_CACTI_SRAMBANK_HH
#define TLSIM_CACTI_SRAMBANK_HH

#include <cstdint>

#include "phys/technology.hh"

namespace tlsim
{
namespace cacti
{

/**
 * Timing, area, and energy of one SRAM cache bank.
 */
class SramBankModel
{
  public:
    /**
     * @param tech Technology assumptions.
     * @param capacity_bytes Data capacity of the bank.
     * @param assoc Set associativity of the bank's arrays.
     * @param block_bytes Cache block size.
     */
    SramBankModel(const phys::Technology &tech,
                  std::uint64_t capacity_bytes, int assoc,
                  int block_bytes);

    std::uint64_t capacity() const { return capacityBytes; }

    /** Access time [s]: decoder through output drivers. */
    double accessTime() const;

    /** Access latency in (ceil) clock cycles. */
    int accessCycles() const;

    /** Bank substrate area including tags and periphery [m^2]. */
    double area() const;

    /** Dynamic energy of one read access [J]. */
    double readEnergy() const;

    /** Total transistors in the bank (storage + periphery). */
    long transistorCount() const;

  private:
    const phys::Technology &tech;
    std::uint64_t capacityBytes;
    int assoc;
    int blockBytes;
};

} // namespace cacti
} // namespace tlsim

#endif // TLSIM_CACTI_SRAMBANK_HH
