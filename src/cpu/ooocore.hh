/**
 * @file
 * Trace-driven out-of-order core timing model (paper Table 3).
 *
 * Substitutes for the paper's Simics+timing-first SPARC V9 processor.
 * The model captures the mechanisms that translate L2 latency and
 * miss behaviour into execution time: a 128-entry reorder buffer,
 * 4-wide fetch/retire, loads issued at fetch (addresses known from
 * the trace) completing out of order, in-order retirement blocking on
 * incomplete loads, stores draining through a store buffer, and an
 * in-order frontend that stalls on instruction-cache misses. MSHR and
 * memory-controller limits come from the attached cache hierarchy.
 *
 * Internally the core counts time in "quarter cycles" (one fetch/
 * retire slot of the 4-wide machine) and converts to cycles at the
 * memory interface.
 */

#ifndef TLSIM_CPU_OOOCORE_HH
#define TLSIM_CPU_OOOCORE_HH

#include <cstdint>
#include <vector>

#include "cpu/trace.hh"
#include "mem/l1cache.hh"
#include "sim/eventq.hh"
#include "sim/stats.hh"

namespace tlsim
{
namespace cpu
{

/** Core configuration (defaults follow paper Table 3). */
struct CoreConfig
{
    int robEntries = 128;
    int width = 4;
    /** Latency assumed for non-memory instructions [cycles]. */
    Cycles opLatency = 1;
    /** Pipeline refill penalty after a branch mispredict [cycles]. */
    Cycles mispredictPenalty = 25;
    /**
     * Quarter-cycle fetch slots consumed per instruction: 1 gives the
     * ideal 4-wide ceiling; larger values model dependence-chain ILP
     * limits (see workload::BenchmarkProfile::ilpQuanta).
     */
    int fetchQuanta = 1;

    bool operator==(const CoreConfig &) const = default;
};

/**
 * The out-of-order core.
 */
class OoOCore : public stats::StatGroup
{
  public:
    OoOCore(EventQueue &eq, stats::StatGroup *parent,
            mem::L1Cache &icache, mem::L1Cache &dcache,
            const CoreConfig &config = CoreConfig{}, int core_id = 0);

    /**
     * Execute @p num_instructions from the trace source.
     * @return The cycle count consumed (end cycle - start cycle).
     */
    std::uint64_t run(TraceSource &source,
                      std::uint64_t num_instructions);

    /** Total retired instructions across all run() calls. */
    std::uint64_t instructionsRetired() const { return retiredCount; }

    /** Current end-of-execution cycle. */
    std::uint64_t currentCycle() const { return lastRetireQ / 4; }

    /** Core id stamped on this core's memory requests. */
    int coreId() const { return id; }

    /**
     * Pull the core's fetch clock up to the shared event queue's
     * current time. In a CMP the cores time-multiplex one queue; a
     * core resuming its quantum after the others advanced global time
     * must not issue cache accesses in the past. Single-core runs
     * never call this (fetch legitimately lags the queue there).
     */
    void
    catchUp()
    {
        fetchQ = std::max(fetchQ, eventq.now() * 4);
    }

    /**
     * Attach the deadlock watchdog: the core's wait loops poll it,
     * turning a hang (lost completion or over-age request) into a
     * diagnostic dump + catchable panic.
     */
    void setWatchdog(fault::Watchdog *wd) { watchdog = wd; }

  private:
    /** Quarter-cycle ticks: 4 per clock cycle (one per pipeline slot). */
    using QTick = std::uint64_t;

    EventQueue &eventq;
    mem::L1Cache &icache;
    mem::L1Cache &dcache;
    CoreConfig cfg;
    int id;

    /** Ring buffers over the ROB window. */
    std::vector<QTick> completeQ;
    std::vector<QTick> retireQ;
    std::vector<bool> pending;

  public:
    stats::Scalar cycles;
    stats::Scalar instructions;
    stats::Scalar loads;
    stats::Scalar stores;
    stats::Scalar ifetchStalls;
    stats::Scalar mispredicts;
    stats::Formula ipc;

  private:
    /** Advance the retire chain up to and including instruction idx. */
    void ensureRetired(std::uint64_t idx);

    /** Fetch-time of the next instruction honoring ROB occupancy. */
    QTick nextFetchSlot();

    /** Process one non-memory instruction. */
    void stepNonMem();

    /** Process one data memory instruction. */
    void stepMemOp(const TraceRecord &record);

    /** Process an instruction-fetch block transition. */
    void stepIFetch(const TraceRecord &record);

    /** Run the event queue until a pending completion is posted. */
    void waitForCompletion(std::uint64_t idx);

    std::uint64_t nextIndex = 0; // next instruction to fetch
    std::uint64_t prevLoadIdx = ~std::uint64_t(0); // last load fetched
    std::uint64_t retireUpto = 0; // instructions whose retire is known
    QTick fetchQ = 0;
    QTick lastRetireQ = 0;
    QTick ifetchReadyQ = 0;
    std::uint64_t retiredCount = 0;
    fault::Watchdog *watchdog = nullptr;
};

} // namespace cpu
} // namespace tlsim

#endif // TLSIM_CPU_OOOCORE_HH
