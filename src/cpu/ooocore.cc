#include "cpu/ooocore.hh"

#include <algorithm>

#include "sim/trace/debug.hh"
#include "sim/trace/tracesink.hh"

namespace tlsim
{
namespace cpu
{

OoOCore::OoOCore(EventQueue &eq, stats::StatGroup *parent,
                 mem::L1Cache &icache_, mem::L1Cache &dcache_,
                 const CoreConfig &config, int core_id)
    : stats::StatGroup("core", parent), eventq(eq), icache(icache_),
      dcache(dcache_), cfg(config), id(core_id),
      completeQ(static_cast<std::size_t>(config.robEntries), 0),
      retireQ(static_cast<std::size_t>(config.robEntries), 0),
      pending(static_cast<std::size_t>(config.robEntries), false),
      cycles(this, "cycles", "execution cycles"),
      instructions(this, "instructions", "retired instructions"),
      loads(this, "loads", "data loads issued"),
      stores(this, "stores", "data stores issued"),
      ifetchStalls(this, "ifetch_stalls",
                   "fetch stalls due to instruction-cache misses"),
      mispredicts(this, "mispredicts", "branch mispredictions"),
      ipc(this, "ipc", "instructions per cycle", [this]() {
          double c = cycles.value();
          return c > 0.0 ? instructions.value() / c : 0.0;
      })
{}

OoOCore::QTick
OoOCore::nextFetchSlot()
{
    QTick slot = fetchQ + static_cast<QTick>(cfg.fetchQuanta);
    std::uint64_t rob = static_cast<std::uint64_t>(cfg.robEntries);
    if (nextIndex >= rob) {
        std::uint64_t oldest = nextIndex - rob;
        ensureRetired(oldest);
        slot = std::max(slot, retireQ[oldest % rob]);
    }
    slot = std::max(slot, ifetchReadyQ);
    return slot;
}

void
OoOCore::ensureRetired(std::uint64_t idx)
{
    std::uint64_t rob = static_cast<std::uint64_t>(cfg.robEntries);
    while (retireUpto <= idx) {
        std::uint64_t j = retireUpto;
        std::size_t slot = j % rob;
        if (pending[slot])
            waitForCompletion(j);
        QTick complete = completeQ[slot];
        lastRetireQ = std::max(lastRetireQ + 1, complete);
        retireQ[slot] = lastRetireQ;
        ++retireUpto;
        ++retiredCount;
    }
}

void
OoOCore::waitForCompletion(std::uint64_t idx)
{
    std::uint64_t rob = static_cast<std::uint64_t>(cfg.robEntries);
    std::size_t slot = idx % rob;
    while (pending[slot]) {
        Tick next = eventq.nextTick();
        if (watchdog) {
            // Quiescent queue with requests outstanding, or an
            // over-age request: dump diagnostics and panic (caught
            // by crash-isolated sweeps) instead of asserting blind.
            // A partitioned run's watchdog can instead report window
            // progress on a seemingly drained queue: re-poll.
            if (next == MaxTick) {
                if (watchdog->onQuiescent(eventq.now()))
                    continue;
            } else {
                watchdog->checkAge(eventq.now());
            }
        }
        TLSIM_ASSERT(next != MaxTick,
                     "deadlock: waiting on instruction {} with an "
                     "empty event queue", idx);
        eventq.advanceTo(next);
    }
}

void
OoOCore::stepNonMem()
{
    std::uint64_t i = nextIndex++;
    std::size_t slot = i % static_cast<std::uint64_t>(cfg.robEntries);
    fetchQ = nextFetchSlot();
    pending[slot] = false;
    completeQ[slot] = fetchQ + 4 * cfg.opLatency;
}

void
OoOCore::stepMemOp(const TraceRecord &record)
{
    std::uint64_t i = nextIndex++;
    std::uint64_t rob = static_cast<std::uint64_t>(cfg.robEntries);
    std::size_t slot = i % rob;
    fetchQ = nextFetchSlot();

    // Address dependence on the previous load (pointer chasing):
    // the operation cannot issue until that load's data returns.
    if (record.dependsOnPrev && prevLoadIdx != ~std::uint64_t(0) &&
        prevLoadIdx + rob > i) {
        std::size_t prev_slot = prevLoadIdx % rob;
        if (pending[prev_slot])
            waitForCompletion(prevLoadIdx);
        fetchQ = std::max(fetchQ, completeQ[prev_slot]);
    }

    Tick cycle = fetchQ / 4;
    eventq.advanceTo(cycle);

    if (record.type == mem::AccessType::Store) {
        ++stores;
        // Stores retire through the store buffer; the write itself
        // drains to the cache in the background.
        pending[slot] = false;
        completeQ[slot] = fetchQ + 4 * cfg.opLatency;
        dcache.access(mem::MemRequest{record.blockAddr,
                                      mem::AccessType::Store, cycle,
                                      id},
                      [](Tick) {});
        return;
    }

    ++loads;
    TLSIM_DPRINTF(CPU, "t={} load #{} block {}", cycle, i,
                  record.blockAddr);
    pending[slot] = true;
    completeQ[slot] = 0;
    prevLoadIdx = i;
    dcache.access(mem::MemRequest{record.blockAddr,
                                  mem::AccessType::Load, cycle, id},
                  [this, slot](Tick done) {
                      pending[slot] = false;
                      completeQ[slot] = done * 4;
                  });
}

void
OoOCore::stepIFetch(const TraceRecord &record)
{
    // The in-order frontend redirects to a new instruction block; a
    // miss stalls fetch until the fill returns. The frontend can be
    // ahead of fetchQ after a long backend stall, so clamp to the
    // current simulated time.
    Tick cycle = std::max(fetchQ / 4, eventq.now());
    eventq.advanceTo(cycle);

    bool resolved = false;
    Tick ready = cycle;
    icache.access(mem::MemRequest{record.blockAddr,
                                  mem::AccessType::InstFetch, cycle,
                                  id},
                  [&resolved, &ready](Tick done) {
                      resolved = true;
                      ready = done;
                  });
    while (!resolved) {
        Tick next = eventq.nextTick();
        if (watchdog) {
            if (next == MaxTick) {
                if (watchdog->onQuiescent(eventq.now()))
                    continue;
            } else {
                watchdog->checkAge(eventq.now());
            }
        }
        TLSIM_ASSERT(next != MaxTick,
                     "deadlock: ifetch miss never completed");
        eventq.advanceTo(next);
    }
    // Hits are pipelined and do not stall the frontend.
    if (ready > cycle + 3) {
        ++ifetchStalls;
        TLSIM_DPRINTF(CPU, "t={} ifetch stall block {} until {}",
                      cycle, record.blockAddr, ready);
        ifetchReadyQ = std::max(ifetchReadyQ, ready * 4);
    }

    // A mispredicted branch pays the pipeline refill penalty (deep
    // 30-stage pipeline, paper Table 3) on top of any cache stall.
    if (record.mispredict) {
        ++mispredicts;
        Tick redirect = std::max(ready, cycle) + cfg.mispredictPenalty;
        ifetchReadyQ = std::max(ifetchReadyQ, redirect * 4);
    }
}

std::uint64_t
OoOCore::run(TraceSource &source, std::uint64_t num_instructions)
{
    std::uint64_t start_cycle = lastRetireQ / 4;
    std::uint64_t executed = 0;

    while (executed < num_instructions) {
        TraceRecord record = source.next();
        std::uint64_t gap = std::min<std::uint64_t>(
            record.gap, num_instructions - executed);
        for (std::uint64_t k = 0; k < gap; ++k)
            stepNonMem();
        executed += gap;
        if (executed >= num_instructions)
            break;
        if (record.isIFetch) {
            stepIFetch(record);
        } else {
            stepMemOp(record);
            ++executed;
        }
    }

    // Drain: retire everything fetched. Fetch resumes no earlier than
    // the drain point (retires are monotone, so lastRetireQ bounds the
    // event queue's current time).
    if (nextIndex > 0) {
        ensureRetired(nextIndex - 1);
        fetchQ = std::max(fetchQ, lastRetireQ);
    }

    std::uint64_t end_cycle = lastRetireQ / 4;
    std::uint64_t elapsed = end_cycle - start_cycle;
    cycles += static_cast<double>(elapsed);
    instructions += static_cast<double>(executed);
    TLSIM_DPRINTF(CPU, "run: {} instructions in {} cycles", executed,
                  elapsed);
    if (auto *sink = trace::TraceSink::active()) {
        sink->span(trace::cat::cpu,
                   csprintf("run {} insts", executed),
                   static_cast<Tick>(start_cycle),
                   static_cast<Tick>(end_cycle), trace::tid::cpu);
    }
    return elapsed;
}

} // namespace cpu
} // namespace tlsim
