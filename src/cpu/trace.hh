/**
 * @file
 * Trace record types connecting workload generators to the CPU model.
 */

#ifndef TLSIM_CPU_TRACE_HH
#define TLSIM_CPU_TRACE_HH

#include <cstdint>

#include "mem/request.hh"
#include "sim/types.hh"

namespace tlsim
{
namespace cpu
{

/**
 * One event in an instruction trace: either a data memory operation
 * or an instruction-fetch block transition, preceded by @c gap
 * non-memory instructions.
 */
struct TraceRecord
{
    /** Non-memory instructions preceding this event. */
    std::uint32_t gap = 0;
    /** True for an instruction-fetch block transition. */
    bool isIFetch = false;
    /** Load or Store for data events. */
    mem::AccessType type = mem::AccessType::Load;
    /** Data block address, or the new instruction block for ifetch. */
    Addr blockAddr = 0;
    /**
     * True if this memory operation's address depends on the value
     * of the previous load (pointer chasing): it cannot issue until
     * that load completes, limiting memory-level parallelism.
     */
    bool dependsOnPrev = false;
    /**
     * For ifetch records: the jump was a mispredicted branch; the
     * frontend pays the pipeline refill penalty.
     */
    bool mispredict = false;
};

/**
 * Source of trace records; implemented by the workload generators.
 */
class TraceSource
{
  public:
    virtual ~TraceSource() = default;

    /** Produce the next record (infinite stream). */
    virtual TraceRecord next() = 0;
};

} // namespace cpu
} // namespace tlsim

#endif // TLSIM_CPU_TRACE_HH
