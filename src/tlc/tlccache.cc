#include "tlc/tlccache.hh"

#include <algorithm>
#include <cmath>
#include <memory>

#include "mem/l2registry.hh"
#include "mem/warmstate.hh"
#include "phys/geometry.hh"
#include "phys/physcache.hh"
#include "phys/pulse.hh"
#include "phys/rcwire.hh"
#include "sim/prof/prof.hh"
#include "sim/trace/debug.hh"
#include "sim/trace/tracesink.hh"

namespace tlsim
{
namespace tlc
{

namespace
{

int
ceilDiv(int a, int b)
{
    return (a + b - 1) / b;
}

/** Address bits carried by a request (set index + tag info + cmd). */
constexpr int requestBits = 48;

} // namespace

TlcCache::TlcCache(EventQueue &eq, stats::StatGroup *parent,
                   mem::MemBackend &dram, const phys::Technology &tech,
                   const TlcConfig &config, fault::Injector *injector_)
    : mem::L2Cache(config.name, eq, parent, dram), cfg(config),
      floorplan(tech, config),
      bankModel(tech, config.bankBytes, config.ways, mem::blockBytes),
      bankCycles(bankModel.accessCycles()),
      downLinks(static_cast<std::size_t>(config.pairs())),
      upLinks(static_cast<std::size_t>(config.pairs())),
      bankPorts(static_cast<std::size_t>(config.banks)),
      injector(injector_),
      multiMatches(this, "multi_matches",
                   "lookups with multiple partial-tag matches"),
      falseMatches(this, "false_matches",
                   "partial-tag matches that failed the full-tag "
                   "comparison"),
      eccRetries(this, "ecc_retries",
                 "responses re-requested after an end-to-end ECC "
                 "failure")
{
    if (metrics::spatialEnabled) {
        bankBusyHeatmap = std::make_unique<metrics::Heatmap>(
            this, "heatmap_bank_busy",
            "bank-port busy cycles per time window per bank",
            static_cast<std::size_t>(cfg.banks));
        bankWaitHeatmap = std::make_unique<metrics::Heatmap>(
            this, "heatmap_bank_wait",
            "bank-port queueing cycles per time window per bank",
            static_cast<std::size_t>(cfg.banks));
        std::size_t link_cells =
            2 * static_cast<std::size_t>(cfg.pairs());
        linkBusyHeatmap = std::make_unique<metrics::Heatmap>(
            this, "heatmap_link_busy",
            "TL link busy cycles per time window per link "
            "(down 2p, up 2p+1)",
            link_cells);
        linkWaitHeatmap = std::make_unique<metrics::Heatmap>(
            this, "heatmap_link_wait",
            "TL link queueing cycles per time window per link "
            "(down 2p, up 2p+1)",
            link_cells);
        for (int b = 0; b < cfg.banks; ++b) {
            bankPorts[static_cast<std::size_t>(b)].attachTelemetry(
                bankBusyHeatmap.get(), bankWaitHeatmap.get(),
                static_cast<std::size_t>(b));
        }
        for (int p = 0; p < cfg.pairs(); ++p) {
            downLinks[static_cast<std::size_t>(p)].attachTelemetry(
                linkBusyHeatmap.get(), linkWaitHeatmap.get(),
                static_cast<std::size_t>(downLinkId(p)));
            upLinks[static_cast<std::size_t>(p)].attachTelemetry(
                linkBusyHeatmap.get(), linkWaitHeatmap.get(),
                static_cast<std::size_t>(upLinkId(p)));
        }
    }

    const int block_bits = mem::blockBytes * 8;
    const int slice_bits = block_bits / cfg.banksPerBlock;
    reqCycles = ceilDiv(std::min(requestBits, 8 * cfg.downBits),
                        cfg.downBits);
    int resp_payload =
        slice_bits + (cfg.banksPerBlock > 1 ? cfg.highTagBits : 0);
    respCycles = ceilDiv(resp_payload, cfg.upBits);
    dataDownCycles = ceilDiv(slice_bits, cfg.downBits);

    std::uint32_t sets = static_cast<std::uint32_t>(
        cfg.capacity() /
        (static_cast<std::uint64_t>(cfg.groups()) * cfg.ways *
         mem::blockBytes));
    arrays.reserve(static_cast<std::size_t>(cfg.groups()));
    for (int g = 0; g < cfg.groups(); ++g)
        arrays.emplace_back(sets, cfg.ways);

    if (injector) {
        // Degraded-mode fallback: a conventional repeated-RC bundle
        // routed alongside each pair's transmission lines, clamped to
        // never beat the lines it replaces.
        const phys::WireGeometry rc_geom = phys::conventionalGlobalWire();
        rcFallback.resize(static_cast<std::size_t>(cfg.pairs()));
        rcOneWay.resize(static_cast<std::size_t>(cfg.pairs()));
        for (int p = 0; p < cfg.pairs(); ++p) {
            double seconds = phys::PhysCache::instance().rcDelay(
                tech, rc_geom, floorplan.pair(p).length);
            Tick cyc = static_cast<Tick>(
                std::ceil(seconds / tech.cycleTime()));
            rcOneWay[static_cast<std::size_t>(p)] = std::max(
                cyc, static_cast<Tick>(floorplan.oneWayCycles(p)));
        }
        if (injector->config().deriveFromMargin) {
            // Weight each pair's transient error rate by its pulse
            // simulator signal-integrity slack (amplitude and width
            // relative to the paper's >=75% Vdd / >=40% cycle
            // requirements): marginal long lines fault up to 8x more
            // than comfortable short ones. Weights are fixed before
            // simulation starts, keeping the fault stream a pure
            // function of the spec.
            for (int p = 0; p < cfg.pairs(); ++p) {
                const PairLayout &lay = floorplan.pair(p);
                const phys::TransmissionLineSpec &spec =
                    phys::specForLength(lay.length);
                phys::PulseResult pr = phys::PhysCache::instance().pulse(
                    tech, spec.geometry, lay.length);
                double amp_slack = pr.peakAmplitude / 0.75;
                double width_slack =
                    pr.pulseWidth / (0.40 * tech.cycleTime());
                double margin =
                    std::min(amp_slack, width_slack) - 1.0;
                double weight =
                    margin <= 0.0
                        ? 8.0
                        : 1.0 + 7.0 * std::exp(-8.0 * margin);
                injector->setLinkWeight(downLinkId(p), weight);
                injector->setLinkWeight(upLinkId(p), weight);
            }
        }
    }
}

Cycles
TlcCache::uncontendedLoadLatency(Addr block_addr) const
{
    int group = groupOf(block_addr);
    Cycles worst = 0;
    for (int m = 0; m < cfg.banksPerBlock; ++m) {
        int pair = pairOf(bankOf(group, m));
        Cycles one_way =
            static_cast<Cycles>(floorplan.oneWayCycles(pair));
        worst = std::max(worst, 2 * one_way + bankCycles);
    }
    return worst;
}

std::pair<Cycles, Cycles>
TlcCache::latencyRange() const
{
    Cycles lo = ~Cycles(0), hi = 0;
    for (int g = 0; g < cfg.groups(); ++g) {
        Cycles lat = uncontendedLoadLatency(static_cast<Addr>(g));
        lo = std::min(lo, lat);
        hi = std::max(hi, lat);
    }
    return {lo, hi};
}

std::vector<TlcCache::MemberTiming>
TlcCache::sendRequests(int group, Tick now, int req_cycles,
                       std::uint64_t req)
{
    auto *sink = trace::TraceSink::active();
    std::vector<MemberTiming> members(
        static_cast<std::size_t>(cfg.banksPerBlock));
    for (int m = 0; m < cfg.banksPerBlock; ++m) {
        int bank = bankOf(group, m);
        int pair = pairOf(bank);
        const PairLayout &lay = floorplan.pair(pair);
        Tick one_way = static_cast<Tick>(floorplan.oneWayCycles(pair));
        Tick start = downLinks[static_cast<std::size_t>(pair)].reserve(
            now, static_cast<Cycles>(req_cycles));
        Tick arrival = start + static_cast<Tick>(req_cycles - 1) +
                       one_way;
        Tick bank_start =
            bankPorts[static_cast<std::size_t>(bank)].reserve(
                arrival, static_cast<Cycles>(bankCycles));
        MemberTiming &timing = members[static_cast<std::size_t>(m)];
        timing.done = bank_start + bankCycles;
        timing.parts.queueWait +=
            static_cast<double>((start - now) + (bank_start - arrival));
        timing.parts.wire +=
            static_cast<double>((req_cycles - 1) + one_way);
        timing.parts.bank += static_cast<double>(bankCycles);
        networkEnergy += req_cycles * cfg.downBits * 0.5 *
                         lay.energyPerBit;
        if (sink) {
            sink->span(trace::cat::noc, csprintf("req pair{}", pair),
                       start, arrival, trace::tid::nocBase + pair, req);
            sink->span(trace::cat::bank, csprintf("bank{}", bank),
                       bank_start, timing.done,
                       trace::tid::bankBase + bank, req);
        }
    }
    return members;
}

Tick
TlcCache::collectResponses(int group, std::vector<MemberTiming> &members,
                           int resp_cycles, int payload_bits,
                           std::uint64_t req,
                           trace::LatencyBreakdown &critical)
{
    auto *sink = trace::TraceSink::active();
    Tick resolved = 0;
    for (int m = 0; m < cfg.banksPerBlock; ++m) {
        int bank = bankOf(group, m);
        int pair = pairOf(bank);
        const PairLayout &lay = floorplan.pair(pair);
        Tick one_way = static_cast<Tick>(floorplan.oneWayCycles(pair));
        MemberTiming &timing = members[static_cast<std::size_t>(m)];
        Tick start = upLinks[static_cast<std::size_t>(pair)].reserve(
            timing.done, static_cast<Cycles>(resp_cycles));
        Tick first_word = start + one_way;
        timing.firstWord = first_word;
        timing.parts.queueWait +=
            static_cast<double>(start - timing.done);
        timing.parts.wire += static_cast<double>(one_way);
        if (first_word > resolved) {
            resolved = first_word;
            critical = timing.parts;
        }
        networkEnergy += payload_bits * 0.5 * lay.energyPerBit;
        if (sink) {
            sink->span(trace::cat::noc, csprintf("resp pair{}", pair),
                       start, first_word, trace::tid::nocUpBase + pair,
                       req);
        }
    }
    return resolved;
}

void
TlcCache::access(const mem::MemRequest &l2_req, mem::RespCallback cb)
{
    const Addr block_addr = l2_req.blockAddr;
    const Tick now = l2_req.issued;

    prof::Scope prof_scope("tlc:access");
    ++requests;
    if (l2_req.type == mem::AccessType::Store) {
        banksAccessed.sample(static_cast<double>(cfg.banksPerBlock));
        handleWrite(block_addr, now, false);
        cb(now);
        return;
    }
    ++demandRequests;
    banksAccessed.sample(static_cast<double>(cfg.banksPerBlock));
    handleLoad(block_addr, now, l2_req.id, std::move(cb));
}

void
TlcCache::accessFunctional(Addr block_addr, mem::AccessType type)
{
    int group = groupOf(block_addr);
    auto &array = arrays[static_cast<std::size_t>(group)];
    Addr frame = frameAddr(block_addr);
    ++useCounter;
    auto way = array.lookup(frame);
    if (way) {
        array.touch(frame, *way, useCounter, mem::isWrite(type));
        return;
    }
    array.insert(frame, useCounter, mem::isWrite(type));
}

bool
TlcCache::saveWarmState(std::ostream &os) const
{
    mem::warm::putU64(os, useCounter);
    mem::warm::putU32(os, static_cast<std::uint32_t>(arrays.size()));
    for (const auto &array : arrays)
        mem::warm::writeArray(os, array);
    return true;
}

bool
TlcCache::loadWarmState(std::istream &is)
{
    std::uint64_t counter = 0;
    std::uint32_t groups = 0;
    if (!mem::warm::getU64(is, counter) ||
        !mem::warm::getU32(is, groups) || groups != arrays.size())
        return false;
    for (auto &array : arrays)
        if (!mem::warm::readArray(is, array))
            return false;
    useCounter = counter;
    return true;
}

void
TlcCache::handleLoad(Addr block_addr, Tick now, std::uint64_t req,
                     mem::RespCallback cb)
{
    int group = groupOf(block_addr);

    if (injector) {
        // A stuck member bank never responds: the controller's
        // request timer expires and the read degrades to memory.
        for (int m = 0; m < cfg.banksPerBlock; ++m) {
            if (injector->bankStuck(bankOf(group, m), now)) {
                ++linkTimeouts;
                Tick timeout = static_cast<Tick>(
                    injector->config().requestTimeout);
                trace::LatencyBreakdown stuck_bd;
                stuck_bd.fault = static_cast<double>(timeout);
                lookupLatency.sample(static_cast<double>(timeout));
                handleMiss(block_addr, now, now + timeout, req,
                           stuck_bd, std::move(cb));
                return;
            }
        }
        if (groupDegraded(group, now)) {
            handleDegradedLoad(block_addr, now, req, std::move(cb));
            return;
        }
    }

    auto &array = arrays[static_cast<std::size_t>(group)];
    Addr frame = frameAddr(block_addr);

    auto way = array.lookup(frame);
    int ptag_matches =
        cfg.banksPerBlock > 1
            ? array.partialTagMatches(frame, cfg.partialTagBits)
            : (way ? 1 : 0);

    TLSIM_DPRINTF(L2, "t={} {} load block {} group {} ({} ptag "
                  "matches)", now, cfg.name, block_addr, group,
                  ptag_matches);

    auto members = sendRequests(group, now, reqCycles, req);
    const int slice_bits =
        mem::blockBytes * 8 / cfg.banksPerBlock +
        (cfg.banksPerBlock > 1 ? cfg.highTagBits : 0);

    trace::LatencyBreakdown bd;
    Tick resolved;
    bool second_round = false;
    if (ptag_matches == 0) {
        // Every bank reports "no match" in a single beat.
        resolved = collectResponses(group, members, 1, 8, req, bd);
    } else if (ptag_matches == 1 || cfg.banksPerBlock == 1) {
        // The common case: banks return the (single) matching way's
        // data slice plus its high tag bits.
        resolved = collectResponses(group, members, respCycles,
                                    slice_bits, req, bd);
        if (!way)
            ++falseMatches;
    } else {
        // Multiple partial-tag matches: banks return only the high
        // tag bits of all matching ways; if the block is resident the
        // controller issues a second request for the chosen way.
        ++multiMatches;
        resolved = collectResponses(group, members, 1,
                                    ptag_matches * cfg.highTagBits,
                                    req, bd);
        if (way) {
            resolved = secondRoundTrip(group, resolved, req, bd);
            second_round = true;
        }
    }

    // End-to-end ECC: a corrupted response is detected at the
    // controller and fetched again (paper Section 4).
    if (cfg.lineErrorRate > 0.0 &&
        errorRng.chance(cfg.lineErrorRate)) {
        ++eccRetries;
        resolved = secondRoundTrip(group, resolved, req, bd);
        second_round = true;
    }

    // Injected transient link errors: each member's response slice is
    // CRC-checked at the controller; corruption on any up link NACKs
    // the whole read, which is re-requested after exponential backoff
    // until the retry budget or the request timeout runs out. The CRC
    // surcharge and every retry round trip land in the breakdown's
    // fault component.
    bool give_up = false;
    if (injector) {
        const Tick crc =
            static_cast<Tick>(injector->config().crcCycles);
        auto response_corrupted = [&]() {
            bool bad = false;
            for (int m = 0; m < cfg.banksPerBlock; ++m) {
                bad |= injector->messageError(
                    upLinkId(pairOf(bankOf(group, m))));
            }
            return bad;
        };
        bd.fault += static_cast<double>(crc);
        Tick post = resolved + crc;
        int attempt = 0;
        while (response_corrupted()) {
            if (attempt >= injector->config().maxRetries ||
                post - now > injector->config().requestTimeout) {
                give_up = true;
                break;
            }
            ++linkRetries;
            Tick retry_at = post + injector->backoff(attempt);
            trace::LatencyBreakdown scratch;
            Tick redo = secondRoundTrip(group, retry_at, req, scratch);
            bd.fault += static_cast<double>((redo - post) + crc);
            post = redo + crc;
            ++attempt;
        }
        resolved = post;
        if (attempt > 0)
            second_round = true;
    }

    Tick latency = resolved - now;
    lookupLatency.sample(static_cast<double>(latency));
    if (!second_round && latency == uncontendedLoadLatency(block_addr))
        ++predictableLookups;

    if (way && !give_up) {
        ++hits;
        ++useCounter;
        array.touch(frame, *way, useCounter, false);
        TLSIM_DPRINTF(L2, "t={} {} hit block {} latency {}", now,
                      cfg.name, block_addr, latency);
        recordBreakdown(bd);
        if (auto *sink = trace::TraceSink::active()) {
            sink->span(trace::cat::l2,
                       csprintf("{} hit {}", cfg.name, block_addr),
                       now, resolved, trace::tid::l2, req);
        }
        // Deliver through the event queue so the L1 observes the fill
        // at the correct simulated time (keeping its MSHR open until
        // then for coalescing).
        if (useTypedHotPathEvents) {
            eventq.scheduleCallback(resolved, std::move(cb));
        } else {
            eventq.scheduleFunc(resolved,
                                [cb = std::move(cb), resolved]() {
                                    cb(resolved);
                                });
        }
    } else {
        if (give_up)
            ++linkTimeouts;
        handleMiss(block_addr, now, resolved, req, bd, std::move(cb));
    }
}

bool
TlcCache::groupDegraded(int group, Tick now) const
{
    if (!injector || !injector->hasDeadLinks())
        return false;
    for (int m = 0; m < cfg.banksPerBlock; ++m) {
        int pair = pairOf(bankOf(group, m));
        if (injector->linkDead(downLinkId(pair), now) ||
            injector->linkDead(upLinkId(pair), now))
            return true;
    }
    return false;
}

void
TlcCache::handleDegradedLoad(Addr block_addr, Tick now,
                             std::uint64_t req, mem::RespCallback cb)
{
    ++degradedRequests;
    int group = groupOf(block_addr);
    auto &array = arrays[static_cast<std::size_t>(group)];
    Addr frame = frameAddr(block_addr);
    auto way = array.lookup(frame);

    TLSIM_DPRINTF(L2, "t={} {} degraded load block {} group {}", now,
                  cfg.name, block_addr, group);

    // Every member leg runs over its pair's RC fallback bundle (the
    // dead pairs lost their transmission lines; the group's healthy
    // members follow so the slices stay in lockstep). Excess over the
    // healthy path is the breakdown's fault component.
    trace::LatencyBreakdown bd;
    Tick resolved = 0;
    for (int m = 0; m < cfg.banksPerBlock; ++m) {
        int bank = bankOf(group, m);
        int pair = pairOf(bank);
        auto pi = static_cast<std::size_t>(pair);
        // Abandon reservations queued on the dead lines: fallback
        // traffic must not inherit a dead link's backlog.
        if (injector->linkDead(downLinkId(pair), now))
            downLinks[pi].resetHorizon(now);
        if (injector->linkDead(upLinkId(pair), now))
            upLinks[pi].resetHorizon(now);
        Tick one_way = rcOneWay[pi];
        Tick start = rcFallback[pi].reserve(
            now, static_cast<Cycles>(reqCycles + respCycles));
        Tick arrival =
            start + static_cast<Tick>(reqCycles - 1) + one_way;
        Tick bank_start =
            bankPorts[static_cast<std::size_t>(bank)].reserve(
                arrival, static_cast<Cycles>(bankCycles));
        Tick done = bank_start + static_cast<Tick>(bankCycles);
        Tick first_word = done + one_way;
        if (first_word > resolved) {
            resolved = first_word;
            Tick healthy =
                static_cast<Tick>(floorplan.oneWayCycles(pair));
            trace::LatencyBreakdown parts;
            parts.queueWait = static_cast<double>(
                (start - now) + (bank_start - arrival));
            parts.wire =
                static_cast<double>((reqCycles - 1) + 2 * healthy);
            parts.bank = static_cast<double>(bankCycles);
            parts.fault = static_cast<double>(first_word - now) -
                          parts.queueWait - parts.wire - parts.bank;
            bd = parts;
        }
    }

    Tick latency = resolved - now;
    lookupLatency.sample(static_cast<double>(latency));
    if (way) {
        ++hits;
        ++useCounter;
        array.touch(frame, *way, useCounter, false);
        recordBreakdown(bd);
        if (useTypedHotPathEvents) {
            eventq.scheduleCallback(resolved, std::move(cb));
        } else {
            eventq.scheduleFunc(resolved,
                                [cb = std::move(cb), resolved]() {
                                    cb(resolved);
                                });
        }
    } else {
        handleMiss(block_addr, now, resolved, req, bd, std::move(cb));
    }
}

Tick
TlcCache::secondRoundTrip(int group, Tick start, std::uint64_t req,
                          trace::LatencyBreakdown &bd)
{
    auto members = sendRequests(group, start, reqCycles, req);
    const int slice_bits = mem::blockBytes * 8 / cfg.banksPerBlock;
    trace::LatencyBreakdown round;
    Tick resolved = collectResponses(group, members, respCycles,
                                     slice_bits, req, round);
    bd += round;
    return resolved;
}

void
TlcCache::handleWrite(Addr block_addr, Tick now, bool is_fill)
{
    int group = groupOf(block_addr);
    auto &array = arrays[static_cast<std::size_t>(group)];
    Addr frame = frameAddr(block_addr);
    const int slice_bits = mem::blockBytes * 8 / cfg.banksPerBlock;

    // Push the slices down to the banks (no tag comparison needed:
    // the TLC designs are exclusive write-back caches).
    std::vector<Tick> arrivals(
        static_cast<std::size_t>(cfg.banksPerBlock));
    for (int m = 0; m < cfg.banksPerBlock; ++m) {
        int bank = bankOf(group, m);
        int pair = pairOf(bank);
        auto pi = static_cast<std::size_t>(pair);
        const PairLayout &lay = floorplan.pair(pair);
        bool dead = injector &&
                    injector->linkDead(downLinkId(pair), now);
        Tick one_way =
            dead ? rcOneWay[pi]
                 : static_cast<Tick>(floorplan.oneWayCycles(pair));
        if (dead)
            downLinks[pi].resetHorizon(now);
        noc::Link &down = dead ? rcFallback[pi] : downLinks[pi];
        Tick start = down.reserve(
            now, static_cast<Cycles>(reqCycles + dataDownCycles));
        Tick arrival =
            start + static_cast<Tick>(reqCycles + dataDownCycles - 1) +
            one_way;
        bankPorts[static_cast<std::size_t>(bank)].reserve(
            arrival, static_cast<Cycles>(bankCycles));
        arrivals[static_cast<std::size_t>(m)] = arrival;
        networkEnergy += (requestBits + slice_bits) * 0.5 *
                         lay.energyPerBit;
    }

    ++useCounter;
    auto way = array.lookup(frame);
    if (way) {
        array.touch(frame, *way, useCounter, !is_fill);
        return;
    }

    if (is_fill)
        ++inserts;
    auto evicted = array.insert(frame, useCounter, !is_fill);
    if (evicted && evicted->dirty) {
        ++writebacksToMemory;
        // Victim slices travel up to the controller, then to memory.
        Tick victim_ready = 0;
        for (int m = 0; m < cfg.banksPerBlock; ++m) {
            int bank = bankOf(group, m);
            int pair = pairOf(bank);
            auto pi = static_cast<std::size_t>(pair);
            const PairLayout &lay = floorplan.pair(pair);
            Tick avail = arrivals[static_cast<std::size_t>(m)] +
                         static_cast<Tick>(bankCycles);
            bool dead = injector &&
                        injector->linkDead(upLinkId(pair), avail);
            Tick one_way =
                dead ? rcOneWay[pi]
                     : static_cast<Tick>(floorplan.oneWayCycles(pair));
            if (dead)
                upLinks[pi].resetHorizon(avail);
            noc::Link &up = dead ? rcFallback[pi] : upLinks[pi];
            Tick start =
                up.reserve(avail, static_cast<Cycles>(respCycles));
            Tick done = start + static_cast<Tick>(respCycles - 1) +
                        one_way;
            victim_ready = std::max(victim_ready, done);
            networkEnergy += slice_bits * 0.5 * lay.energyPerBit;
        }
        Addr victim_addr =
            (evicted->blockAddr << __builtin_ctz(cfg.groups())) |
            static_cast<Addr>(group);
        if (useTypedHotPathEvents) {
            // [this, victim_addr] fits the std::function small
            // buffer; the tick arrives as the callback argument.
            eventq.scheduleCallback(victim_ready,
                                    [this, victim_addr](Tick t) {
                                        dram.write(victim_addr, t);
                                    });
        } else {
            eventq.scheduleFunc(victim_ready,
                                [this, victim_addr, victim_ready]() {
                                    dram.write(victim_addr,
                                               victim_ready);
                                });
        }
    }
}

void
TlcCache::handleMiss(Addr block_addr, Tick issue, Tick miss_time,
                     std::uint64_t req, trace::LatencyBreakdown bd,
                     mem::RespCallback cb)
{
    ++misses;
    TLSIM_DPRINTF(L2, "t={} {} miss block {}", miss_time, cfg.name,
                  block_addr);
    dram.read(block_addr, miss_time,
              [this, block_addr, issue, miss_time, req, bd,
               cb = std::move(cb)](Tick ready) mutable {
                  bd.dram = static_cast<double>(ready - miss_time);
                  recordBreakdown(bd);
                  if (auto *sink = trace::TraceSink::active()) {
                      sink->span(trace::cat::l2,
                                 csprintf("{} miss {}", cfg.name,
                                          block_addr),
                                 issue, ready, trace::tid::l2, req);
                  }
                  cb(ready);
                  handleWrite(block_addr, ready, true);
              });
}

void
TlcCache::beginMeasurement()
{
    for (auto &link : downLinks)
        link.resetStats();
    for (auto &link : upLinks)
        link.resetStats();
    for (auto &port : bankPorts)
        port.resetStats();
    for (auto &link : rcFallback)
        link.resetStats();
}

void
TlcCache::dumpFaultDiagnostic() const
{
    warn("{}: fault diagnostic ({} pairs, {} banks)", cfg.name,
         cfg.pairs(), cfg.banks);
    // Utilization counters tell a deadlock report *which* resource is
    // hot: the stalled path is almost always behind the link or bank
    // with the most accumulated busy cycles.
    int hot_pair = 0, hot_bank = 0;
    std::uint64_t hot_pair_busy = 0, hot_bank_busy = 0;
    for (int p = 0; p < cfg.pairs(); ++p) {
        auto pi = static_cast<std::size_t>(p);
        std::uint64_t pair_busy = downLinks[pi].busyCycles() +
                                  upLinks[pi].busyCycles();
        if (pair_busy > hot_pair_busy) {
            hot_pair_busy = pair_busy;
            hot_pair = p;
        }
    }
    for (int b = 0; b < cfg.banks; ++b) {
        const auto &port = bankPorts[static_cast<std::size_t>(b)];
        if (port.busyCycles() > hot_bank_busy) {
            hot_bank_busy = port.busyCycles();
            hot_bank = b;
        }
    }
    for (int p = 0; p < cfg.pairs(); ++p) {
        auto pi = static_cast<std::size_t>(p);
        warn("  pair {}: down free at t={} ({} busy cycles, {} "
             "messages), up free at t={} ({} busy cycles, {} "
             "messages){}{}",
             p, downLinks[pi].freeAt(), downLinks[pi].busyCycles(),
             downLinks[pi].messageCount(), upLinks[pi].freeAt(),
             upLinks[pi].busyCycles(), upLinks[pi].messageCount(),
             rcFallback.empty()
                 ? std::string{}
                 : csprintf(", rc fallback free at t={} ({} busy "
                            "cycles, {} messages)",
                            rcFallback[pi].freeAt(),
                            rcFallback[pi].busyCycles(),
                            rcFallback[pi].messageCount()),
             p == hot_pair ? " [hottest pair]" : "");
    }
    for (int b = 0; b < cfg.banks; ++b) {
        const auto &port = bankPorts[static_cast<std::size_t>(b)];
        warn("  bank {}: port free at t={} ({} busy cycles, {} "
             "messages){}",
             b, port.freeAt(), port.busyCycles(), port.messageCount(),
             b == hot_bank ? " [hottest bank]" : "");
    }
}

void
TlcCache::syncStats()
{
    std::uint64_t busy = 0;
    for (const auto &link : downLinks)
        busy += link.busyCycles();
    for (const auto &link : upLinks)
        busy += link.busyCycles();
    linkBusyCycles = static_cast<double>(busy);
}

namespace
{

const char *const tlcOptions[] = {"lineErrorRate", "ways",
                                  "partialTagBits", "linesPerPair",
                                  "downBits", "upBits", nullptr};

/** Apply registry option overrides onto a TLC family preset. */
TlcConfig
applyTlcOptions(TlcConfig cfg, const l2::BuildContext &ctx)
{
    l2::rejectUnknownOptions(cfg.name, ctx.options, tlcOptions);
    cfg.lineErrorRate =
        l2::optionOr(ctx.options, "lineErrorRate", cfg.lineErrorRate);
    cfg.ways = static_cast<int>(
        l2::optionOr(ctx.options, "ways", cfg.ways));
    cfg.partialTagBits = static_cast<int>(l2::optionOr(
        ctx.options, "partialTagBits", cfg.partialTagBits));
    cfg.linesPerPair = static_cast<int>(
        l2::optionOr(ctx.options, "linesPerPair", cfg.linesPerPair));
    cfg.downBits = static_cast<int>(
        l2::optionOr(ctx.options, "downBits", cfg.downBits));
    cfg.upBits = static_cast<int>(
        l2::optionOr(ctx.options, "upBits", cfg.upBits));
    return cfg;
}

l2::Factory
tlcFactory(TlcConfig (*preset)())
{
    return [preset](const l2::BuildContext &ctx) {
        return std::make_unique<TlcCache>(
            ctx.eq, ctx.parent, ctx.dram, ctx.tech,
            applyTlcOptions(preset(), ctx), ctx.injector);
    };
}

const l2::Registrar registerTlcBase{"TLC", tlcFactory(baseTlc)};
const l2::Registrar registerTlcOpt1000{"TLCopt1000",
                                       tlcFactory(tlcOpt1000)};
const l2::Registrar registerTlcOpt500{"TLCopt500",
                                      tlcFactory(tlcOpt500)};
const l2::Registrar registerTlcOpt350{"TLCopt350",
                                      tlcFactory(tlcOpt350)};

} // namespace

} // namespace tlc
} // namespace tlsim
