/**
 * @file
 * TLC physical floorplan (paper Figures 2 and 4).
 *
 * Banks line two die edges; the controller sits at the die center.
 * Each bank pair's transmission-line bundle lands on one of the
 * controller's two faces; bundles stack vertically, innermost pairs
 * nearest the controller's center. The floorplan derives, per pair:
 *
 *  - the routed transmission-line length (0.9-1.3 cm) and thus the
 *    Table 1 geometry, flight latency, and per-bit signalling energy;
 *  - the controller-internal conventional-wire delay (0-3 cycles)
 *    from the bundle's landing offset;
 *
 * and, for the whole design: the controller dimensions/area and the
 * conventional-wiring channel area (Table 7).
 */

#ifndef TLSIM_TLC_FLOORPLAN_HH
#define TLSIM_TLC_FLOORPLAN_HH

#include <vector>

#include "phys/technology.hh"
#include "phys/transline.hh"
#include "tlc/config.hh"

namespace tlsim
{
namespace tlc
{

/** Physical layout facts for one bank pair's link bundle. */
struct PairLayout
{
    /** Routed transmission-line length [m]. */
    double length;
    /** One-way transmission-line flight latency [cycles]. */
    int flightCycles;
    /** One-way controller-internal wire delay [cycles]. */
    int internalCycles;
    /** Vertical landing offset from the controller center [m]. */
    double offset;
    /** Bundle height on the controller face [m]. */
    double bundleHeight;
    /** Dynamic energy to signal one bit on this pair's lines [J]. */
    double energyPerBit;
};

/**
 * Floorplan calculator for one TLC family member.
 */
class TlcFloorplan
{
  public:
    TlcFloorplan(const phys::Technology &tech, const TlcConfig &config);

    int pairs() const { return static_cast<int>(layout.size()); }

    const PairLayout &pair(int index) const { return layout.at(
        static_cast<std::size_t>(index)); }

    /** Height of one controller face [m]. */
    double controllerHeight() const { return faceHeight; }

    /** Controller width [m] (fixed by the datapath/logic spine). */
    double controllerWidth() const { return 1.0e-3; }

    /** Controller substrate area [m^2] (Table 7, column 4). */
    double
    controllerArea() const
    {
        return controllerHeight() * controllerWidth();
    }

    /**
     * Substrate consumed by the conventional wiring between the
     * transmission-line landings and the controller center, including
     * routing blockage (Table 7, column 3).
     */
    double channelArea() const;

    /** One-way uncontended latency: flight + internal, per pair. */
    int
    oneWayCycles(int pair_index) const
    {
        const PairLayout &p = pair(pair_index);
        return p.flightCycles + p.internalCycles;
    }

  private:
    const phys::Technology &tech;
    TlcConfig cfg;
    std::vector<PairLayout> layout;
    double faceHeight = 0.0;
};

} // namespace tlc
} // namespace tlsim

#endif // TLSIM_TLC_FLOORPLAN_HH
