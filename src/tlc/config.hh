/**
 * @file
 * Configuration of the TLC design family (paper Table 2).
 */

#ifndef TLSIM_TLC_CONFIG_HH
#define TLSIM_TLC_CONFIG_HH

#include <cstdint>
#include <string>

namespace tlsim
{
namespace tlc
{

/**
 * Parameters of one member of the TLC family.
 *
 * The base design stores whole blocks in one bank; the optimized
 * designs stripe each block across banksPerBlock banks, check 6-bit
 * partial tags at the banks, and resolve full tags at the controller.
 */
struct TlcConfig
{
    std::string name;
    /** Number of storage banks. */
    int banks;
    /** Banks a 64 B block is striped across (1 for the base design). */
    int banksPerBlock;
    /** Capacity of one bank [bytes]. */
    std::uint64_t bankBytes;
    /** Transmission lines shared by a pair of adjacent banks. */
    int linesPerPair;
    /** Request (controller->bank) link width in bits, per pair. */
    int downBits;
    /** Response (bank->controller) link width in bits, per pair. */
    int upBits;
    /** Set associativity. */
    int ways = 4;
    /** Partial tag width used by the optimized designs. */
    int partialTagBits = 6;
    /** High-order tag bits returned with optimized-design responses. */
    int highTagBits = 24;

    /**
     * Probability that the controller's end-to-end ECC check detects
     * a corrupted response, forcing a retry round trip (paper
     * Section 4's fault-repair mechanism). Zero models clean lines.
     */
    double lineErrorRate = 0.0;

    /** Bank pairs (each pair shares one up and one down link). */
    int pairs() const { return banks / 2; }

    /** Address-selected bank groups (banks / banksPerBlock). */
    int groups() const { return banks / banksPerBlock; }

    /** Total transmission lines used (Table 2, column 6). */
    int totalLines() const { return pairs() * linesPerPair; }

    /** Total cache capacity [bytes]. */
    std::uint64_t
    capacity() const
    {
        return static_cast<std::uint64_t>(banks) * bankBytes;
    }
};

/** The base TLC design: 32 x 512 KB banks, 2048 lines. */
TlcConfig baseTlc();

/** TLCopt 1000: 16 x 1 MB banks, 2 banks/block, 1008 lines. */
TlcConfig tlcOpt1000();

/** TLCopt 500: 16 x 1 MB banks, 4 banks/block, 512 lines. */
TlcConfig tlcOpt500();

/** TLCopt 350: 16 x 1 MB banks, 8 banks/block, 352 lines. */
TlcConfig tlcOpt350();

/**
 * Look up a family preset by its design name ("TLC", "TLCopt1000",
 * "TLCopt500", "TLCopt350"). Fatal error for other names.
 */
TlcConfig configByName(const std::string &name);

} // namespace tlc
} // namespace tlsim

#endif // TLSIM_TLC_CONFIG_HH
