/**
 * @file
 * The Transmission Line Cache designs (paper Section 4).
 *
 * A TLC decouples storage from the controller: banks on the die edges
 * talk to a central controller over point-to-point transmission-line
 * links shared by bank pairs. The base design stores whole blocks in
 * one bank; the optimized designs stripe blocks across banksPerBlock
 * banks (each on a different pair, so slices move in parallel), check
 * a 6-bit partial tag at the bank, and resolve the full tag at the
 * controller — including the rare multiple-partial-match second round
 * trip.
 */

#ifndef TLSIM_TLC_TLCCACHE_HH
#define TLSIM_TLC_TLCCACHE_HH

#include <vector>

#include "cacti/srambank.hh"
#include "mem/l2cache.hh"
#include "mem/setassoc.hh"
#include "noc/link.hh"
#include "phys/technology.hh"
#include "sim/rng.hh"
#include "tlc/config.hh"
#include "tlc/floorplan.hh"

namespace tlsim
{
namespace tlc
{

/**
 * A member of the TLC design family (base or optimized).
 */
class TlcCache : public mem::L2Cache
{
  public:
    TlcCache(EventQueue &eq, stats::StatGroup *parent, mem::Dram &dram,
             const phys::Technology &tech, const TlcConfig &config);

    void access(Addr block_addr, mem::AccessType type, Tick now,
                mem::RespCallback cb) override;

    void accessFunctional(Addr block_addr,
                          mem::AccessType type) override;

    int linkCount() const override { return 2 * cfg.pairs(); }
    std::string designName() const override { return cfg.name; }

    void syncStats() override;

    void beginMeasurement() override;

    const TlcConfig &config() const { return cfg; }
    const TlcFloorplan &layout() const { return floorplan; }

    int bankAccessCycles() const { return bankCycles; }

    /** Uncontended load latency for a specific block. */
    Cycles uncontendedLoadLatency(Addr block_addr) const;

    /** Min/max uncontended load latency over all groups (Table 2). */
    std::pair<Cycles, Cycles> latencyRange() const;

  private:
    TlcConfig cfg;
    TlcFloorplan floorplan;
    cacti::SramBankModel bankModel;
    int bankCycles;
    /** Per-pair down (controller->banks) and up links. */
    std::vector<noc::Link> downLinks;
    std::vector<noc::Link> upLinks;
    std::vector<noc::Link> bankPorts;

  public:
    /** Optimized-design stats. */
    stats::Scalar multiMatches;
    stats::Scalar falseMatches;
    /** End-to-end ECC retries (lineErrorRate > 0). */
    stats::Scalar eccRetries;

  private:
    /** Bank group a block maps to. */
    int
    groupOf(Addr block_addr) const
    {
        return static_cast<int>(block_addr &
                                static_cast<Addr>(cfg.groups() - 1));
    }

    /** Address presented to the group's set-associative array. */
    Addr
    frameAddr(Addr block_addr) const
    {
        return block_addr >> __builtin_ctz(cfg.groups());
    }

    /** Member bank m of group g. */
    int
    bankOf(int group, int member) const
    {
        return group * cfg.banksPerBlock + member;
    }

    /** Pair whose links serve a bank (members span distinct pairs). */
    int pairOf(int bank) const { return bank % cfg.pairs(); }

    /** Handle a demand read. */
    void handleLoad(Addr block_addr, Tick now, mem::RespCallback cb);

    /** Handle a store / writeback (also used for fills). */
    void handleWrite(Addr block_addr, Tick now, bool is_fill);

    /** Second round trip after a multiple partial-tag match. */
    Tick secondRoundTrip(int group, Tick start);

    /** Miss path: DRAM fetch, fill, respond. */
    void handleMiss(Addr block_addr, Tick miss_time,
                    mem::RespCallback cb);

    /**
     * Reserve the request path to every member bank and return, per
     * member, the tick its bank access completes; also accounts
     * request energy.
     */
    std::vector<Tick> sendRequests(int group, Tick now, int req_cycles);

    /**
     * Reserve response paths of @p resp_cycles for every member and
     * return the max first-word arrival at the controller.
     */
    Tick collectResponses(int group, const std::vector<Tick> &bank_done,
                          int resp_cycles, int payload_bits);

    std::vector<mem::SetAssocArray> arrays;
    std::uint64_t useCounter = 0;
    /** Deterministic error-injection source. */
    Rng errorRng{0xecc5eedULL};

    /** Serialization constants (cycles). */
    int reqCycles;
    int respCycles; // per-bank read response
    int dataDownCycles; // per-bank fill/store payload
};

} // namespace tlc
} // namespace tlsim

#endif // TLSIM_TLC_TLCCACHE_HH
