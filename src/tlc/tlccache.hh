/**
 * @file
 * The Transmission Line Cache designs (paper Section 4).
 *
 * A TLC decouples storage from the controller: banks on the die edges
 * talk to a central controller over point-to-point transmission-line
 * links shared by bank pairs. The base design stores whole blocks in
 * one bank; the optimized designs stripe blocks across banksPerBlock
 * banks (each on a different pair, so slices move in parallel), check
 * a 6-bit partial tag at the bank, and resolve the full tag at the
 * controller — including the rare multiple-partial-match second round
 * trip.
 */

#ifndef TLSIM_TLC_TLCCACHE_HH
#define TLSIM_TLC_TLCCACHE_HH

#include <memory>
#include <vector>

#include "cacti/srambank.hh"
#include "mem/l2cache.hh"
#include "mem/setassoc.hh"
#include "noc/link.hh"
#include "phys/technology.hh"
#include "sim/fault/injector.hh"
#include "sim/rng.hh"
#include "tlc/config.hh"
#include "tlc/floorplan.hh"

namespace tlsim
{
namespace tlc
{

/**
 * A member of the TLC design family (base or optimized).
 */
class TlcCache : public mem::L2Cache
{
  public:
    /** @param injector Per-run fault source; null disables faults. */
    TlcCache(EventQueue &eq, stats::StatGroup *parent, mem::MemBackend &dram,
             const phys::Technology &tech, const TlcConfig &config,
             fault::Injector *injector = nullptr);

    using mem::L2Cache::access;
    void access(const mem::MemRequest &req,
                mem::RespCallback cb) override;

    void accessFunctional(Addr block_addr,
                          mem::AccessType type) override;

    bool saveWarmState(std::ostream &os) const override;
    bool loadWarmState(std::istream &is) override;

    int linkCount() const override { return 2 * cfg.pairs(); }
    std::string designName() const override { return cfg.name; }

    void syncStats() override;

    void beginMeasurement() override;

    /**
     * TLC always runs serial: transmission-line point-to-point links
     * and bank ports are reserved synchronously at issue time in
     * controller context (there is no in-flight window to overlap),
     * so every structure is order-sensitive domain-0 state.
     */
    pdes::PartitionPlan
    partitionPlan(int domains) const override
    {
        pdes::PartitionPlan plan;
        (void)domains;
        plan.serialReason =
            "TLC reserves its transmission lines and bank ports "
            "synchronously at issue time in controller context";
        return plan;
    }

    const TlcConfig &config() const { return cfg; }
    const TlcFloorplan &layout() const { return floorplan; }

    int bankAccessCycles() const { return bankCycles; }

    /** Uncontended load latency for a specific block. */
    Cycles uncontendedLoadLatency(Addr block_addr) const;

    /** Min/max uncontended load latency over all groups (Table 2). */
    std::pair<Cycles, Cycles> latencyRange() const;

    void dumpFaultDiagnostic() const override;

    /**
     * Fault-injection link ids: pair p's down link is 2p, its up
     * link 2p+1 (the encoding FaultConfig::deadLinks uses).
     */
    int downLinkId(int pair) const { return 2 * pair; }
    int upLinkId(int pair) const { return 2 * pair + 1; }

  private:
    TlcConfig cfg;
    TlcFloorplan floorplan;
    cacti::SramBankModel bankModel;
    int bankCycles;
    /** Per-pair down (controller->banks) and up links. */
    std::vector<noc::Link> downLinks;
    std::vector<noc::Link> upLinks;
    std::vector<noc::Link> bankPorts;
    fault::Injector *injector;
    /**
     * Degraded-mode path: when a pair's transmission lines die, its
     * traffic falls back to a conventional repeated-RC wire routed
     * alongside (one bidirectional bundle per pair), much slower but
     * functional.
     */
    std::vector<noc::Link> rcFallback;
    /** One-way latency of each pair's RC fallback wire [cycles]. */
    std::vector<Tick> rcOneWay;

    /**
     * Spatial heatmaps (constructed only when
     * metrics::spatialEnabled): bank cells are bank ids, link cells
     * are the fault-injection link ids (down 2p, up 2p+1).
     */
    std::unique_ptr<metrics::Heatmap> bankBusyHeatmap;
    std::unique_ptr<metrics::Heatmap> bankWaitHeatmap;
    std::unique_ptr<metrics::Heatmap> linkBusyHeatmap;
    std::unique_ptr<metrics::Heatmap> linkWaitHeatmap;

  public:
    /** Optimized-design stats. */
    stats::Scalar multiMatches;
    stats::Scalar falseMatches;
    /** End-to-end ECC retries (lineErrorRate > 0). */
    stats::Scalar eccRetries;

  private:
    /** Bank group a block maps to. */
    int
    groupOf(Addr block_addr) const
    {
        return static_cast<int>(block_addr &
                                static_cast<Addr>(cfg.groups() - 1));
    }

    /** Address presented to the group's set-associative array. */
    Addr
    frameAddr(Addr block_addr) const
    {
        return block_addr >> __builtin_ctz(cfg.groups());
    }

    /** Member bank m of group g. */
    int
    bankOf(int group, int member) const
    {
        return group * cfg.banksPerBlock + member;
    }

    /** Pair whose links serve a bank (members span distinct pairs). */
    int pairOf(int bank) const { return bank % cfg.pairs(); }

    /**
     * Timing of one member bank's leg of a request, with the exact
     * queue/wire/bank decomposition of its path (the components sum
     * to done - issue, and after the response leg to
     * firstWord - issue).
     */
    struct MemberTiming
    {
        Tick done = 0; ///< bank access complete
        Tick firstWord = 0; ///< first response word at controller
        trace::LatencyBreakdown parts;
    };

    /** Handle a demand read (req is the trace-correlation id). */
    void handleLoad(Addr block_addr, Tick now, std::uint64_t req,
                    mem::RespCallback cb);

    /** True when any of the group's member pairs has died by @p now. */
    bool groupDegraded(int group, Tick now) const;

    /**
     * Degraded-mode load over the RC fallback wires (dead pair in
     * the group). The RC detour excess lands in the breakdown's
     * fault component.
     */
    void handleDegradedLoad(Addr block_addr, Tick now,
                            std::uint64_t req, mem::RespCallback cb);

    /** Handle a store / writeback (also used for fills). */
    void handleWrite(Addr block_addr, Tick now, bool is_fill);

    /**
     * Second round trip after a multiple partial-tag match; adds the
     * round's critical-path components to @p bd.
     */
    Tick secondRoundTrip(int group, Tick start, std::uint64_t req,
                         trace::LatencyBreakdown &bd);

    /** Miss path: DRAM fetch, fill, respond. */
    void handleMiss(Addr block_addr, Tick issue, Tick miss_time,
                    std::uint64_t req, trace::LatencyBreakdown bd,
                    mem::RespCallback cb);

    /**
     * Reserve the request path to every member bank; per member,
     * record the bank-completion tick and the decomposition of the
     * path so far. Also accounts request energy.
     */
    std::vector<MemberTiming> sendRequests(int group, Tick now,
                                           int req_cycles,
                                           std::uint64_t req);

    /**
     * Reserve response paths of @p resp_cycles for every member and
     * return the max first-word arrival at the controller; @p critical
     * is set to the decomposition of the member that determined it.
     */
    Tick collectResponses(int group, std::vector<MemberTiming> &members,
                          int resp_cycles, int payload_bits,
                          std::uint64_t req,
                          trace::LatencyBreakdown &critical);

    std::vector<mem::SetAssocArray> arrays;
    std::uint64_t useCounter = 0;
    /** Deterministic error-injection source. */
    Rng errorRng{0xecc5eedULL};

    /** Serialization constants (cycles). */
    int reqCycles;
    int respCycles; // per-bank read response
    int dataDownCycles; // per-bank fill/store payload
};

} // namespace tlc
} // namespace tlsim

#endif // TLSIM_TLC_TLCCACHE_HH
