#include "tlc/floorplan.hh"

#include <cmath>

#include "phys/geometry.hh"
#include "phys/rcwire.hh"
#include "sim/logging.hh"

namespace tlsim
{
namespace tlc
{

TlcFloorplan::TlcFloorplan(const phys::Technology &tech_,
                           const TlcConfig &config)
    : tech(tech_), cfg(config)
{
    TLSIM_ASSERT(cfg.pairs() >= 2 && cfg.pairs() % 2 == 0,
                 "floorplan needs an even number of pairs >= 2");

    const int pairs_per_face = cfg.pairs() / 2;

    // Controller-internal conventional wires (semi-global class).
    phys::RcWireModel internal_wire(tech,
                                    phys::conventionalSemiGlobalWire());
    const double cycles_per_meter =
        internal_wire.delay(1.0) / tech.cycleTime();

    layout.resize(static_cast<std::size_t>(cfg.pairs()));

    // Per-face stacking: pairs are assigned alternately above/below
    // the face center, innermost (shortest lines) first. Both faces
    // are identical; we lay out face 0 and mirror.
    for (int face = 0; face < 2; ++face) {
        double above = 0.0, below = 0.0;
        for (int r = 0; r < pairs_per_face; ++r) {
            int index = face * pairs_per_face + r;
            PairLayout &p = layout[static_cast<std::size_t>(index)];

            // Routed length grows with the pair's position: the
            // innermost pair reaches the nearest bank (0.9 cm), the
            // outermost the farthest (1.3 cm).
            double frac = pairs_per_face > 1
                              ? static_cast<double>(r) /
                                    (pairs_per_face - 1)
                              : 0.5;
            p.length = 0.9e-2 + 0.4e-2 * frac;

            // Bundle height: every signal line is flanked by a shield
            // line of the same pitch (alternating power/ground).
            const auto &spec = phys::specForLength(p.length);
            double line_pitch = 2.0 * spec.geometry.pitch();
            p.bundleHeight = cfg.linesPerPair * line_pitch;

            // Stack alternately above/below the face center.
            double &side = (r % 2 == 0) ? above : below;
            p.offset = side + p.bundleHeight / 2.0;
            side += p.bundleHeight;

            // Latencies and energy.
            phys::TransmissionLine line(tech, p.length);
            p.flightCycles = line.flightCycles();
            p.energyPerBit = line.energyPerBit();
            // Internal delay: conservative routing estimate with a
            // +0.3-cycle guard band, truncated to whole cycles.
            double raw = p.offset * cycles_per_meter;
            p.internalCycles = static_cast<int>(raw + 0.3);
        }
        if (face == 0)
            faceHeight = above + below;
    }
}

double
TlcFloorplan::channelArea() const
{
    // Conventional wires from each landing to the controller center:
    // linesPerPair wires of length |offset| at semi-global pitch,
    // doubled for routing blockage / repeater keep-out.
    const double pitch = phys::conventionalSemiGlobalWire().pitch();
    double area = 0.0;
    for (const auto &p : layout)
        area += cfg.linesPerPair * p.offset * pitch;
    return 2.0 * area;
}

} // namespace tlc
} // namespace tlsim
