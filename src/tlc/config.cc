#include "tlc/config.hh"

#include "sim/logging.hh"

namespace tlsim
{
namespace tlc
{

TlcConfig
baseTlc()
{
    TlcConfig cfg;
    cfg.name = "TLC";
    cfg.banks = 32;
    cfg.banksPerBlock = 1;
    cfg.bankBytes = 512 * 1024;
    // Two 8-byte unidirectional links per bank pair.
    cfg.linesPerPair = 128;
    cfg.downBits = 64;
    cfg.upBits = 64;
    return cfg;
}

TlcConfig
tlcOpt1000()
{
    TlcConfig cfg;
    cfg.name = "TLCopt1000";
    cfg.banks = 16;
    cfg.banksPerBlock = 2;
    cfg.bankBytes = 1024 * 1024;
    cfg.linesPerPair = 126;
    cfg.downBits = 30;
    cfg.upBits = 96;
    return cfg;
}

TlcConfig
tlcOpt500()
{
    TlcConfig cfg;
    cfg.name = "TLCopt500";
    cfg.banks = 16;
    cfg.banksPerBlock = 4;
    cfg.bankBytes = 1024 * 1024;
    cfg.linesPerPair = 64;
    cfg.downBits = 24;
    cfg.upBits = 40;
    return cfg;
}

TlcConfig
tlcOpt350()
{
    TlcConfig cfg;
    cfg.name = "TLCopt350";
    cfg.banks = 16;
    cfg.banksPerBlock = 8;
    cfg.bankBytes = 1024 * 1024;
    cfg.linesPerPair = 44;
    cfg.downBits = 20;
    cfg.upBits = 24;
    return cfg;
}

TlcConfig
configByName(const std::string &name)
{
    if (name == "TLC")
        return baseTlc();
    if (name == "TLCopt1000")
        return tlcOpt1000();
    if (name == "TLCopt500")
        return tlcOpt500();
    if (name == "TLCopt350")
        return tlcOpt350();
    fatal("unknown TLC design '{}'", name);
}

} // namespace tlc
} // namespace tlsim
