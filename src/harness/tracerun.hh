/**
 * @file
 * Sampled and full replay of captured (`tlt`) traces.
 *
 * runFullTrace times every instruction of a trace; runSampledTrace
 * simulates only SimPoint-selected representative intervals (see
 * workload/simpoint.hh) and reweights their per-interval RunResults
 * into a full-trace estimate, reusing warm-state checkpoints
 * (harness/checkpoint.hh) so repeated sampled runs skip the
 * functional warm-up entirely. docs/SAMPLING.md documents the
 * methodology, the expected accuracy tolerances, and the speedup
 * model; docs/REPRODUCING.md has the CLI commands.
 */

#ifndef TLSIM_HARNESS_TRACERUN_HH
#define TLSIM_HARNESS_TRACERUN_HH

#include <cstdint>
#include <string>
#include <vector>

#include "harness/system.hh"
#include "workload/simpoint.hh"
#include "workload/tracefile.hh"

namespace tlsim
{
namespace harness
{

/** Knobs for trace replay (sampled and full). */
struct TraceRunOptions
{
    /**
     * Machine to run the trace on. Trace replay is single-core
     * (captured traces carry one instruction stream); cores must be
     * 1. The config's warm/measure budgets are ignored — the trace
     * length and the interval geometry below set the budgets.
     */
    SystemConfig config;

    /** Nominal interval length in instructions. */
    std::uint64_t intervalInstructions = 100'000;
    /** Maximum clusters (= representative intervals simulated). */
    std::uint32_t maxIntervals = 4;
    /**
     * Timed warm-up inside each representative interval before its
     * measured phase (capped at a quarter of the interval), hiding
     * the empty-pipeline/idle-network transient at interval entry.
     */
    std::uint64_t timedWarmup = 20'000;
    /** k-means seed (same trace + options -> identical plan). */
    std::uint64_t seed = 0;
    /** Warm-checkpoint directory; empty disables checkpointing. */
    std::string checkpointDir;
    /** Benchmark label stamped on the RunResults. */
    std::string benchmarkLabel = "trace";
};

/** One simulated representative interval. */
struct IntervalRun
{
    workload::RepresentativeInterval rep;
    RunResult result;
    /** Warm state came from a stored checkpoint. */
    bool fromCheckpoint = false;
};

/** Everything a sampled replay produces. */
struct SampledTraceOutcome
{
    workload::SamplingPlan plan;
    std::vector<IntervalRun> intervals;
    /** Reweighted full-trace estimate (see aggregateWeighted). */
    RunResult aggregate;
    std::uint64_t checkpointHits = 0;
    std::uint64_t checkpointStores = 0;
    /** Instructions simulated with timing (warm-up + measured). */
    std::uint64_t timedInstructions = 0;
    /** Records replayed functionally to build missing warm state. */
    std::uint64_t warmRecordsReplayed = 0;
    /** Wall-clock of the whole sampled run [ms]. */
    double wallMs = 0.0;
};

/**
 * Fold per-interval results into a full-trace estimate over
 * @p total_instructions:
 *  - CPI is the weight-averaged per-interval CPI; estimated cycles =
 *    total_instructions * CPI (so ipc is the weighted harmonic mean).
 *  - Rates, means and percentages are weight-averaged directly.
 *  - Event counts (breakdown samples, resilience counters) are
 *    converted to per-instruction rates, weight-averaged, and scaled
 *    back to total_instructions.
 * Interval weights come from their cluster populations and sum to 1
 * (tests/test_sampling.cc pins both properties).
 */
RunResult aggregateWeighted(const std::vector<IntervalRun> &intervals,
                            std::uint64_t total_instructions,
                            const std::string &benchmark);

/**
 * Sampled replay of @p trace on the machine in @p options: build the
 * sampling plan, then per representative interval restore (or build
 * and store) the warm state at the interval entry, run a short timed
 * warm-up, and measure the rest of the interval. Resuming from a
 * checkpoint is byte-identical to warming cold — both load the same
 * serialized warm payload.
 */
SampledTraceOutcome runSampledTrace(const workload::TraceFile &trace,
                                    const TraceRunOptions &options);

/**
 * Timed replay of the whole trace (one pass, measurement from the
 * first instruction — cold caches included, which is what the
 * sampled estimate approximates through its first interval's
 * cluster). @p wall_ms, when non-null, receives the wall-clock time.
 */
RunResult runFullTrace(const workload::TraceFile &trace,
                       const TraceRunOptions &options,
                       double *wall_ms = nullptr);

} // namespace harness
} // namespace tlsim

#endif // TLSIM_HARNESS_TRACERUN_HH
