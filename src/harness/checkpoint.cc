#include "harness/checkpoint.hh"

#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "mem/warmstate.hh"
#include "sim/logging.hh"

namespace tlsim
{
namespace harness
{

const char *const checkpointVersionSalt = "tlwc-v1";

namespace
{

constexpr char fileMagic[8] = {'T', 'L', 'W', 'C', '0', '0', '0', '1'};
constexpr char planMagic[8] = {'T', 'L', 'S', 'P', '0', '0', '0', '1'};

/** Version salt of the sampling-plan entries (see samplingPlanKey). */
constexpr const char *planVersionSalt = "tlsp-v1";

std::string
toHex(std::uint64_t value)
{
    static const char digits[] = "0123456789abcdef";
    std::string out(16, '0');
    for (int i = 15; i >= 0; --i) {
        out[static_cast<std::size_t>(i)] = digits[value & 0xf];
        value >>= 4;
    }
    return out;
}

} // namespace

std::string
checkpointKey(std::uint64_t trace_hash, std::uint64_t start_record,
              const SystemConfig &config)
{
    std::ostringstream key;
    key << checkpointVersionSalt << "|t" << toHex(trace_hash) << "|r"
        << start_record << "|m" << toHex(config.machineHash()) << "|d"
        << config.design;
    return toHex(fnv1aHash(key.str()));
}

std::string
samplingPlanKey(std::uint64_t trace_hash,
                std::uint64_t interval_instructions,
                std::uint32_t max_clusters, std::uint64_t seed)
{
    std::ostringstream key;
    key << planVersionSalt << "|t" << toHex(trace_hash) << "|i"
        << interval_instructions << "|k" << max_clusters << "|s"
        << seed;
    return toHex(fnv1aHash(key.str()));
}

WarmCheckpointCache::WarmCheckpointCache(std::string dir)
    : _dir(std::move(dir))
{
    if (_dir.empty())
        return;
    std::error_code ec;
    std::filesystem::create_directories(_dir, ec);
    if (ec)
        fatal("cannot create checkpoint directory '{}': {}", _dir,
              ec.message());
}

std::string
WarmCheckpointCache::path(const std::string &key) const
{
    return _dir + "/warm_" + key + ".tlwc";
}

bool
WarmCheckpointCache::load(const std::string &key, System &system,
                          std::uint64_t expect_record) const
{
    if (!enabled())
        return false;
    std::ifstream is(path(key), std::ios::binary);
    if (!is.is_open())
        return false;
    char magic[8];
    if (!is.read(magic, 8) ||
        !std::equal(magic, magic + 8, fileMagic))
        return false;
    std::uint64_t record = 0;
    if (!mem::warm::getU64(is, record) || record != expect_record)
        return false;
    if (!system.loadWarmState(is))
        return false;
    // Trailing-byte check: a truncated write would already have
    // failed above, but extra bytes mean key collision or corruption.
    return is.peek() == std::ifstream::traits_type::eof();
}

void
WarmCheckpointCache::store(const std::string &key, System &system,
                           std::uint64_t start_record) const
{
    if (!enabled())
        return;
    // Serialize to memory first: designs without warm-state support
    // must leave no partial file behind.
    std::ostringstream payload(std::ios::binary);
    if (!system.saveWarmState(payload))
        return;
    std::string final_path = path(key);
    std::string tmp_path = final_path + ".tmp";
    {
        std::ofstream out(tmp_path, std::ios::binary);
        if (!out.is_open())
            fatal("cannot write checkpoint '{}'", tmp_path);
        out.write(fileMagic, 8);
        mem::warm::putU64(out, start_record);
        const std::string &bytes = payload.str();
        out.write(bytes.data(),
                  static_cast<std::streamsize>(bytes.size()));
    }
    // Write-then-rename so readers never see a torn entry.
    std::error_code ec;
    std::filesystem::rename(tmp_path, final_path, ec);
    if (ec) {
        std::filesystem::remove(tmp_path, ec);
        warn("checkpoint store failed for '{}': {}", final_path,
             ec.message());
    }
}

bool
WarmCheckpointCache::loadPlan(const std::string &key,
                              workload::SamplingPlan &plan) const
{
    if (!enabled())
        return false;
    std::ifstream is(_dir + "/plan_" + key + ".tlsp",
                     std::ios::binary);
    if (!is.is_open())
        return false;
    char magic[8];
    if (!is.read(magic, 8) ||
        !std::equal(magic, magic + 8, planMagic))
        return false;
    workload::SamplingPlan loaded;
    std::uint64_t rep_count = 0;
    std::uint8_t dropped = 0;
    if (!mem::warm::getU64(is, loaded.intervalInstructions) ||
        !mem::warm::getU64(is, loaded.numIntervals) ||
        !mem::warm::getU64(is, loaded.coveredInstructions) ||
        !mem::warm::getU8(is, dropped) ||
        !mem::warm::getU64(is, rep_count))
        return false;
    loaded.droppedTail = dropped != 0;
    for (std::uint64_t i = 0; i < rep_count; ++i) {
        workload::RepresentativeInterval rep;
        std::uint64_t weight_bits = 0;
        if (!mem::warm::getU64(is, rep.interval) ||
            !mem::warm::getU64(is, rep.startRecord) ||
            !mem::warm::getU64(is, rep.startInstr) ||
            !mem::warm::getU64(is, rep.instructions) ||
            !mem::warm::getU64(is, weight_bits) ||
            !mem::warm::getU64(is, rep.clusterSize))
            return false;
        std::memcpy(&rep.weight, &weight_bits, sizeof rep.weight);
        loaded.representatives.push_back(rep);
    }
    if (is.peek() != std::ifstream::traits_type::eof())
        return false;
    plan = std::move(loaded);
    return true;
}

void
WarmCheckpointCache::storePlan(
    const std::string &key, const workload::SamplingPlan &plan) const
{
    if (!enabled())
        return;
    std::string final_path = _dir + "/plan_" + key + ".tlsp";
    std::string tmp_path = final_path + ".tmp";
    {
        std::ofstream out(tmp_path, std::ios::binary);
        if (!out.is_open())
            fatal("cannot write sampling plan '{}'", tmp_path);
        out.write(planMagic, 8);
        mem::warm::putU64(out, plan.intervalInstructions);
        mem::warm::putU64(out, plan.numIntervals);
        mem::warm::putU64(out, plan.coveredInstructions);
        mem::warm::putU8(out, plan.droppedTail ? 1 : 0);
        mem::warm::putU64(out, plan.representatives.size());
        for (const workload::RepresentativeInterval &rep :
             plan.representatives) {
            std::uint64_t weight_bits = 0;
            std::memcpy(&weight_bits, &rep.weight,
                        sizeof weight_bits);
            mem::warm::putU64(out, rep.interval);
            mem::warm::putU64(out, rep.startRecord);
            mem::warm::putU64(out, rep.startInstr);
            mem::warm::putU64(out, rep.instructions);
            mem::warm::putU64(out, weight_bits);
            mem::warm::putU64(out, rep.clusterSize);
        }
    }
    std::error_code ec;
    std::filesystem::rename(tmp_path, final_path, ec);
    if (ec) {
        std::filesystem::remove(tmp_path, ec);
        warn("sampling-plan store failed for '{}': {}", final_path,
             ec.message());
    }
}

} // namespace harness
} // namespace tlsim
