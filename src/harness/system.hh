/**
 * @file
 * System builder: assembles a complete simulated machine (OoO core,
 * split L1s, one of the six L2 designs, DRAM) for one benchmark run,
 * and the benchmark runner used by every table/figure experiment.
 */

#ifndef TLSIM_HARNESS_SYSTEM_HH
#define TLSIM_HARNESS_SYSTEM_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cpu/ooocore.hh"
#include "mem/dram.hh"
#include "mem/l1cache.hh"
#include "mem/l2cache.hh"
#include "sim/eventq.hh"
#include "sim/stats.hh"
#include "workload/generator.hh"
#include "workload/profile.hh"

namespace tlsim
{
namespace harness
{

/** The six cache designs compared in the paper. */
enum class DesignKind
{
    Snuca2,
    Dnuca,
    TlcBase,
    TlcOpt1000,
    TlcOpt500,
    TlcOpt350,
};

/** All designs, in paper order. */
const std::vector<DesignKind> &allDesigns();

/** The TLC family only (Figures 7 and 8). */
const std::vector<DesignKind> &tlcFamily();

/** Human-readable design name. */
std::string designName(DesignKind kind);

/**
 * One fully wired simulated machine.
 */
class System
{
  public:
    explicit System(DesignKind kind,
                    const cpu::CoreConfig &core_config = {});
    ~System();

    /** The machine's private event queue (one per System). */
    EventQueue &eventQueue() { return eq; }
    /** The L2 design under test. */
    mem::L2Cache &l2() { return *l2Cache; }
    /** The out-of-order core driving the hierarchy. */
    cpu::OoOCore &core() { return *cpuCore; }
    /** Split L1 data cache. */
    mem::L1Cache &l1d() { return *dcache; }
    /** Split L1 instruction cache. */
    mem::L1Cache &l1i() { return *icache; }
    /** Backing DRAM model. */
    mem::Dram &dram() { return *dramModel; }
    /** Root of the machine's statistics tree. */
    stats::StatGroup &root() { return rootGroup; }

    /** Reset all statistics at a measurement boundary. */
    void beginMeasurement();

    /**
     * Functionally warm the cache hierarchy over @p instructions
     * trace instructions (no timing, no events). Mirrors the paper's
     * long warmup phases at a fraction of the cost.
     */
    void functionalWarm(cpu::TraceSource &source,
                        std::uint64_t instructions);

  private:
    EventQueue eq;
    stats::StatGroup rootGroup;
    std::unique_ptr<mem::Dram> dramModel;
    std::unique_ptr<mem::L2Cache> l2Cache;
    std::unique_ptr<mem::L1Cache> icache;
    std::unique_ptr<mem::L1Cache> dcache;
    std::unique_ptr<cpu::OoOCore> cpuCore;
};

/** Metrics extracted from the measured phase of one run. */
struct RunResult
{
    std::string design;
    std::string benchmark;

    std::uint64_t cycles = 0;
    std::uint64_t instructions = 0;
    double ipc = 0.0;

    double l2RequestsPer1k = 0.0;
    double l2MissesPer1k = 0.0;
    double meanLookupLatency = 0.0;
    double predictablePct = 0.0;
    double banksPerRequest = 0.0;
    double networkPowerMw = 0.0;
    double linkUtilizationPct = 0.0;

    // DNUCA-specific (zero for other designs).
    double closeHitPct = 0.0;
    double promotesPerInsert = 0.0;
    double fastMissPct = 0.0;

    // TLCopt-specific.
    double multiMatchPct = 0.0;

    // Mean per-request latency-breakdown components (cycles), from
    // the design's lat_* distributions, with the sample count behind
    // each mean (a mean of 0.0 with 0 samples is "no data", not
    // "zero latency" — render it accordingly).
    double queueWaitMean = 0.0;
    double wireMean = 0.0;
    double bankMean = 0.0;
    double dramMean = 0.0;
    std::uint64_t queueWaitSamples = 0;
    std::uint64_t wireSamples = 0;
    std::uint64_t bankSamples = 0;
    std::uint64_t dramSamples = 0;
};

/**
 * Observer hooks around the measured phase of runBenchmark, for
 * attaching observability (periodic stat samplers, stat dumps, extra
 * reporting) without changing the runner itself. Either hook may be
 * empty.
 */
struct RunObserver
{
    /** Fires after beginMeasurement, before the measured run. */
    std::function<void(System &)> onMeasureBegin;
    /** Fires after the measured run and syncStats. */
    std::function<void(System &)> onMeasureEnd;
};

/** Default functional (untimed) warmup budget, in instructions. */
constexpr std::uint64_t defaultFunctionalWarmup = 200'000'000;
/** Default timed warmup budget, in instructions. */
constexpr std::uint64_t defaultWarmup = 3'000'000;
/** Default measured budget, in instructions. */
constexpr std::uint64_t defaultMeasure = 10'000'000;

/**
 * Run one benchmark on one design: warm up, then measure.
 *
 * @param kind Cache design to build.
 * @param profile Workload profile.
 * @param warm_instructions Instructions executed before measurement.
 * @param measure_instructions Instructions measured.
 * @param run_seed Extra seed entropy (same seed -> same trace for
 *                 every design, enabling normalized comparisons).
 * @param functional_warm Untimed cache-warming instructions run
 *                        before the timed phases.
 * @param observer Optional hooks around the measured phase.
 */
RunResult runBenchmark(DesignKind kind,
                       const workload::BenchmarkProfile &profile,
                       std::uint64_t warm_instructions,
                       std::uint64_t measure_instructions,
                       std::uint64_t run_seed = 0,
                       std::uint64_t functional_warm =
                           defaultFunctionalWarmup,
                       const RunObserver *observer = nullptr);

} // namespace harness
} // namespace tlsim

#endif // TLSIM_HARNESS_SYSTEM_HH
