/**
 * @file
 * System builder: assembles a complete simulated machine (N OoO
 * cores with private split L1s, one registry-built L2 design, DRAM)
 * from a declarative SystemConfig, and the benchmark runner used by
 * every table/figure experiment.
 */

#ifndef TLSIM_HARNESS_SYSTEM_HH
#define TLSIM_HARNESS_SYSTEM_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cpu/ooocore.hh"
#include "harness/config.hh"
#include "mem/l1cache.hh"
#include "mem/l2cache.hh"
#include "mem/request.hh"
#include "sim/eventq.hh"
#include "sim/fault/injector.hh"
#include "sim/fault/watchdog.hh"
#include "sim/stats.hh"
#include "workload/generator.hh"
#include "workload/profile.hh"

namespace tlsim
{
namespace harness
{

/**
 * The six cache designs compared in the paper.
 *
 * Compatibility shim: new code should pass registry names through
 * SystemConfig::design; the enum survives so the repro experiment
 * tables can enumerate the paper's designs.
 */
enum class DesignKind
{
    Snuca2,
    Dnuca,
    TlcBase,
    TlcOpt1000,
    TlcOpt500,
    TlcOpt350,
};

/** All designs, in paper order. */
const std::vector<DesignKind> &allDesigns();

/** The TLC family only (Figures 7 and 8). */
const std::vector<DesignKind> &tlcFamily();

/**
 * Registry name of a paper design (the compat shim's name table; the
 * registered designs themselves are the source of truth).
 */
std::string designName(DesignKind kind);

/**
 * One fully wired simulated machine: cores() cores with private split
 * L1s sharing one L2 design and one DRAM, all on one event queue.
 */
class System
{
  public:
    /**
     * Build the machine a SystemConfig describes.
     * @param fault_stream_seed Per-run entropy for the fault RNG
     *        stream (the sweep passes the run's trace seed so fault
     *        schedules are a pure function of the RunSpec); unused
     *        when config.fault is disabled.
     */
    explicit System(const SystemConfig &config,
                    std::uint64_t fault_stream_seed = 0);

    /** Compat: single-core machine with a paper design. */
    explicit System(DesignKind kind,
                    const cpu::CoreConfig &core_config = {});

    ~System();

    /** The machine's private event queue (one per System). */
    EventQueue &eventQueue() { return eq; }
    /** The L2 design under test. */
    mem::L2Cache &l2() { return *l2Cache; }
    /** Number of cores. */
    int numCores() const { return static_cast<int>(cores.size()); }
    /** Core @p i (default: core 0, the only core in paper runs). */
    cpu::OoOCore &core(int i = 0) { return *cores[checkIndex(i)].core; }
    /** Core @p i's split L1 data cache. */
    mem::L1Cache &l1d(int i = 0) { return *cores[checkIndex(i)].dcache; }
    /** Core @p i's split L1 instruction cache. */
    mem::L1Cache &l1i(int i = 0) { return *cores[checkIndex(i)].icache; }
    /** Backing main-memory model (config.mem selects the backend). */
    mem::MemBackend &dram() { return *dramModel; }
    /** Root of the machine's statistics tree. */
    stats::StatGroup &root() { return rootGroup; }
    /** The technology node the machine was built for. */
    const phys::Technology &technology() const { return tech; }
    /** The config the machine was built from. */
    const SystemConfig &config() const { return cfg; }
    /** Fault injector, or null when fault injection is disabled. */
    fault::Injector *injector() { return faultInjector.get(); }
    /** Deadlock watchdog, or null when fault injection is disabled. */
    fault::Watchdog *watchdog() { return faultWatchdog.get(); }
    /**
     * Partitioned-execution coordinator, or null when the machine
     * runs the classic serial loop (config.domains == 1, the L2
     * design declined to partition, or an observation mode — trace
     * capture, debug flags, spatial heatmaps — needs the serial
     * dispatch interleaving).
     */
    pdes::Executor *partitionExecutor() { return executor.get(); }

    /**
     * Arm a wall-clock run timeout (the sweep's --run-timeout under
     * thread isolation): after @p seconds of real time the watchdog
     * panics with a catchable "run timeout" error from the cores'
     * wait loops. Creates and installs a watchdog if fault injection
     * did not already (with an unreachable tick bound, so the only
     * added trigger is the wall deadline). Observation only: a run
     * that beats the deadline is byte-identical to an untimed one.
     */
    void armRunTimeout(double seconds);

    /** Reset all statistics at a measurement boundary. */
    void beginMeasurement();

    /**
     * Functionally warm core @p core_idx's L1s and the shared L2 over
     * @p instructions trace instructions (no timing, no events).
     * Mirrors the paper's long warmup phases at a fraction of the
     * cost.
     */
    void functionalWarm(cpu::TraceSource &source,
                        std::uint64_t instructions, int core_idx = 0);

    /**
     * Serialize the machine's functional warm state (every core's L1
     * arrays plus the L2 design's state; DRAM is timing-only and has
     * none) for warm-state checkpoints (docs/SAMPLING.md).
     * @return false if the L2 design does not support checkpointing;
     *         the stream's contents are then incomplete and must be
     *         discarded.
     */
    bool saveWarmState(std::ostream &os);

    /**
     * Restore warm state written by saveWarmState on an identically
     * configured, freshly built machine.
     * @return false on any mismatch (machine state is then
     *         unspecified; rebuild and warm cold).
     */
    bool loadWarmState(std::istream &is);

  private:
    /** One core with its private split L1s. */
    struct CoreSlot
    {
        /** Wrapper group "coreN" (multi-core machines only). */
        std::unique_ptr<stats::StatGroup> group;
        std::unique_ptr<mem::L1Cache> icache;
        std::unique_ptr<mem::L1Cache> dcache;
        std::unique_ptr<cpu::OoOCore> core;
    };

    int
    checkIndex(int i) const
    {
        TLSIM_ASSERT(i >= 0 && i < static_cast<int>(cores.size()),
                     "core index {} out of range (machine has {})", i,
                     cores.size());
        return i;
    }

    SystemConfig cfg;
    phys::Technology tech;
    EventQueue eq;
    stats::StatGroup rootGroup;
    mem::RequestIdSource requestIds;
    // Declared before the memory backend, L2, and cores so it
    // outlives them (banked backends and the L2 hold a raw Injector
    // pointer, L1s/cores a Watchdog pointer).
    std::unique_ptr<fault::Injector> faultInjector;
    std::unique_ptr<fault::Watchdog> faultWatchdog;
    std::unique_ptr<mem::MemBackend> dramModel;
    std::unique_ptr<mem::L2Cache> l2Cache;
    std::vector<CoreSlot> cores;
    // Declared last so it is destroyed first: the executor's
    // destructor joins the worker threads and detaches the master
    // queue's coordinator while the rest of the machine is alive.
    std::unique_ptr<pdes::Executor> executor;

    /** Build the executor when cfg.domains > 1 grants a plan. */
    void setupPartition();
};

/** Metrics extracted from the measured phase of one run. */
struct RunResult
{
    std::string design;
    std::string benchmark;

    /**
     * Empty on success; otherwise the panic/exception message of a
     * failed run (crash-isolated sweeps complete with the failure
     * recorded here). Never serialized to the result cache — failed
     * runs are never cached.
     */
    std::string error;

    std::uint64_t cycles = 0;
    std::uint64_t instructions = 0;
    double ipc = 0.0;

    double l2RequestsPer1k = 0.0;
    double l2MissesPer1k = 0.0;
    double meanLookupLatency = 0.0;
    double predictablePct = 0.0;
    double banksPerRequest = 0.0;
    double networkPowerMw = 0.0;
    double linkUtilizationPct = 0.0;

    // DNUCA-specific (zero for other designs).
    double closeHitPct = 0.0;
    double promotesPerInsert = 0.0;
    double fastMissPct = 0.0;

    // TLCopt-specific.
    double multiMatchPct = 0.0;

    // Mean per-request latency-breakdown components (cycles), from
    // the design's lat_* distributions, with the sample count behind
    // each mean (a mean of 0.0 with 0 samples is "no data", not
    // "zero latency" — render it accordingly).
    double queueWaitMean = 0.0;
    double wireMean = 0.0;
    double bankMean = 0.0;
    double dramMean = 0.0;
    std::uint64_t queueWaitSamples = 0;
    std::uint64_t wireSamples = 0;
    std::uint64_t bankSamples = 0;
    std::uint64_t dramSamples = 0;

    // Resilience-protocol counters and the fault latency-breakdown
    // bucket (all zero unless fault injection is enabled).
    double linkRetries = 0.0;
    double linkTimeouts = 0.0;
    double degradedRequests = 0.0;
    double faultMean = 0.0;
    std::uint64_t faultSamples = 0;
};

/**
 * Observer hooks around the measured phase of runBenchmark, for
 * attaching observability (periodic stat samplers, stat dumps, extra
 * reporting) without changing the runner itself. Either hook may be
 * empty.
 */
struct RunObserver
{
    /**
     * Fires right after the System is constructed, before any warmup
     * or simulation (the sweep arms per-run timeouts here).
     */
    std::function<void(System &)> onSystemBuilt;
    /** Fires after beginMeasurement, before the measured run. */
    std::function<void(System &)> onMeasureBegin;
    /** Fires after the measured run and syncStats. */
    std::function<void(System &)> onMeasureEnd;
};

/**
 * Run one benchmark on the machine @p config describes: functional
 * warmup, timed warmup, then measurement, per the budgets in the
 * config.
 *
 * Every core executes an independent instance of the benchmark
 * (multiprogrammed CMP): core 0's trace is seeded with @p run_seed
 * exactly (so single-core runs reproduce pre-CMP results
 * bit-identically) and cores 1..N-1 derive distinct streams from it.
 * Multi-core execution time-multiplexes the cores in round-robin
 * quanta of config.coreQuantum instructions.
 *
 * @param config The machine + budgets to run.
 * @param profile Workload profile (its ilpQuanta overrides
 *                config.core.fetchQuanta).
 * @param run_seed Extra seed entropy (same seed -> same traces for
 *                 every design, enabling normalized comparisons).
 * @param observer Optional hooks around the measured phase.
 */
RunResult runBenchmark(const SystemConfig &config,
                       const workload::BenchmarkProfile &profile,
                       std::uint64_t run_seed = 0,
                       const RunObserver *observer = nullptr);

/**
 * Extract the shared RunResult metrics from a system whose measured
 * phase just ended (call l2().syncStats() first). Factored out of
 * runBenchmark so the sampled-trace runner (harness/tracerun.hh)
 * reports the exact same metric definitions per interval.
 */
RunResult extractRunResult(System &system, std::uint64_t cycles,
                           std::uint64_t measured_instructions,
                           const std::string &benchmark);

/** Compat wrapper: single-core run of a paper design. */
RunResult runBenchmark(DesignKind kind,
                       const workload::BenchmarkProfile &profile,
                       std::uint64_t warm_instructions,
                       std::uint64_t measure_instructions,
                       std::uint64_t run_seed = 0,
                       std::uint64_t functional_warm =
                           defaultFunctionalWarmup,
                       const RunObserver *observer = nullptr);

} // namespace harness
} // namespace tlsim

#endif // TLSIM_HARNESS_SYSTEM_HH
