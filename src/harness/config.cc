#include "harness/config.hh"

#include <cctype>
#include <charconv>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "sim/logging.hh"

namespace tlsim
{
namespace harness
{

namespace
{

/**
 * Shortest round-trip formatting for doubles, shared by the JSON
 * writer and canonicalKey so equal values always print identically.
 */
std::string
formatDouble(double value)
{
    char buf[64];
    auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), value);
    TLSIM_ASSERT(ec == std::errc(), "double formatting failed");
    return std::string(buf, ptr);
}

// ---------------------------------------------------------------------
// Minimal JSON reader, just enough for the SystemConfig schema:
// nested objects, strings, numbers, booleans. Errors are fatal (the
// config came from a user-supplied file).
// ---------------------------------------------------------------------

struct JsonValue
{
    enum class Kind
    {
        Object,
        String,
        Number,
        Bool,
    };

    Kind kind = Kind::Number;
    std::map<std::string, JsonValue> object;
    std::string str;
    double number = 0.0;
    bool boolean = false;
};

class JsonParser
{
  public:
    explicit JsonParser(const std::string &text)
        : text(text)
    {}

    JsonValue
    parse()
    {
        JsonValue v = parseValue();
        skipSpace();
        if (pos != text.size())
            fail("trailing characters after JSON document");
        return v;
    }

  private:
    [[noreturn]] void
    fail(const std::string &why)
    {
        fatal("config JSON parse error at offset {}: {}", pos, why);
    }

    void
    skipSpace()
    {
        while (pos < text.size() &&
               std::isspace(static_cast<unsigned char>(text[pos])))
            ++pos;
    }

    char
    peek()
    {
        skipSpace();
        if (pos >= text.size())
            fail("unexpected end of input");
        return text[pos];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "'");
        ++pos;
    }

    JsonValue
    parseValue()
    {
        char c = peek();
        if (c == '{')
            return parseObject();
        if (c == '"')
            return parseString();
        if (c == 't' || c == 'f')
            return parseBool();
        return parseNumber();
    }

    JsonValue
    parseObject()
    {
        expect('{');
        JsonValue v;
        v.kind = JsonValue::Kind::Object;
        if (peek() == '}') {
            ++pos;
            return v;
        }
        while (true) {
            JsonValue key = parseString();
            expect(':');
            v.object.emplace(key.str, parseValue());
            char c = peek();
            if (c == ',') {
                ++pos;
                continue;
            }
            if (c == '}') {
                ++pos;
                return v;
            }
            fail("expected ',' or '}' in object");
        }
    }

    JsonValue
    parseString()
    {
        expect('"');
        JsonValue v;
        v.kind = JsonValue::Kind::String;
        while (pos < text.size() && text[pos] != '"') {
            char c = text[pos++];
            if (c == '\\') {
                if (pos >= text.size())
                    fail("truncated escape");
                char e = text[pos++];
                switch (e) {
                  case '"': c = '"'; break;
                  case '\\': c = '\\'; break;
                  case '/': c = '/'; break;
                  case 'n': c = '\n'; break;
                  case 't': c = '\t'; break;
                  default: fail("unsupported escape");
                }
            }
            v.str.push_back(c);
        }
        if (pos >= text.size())
            fail("unterminated string");
        ++pos; // closing quote
        return v;
    }

    JsonValue
    parseBool()
    {
        JsonValue v;
        v.kind = JsonValue::Kind::Bool;
        if (text.compare(pos, 4, "true") == 0) {
            v.boolean = true;
            pos += 4;
        } else if (text.compare(pos, 5, "false") == 0) {
            v.boolean = false;
            pos += 5;
        } else {
            fail("expected boolean");
        }
        return v;
    }

    JsonValue
    parseNumber()
    {
        skipSpace();
        std::size_t start = pos;
        while (pos < text.size() &&
               (std::isdigit(static_cast<unsigned char>(text[pos])) ||
                text[pos] == '-' || text[pos] == '+' ||
                text[pos] == '.' || text[pos] == 'e' ||
                text[pos] == 'E'))
            ++pos;
        if (pos == start)
            fail("expected number");
        JsonValue v;
        v.kind = JsonValue::Kind::Number;
        const char *first = text.data() + start;
        const char *last = text.data() + pos;
        auto [ptr, ec] = std::from_chars(first, last, v.number);
        if (ec != std::errc() || ptr != last)
            fail("malformed number");
        return v;
    }

    const std::string &text;
    std::size_t pos = 0;
};

const JsonValue &
requireField(const JsonValue &obj, const std::string &name)
{
    auto it = obj.object.find(name);
    if (it == obj.object.end())
        fatal("config JSON missing field '{}'", name);
    return it->second;
}

double
numberField(const JsonValue &obj, const std::string &name)
{
    const JsonValue &v = requireField(obj, name);
    if (v.kind != JsonValue::Kind::Number)
        fatal("config field '{}' must be a number", name);
    return v.number;
}

std::uint64_t
u64Field(const JsonValue &obj, const std::string &name)
{
    return static_cast<std::uint64_t>(numberField(obj, name));
}

int
intField(const JsonValue &obj, const std::string &name)
{
    return static_cast<int>(numberField(obj, name));
}

std::string
stringField(const JsonValue &obj, const std::string &name)
{
    const JsonValue &v = requireField(obj, name);
    if (v.kind != JsonValue::Kind::String)
        fatal("config field '{}' must be a string", name);
    return v.str;
}

const JsonValue &
objectField(const JsonValue &obj, const std::string &name)
{
    const JsonValue &v = requireField(obj, name);
    if (v.kind != JsonValue::Kind::Object)
        fatal("config field '{}' must be an object", name);
    return v;
}

bool
boolField(const JsonValue &obj, const std::string &name)
{
    const JsonValue &v = requireField(obj, name);
    if (v.kind != JsonValue::Kind::Bool)
        fatal("config field '{}' must be a boolean", name);
    return v.boolean;
}

L1Config
readL1(const JsonValue &obj, const std::string &name)
{
    const JsonValue &v = objectField(obj, name);
    L1Config l1;
    l1.bytes = u64Field(v, "bytes");
    l1.ways = intField(v, "ways");
    l1.hitLatency = u64Field(v, "hitLatency");
    l1.mshrs = intField(v, "mshrs");
    return l1;
}

void
writeL1(std::ostream &os, const char *name, const L1Config &l1,
        const char *indent)
{
    os << indent << "\"" << name << "\": {\"bytes\": " << l1.bytes
       << ", \"ways\": " << l1.ways
       << ", \"hitLatency\": " << l1.hitLatency
       << ", \"mshrs\": " << l1.mshrs << "}";
}

constexpr const char *configSchema = "tlsim-systemconfig-v1";

} // namespace

std::string
SystemConfig::canonicalKey() const
{
    std::ostringstream os;
    os << "cores=" << cores << ";design=" << design
       << ";technologyNm=" << technologyNm
       << ";core=" << core.robEntries << "," << core.width << ","
       << core.opLatency << "," << core.mispredictPenalty << ","
       << core.fetchQuanta
       << ";l1i=" << l1i.bytes << "," << l1i.ways << ","
       << l1i.hitLatency << "," << l1i.mshrs
       << ";l1d=" << l1d.bytes << "," << l1d.ways << ","
       << l1d.hitLatency << "," << l1d.mshrs << ";l2Options=";
    for (const auto &[key, value] : l2Options)
        os << key << ":" << formatDouble(value) << ",";
    os << ";functionalWarm=" << functionalWarm << ";warmup=" << warmup
       << ";measure=" << measure << ";coreQuantum=" << coreQuantum;
    // The fault section only appears when faults are configured, so
    // every pre-fault-subsystem key (and hash) is preserved verbatim.
    if (fault != fault::FaultConfig{}) {
        os << ";fault.enabled=" << fault.enabled
           << ";fault.bitErrorRate=" << formatDouble(fault.bitErrorRate)
           << ";fault.deriveFromMargin=" << fault.deriveFromMargin
           << ";fault.deadLinks=" << fault.deadLinks
           << ";fault.stuckBanks=" << fault.stuckBanks
           << ";fault.maxRetries=" << fault.maxRetries
           << ";fault.retryBackoff=" << fault.retryBackoff
           << ";fault.requestTimeout=" << fault.requestTimeout
           << ";fault.crcCycles=" << fault.crcCycles
           << ";fault.watchdogMaxAge=" << fault.watchdogMaxAge
           << ";fault.seed=" << fault.seed;
        // Printed only when scheduled so fault keys predating the
        // DRAM-bank schedule are preserved verbatim.
        if (!fault.dramStuckBanks.empty())
            os << ";fault.dramStuckBanks=" << fault.dramStuckBanks;
    }
    // Same idea for the memory backend: the default ("fixed", no
    // options) adds nothing, so pre-registry keys (and hashes, and
    // therefore every cached paper artifact) are preserved verbatim.
    if (mem != MemConfig{}) {
        os << ";mem.backend=" << mem.backend << ";mem.options=";
        for (const auto &[key, value] : mem.options)
            os << key << ":" << formatDouble(value) << ",";
    }
    return os.str();
}

std::uint64_t
SystemConfig::contentHash() const
{
    return fnv1aHash(canonicalKey());
}

std::uint64_t
SystemConfig::machineHash() const
{
    SystemConfig machine = *this;
    SystemConfig defaults;
    machine.design = defaults.design;
    machine.functionalWarm = defaults.functionalWarm;
    machine.warmup = defaults.warmup;
    machine.measure = defaults.measure;
    return machine.contentHash();
}

bool
SystemConfig::isDefaultMachine() const
{
    SystemConfig machine = *this;
    SystemConfig defaults;
    machine.design = defaults.design;
    machine.functionalWarm = defaults.functionalWarm;
    machine.warmup = defaults.warmup;
    machine.measure = defaults.measure;
    // Execution strategy, not machine identity: a partitioned run of
    // a default machine must keep the unsuffixed cache keys.
    machine.domains = defaults.domains;
    return machine == defaults;
}

void
saveConfigJson(const SystemConfig &config, std::ostream &os)
{
    os << "{\n";
    os << "  \"schema\": \"" << configSchema << "\",\n";
    os << "  \"cores\": " << config.cores << ",\n";
    os << "  \"design\": \"" << config.design << "\",\n";
    os << "  \"technologyNm\": " << config.technologyNm << ",\n";
    os << "  \"core\": {\"robEntries\": " << config.core.robEntries
       << ", \"width\": " << config.core.width
       << ", \"opLatency\": " << config.core.opLatency
       << ", \"mispredictPenalty\": " << config.core.mispredictPenalty
       << ", \"fetchQuanta\": " << config.core.fetchQuanta << "},\n";
    writeL1(os, "l1i", config.l1i, "  ");
    os << ",\n";
    writeL1(os, "l1d", config.l1d, "  ");
    os << ",\n";
    os << "  \"l2Options\": {";
    bool first = true;
    for (const auto &[key, value] : config.l2Options) {
        if (!first)
            os << ", ";
        os << "\"" << key << "\": " << formatDouble(value);
        first = false;
    }
    os << "},\n";
    os << "  \"mem\": {\"backend\": \"" << config.mem.backend
       << "\", \"options\": {";
    first = true;
    for (const auto &[key, value] : config.mem.options) {
        if (!first)
            os << ", ";
        os << "\"" << key << "\": " << formatDouble(value);
        first = false;
    }
    os << "}},\n";
    os << "  \"functionalWarm\": " << config.functionalWarm << ",\n";
    os << "  \"warmup\": " << config.warmup << ",\n";
    os << "  \"measure\": " << config.measure << ",\n";
    os << "  \"coreQuantum\": " << config.coreQuantum << ",\n";
    os << "  \"domains\": " << config.domains << ",\n";
    const fault::FaultConfig &f = config.fault;
    os << "  \"fault\": {\"enabled\": "
       << (f.enabled ? "true" : "false")
       << ", \"bitErrorRate\": " << formatDouble(f.bitErrorRate)
       << ", \"deriveFromMargin\": "
       << (f.deriveFromMargin ? "true" : "false")
       << ", \"deadLinks\": \"" << f.deadLinks << "\""
       << ", \"stuckBanks\": \"" << f.stuckBanks << "\""
       << ", \"dramStuckBanks\": \"" << f.dramStuckBanks << "\""
       << ", \"maxRetries\": " << f.maxRetries
       << ", \"retryBackoff\": " << f.retryBackoff
       << ", \"requestTimeout\": " << f.requestTimeout
       << ", \"crcCycles\": " << f.crcCycles
       << ", \"watchdogMaxAge\": " << f.watchdogMaxAge
       << ", \"seed\": " << f.seed << "}\n";
    os << "}\n";
}

std::string
configToJson(const SystemConfig &config)
{
    std::ostringstream os;
    saveConfigJson(config, os);
    return os.str();
}

SystemConfig
loadConfigJson(const std::string &text)
{
    JsonParser parser(text);
    JsonValue root = parser.parse();
    if (root.kind != JsonValue::Kind::Object)
        fatal("config JSON must be an object");
    std::string schema = stringField(root, "schema");
    if (schema != configSchema) {
        fatal("config schema '{}' not supported (expected '{}')",
              schema, configSchema);
    }

    SystemConfig config;
    config.cores = intField(root, "cores");
    config.design = stringField(root, "design");
    config.technologyNm = intField(root, "technologyNm");

    const JsonValue &core = objectField(root, "core");
    config.core.robEntries = intField(core, "robEntries");
    config.core.width = intField(core, "width");
    config.core.opLatency = u64Field(core, "opLatency");
    config.core.mispredictPenalty = u64Field(core, "mispredictPenalty");
    config.core.fetchQuanta = intField(core, "fetchQuanta");

    config.l1i = readL1(root, "l1i");
    config.l1d = readL1(root, "l1d");

    const JsonValue &options = objectField(root, "l2Options");
    for (const auto &[key, value] : options.object) {
        if (value.kind != JsonValue::Kind::Number)
            fatal("l2Options entry '{}' must be a number", key);
        config.l2Options[key] = value.number;
    }

    // Optional so configs written before the memory-backend registry
    // load (they get the default "fixed" backend).
    auto mem_it = root.object.find("mem");
    if (mem_it != root.object.end()) {
        const JsonValue &m = mem_it->second;
        if (m.kind != JsonValue::Kind::Object)
            fatal("config field 'mem' must be an object");
        config.mem.backend = stringField(m, "backend");
        const JsonValue &mem_options = objectField(m, "options");
        for (const auto &[key, value] : mem_options.object) {
            if (value.kind != JsonValue::Kind::Number)
                fatal("mem option '{}' must be a number", key);
            config.mem.options[key] = value.number;
        }
    }

    config.functionalWarm = u64Field(root, "functionalWarm");
    config.warmup = u64Field(root, "warmup");
    config.measure = u64Field(root, "measure");
    config.coreQuantum = u64Field(root, "coreQuantum");

    // Optional so configs written before partitioned execution load.
    if (root.object.count("domains"))
        config.domains = intField(root, "domains");
    if (config.domains < 1)
        fatal("config requires at least one event domain (got {})",
              config.domains);

    // Optional so configs written before the fault subsystem load.
    auto fault_it = root.object.find("fault");
    if (fault_it != root.object.end()) {
        const JsonValue &f = fault_it->second;
        if (f.kind != JsonValue::Kind::Object)
            fatal("config field 'fault' must be an object");
        config.fault.enabled = boolField(f, "enabled");
        config.fault.bitErrorRate = numberField(f, "bitErrorRate");
        config.fault.deriveFromMargin = boolField(f, "deriveFromMargin");
        config.fault.deadLinks = stringField(f, "deadLinks");
        config.fault.stuckBanks = stringField(f, "stuckBanks");
        // Optional so fault configs predating the DRAM schedule load.
        if (f.object.count("dramStuckBanks"))
            config.fault.dramStuckBanks =
                stringField(f, "dramStuckBanks");
        config.fault.maxRetries = intField(f, "maxRetries");
        config.fault.retryBackoff = u64Field(f, "retryBackoff");
        config.fault.requestTimeout = u64Field(f, "requestTimeout");
        config.fault.crcCycles = u64Field(f, "crcCycles");
        config.fault.watchdogMaxAge = u64Field(f, "watchdogMaxAge");
        config.fault.seed = u64Field(f, "seed");
    }

    if (config.cores < 1)
        fatal("config requires at least one core (got {})",
              config.cores);
    return config;
}

SystemConfig
loadConfigFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open config file '{}'", path);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return loadConfigJson(buffer.str());
}

phys::Technology
technologyForNode(int nm)
{
    TLSIM_ASSERT(nm > 0, "technology node must be positive");
    phys::Technology tech = phys::tech45();
    double scale = static_cast<double>(nm) / 45.0;
    tech.featureSize = nm * 1e-9;
    tech.lambda = tech.featureSize / 2.0;
    tech.sramCellArea *= scale * scale;
    return tech;
}

std::uint64_t
fnv1aHash(const std::string &text)
{
    std::uint64_t hash = 0xcbf29ce484222325ULL;
    for (unsigned char c : text) {
        hash ^= c;
        hash *= 0x100000001b3ULL;
    }
    return hash;
}

} // namespace harness
} // namespace tlsim
