#include "harness/system.hh"

#include <algorithm>
#include <optional>

#include "mem/l2registry.hh"
#include "mem/memregistry.hh"
#include "mem/warmstate.hh"
#include "nuca/dnuca.hh"
#include "sim/metrics/heatmap.hh"
#include "sim/pdes/pdes.hh"
#include "sim/prof/prof.hh"
#include "sim/trace/debug.hh"
#include "sim/trace/tracesink.hh"
#include "tlc/tlccache.hh"

namespace tlsim
{
namespace harness
{

const std::vector<DesignKind> &
allDesigns()
{
    static const std::vector<DesignKind> designs = {
        DesignKind::Snuca2,     DesignKind::Dnuca,
        DesignKind::TlcBase,    DesignKind::TlcOpt1000,
        DesignKind::TlcOpt500,  DesignKind::TlcOpt350,
    };
    return designs;
}

const std::vector<DesignKind> &
tlcFamily()
{
    static const std::vector<DesignKind> designs = {
        DesignKind::TlcBase, DesignKind::TlcOpt1000,
        DesignKind::TlcOpt500, DesignKind::TlcOpt350,
    };
    return designs;
}

std::string
designName(DesignKind kind)
{
    // The compat shim's whole job: map the legacy enum onto registry
    // names. The designs themselves (and their factories) own the
    // names; this table is validated against the registry below.
    static const char *const names[] = {
        "SNUCA2", "DNUCA", "TLC", "TLCopt1000", "TLCopt500",
        "TLCopt350",
    };
    auto idx = static_cast<std::size_t>(kind);
    TLSIM_ASSERT(idx < std::size(names), "unknown design kind");
    TLSIM_ASSERT(l2::Registry::known(names[idx]),
                 "paper design '{}' missing from the registry",
                 names[idx]);
    return names[idx];
}

namespace
{

SystemConfig
configFor(DesignKind kind, const cpu::CoreConfig &core_config)
{
    SystemConfig config;
    config.design = designName(kind);
    config.core = core_config;
    return config;
}

} // namespace

System::System(const SystemConfig &config,
               std::uint64_t fault_stream_seed)
    : cfg(config), tech(technologyForNode(config.technologyNm)),
      rootGroup("system")
{
    TLSIM_ASSERT(cfg.cores >= 1, "machine needs at least one core");
    // The injector precedes the memory backend: banked backends take
    // a raw Injector pointer for DRAM stuck-bank faults.
    if (cfg.fault.enabled) {
        faultInjector = std::make_unique<fault::Injector>(
            cfg.fault, fault_stream_seed);
        faultWatchdog = std::make_unique<fault::Watchdog>(
            cfg.fault.watchdogMaxAge);
    }
    dramModel = mem::MemRegistry::build(
        cfg.mem.backend,
        mem::MemBuildContext{eq, &rootGroup, cfg.mem.options,
                             faultInjector.get()});
    l2Cache = l2::Registry::build(
        cfg.design,
        l2::BuildContext{eq, &rootGroup, *dramModel, tech,
                         cfg.l2Options, faultInjector.get()});
    if (faultWatchdog) {
        faultWatchdog->setDiagnostic(
            [this] { l2Cache->dumpFaultDiagnostic(); });
    }
    if (cfg.domains > 1)
        setupPartition();

    cores.reserve(static_cast<std::size_t>(cfg.cores));
    for (int i = 0; i < cfg.cores; ++i) {
        CoreSlot slot;
        stats::StatGroup *parent = &rootGroup;
        if (cfg.cores > 1) {
            // Multi-core machines group each core's stats under
            // "coreN"; single-core keeps the legacy flat layout so
            // existing stats JSON consumers see identical shapes.
            slot.group = std::make_unique<stats::StatGroup>(
                csprintf("core{}", i), &rootGroup);
            parent = slot.group.get();
        }
        slot.icache = std::make_unique<mem::L1Cache>(
            "l1i", eq, parent, *l2Cache, cfg.l1i.bytes, cfg.l1i.ways,
            cfg.l1i.hitLatency, cfg.l1i.mshrs, i, &requestIds);
        slot.dcache = std::make_unique<mem::L1Cache>(
            "l1d", eq, parent, *l2Cache, cfg.l1d.bytes, cfg.l1d.ways,
            cfg.l1d.hitLatency, cfg.l1d.mshrs, i, &requestIds);
        slot.core = std::make_unique<cpu::OoOCore>(
            eq, parent, *slot.icache, *slot.dcache, cfg.core, i);
        if (faultWatchdog) {
            slot.icache->setWatchdog(
                faultWatchdog.get(),
                faultWatchdog->addClient(csprintf("core{}.l1i", i)));
            slot.dcache->setWatchdog(
                faultWatchdog.get(),
                faultWatchdog->addClient(csprintf("core{}.l1d", i)));
            slot.core->setWatchdog(faultWatchdog.get());
        }
        cores.push_back(std::move(slot));
    }
}

System::System(DesignKind kind, const cpu::CoreConfig &core_config)
    : System(configFor(kind, core_config))
{}

System::~System() = default;

void
System::setupPartition()
{
    // Observation modes watch the dispatch interleaving itself
    // (trace spans, DPRINTF lines, heatmap sampling windows), which
    // a partitioned run reorders in wall-clock even though every
    // simulated result is byte-identical. Keep those runs serial.
    std::string reason;
    if (trace::TraceSink::active()) {
        reason = "trace capture observes the dispatch interleaving";
    } else if (metrics::spatialEnabled) {
        reason = "spatial heatmaps sample from dispatch context";
    } else {
        for (const debug::Flag *flag : debug::Flag::all()) {
            if (flag->enabled()) {
                reason = "debug flags observe the dispatch "
                         "interleaving";
                break;
            }
        }
    }
    if (reason.empty()) {
        pdes::PartitionPlan plan = l2Cache->partitionPlan(cfg.domains);
        if (plan.active()) {
            executor = std::make_unique<pdes::Executor>(
                eq, plan.workerDomains, plan.lookahead);
            l2Cache->setPartition(executor.get());
            if (faultWatchdog) {
                faultWatchdog->attachProgressCounter(
                    &executor->windowGeneration());
            }
            return;
        }
        reason = plan.serialReason;
    }
    warn("domains={}: running serial ({})", cfg.domains, reason);
}

void
System::armRunTimeout(double seconds)
{
    if (seconds <= 0.0)
        return;
    if (!faultWatchdog) {
        // No fault-injection watchdog: install one whose tick bound
        // is unreachable, so the wall deadline is its only trigger.
        faultWatchdog = std::make_unique<fault::Watchdog>(MaxTick);
        faultWatchdog->setDiagnostic(
            [this] { l2Cache->dumpFaultDiagnostic(); });
        for (std::size_t i = 0; i < cores.size(); ++i) {
            CoreSlot &slot = cores[i];
            slot.icache->setWatchdog(
                faultWatchdog.get(),
                faultWatchdog->addClient(csprintf("core{}.l1i", i)));
            slot.dcache->setWatchdog(
                faultWatchdog.get(),
                faultWatchdog->addClient(csprintf("core{}.l1d", i)));
            slot.core->setWatchdog(faultWatchdog.get());
        }
        if (executor) {
            faultWatchdog->attachProgressCounter(
                &executor->windowGeneration());
        }
    }
    faultWatchdog->setWallDeadline(seconds);
}

void
System::beginMeasurement()
{
    rootGroup.resetStats();
    l2Cache->beginMeasurement();
}

void
System::functionalWarm(cpu::TraceSource &source,
                       std::uint64_t instructions, int core_idx)
{
    CoreSlot &slot = cores[static_cast<std::size_t>(
        checkIndex(core_idx))];
    std::uint64_t executed = 0;
    while (executed < instructions) {
        cpu::TraceRecord record = source.next();
        executed += record.gap;
        if (record.isIFetch) {
            slot.icache->accessFunctional(record.blockAddr,
                                          mem::AccessType::InstFetch);
        } else {
            slot.dcache->accessFunctional(record.blockAddr,
                                          record.type);
            ++executed;
        }
    }
}

bool
System::saveWarmState(std::ostream &os)
{
    mem::warm::putU32(os, static_cast<std::uint32_t>(cores.size()));
    for (const CoreSlot &slot : cores) {
        slot.icache->saveWarmState(os);
        slot.dcache->saveWarmState(os);
    }
    return l2Cache->saveWarmState(os);
}

bool
System::loadWarmState(std::istream &is)
{
    std::uint32_t n = 0;
    if (!mem::warm::getU32(is, n) || n != cores.size())
        return false;
    for (CoreSlot &slot : cores) {
        if (!slot.icache->loadWarmState(is) ||
            !slot.dcache->loadWarmState(is))
            return false;
    }
    return l2Cache->loadWarmState(is);
}

namespace
{

std::uint64_t
splitmix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

std::uint64_t
maxCurrentCycle(System &system)
{
    std::uint64_t cycle = 0;
    for (int i = 0; i < system.numCores(); ++i)
        cycle = std::max(cycle, system.core(i).currentCycle());
    return cycle;
}

/**
 * Execute @p instructions on every core (each from its own trace)
 * and return the elapsed wall-clock cycles. Single-core runs take
 * the direct path — bit-identical to the pre-CMP runner. Multi-core
 * runs time-multiplex the cores in round-robin quanta on the shared
 * event queue (the classic Simics-style CMP interleaving).
 */
std::uint64_t
runCores(System &system,
         std::vector<workload::TraceGenerator> &gens,
         std::uint64_t instructions, std::uint64_t quantum)
{
    if (instructions == 0)
        return 0;
    int n = system.numCores();
    if (n == 1)
        return system.core().run(gens[0], instructions);

    quantum = std::max<std::uint64_t>(quantum, 1);
    std::uint64_t start = maxCurrentCycle(system);
    std::vector<std::uint64_t> remaining(
        static_cast<std::size_t>(n), instructions);
    bool active = true;
    while (active) {
        active = false;
        for (int i = 0; i < n; ++i) {
            auto &left = remaining[static_cast<std::size_t>(i)];
            if (left == 0)
                continue;
            std::uint64_t chunk = std::min(left, quantum);
            // A core resuming after the others advanced global time
            // must not issue accesses in the past.
            system.core(i).catchUp();
            system.core(i).run(gens[i], chunk);
            left -= chunk;
            if (left > 0)
                active = true;
        }
    }
    return maxCurrentCycle(system) - start;
}

} // namespace

RunResult
runBenchmark(const SystemConfig &config,
             const workload::BenchmarkProfile &profile,
             std::uint64_t run_seed, const RunObserver *observer)
{
    prof::Scope prof_run("run");

    SystemConfig run_config = config;
    run_config.core.fetchQuanta = profile.ilpQuanta;
    // The fault stream reuses the run seed: the fault schedule is a
    // pure function of the spec, identical serial vs parallel.
    std::optional<System> system_storage;
    {
        prof::Scope prof_build("build");
        system_storage.emplace(run_config, run_seed);
    }
    System &system = *system_storage;
    if (observer && observer->onSystemBuilt)
        observer->onSystemBuilt(system);
    int n = system.numCores();

    // Core 0 uses run_seed exactly so single-core runs reproduce the
    // pre-CMP runner bit-for-bit; the other cores derive distinct,
    // deterministic streams from it.
    std::vector<workload::TraceGenerator> gens;
    gens.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
        std::uint64_t seed =
            i == 0 ? run_seed
                   : splitmix64(run_seed +
                                static_cast<std::uint64_t>(i));
        gens.emplace_back(profile, seed);
    }

    // Long functional warmup (paper methodology: caches warmed over
    // hundreds of millions of instructions), then a short timed
    // warmup to populate contention state.
    if (run_config.functionalWarm > 0) {
        prof::Scope prof_funcwarm("funcwarm");
        for (int i = 0; i < n; ++i)
            system.functionalWarm(gens[static_cast<std::size_t>(i)],
                                  run_config.functionalWarm, i);
    }
    {
        prof::Scope prof_warmup("warmup");
        runCores(system, gens, run_config.warmup,
                 run_config.coreQuantum);
    }

    system.beginMeasurement();
    if (observer && observer->onMeasureBegin)
        observer->onMeasureBegin(system);
    std::uint64_t cycles;
    {
        prof::Scope prof_measure("measure");
        cycles = runCores(system, gens, run_config.measure,
                          run_config.coreQuantum);
    }
    system.l2().syncStats();
    if (observer && observer->onMeasureEnd)
        observer->onMeasureEnd(system);

    std::uint64_t measured_instructions =
        run_config.measure * static_cast<std::uint64_t>(n);
    return extractRunResult(system, cycles, measured_instructions,
                            profile.name);
}

RunResult
extractRunResult(System &system, std::uint64_t cycles,
                 std::uint64_t measured_instructions,
                 const std::string &benchmark)
{
    mem::L2Cache &l2 = system.l2();
    RunResult result;
    result.design = l2.designName();
    result.benchmark = benchmark;
    result.cycles = cycles;
    result.instructions = measured_instructions;
    result.ipc = cycles > 0
                     ? static_cast<double>(measured_instructions) /
                           static_cast<double>(cycles)
                     : 0.0;

    double instr_k =
        static_cast<double>(measured_instructions) / 1000.0;
    result.l2RequestsPer1k = l2.demandRequests.value() / instr_k;
    result.l2MissesPer1k = l2.misses.value() / instr_k;
    result.meanLookupLatency = l2.lookupLatency.mean();
    double lookups = l2.lookupLatency.count()
                         ? static_cast<double>(l2.lookupLatency.count())
                         : 1.0;
    result.predictablePct =
        100.0 * l2.predictableLookups.value() / lookups;
    result.banksPerRequest = l2.banksAccessed.mean();

    const phys::Technology &tech = system.technology();
    double seconds = static_cast<double>(cycles) * tech.cycleTime();
    result.networkPowerMw =
        seconds > 0.0 ? 1000.0 * l2.networkEnergy.value() / seconds
                      : 0.0;
    result.linkUtilizationPct = 100.0 * l2.linkUtilization(cycles);

    if (auto *dnuca = dynamic_cast<nuca::DnucaCache *>(&l2)) {
        // Close-hit rate is reported against all lookups (Table 6).
        result.closeHitPct = 100.0 * dnuca->closeHits.value() / lookups;
        double ins = l2.inserts.value() > 0 ? l2.inserts.value() : 1.0;
        result.promotesPerInsert = dnuca->promotions.value() / ins;
        double dm = l2.misses.value() > 0 ? l2.misses.value() : 1.0;
        result.fastMissPct = 100.0 * dnuca->fastMisses.value() / dm;
    }
    if (auto *tlc_cache = dynamic_cast<tlc::TlcCache *>(&l2)) {
        result.multiMatchPct =
            100.0 * tlc_cache->multiMatches.value() / lookups;
    }

    result.queueWaitMean = l2.queueWaitLatency.mean();
    result.wireMean = l2.wireLatency.mean();
    result.bankMean = l2.bankLatency.mean();
    result.dramMean = l2.dramLatency.mean();
    result.queueWaitSamples = l2.queueWaitLatency.count();
    result.wireSamples = l2.wireLatency.count();
    result.bankSamples = l2.bankLatency.count();
    result.dramSamples = l2.dramLatency.count();

    result.linkRetries = l2.linkRetries.value();
    result.linkTimeouts = l2.linkTimeouts.value();
    result.degradedRequests = l2.degradedRequests.value();
    result.faultMean = l2.faultLatency.mean();
    result.faultSamples = l2.faultLatency.count();
    return result;
}

RunResult
runBenchmark(DesignKind kind, const workload::BenchmarkProfile &profile,
             std::uint64_t warm_instructions,
             std::uint64_t measure_instructions, std::uint64_t run_seed,
             std::uint64_t functional_warm, const RunObserver *observer)
{
    SystemConfig config;
    config.design = designName(kind);
    config.warmup = warm_instructions;
    config.measure = measure_instructions;
    config.functionalWarm = functional_warm;
    return runBenchmark(config, profile, run_seed, observer);
}

} // namespace harness
} // namespace tlsim
