#include "harness/system.hh"

#include "nuca/dnuca.hh"
#include "nuca/snuca.hh"
#include "phys/technology.hh"
#include "tlc/tlccache.hh"

namespace tlsim
{
namespace harness
{

const std::vector<DesignKind> &
allDesigns()
{
    static const std::vector<DesignKind> designs = {
        DesignKind::Snuca2,     DesignKind::Dnuca,
        DesignKind::TlcBase,    DesignKind::TlcOpt1000,
        DesignKind::TlcOpt500,  DesignKind::TlcOpt350,
    };
    return designs;
}

const std::vector<DesignKind> &
tlcFamily()
{
    static const std::vector<DesignKind> designs = {
        DesignKind::TlcBase, DesignKind::TlcOpt1000,
        DesignKind::TlcOpt500, DesignKind::TlcOpt350,
    };
    return designs;
}

std::string
designName(DesignKind kind)
{
    switch (kind) {
      case DesignKind::Snuca2:
        return "SNUCA2";
      case DesignKind::Dnuca:
        return "DNUCA";
      case DesignKind::TlcBase:
        return "TLC";
      case DesignKind::TlcOpt1000:
        return "TLCopt1000";
      case DesignKind::TlcOpt500:
        return "TLCopt500";
      case DesignKind::TlcOpt350:
        return "TLCopt350";
    }
    panic("unknown design kind");
}

namespace
{

std::unique_ptr<mem::L2Cache>
buildL2(DesignKind kind, EventQueue &eq, stats::StatGroup *parent,
        mem::Dram &dram)
{
    const phys::Technology &tech = phys::tech45();
    switch (kind) {
      case DesignKind::Snuca2:
        return std::make_unique<nuca::SnucaCache>(eq, parent, dram,
                                                  tech);
      case DesignKind::Dnuca:
        return std::make_unique<nuca::DnucaCache>(eq, parent, dram,
                                                  tech);
      case DesignKind::TlcBase:
        return std::make_unique<tlc::TlcCache>(eq, parent, dram, tech,
                                               tlc::baseTlc());
      case DesignKind::TlcOpt1000:
        return std::make_unique<tlc::TlcCache>(eq, parent, dram, tech,
                                               tlc::tlcOpt1000());
      case DesignKind::TlcOpt500:
        return std::make_unique<tlc::TlcCache>(eq, parent, dram, tech,
                                               tlc::tlcOpt500());
      case DesignKind::TlcOpt350:
        return std::make_unique<tlc::TlcCache>(eq, parent, dram, tech,
                                               tlc::tlcOpt350());
    }
    panic("unknown design kind");
}

} // namespace

System::System(DesignKind kind, const cpu::CoreConfig &core_config)
    : rootGroup("system")
{
    dramModel = std::make_unique<mem::Dram>(eq, &rootGroup);
    l2Cache = buildL2(kind, eq, &rootGroup, *dramModel);
    icache = std::make_unique<mem::L1Cache>(
        "l1i", eq, &rootGroup, *l2Cache, 64 * 1024, 2, 3, 4);
    dcache = std::make_unique<mem::L1Cache>(
        "l1d", eq, &rootGroup, *l2Cache, 64 * 1024, 2, 3, 8);
    cpuCore = std::make_unique<cpu::OoOCore>(eq, &rootGroup, *icache,
                                             *dcache, core_config);
}

System::~System() = default;

void
System::beginMeasurement()
{
    rootGroup.resetStats();
    l2Cache->beginMeasurement();
}

void
System::functionalWarm(cpu::TraceSource &source,
                       std::uint64_t instructions)
{
    std::uint64_t executed = 0;
    while (executed < instructions) {
        cpu::TraceRecord record = source.next();
        executed += record.gap;
        if (record.isIFetch) {
            icache->accessFunctional(record.blockAddr,
                                     mem::AccessType::InstFetch);
        } else {
            dcache->accessFunctional(record.blockAddr, record.type);
            ++executed;
        }
    }
}

RunResult
runBenchmark(DesignKind kind, const workload::BenchmarkProfile &profile,
             std::uint64_t warm_instructions,
             std::uint64_t measure_instructions, std::uint64_t run_seed,
             std::uint64_t functional_warm, const RunObserver *observer)
{
    cpu::CoreConfig core_config;
    core_config.fetchQuanta = profile.ilpQuanta;
    System system(kind, core_config);
    workload::TraceGenerator gen(profile, run_seed);

    // Long functional warmup (paper methodology: caches warmed over
    // hundreds of millions of instructions), then a short timed
    // warmup to populate contention state.
    if (functional_warm > 0)
        system.functionalWarm(gen, functional_warm);
    if (warm_instructions > 0)
        system.core().run(gen, warm_instructions);

    system.beginMeasurement();
    if (observer && observer->onMeasureBegin)
        observer->onMeasureBegin(system);
    std::uint64_t cycles =
        system.core().run(gen, measure_instructions);
    system.l2().syncStats();
    if (observer && observer->onMeasureEnd)
        observer->onMeasureEnd(system);

    mem::L2Cache &l2 = system.l2();
    RunResult result;
    result.design = l2.designName();
    result.benchmark = profile.name;
    result.cycles = cycles;
    result.instructions = measure_instructions;
    result.ipc = cycles > 0
                     ? static_cast<double>(measure_instructions) /
                           static_cast<double>(cycles)
                     : 0.0;

    double instr_k =
        static_cast<double>(measure_instructions) / 1000.0;
    result.l2RequestsPer1k = l2.demandRequests.value() / instr_k;
    result.l2MissesPer1k = l2.misses.value() / instr_k;
    result.meanLookupLatency = l2.lookupLatency.mean();
    double lookups = l2.lookupLatency.count()
                         ? static_cast<double>(l2.lookupLatency.count())
                         : 1.0;
    result.predictablePct =
        100.0 * l2.predictableLookups.value() / lookups;
    result.banksPerRequest = l2.banksAccessed.mean();

    const phys::Technology &tech = phys::tech45();
    double seconds = static_cast<double>(cycles) * tech.cycleTime();
    result.networkPowerMw =
        seconds > 0.0 ? 1000.0 * l2.networkEnergy.value() / seconds
                      : 0.0;
    result.linkUtilizationPct = 100.0 * l2.linkUtilization(cycles);

    if (auto *dnuca = dynamic_cast<nuca::DnucaCache *>(&l2)) {
        // Close-hit rate is reported against all lookups (Table 6).
        result.closeHitPct = 100.0 * dnuca->closeHits.value() / lookups;
        double ins = l2.inserts.value() > 0 ? l2.inserts.value() : 1.0;
        result.promotesPerInsert = dnuca->promotions.value() / ins;
        double dm = l2.misses.value() > 0 ? l2.misses.value() : 1.0;
        result.fastMissPct = 100.0 * dnuca->fastMisses.value() / dm;
    }
    if (auto *tlc_cache = dynamic_cast<tlc::TlcCache *>(&l2)) {
        result.multiMatchPct =
            100.0 * tlc_cache->multiMatches.value() / lookups;
    }

    result.queueWaitMean = l2.queueWaitLatency.mean();
    result.wireMean = l2.wireLatency.mean();
    result.bankMean = l2.bankLatency.mean();
    result.dramMean = l2.dramLatency.mean();
    result.queueWaitSamples = l2.queueWaitLatency.count();
    result.wireSamples = l2.wireLatency.count();
    result.bankSamples = l2.bankLatency.count();
    result.dramSamples = l2.dramLatency.count();
    return result;
}

} // namespace harness
} // namespace tlsim
