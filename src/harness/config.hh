/**
 * @file
 * Declarative machine + experiment configuration.
 *
 * A SystemConfig describes everything harness::System builds and
 * everything a reproduction run needs to be repeatable: core count and
 * microarchitecture, L1 geometries, the technology node, the L2 design
 * under test (by registry name, with design-specific option
 * overrides), and the warmup/measurement instruction budgets. It
 * round-trips through JSON (tlsim_repro --config / --dump-config) and
 * has a stable content hash that folds into the sweep RunSpec key, so
 * the on-disk ResultCache invalidates exactly when the configuration
 * changes.
 */

#ifndef TLSIM_HARNESS_CONFIG_HH
#define TLSIM_HARNESS_CONFIG_HH

#include <cstdint>
#include <iosfwd>
#include <string>

#include "cpu/ooocore.hh"
#include "mem/l2registry.hh"
#include "phys/technology.hh"
#include "sim/fault/faultconfig.hh"

namespace tlsim
{
namespace harness
{

/** Default functional (timing-free) cache warmup [instructions]. */
constexpr std::uint64_t defaultFunctionalWarmup = 200'000'000;

/** Default timed warmup [instructions]. */
constexpr std::uint64_t defaultWarmup = 3'000'000;

/** Default measurement interval [instructions]. */
constexpr std::uint64_t defaultMeasure = 10'000'000;

/**
 * Main-memory backend selection plus backend-specific options
 * (mem::MemRegistry names; see mem/membackend.hh). The default —
 * backend "fixed" with no options — leaves canonicalKey() and every
 * hash bit-identical to configs predating the backend registry, so
 * existing cache entries and paper artifacts stay valid. Any other
 * backend or option changes the machine hash and therefore mints new
 * ResultCache keys.
 */
struct MemConfig
{
    /** Backend registry name ("fixed", "ddr"). */
    std::string backend = "fixed";

    /** Backend-specific overrides (e.g. "tCAS": 42, "fcfs": 1). */
    conf::OptionMap options;

    bool operator==(const MemConfig &) const = default;
};

/** One private L1 cache's geometry (paper Table 3 defaults). */
struct L1Config
{
    std::uint64_t bytes = 64 * 1024;
    int ways = 2;
    Cycles hitLatency = 3;
    int mshrs = 8;

    bool operator==(const L1Config &) const = default;
};

/**
 * The whole machine plus run budgets, declaratively.
 *
 * Defaults reproduce the paper's single-core 45 nm machine exactly;
 * runBenchmark() with a default-constructed config is bit-identical
 * to the pre-config hard-wired builder.
 */
struct SystemConfig
{
    /** Number of cores sharing the L2 (private split L1s each). */
    int cores = 1;

    /** L2 design registry name ("TLC", "SNUCA2", "TLCopt500", ...). */
    std::string design = "TLC";

    /** Technology node [nm]; 45 is the paper's node. */
    int technologyNm = 45;

    /** Per-core microarchitecture (identical across cores). */
    cpu::CoreConfig core;

    /** Instruction L1 (4 MSHRs: the in-order frontend needs few). */
    L1Config l1i{64 * 1024, 2, 3, 4};

    /** Data L1. */
    L1Config l1d{64 * 1024, 2, 3, 8};

    /** Design-specific L2 overrides (e.g. "lineErrorRate": 1e-12). */
    l2::DesignOptions l2Options;

    /** Main-memory backend and its options (machine identity). */
    MemConfig mem;

    /** Functional warmup budget [instructions]. */
    std::uint64_t functionalWarm = defaultFunctionalWarmup;

    /** Timed warmup budget [instructions, per core]. */
    std::uint64_t warmup = defaultWarmup;

    /** Measurement budget [instructions, per core]. */
    std::uint64_t measure = defaultMeasure;

    /**
     * Round-robin scheduling quantum for multi-core interleaving
     * [instructions]; irrelevant for single-core runs.
     */
    std::uint64_t coreQuantum = 20'000;

    /**
     * Fault injection and resilience protocol. Disabled by default;
     * a default-constructed FaultConfig leaves canonicalKey() and
     * every hash bit-identical to configs predating the fault
     * subsystem, so existing cache entries stay valid.
     */
    fault::FaultConfig fault;

    /**
     * Event domains for partitioned (conservative-PDES) execution:
     * 1 (the default) runs the classic single-queue serial loop;
     * N > 1 asks the L2 design for a partition plan and runs the
     * machine across N domains when it grants one. Pure execution
     * strategy, never machine identity: results are byte-identical
     * at any domain count, so this field is deliberately excluded
     * from canonicalKey()/contentHash()/machineHash() and every
     * existing ResultCache entry stays valid.
     */
    int domains = 1;

    bool operator==(const SystemConfig &) const = default;

    /**
     * Canonical textual form covering every field (l2Options in
     * sorted order); equal configs produce equal keys.
     */
    std::string canonicalKey() const;

    /** FNV-1a hash of canonicalKey(): the config's identity. */
    std::uint64_t contentHash() const;

    /**
     * Hash of the machine fields only (design and budgets excluded —
     * the sweep spec key already spells those out). Default-machine
     * configs hash identically regardless of design/budgets.
     */
    std::uint64_t machineHash() const;

    /**
     * True when every machine field matches the defaults, i.e. the
     * sweep key needs no config suffix and pre-config cache entries
     * stay valid.
     */
    bool isDefaultMachine() const;
};

/** Serialize to JSON (stable field order, round-trip exact). */
void saveConfigJson(const SystemConfig &config, std::ostream &os);

/** Serialize to a JSON string. */
std::string configToJson(const SystemConfig &config);

/** Parse a config written by saveConfigJson; fatal on malformed. */
SystemConfig loadConfigJson(const std::string &text);

/** Load a config from a JSON file; fatal if unreadable/malformed. */
SystemConfig loadConfigFile(const std::string &path);

/**
 * Scale the paper's 45 nm technology description to another node
 * (feature size, lambda, and SRAM cell area scale; voltage, clock,
 * and material constants stay).
 */
phys::Technology technologyForNode(int nm);

/** FNV-1a over a string (shared by config and sweep hashing). */
std::uint64_t fnv1aHash(const std::string &text);

} // namespace harness
} // namespace tlsim

#endif // TLSIM_HARNESS_CONFIG_HH
