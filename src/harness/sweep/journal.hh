/**
 * @file
 * Durable sweep journal: a write-ahead JSONL log of run transitions.
 *
 * A sweep that journals survives its own death. Before a run is
 * dispatched the journal records `started`; when it resolves it
 * records `done` (with the full result, and the captured stats
 * document when stats capture is on) or `failed`/`crashed`. Every
 * line is written with a single write(2) and fsync'd before the
 * sweep proceeds, so after a SIGKILL or a power cut the journal is a
 * truthful prefix of what happened: completed work is never lost and
 * in-flight work is visible as `started` without a matching `done`.
 *
 * `tlsim_repro --resume <journal>` replays that prefix: the journal's
 * identity header (spec-set hash + machine-set hash + model-version
 * salt) is revalidated against the current spec list, `done` runs are
 * restored without re-execution, and `started`/`failed`/`crashed`
 * runs are re-queued. Format spec: docs/ROBUSTNESS.md.
 */

#ifndef TLSIM_HARNESS_SWEEP_JOURNAL_HH
#define TLSIM_HARNESS_SWEEP_JOURNAL_HH

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "harness/sweep/runspec.hh"
#include "harness/system.hh"

namespace tlsim
{
namespace harness
{
namespace sweep
{
namespace journal
{

/** Schema tag carried by every journal line. */
inline constexpr const char *schemaName = "tlsim-journal-v1";

/**
 * Line-oriented file whose every line is durable: writeLine appends
 * the line plus '\n' with one write(2) and fsyncs before returning,
 * so a crash at any instant leaves at most one torn *trailing* line,
 * never a lost earlier one. Used for the sweep journal and the sweep
 * manifest.
 */
class DurableLineFile
{
  public:
    DurableLineFile() = default;
    ~DurableLineFile();

    DurableLineFile(const DurableLineFile &) = delete;
    DurableLineFile &operator=(const DurableLineFile &) = delete;

    /** Open @p path (O_APPEND when @p append, truncating otherwise). */
    bool open(const std::string &path, bool append);

    /** True while the file is open and no write has failed. */
    bool ok() const { return fd >= 0; }

    /** Append @p line + '\n' and fsync. Returns false on error. */
    bool writeLine(const std::string &line);

    void close();

  private:
    int fd = -1;
};

/**
 * JSON string escape covering every control character (",\ and
 * \n\r\t as their short escapes, other bytes < 0x20 as \u00XX), so
 * multi-line documents embed safely in a single JSONL line.
 */
std::string escapeJson(const std::string &text);

/** Inverse of escapeJson (also accepts \/ and \u00XX). */
std::string unescapeJson(const std::string &text);

/**
 * Identity of a sweep: what --resume revalidates before trusting a
 * journal. All three components must match.
 */
struct Identity
{
    /** 16-hex FNV-1a over every specKey in order + the model salt. */
    std::string specSet;
    /** 16-hex FNV-1a over every spec's machine hash in order. */
    std::string machines;
    /** Number of specs in the sweep. */
    std::size_t specs = 0;
};

/** Compute the identity of @p specs. */
Identity identityOf(const std::vector<RunSpec> &specs);

/** Append-side journal handle. All writes are fsync'd lines. */
class Writer
{
  public:
    /**
     * Open @p path. A fresh journal (@p append false) is truncated;
     * a resumed one is appended to. Open failure leaves ok() false
     * (the sweep then runs unjournaled with a warning upstream).
     */
    Writer(const std::string &path, bool append);

    bool ok() const { return file.ok(); }

    /** First line of a fresh journal: the sweep identity header. */
    void writeHeader(const std::vector<RunSpec> &specs);

    /** A run is about to be dispatched. */
    void started(const std::string &spec_key);

    /**
     * A run resolved successfully. @p outcome is "executed" or
     * "cached"; @p result_json is the writeResultJson document;
     * @p stats_json is the captured stats document ("" when capture
     * is off or the run came from cache).
     */
    void done(const std::string &spec_key, const char *outcome,
              const std::string &result_json,
              const std::string &stats_json);

    /**
     * A run failed. @p crashed selects the `crashed` event (child
     * died by signal / timeout / resource limit) over `failed`
     * (clean in-run error). Both are re-queued on resume.
     */
    void failed(const std::string &spec_key, const std::string &error,
                bool crashed);

    /** Resume marker: how much prior progress was restored. */
    void resumed(std::size_t restored, std::size_t requeued);

    /** Clean-interruption record (SIGINT/SIGTERM drain). */
    void interrupted(const char *signal_name, std::size_t resolved,
                     std::size_t pending);

    /** Terminal record of a sweep that ran to completion. */
    void complete(std::size_t executed, std::size_t cached,
                  std::size_t failed);

  private:
    DurableLineFile file;
};

/** One run restored from a journal's `done` record. */
struct RestoredRun
{
    RunResult result;
    /** Captured stats document ("" when none was journaled). */
    std::string stats;
    /** Original outcome: "executed" or "cached". */
    std::string outcome;
};

/** What loadForResume recovered from a journal. */
struct ResumeState
{
    /** False when the journal is unusable; see error. */
    bool ok = false;
    std::string error;
    /** Per input-spec slot: the restored run, if any. */
    std::vector<std::optional<RestoredRun>> runs;
    /** Counts for the resume summary. */
    std::size_t restored = 0;
    /** `started` without `done`: in-flight at the kill, re-queued. */
    std::size_t inFlight = 0;
    /** `failed`/`crashed` records: re-queued. */
    std::size_t requeuedFailures = 0;
};

/**
 * Parse @p path and recover completed runs for @p specs. Rejects
 * (ok = false) journals whose identity header is missing or does not
 * match the current spec list / model salt; tolerates one torn
 * trailing line (the crash-in-mid-write case).
 */
ResumeState loadForResume(const std::string &path,
                          const std::vector<RunSpec> &specs);

} // namespace journal
} // namespace sweep
} // namespace harness
} // namespace tlsim

#endif // TLSIM_HARNESS_SWEEP_JOURNAL_HH
