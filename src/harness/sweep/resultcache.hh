/**
 * @file
 * Content-addressed on-disk memoization of RunResults.
 *
 * Every completed simulation is stored as one JSON file named by the
 * spec's content hash (see sweep::cacheKey): the same spec always
 * maps to the same file, independent of which process or thread
 * produced it, and a model-version salt in the key retires every
 * stale entry at once when the simulator changes. Values use the
 * same JSON conventions as the stats export (PR 1), so cache files
 * are greppable and machine-readable with any JSON reader.
 */

#ifndef TLSIM_HARNESS_SWEEP_RESULTCACHE_HH
#define TLSIM_HARNESS_SWEEP_RESULTCACHE_HH

#include <cstddef>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "harness/sweep/runspec.hh"
#include "harness/system.hh"

namespace tlsim
{
namespace harness
{
namespace sweep
{

/**
 * Serialize one RunResult as a self-describing JSON object (includes
 * the spec key and model salt alongside every metric). Doubles are
 * written with max_digits10 precision so the round trip is exact.
 */
void writeResultJson(std::ostream &os, const RunSpec &spec,
                     const RunResult &result);

/**
 * Parse a RunResult previously written by writeResultJson.
 * @return The result, or nullopt if the text is malformed, was
 *         written for a different spec, or under a different model
 *         salt.
 */
std::optional<RunResult> readResultJson(const std::string &text,
                                        const RunSpec &spec);

/**
 * Directory of memoized RunResults, one file per cache key.
 *
 * The cache never invalidates by time: entries are found only while
 * both the spec and modelVersionSalt still hash to their file name.
 * Concurrent lookups are safe; stores of the same key are idempotent
 * (last writer wins with identical content).
 */
class ResultCache
{
  public:
    /** Open (creating if needed) the cache directory @p dir. */
    explicit ResultCache(std::string dir);

    /** Load the memoized result of @p spec, if present and valid. */
    std::optional<RunResult> load(const RunSpec &spec) const;

    /** Memoize @p result as the value of @p spec. */
    void store(const RunSpec &spec, const RunResult &result) const;

    /** The directory backing this cache. */
    const std::string &dir() const { return _dir; }

  private:
    std::string filePath(const RunSpec &spec) const;

    std::string _dir;
};

/** What --fsck-cache found in one cache directory. */
struct FsckReport
{
    /** Entries examined (*.json files; tmp leftovers are skipped). */
    std::size_t scanned = 0;
    /** Entries that passed every check. */
    std::size_t valid = 0;
    /** Entries moved to <dir>/quarantine/. */
    std::size_t quarantined = 0;
    /** One human-readable line per problem found. */
    std::vector<std::string> problems;
};

/**
 * Validate every entry in cache directory @p dir: parseable JSON of
 * the expected schema, all required result fields present, and a file
 * name that matches the content address of the entry's own declared
 * spec + model salt. Corrupt entries are moved into
 * <dir>/quarantine/ (preserved for inspection, invisible to load()).
 */
FsckReport fsckCache(const std::string &dir);

} // namespace sweep
} // namespace harness
} // namespace tlsim

#endif // TLSIM_HARNESS_SWEEP_RESULTCACHE_HH
