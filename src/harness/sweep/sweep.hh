/**
 * @file
 * Thread-pool sweep runner.
 *
 * Executes a list of RunSpecs across N worker threads. Determinism is
 * structural, not scheduled: each run derives its RNG seed from its
 * spec (never from execution order), builds a private System and
 * event queue, and writes into its own result/stats slot, so the
 * outcome of a sweep is a pure function of the spec list — byte-for-
 * byte identical whether run with 1 worker or 16.
 *
 * Completed runs are memoized through a ResultCache: warm entries are
 * resolved up front (a fully warm sweep executes zero simulations),
 * and misses are stored as soon as each simulation finishes.
 *
 * Observability rides along per worker: when stats capture is on,
 * each run dumps its final stats tree (the PR-1 JSON export) into a
 * per-run sink; mergedStatsJson() then folds the per-run documents
 * into one object in spec order, independent of completion order.
 */

#ifndef TLSIM_HARNESS_SWEEP_SWEEP_HH
#define TLSIM_HARNESS_SWEEP_SWEEP_HH

#include <cstddef>
#include <string>
#include <vector>

#include "harness/sweep/resultcache.hh"
#include "harness/sweep/runspec.hh"

namespace tlsim
{
namespace harness
{
namespace sweep
{

/** Knobs of one sweep execution. */
struct SweepOptions
{
    /** Worker threads (values < 1 behave as 1). */
    int jobs = 1;
    /** Result-cache directory; empty disables memoization. */
    std::string cacheDir;
    /** Capture each run's final stats tree as JSON. */
    bool captureStats = false;
    /** Print per-run progress lines to stderr. */
    bool verbose = true;
    /**
     * Prometheus text-format metrics file; rewritten atomically after
     * every run completion so an external scraper always sees a
     * consistent snapshot. Empty disables.
     */
    std::string metricsOut;
    /**
     * Per-sweep run ledger (manifest.jsonl): one JSON record per
     * spec — cached, executed, or failed — appended in completion
     * order. Empty disables.
     */
    std::string manifestOut;
    /** Live single-line progress/ETA display on stderr. */
    bool progress = false;
};

/** What a sweep produced, in spec order. */
struct SweepOutcome
{
    /** One result per input spec (same indexing as the spec list). */
    std::vector<RunResult> results;
    /**
     * Per-spec final stats JSON (empty string when the run was
     * resolved from cache or capture was off).
     */
    std::vector<std::string> statsJson;
    /** Simulations actually executed (cache misses). */
    std::size_t executed = 0;
    /** Runs resolved from the result cache. */
    std::size_t cached = 0;
    /**
     * Runs that crashed (panic/exception escaped the simulation).
     * Each failed run's RunResult carries the message in its error
     * field; failed runs are never stored in the result cache.
     */
    std::size_t failed = 0;
};

/**
 * Run every spec (executing cache misses on a pool of
 * options.jobs threads) and return all results in spec order.
 */
SweepOutcome runSweep(const std::vector<RunSpec> &specs,
                      const SweepOptions &options);

/**
 * Merge per-run stats documents into one JSON object keyed by spec
 * key, in spec order: {"TLC/gcc/...": {...}, ...}. Runs without a
 * captured document are emitted as null, so a document's shape
 * depends only on the spec list.
 */
std::string mergedStatsJson(const std::vector<RunSpec> &specs,
                            const SweepOutcome &outcome);

/** Append @p spec to @p specs unless an equal spec is present. */
void addUnique(std::vector<RunSpec> &specs, const RunSpec &spec);

} // namespace sweep
} // namespace harness
} // namespace tlsim

#endif // TLSIM_HARNESS_SWEEP_SWEEP_HH
