/**
 * @file
 * Thread-pool sweep runner.
 *
 * Executes a list of RunSpecs across N worker threads. Determinism is
 * structural, not scheduled: each run derives its RNG seed from its
 * spec (never from execution order), builds a private System and
 * event queue, and writes into its own result/stats slot, so the
 * outcome of a sweep is a pure function of the spec list — byte-for-
 * byte identical whether run with 1 worker or 16.
 *
 * Completed runs are memoized through a ResultCache: warm entries are
 * resolved up front (a fully warm sweep executes zero simulations),
 * and misses are stored as soon as each simulation finishes.
 *
 * Observability rides along per worker: when stats capture is on,
 * each run dumps its final stats tree (the PR-1 JSON export) into a
 * per-run sink; mergedStatsJson() then folds the per-run documents
 * into one object in spec order, independent of completion order.
 */

#ifndef TLSIM_HARNESS_SWEEP_SWEEP_HH
#define TLSIM_HARNESS_SWEEP_SWEEP_HH

#include <cstddef>
#include <string>
#include <vector>

#include "harness/sweep/resultcache.hh"
#include "harness/sweep/runspec.hh"

namespace tlsim
{
namespace harness
{
namespace sweep
{

/**
 * How a cache-miss run is contained (docs/ROBUSTNESS.md).
 *
 * - None: no containment — a panic unwinds the sweep (debugging).
 * - Thread: in-process try/catch; exceptions/panics become per-run
 *   errors, but a segfault/OOM/hang still kills the sweep.
 * - Process: each run executes in a forked, rlimit-capped child
 *   (sweep/sandbox.hh); any way the run can die becomes a per-run
 *   error, byte-identical results otherwise.
 */
enum class Isolation
{
    None,
    Thread,
    Process,
};

/** Knobs of one sweep execution. */
struct SweepOptions
{
    /** Worker threads (values < 1 behave as 1). */
    int jobs = 1;
    /** Result-cache directory; empty disables memoization. */
    std::string cacheDir;
    /** Capture each run's final stats tree as JSON. */
    bool captureStats = false;
    /** Print per-run progress lines to stderr. */
    bool verbose = true;
    /**
     * Prometheus text-format metrics file; rewritten atomically after
     * every run completion so an external scraper always sees a
     * consistent snapshot. Empty disables.
     */
    std::string metricsOut;
    /**
     * Per-sweep run ledger (manifest.jsonl): one JSON record per
     * spec — cached, executed, or failed — appended in completion
     * order. Empty disables.
     */
    std::string manifestOut;
    /** Live single-line progress/ETA display on stderr. */
    bool progress = false;
    /** Run containment mode for cache misses. */
    Isolation isolate = Isolation::Thread;
    /**
     * Per-run wall-clock timeout [seconds]; 0 disables. Enforced by
     * the sandbox parent under Process isolation and by the
     * fault::Watchdog wall deadline under Thread isolation (polled
     * from core wait loops, so a run that never waits on memory is
     * not interruptible in thread mode).
     */
    double runTimeoutSec = 0.0;
    /** Child CPU-seconds cap (Process isolation only; 0 = none). */
    std::uint64_t rlimitCpuSec = 0;
    /** Child address-space cap in MiB (Process isolation; 0 = none). */
    std::uint64_t rlimitRssMb = 0;
    /**
     * Write-ahead journal path (sweep/journal.hh). Non-empty enables
     * journaling, durable per-run transition records, and the
     * SIGINT/SIGTERM drain-and-record handlers. Empty disables.
     */
    std::string journalPath;
    /**
     * Resume from journalPath: revalidate the journal's identity
     * against the spec list, restore `done` runs without executing
     * them, and re-queue in-flight/failed ones. Identity mismatch is
     * fatal (a resumed sweep must be the same sweep).
     */
    bool resume = false;
};

/** What a sweep produced, in spec order. */
struct SweepOutcome
{
    /** One result per input spec (same indexing as the spec list). */
    std::vector<RunResult> results;
    /**
     * Per-spec final stats JSON (empty string when the run was
     * resolved from cache or capture was off).
     */
    std::vector<std::string> statsJson;
    /** Simulations actually executed (cache misses). */
    std::size_t executed = 0;
    /** Runs resolved from the result cache. */
    std::size_t cached = 0;
    /**
     * Runs that crashed (panic/exception escaped the simulation).
     * Each failed run's RunResult carries the message in its error
     * field; failed runs are never stored in the result cache.
     */
    std::size_t failed = 0;
    /** Runs restored from a resumed journal (never re-executed). */
    std::size_t restored = 0;
    /**
     * The sweep was interrupted (SIGINT/SIGTERM with journaling on):
     * in-flight runs were drained and journaled, the rest were never
     * dispatched. Resume with SweepOptions::resume.
     */
    bool interrupted = false;
};

namespace detail
{

/**
 * Execute one spec in-process with no containment — shared by the
 * thread-isolation wrapper and the sandbox child (sandbox.cc), which
 * is what makes process- and thread-isolated results byte-identical.
 * @p run_timeout_sec > 0 arms the watchdog wall deadline (thread-
 * mode --run-timeout); the sandbox child passes 0 and lets its
 * parent keep time.
 */
RunResult executeSpec(const RunSpec &spec, bool capture_stats,
                      std::string &stats_json,
                      double run_timeout_sec);

} // namespace detail

/**
 * Run every spec (executing cache misses on a pool of
 * options.jobs threads) and return all results in spec order.
 */
SweepOutcome runSweep(const std::vector<RunSpec> &specs,
                      const SweepOptions &options);

/**
 * Merge per-run stats documents into one JSON object keyed by spec
 * key, in spec order: {"TLC/gcc/...": {...}, ...}. Runs without a
 * captured document are emitted as null, so a document's shape
 * depends only on the spec list.
 */
std::string mergedStatsJson(const std::vector<RunSpec> &specs,
                            const SweepOutcome &outcome);

/** Append @p spec to @p specs unless an equal spec is present. */
void addUnique(std::vector<RunSpec> &specs, const RunSpec &spec);

} // namespace sweep
} // namespace harness
} // namespace tlsim

#endif // TLSIM_HARNESS_SWEEP_SWEEP_HH
