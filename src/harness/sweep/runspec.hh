/**
 * @file
 * Declarative description of one simulation run.
 *
 * A RunSpec names everything that determines a run's outcome — the
 * full machine + budget configuration (SystemConfig, which includes
 * the L2 design and the three instruction budgets), the benchmark,
 * and a base seed — and nothing else. Every derived quantity (the
 * workload trace seed, the result-cache key) is a pure function of
 * the spec, so runs scheduled across any number of worker threads in
 * any order produce bit-identical results, and results can be
 * memoized on disk keyed by content rather than by execution history.
 */

#ifndef TLSIM_HARNESS_SWEEP_RUNSPEC_HH
#define TLSIM_HARNESS_SWEEP_RUNSPEC_HH

#include <cstdint>
#include <string>

#include "harness/system.hh"

namespace tlsim
{
namespace harness
{
namespace sweep
{

/**
 * Version salt mixed into every result-cache key. Bump whenever a
 * change to the simulator models (timing, policies, workload
 * calibration) invalidates previously computed results; stale cache
 * entries then simply stop being found.
 */
inline constexpr const char *modelVersionSalt = "tlsim-model-v2";

/** One (machine config, benchmark, seed) point of a sweep. */
struct RunSpec
{
    /** Workload profile name (see workload::paperBenchmarks()). */
    std::string benchmark;
    /** Extra seed entropy folded into the trace seed. */
    std::uint64_t baseSeed = 0;
    /**
     * The machine + budgets to run: design, core count, L1 geometry,
     * technology node, l2 options, warmup/measure/functionalWarm.
     */
    SystemConfig config;

    /** Field-wise equality (used for deduplication). */
    bool operator==(const RunSpec &other) const = default;
};

/** Convenience: spec for a paper design with default machine. */
RunSpec makeRunSpec(DesignKind design, const std::string &benchmark);

/**
 * Canonical human-readable identity of a spec, e.g.
 * "TLC/gcc/w3000000/m10000000/f200000000/s0". Specs whose machine
 * differs from the default single-core paper machine append
 * "/c<16-hex machine hash>", so pre-existing cache entries for
 * default-machine runs stay valid and any machine-config change
 * moves the spec to a fresh cache slot. Two specs are equivalent iff
 * their keys are equal.
 */
std::string specKey(const RunSpec &spec);

/**
 * Workload trace seed derived from the spec's benchmark and budgets —
 * deliberately NOT from the design or machine, so every design
 * replays the bit-identical reference trace (the paper's normalized
 * comparisons depend on this), and NOT from execution order, so
 * parallel sweeps reproduce serial ones.
 */
std::uint64_t traceSeed(const RunSpec &spec);

/** 64-bit FNV-1a hash of a string (exposed for tests). */
std::uint64_t fnv1a(const std::string &text);

/**
 * Content address of the spec's result: 16 lowercase hex digits of
 * fnv1a(specKey + modelVersionSalt). Used as the on-disk cache file
 * name.
 */
std::string cacheKey(const RunSpec &spec);

/**
 * cacheKey from an already-computed spec key under an explicit model
 * salt. Lets --fsck-cache validate an entry's file name against the
 * spec and salt the entry itself declares (entries from older model
 * versions are stale, not corrupt).
 */
std::string cacheKeyForSpecKey(const std::string &spec_key,
                               const std::string &model_salt);

} // namespace sweep
} // namespace harness
} // namespace tlsim

#endif // TLSIM_HARNESS_SWEEP_RUNSPEC_HH
