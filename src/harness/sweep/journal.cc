#include "harness/sweep/journal.hh"

#include <fcntl.h>
#include <unistd.h>

#include <cctype>
#include <cstdio>
#include <fstream>
#include <iomanip>
#include <map>
#include <sstream>

#include "harness/config.hh"
#include "harness/sweep/resultcache.hh"
#include "sim/logging.hh"

namespace tlsim
{
namespace harness
{
namespace sweep
{
namespace journal
{

namespace
{

std::string
hex16(std::uint64_t value)
{
    std::ostringstream os;
    os << std::hex << std::setw(16) << std::setfill('0') << value;
    return os.str();
}

/**
 * Scan one flat JSON object line into key -> decoded value. Unlike
 * the result-cache scanner this one fully unescapes string values,
 * so embedded documents (result/stats blobs) survive the round trip.
 */
bool
scanJournalLine(const std::string &text,
                std::map<std::string, std::string> &out)
{
    std::size_t i = 0;
    auto skipWs = [&] {
        while (i < text.size() &&
               std::isspace(static_cast<unsigned char>(text[i])))
            ++i;
    };
    auto parseString = [&](std::string &s) {
        if (i >= text.size() || text[i] != '"')
            return false;
        std::size_t start = i + 1;
        ++i;
        while (i < text.size() && text[i] != '"') {
            if (text[i] == '\\')
                ++i; // skip the escaped character
            ++i;
        }
        if (i >= text.size())
            return false;
        s = unescapeJson(text.substr(start, i - start));
        ++i; // closing quote
        return true;
    };

    skipWs();
    if (i >= text.size() || text[i] != '{')
        return false;
    ++i;
    skipWs();
    if (i < text.size() && text[i] == '}')
        return true;
    while (true) {
        skipWs();
        std::string key;
        if (!parseString(key))
            return false;
        skipWs();
        if (i >= text.size() || text[i] != ':')
            return false;
        ++i;
        skipWs();
        std::string value;
        if (i < text.size() && text[i] == '"') {
            if (!parseString(value))
                return false;
        } else {
            std::size_t start = i;
            while (i < text.size() && text[i] != ',' &&
                   text[i] != '}')
                ++i;
            value = text.substr(start, i - start);
            while (!value.empty() &&
                   std::isspace(
                       static_cast<unsigned char>(value.back())))
                value.pop_back();
            if (value.empty())
                return false;
        }
        out[key] = value;
        skipWs();
        if (i >= text.size())
            return false;
        if (text[i] == '}')
            return true;
        if (text[i] != ',')
            return false;
        ++i;
    }
}

} // namespace

DurableLineFile::~DurableLineFile() { close(); }

bool
DurableLineFile::open(const std::string &path, bool append)
{
    close();
    int flags = O_WRONLY | O_CREAT | (append ? O_APPEND : O_TRUNC);
    fd = ::open(path.c_str(), flags, 0644);
    return fd >= 0;
}

bool
DurableLineFile::writeLine(const std::string &line)
{
    if (fd < 0)
        return false;
    std::string buf = line;
    buf += '\n';
    const char *data = buf.data();
    std::size_t left = buf.size();
    while (left > 0) {
        ssize_t n = ::write(fd, data, left);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            close();
            return false;
        }
        data += n;
        left -= static_cast<std::size_t>(n);
    }
    if (::fsync(fd) != 0) {
        close();
        return false;
    }
    return true;
}

void
DurableLineFile::close()
{
    if (fd >= 0) {
        ::close(fd);
        fd = -1;
    }
}

std::string
escapeJson(const std::string &text)
{
    std::string out;
    out.reserve(text.size() + 8);
    for (char c : text) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
unescapeJson(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (std::size_t i = 0; i < text.size(); ++i) {
        if (text[i] != '\\' || i + 1 >= text.size()) {
            out += text[i];
            continue;
        }
        ++i;
        switch (text[i]) {
          case 'n':
            out += '\n';
            break;
          case 'r':
            out += '\r';
            break;
          case 't':
            out += '\t';
            break;
          case 'u':
            if (i + 4 < text.size()) {
                unsigned code = 0;
                std::sscanf(text.c_str() + i + 1, "%4x", &code);
                out += static_cast<char>(code & 0xff);
                i += 4;
            }
            break;
          default:
            out += text[i]; // covers \" \\ \/
        }
    }
    return out;
}

Identity
identityOf(const std::vector<RunSpec> &specs)
{
    std::ostringstream keys;
    std::ostringstream machines;
    for (const RunSpec &spec : specs) {
        keys << specKey(spec) << '\n';
        machines << hex16(spec.config.machineHash()) << '\n';
    }
    keys << '#' << modelVersionSalt;
    Identity id;
    id.specSet = hex16(fnv1a(keys.str()));
    id.machines = hex16(fnv1a(machines.str()));
    id.specs = specs.size();
    return id;
}

Writer::Writer(const std::string &path, bool append)
{
    if (!file.open(path, append))
        warn("cannot open sweep journal '{}'; sweep will not be "
             "resumable",
             path);
}

void
Writer::writeHeader(const std::vector<RunSpec> &specs)
{
    Identity id = identityOf(specs);
    std::ostringstream os;
    os << "{\"schema\": \"" << schemaName
       << "\", \"event\": \"header\", \"model\": \""
       << modelVersionSalt << "\", \"specset\": \"" << id.specSet
       << "\", \"machines\": \"" << id.machines
       << "\", \"specs\": " << id.specs << "}";
    file.writeLine(os.str());
}

void
Writer::started(const std::string &spec_key)
{
    std::ostringstream os;
    os << "{\"schema\": \"" << schemaName
       << "\", \"event\": \"started\", \"spec\": \""
       << escapeJson(spec_key) << "\"}";
    file.writeLine(os.str());
}

void
Writer::done(const std::string &spec_key, const char *outcome,
             const std::string &result_json,
             const std::string &stats_json)
{
    std::ostringstream os;
    os << "{\"schema\": \"" << schemaName
       << "\", \"event\": \"done\", \"spec\": \""
       << escapeJson(spec_key) << "\", \"outcome\": \"" << outcome
       << "\", \"result\": \"" << escapeJson(result_json) << "\"";
    if (!stats_json.empty())
        os << ", \"stats\": \"" << escapeJson(stats_json) << "\"";
    os << "}";
    file.writeLine(os.str());
}

void
Writer::failed(const std::string &spec_key, const std::string &error,
               bool crashed)
{
    std::ostringstream os;
    os << "{\"schema\": \"" << schemaName << "\", \"event\": \""
       << (crashed ? "crashed" : "failed") << "\", \"spec\": \""
       << escapeJson(spec_key) << "\", \"error\": \""
       << escapeJson(error) << "\"}";
    file.writeLine(os.str());
}

void
Writer::resumed(std::size_t restored, std::size_t requeued)
{
    std::ostringstream os;
    os << "{\"schema\": \"" << schemaName
       << "\", \"event\": \"resumed\", \"restored\": " << restored
       << ", \"requeued\": " << requeued << "}";
    file.writeLine(os.str());
}

void
Writer::interrupted(const char *signal_name, std::size_t resolved,
                    std::size_t pending)
{
    std::ostringstream os;
    os << "{\"schema\": \"" << schemaName
       << "\", \"event\": \"interrupted\", \"signal\": \""
       << signal_name << "\", \"resolved\": " << resolved
       << ", \"pending\": " << pending << "}";
    file.writeLine(os.str());
}

void
Writer::complete(std::size_t executed, std::size_t cached,
                 std::size_t failed)
{
    std::ostringstream os;
    os << "{\"schema\": \"" << schemaName
       << "\", \"event\": \"complete\", \"executed\": " << executed
       << ", \"cached\": " << cached << ", \"failed\": " << failed
       << "}";
    file.writeLine(os.str());
}

ResumeState
loadForResume(const std::string &path,
              const std::vector<RunSpec> &specs)
{
    ResumeState state;
    state.runs.resize(specs.size());

    std::ifstream in(path);
    if (!in.is_open()) {
        state.error = "cannot open journal";
        return state;
    }

    std::map<std::string, std::size_t> index;
    for (std::size_t i = 0; i < specs.size(); ++i)
        index[specKey(specs[i])] = i;

    Identity want = identityOf(specs);
    bool sawHeader = false;
    /** specKey -> started-but-unresolved. */
    std::map<std::size_t, bool> inFlight;

    std::string line;
    std::size_t lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        if (line.empty())
            continue;
        std::map<std::string, std::string> rec;
        if (!scanJournalLine(line, rec)) {
            // A torn trailing line is the expected signature of a
            // crash mid-write; a torn interior line is corruption.
            if (in.peek() == EOF) {
                warn("journal '{}': ignoring torn trailing line {}",
                     path, lineno);
                break;
            }
            state.error =
                csprintf("corrupt journal line {}", lineno);
            return state;
        }
        auto get = [&](const char *key) -> const std::string * {
            auto it = rec.find(key);
            return it == rec.end() ? nullptr : &it->second;
        };
        const std::string *schema = get("schema");
        const std::string *event = get("event");
        if (!schema || *schema != schemaName || !event) {
            state.error = csprintf(
                "line {} is not a {} record", lineno, schemaName);
            return state;
        }

        if (*event == "header") {
            const std::string *model = get("model");
            const std::string *specset = get("specset");
            const std::string *machines = get("machines");
            if (!model || !specset || !machines) {
                state.error = "header missing identity fields";
                return state;
            }
            if (*model != modelVersionSalt) {
                state.error = csprintf(
                    "model salt mismatch: journal '{}' vs current "
                    "'{}'",
                    *model, modelVersionSalt);
                return state;
            }
            if (*specset != want.specSet ||
                *machines != want.machines) {
                state.error =
                    "spec-set/machine identity mismatch (different "
                    "spec list, machine config, or filter)";
                return state;
            }
            sawHeader = true;
            continue;
        }
        if (!sawHeader) {
            state.error = "journal has no identity header";
            return state;
        }

        const std::string *spec = get("spec");
        std::size_t slot = specs.size();
        if (spec) {
            auto it = index.find(*spec);
            if (it == index.end())
                continue; // identity matched, so this can't happen
            slot = it->second;
        }

        if (*event == "started" && spec) {
            if (!state.runs[slot])
                inFlight[slot] = true;
        } else if (*event == "done" && spec) {
            const std::string *result = get("result");
            const std::string *outcome = get("outcome");
            if (!result)
                continue;
            auto parsed = readResultJson(*result, specs[slot]);
            if (!parsed) {
                warn("journal '{}': unreadable result for {} "
                     "(re-queueing)",
                     path, *spec);
                continue;
            }
            RestoredRun run;
            run.result = std::move(*parsed);
            if (const std::string *stats = get("stats"))
                run.stats = *stats;
            run.outcome = outcome ? *outcome : "executed";
            state.runs[slot] = std::move(run);
            inFlight.erase(slot);
        } else if ((*event == "failed" || *event == "crashed") &&
                   spec) {
            inFlight.erase(slot);
            if (!state.runs[slot])
                ++state.requeuedFailures;
        }
        // resumed / interrupted / complete are informational.
    }

    if (!sawHeader) {
        state.error = "journal has no identity header";
        return state;
    }
    for (const auto &run : state.runs)
        if (run)
            ++state.restored;
    state.inFlight = inFlight.size();
    state.ok = true;
    return state;
}

} // namespace journal
} // namespace sweep
} // namespace harness
} // namespace tlsim
