/**
 * @file
 * Process-level run sandboxing for the sweep runner.
 *
 * `--isolate=thread` (the default) contains a run's *exceptions*; it
 * cannot contain a segfault, an OOM kill, or a runaway loop — any of
 * those still takes down the whole sweep and every worker's finished
 * run with it. The Sandbox closes that gap: each spec executes in a
 * forked child under setrlimit caps (CPU seconds via RLIMIT_CPU,
 * memory via RLIMIT_AS) plus a parent-side wall-clock timeout, and
 * marshals its RunResult + captured stats JSON back over a pipe. The
 * parent turns every way a child can die into a per-run error string
 * — "signal 11 (Segmentation fault)", "timeout after 30s",
 * "rss limit 512 MiB exceeded" — and the sweep keeps going.
 *
 * Results are byte-identical to in-process execution: the child runs
 * the exact same executeSpec path and the result round-trips through
 * the same writeResultJson/readResultJson pair the result cache uses
 * (test_sweep.cc pins the conformance).
 *
 * Fork safety: in process-isolation mode *every* cache miss runs in
 * a child, so the parent's worker threads never touch the simulator
 * (PhysCache locks, event queues) — the child can therefore safely
 * use all of it after fork.
 */

#ifndef TLSIM_HARNESS_SWEEP_SANDBOX_HH
#define TLSIM_HARNESS_SWEEP_SANDBOX_HH

#include <cstdint>
#include <string>

#include "harness/sweep/runspec.hh"
#include "harness/system.hh"

namespace tlsim
{
namespace harness
{
namespace sweep
{

/** Resource caps applied to one sandboxed run. 0 disables a cap. */
struct SandboxLimits
{
    /** Parent-side wall-clock timeout [seconds]. */
    double wallTimeoutSec = 0.0;
    /** Child CPU-time cap [seconds] (RLIMIT_CPU, SIGXCPU). */
    std::uint64_t cpuSeconds = 0;
    /** Child address-space cap [MiB] (RLIMIT_AS). */
    std::uint64_t rssMegabytes = 0;
};

/**
 * Execute @p spec in a forked, resource-capped child.
 *
 * @param capture_stats Capture the run's final stats tree.
 * @param stats_json [out] The captured stats document ("" on failure
 *        or when capture is off).
 * @param limits Resource caps for the child.
 * @param crashed [out, optional] True when the child died abnormally
 *        (signal, timeout, malformed marshal) rather than reporting
 *        a clean in-run error; journals record these as `crashed`.
 * @return The run's result; on any child death the error field holds
 *         the verdict and the metrics are zeroed.
 *
 * Test hooks (sandboxed children only, matched as substrings of the
 * spec key; used by tests/test_sweep.cc and tools/check_resume.py):
 *   TLSIM_TEST_CRASH_SPEC       raise SIGSEGV before simulating
 *   TLSIM_TEST_HANG_SPEC        spin forever (wall/CPU-cap tests)
 *   TLSIM_TEST_OOM_SPEC         allocate unboundedly (RSS-cap test)
 *   TLSIM_TEST_KILL_SWEEP_SPEC  SIGKILL the parent sweep (the
 *                               crash-resume drill's deterministic
 *                               mid-flight kill)
 */
RunResult runSandboxed(const RunSpec &spec, bool capture_stats,
                       std::string &stats_json,
                       const SandboxLimits &limits,
                       bool *crashed = nullptr);

} // namespace sweep
} // namespace harness
} // namespace tlsim

#endif // TLSIM_HARNESS_SWEEP_SANDBOX_HH
