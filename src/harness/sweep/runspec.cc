#include "harness/sweep/runspec.hh"

#include <iomanip>
#include <sstream>

namespace tlsim
{
namespace harness
{
namespace sweep
{

RunSpec
makeRunSpec(DesignKind design, const std::string &benchmark)
{
    RunSpec spec;
    spec.benchmark = benchmark;
    spec.config.design = designName(design);
    return spec;
}

std::string
specKey(const RunSpec &spec)
{
    std::ostringstream os;
    os << spec.config.design << '/' << spec.benchmark << "/w"
       << spec.config.warmup << "/m" << spec.config.measure << "/f"
       << spec.config.functionalWarm << "/s" << spec.baseSeed;
    if (!spec.config.isDefaultMachine()) {
        os << "/c" << std::hex << std::setw(16) << std::setfill('0')
           << spec.config.machineHash();
    }
    return os.str();
}

std::uint64_t
fnv1a(const std::string &text)
{
    return fnv1aHash(text);
}

std::uint64_t
traceSeed(const RunSpec &spec)
{
    // Everything except the design and machine contributes: identical
    // traces across designs, distinct traces across benchmarks and
    // budgets.
    std::ostringstream os;
    os << spec.benchmark << "/w" << spec.config.warmup << "/m"
       << spec.config.measure << "/f" << spec.config.functionalWarm
       << "/s" << spec.baseSeed;
    return fnv1a(os.str());
}

std::string
cacheKeyForSpecKey(const std::string &spec_key,
                   const std::string &model_salt)
{
    std::uint64_t hash = fnv1a(spec_key + '#' + model_salt);
    std::ostringstream os;
    os << std::hex << std::setw(16) << std::setfill('0') << hash;
    return os.str();
}

std::string
cacheKey(const RunSpec &spec)
{
    return cacheKeyForSpecKey(specKey(spec), modelVersionSalt);
}

} // namespace sweep
} // namespace harness
} // namespace tlsim
