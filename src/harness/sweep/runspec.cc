#include "harness/sweep/runspec.hh"

#include <iomanip>
#include <sstream>

namespace tlsim
{
namespace harness
{
namespace sweep
{

std::string
specKey(const RunSpec &spec)
{
    std::ostringstream os;
    os << designName(spec.design) << '/' << spec.benchmark << "/w"
       << spec.warmup << "/m" << spec.measure << "/f"
       << spec.functionalWarm << "/s" << spec.baseSeed;
    return os.str();
}

std::uint64_t
fnv1a(const std::string &text)
{
    std::uint64_t hash = 0xcbf29ce484222325ULL;
    for (unsigned char c : text) {
        hash ^= c;
        hash *= 0x100000001b3ULL;
    }
    return hash;
}

std::uint64_t
traceSeed(const RunSpec &spec)
{
    // Everything except the design contributes: identical traces
    // across designs, distinct traces across benchmarks/budgets.
    std::ostringstream os;
    os << spec.benchmark << "/w" << spec.warmup << "/m" << spec.measure
       << "/f" << spec.functionalWarm << "/s" << spec.baseSeed;
    return fnv1a(os.str());
}

std::string
cacheKey(const RunSpec &spec)
{
    std::uint64_t hash = fnv1a(specKey(spec) + '#' + modelVersionSalt);
    std::ostringstream os;
    os << std::hex << std::setw(16) << std::setfill('0') << hash;
    return os.str();
}

} // namespace sweep
} // namespace harness
} // namespace tlsim
