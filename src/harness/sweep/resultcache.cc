#include "harness/sweep/resultcache.hh"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <map>
#include <sstream>
#include <vector>

#include "sim/logging.hh"
#include "sim/trace/tracesink.hh"

namespace tlsim
{
namespace harness
{
namespace sweep
{

namespace
{

/** Name/member tables so serialize and parse can never drift. */
struct DoubleField
{
    const char *name;
    double RunResult::*ptr;
};

struct U64Field
{
    const char *name;
    std::uint64_t RunResult::*ptr;
};

constexpr DoubleField doubleFields[] = {
    {"ipc", &RunResult::ipc},
    {"l2RequestsPer1k", &RunResult::l2RequestsPer1k},
    {"l2MissesPer1k", &RunResult::l2MissesPer1k},
    {"meanLookupLatency", &RunResult::meanLookupLatency},
    {"predictablePct", &RunResult::predictablePct},
    {"banksPerRequest", &RunResult::banksPerRequest},
    {"networkPowerMw", &RunResult::networkPowerMw},
    {"linkUtilizationPct", &RunResult::linkUtilizationPct},
    {"closeHitPct", &RunResult::closeHitPct},
    {"promotesPerInsert", &RunResult::promotesPerInsert},
    {"fastMissPct", &RunResult::fastMissPct},
    {"multiMatchPct", &RunResult::multiMatchPct},
    {"queueWaitMean", &RunResult::queueWaitMean},
    {"wireMean", &RunResult::wireMean},
    {"bankMean", &RunResult::bankMean},
    {"dramMean", &RunResult::dramMean},
};

constexpr U64Field u64Fields[] = {
    {"cycles", &RunResult::cycles},
    {"instructions", &RunResult::instructions},
    {"queueWaitSamples", &RunResult::queueWaitSamples},
    {"wireSamples", &RunResult::wireSamples},
    {"bankSamples", &RunResult::bankSamples},
    {"dramSamples", &RunResult::dramSamples},
};

/**
 * Fields added after tlsim-runresult-v1 entries already existed in
 * the wild: always written, defaulted (not rejected) when an older
 * entry lacks them.
 */
constexpr DoubleField optionalDoubleFields[] = {
    {"linkRetries", &RunResult::linkRetries},
    {"linkTimeouts", &RunResult::linkTimeouts},
    {"degradedRequests", &RunResult::degradedRequests},
    {"faultMean", &RunResult::faultMean},
};

constexpr U64Field optionalU64Fields[] = {
    {"faultSamples", &RunResult::faultSamples},
};

/**
 * Scan one flat JSON object ({"key": "string"|number, ...}) into raw
 * key -> token text. Tolerant of whitespace, intolerant of nesting —
 * exactly what writeResultJson emits.
 */
bool
scanFlatObject(const std::string &text,
               std::map<std::string, std::string> &out)
{
    std::size_t i = 0;
    auto skipWs = [&] {
        while (i < text.size() && std::isspace(
                   static_cast<unsigned char>(text[i])))
            ++i;
    };
    auto parseString = [&](std::string &s) {
        if (i >= text.size() || text[i] != '"')
            return false;
        ++i;
        s.clear();
        while (i < text.size() && text[i] != '"') {
            if (text[i] == '\\' && i + 1 < text.size())
                ++i;
            s += text[i++];
        }
        if (i >= text.size())
            return false;
        ++i; // closing quote
        return true;
    };

    skipWs();
    if (i >= text.size() || text[i] != '{')
        return false;
    ++i;
    skipWs();
    if (i < text.size() && text[i] == '}')
        return true;
    while (true) {
        skipWs();
        std::string key;
        if (!parseString(key))
            return false;
        skipWs();
        if (i >= text.size() || text[i] != ':')
            return false;
        ++i;
        skipWs();
        std::string value;
        if (i < text.size() && text[i] == '"') {
            if (!parseString(value))
                return false;
        } else {
            std::size_t start = i;
            while (i < text.size() && text[i] != ',' && text[i] != '}')
                ++i;
            value = text.substr(start, i - start);
            while (!value.empty() && std::isspace(static_cast<
                       unsigned char>(value.back())))
                value.pop_back();
            if (value.empty())
                return false;
        }
        out[key] = value;
        skipWs();
        if (i >= text.size())
            return false;
        if (text[i] == '}')
            return true;
        if (text[i] != ',')
            return false;
        ++i;
    }
}

} // namespace

void
writeResultJson(std::ostream &os, const RunSpec &spec,
                const RunResult &result)
{
    auto str = [&](const char *key, const std::string &value) {
        os << "  \"" << key << "\": \"" << trace::jsonEscape(value)
           << "\",\n";
    };
    os << "{\n";
    str("schema", "tlsim-runresult-v1");
    str("spec", specKey(spec));
    str("model", modelVersionSalt);
    str("design", result.design);
    str("benchmark", result.benchmark);
    for (const auto &field : u64Fields)
        os << "  \"" << field.name << "\": " << result.*field.ptr
           << ",\n";
    for (const auto &field : optionalU64Fields)
        os << "  \"" << field.name << "\": " << result.*field.ptr
           << ",\n";
    std::ostringstream nums;
    nums.precision(std::numeric_limits<double>::max_digits10);
    bool first = true;
    for (const auto &field : doubleFields) {
        if (!first)
            nums << ",\n";
        first = false;
        nums << "  \"" << field.name << "\": " << result.*field.ptr;
    }
    for (const auto &field : optionalDoubleFields)
        nums << ",\n  \"" << field.name
             << "\": " << result.*field.ptr;
    os << nums.str() << "\n}\n";
}

std::optional<RunResult>
readResultJson(const std::string &text, const RunSpec &spec)
{
    std::map<std::string, std::string> raw;
    if (!scanFlatObject(text, raw))
        return std::nullopt;
    auto get = [&](const char *key) -> const std::string * {
        auto it = raw.find(key);
        return it == raw.end() ? nullptr : &it->second;
    };
    const std::string *schema = get("schema");
    const std::string *stored_spec = get("spec");
    const std::string *model = get("model");
    if (!schema || *schema != "tlsim-runresult-v1" || !stored_spec ||
        *stored_spec != specKey(spec) || !model ||
        *model != modelVersionSalt) {
        return std::nullopt;
    }

    RunResult result;
    const std::string *design = get("design");
    const std::string *benchmark = get("benchmark");
    if (!design || !benchmark)
        return std::nullopt;
    result.design = *design;
    result.benchmark = *benchmark;
    for (const auto &field : u64Fields) {
        const std::string *value = get(field.name);
        if (!value)
            return std::nullopt;
        result.*field.ptr = std::strtoull(value->c_str(), nullptr, 10);
    }
    for (const auto &field : doubleFields) {
        const std::string *value = get(field.name);
        if (!value)
            return std::nullopt;
        result.*field.ptr = std::strtod(value->c_str(), nullptr);
    }
    for (const auto &field : optionalU64Fields) {
        if (const std::string *value = get(field.name))
            result.*field.ptr =
                std::strtoull(value->c_str(), nullptr, 10);
    }
    for (const auto &field : optionalDoubleFields) {
        if (const std::string *value = get(field.name))
            result.*field.ptr = std::strtod(value->c_str(), nullptr);
    }
    return result;
}

ResultCache::ResultCache(std::string dir) : _dir(std::move(dir))
{
    std::error_code ec;
    std::filesystem::create_directories(_dir, ec);
    if (ec)
        fatal("cannot create result cache directory '{}': {}", _dir,
              ec.message());
}

std::string
ResultCache::filePath(const RunSpec &spec) const
{
    return _dir + "/" + cacheKey(spec) + ".json";
}

std::optional<RunResult>
ResultCache::load(const RunSpec &spec) const
{
    std::string path = filePath(spec);
    std::ifstream in(path);
    if (!in.is_open())
        return std::nullopt;
    std::ostringstream text;
    text << in.rdbuf();
    auto result = readResultJson(text.str(), spec);
    if (!result) {
        // Corrupt or truncated entry (interrupted writer, disk
        // trouble, stale schema): treat as a miss and discard it so
        // the re-run can store a clean replacement.
        warn("discarding corrupt result cache entry '{}'", path);
        std::error_code ec;
        std::filesystem::remove(path, ec);
    }
    return result;
}

void
ResultCache::store(const RunSpec &spec, const RunResult &result) const
{
    // Crash-safe commit: write to a per-process tmp name (so two
    // sweeps sharing the cache never clobber each other's tmp file),
    // fsync the data, rename over the final name, fsync the
    // directory. A kill or power cut at any instant leaves either the
    // old entry, the new entry, or a leftover tmp file that load()
    // and --fsck-cache ignore — never a torn visible entry.
    std::string final_path = filePath(spec);
    std::string tmp_path =
        final_path + ".tmp." + std::to_string(::getpid());
    std::ostringstream text;
    writeResultJson(text, spec, result);
    std::string blob = text.str();

    int fd = ::open(tmp_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC,
                    0644);
    if (fd < 0)
        fatal("cannot write result cache entry '{}': {}", tmp_path,
              std::strerror(errno));
    const char *data = blob.data();
    std::size_t left = blob.size();
    while (left > 0) {
        ssize_t n = ::write(fd, data, left);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            int err = errno;
            ::close(fd);
            fatal("cannot write result cache entry '{}': {}",
                  tmp_path, std::strerror(err));
        }
        data += n;
        left -= static_cast<std::size_t>(n);
    }
    if (::fsync(fd) != 0) {
        int err = errno;
        ::close(fd);
        fatal("cannot sync result cache entry '{}': {}", tmp_path,
              std::strerror(err));
    }
    ::close(fd);

    std::error_code ec;
    std::filesystem::rename(tmp_path, final_path, ec);
    if (ec)
        fatal("cannot commit result cache entry '{}': {}", final_path,
              ec.message());
    int dirfd = ::open(_dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (dirfd >= 0) {
        ::fsync(dirfd);
        ::close(dirfd);
    }
}

FsckReport
fsckCache(const std::string &dir)
{
    FsckReport report;
    std::error_code ec;
    if (!std::filesystem::is_directory(dir, ec)) {
        report.problems.push_back("not a directory: " + dir);
        return report;
    }

    std::string quarantine_dir = dir + "/quarantine";
    auto quarantine = [&](const std::filesystem::path &path,
                          const std::string &why) {
        std::error_code qec;
        std::filesystem::create_directories(quarantine_dir, qec);
        std::filesystem::rename(
            path, quarantine_dir + "/" + path.filename().string(),
            qec);
        if (qec) {
            report.problems.push_back(
                path.filename().string() + ": " + why +
                " (and quarantine failed: " + qec.message() + ")");
            return;
        }
        ++report.quarantined;
        report.problems.push_back(path.filename().string() + ": " +
                                  why);
    };

    std::vector<std::filesystem::path> entries;
    for (const auto &entry :
         std::filesystem::directory_iterator(dir, ec)) {
        if (!entry.is_regular_file())
            continue; // the quarantine subdir, mainly
        if (entry.path().extension() != ".json")
            continue; // leftover .tmp.<pid> files are not entries
        entries.push_back(entry.path());
    }
    std::sort(entries.begin(), entries.end());

    for (const auto &path : entries) {
        ++report.scanned;
        std::ifstream in(path);
        std::ostringstream text;
        text << in.rdbuf();

        std::map<std::string, std::string> raw;
        if (!scanFlatObject(text.str(), raw)) {
            quarantine(path, "unparseable JSON");
            continue;
        }
        auto get = [&](const char *key) -> const std::string * {
            auto it = raw.find(key);
            return it == raw.end() ? nullptr : &it->second;
        };
        const std::string *schema = get("schema");
        const std::string *spec = get("spec");
        const std::string *model = get("model");
        if (!schema || *schema != "tlsim-runresult-v1") {
            quarantine(path, "missing or unknown schema");
            continue;
        }
        if (!spec || !model) {
            quarantine(path, "missing spec/model identity");
            continue;
        }
        // The file name must be the content address of the entry's
        // own identity (its declared spec + salt, not the current
        // salt: old-model entries are stale-but-healthy, a mismatch
        // means the content does not belong to this slot).
        std::string want = cacheKeyForSpecKey(*spec, *model) + ".json";
        if (path.filename().string() != want) {
            quarantine(path, "key/content mismatch (expected '" +
                                 want + "')");
            continue;
        }
        bool fields_ok = true;
        for (const auto &field : u64Fields) {
            if (!get(field.name)) {
                fields_ok = false;
                break;
            }
        }
        if (fields_ok) {
            for (const auto &field : doubleFields) {
                if (!get(field.name)) {
                    fields_ok = false;
                    break;
                }
            }
        }
        if (!fields_ok || !get("design") || !get("benchmark")) {
            quarantine(path, "missing required result fields");
            continue;
        }
        ++report.valid;
    }
    return report;
}

} // namespace sweep
} // namespace harness
} // namespace tlsim
