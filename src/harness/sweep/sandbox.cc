#include "harness/sweep/sandbox.hh"

#include <poll.h>
#include <signal.h>
#include <sys/resource.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <vector>

#include "harness/sweep/resultcache.hh"
#include "harness/sweep/sweep.hh"
#include "sim/logging.hh"

namespace tlsim
{
namespace harness
{
namespace sweep
{

namespace
{

/** Wire magic for the child's result frame ("TLSB" v1). */
constexpr std::uint32_t frameMagic = 0x42534c54u;
constexpr std::uint32_t frameVersion = 1;

bool
writeAll(int fd, const void *data, std::size_t len)
{
    const char *p = static_cast<const char *>(data);
    while (len > 0) {
        ssize_t n = ::write(fd, p, len);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        p += n;
        len -= static_cast<std::size_t>(n);
    }
    return true;
}

void
writeBlob(int fd, const std::string &blob, bool &ok)
{
    std::uint64_t len = blob.size();
    ok = ok && writeAll(fd, &len, sizeof(len));
    ok = ok && writeAll(fd, blob.data(), blob.size());
}

/** Pull one length-prefixed blob out of the frame buffer. */
bool
readBlob(const std::string &buf, std::size_t &pos, std::string &out)
{
    std::uint64_t len = 0;
    if (pos + sizeof(len) > buf.size())
        return false;
    std::memcpy(&len, buf.data() + pos, sizeof(len));
    pos += sizeof(len);
    if (len > buf.size() - pos)
        return false;
    out.assign(buf.data() + pos, static_cast<std::size_t>(len));
    pos += static_cast<std::size_t>(len);
    return true;
}

/** First test hook whose value is a substring of @p key, if any. */
const char *
matchHook(const char *env, const std::string &key)
{
    const char *value = std::getenv(env);
    if (value && *value && key.find(value) != std::string::npos)
        return value;
    return nullptr;
}

/** Human-readable signal verdict, e.g. "signal 11 (Segmentation fault)". */
std::string
signalVerdict(int sig, const SandboxLimits &limits)
{
    std::ostringstream os;
    os << "signal " << sig << " (" << strsignal(sig) << ")";
    if (sig == SIGXCPU && limits.cpuSeconds > 0)
        os << "; cpu limit " << limits.cpuSeconds << "s exceeded";
    return os.str();
}

RunResult
failedResult(const RunSpec &spec, std::string error)
{
    RunResult result;
    result.design = spec.config.design;
    result.benchmark = spec.benchmark;
    result.error = std::move(error);
    return result;
}

/**
 * Child side: apply rlimits, honor test hooks, run the spec, marshal
 * the outcome, and _exit without running the parent's atexit chain.
 */
[[noreturn]] void
childMain(int out_fd, const RunSpec &spec, bool capture_stats,
          const SandboxLimits &limits)
{
    if (limits.cpuSeconds > 0) {
        struct rlimit rl;
        rl.rlim_cur = limits.cpuSeconds;
        rl.rlim_max = limits.cpuSeconds + 2; // SIGKILL backstop
        ::setrlimit(RLIMIT_CPU, &rl);
    }
    if (limits.rssMegabytes > 0) {
        struct rlimit rl;
        rl.rlim_cur = rl.rlim_max = limits.rssMegabytes << 20;
        ::setrlimit(RLIMIT_AS, &rl);
    }

    std::string key = specKey(spec);
    std::string stats;
    RunResult result;
    try {
        if (matchHook("TLSIM_TEST_CRASH_SPEC", key))
            ::raise(SIGSEGV);
        if (matchHook("TLSIM_TEST_KILL_SWEEP_SPEC", key)) {
            ::kill(::getppid(), SIGKILL);
            ::_exit(1);
        }
        if (matchHook("TLSIM_TEST_HANG_SPEC", key)) {
            volatile std::uint64_t spin = 0;
            for (;;)
                spin = spin + 1;
        }
        if (matchHook("TLSIM_TEST_OOM_SPEC", key)) {
            std::vector<char *> hog;
            for (;;) {
                char *chunk = new char[16u << 20];
                std::memset(chunk, 1, 16u << 20);
                hog.push_back(chunk);
            }
        }
        result = detail::executeSpec(spec, capture_stats, stats,
                                     /*run_timeout_sec=*/0.0);
    } catch (const std::bad_alloc &) {
        std::ostringstream os;
        if (limits.rssMegabytes > 0)
            os << "rss limit " << limits.rssMegabytes
               << " MiB exceeded (std::bad_alloc)";
        else
            os << "out of memory (std::bad_alloc)";
        result = failedResult(spec, os.str());
        stats.clear();
    } catch (const std::exception &e) {
        result = failedResult(spec, e.what());
        stats.clear();
    } catch (...) {
        result = failedResult(spec, "unknown error");
        stats.clear();
    }

    std::string result_json;
    if (result.error.empty()) {
        std::ostringstream os;
        writeResultJson(os, spec, result);
        result_json = os.str();
    }

    bool ok = true;
    ok = ok && writeAll(out_fd, &frameMagic, sizeof(frameMagic));
    ok = ok && writeAll(out_fd, &frameVersion, sizeof(frameVersion));
    writeBlob(out_fd, result_json, ok);
    writeBlob(out_fd, result.error, ok);
    writeBlob(out_fd, stats, ok);
    ::close(out_fd);
    ::_exit(ok ? 0 : 3);
}

} // namespace

RunResult
runSandboxed(const RunSpec &spec, bool capture_stats,
             std::string &stats_json, const SandboxLimits &limits,
             bool *crashed)
{
    using clock = std::chrono::steady_clock;
    stats_json.clear();
    if (crashed)
        *crashed = false;

    int fds[2];
    if (::pipe(fds) != 0)
        return failedResult(
            spec, csprintf("sandbox: pipe failed: {}",
                           std::strerror(errno)));

    pid_t pid = ::fork();
    if (pid < 0) {
        ::close(fds[0]);
        ::close(fds[1]);
        return failedResult(
            spec, csprintf("sandbox: fork failed: {}",
                           std::strerror(errno)));
    }
    if (pid == 0) {
        ::close(fds[0]);
        childMain(fds[1], spec, capture_stats, limits);
    }
    ::close(fds[1]);

    auto deadline = clock::now();
    bool hasDeadline = limits.wallTimeoutSec > 0.0;
    if (hasDeadline)
        deadline += std::chrono::microseconds(static_cast<long long>(
            limits.wallTimeoutSec * 1e6));

    std::string frame;
    bool timedOut = false;
    char buf[65536];
    for (;;) {
        int timeout_ms = -1;
        if (hasDeadline) {
            auto left =
                std::chrono::duration_cast<std::chrono::milliseconds>(
                    deadline - clock::now())
                    .count();
            if (left <= 0) {
                timedOut = true;
                break;
            }
            timeout_ms = static_cast<int>(left);
        }
        struct pollfd pfd = {fds[0], POLLIN, 0};
        int ready = ::poll(&pfd, 1, timeout_ms);
        if (ready < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        if (ready == 0) {
            timedOut = true;
            break;
        }
        ssize_t n = ::read(fds[0], buf, sizeof(buf));
        if (n < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        if (n == 0)
            break; // child closed its end
        frame.append(buf, static_cast<std::size_t>(n));
    }
    ::close(fds[0]);

    if (timedOut) {
        ::kill(pid, SIGKILL);
        int status = 0;
        ::waitpid(pid, &status, 0);
        if (crashed)
            *crashed = true;
        std::ostringstream os;
        os << "timeout after " << limits.wallTimeoutSec
           << "s (wall clock)";
        return failedResult(spec, os.str());
    }

    int status = 0;
    ::waitpid(pid, &status, 0);

    // A complete frame from a zero-exit child is the success path;
    // everything else is a verdict on how the child died.
    std::uint32_t magic = 0, version = 0;
    std::size_t pos = 0;
    std::string result_json, child_error, stats;
    bool frameOk =
        frame.size() >= sizeof(magic) + sizeof(version) &&
        (std::memcpy(&magic, frame.data(), sizeof(magic)), true) &&
        (std::memcpy(&version, frame.data() + sizeof(magic),
                     sizeof(version)),
         true) &&
        magic == frameMagic && version == frameVersion &&
        (pos = sizeof(magic) + sizeof(version),
         readBlob(frame, pos, result_json)) &&
        readBlob(frame, pos, child_error) &&
        readBlob(frame, pos, stats);

    if (WIFSIGNALED(status)) {
        if (crashed)
            *crashed = true;
        return failedResult(spec,
                            signalVerdict(WTERMSIG(status), limits));
    }
    if (!frameOk || !WIFEXITED(status) || WEXITSTATUS(status) != 0) {
        if (crashed)
            *crashed = true;
        return failedResult(
            spec,
            csprintf("sandbox: child exited with status {} without a "
                     "complete result",
                     WIFEXITED(status) ? WEXITSTATUS(status) : -1));
    }
    if (!child_error.empty())
        return failedResult(spec, child_error);

    auto parsed = readResultJson(result_json, spec);
    if (!parsed) {
        if (crashed)
            *crashed = true;
        return failedResult(spec,
                            "sandbox: malformed result from child");
    }
    if (capture_stats)
        stats_json = std::move(stats);
    return std::move(*parsed);
}

} // namespace sweep
} // namespace harness
} // namespace tlsim
