#include "harness/sweep/sweep.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <iostream>
#include <mutex>
#include <optional>
#include <sstream>
#include <thread>

#include "phys/technology.hh"
#include "workload/profile.hh"

namespace tlsim
{
namespace harness
{
namespace sweep
{

namespace
{

/** Execute one spec to completion (simulation only, no cache). */
RunResult
executeSpec(const RunSpec &spec, bool capture_stats,
            std::string &stats_json)
{
    const auto &profile = workload::profileByName(spec.benchmark);
    std::ostringstream stats;
    RunObserver observer;
    observer.onMeasureEnd = [&](System &sys) {
        if (capture_stats) {
            sys.root().dumpStatsJson(stats);
            stats << '\n';
        }
    };
    RunResult result =
        runBenchmark(spec.config, profile, traceSeed(spec), &observer);
    stats_json = stats.str();
    return result;
}

} // namespace

void
addUnique(std::vector<RunSpec> &specs, const RunSpec &spec)
{
    if (std::find(specs.begin(), specs.end(), spec) == specs.end())
        specs.push_back(spec);
}

SweepOutcome
runSweep(const std::vector<RunSpec> &specs, const SweepOptions &options)
{
    SweepOutcome outcome;
    outcome.results.resize(specs.size());
    outcome.statsJson.resize(specs.size());

    std::optional<ResultCache> cache;
    if (!options.cacheDir.empty())
        cache.emplace(options.cacheDir);

    // Resolve warm entries up front, single-threaded: a fully warm
    // sweep touches no worker machinery and executes 0 simulations.
    std::vector<std::size_t> misses;
    for (std::size_t i = 0; i < specs.size(); ++i) {
        if (cache) {
            if (auto hit = cache->load(specs[i])) {
                outcome.results[i] = std::move(*hit);
                ++outcome.cached;
                continue;
            }
        }
        misses.push_back(i);
    }

    if (misses.empty())
        return outcome;

    // Touch lazily-initialized shared tables before spawning workers
    // so no simulation constructs them concurrently.
    phys::tech45();
    workload::paperBenchmarks();

    int jobs = std::max(1, options.jobs);
    std::size_t workers =
        std::min<std::size_t>(static_cast<std::size_t>(jobs),
                              misses.size());

    std::atomic<std::size_t> next{0};
    std::mutex io_mutex; // guards progress output and cache stores
    std::atomic<std::size_t> done{0};

    auto worker = [&] {
        while (true) {
            std::size_t slot = next.fetch_add(1);
            if (slot >= misses.size())
                return;
            std::size_t i = misses[slot];
            const RunSpec &spec = specs[i];
            auto start = std::chrono::steady_clock::now();
            if (options.verbose) {
                std::lock_guard<std::mutex> lock(io_mutex);
                std::cerr << "  [" << done.load() + outcome.cached
                          << "/" << specs.size() << "] running "
                          << specKey(spec) << "..." << std::endl;
            }
            RunResult result = executeSpec(spec, options.captureStats,
                                           outcome.statsJson[i]);
            auto elapsed =
                std::chrono::duration_cast<std::chrono::milliseconds>(
                    std::chrono::steady_clock::now() - start);
            std::lock_guard<std::mutex> lock(io_mutex);
            if (cache)
                cache->store(spec, result);
            outcome.results[i] = std::move(result);
            ++done;
            if (options.verbose) {
                std::cerr << "  [" << done.load() + outcome.cached
                          << "/" << specs.size() << "] finished "
                          << specKey(spec) << " ("
                          << elapsed.count() / 1000.0 << " s)"
                          << std::endl;
            }
        }
    };

    if (workers <= 1) {
        worker();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(workers);
        for (std::size_t w = 0; w < workers; ++w)
            pool.emplace_back(worker);
        for (auto &thread : pool)
            thread.join();
    }

    outcome.executed = misses.size();
    return outcome;
}

std::string
mergedStatsJson(const std::vector<RunSpec> &specs,
                const SweepOutcome &outcome)
{
    std::ostringstream os;
    os << "{\n";
    for (std::size_t i = 0; i < specs.size(); ++i) {
        os << "\"" << specKey(specs[i]) << "\": ";
        const std::string &doc = outcome.statsJson[i];
        if (doc.empty()) {
            os << "null";
        } else {
            // Documents end with '\n'; strip it so separators are
            // uniform regardless of the emitter.
            std::string trimmed = doc;
            while (!trimmed.empty() && trimmed.back() == '\n')
                trimmed.pop_back();
            os << trimmed;
        }
        os << (i + 1 < specs.size() ? ",\n" : "\n");
    }
    os << "}\n";
    return os.str();
}

} // namespace sweep
} // namespace harness
} // namespace tlsim
