#include "harness/sweep/sweep.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <iostream>
#include <mutex>
#include <optional>
#include <sstream>
#include <thread>

#include "phys/technology.hh"
#include "workload/profile.hh"

namespace tlsim
{
namespace harness
{
namespace sweep
{

namespace
{

/** Execute one spec to completion (simulation only, no cache). */
RunResult
executeSpec(const RunSpec &spec, bool capture_stats,
            std::string &stats_json)
{
    const auto &profile = workload::profileByName(spec.benchmark);
    std::ostringstream stats;
    RunObserver observer;
    observer.onMeasureEnd = [&](System &sys) {
        if (capture_stats) {
            sys.root().dumpStatsJson(stats);
            stats << '\n';
        }
    };
    RunResult result =
        runBenchmark(spec.config, profile, traceSeed(spec), &observer);
    stats_json = stats.str();
    return result;
}

/**
 * Crash-isolated wrapper: a panic or exception escaping one run is
 * captured into the result's error field instead of tearing down the
 * whole sweep (and the other workers' finished runs with it).
 */
RunResult
executeSpecIsolated(const RunSpec &spec, bool capture_stats,
                    std::string &stats_json)
{
    try {
        return executeSpec(spec, capture_stats, stats_json);
    } catch (const std::exception &e) {
        RunResult failed;
        failed.design = spec.config.design;
        failed.benchmark = spec.benchmark;
        failed.error = e.what();
        stats_json.clear(); // partial stats are meaningless
        return failed;
    } catch (...) {
        RunResult failed;
        failed.design = spec.config.design;
        failed.benchmark = spec.benchmark;
        failed.error = "unknown error";
        stats_json.clear();
        return failed;
    }
}

} // namespace

void
addUnique(std::vector<RunSpec> &specs, const RunSpec &spec)
{
    if (std::find(specs.begin(), specs.end(), spec) == specs.end())
        specs.push_back(spec);
}

SweepOutcome
runSweep(const std::vector<RunSpec> &specs, const SweepOptions &options)
{
    SweepOutcome outcome;
    outcome.results.resize(specs.size());
    outcome.statsJson.resize(specs.size());

    std::optional<ResultCache> cache;
    if (!options.cacheDir.empty())
        cache.emplace(options.cacheDir);

    // Resolve warm entries up front, single-threaded: a fully warm
    // sweep touches no worker machinery and executes 0 simulations.
    std::vector<std::size_t> misses;
    for (std::size_t i = 0; i < specs.size(); ++i) {
        if (cache) {
            if (auto hit = cache->load(specs[i])) {
                outcome.results[i] = std::move(*hit);
                ++outcome.cached;
                continue;
            }
        }
        misses.push_back(i);
    }

    if (misses.empty())
        return outcome;

    // Touch lazily-initialized shared tables before spawning workers
    // so no simulation constructs them concurrently.
    phys::tech45();
    workload::paperBenchmarks();

    int jobs = std::max(1, options.jobs);
    std::size_t workers =
        std::min<std::size_t>(static_cast<std::size_t>(jobs),
                              misses.size());

    std::atomic<std::size_t> next{0};
    std::mutex io_mutex; // guards progress output and cache stores
    std::atomic<std::size_t> done{0};
    std::atomic<std::size_t> failures{0};

    auto worker = [&] {
        while (true) {
            std::size_t slot = next.fetch_add(1);
            if (slot >= misses.size())
                return;
            std::size_t i = misses[slot];
            const RunSpec &spec = specs[i];
            auto start = std::chrono::steady_clock::now();
            if (options.verbose) {
                std::lock_guard<std::mutex> lock(io_mutex);
                std::cerr << "  [" << done.load() + outcome.cached
                          << "/" << specs.size() << "] running "
                          << specKey(spec) << "..." << std::endl;
            }
            RunResult result = executeSpecIsolated(
                spec, options.captureStats, outcome.statsJson[i]);
            auto elapsed =
                std::chrono::duration_cast<std::chrono::milliseconds>(
                    std::chrono::steady_clock::now() - start);
            std::lock_guard<std::mutex> lock(io_mutex);
            // Only successes are memoized: a cached failure would
            // poison every later sweep with a stale crash.
            if (cache && result.error.empty())
                cache->store(spec, result);
            if (!result.error.empty())
                ++failures;
            bool failed_run = !result.error.empty();
            std::string error_text = result.error;
            outcome.results[i] = std::move(result);
            ++done;
            if (options.verbose) {
                std::cerr << "  [" << done.load() + outcome.cached
                          << "/" << specs.size() << "] "
                          << (failed_run ? "FAILED " : "finished ")
                          << specKey(spec) << " ("
                          << elapsed.count() / 1000.0 << " s)";
                if (failed_run)
                    std::cerr << ": " << error_text;
                std::cerr << std::endl;
            }
        }
    };

    if (workers <= 1) {
        worker();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(workers);
        for (std::size_t w = 0; w < workers; ++w)
            pool.emplace_back(worker);
        for (auto &thread : pool)
            thread.join();
    }

    outcome.executed = misses.size();
    outcome.failed = failures.load();
    return outcome;
}

std::string
mergedStatsJson(const std::vector<RunSpec> &specs,
                const SweepOutcome &outcome)
{
    std::ostringstream os;
    os << "{\n";
    for (std::size_t i = 0; i < specs.size(); ++i) {
        os << "\"" << specKey(specs[i]) << "\": ";
        const std::string &doc = outcome.statsJson[i];
        if (doc.empty()) {
            os << "null";
        } else {
            // Documents end with '\n'; strip it so separators are
            // uniform regardless of the emitter.
            std::string trimmed = doc;
            while (!trimmed.empty() && trimmed.back() == '\n')
                trimmed.pop_back();
            os << trimmed;
        }
        os << (i + 1 < specs.size() ? ",\n" : "\n");
    }
    os << "}\n";
    return os.str();
}

} // namespace sweep
} // namespace harness
} // namespace tlsim
