#include "harness/sweep/sweep.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <iostream>
#include <mutex>
#include <optional>
#include <sstream>
#include <thread>

#include "harness/sweep/journal.hh"
#include "harness/sweep/sandbox.hh"
#include "phys/technology.hh"
#include "sim/logging.hh"
#include "sim/metrics/metrics.hh"
#include "sim/trace/tracesink.hh"
#include "workload/profile.hh"

namespace tlsim
{
namespace harness
{
namespace sweep
{

namespace detail
{

/** Execute one spec to completion (simulation only, no cache). */
RunResult
executeSpec(const RunSpec &spec, bool capture_stats,
            std::string &stats_json, double run_timeout_sec)
{
    const auto &profile = workload::profileByName(spec.benchmark);
    std::ostringstream stats;
    RunObserver observer;
    if (run_timeout_sec > 0.0) {
        observer.onSystemBuilt = [run_timeout_sec](System &sys) {
            sys.armRunTimeout(run_timeout_sec);
        };
    }
    observer.onMeasureEnd = [&](System &sys) {
        if (capture_stats) {
            sys.root().dumpStatsJson(stats);
            stats << '\n';
        }
    };
    RunResult result =
        runBenchmark(spec.config, profile, traceSeed(spec), &observer);
    stats_json = stats.str();
    return result;
}

} // namespace detail

namespace
{

/**
 * Crash-isolated wrapper: a panic or exception escaping one run is
 * captured into the result's error field instead of tearing down the
 * whole sweep (and the other workers' finished runs with it).
 */
RunResult
executeSpecIsolated(const RunSpec &spec, bool capture_stats,
                    std::string &stats_json, double run_timeout_sec)
{
    try {
        return detail::executeSpec(spec, capture_stats, stats_json,
                                   run_timeout_sec);
    } catch (const std::exception &e) {
        RunResult failed;
        failed.design = spec.config.design;
        failed.benchmark = spec.benchmark;
        failed.error = e.what();
        stats_json.clear(); // partial stats are meaningless
        return failed;
    } catch (...) {
        RunResult failed;
        failed.design = spec.config.design;
        failed.benchmark = spec.benchmark;
        failed.error = "unknown error";
        stats_json.clear();
        return failed;
    }
}

/**
 * Fleet metrics of one sweep: a local Registry (not process-global,
 * so concurrent sweeps and tests stay isolated) plus the run ledger.
 * All mutation happens under the sweep's io_mutex.
 */
class FleetTelemetry
{
  public:
    FleetTelemetry(const SweepOptions &options, std::size_t total)
        : metricsPath(options.metricsOut),
          runsCached(registry.counter(
              "tlsim_sweep_runs_total{result=\"cached\"}",
              "Sweep runs by final result")),
          runsExecuted(registry.counter(
              "tlsim_sweep_runs_total{result=\"executed\"}",
              "Sweep runs by final result")),
          runsFailed(registry.counter(
              "tlsim_sweep_runs_total{result=\"failed\"}",
              "Sweep runs by final result")),
          runsRestored(registry.counter(
              "tlsim_sweep_runs_total{result=\"restored\"}",
              "Sweep runs by final result")),
          specsTotal(registry.gauge("tlsim_sweep_specs",
                                    "Specs in the current sweep")),
          specsDone(registry.gauge("tlsim_sweep_done",
                                   "Specs resolved so far")),
          linkRetries(registry.counter(
              "tlsim_sweep_link_retries_total",
              "Link-level CRC retries across executed runs")),
          degraded(registry.counter(
              "tlsim_sweep_degraded_requests_total",
              "Requests served on a degraded path across executed "
              "runs")),
          wallMs(registry.histogram(
              "tlsim_sweep_run_wall_milliseconds",
              "Wall-clock time of executed runs"))
    {
        specsTotal.set(static_cast<double>(total));
        if (!options.manifestOut.empty() &&
            !manifest.open(options.manifestOut, /*append=*/false)) {
            warn("cannot write sweep manifest '{}'",
                 options.manifestOut);
        }
    }

    /** Record one resolved spec; @p result may be null for cache hits. */
    void
    record(const RunSpec &spec, const char *outcome, double wall_ms,
           const RunResult *result)
    {
        if (std::string{outcome} == "cached") {
            runsCached.inc();
        } else if (std::string{outcome} == "restored") {
            runsRestored.inc();
        } else if (result && !result->error.empty()) {
            runsFailed.inc();
        } else {
            runsExecuted.inc();
        }
        specsDone.add(1.0);
        if (result) {
            linkRetries.inc(
                static_cast<std::uint64_t>(result->linkRetries));
            degraded.inc(static_cast<std::uint64_t>(
                result->degradedRequests));
        }
        if (wall_ms >= 0.0)
            wallMs.observe(static_cast<std::uint64_t>(wall_ms));

        if (manifest.ok()) {
            // Each record is one write(2) + fsync (DurableLineFile):
            // a killed sweep never leaves a truncated final record.
            std::ostringstream line;
            line << "{\"schema\": \"tlsim-manifest-v1\", "
                 << "\"spec\": \""
                 << trace::jsonEscape(specKey(spec))
                 << "\", \"benchmark\": \""
                 << trace::jsonEscape(spec.benchmark)
                 << "\", \"design\": \""
                 << trace::jsonEscape(spec.config.design)
                 << "\", \"outcome\": \"" << outcome
                 << "\", \"wall_ms\": "
                 << (wall_ms >= 0.0 ? wall_ms : 0.0)
                 << ", \"retries\": "
                 << (result ? result->linkRetries : 0.0)
                 << ", \"timeouts\": "
                 << (result ? result->linkTimeouts : 0.0)
                 << ", \"degraded\": "
                 << (result ? result->degradedRequests : 0.0);
            if (result && !result->error.empty()) {
                line << ", \"error\": \""
                     << trace::jsonEscape(result->error) << "\"";
            }
            line << "}";
            manifest.writeLine(line.str());
        }
        publish();
    }

    /** Rewrite the Prometheus snapshot (atomic tmp+rename). */
    void
    publish()
    {
        if (metricsPath.empty())
            return;
        if (!registry.writePrometheusFile(metricsPath) &&
            !warnedWrite) {
            warnedWrite = true;
            warn("cannot write sweep metrics '{}'", metricsPath);
        }
    }

  private:
    metrics::Registry registry;
    std::string metricsPath;
    journal::DurableLineFile manifest;
    bool warnedWrite = false;

    metrics::Counter &runsCached;
    metrics::Counter &runsExecuted;
    metrics::Counter &runsFailed;
    metrics::Counter &runsRestored;
    metrics::Gauge &specsTotal;
    metrics::Gauge &specsDone;
    metrics::Counter &linkRetries;
    metrics::Counter &degraded;
    metrics::LogHistogram &wallMs;
};

/** Single-line progress/ETA display ("--progress"). */
class ProgressLine
{
  public:
    explicit ProgressLine(std::size_t total_) : total(total_) {}

    void
    update(std::size_t done, std::size_t cached, std::size_t failed,
           double total_exec_ms, std::size_t executed,
           std::size_t workers)
    {
        double eta_s = 0.0;
        if (executed > 0 && done < total) {
            double avg_ms = total_exec_ms /
                            static_cast<double>(executed);
            std::size_t remaining = total - done;
            eta_s = avg_ms * static_cast<double>(remaining) /
                    (1000.0 *
                     static_cast<double>(std::max<std::size_t>(
                         1, workers)));
        }
        std::ostringstream line;
        line << "\r  sweep " << done << "/" << total << " (cached "
             << cached << ", failed " << failed << ")";
        if (done < total) {
            line << " ETA ~" << static_cast<std::uint64_t>(eta_s + 0.5)
                 << "s";
        }
        line << "   ";
        std::cerr << line.str() << std::flush;
        active = true;
    }

    void
    finish()
    {
        if (active)
            std::cerr << '\n';
        active = false;
    }

  private:
    std::size_t total;
    bool active = false;
};

/**
 * Stop flag shared with the SIGINT/SIGTERM handler. Only armed while
 * a journaled sweep is running (SignalGuard); an unjournaled sweep
 * keeps the default die-on-signal behavior.
 */
std::atomic<int> stopSignal{0};

extern "C" void
sweepStopHandler(int sig)
{
    stopSignal.store(sig, std::memory_order_relaxed);
}

/**
 * Scoped SIGINT/SIGTERM trap: workers observing stopSignal finish
 * their in-flight run (journaling its outcome) and stop claiming new
 * ones, so an interrupted journal is a clean resumable prefix.
 */
class SignalGuard
{
  public:
    SignalGuard()
    {
        stopSignal.store(0, std::memory_order_relaxed);
        struct sigaction sa = {};
        sa.sa_handler = sweepStopHandler;
        sigemptyset(&sa.sa_mask);
        ::sigaction(SIGINT, &sa, &prevInt);
        ::sigaction(SIGTERM, &sa, &prevTerm);
    }

    ~SignalGuard()
    {
        ::sigaction(SIGINT, &prevInt, nullptr);
        ::sigaction(SIGTERM, &prevTerm, nullptr);
    }

    int signalled() const
    {
        return stopSignal.load(std::memory_order_relaxed);
    }

  private:
    struct sigaction prevInt;
    struct sigaction prevTerm;
};

} // namespace

void
addUnique(std::vector<RunSpec> &specs, const RunSpec &spec)
{
    if (std::find(specs.begin(), specs.end(), spec) == specs.end())
        specs.push_back(spec);
}

SweepOutcome
runSweep(const std::vector<RunSpec> &specs, const SweepOptions &options)
{
    SweepOutcome outcome;
    outcome.results.resize(specs.size());
    outcome.statsJson.resize(specs.size());

    std::optional<ResultCache> cache;
    if (!options.cacheDir.empty())
        cache.emplace(options.cacheDir);

    std::optional<FleetTelemetry> telemetry;
    if (!options.metricsOut.empty() || !options.manifestOut.empty())
        telemetry.emplace(options, specs.size());
    std::optional<ProgressLine> progress;
    if (options.progress)
        progress.emplace(specs.size());

    // Journal setup. A resume first replays the existing journal and
    // revalidates its identity; restored runs then take precedence
    // over both the cache and execution below.
    journal::ResumeState resumeState;
    std::optional<journal::Writer> jw;
    if (!options.journalPath.empty() && options.resume) {
        resumeState =
            journal::loadForResume(options.journalPath, specs);
        if (!resumeState.ok) {
            fatal("cannot resume from journal '{}': {}",
                  options.journalPath, resumeState.error);
        }
        jw.emplace(options.journalPath, /*append=*/true);
        jw->resumed(resumeState.restored,
                    resumeState.inFlight +
                        resumeState.requeuedFailures);
        if (options.verbose) {
            std::cerr << "  resume: restored " << resumeState.restored
                      << "/" << specs.size() << " runs ("
                      << resumeState.inFlight << " in-flight and "
                      << resumeState.requeuedFailures
                      << " failed re-queued)" << std::endl;
        }
    } else if (!options.journalPath.empty()) {
        jw.emplace(options.journalPath, /*append=*/false);
        jw->writeHeader(specs);
    }

    // Resolve non-executing slots up front, single-threaded, in the
    // precedence order journal-restored > cache hit > miss queue. A
    // fully warm or fully restored sweep executes 0 simulations.
    std::vector<std::size_t> misses;
    for (std::size_t i = 0; i < specs.size(); ++i) {
        if (i < resumeState.runs.size() && resumeState.runs[i]) {
            journal::RestoredRun &run = *resumeState.runs[i];
            outcome.results[i] = std::move(run.result);
            outcome.statsJson[i] = std::move(run.stats);
            ++outcome.restored;
            if (telemetry)
                telemetry->record(specs[i], "restored", -1.0,
                                  nullptr);
            continue;
        }
        if (cache) {
            if (auto hit = cache->load(specs[i])) {
                outcome.results[i] = std::move(*hit);
                ++outcome.cached;
                if (jw) {
                    std::ostringstream os;
                    writeResultJson(os, specs[i],
                                    outcome.results[i]);
                    jw->done(specKey(specs[i]), "cached", os.str(),
                             "");
                }
                if (telemetry)
                    telemetry->record(specs[i], "cached", -1.0,
                                      nullptr);
                continue;
            }
        }
        misses.push_back(i);
    }

    if (misses.empty()) {
        if (jw)
            jw->complete(0, outcome.cached, 0);
        if (progress) {
            progress->update(specs.size(), outcome.cached, 0, 0.0, 0,
                            1);
            progress->finish();
        }
        return outcome;
    }

    // Touch lazily-initialized shared tables before spawning workers
    // so no simulation constructs them concurrently.
    phys::tech45();
    workload::paperBenchmarks();

    int jobs = std::max(1, options.jobs);
    std::size_t workers =
        std::min<std::size_t>(static_cast<std::size_t>(jobs),
                              misses.size());

    // Only a journaled sweep traps signals: without a journal there
    // is nothing resumable to protect, so ^C keeps its usual bite.
    std::optional<SignalGuard> guard;
    if (jw)
        guard.emplace();

    std::atomic<std::size_t> next{0};
    std::mutex io_mutex; // guards journal/cache/telemetry/progress IO
    std::atomic<std::size_t> done{0};
    std::atomic<std::size_t> failures{0};
    double executedWallMs = 0.0; // under io_mutex
    std::size_t resolvedBase = outcome.cached + outcome.restored;

    auto worker = [&] {
        while (true) {
            // Drain on SIGINT/SIGTERM: finish (and journal) the run
            // in hand, claim no new ones.
            if (guard && guard->signalled())
                return;
            std::size_t slot = next.fetch_add(1);
            if (slot >= misses.size())
                return;
            std::size_t i = misses[slot];
            const RunSpec &spec = specs[i];
            auto start = std::chrono::steady_clock::now();
            if (options.verbose) {
                std::lock_guard<std::mutex> lock(io_mutex);
                std::cerr << "  [" << done.load() + resolvedBase
                          << "/" << specs.size() << "] running "
                          << specKey(spec) << "..." << std::endl;
            }
            if (jw) {
                std::lock_guard<std::mutex> lock(io_mutex);
                jw->started(specKey(spec));
            }
            bool crashed = false;
            RunResult result;
            switch (options.isolate) {
              case Isolation::None:
                result = detail::executeSpec(spec,
                                             options.captureStats,
                                             outcome.statsJson[i],
                                             options.runTimeoutSec);
                break;
              case Isolation::Thread:
                result = executeSpecIsolated(spec,
                                             options.captureStats,
                                             outcome.statsJson[i],
                                             options.runTimeoutSec);
                break;
              case Isolation::Process: {
                SandboxLimits limits;
                limits.wallTimeoutSec = options.runTimeoutSec;
                limits.cpuSeconds = options.rlimitCpuSec;
                limits.rssMegabytes = options.rlimitRssMb;
                result = runSandboxed(spec, options.captureStats,
                                      outcome.statsJson[i], limits,
                                      &crashed);
                break;
              }
            }
            auto elapsed =
                std::chrono::duration_cast<std::chrono::milliseconds>(
                    std::chrono::steady_clock::now() - start);
            std::lock_guard<std::mutex> lock(io_mutex);
            // Only successes are memoized: a cached failure would
            // poison every later sweep with a stale crash.
            if (cache && result.error.empty())
                cache->store(spec, result);
            if (!result.error.empty())
                ++failures;
            bool failed_run = !result.error.empty();
            std::string error_text = result.error;
            if (jw) {
                if (failed_run) {
                    jw->failed(specKey(spec), error_text, crashed);
                } else {
                    std::ostringstream os;
                    writeResultJson(os, spec, result);
                    jw->done(specKey(spec), "executed", os.str(),
                             outcome.statsJson[i]);
                }
            }
            double wall_ms = static_cast<double>(elapsed.count());
            executedWallMs += wall_ms;
            if (telemetry) {
                telemetry->record(spec,
                                  failed_run ? "failed" : "executed",
                                  wall_ms, &result);
            }
            outcome.results[i] = std::move(result);
            ++done;
            if (options.verbose) {
                std::cerr << "  [" << done.load() + resolvedBase
                          << "/" << specs.size() << "] "
                          << (failed_run ? "FAILED " : "finished ")
                          << specKey(spec) << " ("
                          << elapsed.count() / 1000.0 << " s)";
                if (failed_run)
                    std::cerr << ": " << error_text;
                std::cerr << std::endl;
            }
            if (progress) {
                progress->update(done.load() + resolvedBase,
                                 outcome.cached, failures.load(),
                                 executedWallMs, done.load(), workers);
            }
        }
    };

    if (workers <= 1) {
        worker();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(workers);
        for (std::size_t w = 0; w < workers; ++w)
            pool.emplace_back(worker);
        for (auto &thread : pool)
            thread.join();
    }

    if (progress)
        progress->finish();
    if (telemetry)
        telemetry->publish();

    outcome.executed = done.load();
    outcome.failed = failures.load();
    outcome.interrupted = guard && guard->signalled() != 0;
    if (jw) {
        if (outcome.interrupted) {
            std::size_t resolved = resolvedBase + done.load();
            jw->interrupted(
                guard->signalled() == SIGINT ? "SIGINT" : "SIGTERM",
                resolved, specs.size() - resolved);
        } else {
            jw->complete(done.load(), outcome.cached,
                         failures.load());
        }
    }
    return outcome;
}

std::string
mergedStatsJson(const std::vector<RunSpec> &specs,
                const SweepOutcome &outcome)
{
    std::ostringstream os;
    os << "{\n";
    for (std::size_t i = 0; i < specs.size(); ++i) {
        os << "\"" << specKey(specs[i]) << "\": ";
        const std::string &doc = outcome.statsJson[i];
        if (doc.empty()) {
            os << "null";
        } else {
            // Documents end with '\n'; strip it so separators are
            // uniform regardless of the emitter.
            std::string trimmed = doc;
            while (!trimmed.empty() && trimmed.back() == '\n')
                trimmed.pop_back();
            os << trimmed;
        }
        os << (i + 1 < specs.size() ? ",\n" : "\n");
    }
    os << "}\n";
    return os.str();
}

} // namespace sweep
} // namespace harness
} // namespace tlsim
