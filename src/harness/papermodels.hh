/**
 * @file
 * Physical-design roll-ups for the paper's Table 7 (substrate area)
 * and Table 8 (communication-network circuit totals), derived from
 * the phys/cacti component models.
 */

#ifndef TLSIM_HARNESS_PAPERMODELS_HH
#define TLSIM_HARNESS_PAPERMODELS_HH

#include "phys/technology.hh"

namespace tlsim
{
namespace harness
{

/** Substrate area breakdown of one cache design [m^2] (Table 7). */
struct AreaBreakdown
{
    double storage = 0.0;
    double channel = 0.0;
    double controller = 0.0;

    double total() const { return storage + channel + controller; }
};

/** Communication-network circuit totals (Table 8). */
struct CircuitTotals
{
    long transistors = 0;
    double gateWidthLambda = 0.0;
};

/** Area breakdown of the DNUCA design (256 x 64 KB over a mesh). */
AreaBreakdown dnucaArea(const phys::Technology &tech);

/** Area breakdown of the base TLC design (32 x 512 KB over lines). */
AreaBreakdown tlcArea(const phys::Technology &tech);

/** Circuit totals of the DNUCA mesh (switches + repeated links). */
CircuitTotals dnucaNetworkCircuit(const phys::Technology &tech);

/** Circuit totals of the base TLC line interface. */
CircuitTotals tlcNetworkCircuit(const phys::Technology &tech);

} // namespace harness
} // namespace tlsim

#endif // TLSIM_HARNESS_PAPERMODELS_HH
