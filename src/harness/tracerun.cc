#include "harness/tracerun.hh"

#include <chrono>
#include <cmath>
#include <optional>
#include <sstream>

#include "harness/checkpoint.hh"
#include "sim/logging.hh"

namespace tlsim
{
namespace harness
{

namespace
{

double
wallMsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start)
        .count();
}

/**
 * Replay records functionally until the cursor reaches
 * @p until_record, mirroring System::functionalWarm's access pattern
 * but bounded by record count: interval entries are exact record
 * boundaries, and positioning by records (not instructions) keeps
 * zero-instruction ifetch records from desynchronizing the cursor.
 */
void
warmToRecord(System &system, workload::TraceFileSource &source,
             std::uint64_t until_record)
{
    while (source.recordIndex() < until_record) {
        cpu::TraceRecord record = source.next();
        if (record.isIFetch) {
            system.l1i().accessFunctional(record.blockAddr,
                                          mem::AccessType::InstFetch);
        } else {
            system.l1d().accessFunctional(record.blockAddr,
                                          record.type);
        }
    }
}

void
checkSingleCore(const TraceRunOptions &options)
{
    if (options.config.cores != 1)
        fatal("trace replay is single-core (captured traces carry one "
              "instruction stream); config has {} cores",
              options.config.cores);
}

} // namespace

RunResult
aggregateWeighted(const std::vector<IntervalRun> &intervals,
                  std::uint64_t total_instructions,
                  const std::string &benchmark)
{
    TLSIM_ASSERT(!intervals.empty(),
                 "cannot aggregate zero intervals");
    RunResult out;
    out.design = intervals.front().result.design;
    out.benchmark = benchmark;

    double cpi = 0.0;
    for (const IntervalRun &run : intervals) {
        const RunResult &r = run.result;
        double w = run.rep.weight;
        double instr = r.instructions > 0
                           ? static_cast<double>(r.instructions)
                           : 1.0;
        cpi += w * (static_cast<double>(r.cycles) / instr);

        out.l2RequestsPer1k += w * r.l2RequestsPer1k;
        out.l2MissesPer1k += w * r.l2MissesPer1k;
        out.meanLookupLatency += w * r.meanLookupLatency;
        out.predictablePct += w * r.predictablePct;
        out.banksPerRequest += w * r.banksPerRequest;
        out.networkPowerMw += w * r.networkPowerMw;
        out.linkUtilizationPct += w * r.linkUtilizationPct;
        out.closeHitPct += w * r.closeHitPct;
        out.promotesPerInsert += w * r.promotesPerInsert;
        out.fastMissPct += w * r.fastMissPct;
        out.multiMatchPct += w * r.multiMatchPct;
        out.queueWaitMean += w * r.queueWaitMean;
        out.wireMean += w * r.wireMean;
        out.bankMean += w * r.bankMean;
        out.dramMean += w * r.dramMean;
        out.faultMean += w * r.faultMean;

        // Event counts extrapolate through per-instruction rates.
        double scale =
            w * static_cast<double>(total_instructions) / instr;
        out.queueWaitSamples += static_cast<std::uint64_t>(
            std::llround(scale * static_cast<double>(
                                     r.queueWaitSamples)));
        out.wireSamples += static_cast<std::uint64_t>(
            std::llround(scale * static_cast<double>(r.wireSamples)));
        out.bankSamples += static_cast<std::uint64_t>(
            std::llround(scale * static_cast<double>(r.bankSamples)));
        out.dramSamples += static_cast<std::uint64_t>(
            std::llround(scale * static_cast<double>(r.dramSamples)));
        out.faultSamples += static_cast<std::uint64_t>(
            std::llround(scale * static_cast<double>(r.faultSamples)));
        out.linkRetries += scale * r.linkRetries;
        out.linkTimeouts += scale * r.linkTimeouts;
        out.degradedRequests += scale * r.degradedRequests;
    }

    out.instructions = total_instructions;
    out.cycles = static_cast<std::uint64_t>(std::llround(
        cpi * static_cast<double>(total_instructions)));
    out.ipc = cpi > 0.0 ? 1.0 / cpi : 0.0;
    return out;
}

SampledTraceOutcome
runSampledTrace(const workload::TraceFile &trace,
                const TraceRunOptions &options)
{
    checkSingleCore(options);
    auto start_time = std::chrono::steady_clock::now();

    WarmCheckpointCache checkpoints(options.checkpointDir);

    // The interval-selection scan decodes the entire trace; its plan
    // is deterministic in (trace, geometry, seed) and machine-
    // independent, so it is cached beside the warm checkpoints — a
    // fully warm sampled run touches only the sampled records.
    SampledTraceOutcome outcome;
    std::string plan_key = samplingPlanKey(
        trace.contentHash(), options.intervalInstructions,
        options.maxIntervals, options.seed);
    if (!checkpoints.loadPlan(plan_key, outcome.plan)) {
        outcome.plan = workload::selectIntervals(
            trace, options.intervalInstructions, options.maxIntervals,
            options.seed);
        checkpoints.storePlan(plan_key, outcome.plan);
    }

    // One scratch machine replays the trace prefix functionally and
    // is advanced lazily, so even an all-miss (cold) sampled run pays
    // at most one pass over the longest prefix — not one per
    // interval. Its serialized state is what both the cold path and
    // the checkpoint path load, making the two byte-identical. The
    // scratch machine is only built on the first checkpoint miss.
    std::optional<System> warm_system;
    std::optional<workload::TraceFileSource> warm_cursor;

    for (const workload::RepresentativeInterval &rep :
         outcome.plan.representatives) {
        System system(options.config);
        std::string key = checkpointKey(trace.contentHash(),
                                        rep.startRecord,
                                        options.config);
        IntervalRun run;
        run.rep = rep;
        if (checkpoints.load(key, system, rep.startRecord)) {
            run.fromCheckpoint = true;
            ++outcome.checkpointHits;
        } else {
            if (!warm_system) {
                warm_system.emplace(options.config);
                warm_cursor.emplace(trace);
            }
            std::uint64_t before = warm_cursor->recordIndex();
            warmToRecord(*warm_system, *warm_cursor, rep.startRecord);
            outcome.warmRecordsReplayed +=
                warm_cursor->recordIndex() - before;
            std::stringstream payload(std::ios::in | std::ios::out |
                                      std::ios::binary);
            if (warm_system->saveWarmState(payload)) {
                payload.seekg(0);
                if (!system.loadWarmState(payload))
                    fatal("warm-state round trip failed for design "
                          "'{}'", options.config.design);
                checkpoints.store(key, *warm_system, rep.startRecord);
                if (checkpoints.enabled())
                    ++outcome.checkpointStores;
            } else {
                // Design without warm-state support: warm the timed
                // machine directly (no checkpoint possible).
                workload::TraceFileSource replay(trace);
                warmToRecord(system, replay, rep.startRecord);
            }
        }

        workload::TraceFileSource cursor(trace);
        cursor.seekToRecord(rep.startRecord);
        std::uint64_t warmup =
            std::min(options.timedWarmup, rep.instructions / 4);
        std::uint64_t measure = rep.instructions - warmup;
        if (warmup > 0)
            system.core().run(cursor, warmup);
        system.beginMeasurement();
        std::uint64_t cycles = system.core().run(cursor, measure);
        system.l2().syncStats();
        run.result = extractRunResult(system, cycles, measure,
                                      options.benchmarkLabel);
        outcome.timedInstructions += warmup + measure;
        outcome.intervals.push_back(std::move(run));
    }

    outcome.aggregate =
        aggregateWeighted(outcome.intervals,
                          outcome.plan.coveredInstructions,
                          options.benchmarkLabel);
    outcome.wallMs = wallMsSince(start_time);
    return outcome;
}

RunResult
runFullTrace(const workload::TraceFile &trace,
             const TraceRunOptions &options, double *wall_ms)
{
    checkSingleCore(options);
    auto start_time = std::chrono::steady_clock::now();

    System system(options.config);
    workload::TraceFileSource cursor(trace);
    system.beginMeasurement();
    std::uint64_t cycles =
        system.core().run(cursor, trace.instructionCount());
    system.l2().syncStats();
    RunResult result =
        extractRunResult(system, cycles, trace.instructionCount(),
                         options.benchmarkLabel);
    if (wall_ms)
        *wall_ms = wallMsSince(start_time);
    return result;
}

} // namespace harness
} // namespace tlsim
