/**
 * @file
 * Content-addressed store for functional-warm checkpoints.
 *
 * A checkpoint captures a System's warm state at one trace position
 * so sweeps over specs that share a (trace, interval, machine) triple
 * pay the functional warm-up once, not once per spec. Entries live
 * beside the result cache (by default in a `warm/` subdirectory of
 * the cache dir) and follow the same discipline: content-addressed
 * keys, write-then-rename stores, and corrupt or mismatched entries
 * silently treated as misses. docs/SAMPLING.md documents the
 * invalidation semantics.
 */

#ifndef TLSIM_HARNESS_CHECKPOINT_HH
#define TLSIM_HARNESS_CHECKPOINT_HH

#include <cstdint>
#include <string>

#include "harness/config.hh"
#include "harness/system.hh"
#include "workload/simpoint.hh"

namespace tlsim
{
namespace harness
{

/**
 * Version salt folded into every checkpoint key: bump when the warm
 * payload encoding or the functional-warm semantics change, and every
 * stale entry becomes unreachable at once.
 */
extern const char *const checkpointVersionSalt;

/**
 * Checkpoint identity: the trace, the position in it, and the machine
 * whose warm state is captured. The machine enters through
 * SystemConfig::machineHash() (cache geometry, cores, technology —
 * not run budgets) plus the design name, because each design owns a
 * different warm-state layout.
 */
std::string checkpointKey(std::uint64_t trace_hash,
                          std::uint64_t start_record,
                          const SystemConfig &config);

/**
 * Sampling-plan identity: the trace and the selection parameters.
 * Machine-independent — the plan clusters the trace's access mix, so
 * every machine config shares one entry. Salted with its own format
 * version (bump the salt inside when the signature or clustering
 * methodology changes).
 */
std::string samplingPlanKey(std::uint64_t trace_hash,
                            std::uint64_t interval_instructions,
                            std::uint32_t max_clusters,
                            std::uint64_t seed);

/**
 * Directory of warm-state checkpoint files. An empty directory name
 * disables the store (load always misses, store discards).
 */
class WarmCheckpointCache
{
  public:
    explicit WarmCheckpointCache(std::string dir);

    bool enabled() const { return !_dir.empty(); }
    const std::string &dir() const { return _dir; }

    /**
     * Restore the checkpoint for @p key into @p system.
     * @return true on a hit; on any mismatch (absent, torn, stale
     *         geometry, wrong record) returns false and the caller
     *         must treat @p system as unspecified and warm cold.
     */
    bool load(const std::string &key, System &system,
              std::uint64_t expect_record) const;

    /** Persist @p system's warm state under @p key (atomic). */
    void store(const std::string &key, System &system,
               std::uint64_t start_record) const;

    /**
     * Restore a cached sampling plan (the interval-selection scan is
     * the dominant fixed cost of a warm sampled run). Same miss
     * discipline as load(): any mismatch returns false.
     */
    bool loadPlan(const std::string &key,
                  workload::SamplingPlan &plan) const;

    /** Persist @p plan under @p key (atomic). */
    void storePlan(const std::string &key,
                   const workload::SamplingPlan &plan) const;

  private:
    std::string path(const std::string &key) const;

    std::string _dir;
};

} // namespace harness
} // namespace tlsim

#endif // TLSIM_HARNESS_CHECKPOINT_HH
