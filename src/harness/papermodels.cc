#include "harness/papermodels.hh"

#include "cacti/srambank.hh"
#include "phys/geometry.hh"
#include "phys/rcwire.hh"
#include "phys/switchmodel.hh"
#include "phys/transline.hh"
#include "tlc/config.hh"
#include "tlc/floorplan.hh"

namespace tlsim
{
namespace harness
{

namespace
{

/** DNUCA mesh facts shared by the area and circuit roll-ups. */
struct DnucaMeshFacts
{
    int switches = 256;
    int rows = 16;
    int cols = 16;
    int flitBits = 128;
    /** Sideband wires per link (flow control, address tags). */
    int sidebandWires = 16;
    double hopLength = 0.6e-3;

    int wiresPerLink() const { return flitBits + sidebandWires; }

    /** Unidirectional inter-switch links. */
    int
    linkCount() const
    {
        return 2 * cols * (rows - 1) + 2 * (cols - 1);
    }
};

} // namespace

AreaBreakdown
dnucaArea(const phys::Technology &tech)
{
    DnucaMeshFacts mesh;
    AreaBreakdown area;

    // Storage: 256 x 64 KB 2-way banks.
    cacti::SramBankModel bank(tech, 64 * 1024, 2, 64);
    area.storage = 256.0 * bank.area();

    // Channel: dedicated wiring tracks (with keep-out) plus the
    // repeater farms of every link, plus the switches themselves.
    phys::RcWireModel wire(tech, phys::conventionalGlobalWire());
    double wires = static_cast<double>(mesh.linkCount()) *
                   mesh.wiresPerLink();
    double track_area = wires * mesh.hopLength *
                        phys::conventionalGlobalWire().pitch() /
                        (1.0 - tech.channelBlockageFraction);
    double repeater_area = wires * wire.repeaterArea(mesh.hopLength);
    phys::SwitchModel sw(tech, 5, mesh.flitBits, 4);
    double switch_area = mesh.switches * sw.area();
    area.channel = track_area + repeater_area + switch_area;

    // Controller: the centralized 6-bit partial tag structure for
    // 256K blocks (plus valid bits and comparators).
    cacti::SramBankModel ptags(tech, 256 * 1024, 16, 64);
    area.controller = ptags.area() * 0.85; // tags + comparators
    return area;
}

AreaBreakdown
tlcArea(const phys::Technology &tech)
{
    AreaBreakdown area;

    // Storage: 32 x 512 KB 4-way banks (denser than DNUCA's).
    cacti::SramBankModel bank(tech, 512 * 1024, 4, 64);
    area.storage = 32.0 * bank.area();

    // Channel & controller: from the floorplan model. Transmission
    // lines route above the banks and consume no substrate.
    tlc::TlcFloorplan floorplan(tech, tlc::baseTlc());
    area.channel = floorplan.channelArea();
    area.controller = floorplan.controllerArea();
    return area;
}

CircuitTotals
dnucaNetworkCircuit(const phys::Technology &tech)
{
    DnucaMeshFacts mesh;
    CircuitTotals totals;

    phys::SwitchModel sw(tech, 5, mesh.flitBits, 4);
    totals.transistors = mesh.switches * sw.transistorCount();
    totals.gateWidthLambda = mesh.switches * sw.gateWidthLambda();

    // Repeaters and pipeline latches on every link wire.
    phys::RcWireModel wire(tech, phys::conventionalGlobalWire());
    double wires = static_cast<double>(mesh.linkCount()) *
                   mesh.wiresPerLink();
    totals.transistors += static_cast<long>(
        wires * wire.transistorCount(mesh.hopLength));
    totals.gateWidthLambda += wires *
                              wire.gateWidthLambda(mesh.hopLength);
    // One staging latch per wire per link (12 devices, ~4x width).
    totals.transistors += static_cast<long>(wires * 12.0);
    totals.gateWidthLambda += wires * 12.0 * 4.0 *
                              tech.minInverterWidthLambda / 10.0;
    return totals;
}

CircuitTotals
tlcNetworkCircuit(const phys::Technology &tech)
{
    CircuitTotals totals;
    tlc::TlcConfig cfg = tlc::baseTlc();
    tlc::TlcFloorplan floorplan(tech, cfg);

    for (int p = 0; p < floorplan.pairs(); ++p) {
        phys::TransmissionLine line(tech, floorplan.pair(p).length);
        totals.transistors +=
            static_cast<long>(cfg.linesPerPair) *
            phys::TransmissionLine::transistorsPerLine();
        totals.gateWidthLambda += cfg.linesPerPair *
                                  line.gateWidthLambda();
    }
    return totals;
}

} // namespace harness
} // namespace tlsim
