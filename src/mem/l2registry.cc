#include "mem/l2registry.hh"

#include <algorithm>
#include <sstream>
#include <utility>

#include "sim/logging.hh"

namespace tlsim::l2
{

namespace
{

/**
 * Function-local static sidesteps init-order races with Registrars.
 * Hashed, not ordered: build() looks a design up per System
 * construction, and the few callers that need sorted names
 * (names(), error messages) sort explicitly.
 */
std::unordered_map<std::string, Factory> &
table()
{
    static std::unordered_map<std::string, Factory> designs;
    return designs;
}

std::string
knownList()
{
    std::ostringstream os;
    bool first = true;
    for (const auto &name : Registry::names()) {
        if (!first)
            os << ", ";
        os << name;
        first = false;
    }
    return os.str();
}

} // namespace

void
Registry::registerDesign(const std::string &name, Factory factory)
{
    auto [it, inserted] = table().emplace(name, std::move(factory));
    if (!inserted)
        fatal("L2 design '{}' registered twice", name);
}

std::unique_ptr<mem::L2Cache>
Registry::build(const std::string &name, const BuildContext &ctx)
{
    auto it = table().find(name);
    if (it == table().end()) {
        fatal("unknown L2 design '{}'; known designs: {}", name,
              knownList());
    }
    return it->second(ctx);
}

bool
Registry::known(const std::string &name)
{
    return table().count(name) != 0;
}

std::vector<std::string>
Registry::names()
{
    std::vector<std::string> out;
    out.reserve(table().size());
    for (const auto &[name, factory] : table())
        out.push_back(name);
    std::sort(out.begin(), out.end());
    return out;
}

double
optionOr(const DesignOptions &options, const std::string &key,
         double fallback)
{
    return conf::optionOr(options, key, fallback);
}

void
rejectUnknownOptions(const std::string &design,
                     const DesignOptions &options,
                     const char *const *known)
{
    conf::rejectUnknownOptions("L2 design '" + design + "'", options,
                               known);
}

} // namespace tlsim::l2
