/**
 * @file
 * Memory request types shared across the cache hierarchy.
 */

#ifndef TLSIM_MEM_REQUEST_HH
#define TLSIM_MEM_REQUEST_HH

#include <functional>

#include "sim/types.hh"

namespace tlsim
{
namespace mem
{

/** Cache block size used throughout the paper's designs (64 B). */
constexpr int blockBytes = 64;
constexpr int blockShift = 6;

/** Block-align a byte address. */
inline Addr
blockAlign(Addr addr)
{
    return addr >> blockShift;
}

/** Access kind: instruction fetch, data load, or data store. */
enum class AccessType
{
    InstFetch,
    Load,
    Store,
};

inline bool
isWrite(AccessType type)
{
    return type == AccessType::Store;
}

/** Callback signature: invoked with the tick a request completed. */
using RespCallback = std::function<void(Tick)>;

/** One memory request flowing through the hierarchy. */
struct MemRequest
{
    /** Block address (byte address >> blockShift). */
    Addr blockAddr;
    /** Kind of access. */
    AccessType type;
    /** Tick the request was issued. */
    Tick issued;
};

} // namespace mem
} // namespace tlsim

#endif // TLSIM_MEM_REQUEST_HH
