/**
 * @file
 * Memory request types shared across the cache hierarchy.
 */

#ifndef TLSIM_MEM_REQUEST_HH
#define TLSIM_MEM_REQUEST_HH

#include <cstdint>
#include <functional>

#include "sim/types.hh"

namespace tlsim
{
namespace mem
{

/** Cache block size used throughout the paper's designs (64 B). */
constexpr int blockBytes = 64;
constexpr int blockShift = 6;

/** Block-align a byte address. */
inline Addr
blockAlign(Addr addr)
{
    return addr >> blockShift;
}

/** Access kind: instruction fetch, data load, or data store. */
enum class AccessType
{
    InstFetch,
    Load,
    Store,
};

inline bool
isWrite(AccessType type)
{
    return type == AccessType::Store;
}

/** Callback signature: invoked with the tick a request completed. */
using RespCallback = std::function<void(Tick)>;

/**
 * One memory request flowing through the hierarchy. This is the real
 * currency of the memory system: cores build one per access, L1s
 * forward it (re-stamping issue time and minting an id on miss), and
 * L2 designs use the id to link trace spans and the requester to
 * attribute per-core stats.
 */
struct MemRequest
{
    /** Block address (byte address >> blockShift). */
    Addr blockAddr;
    /** Kind of access. */
    AccessType type;
    /** Tick the request was issued. */
    Tick issued;
    /** Core that originated the access (0 in single-core runs). */
    int requester = 0;
    /**
     * Hierarchy-wide request id for trace correlation; 0 means
     * "unassigned" (fire-and-forget writebacks never get one).
     */
    std::uint64_t id = 0;
};

/**
 * Mints monotonically increasing request ids. One instance is shared
 * by all L1s of a System so ids stay unique across cores.
 */
struct RequestIdSource
{
    std::uint64_t next() { return ++seq; }

    std::uint64_t seq = 0;
};

} // namespace mem
} // namespace tlsim

#endif // TLSIM_MEM_REQUEST_HH
