#include "mem/l1cache.hh"

#include "mem/warmstate.hh"
#include "sim/trace/debug.hh"
#include "sim/trace/tracesink.hh"

namespace tlsim
{
namespace mem
{

namespace
{

std::uint32_t
setsFor(std::uint64_t capacity, int ways)
{
    return static_cast<std::uint32_t>(
        capacity / (static_cast<std::uint64_t>(blockBytes) * ways));
}

} // namespace

L1Cache::L1Cache(const std::string &name, EventQueue &eq,
                 stats::StatGroup *parent, L2Cache &l2_,
                 std::uint64_t capacity_bytes, int ways,
                 Cycles hit_latency, int num_mshrs, int requester,
                 RequestIdSource *ids)
    : stats::StatGroup(name, parent), eventq(eq), l2(l2_),
      array(setsFor(capacity_bytes, ways), ways),
      hitLatency(hit_latency), numMshrs(num_mshrs),
      requesterId(requester), idSource(ids ? ids : &privateIds),
      accesses(this, "accesses", "L1 accesses"),
      hits(this, "hits", "L1 hits"),
      misses(this, "misses", "L1 misses sent to L2"),
      coalescedMisses(this, "coalesced_misses",
                      "misses merged into an existing MSHR"),
      writebacks(this, "writebacks", "dirty victims written to L2"),
      mshrStallCycles(this, "mshr_stall_cycles",
                      "cycles requests waited for a free MSHR")
{
    for (int i = 0; i < num_mshrs; ++i) {
        missEvents.emplace_back(*this);
        missEventFree.push_back(&missEvents.back());
    }
}

void
L1Cache::access(const MemRequest &req, RespCallback cb)
{
    const Addr block_addr = req.blockAddr;
    const AccessType type = req.type;
    const Tick now = req.issued;

    ++accesses;
    ++useCounter;

    auto way = array.lookup(block_addr);
    if (way) {
        ++hits;
        array.touch(block_addr, *way, useCounter, isWrite(type));
        cb(now + hitLatency);
        return;
    }

    // Miss: coalesce onto an existing MSHR if one tracks this block.
    auto it = mshrs.find(block_addr);
    if (it != mshrs.end()) {
        TLSIM_DPRINTF(L1, "t={} {} coalesce block {}", now,
                      groupName(), block_addr);
        ++coalescedMisses;
        it->second.storeMiss |= isWrite(type);
        it->second.targets.push_back(std::move(cb));
        return;
    }

    ++misses;
    if (static_cast<int>(mshrs.size()) >= numMshrs) {
        TLSIM_DPRINTF(L1, "t={} {} MSHRs full, queueing block {}", now,
                      groupName(), block_addr);
        waitQueue.push_back(
            WaitingAccess{block_addr, type, now, std::move(cb)});
        return;
    }

    TLSIM_DPRINTF(L1, "t={} {} miss block {}", now, groupName(),
                  block_addr);
    Mshr &mshr = mshrs[block_addr];
    mshr.storeMiss = isWrite(type);
    mshr.started = now;
    mshr.targets.push_back(std::move(cb));
    if (watchdog)
        watchdog->onIssue(watchdogClient, block_addr, now);
    startMiss(block_addr, type, now);
}

void
L1Cache::accessFunctional(Addr block_addr, AccessType type)
{
    ++useCounter;
    auto way = array.lookup(block_addr);
    if (way) {
        array.touch(block_addr, *way, useCounter, isWrite(type));
        return;
    }
    l2.accessFunctional(block_addr, type == AccessType::Store
                                        ? AccessType::Load
                                        : type);
    auto evicted = array.insert(block_addr, useCounter, isWrite(type));
    if (evicted && evicted->dirty)
        l2.accessFunctional(evicted->blockAddr, AccessType::Store);
}

void
L1Cache::saveWarmState(std::ostream &os) const
{
    warm::putU64(os, useCounter);
    warm::writeArray(os, array);
}

bool
L1Cache::loadWarmState(std::istream &is)
{
    std::uint64_t counter = 0;
    if (!warm::getU64(is, counter) || !warm::readArray(is, array))
        return false;
    useCounter = counter;
    return true;
}

void
L1Cache::startMiss(Addr block_addr, AccessType type, Tick now)
{
    // The L2 request leaves after the L1 tag check.
    Tick depart = now + hitLatency;
    AccessType l2_type =
        type == AccessType::Store ? AccessType::Load : type;
    MemRequest l2_req{block_addr, l2_type, depart, requesterId,
                      idSource->next()};
    if (useTypedHotPathEvents && !missEventFree.empty()) {
        MissEvent *ev = missEventFree.back();
        missEventFree.pop_back();
        ev->req = l2_req;
        eventq.schedule(ev, depart);
    } else {
        eventq.scheduleFunc(depart,
                            [this, l2_req]() { issueMiss(l2_req); });
    }
}

void
L1Cache::issueMiss(const MemRequest &l2_req)
{
    // The fill callback captures 16 bytes and fits std::function's
    // small buffer; the request itself never hits the allocator.
    l2.access(l2_req,
              [this, block_addr = l2_req.blockAddr](Tick done) {
                  handleFill(block_addr, done);
              });
}

void
L1Cache::MissEvent::process()
{
    // Free the slot before issuing: a synchronous L2 response can
    // admit a queued access that immediately needs an event.
    MemRequest r = req;
    owner.missEventFree.push_back(this);
    owner.issueMiss(r);
}

void
L1Cache::handleFill(Addr block_addr, Tick now)
{
    auto it = mshrs.find(block_addr);
    TLSIM_ASSERT(it != mshrs.end(), "fill without MSHR");
    Mshr mshr = std::move(it->second);
    mshrs.erase(it);
    if (watchdog)
        watchdog->onComplete(watchdogClient, block_addr);

    TLSIM_DPRINTF(L1, "t={} {} fill block {} ({} targets)", now,
                  groupName(), block_addr, mshr.targets.size());
    if (auto *sink = trace::TraceSink::active()) {
        sink->span(trace::cat::l1,
                   csprintf("{} miss {}", groupName(), block_addr),
                   mshr.started, now, trace::tid::l1);
    }

    ++useCounter;
    auto evicted = array.insert(block_addr, useCounter, mshr.storeMiss);
    if (evicted && evicted->dirty) {
        ++writebacks;
        l2.access(MemRequest{evicted->blockAddr, AccessType::Store,
                             now, requesterId},
                  [](Tick) {});
    }

    for (auto &target : mshr.targets)
        target(now);

    // Admit a waiting access now that an MSHR is free. Re-run the
    // full access path: it may now hit (same block) or re-miss.
    if (!waitQueue.empty() &&
        static_cast<int>(mshrs.size()) < numMshrs) {
        WaitingAccess waiting = std::move(waitQueue.front());
        waitQueue.pop_front();
        mshrStallCycles += static_cast<double>(now - waiting.queuedAt);
        // Undo the double-count: this access was already counted.
        accesses += -1.0;
        misses += -1.0;
        access(waiting.blockAddr, waiting.type, now,
               std::move(waiting.cb));
    }
}

} // namespace mem
} // namespace tlsim
