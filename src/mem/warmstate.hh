/**
 * @file
 * Binary serialization helpers for functional warm state.
 *
 * Warm-state checkpoints capture exactly what accessFunctional
 * mutates — tag/valid/dirty/LRU state plus the owning structure's LRU
 * use counter — so a resumed run replays bit-identically to a cold
 * one (docs/SAMPLING.md, "Checkpoint invalidation"). DRAM carries no
 * functional state (its model is timing-only), so it has no section.
 *
 * Encoding is little-endian and sparse: only valid lines are written,
 * in set-major order, which keeps short-warm checkpoints small. The
 * readers return false on any mismatch (truncation, geometry change)
 * so callers treat a stale checkpoint as a miss, never a crash.
 */

#ifndef TLSIM_MEM_WARMSTATE_HH
#define TLSIM_MEM_WARMSTATE_HH

#include <cstdint>
#include <istream>
#include <ostream>

#include "mem/setassoc.hh"

namespace tlsim
{
namespace mem
{
namespace warm
{

inline void
putU64(std::ostream &os, std::uint64_t v)
{
    char bytes[8];
    for (int i = 0; i < 8; ++i)
        bytes[i] = static_cast<char>(v >> (8 * i));
    os.write(bytes, 8);
}

inline bool
getU64(std::istream &is, std::uint64_t &v)
{
    char bytes[8];
    if (!is.read(bytes, 8))
        return false;
    v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(
                 static_cast<unsigned char>(bytes[i]))
             << (8 * i);
    return true;
}

inline void
putU32(std::ostream &os, std::uint32_t v)
{
    char bytes[4];
    for (int i = 0; i < 4; ++i)
        bytes[i] = static_cast<char>(v >> (8 * i));
    os.write(bytes, 4);
}

inline bool
getU32(std::istream &is, std::uint32_t &v)
{
    char bytes[4];
    if (!is.read(bytes, 4))
        return false;
    v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(
                 static_cast<unsigned char>(bytes[i]))
             << (8 * i);
    return true;
}

inline void
putU8(std::ostream &os, std::uint8_t v)
{
    os.put(static_cast<char>(v));
}

inline bool
getU8(std::istream &is, std::uint8_t &v)
{
    int c = is.get();
    if (c == std::istream::traits_type::eof())
        return false;
    v = static_cast<std::uint8_t>(c);
    return true;
}

/** Serialize a set-associative array (geometry + valid lines). */
inline void
writeArray(std::ostream &os, const SetAssocArray &array)
{
    putU32(os, array.sets());
    putU32(os, array.ways());
    putU64(os, array.validCount());
    for (std::uint32_t set = 0; set < array.sets(); ++set) {
        for (std::uint32_t way = 0; way < array.ways(); ++way) {
            const LineState &line = array.at(set, way);
            if (!line.valid)
                continue;
            putU32(os, set);
            putU32(os, way);
            putU64(os, line.tag);
            putU64(os, line.lastUse);
            putU8(os, line.dirty ? 1 : 0);
        }
    }
}

/**
 * Restore an array written by writeArray. The destination's geometry
 * must match; all its lines are reset first so a load over a used
 * array is equivalent to loading into a fresh one.
 * @return false on truncation or geometry mismatch (caller should
 *         discard the checkpoint).
 */
inline bool
readArray(std::istream &is, SetAssocArray &array)
{
    std::uint32_t sets = 0, ways = 0;
    std::uint64_t valid = 0;
    if (!getU32(is, sets) || !getU32(is, ways) || !getU64(is, valid))
        return false;
    if (sets != array.sets() || ways != array.ways())
        return false;
    for (std::uint32_t set = 0; set < array.sets(); ++set)
        for (std::uint32_t way = 0; way < array.ways(); ++way)
            array.at(set, way) = LineState{};
    for (std::uint64_t i = 0; i < valid; ++i) {
        std::uint32_t set = 0, way = 0;
        std::uint64_t tag = 0, last_use = 0;
        std::uint8_t dirty = 0;
        if (!getU32(is, set) || !getU32(is, way) || !getU64(is, tag) ||
            !getU64(is, last_use) || !getU8(is, dirty))
            return false;
        if (set >= array.sets() || way >= array.ways())
            return false;
        LineState &line = array.at(set, way);
        line.tag = tag;
        line.valid = true;
        line.dirty = dirty != 0;
        line.lastUse = last_use;
    }
    return true;
}

} // namespace warm
} // namespace mem
} // namespace tlsim

#endif // TLSIM_MEM_WARMSTATE_HH
