/**
 * @file
 * Self-registering string -> factory registry for L2 cache designs.
 *
 * Each design registers itself from its own translation unit with a
 * file-scope l2::Registrar, so adding a design requires zero edits to
 * harness/ code:
 *
 * @code
 *     namespace {
 *     const tlsim::l2::Registrar registerSnuca{
 *         "SNUCA2",
 *         [](const tlsim::l2::BuildContext &ctx) {
 *             return std::make_unique<SnucaCache>(...);
 *         }};
 *     } // namespace
 * @endcode
 *
 * Designs live in static archives, so the harness links them with
 * WHOLE_ARCHIVE (see src/harness/CMakeLists.txt) to keep the
 * registrar objects from being dropped.
 */

#ifndef TLSIM_MEM_L2REGISTRY_HH
#define TLSIM_MEM_L2REGISTRY_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "mem/l2cache.hh"
#include "mem/options.hh"

namespace tlsim
{

namespace phys
{
struct Technology;
} // namespace phys

namespace fault
{
class Injector;
} // namespace fault

namespace l2
{

/**
 * Design-specific knobs as a flat name -> value map (e.g.
 * "lineErrorRate": 1e-12, "ways": 8). Designs reject unknown keys so
 * config typos fail loudly. The implementation (a sorted vector whose
 * iteration order feeds SystemConfig::canonicalKey) now lives in
 * conf::OptionMap, shared with the memory-backend registry.
 */
using DesignOptions = conf::OptionMap;

/** Everything a design factory needs to build an L2 instance. */
struct BuildContext
{
    EventQueue &eq;
    stats::StatGroup *parent;
    mem::MemBackend &dram;
    const phys::Technology &tech;
    const DesignOptions &options;
    /** Per-run fault source; null when fault injection is disabled. */
    fault::Injector *injector = nullptr;
};

/** Factory signature each design registers. */
using Factory =
    std::function<std::unique_ptr<mem::L2Cache>(const BuildContext &)>;

/**
 * The global design registry. All members are static; the backing map
 * is a function-local static so registration from file-scope
 * constructors is order-safe.
 */
class Registry
{
  public:
    /**
     * Register a factory under a design name. Called via Registrar at
     * static-init time; duplicate names are a fatal error.
     */
    static void registerDesign(const std::string &name, Factory factory);

    /**
     * Build the named design. Unknown names are a fatal error that
     * lists every registered design.
     */
    static std::unique_ptr<mem::L2Cache>
    build(const std::string &name, const BuildContext &ctx);

    /** True if a design with this name has been registered. */
    static bool known(const std::string &name);

    /** All registered design names, sorted. */
    static std::vector<std::string> names();
};

/** File-scope helper: constructing one registers a design. */
struct Registrar
{
    Registrar(const std::string &name, Factory factory)
    {
        Registry::registerDesign(name, std::move(factory));
    }
};

/**
 * Fetch an option by key, or the default when absent. Pair with
 * rejectUnknownOptions so misspelled keys still fail.
 */
double optionOr(const DesignOptions &options, const std::string &key,
                double fallback);

/**
 * Fatal error if @p options contains a key outside @p known
 * (null-terminated array of option names the design accepts).
 */
void rejectUnknownOptions(const std::string &design,
                          const DesignOptions &options,
                          const char *const *known);

} // namespace l2
} // namespace tlsim

#endif // TLSIM_MEM_L2REGISTRY_HH
