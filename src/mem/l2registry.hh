/**
 * @file
 * Self-registering string -> factory registry for L2 cache designs.
 *
 * Each design registers itself from its own translation unit with a
 * file-scope l2::Registrar, so adding a design requires zero edits to
 * harness/ code:
 *
 * @code
 *     namespace {
 *     const tlsim::l2::Registrar registerSnuca{
 *         "SNUCA2",
 *         [](const tlsim::l2::BuildContext &ctx) {
 *             return std::make_unique<SnucaCache>(...);
 *         }};
 *     } // namespace
 * @endcode
 *
 * Designs live in static archives, so the harness links them with
 * WHOLE_ARCHIVE (see src/harness/CMakeLists.txt) to keep the
 * registrar objects from being dropped.
 */

#ifndef TLSIM_MEM_L2REGISTRY_HH
#define TLSIM_MEM_L2REGISTRY_HH

#include <algorithm>
#include <functional>
#include <initializer_list>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "mem/l2cache.hh"

namespace tlsim
{

namespace phys
{
struct Technology;
} // namespace phys

namespace fault
{
class Injector;
} // namespace fault

namespace l2
{

/**
 * Design-specific knobs as a flat name -> value map (e.g.
 * "lineErrorRate": 1e-12, "ways": 8). Designs reject unknown keys so
 * config typos fail loudly.
 *
 * Implemented as a sorted vector rather than std::map: option sets
 * are tiny (a handful of knobs) but consulted on config-hash and
 * build paths, where the flat layout beats pointer-chasing nodes.
 * Iteration stays in sorted key order — SystemConfig::canonicalKey
 * and the JSON writer depend on that, and changing it would silently
 * invalidate every on-disk ResultCache entry.
 */
class DesignOptions
{
  public:
    using value_type = std::pair<std::string, double>;
    using const_iterator = std::vector<value_type>::const_iterator;

    DesignOptions() = default;

    DesignOptions(std::initializer_list<value_type> init)
    {
        for (const auto &kv : init)
            (*this)[kv.first] = kv.second;
    }

    /** Insert-or-find, map-style. New keys start at 0.0. */
    double &
    operator[](const std::string &key)
    {
        auto it = lowerBound(key);
        if (it == entries.end() || it->first != key)
            it = entries.insert(it, value_type{key, 0.0});
        return it->second;
    }

    const_iterator
    find(const std::string &key) const
    {
        auto it = lowerBound(key);
        return (it != entries.end() && it->first == key) ? it
                                                         : entries.end();
    }

    std::size_t
    count(const std::string &key) const
    {
        return find(key) == entries.end() ? 0 : 1;
    }

    bool empty() const { return entries.empty(); }
    std::size_t size() const { return entries.size(); }
    const_iterator begin() const { return entries.begin(); }
    const_iterator end() const { return entries.end(); }

    bool operator==(const DesignOptions &other) const = default;

  private:
    std::vector<value_type>::iterator
    lowerBound(const std::string &key)
    {
        return std::lower_bound(entries.begin(), entries.end(), key,
                                [](const value_type &e,
                                   const std::string &k) {
                                    return e.first < k;
                                });
    }

    const_iterator
    lowerBound(const std::string &key) const
    {
        return std::lower_bound(entries.begin(), entries.end(), key,
                                [](const value_type &e,
                                   const std::string &k) {
                                    return e.first < k;
                                });
    }

    /** Kept sorted by key at all times. */
    std::vector<value_type> entries;
};

/** Everything a design factory needs to build an L2 instance. */
struct BuildContext
{
    EventQueue &eq;
    stats::StatGroup *parent;
    mem::Dram &dram;
    const phys::Technology &tech;
    const DesignOptions &options;
    /** Per-run fault source; null when fault injection is disabled. */
    fault::Injector *injector = nullptr;
};

/** Factory signature each design registers. */
using Factory =
    std::function<std::unique_ptr<mem::L2Cache>(const BuildContext &)>;

/**
 * The global design registry. All members are static; the backing map
 * is a function-local static so registration from file-scope
 * constructors is order-safe.
 */
class Registry
{
  public:
    /**
     * Register a factory under a design name. Called via Registrar at
     * static-init time; duplicate names are a fatal error.
     */
    static void registerDesign(const std::string &name, Factory factory);

    /**
     * Build the named design. Unknown names are a fatal error that
     * lists every registered design.
     */
    static std::unique_ptr<mem::L2Cache>
    build(const std::string &name, const BuildContext &ctx);

    /** True if a design with this name has been registered. */
    static bool known(const std::string &name);

    /** All registered design names, sorted. */
    static std::vector<std::string> names();
};

/** File-scope helper: constructing one registers a design. */
struct Registrar
{
    Registrar(const std::string &name, Factory factory)
    {
        Registry::registerDesign(name, std::move(factory));
    }
};

/**
 * Fetch an option by key, or the default when absent. Pair with
 * rejectUnknownOptions so misspelled keys still fail.
 */
double optionOr(const DesignOptions &options, const std::string &key,
                double fallback);

/**
 * Fatal error if @p options contains a key outside @p known
 * (null-terminated array of option names the design accepts).
 */
void rejectUnknownOptions(const std::string &design,
                          const DesignOptions &options,
                          const char *const *known);

} // namespace l2
} // namespace tlsim

#endif // TLSIM_MEM_L2REGISTRY_HH
