/**
 * @file
 * Abstract interface for pluggable main-memory backends.
 *
 * Every backend registers in the stats tree as the group "dram" (one
 * per System) and exposes the same three base counters, so stats JSON
 * consumers see an identical shape regardless of the model behind the
 * interface. Backends are built by name through mem::MemRegistry
 * (see mem/memregistry.hh); the paper's fixed-latency sink is the
 * default "fixed" backend, the banked FR-FCFS controller is "ddr".
 */

#ifndef TLSIM_MEM_MEMBACKEND_HH
#define TLSIM_MEM_MEMBACKEND_HH

#include <string>

#include "mem/request.hh"
#include "sim/eventq.hh"
#include "sim/stats.hh"

namespace tlsim
{
namespace mem
{

/**
 * Base class for all main-memory models.
 *
 * A backend receives block-granularity traffic from the L2 designs:
 * demand reads (callback fires when the data is back on chip) and
 * fire-and-forget writebacks that contend with reads for the same
 * controller resources.
 */
class MemBackend : public stats::StatGroup
{
  public:
    MemBackend(EventQueue &eq, stats::StatGroup *parent)
        : stats::StatGroup("dram", parent),
          reads(this, "reads", "DRAM read requests"),
          writes(this, "writes", "DRAM writeback requests"),
          queueDelay(this, "queue_delay",
                     "cycles spent waiting for an outstanding slot"),
          eventq(eq)
    {}

    ~MemBackend() override = default;

    /**
     * Issue a read; @p cb fires when the data is back on chip.
     */
    virtual void read(Addr block_addr, Tick now, RespCallback cb) = 0;

    /**
     * Issue a writeback; fire-and-forget but consumes controller
     * resources (dirty evictions contend with demand misses).
     */
    virtual void write(Addr block_addr, Tick now) = 0;

    /** Requests accepted by the controller and not yet completed. */
    virtual int inService() const = 0;

    /** Registry name of the model ("fixed", "ddr"). */
    virtual std::string backendName() const = 0;

    // Base stats every backend samples: request counts plus the
    // controller queueing delay (the front-end wait before a request
    // starts service). Kept to exactly these three in the "fixed"
    // backend so default stats output is bit-identical to the
    // pre-registry tree.
    stats::Scalar reads;
    stats::Scalar writes;
    stats::Average queueDelay;

  protected:
    EventQueue &eventq;
};

} // namespace mem
} // namespace tlsim

#endif // TLSIM_MEM_MEMBACKEND_HH
