/**
 * @file
 * The "ddr" main-memory backend: a banked DRAM controller with
 * address-interleaved channels, per-bank row-buffer state, FR-FCFS or
 * FCFS scheduling, tRCD/tRP/tCAS-style timing, periodic refresh, and
 * a bounded per-channel command queue with backpressure.
 *
 * Modeling notes (deliberate approximations, documented so results
 * are interpretable):
 *  - Command issue is serialized per channel at data-burst
 *    granularity: the controller picks at most one command whenever
 *    its data bus frees, so a row miss's bank preparation does not
 *    overlap the preceding burst. This preserves row-buffer,
 *    scheduling, and refresh *ordering* effects without per-bank
 *    command events.
 *  - Refresh is applied lazily (no perpetual self-rescheduling event,
 *    which would keep EventQueue::run from draining): due refreshes
 *    are folded into bank state whenever the channel is touched, with
 *    O(1) catch-up across idle gaps. When several refresh intervals
 *    elapse while a bank is busy, only the last one's tRFC blocking
 *    is charged (all are counted).
 *  - All banks of a channel refresh together (all-bank refresh), and
 *    refresh precharges every row buffer.
 */

#ifndef TLSIM_MEM_DDR_HH
#define TLSIM_MEM_DDR_HH

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "mem/membackend.hh"
#include "sim/metrics/heatmap.hh"

namespace tlsim
{

namespace fault
{
class Injector;
} // namespace fault

namespace mem
{

/** Banked FR-FCFS DRAM controller model. */
class DdrBackend : public MemBackend
{
  public:
    /**
     * Controller geometry and timing. Defaults approximate a DDR4
     * part behind a 3 GHz core clock (all times in core cycles), so
     * a row hit costs tCAS + tBurst = 50 cycles and a closed-row
     * access tRCD + tCAS + tBurst = 92 — deliberately bracketing the
     * paper's fixed 300-cycle sink from below once queueing is added.
     */
    struct Params
    {
        int channels = 2;
        int ranksPerChannel = 2;
        int banksPerRank = 8;
        /** Row-buffer width [bytes]; blocks of one row are adjacent. */
        int rowBytes = 8192;
        Cycles tRCD = 42;   ///< activate -> column command
        Cycles tRP = 42;    ///< precharge
        Cycles tCAS = 42;   ///< column access
        Cycles tBurst = 8;  ///< 64 B data burst on the channel bus
        Cycles tREFI = 23'400; ///< refresh interval (0 disables)
        Cycles tRFC = 1'050;   ///< refresh cycle time (banks blocked)
        /** Bounded per-channel command queue (backpressure beyond). */
        int queueDepth = 16;
        /** True: plain FCFS; false: FR-FCFS (row hits first). */
        bool fcfs = false;
        /** True: precharge after every access (close-page policy). */
        bool closedPage = false;
        /** Extra bank cycles while a stuck-at DRAM bank fault holds. */
        Cycles stuckBankPenalty = 500;
    };

    DdrBackend(EventQueue &eq, stats::StatGroup *parent,
               const Params &params, fault::Injector *injector = nullptr);

    void read(Addr block_addr, Tick now, RespCallback cb) override;
    void write(Addr block_addr, Tick now) override;
    int inService() const override { return outstanding; }
    std::string backendName() const override { return "ddr"; }

    const Params &params() const { return p; }
    /** Banks per channel (ranks folded in: rank-interleaved banks). */
    int banksPerChannel() const { return banksPerChan; }

    // Controller stats beyond the MemBackend base set. The per-phase
    // distributions partition each request's end-to-end latency
    // exactly: lat_queue + lat_bank + lat_bus sums (and counts) match
    // the service totals, and for demand reads the per-request sum
    // equals the L2's lat_dram sample for that miss.
    stats::Scalar rowHits;
    stats::Scalar rowMisses;
    stats::Scalar rowConflicts;
    stats::Scalar refreshes;
    stats::Scalar stuckBankAccesses;
    stats::Distribution queueLatency;
    stats::Distribution bankLatency;
    stats::Distribution busLatency;

  private:
    struct Bank
    {
        Tick readyAt = 0;
        /** Open row index, or -1 when precharged. */
        std::int64_t openRow = -1;
    };

    struct Cmd
    {
        Addr block = 0;
        int bank = 0;
        std::int64_t row = 0;
        Tick arrival = 0;
        RespCallback cb; // empty for writes
    };

    struct Channel
    {
        std::vector<Bank> banks;
        /** Bounded command queue, arrival order. */
        std::deque<Cmd> queue;
        /** Backpressured overflow, drained into queue as slots free. */
        std::deque<Cmd> spill;
        Tick busFreeAt = 0;
        Tick nextRefreshAt = 0;
        /** Earliest pending wakeup (dedups kick events). */
        Tick pendingKickAt = MaxTick;
    };

    void enqueue(Cmd cmd, Tick now);
    void tryIssue(int ch_idx, Tick now);
    void serviceCmd(int ch_idx, Channel &ch, Cmd cmd, Tick now);
    void applyRefresh(Channel &ch, Tick now);
    void scheduleKick(int ch_idx, Tick when);
    /** Index into ch.queue of the next command, or -1 if none ready. */
    int pickCandidate(const Channel &ch, Tick now) const;

    int
    globalBank(int ch_idx, int bank_idx) const
    {
        return ch_idx * banksPerChan + bank_idx;
    }

    Params p;
    fault::Injector *injector;
    int banksPerChan;
    std::uint64_t blocksPerRow;
    std::vector<Channel> channels;
    /** Requests accepted and not yet completed (reads and writes). */
    int outstanding = 0;

    /** Per-DRAM-bank busy cycles; built when spatial telemetry is on. */
    std::unique_ptr<metrics::Heatmap> bankBusyHeatmap;
};

} // namespace mem
} // namespace tlsim

#endif // TLSIM_MEM_DDR_HH
