/**
 * @file
 * Abstract interface and shared statistics for the 16 MB L2 cache
 * designs compared in the paper (SNUCA2, DNUCA, TLC family).
 */

#ifndef TLSIM_MEM_L2CACHE_HH
#define TLSIM_MEM_L2CACHE_HH

#include <iosfwd>
#include <string>

#include "mem/membackend.hh"
#include "mem/request.hh"
#include "sim/eventq.hh"
#include "sim/pdes/partition.hh"
#include "sim/stats.hh"
#include "sim/trace/breakdown.hh"

namespace tlsim
{
namespace mem
{

/**
 * Base class for all L2 designs.
 *
 * A design receives block-granularity accesses from the L1s, models
 * its internal interconnect/bank timing, fetches misses from DRAM,
 * and fires the callback when the critical word is delivered to the
 * requester. Writes (L1 writebacks) are fire-and-forget: the callback
 * is invoked when the write is accepted.
 *
 * Subclasses must sample the shared stats so the Table 6 / Table 9 /
 * Figure 6 / Figure 7 experiments can treat designs uniformly.
 */
class L2Cache : public stats::StatGroup
{
  protected:
    EventQueue &eventq;
    MemBackend &dram;

  public:
    L2Cache(const std::string &name, EventQueue &eq,
            stats::StatGroup *parent, MemBackend &dram_)
        : stats::StatGroup(name, parent), eventq(eq), dram(dram_),
          requests(this, "requests", "L2 requests received"),
          demandRequests(this, "demand_requests",
                         "L2 read (load/ifetch) requests"),
          hits(this, "hits", "L2 hits"),
          misses(this, "misses", "L2 demand misses"),
          inserts(this, "inserts", "blocks inserted from memory"),
          writebacksToMemory(this, "writebacks",
                             "dirty L2 victims written to memory"),
          lookupLatency(this, "lookup_latency",
                        "cycles from L2 access to hit delivery or "
                        "miss determination"),
          predictableLookups(this, "predictable_lookups",
                             "lookups whose latency matched the "
                             "static prediction"),
          banksAccessed(this, "banks_accessed",
                        "cache banks touched per request"),
          networkEnergy(this, "network_energy",
                        "dynamic energy dissipated in the L2 "
                        "communication network [J]"),
          linkBusyCycles(this, "link_busy_cycles",
                         "total busy cycles summed over all links"),
          queueWaitLatency(this, "lat_queue_wait",
                           "per-request cycles waiting for busy "
                           "links/banks/slots", 0.0, 600.0, 60),
          wireLatency(this, "lat_wire",
                      "per-request cycles in flight or serializing "
                      "on the interconnect", 0.0, 600.0, 60),
          bankLatency(this, "lat_bank",
                      "per-request SRAM bank-access cycles on the "
                      "critical path", 0.0, 600.0, 60),
          dramLatency(this, "lat_dram",
                      "per-request cycles from miss determination "
                      "to data back on chip", 0.0, 600.0, 60),
          linkRetries(this, "link_retries",
                      "response messages resent after a CRC-detected "
                      "link error"),
          linkTimeouts(this, "link_timeouts",
                       "requests that exhausted their retry budget "
                       "or timed out and degraded to memory"),
          degradedRequests(this, "degraded_requests",
                           "requests served over a degraded path "
                           "(dead link fallback or detour)"),
          faultLatency(this, "lat_fault",
                       "per-request cycles spent on resilience: CRC "
                       "checks, retries, degraded-path detours",
                       0.0, 600.0, 60)
    {}

    ~L2Cache() override = default;

    /**
     * Access the L2.
     * @param req The request; req.issued is the issue tick, req.id a
     *            hierarchy-wide trace id (0 for writebacks), and
     *            req.requester the originating core.
     * @param cb Fires when the access completes (see class comment).
     */
    virtual void access(const MemRequest &req, RespCallback cb) = 0;

    /**
     * Compatibility overload for callers predating MemRequest
     * plumbing (tests, examples): wraps the arguments and mints a
     * trace id locally for demand requests.
     */
    void
    access(Addr block_addr, AccessType type, Tick now, RespCallback cb)
    {
        MemRequest req{block_addr, type, now};
        if (!isWrite(type))
            req.id = compatIds.next();
        access(req, std::move(cb));
    }

    /** Total number of links in the design's network (for Fig 7). */
    virtual int linkCount() const = 0;

    /** Human-readable design name ("TLC", "DNUCA", ...). */
    virtual std::string designName() const = 0;

    /**
     * Timing-free access used for fast functional warmup (the paper
     * warms caches over 0.5-1 B instructions before measuring; doing
     * that with full timing would dominate simulation time). Updates
     * the design's replacement/placement state exactly as a timed
     * access would, without any events, contention, or stats.
     */
    virtual void accessFunctional(Addr block_addr, AccessType type) = 0;

    /**
     * Serialize the design's functional warm state — everything
     * accessFunctional mutates (tag arrays, LRU counters) — for the
     * harness's warm-state checkpoints (docs/SAMPLING.md). The
     * default declines; designs without an implementation simply
     * disable checkpointing, they never change behaviour.
     * @return true if a complete snapshot was written.
     */
    virtual bool saveWarmState(std::ostream &) const { return false; }

    /**
     * Restore state written by saveWarmState on a freshly built
     * design of the same configuration.
     * @return false on any mismatch (the caller discards the
     *         checkpoint and warms cold); the design's state is
     *         unspecified after a failed load.
     */
    virtual bool loadWarmState(std::istream &) { return false; }

    /**
     * Copy design-internal counters (mesh/link occupancy, network
     * energy) into the shared stats; call before reading them.
     */
    virtual void syncStats() {}

    /**
     * Reset design-internal counters at a measurement boundary (the
     * StatGroup reset handles the registered stats themselves).
     */
    virtual void beginMeasurement() {}

    /**
     * Partitioned-execution plan for @p domains event domains: which
     * of the design's structures can run in worker domains, and the
     * conservative lookahead bounding each window (see
     * sim/pdes/partition.hh). The default declines with a reason the
     * harness logs before running serial; declining never changes
     * results, only wall-clock time.
     */
    virtual pdes::PartitionPlan
    partitionPlan(int domains) const
    {
        pdes::PartitionPlan plan;
        (void)domains;
        plan.serialReason =
            designName() + " does not implement domain partitioning";
        return plan;
    }

    /**
     * Attach the executor a granted partitionPlan() produced (or
     * null to detach). Only called with a non-null executor when the
     * design's own plan was active; the design routes its
     * worker-domain events through it from then on.
     */
    virtual void setPartition(pdes::Executor *) {}

    /** Average link utilization over an interval of elapsed cycles. */
    double
    linkUtilization(Tick elapsed) const
    {
        if (elapsed == 0 || linkCount() == 0)
            return 0.0;
        return linkBusyCycles.value() /
               (static_cast<double>(linkCount()) *
                static_cast<double>(elapsed));
    }

    stats::Scalar requests;
    stats::Scalar demandRequests;
    stats::Scalar hits;
    stats::Scalar misses;
    stats::Scalar inserts;
    stats::Scalar writebacksToMemory;
    stats::Average lookupLatency;
    stats::Scalar predictableLookups;
    stats::Average banksAccessed;
    stats::Scalar networkEnergy;
    stats::Scalar linkBusyCycles;

    /** Latency-breakdown components (see sim/trace/breakdown.hh). */
    stats::Distribution queueWaitLatency;
    stats::Distribution wireLatency;
    stats::Distribution bankLatency;
    stats::Distribution dramLatency;

    /** Resilience-protocol counters (zero unless faults injected). */
    stats::Scalar linkRetries;
    stats::Scalar linkTimeouts;
    stats::Scalar degradedRequests;
    stats::Distribution faultLatency;

    /**
     * Dump design-internal congestion state (link busy horizons,
     * per-bank queue depths) for the deadlock watchdog's diagnostic.
     */
    virtual void dumpFaultDiagnostic() const {}

    /**
     * Breakdown of the most recently completed demand request; the
     * components sum to that request's end-to-end latency (see
     * tests/test_breakdown.cc).
     */
    const trace::LatencyBreakdown &
    lastBreakdown() const
    {
        return lastBreakdownValue;
    }

  protected:
    /** Sample one completed request's breakdown into the stats. */
    void
    recordBreakdown(const trace::LatencyBreakdown &bd)
    {
        queueWaitLatency.sample(bd.queueWait);
        wireLatency.sample(bd.wire);
        bankLatency.sample(bd.bank);
        dramLatency.sample(bd.dram);
        faultLatency.sample(bd.fault);
        lastBreakdownValue = bd;
    }

  private:
    trace::LatencyBreakdown lastBreakdownValue;
    /** Id source backing the compatibility overload only. */
    RequestIdSource compatIds;
};

} // namespace mem
} // namespace tlsim

#endif // TLSIM_MEM_L2CACHE_HH
