#include "mem/memregistry.hh"

#include <algorithm>
#include <sstream>
#include <unordered_map>
#include <utility>

#include "sim/logging.hh"

namespace tlsim::mem
{

// Registration hooks for the built-in backends, defined in their own
// translation units (dram.cc, ddr.cc). Referencing them here forces
// the linker to keep those objects even without WHOLE_ARCHIVE.
void registerFixedMemBackend();
void registerDdrMemBackend();

namespace
{

/**
 * Function-local static sidesteps init-order races with registrars.
 * Hashed, not ordered: build() looks a backend up per System
 * construction, and the few callers that need sorted names
 * (names(), error messages) sort explicitly.
 */
std::unordered_map<std::string, MemFactory> &
table()
{
    static std::unordered_map<std::string, MemFactory> backends;
    return backends;
}

/** Idempotently register the built-in backends. */
void
ensureBuiltins()
{
    static const bool once = [] {
        registerFixedMemBackend();
        registerDdrMemBackend();
        return true;
    }();
    (void)once;
}

std::string
knownList()
{
    std::ostringstream os;
    bool first = true;
    for (const auto &name : MemRegistry::names()) {
        if (!first)
            os << ", ";
        os << name;
        first = false;
    }
    return os.str();
}

} // namespace

void
MemRegistry::registerBackend(const std::string &name, MemFactory factory)
{
    auto [it, inserted] = table().emplace(name, std::move(factory));
    if (!inserted)
        fatal("memory backend '{}' registered twice", name);
}

std::unique_ptr<MemBackend>
MemRegistry::build(const std::string &name, const MemBuildContext &ctx)
{
    ensureBuiltins();
    auto it = table().find(name);
    if (it == table().end()) {
        fatal("unknown memory backend '{}'; known backends: {}", name,
              knownList());
    }
    return it->second(ctx);
}

bool
MemRegistry::known(const std::string &name)
{
    ensureBuiltins();
    return table().count(name) != 0;
}

std::vector<std::string>
MemRegistry::names()
{
    ensureBuiltins();
    std::vector<std::string> out;
    out.reserve(table().size());
    for (const auto &[name, factory] : table())
        out.push_back(name);
    std::sort(out.begin(), out.end());
    return out;
}

} // namespace tlsim::mem
