/**
 * @file
 * The "fixed" main-memory backend: fixed 300-cycle access latency
 * with a limit of 8 outstanding requests (paper Table 3); excess
 * requests queue. This is the default backend and is bit-identical
 * to the pre-registry hard-wired model.
 */

#ifndef TLSIM_MEM_DRAM_HH
#define TLSIM_MEM_DRAM_HH

#include <cstdint>
#include <deque>
#include <vector>

#include "mem/membackend.hh"

namespace tlsim
{
namespace mem
{

/**
 * A bandwidth-limited fixed-latency DRAM.
 */
class Dram : public MemBackend
{
  public:
    /**
     * @param eq Event queue driving the simulation.
     * @param parent Parent stats group.
     * @param latency Access latency in cycles.
     * @param max_outstanding Maximum requests in service at once.
     */
    Dram(EventQueue &eq, stats::StatGroup *parent,
         Cycles latency = 300, int max_outstanding = 8);

    void read(Addr block_addr, Tick now, RespCallback cb) override;

    /**
     * Issue a writeback; fire-and-forget but consumes an outstanding
     * slot (dirty evictions contend with demand misses). Writebacks
     * sample queueDelay exactly like reads (regression-tested).
     */
    void write(Addr block_addr, Tick now) override;

    /** Requests currently in service (excludes the waiting queue). */
    int inService() const override { return outstanding; }

    std::string backendName() const override { return "fixed"; }

  private:
    Cycles latency;
    int maxOutstanding;

    struct Pending
    {
        Tick ready; // earliest start (arrival at the controller)
        RespCallback cb; // empty for writes
    };

    void startNext(Tick now);
    void finish(Tick now, RespCallback cb);

    /**
     * Pre-allocated intrusive completion event; one per outstanding
     * slot, so the pool never runs dry (the lambda path backs it up
     * defensively). Moving the RespCallback in and out transfers its
     * buffer without allocating. Owned by the Dram, never the queue.
     */
    class FinishEvent : public Event
    {
      public:
        explicit FinishEvent(Dram &owner_) : owner(owner_) {}

        void process() override;
        const char *name() const override { return "DramFinishEvent"; }

        RespCallback cb;

      private:
        Dram &owner;
    };

    std::deque<FinishEvent> finishEvents;
    std::vector<FinishEvent *> finishEventFree;

    int outstanding = 0;
    std::deque<Pending> waiting;
};

} // namespace mem
} // namespace tlsim

#endif // TLSIM_MEM_DRAM_HH
