#include "mem/ddr.hh"

#include <algorithm>

#include "mem/memregistry.hh"
#include "sim/fault/injector.hh"
#include "sim/logging.hh"
#include "sim/prof/prof.hh"
#include "sim/trace/debug.hh"
#include "sim/trace/tracesink.hh"

namespace tlsim
{
namespace mem
{

DdrBackend::DdrBackend(EventQueue &eq, stats::StatGroup *parent,
                       const Params &params, fault::Injector *injector_)
    : MemBackend(eq, parent),
      rowHits(this, "row_hits", "accesses hitting an open row buffer"),
      rowMisses(this, "row_misses",
                "accesses to a precharged (closed) bank"),
      rowConflicts(this, "row_conflicts",
                   "accesses that had to close another open row"),
      refreshes(this, "refreshes", "all-bank refresh operations"),
      stuckBankAccesses(this, "stuck_bank_accesses",
                        "accesses delayed by a stuck-at DRAM bank"),
      queueLatency(this, "lat_queue",
                   "per-request cycles queued at the controller before "
                   "the bank command issued",
                   0.0, 600.0, 60),
      bankLatency(this, "lat_bank",
                  "per-request DRAM bank cycles (activate/precharge/"
                  "column access)",
                  0.0, 600.0, 60),
      busLatency(this, "lat_bus",
                 "per-request channel data-bus cycles",
                 0.0, 600.0, 60),
      p(params), injector(injector_)
{
    TLSIM_ASSERT(p.channels >= 1, "ddr: need at least one channel");
    TLSIM_ASSERT(p.ranksPerChannel >= 1, "ddr: need at least one rank");
    TLSIM_ASSERT(p.banksPerRank >= 1, "ddr: need at least one bank");
    TLSIM_ASSERT(p.queueDepth >= 1, "ddr: queueDepth must be positive");
    TLSIM_ASSERT(p.tBurst >= 1, "ddr: tBurst must be positive");
    TLSIM_ASSERT(p.rowBytes >= static_cast<int>(blockBytes) &&
                     p.rowBytes % static_cast<int>(blockBytes) == 0,
                 "ddr: rowBytes must be a multiple of the {} B block",
                 blockBytes);

    banksPerChan = p.ranksPerChannel * p.banksPerRank;
    blocksPerRow = static_cast<std::uint64_t>(p.rowBytes) / blockBytes;

    channels.resize(static_cast<std::size_t>(p.channels));
    for (Channel &ch : channels) {
        ch.banks.resize(static_cast<std::size_t>(banksPerChan));
        ch.nextRefreshAt = p.tREFI; // 0 disables refresh entirely
    }

    if (metrics::spatialEnabled) {
        bankBusyHeatmap = std::make_unique<metrics::Heatmap>(
            this, "heatmap_dram_bank_busy",
            "busy cycles per DRAM bank (channel-major) per window",
            static_cast<std::size_t>(p.channels * banksPerChan));
    }
}

void
DdrBackend::read(Addr block_addr, Tick now, RespCallback cb)
{
    prof::Scope prof_scope("dram:read");
    TLSIM_DPRINTF(Dram, "t={} ddr read block {} ({} outstanding)", now,
                  block_addr, outstanding);
    ++reads;
    enqueue(Cmd{block_addr, 0, 0, now, std::move(cb)}, now);
}

void
DdrBackend::write(Addr block_addr, Tick now)
{
    prof::Scope prof_scope("dram:write");
    TLSIM_DPRINTF(Dram, "t={} ddr write block {} ({} outstanding)", now,
                  block_addr, outstanding);
    ++writes;
    enqueue(Cmd{block_addr, 0, 0, now, RespCallback{}}, now);
}

void
DdrBackend::enqueue(Cmd cmd, Tick now)
{
    // Address map (block granularity): channel bits lowest for
    // bus-level parallelism on streams, then the column within a row
    // (so consecutive blocks of a channel share a row and hit its
    // buffer), then bank, then row.
    auto ch_idx = static_cast<int>(cmd.block %
                                   static_cast<Addr>(p.channels));
    Addr rest = cmd.block / static_cast<Addr>(p.channels);
    Addr in_bank = rest / blocksPerRow;
    cmd.bank = static_cast<int>(in_bank %
                                static_cast<Addr>(banksPerChan));
    cmd.row = static_cast<std::int64_t>(
        in_bank / static_cast<Addr>(banksPerChan));

    Channel &ch = channels[static_cast<std::size_t>(ch_idx)];
    applyRefresh(ch, now);
    ++outstanding;
    if (static_cast<int>(ch.queue.size()) < p.queueDepth)
        ch.queue.push_back(std::move(cmd));
    else
        ch.spill.push_back(std::move(cmd));
    tryIssue(ch_idx, now);
}

void
DdrBackend::applyRefresh(Channel &ch, Tick now)
{
    if (p.tREFI == 0 || now < ch.nextRefreshAt)
        return;
    // O(1) catch-up across idle gaps: fold every elapsed refresh into
    // the counter, but charge only the last one's tRFC blocking (the
    // earlier ones completed in the past on an idle channel).
    std::uint64_t due = (now - ch.nextRefreshAt) / p.tREFI + 1;
    Tick last = ch.nextRefreshAt + (due - 1) * p.tREFI;
    refreshes += static_cast<double>(due);
    for (Bank &bank : ch.banks) {
        bank.readyAt = std::max(bank.readyAt, last) + p.tRFC;
        bank.openRow = -1;
    }
    ch.nextRefreshAt = last + p.tREFI;
}

int
DdrBackend::pickCandidate(const Channel &ch, Tick now) const
{
    if (p.fcfs) {
        const Cmd &head = ch.queue.front();
        auto bank_idx = static_cast<std::size_t>(head.bank);
        return ch.banks[bank_idx].readyAt <= now ? 0 : -1;
    }
    // FR-FCFS: oldest ready row hit first, else oldest ready command.
    int first_ready = -1;
    for (int i = 0; i < static_cast<int>(ch.queue.size()); ++i) {
        const Cmd &cmd = ch.queue[static_cast<std::size_t>(i)];
        const Bank &bank = ch.banks[static_cast<std::size_t>(cmd.bank)];
        if (bank.readyAt > now)
            continue;
        if (!p.closedPage && bank.openRow == cmd.row)
            return i;
        if (first_ready < 0)
            first_ready = i;
    }
    return first_ready;
}

void
DdrBackend::tryIssue(int ch_idx, Tick now)
{
    Channel &ch = channels[static_cast<std::size_t>(ch_idx)];
    applyRefresh(ch, now);
    if (ch.queue.empty())
        return;
    if (ch.busFreeAt > now) {
        scheduleKick(ch_idx, ch.busFreeAt);
        return;
    }
    int idx = pickCandidate(ch, now);
    if (idx < 0) {
        // Every candidate's bank is busy (or refreshing); wake when
        // the earliest relevant bank frees and re-evaluate.
        Tick wake = MaxTick;
        if (p.fcfs) {
            const Cmd &head = ch.queue.front();
            wake = ch.banks[static_cast<std::size_t>(head.bank)].readyAt;
        } else {
            for (const Cmd &cmd : ch.queue) {
                wake = std::min(
                    wake,
                    ch.banks[static_cast<std::size_t>(cmd.bank)].readyAt);
            }
        }
        TLSIM_ASSERT(wake > now && wake != MaxTick,
                     "ddr: stalled channel has no wakeup");
        scheduleKick(ch_idx, wake);
        return;
    }

    Cmd cmd = std::move(ch.queue[static_cast<std::size_t>(idx)]);
    ch.queue.erase(ch.queue.begin() + idx);
    if (!ch.spill.empty()) {
        ch.queue.push_back(std::move(ch.spill.front()));
        ch.spill.pop_front();
    }
    serviceCmd(ch_idx, ch, std::move(cmd), now);
    if (!ch.queue.empty())
        scheduleKick(ch_idx, ch.busFreeAt);
}

void
DdrBackend::serviceCmd(int ch_idx, Channel &ch, Cmd cmd, Tick now)
{
    Bank &bank = ch.banks[static_cast<std::size_t>(cmd.bank)];
    TLSIM_ASSERT(bank.readyAt <= now && ch.busFreeAt <= now,
                 "ddr: issued command to a busy bank or bus");

    Cycles bank_cycles;
    if (!p.closedPage && bank.openRow == cmd.row) {
        ++rowHits;
        bank_cycles = p.tCAS;
    } else if (bank.openRow < 0) {
        ++rowMisses;
        bank_cycles = p.tRCD + p.tCAS;
    } else {
        ++rowConflicts;
        bank_cycles = p.tRP + p.tRCD + p.tCAS;
    }
    if (injector &&
        injector->dramBankStuck(globalBank(ch_idx, cmd.bank), now)) {
        ++stuckBankAccesses;
        bank_cycles += p.stuckBankPenalty;
    }

    Tick bank_done = now + bank_cycles;
    Tick finish = bank_done + p.tBurst;
    bank.readyAt = finish;
    bank.openRow = p.closedPage ? -1 : cmd.row;
    ch.busFreeAt = finish;

    // Exact-sum latency partition: queue + bank + bus == finish -
    // arrival for every request, read or write.
    queueDelay.sample(static_cast<double>(now - cmd.arrival));
    queueLatency.sample(static_cast<double>(now - cmd.arrival));
    bankLatency.sample(static_cast<double>(bank_cycles));
    busLatency.sample(static_cast<double>(p.tBurst));

    if (bankBusyHeatmap) {
        bankBusyHeatmap->add(
            static_cast<std::size_t>(globalBank(ch_idx, cmd.bank)), now,
            finish - now);
    }

    if (auto *sink = trace::TraceSink::active()) {
        if (now > cmd.arrival) {
            sink->span(trace::cat::dram, "queued", cmd.arrival, now,
                       trace::tid::dram);
        }
        sink->span(trace::cat::dram, cmd.cb ? "read" : "write", now,
                   finish, trace::tid::dram);
    }

    eventq.scheduleCallback(finish,
                            [this, cb = std::move(cmd.cb)](Tick t) {
                                --outstanding;
                                if (cb)
                                    cb(t);
                            });
}

void
DdrBackend::scheduleKick(int ch_idx, Tick when)
{
    Channel &ch = channels[static_cast<std::size_t>(ch_idx)];
    if (ch.pendingKickAt <= when)
        return; // an earlier wakeup will re-evaluate anyway
    ch.pendingKickAt = when;
    eventq.scheduleFunc(when, [this, ch_idx, when] {
        Channel &chan = channels[static_cast<std::size_t>(ch_idx)];
        if (chan.pendingKickAt == when)
            chan.pendingKickAt = MaxTick;
        tryIssue(ch_idx, when);
    });
}

/**
 * Registration hook called from memregistry.cc (see the WHOLE_ARCHIVE
 * note there). Every Params field is exposed as an option under its
 * own name; booleans take 0/1.
 */
void
registerDdrMemBackend()
{
    static const char *const known[] = {
        "channels", "ranksPerChannel", "banksPerRank", "rowBytes",
        "tRCD", "tRP", "tCAS", "tBurst", "tREFI", "tRFC",
        "queueDepth", "fcfs", "closedPage", "stuckBankPenalty",
        nullptr};
    static const MemRegistrar registrar{
        "ddr", [](const MemBuildContext &ctx) {
            conf::rejectUnknownOptions("memory backend 'ddr'",
                                       ctx.options, known);
            DdrBackend::Params p;
            auto intOpt = [&](const char *key, int fallback) {
                return static_cast<int>(conf::optionOr(
                    ctx.options, key, static_cast<double>(fallback)));
            };
            auto cycOpt = [&](const char *key, Cycles fallback) {
                return static_cast<Cycles>(conf::optionOr(
                    ctx.options, key, static_cast<double>(fallback)));
            };
            p.channels = intOpt("channels", p.channels);
            p.ranksPerChannel =
                intOpt("ranksPerChannel", p.ranksPerChannel);
            p.banksPerRank = intOpt("banksPerRank", p.banksPerRank);
            p.rowBytes = intOpt("rowBytes", p.rowBytes);
            p.tRCD = cycOpt("tRCD", p.tRCD);
            p.tRP = cycOpt("tRP", p.tRP);
            p.tCAS = cycOpt("tCAS", p.tCAS);
            p.tBurst = cycOpt("tBurst", p.tBurst);
            p.tREFI = cycOpt("tREFI", p.tREFI);
            p.tRFC = cycOpt("tRFC", p.tRFC);
            p.queueDepth = intOpt("queueDepth", p.queueDepth);
            p.fcfs = conf::optionOr(ctx.options, "fcfs", 0.0) != 0.0;
            p.closedPage =
                conf::optionOr(ctx.options, "closedPage", 0.0) != 0.0;
            p.stuckBankPenalty =
                cycOpt("stuckBankPenalty", p.stuckBankPenalty);
            return std::make_unique<DdrBackend>(ctx.eq, ctx.parent, p,
                                                ctx.injector);
        }};
}

} // namespace mem
} // namespace tlsim
