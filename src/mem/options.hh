/**
 * @file
 * Flat name -> value option maps shared by the pluggable component
 * registries (L2 designs, memory backends).
 *
 * Implemented as a sorted vector rather than std::map: option sets
 * are tiny (a handful of knobs) but consulted on config-hash and
 * build paths, where the flat layout beats pointer-chasing nodes.
 * Iteration stays in sorted key order — SystemConfig::canonicalKey
 * and the JSON writer depend on that, and changing it would silently
 * invalidate every on-disk ResultCache entry.
 */

#ifndef TLSIM_MEM_OPTIONS_HH
#define TLSIM_MEM_OPTIONS_HH

#include <algorithm>
#include <initializer_list>
#include <string>
#include <utility>
#include <vector>

namespace tlsim
{
namespace conf
{

/**
 * Component-specific knobs as a flat name -> value map (e.g.
 * "lineErrorRate": 1e-12, "tCAS": 42). Components reject unknown
 * keys so config typos fail loudly.
 */
class OptionMap
{
  public:
    using value_type = std::pair<std::string, double>;
    using const_iterator = std::vector<value_type>::const_iterator;

    OptionMap() = default;

    OptionMap(std::initializer_list<value_type> init)
    {
        for (const auto &kv : init)
            (*this)[kv.first] = kv.second;
    }

    /** Insert-or-find, map-style. New keys start at 0.0. */
    double &
    operator[](const std::string &key)
    {
        auto it = lowerBound(key);
        if (it == entries.end() || it->first != key)
            it = entries.insert(it, value_type{key, 0.0});
        return it->second;
    }

    const_iterator
    find(const std::string &key) const
    {
        auto it = lowerBound(key);
        return (it != entries.end() && it->first == key) ? it
                                                         : entries.end();
    }

    std::size_t
    count(const std::string &key) const
    {
        return find(key) == entries.end() ? 0 : 1;
    }

    bool empty() const { return entries.empty(); }
    std::size_t size() const { return entries.size(); }
    const_iterator begin() const { return entries.begin(); }
    const_iterator end() const { return entries.end(); }

    bool operator==(const OptionMap &other) const = default;

  private:
    std::vector<value_type>::iterator
    lowerBound(const std::string &key)
    {
        return std::lower_bound(entries.begin(), entries.end(), key,
                                [](const value_type &e,
                                   const std::string &k) {
                                    return e.first < k;
                                });
    }

    const_iterator
    lowerBound(const std::string &key) const
    {
        return std::lower_bound(entries.begin(), entries.end(), key,
                                [](const value_type &e,
                                   const std::string &k) {
                                    return e.first < k;
                                });
    }

    /** Kept sorted by key at all times. */
    std::vector<value_type> entries;
};

/**
 * Fetch an option by key, or the default when absent. Pair with
 * rejectUnknownOptions so misspelled keys still fail.
 */
double optionOr(const OptionMap &options, const std::string &key,
                double fallback);

/**
 * Fatal error if @p options contains a key outside @p known
 * (null-terminated array of option names the component accepts).
 * @p component is the full label used in the error message, e.g.
 * "L2 design 'TLC'" or "memory backend 'ddr'".
 */
void rejectUnknownOptions(const std::string &component,
                          const OptionMap &options,
                          const char *const *known);

} // namespace conf
} // namespace tlsim

#endif // TLSIM_MEM_OPTIONS_HH
