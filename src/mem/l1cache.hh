/**
 * @file
 * First-level cache model (64 KB, 2-way, 3-cycle hit; paper Table 3)
 * with MSHR-based miss handling in front of a pluggable L2 design.
 */

#ifndef TLSIM_MEM_L1CACHE_HH
#define TLSIM_MEM_L1CACHE_HH

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "mem/l2cache.hh"
#include "mem/request.hh"
#include "mem/setassoc.hh"
#include "sim/eventq.hh"
#include "sim/fault/watchdog.hh"
#include "sim/stats.hh"

namespace tlsim
{
namespace mem
{

/**
 * A blocking-free L1 cache: hits complete in a fixed latency, misses
 * allocate an MSHR and fetch the block from the L2. Requests to a
 * block with an outstanding MSHR coalesce onto it; when all MSHRs are
 * busy, further misses queue until one frees.
 *
 * Dirty victims are written back to the L2 (which treats them as
 * tag-comparison-free stores, per the paper).
 */
class L1Cache : public stats::StatGroup
{
  public:
    /**
     * @param name Stats name ("l1d" / "l1i").
     * @param eq Event queue.
     * @param parent Parent stats group.
     * @param l2 The L2 design behind this cache.
     * @param capacity_bytes Capacity (default 64 KB).
     * @param ways Associativity (default 2).
     * @param hit_latency Hit latency in cycles (default 3).
     * @param num_mshrs Outstanding misses supported (default 8).
     * @param requester Core id stamped on requests sent to the L2.
     * @param ids Shared id mint; null uses a private one (tests).
     */
    L1Cache(const std::string &name, EventQueue &eq,
            stats::StatGroup *parent, L2Cache &l2,
            std::uint64_t capacity_bytes = 64 * 1024, int ways = 2,
            Cycles hit_latency = 3, int num_mshrs = 8,
            int requester = 0, RequestIdSource *ids = nullptr);

    /**
     * Access the cache at block granularity.
     * @param req The request (req.issued is the issue tick; req.id is
     *            ignored — the L1 mints ids for L2-bound misses).
     * @param cb Fires when the data is available (loads) or the
     *           write is accepted (stores).
     */
    void access(const MemRequest &req, RespCallback cb);

    /** Compatibility overload wrapping the loose argument list. */
    void
    access(Addr block_addr, AccessType type, Tick now, RespCallback cb)
    {
        access(MemRequest{block_addr, type, now, requesterId},
               std::move(cb));
    }

    /**
     * Timing-free access for functional warmup: updates the tag
     * array and forwards misses and dirty writebacks to the L2's
     * functional interface.
     */
    void accessFunctional(Addr block_addr, AccessType type);

    /** Number of misses currently outstanding. */
    int outstandingMisses() const { return static_cast<int>(
        mshrs.size()); }

    /**
     * Serialize the functional warm state (tag array + LRU counter)
     * for warm-state checkpoints; the timing-side state (MSHRs, wait
     * queue) is empty outside a timed run and is not captured.
     */
    void saveWarmState(std::ostream &os) const;

    /**
     * Restore state written by saveWarmState.
     * @return false on mismatch (caller discards the checkpoint).
     */
    bool loadWarmState(std::istream &is);

    /**
     * Attach the deadlock watchdog: every MSHR allocation reports an
     * outstanding request under @p client_id, every fill completes it.
     */
    void
    setWatchdog(fault::Watchdog *wd, int client_id)
    {
        watchdog = wd;
        watchdogClient = client_id;
    }

  private:
    EventQueue &eventq;
    L2Cache &l2;
    SetAssocArray array;
    Cycles hitLatency;
    int numMshrs;
    int requesterId;
    RequestIdSource *idSource;
    RequestIdSource privateIds;

  public:
    stats::Scalar accesses;
    stats::Scalar hits;
    stats::Scalar misses;
    stats::Scalar coalescedMisses;
    stats::Scalar writebacks;
    stats::Scalar mshrStallCycles;

  private:
    struct Mshr
    {
        bool storeMiss = false;
        Tick started = 0; // allocation tick, for trace spans
        std::vector<RespCallback> targets;
    };

    struct WaitingAccess
    {
        Addr blockAddr;
        AccessType type;
        Tick queuedAt;
        RespCallback cb;
    };

    void startMiss(Addr block_addr, AccessType type, Tick now);
    void handleFill(Addr block_addr, Tick now);
    void issueMiss(const MemRequest &l2_req);

    /**
     * Pre-allocated intrusive event carrying one L2-bound miss from
     * the tag check to its departure tick. One per MSHR: a miss only
     * schedules while its MSHR is held, so the pool never runs dry
     * (the lambda path backs it up defensively). Owned by the cache,
     * never by the queue — the Entry's selfDel snapshot keeps queue
     * teardown from touching these after the cache is gone.
     */
    class MissEvent : public Event
    {
      public:
        explicit MissEvent(L1Cache &owner_) : owner(owner_) {}

        void process() override;
        const char *name() const override { return "L1MissEvent"; }

        MemRequest req{};

      private:
        L1Cache &owner;
    };

    std::deque<MissEvent> missEvents;
    std::vector<MissEvent *> missEventFree;

    std::uint64_t useCounter = 0;
    std::unordered_map<Addr, Mshr> mshrs;
    std::deque<WaitingAccess> waitQueue;
    fault::Watchdog *watchdog = nullptr;
    int watchdogClient = -1;
};

} // namespace mem
} // namespace tlsim

#endif // TLSIM_MEM_L1CACHE_HH
