#include "mem/options.hh"

#include <sstream>

#include "sim/logging.hh"

namespace tlsim
{
namespace conf
{

double
optionOr(const OptionMap &options, const std::string &key,
         double fallback)
{
    auto it = options.find(key);
    return it == options.end() ? fallback : it->second;
}

void
rejectUnknownOptions(const std::string &component,
                     const OptionMap &options,
                     const char *const *known)
{
    for (const auto &[key, value] : options) {
        bool ok = false;
        for (const char *const *k = known; *k; ++k) {
            if (key == *k) {
                ok = true;
                break;
            }
        }
        if (!ok) {
            std::ostringstream accepted;
            for (const char *const *k = known; *k; ++k) {
                if (k != known)
                    accepted << ", ";
                accepted << *k;
            }
            fatal("{} does not accept option '{}' (accepted: {})",
                  component, key, accepted.str());
        }
    }
}

} // namespace conf
} // namespace tlsim
