/**
 * @file
 * Self-registering string -> factory registry for main-memory
 * backends, mirroring the L2 design registry (mem/l2registry.hh).
 *
 * Built-in backends register through named hook functions referenced
 * from the registry translation unit rather than file-scope
 * registrars: tlsim_mem is linked plainly (no WHOLE_ARCHIVE) by
 * several targets, so a pure static-initializer registrar could be
 * dropped by the linker. Out-of-tree or test-local backends can still
 * use a MemRegistrar, which works from any object the linker keeps.
 */

#ifndef TLSIM_MEM_MEMREGISTRY_HH
#define TLSIM_MEM_MEMREGISTRY_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "mem/membackend.hh"
#include "mem/options.hh"

namespace tlsim
{

namespace fault
{
class Injector;
} // namespace fault

namespace mem
{

/** Everything a backend factory needs to build a memory model. */
struct MemBuildContext
{
    EventQueue &eq;
    stats::StatGroup *parent;
    const conf::OptionMap &options;
    /** Per-run fault source; null when fault injection is disabled. */
    fault::Injector *injector = nullptr;
};

/** Factory signature each backend registers. */
using MemFactory =
    std::function<std::unique_ptr<MemBackend>(const MemBuildContext &)>;

/**
 * The global backend registry. All members are static; the backing
 * map is a function-local static so registration from constructors
 * is order-safe.
 */
class MemRegistry
{
  public:
    /**
     * Register a factory under a backend name; duplicate names are a
     * fatal error.
     */
    static void registerBackend(const std::string &name,
                                MemFactory factory);

    /**
     * Build the named backend. Unknown names are a fatal error that
     * lists every registered backend.
     */
    static std::unique_ptr<MemBackend>
    build(const std::string &name, const MemBuildContext &ctx);

    /** True if a backend with this name has been registered. */
    static bool known(const std::string &name);

    /** All registered backend names, sorted. */
    static std::vector<std::string> names();
};

/** Helper: constructing one registers a backend. */
struct MemRegistrar
{
    MemRegistrar(const std::string &name, MemFactory factory)
    {
        MemRegistry::registerBackend(name, std::move(factory));
    }
};

} // namespace mem
} // namespace tlsim

#endif // TLSIM_MEM_MEMREGISTRY_HH
