/**
 * @file
 * Generic set-associative tag array with LRU replacement.
 *
 * Used for the L1 caches and for the SNUCA2/TLC L2 banks (the DNUCA
 * bank-set structure in src/nuca builds on the same line state).
 */

#ifndef TLSIM_MEM_SETASSOC_HH
#define TLSIM_MEM_SETASSOC_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace tlsim
{
namespace mem
{

/** State of one cache line frame. */
struct LineState
{
    Addr tag = 0;
    bool valid = false;
    bool dirty = false;
    /** LRU timestamp (monotonic counter supplied by the caller). */
    std::uint64_t lastUse = 0;
};

/** Result of an insertion: the victim, if a valid line was evicted. */
struct Eviction
{
    Addr blockAddr = 0;
    bool dirty = false;
};

/**
 * A set-associative array of tags with true-LRU replacement.
 *
 * The array is indexed by low block-address bits; the caller supplies
 * a monotonically increasing use counter for LRU ordering so multiple
 * arrays can share one logical clock.
 */
class SetAssocArray
{
  public:
    /**
     * @param num_sets Number of sets (power of two).
     * @param ways Associativity.
     */
    SetAssocArray(std::uint32_t num_sets, std::uint32_t ways)
        : numSets(num_sets), numWays(ways),
          lines(static_cast<std::size_t>(num_sets) * ways)
    {
        TLSIM_ASSERT(num_sets > 0 && (num_sets & (num_sets - 1)) == 0,
                     "numSets must be a power of two, got {}", num_sets);
        TLSIM_ASSERT(ways > 0, "ways must be positive");
    }

    std::uint32_t sets() const { return numSets; }
    std::uint32_t ways() const { return numWays; }

    /** Set index for a block address. */
    std::uint32_t
    setIndex(Addr block_addr) const
    {
        return static_cast<std::uint32_t>(block_addr & (numSets - 1));
    }

    /** Tag for a block address. */
    Addr tagOf(Addr block_addr) const { return block_addr >> setShift(); }

    /** Reconstruct the block address of a frame. */
    Addr
    blockAddrOf(std::uint32_t set, std::uint32_t way) const
    {
        const LineState &line = at(set, way);
        return (line.tag << setShift()) | set;
    }

    /** Find the way holding the block, if present. */
    std::optional<std::uint32_t>
    lookup(Addr block_addr) const
    {
        std::uint32_t set = setIndex(block_addr);
        Addr tag = tagOf(block_addr);
        for (std::uint32_t w = 0; w < numWays; ++w) {
            const LineState &line = at(set, w);
            if (line.valid && line.tag == tag)
                return w;
        }
        return std::nullopt;
    }

    /** Update LRU (and optionally dirty) state on a hit. */
    void
    touch(Addr block_addr, std::uint32_t way, std::uint64_t use_counter,
          bool make_dirty = false)
    {
        std::uint32_t set = setIndex(block_addr);
        LineState &line = at(set, way);
        TLSIM_ASSERT(line.valid && line.tag == tagOf(block_addr),
                     "touch of non-resident block");
        line.lastUse = use_counter;
        if (make_dirty)
            line.dirty = true;
    }

    /**
     * Insert a block, evicting the LRU line of its set if needed.
     * @return The eviction, if a valid line was displaced.
     */
    std::optional<Eviction>
    insert(Addr block_addr, std::uint64_t use_counter, bool dirty)
    {
        std::uint32_t set = setIndex(block_addr);
        std::uint32_t victim = victimWay(set);
        LineState &line = at(set, victim);
        std::optional<Eviction> evicted;
        if (line.valid) {
            evicted = Eviction{(line.tag << setShift()) | set,
                               line.dirty};
        }
        line.tag = tagOf(block_addr);
        line.valid = true;
        line.dirty = dirty;
        line.lastUse = use_counter;
        return evicted;
    }

    /**
     * Number of valid ways in the block's set whose low @p bits tag
     * bits match the block's partial tag (used by the optimized TLC
     * designs' in-bank partial-tag comparison).
     */
    int
    partialTagMatches(Addr block_addr, int bits) const
    {
        std::uint32_t set = setIndex(block_addr);
        Addr mask = (Addr(1) << bits) - 1;
        Addr ptag = tagOf(block_addr) & mask;
        int matches = 0;
        for (std::uint32_t w = 0; w < numWays; ++w) {
            const LineState &line = at(set, w);
            if (line.valid && (line.tag & mask) == ptag)
                ++matches;
        }
        return matches;
    }

    /** Invalidate a block if present; @return true if it was there. */
    bool
    invalidate(Addr block_addr)
    {
        auto way = lookup(block_addr);
        if (!way)
            return false;
        at(setIndex(block_addr), *way).valid = false;
        return true;
    }

    /** The way that insert() would victimize in this set. */
    std::uint32_t
    victimWay(std::uint32_t set) const
    {
        std::uint32_t victim = 0;
        std::uint64_t oldest = ~std::uint64_t(0);
        for (std::uint32_t w = 0; w < numWays; ++w) {
            const LineState &line = at(set, w);
            if (!line.valid)
                return w;
            if (line.lastUse < oldest) {
                oldest = line.lastUse;
                victim = w;
            }
        }
        return victim;
    }

    /** Direct frame access (used by the DNUCA bank-set structure). */
    LineState &
    at(std::uint32_t set, std::uint32_t way)
    {
        return lines[static_cast<std::size_t>(set) * numWays + way];
    }

    const LineState &
    at(std::uint32_t set, std::uint32_t way) const
    {
        return lines[static_cast<std::size_t>(set) * numWays + way];
    }

    /** Count of valid lines (O(n), for tests/stats). */
    std::uint64_t
    validCount() const
    {
        std::uint64_t n = 0;
        for (const auto &line : lines)
            n += line.valid ? 1 : 0;
        return n;
    }

  private:
    std::uint32_t setShift() const { return __builtin_ctz(numSets); }

    std::uint32_t numSets;
    std::uint32_t numWays;
    std::vector<LineState> lines;
};

} // namespace mem
} // namespace tlsim

#endif // TLSIM_MEM_SETASSOC_HH
