#include "mem/dram.hh"

namespace tlsim
{
namespace mem
{

Dram::Dram(EventQueue &eq, stats::StatGroup *parent, Cycles latency_,
           int max_outstanding)
    : stats::StatGroup("dram", parent), eventq(eq), latency(latency_),
      maxOutstanding(max_outstanding),
      reads(this, "reads", "DRAM read requests"),
      writes(this, "writes", "DRAM writeback requests"),
      queueDelay(this, "queue_delay",
                 "cycles spent waiting for an outstanding slot")
{}

void
Dram::read(Addr block_addr, Tick now, RespCallback cb)
{
    (void)block_addr;
    ++reads;
    waiting.push_back(Pending{now, std::move(cb)});
    startNext(now);
}

void
Dram::write(Addr block_addr, Tick now)
{
    (void)block_addr;
    ++writes;
    waiting.push_back(Pending{now, RespCallback{}});
    startNext(now);
}

void
Dram::startNext(Tick now)
{
    while (outstanding < maxOutstanding && !waiting.empty()) {
        Pending pending = std::move(waiting.front());
        waiting.pop_front();
        queueDelay.sample(static_cast<double>(now - pending.ready));
        ++outstanding;
        Tick done = now + latency;
        RespCallback cb = std::move(pending.cb);
        eventq.scheduleFunc(done, [this, cb = std::move(cb), done]() {
            finish(done, cb);
        });
    }
}

void
Dram::finish(Tick now, RespCallback cb)
{
    --outstanding;
    if (cb)
        cb(now);
    startNext(now);
}

} // namespace mem
} // namespace tlsim
