#include "mem/dram.hh"

#include "mem/memregistry.hh"
#include "sim/prof/prof.hh"
#include "sim/trace/debug.hh"
#include "sim/trace/tracesink.hh"

namespace tlsim
{
namespace mem
{

Dram::Dram(EventQueue &eq, stats::StatGroup *parent, Cycles latency_,
           int max_outstanding)
    : MemBackend(eq, parent), latency(latency_),
      maxOutstanding(max_outstanding)
{
    for (int i = 0; i < max_outstanding; ++i) {
        finishEvents.emplace_back(*this);
        finishEventFree.push_back(&finishEvents.back());
    }
}

void
Dram::read(Addr block_addr, Tick now, RespCallback cb)
{
    prof::Scope prof_scope("dram:read");
    TLSIM_DPRINTF(Dram, "t={} read block {} ({} in service)", now,
                  block_addr, outstanding);
    ++reads;
    waiting.push_back(Pending{now, std::move(cb)});
    startNext(now);
}

void
Dram::write(Addr block_addr, Tick now)
{
    prof::Scope prof_scope("dram:write");
    TLSIM_DPRINTF(Dram, "t={} write block {} ({} in service)", now,
                  block_addr, outstanding);
    ++writes;
    waiting.push_back(Pending{now, RespCallback{}});
    startNext(now);
}

void
Dram::startNext(Tick now)
{
    while (outstanding < maxOutstanding && !waiting.empty()) {
        Pending pending = std::move(waiting.front());
        waiting.pop_front();
        queueDelay.sample(static_cast<double>(now - pending.ready));
        ++outstanding;
        Tick done = now + latency;
        if (auto *sink = trace::TraceSink::active()) {
            if (now > pending.ready) {
                sink->span(trace::cat::dram, "queued", pending.ready,
                           now, trace::tid::dram);
            }
            sink->span(trace::cat::dram,
                       pending.cb ? "read" : "write", now, done,
                       trace::tid::dram);
        }
        RespCallback cb = std::move(pending.cb);
        if (useTypedHotPathEvents && !finishEventFree.empty()) {
            FinishEvent *ev = finishEventFree.back();
            finishEventFree.pop_back();
            ev->cb = std::move(cb);
            eventq.schedule(ev, done);
        } else {
            eventq.scheduleFunc(done,
                                [this, cb = std::move(cb), done]() {
                                    finish(done, cb);
                                });
        }
    }
}

void
Dram::FinishEvent::process()
{
    Tick t = when();
    RespCallback done_cb = std::move(cb);
    cb = nullptr;
    owner.finishEventFree.push_back(this);
    owner.finish(t, done_cb);
}

void
Dram::finish(Tick now, RespCallback cb)
{
    --outstanding;
    if (cb)
        cb(now);
    startNext(now);
}

/**
 * Registration hook called from memregistry.cc (see the WHOLE_ARCHIVE
 * note there). Options: "latency" (cycles, default 300) and
 * "maxOutstanding" (slots, default 8) — the paper Table 3 machine.
 */
void
registerFixedMemBackend()
{
    static const char *const known[] = {"latency", "maxOutstanding",
                                        nullptr};
    static const MemRegistrar registrar{
        "fixed", [](const MemBuildContext &ctx) {
            conf::rejectUnknownOptions("memory backend 'fixed'",
                                       ctx.options, known);
            auto latency = static_cast<Cycles>(
                conf::optionOr(ctx.options, "latency", 300.0));
            int slots = static_cast<int>(
                conf::optionOr(ctx.options, "maxOutstanding", 8.0));
            return std::make_unique<Dram>(ctx.eq, ctx.parent, latency,
                                          slots);
        }};
}

} // namespace mem
} // namespace tlsim
