#include "workload/tracefile.hh"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "sim/logging.hh"

namespace tlsim
{
namespace workload
{

namespace
{

// Control-byte layout (one per record):
//   bits 0-1  record kind: 0 = load, 1 = store, 2 = ifetch
//   bit  2    dependsOnPrev (data records)
//   bit  3    mispredict (ifetch records)
//   bits 4-7  gap, when < 15; 15 escapes to a varint gap field
constexpr std::uint8_t kindMask = 0x3;
constexpr std::uint8_t kindLoad = 0;
constexpr std::uint8_t kindStore = 1;
constexpr std::uint8_t kindIFetch = 2;
constexpr std::uint8_t depBit = 0x4;
constexpr std::uint8_t mispredictBit = 0x8;
constexpr std::uint8_t gapShift = 4;
constexpr std::uint32_t gapEscape = 15;

void
putVarint(std::vector<std::uint8_t> &out, std::uint64_t v)
{
    while (v >= 0x80) {
        out.push_back(static_cast<std::uint8_t>(v) | 0x80);
        v >>= 7;
    }
    out.push_back(static_cast<std::uint8_t>(v));
}

std::uint64_t
zigzag(std::int64_t v)
{
    return (static_cast<std::uint64_t>(v) << 1) ^
           static_cast<std::uint64_t>(v >> 63);
}

std::int64_t
unzigzag(std::uint64_t v)
{
    return static_cast<std::int64_t>(v >> 1) ^
           -static_cast<std::int64_t>(v & 1);
}

void
putU32(std::vector<std::uint8_t> &out, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void
putU64(std::vector<std::uint8_t> &out, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint32_t
getU32(const std::vector<std::uint8_t> &in, std::uint64_t off)
{
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(in[off + i]) << (8 * i);
    return v;
}

std::uint64_t
getU64(const std::vector<std::uint8_t> &in, std::uint64_t off)
{
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(in[off + i]) << (8 * i);
    return v;
}

std::uint64_t
fnv1a(const std::vector<std::uint8_t> &bytes)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (std::uint8_t b : bytes) {
        h ^= b;
        h *= 0x100000001b3ULL;
    }
    return h;
}

/** Decode one varint from trace bytes, advancing @p off. */
std::uint64_t
readVarint(const std::vector<std::uint8_t> &bytes, std::uint64_t &off,
           std::uint64_t end, const std::string &name)
{
    std::uint64_t v = 0;
    int shift = 0;
    while (true) {
        if (off >= end || shift > 63)
            fatal("tlt '{}': truncated or oversized varint at byte {}",
                  name, off);
        std::uint8_t b = bytes[off++];
        v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
        if ((b & 0x80) == 0)
            return v;
        shift += 7;
    }
}

/**
 * Decode the record at @p off (advancing it), updating the caller's
 * delta registers. Shared by the replay cursor, the loader's
 * validation pass, and the interval-signature scan.
 */
cpu::TraceRecord
decodeRecord(const std::vector<std::uint8_t> &bytes, std::uint64_t &off,
             std::uint64_t end, std::uint64_t &last_data,
             std::uint64_t &last_ifetch, const std::string &name)
{
    std::uint8_t control = bytes[off++];
    cpu::TraceRecord record;
    std::uint32_t small_gap = control >> gapShift;
    record.gap = small_gap == gapEscape
                     ? static_cast<std::uint32_t>(
                           readVarint(bytes, off, end, name))
                     : small_gap;
    std::uint64_t delta = readVarint(bytes, off, end, name);
    std::uint8_t kind = control & kindMask;
    if (kind == kindIFetch) {
        record.isIFetch = true;
        record.mispredict = (control & mispredictBit) != 0;
        last_ifetch = static_cast<std::uint64_t>(
            static_cast<std::int64_t>(last_ifetch) + unzigzag(delta));
        record.blockAddr = last_ifetch;
    } else {
        record.type = kind == kindStore ? mem::AccessType::Store
                                        : mem::AccessType::Load;
        record.dependsOnPrev = (control & depBit) != 0;
        last_data = static_cast<std::uint64_t>(
            static_cast<std::int64_t>(last_data) + unzigzag(delta));
        record.blockAddr = last_data;
    }
    return record;
}

std::uint64_t
instructionsOf(const cpu::TraceRecord &record)
{
    // Mirrors OoOCore::run / System::functionalWarm accounting: the
    // gap plus the data operation itself; ifetch events are free.
    return record.gap + (record.isIFetch ? 0 : 1);
}

} // namespace

TraceFileWriter::TraceFileWriter(std::uint32_t index_stride)
    : indexStride(index_stride)
{
    TLSIM_ASSERT(index_stride > 0, "index stride must be positive");
}

void
TraceFileWriter::append(const cpu::TraceRecord &record)
{
    TLSIM_ASSERT(!finished, "append after finish");
    if (records == 0 || instrSinceIndex >= indexStride) {
        index.push_back(TltIndexEntry{
            tltHeaderBytes + body.size(), records, instructions,
            lastDataAddr, lastIFetchAddr});
        instrSinceIndex = 0;
    }

    std::uint8_t control;
    std::uint64_t delta;
    if (record.isIFetch) {
        control = kindIFetch;
        if (record.mispredict)
            control |= mispredictBit;
        delta = zigzag(static_cast<std::int64_t>(record.blockAddr) -
                       static_cast<std::int64_t>(lastIFetchAddr));
        lastIFetchAddr = record.blockAddr;
    } else {
        control = record.type == mem::AccessType::Store ? kindStore
                                                        : kindLoad;
        if (record.dependsOnPrev)
            control |= depBit;
        delta = zigzag(static_cast<std::int64_t>(record.blockAddr) -
                       static_cast<std::int64_t>(lastDataAddr));
        lastDataAddr = record.blockAddr;
    }
    if (record.gap < gapEscape) {
        control |= static_cast<std::uint8_t>(record.gap << gapShift);
        body.push_back(control);
    } else {
        control |= static_cast<std::uint8_t>(gapEscape << gapShift);
        body.push_back(control);
        putVarint(body, record.gap);
    }
    putVarint(body, delta);

    ++records;
    std::uint64_t instr = instructionsOf(record);
    instructions += instr;
    instrSinceIndex += instr;
}

void
TraceFileWriter::finish(std::ostream &os)
{
    TLSIM_ASSERT(!finished, "finish called twice");
    finished = true;

    std::vector<std::uint8_t> header;
    header.reserve(tltHeaderBytes);
    header.insert(header.end(), tltMagic, tltMagic + sizeof(tltMagic));
    putU32(header, tltVersion);
    putU32(header, indexStride);
    putU64(header, records);
    putU64(header, instructions);
    putU64(header, tltHeaderBytes + body.size()); // index offset
    putU64(header, index.size());
    header.resize(tltHeaderBytes, 0);

    os.write(reinterpret_cast<const char *>(header.data()),
             static_cast<std::streamsize>(header.size()));
    os.write(reinterpret_cast<const char *>(body.data()),
             static_cast<std::streamsize>(body.size()));
    std::vector<std::uint8_t> tail;
    tail.reserve(index.size() * 40);
    for (const TltIndexEntry &entry : index) {
        putU64(tail, entry.byteOffset);
        putU64(tail, entry.recordIndex);
        putU64(tail, entry.instrIndex);
        putU64(tail, entry.lastDataAddr);
        putU64(tail, entry.lastIFetchAddr);
    }
    os.write(reinterpret_cast<const char *>(tail.data()),
             static_cast<std::streamsize>(tail.size()));
    TLSIM_ASSERT(os.good(), "trace write failed");
}

TraceFile
TraceFile::load(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is.is_open())
        fatal("cannot open trace file '{}'", path);
    std::vector<std::uint8_t> bytes(
        (std::istreambuf_iterator<char>(is)),
        std::istreambuf_iterator<char>());
    return fromBytes(std::move(bytes), path);
}

TraceFile
TraceFile::fromBytes(std::vector<std::uint8_t> raw,
                     const std::string &name)
{
    TraceFile file;
    file.sourceName = name;
    file.bytes = std::move(raw);
    const auto &bytes = file.bytes;
    if (bytes.size() < tltHeaderBytes ||
        !std::equal(tltMagic, tltMagic + sizeof(tltMagic),
                    bytes.begin()))
        fatal("'{}' is not a tlt trace (bad magic or truncated "
              "header)", name);
    std::uint32_t version = getU32(bytes, 8);
    if (version != tltVersion)
        fatal("tlt '{}': unsupported version {} (this build reads "
              "version {})", name, version, tltVersion);
    file.records = getU64(bytes, 16);
    file.instructions = getU64(bytes, 24);
    std::uint64_t index_offset = getU64(bytes, 32);
    std::uint64_t index_count = getU64(bytes, 40);
    file.bodyBegin = tltHeaderBytes;
    file.bodyEnd = index_offset;
    if (index_offset < tltHeaderBytes ||
        index_offset + index_count * 40 > bytes.size())
        fatal("tlt '{}': index extends past end of file", name);
    if (file.records == 0)
        fatal("tlt '{}': empty trace", name);

    file.index.reserve(index_count);
    for (std::uint64_t i = 0; i < index_count; ++i) {
        std::uint64_t off = index_offset + i * 40;
        TltIndexEntry entry;
        entry.byteOffset = getU64(bytes, off);
        entry.recordIndex = getU64(bytes, off + 8);
        entry.instrIndex = getU64(bytes, off + 16);
        entry.lastDataAddr = getU64(bytes, off + 24);
        entry.lastIFetchAddr = getU64(bytes, off + 32);
        if (entry.byteOffset < file.bodyBegin ||
            entry.byteOffset >= file.bodyEnd ||
            entry.recordIndex >= file.records)
            fatal("tlt '{}': corrupt index entry {}", name, i);
        file.index.push_back(entry);
    }

    // Full validation decode: every record must parse and the header
    // counts must match, so replay can trust the body blindly.
    std::uint64_t off = file.bodyBegin;
    std::uint64_t last_data = 0, last_ifetch = 0;
    std::uint64_t records = 0, instructions = 0;
    while (off < file.bodyEnd) {
        cpu::TraceRecord record = decodeRecord(
            bytes, off, file.bodyEnd, last_data, last_ifetch, name);
        ++records;
        instructions += instructionsOf(record);
    }
    if (records != file.records || instructions != file.instructions)
        fatal("tlt '{}': header claims {} records / {} instructions "
              "but body holds {} / {}", name, file.records,
              file.instructions, records, instructions);

    file.hash = fnv1a(bytes);
    return file;
}

TraceFileSource::TraceFileSource(const TraceFile &file)
    : trace(file), offset(file.bodyBegin)
{}

cpu::TraceRecord
TraceFileSource::next()
{
    if (offset >= trace.bodyEnd) {
        // Wrap: the core needs an infinite stream. Delta registers
        // reset so the replay of the first record is identical to a
        // fresh cursor's.
        offset = trace.bodyBegin;
        recIdx = 0;
        lastDataAddr = 0;
        lastIFetchAddr = 0;
        ++wraps;
    }
    cpu::TraceRecord record =
        decodeRecord(trace.bytes, offset, trace.bodyEnd, lastDataAddr,
                     lastIFetchAddr, trace.sourceName);
    ++recIdx;
    instrIdx += instructionsOf(record);
    return record;
}

void
TraceFileSource::seekToRecord(std::uint64_t record_index)
{
    TLSIM_ASSERT(record_index <= trace.records,
                 "seek to record {} past end of '{}' ({} records)",
                 record_index, trace.sourceName, trace.records);
    // Closest index entry at or before the target.
    TltIndexEntry start{trace.bodyBegin, 0, 0, 0, 0};
    auto it = std::upper_bound(
        trace.index.begin(), trace.index.end(), record_index,
        [](std::uint64_t target, const TltIndexEntry &entry) {
            return target < entry.recordIndex;
        });
    if (it != trace.index.begin())
        start = *(it - 1);

    offset = start.byteOffset;
    recIdx = start.recordIndex;
    instrIdx = start.instrIndex;
    lastDataAddr = start.lastDataAddr;
    lastIFetchAddr = start.lastIFetchAddr;
    wraps = 0;
    while (recIdx < record_index) {
        cpu::TraceRecord record =
            decodeRecord(trace.bytes, offset, trace.bodyEnd,
                         lastDataAddr, lastIFetchAddr,
                         trace.sourceName);
        ++recIdx;
        instrIdx += instructionsOf(record);
    }
}

std::uint64_t
parseTextTrace(std::istream &is, TraceFileWriter &writer,
               const std::string &name)
{
    std::string line;
    std::uint64_t line_no = 0;
    std::uint64_t parsed = 0;
    while (std::getline(is, line)) {
        ++line_no;
        std::size_t first = line.find_first_not_of(" \t\r");
        if (first == std::string::npos || line[first] == '#')
            continue;
        std::istringstream fields(line);
        std::uint64_t gap;
        std::string kind, addr_hex, flags;
        if (!(fields >> gap >> kind >> addr_hex) || kind.size() != 1)
            fatal("{}:{}: malformed trace line '{}'", name, line_no,
                  line);
        cpu::TraceRecord record;
        record.gap = static_cast<std::uint32_t>(gap);
        switch (kind[0]) {
          case 'L': record.type = mem::AccessType::Load; break;
          case 'S': record.type = mem::AccessType::Store; break;
          case 'I': record.isIFetch = true; break;
          default:
            fatal("{}:{}: unknown record kind '{}' (want L, S or I)",
                  name, line_no, kind);
        }
        char *end = nullptr;
        record.blockAddr = std::strtoull(addr_hex.c_str(), &end, 16);
        if (end == addr_hex.c_str() || *end != '\0')
            fatal("{}:{}: malformed hex block address '{}'", name,
                  line_no, addr_hex);
        if (fields >> flags) {
            for (char flag : flags) {
                if (flag == 'd' && !record.isIFetch)
                    record.dependsOnPrev = true;
                else if (flag == 'm' && record.isIFetch)
                    record.mispredict = true;
                else
                    fatal("{}:{}: flag '{}' invalid for a '{}' record",
                          name, line_no, flag, kind);
            }
        }
        writer.append(record);
        ++parsed;
    }
    return parsed;
}

void
formatTextRecord(std::ostream &os, const cpu::TraceRecord &record)
{
    os << record.gap << ' ';
    if (record.isIFetch)
        os << 'I';
    else
        os << (record.type == mem::AccessType::Store ? 'S' : 'L');
    os << ' ' << std::hex << record.blockAddr << std::dec;
    if (record.dependsOnPrev && !record.isIFetch)
        os << " d";
    if (record.mispredict && record.isIFetch)
        os << " m";
    os << '\n';
}

} // namespace workload
} // namespace tlsim
