/**
 * @file
 * Synthetic workload profiles for the paper's 12 benchmarks.
 *
 * Substitutes for the SPEC CPU2000 and commercial (Apache, Zeus,
 * SPECjbb, OLTP) workloads run under Simics in the paper. Each
 * profile parameterizes a synthetic address-trace generator so that
 * the trace's L2-relevant statistics land near the paper's Table 6:
 * L2 requests and misses per 1K instructions, plus the locality
 * structure (hot set, Zipf-skewed working set, streaming fraction,
 * instruction footprint) that drives the relative behaviour of the
 * DNUCA and TLC replacement/migration policies.
 */

#ifndef TLSIM_WORKLOAD_PROFILE_HH
#define TLSIM_WORKLOAD_PROFILE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace tlsim
{
namespace workload
{

/**
 * Parameters of one synthetic benchmark.
 */
struct BenchmarkProfile
{
    std::string name;

    /** Mean instructions per data memory reference. */
    double instrPerMem = 4.0;
    /** Fraction of data references that are stores. */
    double storeFrac = 0.3;

    /** Hot data set (mostly L1-resident), in 64 B blocks. */
    std::uint64_t hotBlocks = 256;
    /** Fraction of data references to the hot set. */
    double hotFrac = 0.5;

    /** Main working set (L2-scale), in blocks; Zipf-distributed. */
    std::uint64_t warmBlocks = 32768;
    /** Fraction of data references to the warm set. */
    double warmFrac = 0.4;
    /** Zipf exponent of warm-set reuse (0 = uniform). */
    double zipfS = 0.8;

    /**
     * Fraction of warm references that re-touch a recently used warm
     * block (temporal clustering): real workloads re-reference data
     * shortly after first touch, which is what lets DNUCA promote
     * blocks out of its insertion (tail) banks before eviction.
     */
    double warmReuseFrac = 0.5;
    /** Size of the recent-warm-block history window. */
    std::uint32_t reuseWindow = 64;

    /**
     * Fraction of memory operations whose address depends on the
     * previous load (pointer chasing limits MLP; high for mcf).
     */
    double depFrac = 0.25;

    /**
     * Slow working-set churn: fraction of warm references that touch
     * a never-before-seen block, producing the small steady-state
     * miss trickle of Table 6 even for cache-resident footprints.
     */
    double churnFrac = 0.0;

    /** Branch mispredictions per 1K instructions. */
    double mispredictsPer1k = 5.0;

    /**
     * Sustained fetch cost per instruction in quarter-cycle slots of
     * the 4-wide machine: 1 = ideal 4 IPC ceiling, 2 = 2 IPC, 4 =
     * 1 IPC. Models dependence-chain ILP limits the trace cannot
     * express directly.
     */
    int ilpQuanta = 3;

    /** Remaining references stream sequentially over this region. */
    std::uint64_t streamBlocks = 1 << 20;

    /** Instruction footprint in 64 B blocks. */
    std::uint64_t iBlocks = 512;
    /** Probability an ifetch transition jumps (vs. falls through). */
    double jumpProb = 0.1;
    /** Zipf exponent of jump targets (hot code dominates). */
    double iZipfS = 1.2;
    /** Instructions per ifetch block transition. */
    double instrPerIBlock = 16.0;

    /** Base RNG seed (combined with the run seed). */
    std::uint64_t seed = 1;

    /** Fraction of data references that stream. */
    double
    streamFrac() const
    {
        return 1.0 - hotFrac - warmFrac;
    }
};

/** The 12 paper benchmarks, calibrated against Table 6. */
const std::vector<BenchmarkProfile> &paperBenchmarks();

/** Look up a profile by name (fatal if unknown). */
const BenchmarkProfile &profileByName(const std::string &name);

} // namespace workload
} // namespace tlsim

#endif // TLSIM_WORKLOAD_PROFILE_HH
