#include "workload/simpoint.hh"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_set>

#include "sim/logging.hh"
#include "sim/rng.hh"

namespace tlsim
{
namespace workload
{

namespace
{

constexpr std::size_t dataBuckets = 64;
constexpr std::size_t ifetchBuckets = 32;
constexpr std::size_t noveltyData = dataBuckets + ifetchBuckets;
constexpr std::size_t noveltyIFetch = noveltyData + 1;
static_assert(noveltyIFetch + 1 == signatureDims);

std::uint64_t
mix(std::uint64_t x)
{
    // splitmix64 finalizer: decorrelates the low block-address bits
    // (set indices) from the signature buckets.
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

struct Interval
{
    std::uint64_t startRecord = 0;
    std::uint64_t startInstr = 0;
    std::uint64_t instructions = 0;
    std::vector<double> signature;
};

double
distance2(const std::vector<double> &a, const std::vector<double> &b)
{
    double d = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        double diff = a[i] - b[i];
        d += diff * diff;
    }
    return d;
}

} // namespace

SamplingPlan
selectIntervals(const TraceFile &trace,
                std::uint64_t interval_instructions,
                std::uint32_t max_clusters, std::uint64_t seed)
{
    TLSIM_ASSERT(interval_instructions > 0,
                 "interval length must be positive");
    TLSIM_ASSERT(max_clusters > 0, "need at least one cluster");

    // One linear scan: every record lands in the interval its leading
    // instruction index falls into, so interval boundaries are exact
    // record boundaries the replay warm-up can hit.
    std::vector<Interval> intervals;
    // Blocks referenced so far, for the first-touch signature dims;
    // ifetch addresses are complemented into their own namespace.
    std::unordered_set<std::uint64_t> seen;
    TraceFileSource cursor(trace);
    for (std::uint64_t r = 0; r < trace.recordCount(); ++r) {
        std::uint64_t pre_instr = cursor.instructionsConsumed();
        std::uint64_t pre_record = cursor.recordIndex();
        std::uint64_t idx = pre_instr / interval_instructions;
        if (idx >= intervals.size()) {
            // Records are assigned by their starting instruction, so
            // a large gap can skip interval indices entirely; the
            // skipped slots stay empty and are dropped below.
            intervals.resize(idx + 1);
            intervals[idx].startRecord = pre_record;
            intervals[idx].startInstr = pre_instr;
            intervals[idx].signature.assign(signatureDims, 0.0);
        }
        cpu::TraceRecord record = cursor.next();
        Interval &interval = intervals[idx];
        std::size_t bucket =
            record.isIFetch
                ? dataBuckets + mix(record.blockAddr) % ifetchBuckets
                : mix(record.blockAddr) % dataBuckets;
        interval.signature[bucket] += 1.0;
        bool first_touch =
            seen.insert(record.isIFetch ? ~record.blockAddr
                                        : record.blockAddr)
                .second;
        if (first_touch) {
            interval.signature[record.isIFetch ? noveltyIFetch
                                               : noveltyData] += 1.0;
        }
        interval.instructions +=
            cursor.instructionsConsumed() - pre_instr;
    }

    // Drop empty slots (skipped by gaps) and a short trailing
    // interval; normalize the survivors' signatures to L1 = 1 so
    // clustering sees access *mix*, not interval length.
    SamplingPlan plan;
    plan.intervalInstructions = interval_instructions;
    std::vector<Interval> kept;
    for (std::size_t i = 0; i < intervals.size(); ++i) {
        Interval &interval = intervals[i];
        if (interval.signature.empty())
            continue;
        bool tail = i + 1 == intervals.size() && kept.size() >= 1;
        if (tail && interval.instructions * 2 < interval_instructions) {
            plan.droppedTail = true;
            continue;
        }
        double total = 0.0;
        for (double v : interval.signature)
            total += v;
        if (total > 0.0)
            for (double &v : interval.signature)
                v /= total;
        plan.coveredInstructions += interval.instructions;
        kept.push_back(std::move(interval));
    }
    TLSIM_ASSERT(!kept.empty(), "trace '{}' yielded no intervals",
                 trace.name());
    plan.numIntervals = kept.size();

    std::size_t k = std::min<std::size_t>(max_clusters, kept.size());

    // k-means++ seeding from a fixed-seed RNG: same trace and
    // parameters give the same plan on every host.
    Rng rng(seed ^ 0x51119901e7ULL);
    std::vector<std::vector<double>> centroids;
    centroids.reserve(k);
    centroids.push_back(
        kept[rng.below(static_cast<std::uint64_t>(kept.size()))]
            .signature);
    std::vector<double> dist(kept.size(), 0.0);
    while (centroids.size() < k) {
        double total = 0.0;
        for (std::size_t i = 0; i < kept.size(); ++i) {
            double best = std::numeric_limits<double>::max();
            for (const auto &c : centroids)
                best = std::min(best, distance2(kept[i].signature, c));
            dist[i] = best;
            total += best;
        }
        std::size_t chosen = 0;
        if (total > 0.0) {
            double target = rng.real() * total;
            double acc = 0.0;
            for (std::size_t i = 0; i < kept.size(); ++i) {
                acc += dist[i];
                if (acc >= target) {
                    chosen = i;
                    break;
                }
            }
        } else {
            // All remaining points coincide with a centroid; any
            // choice yields an empty extra cluster, so stop early.
            break;
        }
        centroids.push_back(kept[chosen].signature);
    }
    k = centroids.size();

    std::vector<std::size_t> assignment(kept.size(), 0);
    for (int iter = 0; iter < 50; ++iter) {
        bool changed = false;
        for (std::size_t i = 0; i < kept.size(); ++i) {
            std::size_t best = 0;
            double best_d = std::numeric_limits<double>::max();
            for (std::size_t c = 0; c < k; ++c) {
                double d = distance2(kept[i].signature, centroids[c]);
                if (d < best_d) {
                    best_d = d;
                    best = c;
                }
            }
            if (assignment[i] != best) {
                assignment[i] = best;
                changed = true;
            }
        }
        if (!changed && iter > 0)
            break;
        for (std::size_t c = 0; c < k; ++c) {
            std::vector<double> mean(signatureDims, 0.0);
            std::uint64_t members = 0;
            for (std::size_t i = 0; i < kept.size(); ++i) {
                if (assignment[i] != c)
                    continue;
                ++members;
                for (std::size_t d = 0; d < signatureDims; ++d)
                    mean[d] += kept[i].signature[d];
            }
            if (members == 0)
                continue; // keep the old centroid; cluster is empty
            for (double &v : mean)
                v /= static_cast<double>(members);
            centroids[c] = std::move(mean);
        }
    }

    // Representative of each non-empty cluster: the member closest to
    // the centroid (lowest interval index on ties). The first interval
    // is eligible only when it is a cluster's sole member: its timed
    // behaviour carries the cold-boot transient (there is no prefix to
    // warm from), which would otherwise be extrapolated to the whole
    // cluster's weight — the classic SimPoint startup bias.
    for (std::size_t c = 0; c < k; ++c) {
        std::uint64_t members = 0;
        std::size_t best = kept.size();
        double best_d = std::numeric_limits<double>::max();
        for (std::size_t i = 0; i < kept.size(); ++i) {
            if (assignment[i] != c)
                continue;
            ++members;
            if (kept[i].startInstr == 0 && best < kept.size())
                continue;
            double d = distance2(kept[i].signature, centroids[c]);
            bool best_is_cold =
                best < kept.size() && kept[best].startInstr == 0;
            if (d < best_d || best_is_cold) {
                best_d = d;
                best = i;
            }
        }
        if (members == 0)
            continue;
        RepresentativeInterval rep;
        rep.interval = best;
        rep.startRecord = kept[best].startRecord;
        rep.startInstr = kept[best].startInstr;
        rep.instructions = kept[best].instructions;
        rep.clusterSize = members;
        rep.weight = static_cast<double>(members) /
                     static_cast<double>(kept.size());
        plan.representatives.push_back(rep);
    }
    std::sort(plan.representatives.begin(), plan.representatives.end(),
              [](const RepresentativeInterval &a,
                 const RepresentativeInterval &b) {
                  return a.interval < b.interval;
              });
    return plan;
}

} // namespace workload
} // namespace tlsim
