/**
 * @file
 * Synthetic address-trace generator driven by a BenchmarkProfile.
 */

#ifndef TLSIM_WORKLOAD_GENERATOR_HH
#define TLSIM_WORKLOAD_GENERATOR_HH

#include "cpu/trace.hh"
#include "sim/rng.hh"
#include "workload/profile.hh"

namespace tlsim
{
namespace workload
{

/**
 * Generates an infinite instruction/data reference stream with the
 * locality structure described by a BenchmarkProfile.
 *
 * Data references fall into three classes:
 *  - hot: uniform over a small set that largely lives in the L1;
 *  - warm: Zipf-skewed over an L2-scale working set;
 *  - stream: sequential over a large region with no short-term reuse.
 *
 * Instruction fetch proceeds sequentially through a code footprint
 * with occasional jumps, emitting an ifetch record at each 64 B block
 * transition.
 *
 * The generator is deterministic given (profile.seed, run_seed).
 */
class TraceGenerator : public cpu::TraceSource
{
  public:
    /** Region bases in block-address space. */
    static constexpr Addr hotBase = Addr(1) << 24;
    static constexpr Addr warmBase = Addr(1) << 26;
    static constexpr Addr streamBase = Addr(1) << 28;
    static constexpr Addr instrBase = Addr(1) << 30;
    static constexpr Addr churnBase = Addr(1) << 32;

    TraceGenerator(const BenchmarkProfile &profile,
                   std::uint64_t run_seed = 0);

    cpu::TraceRecord next() override;

    const BenchmarkProfile &profile() const { return prof; }

    /**
     * Bijective scramble of [0, n): multiplicative permutation over
     * the next power of two with cycle-walking (decouples Zipf rank
     * from block position).
     */
    static std::uint64_t scramble(std::uint64_t r, std::uint64_t n);

    /**
     * Injective randomization of a block address's tag bits (16..23),
     * preserving set indices and region membership; see generator.cc.
     */
    static Addr tagScramble(Addr block);

  private:
    /** Draw the next data record (without the leading gap). */
    void drawDataOp();

    /** Advance the instruction stream to its next block. */
    Addr nextInstrBlock(bool jumped);

    BenchmarkProfile prof;
    Rng rng;

    bool havePendingData = false;
    cpu::TraceRecord pendingData;
    std::uint64_t remainingGap = 0;
    std::uint64_t instrToNextIFetch;

    Addr curIBlock;
    std::uint64_t streamPtr = 0;
    std::uint64_t churnPtr = 0;
    double mispredictPerJump = 0.0;

    /** Recent warm blocks, for temporally clustered re-references. */
    std::vector<Addr> recentWarm;
    std::size_t recentWarmNext = 0;

};

} // namespace workload
} // namespace tlsim

#endif // TLSIM_WORKLOAD_GENERATOR_HH
