#include "workload/profile.hh"

#include "sim/logging.hh"

namespace tlsim
{
namespace workload
{

namespace
{

/**
 * Calibration notes. The knobs below were tuned so the measured
 * Table 6 columns (L2 demand requests and misses per 1K instructions,
 * DNUCA close-hit rate) land near the paper's values:
 *  - warmFrac x (1 - warmReuseFrac) sets the L2 demand request rate;
 *  - streamFrac sets the streaming (always-miss) rate;
 *  - churnFrac sets the steady-state cold-miss trickle;
 *  - zipfS concentrates L2 reuse (drives DNUCA close-hit rate);
 *  - ilpQuanta / depFrac / mispredictsPer1k set the absolute IPC,
 *    which fixes the request *rate* seen by the network (Table 9
 *    power, Figure 7 utilization).
 */
std::vector<BenchmarkProfile>
buildProfiles()
{
    std::vector<BenchmarkProfile> profiles;

    // SPECint 2000 ------------------------------------------------
    {
        BenchmarkProfile p;
        p.name = "bzip";
        p.instrPerMem = 3.5;
        p.storeFrac = 0.3;
        p.hotBlocks = 320;
        p.hotFrac = 0.935;
        p.warmBlocks = 32768; // ~2 MB
        p.warmFrac = 0.055;
        p.zipfS = 0.95;
        p.streamBlocks = 4096; // reused buffer, L2 resident
        p.churnFrac = 0.00018;
        p.iBlocks = 256;
        p.jumpProb = 0.05;
        p.depFrac = 0.25;
        p.mispredictsPer1k = 5.0;
        p.ilpQuanta = 3;
        p.seed = 11;
        profiles.push_back(p);
    }
    {
        BenchmarkProfile p;
        p.name = "gcc";
        p.instrPerMem = 3.5;
        p.storeFrac = 0.35;
        p.hotBlocks = 384;
        p.hotFrac = 0.42;
        p.warmBlocks = 49152; // ~3 MB
        p.warmFrac = 0.55;
        p.zipfS = 0.95;
        p.streamBlocks = 8192;
        p.churnFrac = 0.00024;
        p.iBlocks = 1024;
        p.jumpProb = 0.15;
        p.depFrac = 0.2;
        p.mispredictsPer1k = 6.0;
        p.ilpQuanta = 3;
        p.seed = 12;
        profiles.push_back(p);
    }
    {
        BenchmarkProfile p;
        p.name = "mcf";
        p.instrPerMem = 3.0;
        p.storeFrac = 0.2;
        p.hotBlocks = 256;
        p.hotFrac = 0.45;
        p.warmBlocks = 180224; // ~11 MB: large memory footprint
        p.warmFrac = 0.52;
        p.zipfS = 0.55;
        p.streamBlocks = 16384;
        p.churnFrac = 0.00007;
        p.iBlocks = 256;
        p.jumpProb = 0.05;
        p.depFrac = 0.7; // pointer chasing
        p.mispredictsPer1k = 6.0;
        p.ilpQuanta = 3;
        p.seed = 13;
        profiles.push_back(p);
    }
    {
        BenchmarkProfile p;
        p.name = "perl";
        p.instrPerMem = 4.0;
        p.storeFrac = 0.35;
        p.hotBlocks = 400;
        p.hotFrac = 0.960;
        p.warmBlocks = 24576; // ~1.5 MB
        p.warmFrac = 0.035;
        p.zipfS = 1.0;
        p.streamBlocks = 2048;
        p.churnFrac = 0.0001;
        p.iBlocks = 768;
        p.jumpProb = 0.12;
        p.depFrac = 0.25;
        p.mispredictsPer1k = 5.0;
        p.ilpQuanta = 3;
        p.seed = 14;
        profiles.push_back(p);
    }

    // SPECfp 2000 -------------------------------------------------
    {
        BenchmarkProfile p;
        p.name = "equake";
        p.instrPerMem = 3.5;
        p.storeFrac = 0.25;
        p.hotBlocks = 256;
        p.hotFrac = 0.955;
        p.warmBlocks = 131072; // ~8 MB, slowly revisited
        p.warmFrac = 0.024;
        p.zipfS = 0.40;
        p.warmReuseFrac = 0.6;
        p.reuseWindow = 4096; // re-touches escape the L1, reach L2
        p.streamBlocks = 2097152; // 128 MB, no reuse
        p.iBlocks = 128;
        p.jumpProb = 0.03;
        p.depFrac = 0.1;
        p.mispredictsPer1k = 1.0;
        p.ilpQuanta = 2;
        p.seed = 15;
        profiles.push_back(p);
    }
    {
        BenchmarkProfile p;
        p.name = "swim";
        p.instrPerMem = 3.0;
        p.storeFrac = 0.35;
        p.hotBlocks = 192;
        p.hotFrac = 0.863;
        p.warmBlocks = 8192;
        p.warmFrac = 0.005;
        p.zipfS = 0.5;
        p.streamBlocks = 4194304; // 256 MB streams
        p.iBlocks = 96;
        p.jumpProb = 0.02;
        p.depFrac = 0.1;
        p.mispredictsPer1k = 1.0;
        p.ilpQuanta = 2;
        p.seed = 16;
        profiles.push_back(p);
    }
    {
        BenchmarkProfile p;
        p.name = "applu";
        p.instrPerMem = 3.5;
        p.storeFrac = 0.35;
        p.hotBlocks = 192;
        p.hotFrac = 0.941;
        p.warmBlocks = 8192;
        p.warmFrac = 0.003;
        p.zipfS = 0.5;
        p.streamBlocks = 2097152;
        p.iBlocks = 96;
        p.jumpProb = 0.02;
        p.depFrac = 0.1;
        p.mispredictsPer1k = 1.0;
        p.ilpQuanta = 2;
        p.seed = 17;
        profiles.push_back(p);
    }
    {
        BenchmarkProfile p;
        p.name = "lucas";
        p.instrPerMem = 3.5;
        p.storeFrac = 0.3;
        p.hotBlocks = 192;
        p.hotFrac = 0.947;
        p.warmBlocks = 16384;
        p.warmFrac = 0.008;
        p.zipfS = 0.5;
        p.streamBlocks = 2097152;
        p.iBlocks = 96;
        p.jumpProb = 0.02;
        p.depFrac = 0.1;
        p.mispredictsPer1k = 1.0;
        p.ilpQuanta = 2;
        p.seed = 18;
        profiles.push_back(p);
    }

    // Commercial --------------------------------------------------
    {
        BenchmarkProfile p;
        p.name = "apache";
        p.instrPerMem = 3.5;
        p.storeFrac = 0.3;
        p.hotBlocks = 384;
        p.hotFrac = 0.925;
        p.warmBlocks = 262144; // ~16 MB of files/metadata
        p.warmFrac = 0.065;
        p.zipfS = 0.80;
        p.reuseWindow = 4096;
        p.streamBlocks = 524288; // 32 MB of cold files
        p.churnFrac = 0.0002;
        p.iBlocks = 2048;
        p.jumpProb = 0.3;
        p.iZipfS = 1.1;
        p.instrPerIBlock = 12.0;
        p.depFrac = 0.25;
        p.mispredictsPer1k = 6.0;
        p.ilpQuanta = 4;
        p.seed = 19;
        profiles.push_back(p);
    }
    {
        BenchmarkProfile p;
        p.name = "zeus";
        p.instrPerMem = 3.5;
        p.storeFrac = 0.3;
        p.hotBlocks = 384;
        p.hotFrac = 0.925;
        p.warmBlocks = 262144;
        p.warmFrac = 0.060;
        p.zipfS = 0.72;
        p.reuseWindow = 4096;
        p.streamBlocks = 786432; // 48 MB
        p.churnFrac = 0.0002;
        p.iBlocks = 1792;
        p.jumpProb = 0.3;
        p.iZipfS = 1.1;
        p.instrPerIBlock = 12.0;
        p.depFrac = 0.25;
        p.mispredictsPer1k = 6.0;
        p.ilpQuanta = 4;
        p.seed = 20;
        profiles.push_back(p);
    }
    {
        BenchmarkProfile p;
        p.name = "sjbb";
        p.instrPerMem = 3.5;
        p.storeFrac = 0.35;
        p.hotBlocks = 320;
        p.hotFrac = 0.960;
        p.warmBlocks = 196608; // ~12 MB of warehouse data
        p.warmFrac = 0.035;
        p.zipfS = 0.65;
        p.reuseWindow = 4096;
        p.streamBlocks = 655360; // 40 MB
        p.churnFrac = 0.0005;
        p.iBlocks = 1536;
        p.jumpProb = 0.25;
        p.iZipfS = 1.15;
        p.instrPerIBlock = 14.0;
        p.depFrac = 0.25;
        p.mispredictsPer1k = 5.0;
        p.ilpQuanta = 4;
        p.seed = 21;
        profiles.push_back(p);
    }
    {
        BenchmarkProfile p;
        p.name = "oltp";
        p.instrPerMem = 3.5;
        p.storeFrac = 0.35;
        p.hotBlocks = 448;
        p.hotFrac = 0.9925;
        p.warmBlocks = 131072; // ~8 MB of buffer pool
        p.warmFrac = 0.004;
        p.zipfS = 0.75;
        p.reuseWindow = 4096;
        p.streamBlocks = 1048576; // 64 MB database
        p.churnFrac = 0.0001;
        p.iBlocks = 2048;
        p.jumpProb = 0.25;
        p.iZipfS = 1.1;
        p.instrPerIBlock = 12.0;
        p.depFrac = 0.3;
        p.mispredictsPer1k = 6.0;
        p.ilpQuanta = 4;
        p.seed = 22;
        profiles.push_back(p);
    }

    // Fix up stream fractions implied by hot/warm (documented
    // targets): bzip 1.0%, gcc 2.0%, mcf 3.0%, perl 0.5%, equake
    // 2.1%, swim 12%, applu 5.6%, lucas 4.5%, apache 1.7%, zeus
    // 2.2%, sjbb 0.8%, oltp 0.3% (streamFrac = 1 - hot - warm).
    return profiles;
}

} // namespace

const std::vector<BenchmarkProfile> &
paperBenchmarks()
{
    static const std::vector<BenchmarkProfile> profiles =
        buildProfiles();
    return profiles;
}

const BenchmarkProfile &
profileByName(const std::string &name)
{
    for (const auto &profile : paperBenchmarks()) {
        if (profile.name == name)
            return profile;
    }
    fatal("unknown benchmark profile '{}'", name);
}

} // namespace workload
} // namespace tlsim
