/**
 * @file
 * The `tlt` v1 compact binary trace format and its replay source.
 *
 * A `.tlt` file stores an externally captured instruction/memory
 * trace as delta-encoded records behind a fixed little-endian header,
 * with an optional seek index for O(log n) positioning (see
 * docs/SAMPLING.md for the byte-level specification). TraceFile loads
 * and validates a file; TraceFileSource adapts it to the
 * cpu::TraceSource interface so the OoO core and the functional
 * warmer consume captured traces exactly like the synthetic
 * generators.
 */

#ifndef TLSIM_WORKLOAD_TRACEFILE_HH
#define TLSIM_WORKLOAD_TRACEFILE_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "cpu/trace.hh"

namespace tlsim
{
namespace workload
{

/** Magic bytes opening every `.tlt` file ("TLTRACE" + version). */
constexpr char tltMagic[8] = {'T', 'L', 'T', 'R', 'A', 'C', 'E', '1'};

/** On-disk format version this build reads and writes. */
constexpr std::uint32_t tltVersion = 1;

/** Fixed header size in bytes (records start right after it). */
constexpr std::uint32_t tltHeaderBytes = 64;

/** Default instruction stride between seek-index entries. */
constexpr std::uint32_t tltDefaultIndexStride = 65536;

/**
 * One seek-index entry: complete decoder state at a record boundary.
 * Seeking restores the two delta-chain registers and resumes decoding
 * mid-file without replaying the prefix.
 */
struct TltIndexEntry
{
    /** Byte offset of the record from the start of the file. */
    std::uint64_t byteOffset = 0;
    /** Zero-based index of that record. */
    std::uint64_t recordIndex = 0;
    /** Instructions accounted before that record. */
    std::uint64_t instrIndex = 0;
    /** Delta register of the data-address chain. */
    std::uint64_t lastDataAddr = 0;
    /** Delta register of the ifetch-address chain. */
    std::uint64_t lastIFetchAddr = 0;
};

/**
 * Streaming encoder producing a `.tlt` v1 file.
 *
 * Appends records one at a time, then finish() backpatches the header
 * counts and emits the seek index. The writer buffers in memory until
 * finish() so encoding never needs a seekable output.
 */
class TraceFileWriter
{
  public:
    /** @param index_stride Instructions between seek-index entries. */
    explicit TraceFileWriter(
        std::uint32_t index_stride = tltDefaultIndexStride);

    /** Append one record (order is the replay order). */
    void append(const cpu::TraceRecord &record);

    /** Records appended so far. */
    std::uint64_t recordCount() const { return records; }
    /** Instructions accounted so far (gaps + data ops). */
    std::uint64_t instructionCount() const { return instructions; }

    /** Write header + records + index to @p os (call once). */
    void finish(std::ostream &os);

  private:
    std::vector<std::uint8_t> body;
    std::vector<TltIndexEntry> index;
    std::uint32_t indexStride;
    std::uint64_t records = 0;
    std::uint64_t instructions = 0;
    std::uint64_t lastDataAddr = 0;
    std::uint64_t lastIFetchAddr = 0;
    std::uint64_t instrSinceIndex = 0;
    bool finished = false;
};

/**
 * An immutable, fully loaded `.tlt` trace: validated header, record
 * bytes, and seek index. Cheap to share between any number of
 * TraceFileSource cursors (each cursor holds only decoder state).
 */
class TraceFile
{
  public:
    /** Load and validate @p path (fatal on malformed input). */
    static TraceFile load(const std::string &path);

    /** Parse an in-memory `.tlt` image (fatal on malformed input). */
    static TraceFile fromBytes(std::vector<std::uint8_t> bytes,
                               const std::string &name = "<memory>");

    /** Total records in the trace. */
    std::uint64_t recordCount() const { return records; }
    /** Total instructions (sum of gaps plus one per data op). */
    std::uint64_t instructionCount() const { return instructions; }
    /** Source path (or synthetic name) for diagnostics. */
    const std::string &name() const { return sourceName; }
    /** FNV-1a hash of the complete file image (trace identity). */
    std::uint64_t contentHash() const { return hash; }
    /** Seek index (possibly empty for index-less files). */
    const std::vector<TltIndexEntry> &seekIndex() const { return index; }

  private:
    friend class TraceFileSource;

    std::vector<std::uint8_t> bytes;
    std::string sourceName;
    std::uint64_t records = 0;
    std::uint64_t instructions = 0;
    std::uint64_t bodyBegin = 0;
    std::uint64_t bodyEnd = 0;
    std::uint64_t hash = 0;
    std::vector<TltIndexEntry> index;
};

/**
 * Replay cursor over a TraceFile implementing cpu::TraceSource.
 *
 * The stream is infinite, as the core model requires: reaching the
 * end of the trace wraps to the beginning (resetting the delta
 * registers) and increments wrapCount(). Budgeted callers replay the
 * trace at most once by bounding instructions to
 * TraceFile::instructionCount().
 */
class TraceFileSource : public cpu::TraceSource
{
  public:
    /** @param file Shared trace; must outlive the source. */
    explicit TraceFileSource(const TraceFile &file);

    cpu::TraceRecord next() override;

    /**
     * Position the cursor at record @p record_index (0-based),
     * restoring the exact decoder state a linear replay would have
     * there: the seek index gets close in O(log n), the remainder is
     * decoded forward. Asserts @p record_index is within the trace.
     */
    void seekToRecord(std::uint64_t record_index);

    /** Index of the record the next next() call returns. */
    std::uint64_t recordIndex() const { return recIdx; }
    /** Instructions accounted by records already returned. */
    std::uint64_t instructionsConsumed() const { return instrIdx; }
    /** Times the cursor wrapped past the end of the trace. */
    std::uint64_t wrapCount() const { return wraps; }

  private:
    const TraceFile &trace;
    std::uint64_t offset; // byte offset of the next record
    std::uint64_t recIdx = 0;
    std::uint64_t instrIdx = 0;
    std::uint64_t lastDataAddr = 0;
    std::uint64_t lastIFetchAddr = 0;
    std::uint64_t wraps = 0;
};

/**
 * Parse the documented one-record-per-line text trace format (see
 * docs/SAMPLING.md: `<gap> L|S|I <hex-block-addr> [flags]`, with `#`
 * comments) from @p is, appending every record to @p writer.
 * @return Number of records parsed (fatal on malformed lines, with
 *         @p name and the line number in the message).
 */
std::uint64_t parseTextTrace(std::istream &is, TraceFileWriter &writer,
                             const std::string &name = "<text>");

/** Emit one record in the text format (inverse of parseTextTrace). */
void formatTextRecord(std::ostream &os, const cpu::TraceRecord &record);

} // namespace workload
} // namespace tlsim

#endif // TLSIM_WORKLOAD_TRACEFILE_HH
