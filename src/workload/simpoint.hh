/**
 * @file
 * SimPoint-style representative-interval selection for trace replay.
 *
 * Slices a captured trace into fixed-length instruction intervals,
 * summarizes each interval with an access-signature vector (a
 * basic-block-vector stand-in built from hashed block addresses),
 * clusters the vectors with deterministically seeded k-means, and
 * picks one representative interval per cluster, weighted by cluster
 * population. Simulating only the representatives and reweighting
 * their per-interval results reproduces full-trace statistics at a
 * fraction of the cost (see docs/SAMPLING.md for the methodology and
 * its accuracy tolerances).
 */

#ifndef TLSIM_WORKLOAD_SIMPOINT_HH
#define TLSIM_WORKLOAD_SIMPOINT_HH

#include <cstdint>
#include <vector>

#include "workload/tracefile.hh"

namespace tlsim
{
namespace workload
{

/**
 * Signature dimensions: 64 data-address buckets, 32 ifetch-address
 * buckets, plus 2 first-touch (novelty) counters — accesses to data /
 * instruction blocks never referenced earlier in the trace. The
 * novelty fraction tracks the compulsory-miss rate, separating the
 * cache warm-up ramp from steady-state phases even when the address
 * *mix* alone barely changes.
 */
constexpr std::size_t signatureDims = 98;

/**
 * One interval selected to stand for its cluster.
 */
struct RepresentativeInterval
{
    /** Zero-based index of the interval within the trace. */
    std::uint64_t interval = 0;
    /** First record of the interval (seek/warm target). */
    std::uint64_t startRecord = 0;
    /** Instructions preceding startRecord in the trace. */
    std::uint64_t startInstr = 0;
    /** Instructions the interval actually spans. */
    std::uint64_t instructions = 0;
    /** Cluster population / clustered intervals; weights sum to 1. */
    double weight = 0.0;
    /** Intervals in this representative's cluster. */
    std::uint64_t clusterSize = 0;
};

/**
 * A complete sampling plan for one trace: the interval geometry and
 * the weighted representatives, ordered by interval index.
 */
struct SamplingPlan
{
    /** Nominal interval length in instructions. */
    std::uint64_t intervalInstructions = 0;
    /** Intervals that entered clustering. */
    std::uint64_t numIntervals = 0;
    /** Instructions covered by the clustered intervals. */
    std::uint64_t coveredInstructions = 0;
    /** Trailing partial interval dropped (shorter than half length). */
    bool droppedTail = false;
    std::vector<RepresentativeInterval> representatives;
};

/**
 * Build a sampling plan for @p trace: scan once to accumulate
 * per-interval signatures, cluster into at most @p max_clusters
 * groups with k-means seeded from @p seed (same trace + parameters
 * -> same plan, bit-for-bit), and return the weighted
 * representatives. A trailing interval shorter than half
 * @p interval_instructions is excluded from clustering (its weight
 * would misrepresent a fractional slice).
 */
SamplingPlan selectIntervals(const TraceFile &trace,
                             std::uint64_t interval_instructions,
                             std::uint32_t max_clusters,
                             std::uint64_t seed = 0);

} // namespace workload
} // namespace tlsim

#endif // TLSIM_WORKLOAD_SIMPOINT_HH
