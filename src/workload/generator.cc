#include "workload/generator.hh"

#include <algorithm>

namespace tlsim
{
namespace workload
{

TraceGenerator::TraceGenerator(const BenchmarkProfile &profile,
                               std::uint64_t run_seed)
    : prof(profile),
      rng(profile.seed * 0x9e3779b97f4a7c15ULL + run_seed),
      curIBlock(instrBase)
{
    TLSIM_ASSERT(prof.hotFrac + prof.warmFrac <= 1.0,
                 "profile '{}' fractions exceed 1", prof.name);
    instrToNextIFetch =
        1 + rng.geometric(std::max(1.0, prof.instrPerIBlock) - 1.0);

    // Convert mispredicts/1K-instr into a per-jump probability.
    double jumps_per_1k =
        1000.0 / std::max(1.0, prof.instrPerIBlock) * prof.jumpProb;
    if (jumps_per_1k > 0.0) {
        mispredictPerJump =
            std::min(1.0, prof.mispredictsPer1k / jumps_per_1k);
    }
}

std::uint64_t
TraceGenerator::scramble(std::uint64_t r, std::uint64_t n)
{
    if (n <= 2)
        return r;
    std::uint64_t m = 1;
    while (m < n)
        m <<= 1;
    do {
        r = (r * 0x9E3779B97F4A7C15ULL) & (m - 1);
    } while (r >= n);
    return r;
}

Addr
TraceGenerator::tagScramble(Addr block)
{
    // XOR bits 16..23 with a hash of the untouched bits: injective,
    // keeps the block in its (>= 2^24-spaced) region, preserves
    // every design's set-index bits (< 16), and gives the tag bits
    // the random low-order structure real address streams have —
    // without it the power-of-two-aligned regions would collide
    // systematically in the 6-bit partial tags.
    constexpr Addr mask = Addr(0xFF) << 16;
    Addr keep = block & ~mask;
    std::uint64_t h = keep * 0x9E3779B97F4A7C15ULL;
    return block ^ ((h >> 32) & mask);
}

void
TraceGenerator::drawDataOp()
{
    pendingData = cpu::TraceRecord{};
    pendingData.isIFetch = false;
    pendingData.type = rng.chance(prof.storeFrac)
                           ? mem::AccessType::Store
                           : mem::AccessType::Load;
    pendingData.dependsOnPrev = rng.chance(prof.depFrac);

    double u = rng.real();
    if (u < prof.hotFrac) {
        pendingData.blockAddr = hotBase + rng.below(prof.hotBlocks);
    } else if (u < prof.hotFrac + prof.warmFrac) {
        Addr block;
        if (!recentWarm.empty() && rng.chance(prof.warmReuseFrac)) {
            // Temporally clustered re-reference of a recent block.
            block = recentWarm[rng.below(recentWarm.size())];
        } else {
            block = warmBase +
                    scramble(rng.zipf(prof.warmBlocks, prof.zipfS),
                             prof.warmBlocks);
            if (recentWarm.size() < prof.reuseWindow) {
                recentWarm.push_back(block);
            } else {
                recentWarm[recentWarmNext] = block;
                recentWarmNext =
                    (recentWarmNext + 1) % recentWarm.size();
            }
        }
        pendingData.blockAddr = block;
    } else {
        pendingData.blockAddr =
            streamBase + (streamPtr % prof.streamBlocks);
        ++streamPtr;
    }

    // Slow working-set churn: touch a brand-new block.
    if (prof.churnFrac > 0.0 && rng.chance(prof.churnFrac))
        pendingData.blockAddr = churnBase + churnPtr++;

    pendingData.blockAddr = tagScramble(pendingData.blockAddr);

    remainingGap = rng.geometric(std::max(1.0, prof.instrPerMem) - 1.0);
    havePendingData = true;
}

Addr
TraceGenerator::nextInstrBlock(bool jumped)
{
    if (jumped) {
        curIBlock = instrBase + rng.zipf(prof.iBlocks, prof.iZipfS);
    } else {
        Addr offset = curIBlock - instrBase;
        curIBlock = instrBase + ((offset + 1) % prof.iBlocks);
    }
    return curIBlock;
}

cpu::TraceRecord
TraceGenerator::next()
{
    if (!havePendingData)
        drawDataOp();

    if (instrToNextIFetch <= remainingGap) {
        cpu::TraceRecord rec;
        rec.isIFetch = true;
        rec.gap = static_cast<std::uint32_t>(instrToNextIFetch);
        bool jumped = rng.chance(prof.jumpProb);
        rec.blockAddr = tagScramble(nextInstrBlock(jumped));
        rec.mispredict = jumped && rng.chance(mispredictPerJump);
        remainingGap -= instrToNextIFetch;
        instrToNextIFetch =
            1 + rng.geometric(std::max(1.0, prof.instrPerIBlock) - 1.0);
        return rec;
    }

    cpu::TraceRecord rec = pendingData;
    rec.gap = static_cast<std::uint32_t>(remainingGap);
    instrToNextIFetch -= remainingGap + 1; // the op itself counts
    havePendingData = false;
    return rec;
}

} // namespace workload
} // namespace tlsim
