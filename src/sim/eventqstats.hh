/**
 * @file
 * Event-pool statistics as a StatGroup.
 *
 * EventQueue's pooled one-shot machinery already counts allocations,
 * pool occupancy, and arena-backed placements; PoolStats snapshots
 * those counters into a stats tree so harnesses (tlsim_bench's
 * arena_churn kernel, tests) can assert allocation behaviour — e.g.
 * "the measured phase allocated nothing" — through the same stats
 * machinery everything else uses. Deliberately not part of a System's
 * root group: attaching it would change the stats JSON shape, and
 * allocator behaviour is host-side telemetry, not simulated state.
 */

#ifndef TLSIM_SIM_EVENTQSTATS_HH
#define TLSIM_SIM_EVENTQSTATS_HH

#include <string>

#include "sim/eventq.hh"
#include "sim/stats.hh"

namespace tlsim
{

/**
 * Snapshot of one EventQueue's pool counters. Call sample() to
 * refresh the scalars from the live queue.
 */
class PoolStats : public stats::StatGroup
{
  private:
    EventQueue &queue;

  public:
    explicit PoolStats(EventQueue &eq, std::string name = "eventq_pool",
                       stats::StatGroup *parent = nullptr)
        : stats::StatGroup(std::move(name), parent),
          queue(eq),
          lambdaAllocated(this, "lambda_allocated",
                          "LambdaEvents ever allocated"),
          lambdaPooled(this, "lambda_pooled",
                       "LambdaEvents resting in the freelist"),
          lambdaOutstanding(this, "lambda_outstanding",
                            "LambdaEvents in flight"),
          lambdaArena(this, "lambda_arena",
                      "LambdaEvents placement-built in an arena"),
          callbackAllocated(this, "callback_allocated",
                            "TickCallbackEvents ever allocated"),
          callbackPooled(this, "callback_pooled",
                         "TickCallbackEvents resting in the freelist"),
          callbackOutstanding(this, "callback_outstanding",
                              "TickCallbackEvents in flight"),
          callbackArena(this, "callback_arena",
                        "TickCallbackEvents placement-built in an "
                        "arena")
    {
        sample();
    }

    /** Refresh every scalar from the queue's live counters. */
    void
    sample()
    {
        lambdaAllocated = static_cast<double>(queue.lambdaAllocated());
        lambdaPooled = static_cast<double>(queue.lambdaPoolSize());
        lambdaOutstanding =
            static_cast<double>(queue.lambdaOutstanding());
        lambdaArena =
            static_cast<double>(queue.lambdaArenaAllocated());
        callbackAllocated =
            static_cast<double>(queue.callbackAllocated());
        callbackPooled =
            static_cast<double>(queue.callbackPoolSize());
        callbackOutstanding =
            static_cast<double>(queue.callbackOutstanding());
        callbackArena =
            static_cast<double>(queue.callbackArenaAllocated());
    }

    /**
     * Heap allocations (pool growth outside any arena) since the
     * last call; the zero-hot-path-allocation assertions diff this
     * across a measured phase.
     */
    std::size_t
    heapAllocations() const
    {
        return (queue.lambdaAllocated() -
                queue.lambdaArenaAllocated()) +
               (queue.callbackAllocated() -
                queue.callbackArenaAllocated());
    }

    stats::Scalar lambdaAllocated;
    stats::Scalar lambdaPooled;
    stats::Scalar lambdaOutstanding;
    stats::Scalar lambdaArena;
    stats::Scalar callbackAllocated;
    stats::Scalar callbackPooled;
    stats::Scalar callbackOutstanding;
    stats::Scalar callbackArena;
};

} // namespace tlsim

#endif // TLSIM_SIM_EVENTQSTATS_HH
