#include "sim/logging.hh"

#include <iostream>

namespace tlsim
{
namespace logging_detail
{

bool quiet = false;

void
emitMessage(const char *tag, const std::string &msg)
{
    if (quiet && (std::string(tag) == "warn" || std::string(tag) == "info"))
        return;
    std::cerr << tag << ": " << msg << std::endl;
}

} // namespace logging_detail
} // namespace tlsim
