#include "sim/stats.hh"

#include <array>
#include <cmath>
#include <cstdio>
#include <iomanip>

#include "sim/trace/tracesink.hh"

namespace tlsim
{
namespace stats
{

StatBase::StatBase(StatGroup *parent, std::string name, std::string desc)
    : _name(std::move(name)), _desc(std::move(desc))
{
    TLSIM_ASSERT(parent != nullptr, "stat '{}' requires a parent group",
                 _name);
    parent->addStat(this);
}

StatGroup::StatGroup(std::string name, StatGroup *parent)
    : _name(std::move(name))
{
    // Registration happens one stat at a time during System
    // construction (hundreds of groups per run, every run of a
    // sweep); reserving up front spares the doubling reallocations.
    stats.reserve(16);
    children.reserve(4);
    if (parent)
        parent->addChild(this);
}

void
StatGroup::resetStats()
{
    for (auto *stat : stats)
        stat->reset();
    for (auto *child : children)
        child->resetStats();
}

void
StatGroup::dumpStats(std::ostream &os, const std::string &prefix) const
{
    std::string full = prefix.empty() ? _name : prefix + "." + _name;
    for (const auto *stat : stats)
        stat->dump(os, full);
    for (const auto *child : children)
        child->dumpStats(os, full);
}

void
StatGroup::dumpStatsJson(std::ostream &os, int indent,
                         bool pretty) const
{
    std::string open = pretty ? "\n" : "";
    std::string sep = pretty ? ",\n" : ", ";
    std::string pad =
        pretty ? std::string(static_cast<std::size_t>(indent) + 2, ' ')
               : "";
    os << "{";
    bool first = true;
    for (const auto *stat : stats) {
        os << (first ? open : sep) << pad << '"'
           << trace::jsonEscape(stat->name()) << "\": ";
        stat->dumpJson(os);
        first = false;
    }
    for (const auto *child : children) {
        os << (first ? open : sep) << pad << '"'
           << trace::jsonEscape(child->groupName()) << "\": ";
        child->dumpStatsJson(os, indent + 2, pretty);
        first = false;
    }
    if (!first && pretty)
        os << '\n' << std::string(static_cast<std::size_t>(indent), ' ');
    os << "}";
}

namespace
{

void
emitLine(std::ostream &os, const std::string &prefix,
         const std::string &name, double value, const std::string &desc)
{
    std::string full = prefix.empty() ? name : prefix + "." + name;
    os << std::left << std::setw(48) << full << ' '
       << std::right << std::setw(16) << value
       << "  # " << desc << '\n';
}

} // namespace

void
Scalar::dump(std::ostream &os, const std::string &prefix) const
{
    emitLine(os, prefix, name(), _value, desc());
}

void
Average::dump(std::ostream &os, const std::string &prefix) const
{
    emitLine(os, prefix, name() + ".mean", mean(), desc());
    emitLine(os, prefix, name() + ".count",
             static_cast<double>(_count), desc() + " (samples)");
}

double
Distribution::quantile(double q) const
{
    std::uint64_t in_range = _count - _underflow - _overflow;
    if (in_range == 0)
        return _lo;
    double target = q * static_cast<double>(in_range);
    double cum = 0.0;
    for (std::size_t i = 0; i < buckets.size(); ++i) {
        double next = cum + static_cast<double>(buckets[i]);
        if (next >= target && buckets[i] > 0) {
            double frac = (target - cum) / buckets[i];
            return _lo + (static_cast<double>(i) + frac) * _bucketWidth;
        }
        cum = next;
    }
    return _hi;
}

double
Distribution::percentile(double q) const
{
    if (_count == 0)
        return 0.0;
    if (q < 0.0)
        q = 0.0;
    if (q > 1.0)
        q = 1.0;
    double target = q * static_cast<double>(_count);
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < logBuckets.size(); ++i) {
        std::uint64_t n = logBuckets[i];
        if (n == 0)
            continue;
        if (static_cast<double>(seen + n) >= target) {
            // Bucket i holds magnitudes [2^(i-1), 2^i); bucket 0
            // holds [0, 1). Interpolate linearly inside it.
            double lo = i == 0 ? 0.0
                               : std::ldexp(1.0,
                                            static_cast<int>(i) - 1);
            double hi = std::ldexp(1.0, static_cast<int>(i));
            if (i == 0)
                hi = 1.0;
            double frac = (target - static_cast<double>(seen)) /
                          static_cast<double>(n);
            return lo + (hi - lo) * frac;
        }
        seen += n;
    }
    return 0.0;
}

void
Distribution::dump(std::ostream &os, const std::string &prefix) const
{
    emitLine(os, prefix, name() + ".mean", mean(), desc());
    emitLine(os, prefix, name() + ".count",
             static_cast<double>(_count), desc() + " (samples)");
    emitLine(os, prefix, name() + ".underflow",
             static_cast<double>(_underflow), desc() + " (< lo)");
    emitLine(os, prefix, name() + ".overflow",
             static_cast<double>(_overflow), desc() + " (>= hi)");
}

void
Histogram::dump(std::ostream &os, const std::string &prefix) const
{
    emitLine(os, prefix, name() + ".mean", mean(), desc());
    emitLine(os, prefix, name() + ".count",
             static_cast<double>(_count), desc() + " (samples)");
}

void
Formula::dump(std::ostream &os, const std::string &prefix) const
{
    emitLine(os, prefix, name(), value(), desc());
}

namespace
{

/** JSON has no inf/nan literals; write a round-trippable number. */
void
jsonNumber(std::ostream &os, double v)
{
    if (!std::isfinite(v)) {
        os << 0;
        return;
    }
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    os << buf;
}

void
jsonKind(std::ostream &os, const char *kind, const std::string &desc)
{
    os << "{\"kind\": \"" << kind << "\", \"desc\": \""
       << trace::jsonEscape(desc) << "\"";
}

} // namespace

void
Scalar::dumpJson(std::ostream &os) const
{
    jsonKind(os, "scalar", desc());
    os << ", \"value\": ";
    jsonNumber(os, _value);
    os << "}";
}

void
Average::dumpJson(std::ostream &os) const
{
    jsonKind(os, "average", desc());
    os << ", \"count\": " << _count << ", \"sum\": ";
    jsonNumber(os, _sum);
    os << ", \"mean\": ";
    jsonNumber(os, mean());
    os << ", \"min\": ";
    jsonNumber(os, minValue());
    os << ", \"max\": ";
    jsonNumber(os, maxValue());
    os << ", \"variance\": ";
    jsonNumber(os, variance());
    os << "}";
}

void
Distribution::dumpJson(std::ostream &os) const
{
    jsonKind(os, "distribution", desc());
    os << ", \"count\": " << _count << ", \"mean\": ";
    jsonNumber(os, mean());
    os << ", \"sum\": ";
    jsonNumber(os, _sum);
    os << ", \"p50\": ";
    jsonNumber(os, p50());
    os << ", \"p95\": ";
    jsonNumber(os, p95());
    os << ", \"p99\": ";
    jsonNumber(os, p99());
    os << ", \"lo\": ";
    jsonNumber(os, _lo);
    os << ", \"hi\": ";
    jsonNumber(os, _hi);
    os << ", \"underflow\": " << _underflow
       << ", \"overflow\": " << _overflow << ", \"buckets\": [";
    for (std::size_t i = 0; i < buckets.size(); ++i)
        os << (i ? ", " : "") << buckets[i];
    os << "]}";
}

void
Histogram::dumpJson(std::ostream &os) const
{
    jsonKind(os, "histogram", desc());
    os << ", \"count\": " << _count << ", \"mean\": ";
    jsonNumber(os, mean());
    // Emit only the occupied log2 buckets to keep files small.
    os << ", \"buckets\": {";
    bool first = true;
    for (std::size_t i = 0; i < buckets.size(); ++i) {
        if (buckets[i] == 0)
            continue;
        os << (first ? "" : ", ") << '"' << i << "\": " << buckets[i];
        first = false;
    }
    os << "}}";
}

void
Formula::dumpJson(std::ostream &os) const
{
    jsonKind(os, "formula", desc());
    os << ", \"value\": ";
    jsonNumber(os, value());
    os << "}";
}

} // namespace stats
} // namespace tlsim
