#include "sim/stats.hh"

#include <array>
#include <iomanip>

namespace tlsim
{
namespace stats
{

StatBase::StatBase(StatGroup *parent, std::string name, std::string desc)
    : _name(std::move(name)), _desc(std::move(desc))
{
    TLSIM_ASSERT(parent != nullptr, "stat '{}' requires a parent group",
                 _name);
    parent->addStat(this);
}

StatGroup::StatGroup(std::string name, StatGroup *parent)
    : _name(std::move(name))
{
    if (parent)
        parent->addChild(this);
}

void
StatGroup::resetStats()
{
    for (auto *stat : stats)
        stat->reset();
    for (auto *child : children)
        child->resetStats();
}

void
StatGroup::dumpStats(std::ostream &os, const std::string &prefix) const
{
    std::string full = prefix.empty() ? _name : prefix + "." + _name;
    for (const auto *stat : stats)
        stat->dump(os, full);
    for (const auto *child : children)
        child->dumpStats(os, full);
}

namespace
{

void
emitLine(std::ostream &os, const std::string &prefix,
         const std::string &name, double value, const std::string &desc)
{
    std::string full = prefix.empty() ? name : prefix + "." + name;
    os << std::left << std::setw(48) << full << ' '
       << std::right << std::setw(16) << value
       << "  # " << desc << '\n';
}

} // namespace

void
Scalar::dump(std::ostream &os, const std::string &prefix) const
{
    emitLine(os, prefix, name(), _value, desc());
}

void
Average::dump(std::ostream &os, const std::string &prefix) const
{
    emitLine(os, prefix, name() + ".mean", mean(), desc());
    emitLine(os, prefix, name() + ".count",
             static_cast<double>(_count), desc() + " (samples)");
}

double
Distribution::quantile(double q) const
{
    std::uint64_t in_range = _count - _underflow - _overflow;
    if (in_range == 0)
        return _lo;
    double target = q * static_cast<double>(in_range);
    double cum = 0.0;
    for (std::size_t i = 0; i < buckets.size(); ++i) {
        double next = cum + static_cast<double>(buckets[i]);
        if (next >= target && buckets[i] > 0) {
            double frac = (target - cum) / buckets[i];
            return _lo + (static_cast<double>(i) + frac) * _bucketWidth;
        }
        cum = next;
    }
    return _hi;
}

void
Distribution::dump(std::ostream &os, const std::string &prefix) const
{
    emitLine(os, prefix, name() + ".mean", mean(), desc());
    emitLine(os, prefix, name() + ".count",
             static_cast<double>(_count), desc() + " (samples)");
    emitLine(os, prefix, name() + ".underflow",
             static_cast<double>(_underflow), desc() + " (< lo)");
    emitLine(os, prefix, name() + ".overflow",
             static_cast<double>(_overflow), desc() + " (>= hi)");
}

void
Histogram::dump(std::ostream &os, const std::string &prefix) const
{
    emitLine(os, prefix, name() + ".mean", mean(), desc());
    emitLine(os, prefix, name() + ".count",
             static_cast<double>(_count), desc() + " (samples)");
}

void
Formula::dump(std::ostream &os, const std::string &prefix) const
{
    emitLine(os, prefix, name(), value(), desc());
}

} // namespace stats
} // namespace tlsim
