#include "sim/table.hh"

#include <algorithm>

namespace tlsim
{

void
TextTable::print(std::ostream &os) const
{
    std::vector<std::size_t> widths;
    auto grow = [&](const std::vector<std::string> &row) {
        if (row.size() > widths.size())
            widths.resize(row.size(), 0);
        for (std::size_t i = 0; i < row.size(); ++i)
            widths[i] = std::max(widths[i], row[i].size());
    };
    grow(_header);
    for (const auto &row : _rows)
        grow(row);

    if (!_title.empty())
        os << "== " << _title << " ==\n";

    auto emit = [&](const std::vector<std::string> &row) {
        for (std::size_t i = 0; i < row.size(); ++i) {
            os << std::left << std::setw(static_cast<int>(widths[i]) + 2)
               << row[i];
        }
        os << '\n';
    };
    if (!_header.empty()) {
        emit(_header);
        std::size_t total = 0;
        for (auto w : widths)
            total += w + 2;
        os << std::string(total, '-') << '\n';
    }
    for (const auto &row : _rows)
        emit(row);
    os.flush();
}

void
TextTable::printCsv(std::ostream &os) const
{
    auto emit = [&](const std::vector<std::string> &row) {
        for (std::size_t i = 0; i < row.size(); ++i) {
            if (i)
                os << ',';
            os << row[i];
        }
        os << '\n';
    };
    if (!_header.empty())
        emit(_header);
    for (const auto &row : _rows)
        emit(row);
    os.flush();
}

} // namespace tlsim
