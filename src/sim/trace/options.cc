#include "sim/trace/options.hh"

#include <cstdlib>
#include <cstring>
#include <fstream>

#include "sim/logging.hh"
#include "sim/trace/debug.hh"

namespace tlsim
{
namespace trace
{

namespace
{

/** If arg is "--<key>=v", store v and return true. */
bool
matchOption(const char *arg, const char *key, std::string &value)
{
    std::size_t len = std::strlen(key);
    if (std::strncmp(arg, key, len) != 0 || arg[len] != '=')
        return false;
    value = arg + len + 1;
    return true;
}

void
fillFromEnv(ObservabilityOptions &opts)
{
    auto env_default = [](const char *name, std::string &value) {
        const char *env = std::getenv(name);
        if (value.empty() && env)
            value = env;
    };
    env_default("TLSIM_TRACE_OUT", opts.traceOut);
    env_default("TLSIM_STATS_JSON", opts.statsJson);
    env_default("TLSIM_STATS_SERIES", opts.statsSeries);
    if (const char *env = std::getenv("TLSIM_STATS_PERIOD"))
        opts.statsPeriod = std::strtoull(env, nullptr, 10);
}

} // namespace

ObservabilityOptions
parseObservabilityArgs(int &argc, char **argv)
{
    ObservabilityOptions opts;
    std::string period;
    int out = 1;
    for (int i = 1; i < argc; ++i) {
        if (matchOption(argv[i], "--debug-flags", opts.debugFlags) ||
            matchOption(argv[i], "--trace-out", opts.traceOut) ||
            matchOption(argv[i], "--stats-json", opts.statsJson) ||
            matchOption(argv[i], "--stats-series", opts.statsSeries) ||
            matchOption(argv[i], "--stats-period", period)) {
            continue;
        }
        argv[out++] = argv[i];
    }
    argc = out;
    if (!period.empty())
        opts.statsPeriod = std::strtoull(period.c_str(), nullptr, 10);
    fillFromEnv(opts);
    return opts;
}

Observability::Observability(int &argc, char **argv)
    : opts(parseObservabilityArgs(argc, argv))
{
    applyOptions();
}

Observability::Observability()
{
    fillFromEnv(opts);
    applyOptions();
}

void
Observability::applyOptions()
{
    if (!opts.debugFlags.empty())
        debug::setFlags(opts.debugFlags);
    if (opts.statsPeriod == 0)
        opts.statsPeriod = 100'000;
    if (!opts.traceOut.empty()) {
        sink = std::make_unique<TraceSink>(opts.traceOut);
        TraceSink::setActive(sink.get());
    }
}

Observability::~Observability()
{
    if (sink) {
        sink->close();
        inform("trace written: {} ({} events)", opts.traceOut,
               sink->eventCount());
    }
}

std::unique_ptr<StatSampler>
Observability::makeSampler(EventQueue &eq,
                           const stats::StatGroup &group) const
{
    if (opts.statsSeries.empty())
        return nullptr;
    auto sampler = std::make_unique<StatSampler>(
        eq, group, opts.statsPeriod, opts.statsSeries);
    sampler->start();
    return sampler;
}

void
Observability::dumpFinalStats(const stats::StatGroup &group) const
{
    if (opts.statsJson.empty())
        return;
    std::ofstream out(opts.statsJson);
    if (!out.is_open())
        fatal("cannot open stats JSON file '{}'", opts.statsJson);
    group.dumpStatsJson(out);
    out << '\n';
    inform("stats JSON written: {}", opts.statsJson);
}

} // namespace trace
} // namespace tlsim
