#include "sim/trace/sampler.hh"

#include "sim/trace/debug.hh"

namespace tlsim
{
namespace trace
{

StatSampler::StatSampler(EventQueue &eq, const stats::StatGroup &group_,
                         Cycles period_, std::ostream &os_)
    : eventq(eq), group(group_), period(period_), os(os_), event(*this)
{
    TLSIM_ASSERT(period > 0, "stat sampler needs a positive period");
}

StatSampler::StatSampler(EventQueue &eq, const stats::StatGroup &group_,
                         Cycles period_, const std::string &path)
    : eventq(eq), group(group_), period(period_),
      owned(std::make_unique<std::ofstream>(path)), os(*owned),
      event(*this)
{
    TLSIM_ASSERT(period > 0, "stat sampler needs a positive period");
    if (!owned->is_open())
        fatal("cannot open stats time-series file '{}'", path);
}

StatSampler::~StatSampler()
{
    stop();
}

void
StatSampler::start()
{
    if (!event.scheduled())
        eventq.schedule(&event, eventq.now() + period);
}

void
StatSampler::stop()
{
    if (event.scheduled())
        eventq.deschedule(&event);
}

void
StatSampler::sampleNow()
{
    os << "{\"tick\": " << eventq.now() << ", \"stats\": ";
    group.dumpStatsJson(os, 0, /*pretty=*/false);
    os << "}\n";
    os.flush();
    ++samples;
    TLSIM_DPRINTF(Stats, "t={} stat sample #{}", eventq.now(), samples);
}

void
StatSampler::fire()
{
    sampleNow();
    eventq.schedule(&event, eventq.now() + period);
}

} // namespace trace
} // namespace tlsim
