#include "sim/trace/debug.hh"

#include <cstdlib>
#include <iostream>
#include <sstream>

#include "sim/trace/observed.hh"
#include "sim/trace/tracesink.hh"

namespace tlsim
{
namespace debug
{

namespace
{

/** Meyers singleton so flags defined in any TU register safely. */
std::vector<Flag *> &
registry()
{
    static std::vector<Flag *> flags;
    return flags;
}

std::ostream *outputStream = nullptr;

} // namespace

Flag::Flag(const char *name, const char *desc)
    : _name(name), _desc(desc)
{
    registry().push_back(this);
}

void
Flag::enable()
{
    _enabled = true;
    trace::detail::recomputeObserved();
}

void
Flag::disable()
{
    _enabled = false;
    trace::detail::recomputeObserved();
}

Flag *
Flag::find(const std::string &name)
{
    for (Flag *flag : registry()) {
        if (name == flag->name())
            return flag;
    }
    return nullptr;
}

const std::vector<Flag *> &
Flag::all()
{
    return registry();
}

void
setFlags(const std::string &csv)
{
    std::istringstream is(csv);
    std::string token;
    while (std::getline(is, token, ',')) {
        if (token.empty())
            continue;
        bool disable = token[0] == '-';
        std::string name = disable ? token.substr(1) : token;
        if (name == "All" || name == "all") {
            for (Flag *flag : Flag::all()) {
                if (disable)
                    flag->disable();
                else
                    flag->enable();
            }
            continue;
        }
        Flag *flag = Flag::find(name);
        if (!flag) {
            warn("unknown debug flag '{}' (known: use "
                 "TLSIM_DEBUG_FLAGS=All)", name);
            continue;
        }
        if (disable)
            flag->disable();
        else
            flag->enable();
    }
}

void
clearFlags()
{
    for (Flag *flag : Flag::all())
        flag->disable();
}

std::ostream &
output()
{
    return outputStream ? *outputStream : std::cerr;
}

void
setOutput(std::ostream *os)
{
    outputStream = os;
}

void
dprintfMessage(const char *flag_name, const std::string &msg)
{
    output() << flag_name << ": " << msg << '\n';
}

namespace flags
{
Flag EventQ{"EventQ", "event scheduling and dispatch"};
Flag L1{"L1", "L1 cache hits/misses/fills"};
Flag L2{"L2", "L2 design request handling (all designs)"};
Flag NoC{"NoC", "mesh / transmission-line link traffic"};
Flag Dram{"Dram", "main-memory accesses and queueing"};
Flag CPU{"CPU", "out-of-order core progress"};
Flag Stats{"Stats", "stats sampling and export"};
} // namespace flags

namespace
{

/**
 * Applies TLSIM_DEBUG_FLAGS at program start. Defined after the flag
 * objects in this TU so within-TU initialization order guarantees the
 * built-in flags exist by the time the environment is read.
 */
struct EnvInit
{
    EnvInit()
    {
        if (const char *env = std::getenv("TLSIM_DEBUG_FLAGS"))
            setFlags(env);
    }
};

EnvInit envInit;

} // namespace

} // namespace debug

namespace trace
{
namespace detail
{

bool observedFlag = false;

void
recomputeObserved()
{
    bool any = TraceSink::active() != nullptr;
    for (const debug::Flag *flag : debug::Flag::all())
        any = any || flag->enabled();
    observedFlag = any;
}

} // namespace detail
} // namespace trace
} // namespace tlsim
