/**
 * @file
 * Chrome trace-event JSON emission.
 *
 * A TraceSink serializes simulation activity as Chrome trace-event
 * JSON (the "JSON Object Format": {"traceEvents": [...]}) viewable in
 * Perfetto (ui.perfetto.dev) or chrome://tracing. Simulated ticks map
 * one-to-one onto the viewer's microsecond timeline.
 *
 * Instrumentation sites use the active-sink pattern:
 *
 *   if (auto *sink = trace::TraceSink::active())
 *       sink->span(trace::cat::l2, "load", start, end, tid, req_id);
 *
 * With no sink installed the cost is one pointer load and branch;
 * nothing is formatted.
 *
 * Spans are "complete" events (ph "X") with explicit start/duration,
 * which fits the simulator's busy-until reservation model: the span
 * of a resource is known the moment it is reserved. The optional
 * request id is recorded in args.req, causally linking every span a
 * request touches across the eventq/L1/L2/NoC/bank/DRAM categories.
 */

#ifndef TLSIM_SIM_TRACE_TRACESINK_HH
#define TLSIM_SIM_TRACE_TRACESINK_HH

#include <cstdint>
#include <fstream>
#include <memory>
#include <ostream>
#include <string>

#include "sim/types.hh"

namespace tlsim
{
namespace trace
{

/** Span category names (the "cat" field; filterable in the viewer). */
namespace cat
{
inline constexpr const char *eventq = "eventq";
inline constexpr const char *cpu = "cpu";
inline constexpr const char *l1 = "l1";
inline constexpr const char *l2 = "l2";
inline constexpr const char *noc = "noc";
inline constexpr const char *bank = "bank";
inline constexpr const char *dram = "dram";
} // namespace cat

/**
 * Track ("tid") assignment: each simulated resource family gets its
 * own row in the viewer. Offsets leave room for per-instance tracks
 * (e.g. tidNocBase + pair index).
 */
namespace tid
{
inline constexpr int eventq = 0;
inline constexpr int cpu = 1;
inline constexpr int l1 = 2;
inline constexpr int l2 = 3;
inline constexpr int dram = 4;
inline constexpr int nocBase = 100; ///< + link/pair index (down)
inline constexpr int nocUpBase = 200; ///< + pair index (up links)
inline constexpr int bankBase = 300; ///< + bank index
} // namespace tid

/**
 * Writes Chrome trace-event JSON to a stream or file.
 */
class TraceSink
{
  public:
    /** Emit to an externally owned stream (used by tests). */
    explicit TraceSink(std::ostream &os);

    /** Emit to a file; fatal() if the file cannot be opened. */
    explicit TraceSink(const std::string &path);

    ~TraceSink();

    TraceSink(const TraceSink &) = delete;
    TraceSink &operator=(const TraceSink &) = delete;

    /**
     * Emit a complete ("X") span.
     * @param category One of trace::cat (any string accepted).
     * @param name Span label.
     * @param start First tick of the span.
     * @param end One past the last tick (dur = end - start; a zero
     *            duration marks an instantaneous occurrence).
     * @param track Viewer row, see trace::tid.
     * @param req Request id for causal linking (0 = none).
     */
    void span(const char *category, const std::string &name, Tick start,
              Tick end, int track, std::uint64_t req = 0);

    /** Emit a counter ("C") sample, drawn as a graph in the viewer. */
    void counter(const char *category, const std::string &name,
                 Tick when, double value);

    /** Number of events emitted so far. */
    std::uint64_t eventCount() const { return events; }

    /**
     * Write the JSON footer and stop accepting events. Called by the
     * destructor if not called explicitly.
     */
    void close();

    /** The installed sink, or nullptr when tracing is off. */
    static TraceSink *active() { return activeSink; }

    /**
     * Install @p sink as the process-wide active sink (pass nullptr
     * to disable tracing). The caller retains ownership.
     */
    static void setActive(TraceSink *sink);

  private:
    void writeHeader();
    void writeEventPrefix(const char *category, const std::string &name,
                          char phase, Tick when, int track);

    static TraceSink *activeSink;

    std::unique_ptr<std::ofstream> owned;
    std::ostream &os;
    bool closed = false;
    bool first = true;
    std::uint64_t events = 0;
};

/** Escape a string for inclusion in a JSON string literal. */
std::string jsonEscape(const std::string &s);

} // namespace trace
} // namespace tlsim

#endif // TLSIM_SIM_TRACE_TRACESINK_HH
