/**
 * @file
 * Periodic statistics sampling: dump a StatGroup to a JSON-lines
 * time series every N ticks of simulated time.
 *
 * Each fire appends one line
 *
 *   {"tick": 12345, "stats": { ...dumpStatsJson()... }}
 *
 * so a run's stats become a machine-readable time series (load with
 * one json.loads per line). The sampler schedules itself on the
 * simulation event queue; stop() (or destruction) deschedules it, and
 * it must be stopped before draining the queue is expected to
 * terminate a run (EventQueue::run with no tick limit never returns
 * while a sampler is active).
 */

#ifndef TLSIM_SIM_TRACE_SAMPLER_HH
#define TLSIM_SIM_TRACE_SAMPLER_HH

#include <fstream>
#include <memory>
#include <ostream>
#include <string>

#include "sim/eventq.hh"
#include "sim/stats.hh"

namespace tlsim
{
namespace trace
{

/**
 * Self-rescheduling periodic dump of one stats tree.
 */
class StatSampler
{
  public:
    /**
     * @param eq Queue supplying simulated time.
     * @param group Stats tree to snapshot.
     * @param period Ticks between samples (> 0).
     * @param os Externally owned destination stream.
     */
    StatSampler(EventQueue &eq, const stats::StatGroup &group,
                Cycles period, std::ostream &os);

    /** File-destination variant; fatal() if the file cannot open. */
    StatSampler(EventQueue &eq, const stats::StatGroup &group,
                Cycles period, const std::string &path);

    ~StatSampler();

    StatSampler(const StatSampler &) = delete;
    StatSampler &operator=(const StatSampler &) = delete;

    /** Schedule the first sample at now() + period. */
    void start();

    /** Deschedule; no further samples are taken. */
    void stop();

    /** Take one sample immediately (also used by the timer). */
    void sampleNow();

    std::uint64_t samplesTaken() const { return samples; }

  private:
    class FireEvent : public Event
    {
      public:
        explicit FireEvent(StatSampler &s) : sampler(s) {}
        void process() override { sampler.fire(); }
        const char *name() const override { return "StatSampler"; }

      private:
        StatSampler &sampler;
    };

    void fire();

    EventQueue &eventq;
    const stats::StatGroup &group;
    Cycles period;
    std::unique_ptr<std::ofstream> owned;
    std::ostream &os;
    FireEvent event;
    std::uint64_t samples = 0;
};

} // namespace trace
} // namespace tlsim

#endif // TLSIM_SIM_TRACE_SAMPLER_HH
