/**
 * @file
 * Shared observability command-line handling for examples and bench
 * binaries:
 *
 *   --debug-flags=L2,NoC     enable debug output (also via the
 *                            TLSIM_DEBUG_FLAGS environment variable)
 *   --trace-out=run.json     write a Chrome trace-event file
 *   --stats-json=out.json    export final stats as JSON
 *   --stats-series=ts.jsonl  periodic stats samples (JSON lines)
 *   --stats-period=N         sample period in ticks (default 100000)
 *
 * Observability parses and strips these from argv (so binaries keep
 * their positional arguments), installs the trace sink for the
 * program's lifetime, and offers helpers to attach a sampler and dump
 * final stats. Environment variables TLSIM_TRACE_OUT,
 * TLSIM_STATS_JSON, TLSIM_STATS_SERIES and TLSIM_STATS_PERIOD act as
 * defaults so even argv-less harnesses (google-benchmark) are
 * reachable.
 */

#ifndef TLSIM_SIM_TRACE_OPTIONS_HH
#define TLSIM_SIM_TRACE_OPTIONS_HH

#include <memory>
#include <string>

#include "sim/eventq.hh"
#include "sim/stats.hh"
#include "sim/trace/sampler.hh"
#include "sim/trace/tracesink.hh"

namespace tlsim
{
namespace trace
{

/** Parsed values of the observability options. */
struct ObservabilityOptions
{
    std::string debugFlags;
    std::string traceOut;
    std::string statsJson;
    std::string statsSeries;
    Cycles statsPeriod = 100'000;
};

/**
 * Extract observability options from argv (recognized arguments are
 * removed and argc adjusted), falling back to the environment.
 */
ObservabilityOptions parseObservabilityArgs(int &argc, char **argv);

/**
 * RAII wrapper used by main(): parse options, apply debug flags, and
 * install the trace sink; the destructor closes the trace file.
 */
class Observability
{
  public:
    Observability(int &argc, char **argv);

    /** Environment-only variant for harnesses without argv access. */
    Observability();

    ~Observability();

    Observability(const Observability &) = delete;
    Observability &operator=(const Observability &) = delete;

    const ObservabilityOptions &options() const { return opts; }

    bool tracing() const { return sink != nullptr; }

    /**
     * Create (and start) a periodic sampler for @p group if
     * --stats-series was given; returns nullptr otherwise. The
     * caller owns the sampler and must stop/destroy it before the
     * event queue dies.
     */
    std::unique_ptr<StatSampler> makeSampler(EventQueue &eq,
                                             const stats::StatGroup
                                                 &group) const;

    /** Write final stats JSON to --stats-json, if given. */
    void dumpFinalStats(const stats::StatGroup &group) const;

  private:
    void applyOptions();

    ObservabilityOptions opts;
    std::unique_ptr<TraceSink> sink;
};

} // namespace trace
} // namespace tlsim

#endif // TLSIM_SIM_TRACE_OPTIONS_HH
