/**
 * @file
 * Per-request latency breakdown accounting.
 *
 * Every L2 design decomposes each demand lookup's end-to-end latency
 * into four components; the invariant (checked in
 * tests/test_breakdown.cc) is that the components sum exactly to the
 * request's measured latency:
 *
 *   queueWait  cycles spent waiting for busy links/banks/slots
 *   wire       cycles in flight or serializing on the interconnect
 *   bank       cycles of SRAM bank access on the critical path
 *   dram       cycles from miss determination to data back on chip
 *   fault      cycles spent on resilience: CRC checks, retry round
 *              trips and backoff, degraded-path detours (zero unless
 *              fault injection is enabled)
 *
 * The TLC designs compute the split exactly along the critical-path
 * member bank; the mesh designs (SNUCA2/DNUCA) take wire+bank from
 * the static uncontended path and report contention as the residual.
 */

#ifndef TLSIM_SIM_TRACE_BREAKDOWN_HH
#define TLSIM_SIM_TRACE_BREAKDOWN_HH

#include "sim/types.hh"

namespace tlsim
{
namespace trace
{

/** Latency components of one L2 request, in cycles. */
struct LatencyBreakdown
{
    double queueWait = 0.0;
    double wire = 0.0;
    double bank = 0.0;
    double dram = 0.0;
    double fault = 0.0;

    double
    total() const
    {
        return queueWait + wire + bank + dram + fault;
    }

    LatencyBreakdown &
    operator+=(const LatencyBreakdown &other)
    {
        queueWait += other.queueWait;
        wire += other.wire;
        bank += other.bank;
        dram += other.dram;
        fault += other.fault;
        return *this;
    }
};

} // namespace trace
} // namespace tlsim

#endif // TLSIM_SIM_TRACE_BREAKDOWN_HH
