/**
 * @file
 * Gated debug output in the spirit of gem5's DebugFlags.
 *
 * Each subsystem owns a Flag object (registered at static-init time
 * into a global registry) and writes through TLSIM_DPRINTF(Flag, ...).
 * When the flag is disabled the macro costs one relaxed bool load and
 * a predicted-not-taken branch: no arguments are evaluated and no
 * formatting happens. Flags are enabled at runtime via
 * debug::setFlags("L2,NoC") or the TLSIM_DEBUG_FLAGS environment
 * variable (comma separated; "All" enables everything), which is
 * applied automatically at program start.
 */

#ifndef TLSIM_SIM_TRACE_DEBUG_HH
#define TLSIM_SIM_TRACE_DEBUG_HH

#include <ostream>
#include <string>
#include <vector>

#include "sim/logging.hh"

namespace tlsim
{
namespace debug
{

/**
 * One named debug flag. Instances must have static storage duration;
 * the constructor registers them in the global registry.
 */
class Flag
{
  public:
    Flag(const char *name, const char *desc);

    Flag(const Flag &) = delete;
    Flag &operator=(const Flag &) = delete;

    const char *name() const { return _name; }
    const char *desc() const { return _desc; }

    bool enabled() const { return _enabled; }
    explicit operator bool() const { return _enabled; }

    void enable();
    void disable();

    /** Look a flag up by name; nullptr if unknown. */
    static Flag *find(const std::string &name);

    /** Every registered flag, in registration order. */
    static const std::vector<Flag *> &all();

  private:
    const char *_name;
    const char *_desc;
    bool _enabled = false;
};

/**
 * Enable flags from a comma-separated list ("L2,NoC"). "All" (or
 * "all") enables every flag; a leading '-' disables one ("All,-EventQ").
 * Unknown names produce a warn() and are otherwise ignored.
 */
void setFlags(const std::string &csv);

/** Disable every flag. */
void clearFlags();

/** Stream debug output goes to (defaults to std::cerr). */
std::ostream &output();

/** Redirect debug output (pass nullptr to restore std::cerr). */
void setOutput(std::ostream *os);

/** Emit one already-formatted line, prefixed with the flag name. */
void dprintfMessage(const char *flag_name, const std::string &msg);

/** The built-in flags, one per instrumented subsystem. */
namespace flags
{
extern Flag EventQ; ///< event scheduling and dispatch
extern Flag L1; ///< L1 cache hits/misses/fills
extern Flag L2; ///< L2 design request handling (all designs)
extern Flag NoC; ///< mesh / transmission-line link traffic
extern Flag Dram; ///< main-memory accesses and queueing
extern Flag CPU; ///< out-of-order core progress
extern Flag Stats; ///< stats sampling and export
} // namespace flags

} // namespace debug
} // namespace tlsim

/**
 * Print a formatted message when the given debug flag is enabled.
 * The flag argument is the bare name from tlsim::debug::flags.
 * Arguments are not evaluated when the flag is off.
 */
#define TLSIM_DPRINTF(flag, ...)                                       \
    do {                                                               \
        if (::tlsim::debug::flags::flag.enabled()) [[unlikely]] {      \
            ::tlsim::debug::dprintfMessage(                            \
                ::tlsim::debug::flags::flag.name(),                    \
                ::tlsim::csprintf(__VA_ARGS__));                       \
        }                                                              \
    } while (0)

#endif // TLSIM_SIM_TRACE_DEBUG_HH
