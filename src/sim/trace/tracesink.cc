#include "sim/trace/tracesink.hh"

#include <cstdio>

#include "sim/logging.hh"
#include "sim/trace/observed.hh"

namespace tlsim
{
namespace trace
{

TraceSink *TraceSink::activeSink = nullptr;

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          case '\r':
            out += "\\r";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

TraceSink::TraceSink(std::ostream &os_)
    : os(os_)
{
    writeHeader();
}

TraceSink::TraceSink(const std::string &path)
    : owned(std::make_unique<std::ofstream>(path)), os(*owned)
{
    if (!owned->is_open())
        fatal("cannot open trace output file '{}'", path);
    writeHeader();
}

TraceSink::~TraceSink()
{
    close();
    if (activeSink == this) {
        activeSink = nullptr;
        detail::recomputeObserved();
    }
}

void
TraceSink::setActive(TraceSink *sink)
{
    activeSink = sink;
    detail::recomputeObserved();
}

void
TraceSink::writeHeader()
{
    os << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n";
}

void
TraceSink::writeEventPrefix(const char *category,
                            const std::string &name, char phase,
                            Tick when, int track)
{
    if (first)
        first = false;
    else
        os << ",\n";
    os << "{\"ph\":\"" << phase << "\",\"cat\":\"" << category
       << "\",\"name\":\"" << jsonEscape(name) << "\",\"ts\":" << when
       << ",\"pid\":0,\"tid\":" << track;
    ++events;
}

void
TraceSink::span(const char *category, const std::string &name,
                Tick start, Tick end, int track, std::uint64_t req)
{
    if (closed)
        return;
    TLSIM_ASSERT(end >= start, "trace span '{}' ends before it starts",
                 name);
    writeEventPrefix(category, name, 'X', start, track);
    os << ",\"dur\":" << (end - start);
    if (req)
        os << ",\"args\":{\"req\":" << req << "}";
    os << "}";
}

void
TraceSink::counter(const char *category, const std::string &name,
                   Tick when, double value)
{
    if (closed)
        return;
    writeEventPrefix(category, name, 'C', when, 0);
    os << ",\"args\":{\"value\":" << value << "}}";
}

void
TraceSink::close()
{
    if (closed)
        return;
    closed = true;
    os << "\n]}\n";
    os.flush();
}

} // namespace trace
} // namespace tlsim
