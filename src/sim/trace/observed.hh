/**
 * @file
 * One-byte fast path for "is any observation on?".
 *
 * Hot loops (event dispatch, event scheduling) guard their
 * instrumentation behind trace::observed() — a single global bool
 * that is true while any debug flag is enabled or a TraceSink is
 * installed — and keep the actual formatting in cold out-of-line
 * helpers. The bool is recomputed on every flag or sink change, so
 * the steady-state cost with observation off is one predictable
 * load-and-branch per site.
 */

#ifndef TLSIM_SIM_TRACE_OBSERVED_HH
#define TLSIM_SIM_TRACE_OBSERVED_HH

namespace tlsim
{
namespace trace
{

namespace detail
{
extern bool observedFlag;

/** Re-derive observedFlag from the flag registry and active sink. */
void recomputeObserved();
} // namespace detail

/** True while any debug flag is enabled or a trace sink is active. */
inline bool observed() { return detail::observedFlag; }

} // namespace trace
} // namespace tlsim

#endif // TLSIM_SIM_TRACE_OBSERVED_HH
