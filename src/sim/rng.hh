/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Implements xoshiro256++ seeded via splitmix64 so that every
 * experiment is exactly reproducible from a single integer seed,
 * independent of the platform's std::mt19937 implementation details.
 */

#ifndef TLSIM_SIM_RNG_HH
#define TLSIM_SIM_RNG_HH

#include <cmath>
#include <cstdint>

#include "sim/logging.hh"

namespace tlsim
{

/**
 * xoshiro256++ pseudo-random generator with convenience distributions.
 *
 * All workload generators and randomized policies in the simulator
 * draw from instances of this class; two runs with equal seeds produce
 * bit-identical traces.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed, expanded via splitmix64. */
    explicit Rng(std::uint64_t seed = 0x5eed'cafe'f00d'd00dULL)
    {
        reseed(seed);
    }

    /** Re-initialize the state from a new seed. */
    void
    reseed(std::uint64_t seed)
    {
        std::uint64_t x = seed;
        for (auto &word : state) {
            // splitmix64 step.
            x += 0x9e3779b97f4a7c15ULL;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result =
            rotl(state[0] + state[3], 23) + state[0];
        const std::uint64_t t = state[1] << 17;
        state[2] ^= state[0];
        state[3] ^= state[1];
        state[1] ^= state[2];
        state[0] ^= state[3];
        state[2] ^= t;
        state[3] = rotl(state[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). bound must be > 0. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        TLSIM_ASSERT(bound > 0, "Rng::below bound must be positive");
        // Lemire's multiply-shift rejection method (unbiased).
        std::uint64_t x = next();
        __uint128_t m = static_cast<__uint128_t>(x) * bound;
        std::uint64_t lo = static_cast<std::uint64_t>(m);
        if (lo < bound) {
            std::uint64_t threshold = (-bound) % bound;
            while (lo < threshold) {
                x = next();
                m = static_cast<__uint128_t>(x) * bound;
                lo = static_cast<std::uint64_t>(m);
            }
        }
        return static_cast<std::uint64_t>(m >> 64);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t
    range(std::uint64_t lo, std::uint64_t hi)
    {
        TLSIM_ASSERT(lo <= hi, "Rng::range requires lo <= hi");
        return lo + below(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double
    real()
    {
        return (next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli trial with success probability p. */
    bool
    chance(double p)
    {
        return real() < p;
    }

    /**
     * Geometrically distributed count with mean @p mean (>= 0).
     * Used for "instructions until next event" style draws.
     */
    std::uint64_t
    geometric(double mean)
    {
        if (mean <= 0.0)
            return 0;
        double p = 1.0 / (mean + 1.0);
        double u = real();
        if (u >= 1.0)
            u = 0.9999999999999999;
        // Inverse-CDF of the geometric distribution on {0, 1, 2, ...}.
        double g = std::log(1.0 - u) / std::log(1.0 - p);
        if (g > 1e18)
            g = 1e18;
        return static_cast<std::uint64_t>(g);
    }

    /**
     * Zipf-like rank selection over n items with exponent s, using a
     * fast approximate inverse-CDF (good enough for workload skew).
     */
    std::uint64_t
    zipf(std::uint64_t n, double s)
    {
        TLSIM_ASSERT(n > 0, "Rng::zipf requires n > 0");
        if (s <= 0.0)
            return below(n);
        // Approximate inverse CDF for the continuous analogue.
        double u = real();
        double one_minus_s = 1.0 - s;
        double nn = static_cast<double>(n);
        double rank;
        if (one_minus_s > 1e-9 || one_minus_s < -1e-9) {
            double max_cdf = std::pow(nn, one_minus_s) - 1.0;
            rank = std::pow(1.0 + u * max_cdf, 1.0 / one_minus_s);
        } else {
            rank = std::exp(u * std::log(nn));
        }
        std::uint64_t r = static_cast<std::uint64_t>(rank);
        if (r >= n)
            r = n - 1;
        return r;
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state[4];
};

} // namespace tlsim

#endif // TLSIM_SIM_RNG_HH
