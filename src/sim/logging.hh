/**
 * @file
 * Logging and error-reporting primitives for the TLC simulator.
 *
 * Follows the gem5 convention: panic() for internal simulator bugs
 * (aborts), fatal() for user/configuration errors (clean exit),
 * warn()/inform() for non-fatal status messages.
 *
 * Messages use a lightweight "{}" placeholder syntax: each "{}" in the
 * format string is replaced by the next argument streamed through
 * operator<<. Literal braces are written as "{{" and "}}".
 */

#ifndef TLSIM_SIM_LOGGING_HH
#define TLSIM_SIM_LOGGING_HH

#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string>

namespace tlsim
{

/**
 * Format a string by substituting "{}" placeholders with arguments.
 *
 * "{{" and "}}" are escapes producing literal "{" and "}" (so brace
 * characters can appear in log and trace messages). Surplus arguments
 * are appended at the end separated by spaces; surplus placeholders
 * are left verbatim.
 *
 * @param fmt Format string containing zero or more "{}" placeholders.
 * @param args Values streamed via operator<< into the placeholders.
 * @return The formatted string.
 */
template <typename... Args>
std::string
csprintf(const std::string &fmt, const Args &...args)
{
    std::ostringstream out;
    std::size_t pos = 0;
    // Copy literal text (resolving {{ / }} escapes) up to and
    // including the next "{}" placeholder; false when the format
    // string is exhausted without finding one.
    [[maybe_unused]] auto advance = [&]() -> bool {
        while (pos < fmt.size()) {
            char c = fmt[pos];
            if ((c == '{' || c == '}') && pos + 1 < fmt.size() &&
                fmt[pos + 1] == c) {
                out << c;
                pos += 2;
                continue;
            }
            if (c == '{' && pos + 1 < fmt.size() &&
                fmt[pos + 1] == '}') {
                pos += 2;
                return true;
            }
            out << c;
            ++pos;
        }
        return false;
    };
    // Stream one argument into the next "{}"; used via fold expression.
    [[maybe_unused]] auto emit_one = [&](const auto &arg) {
        if (advance())
            out << arg;
        else
            out << ' ' << arg;
    };
    (emit_one(args), ...);
    // Flush the tail: resolve escapes, keep surplus "{}" verbatim.
    while (pos < fmt.size()) {
        char c = fmt[pos];
        if ((c == '{' || c == '}') && pos + 1 < fmt.size() &&
            fmt[pos + 1] == c) {
            pos += 2;
        } else {
            ++pos;
        }
        out << c;
    }
    return out.str();
}

/** Exception thrown by panic(); carries the formatted message. */
class PanicError : public std::runtime_error
{
  public:
    explicit PanicError(const std::string &msg)
        : std::runtime_error(msg)
    {}
};

/** Exception thrown by fatal(); carries the formatted message. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg)
        : std::runtime_error(msg)
    {}
};

namespace logging_detail
{
/** Print a tagged message to stderr (used by warn/inform/panic/fatal). */
void emitMessage(const char *tag, const std::string &msg);

/** If true, warn()/inform() output is suppressed (used in tests). */
extern bool quiet;
} // namespace logging_detail

/**
 * Report an internal simulator bug and throw PanicError.
 *
 * Use when something happens that should never happen regardless of
 * user input. Throws (rather than abort()) so tests can assert on it.
 */
template <typename... Args>
[[noreturn]] void
panic(const std::string &fmt, const Args &...args)
{
    std::string msg = csprintf(fmt, args...);
    logging_detail::emitMessage("panic", msg);
    throw PanicError(msg);
}

/**
 * Report an unrecoverable user/configuration error and throw
 * FatalError.
 */
template <typename... Args>
[[noreturn]] void
fatal(const std::string &fmt, const Args &...args)
{
    std::string msg = csprintf(fmt, args...);
    logging_detail::emitMessage("fatal", msg);
    throw FatalError(msg);
}

/** Report a suspicious but survivable condition. */
template <typename... Args>
void
warn(const std::string &fmt, const Args &...args)
{
    logging_detail::emitMessage("warn", csprintf(fmt, args...));
}

/** Report normal operating status. */
template <typename... Args>
void
inform(const std::string &fmt, const Args &...args)
{
    logging_detail::emitMessage("info", csprintf(fmt, args...));
}

/** panic() unless the condition holds. */
#define TLSIM_ASSERT(cond, ...)                                           \
    do {                                                                  \
        if (!(cond))                                                      \
            ::tlsim::panic("assertion '" #cond "' failed: " __VA_ARGS__); \
    } while (0)

} // namespace tlsim

#endif // TLSIM_SIM_LOGGING_HH
