/**
 * @file
 * Plain-text table formatter used by the benchmark harness to print
 * paper-style tables (aligned columns, optional CSV emission).
 */

#ifndef TLSIM_SIM_TABLE_HH
#define TLSIM_SIM_TABLE_HH

#include <iomanip>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

namespace tlsim
{

/**
 * A simple column-aligned text table.
 *
 * Build with setHeader()/addRow(), then print() for human-readable
 * output or printCsv() for machine-readable output.
 */
class TextTable
{
  public:
    explicit TextTable(std::string title = "")
        : _title(std::move(title))
    {}

    /** Set the column headers (defines the column count). */
    void
    setHeader(std::vector<std::string> header)
    {
        _header = std::move(header);
    }

    /** Append a pre-formatted row of cells. */
    void
    addRow(std::vector<std::string> row)
    {
        _rows.push_back(std::move(row));
    }

    /** Format a double with the given precision. */
    static std::string
    num(double v, int precision = 2)
    {
        std::ostringstream os;
        os << std::fixed << std::setprecision(precision) << v;
        return os.str();
    }

    std::size_t numRows() const { return _rows.size(); }

    /** Pretty-print with aligned columns and a rule under the header. */
    void print(std::ostream &os) const;

    /** Emit as comma-separated values (header first). */
    void printCsv(std::ostream &os) const;

  private:
    std::string _title;
    std::vector<std::string> _header;
    std::vector<std::vector<std::string>> _rows;
};

} // namespace tlsim

#endif // TLSIM_SIM_TABLE_HH
