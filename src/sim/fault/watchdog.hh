/**
 * @file
 * Event-queue deadlock watchdog.
 *
 * Request issuers (the L1 caches) register as clients and report each
 * outstanding miss; the cores' wait loops poll the watchdog while
 * blocked. If the event queue goes quiescent while requests are still
 * outstanding, or any single request exceeds the configured max age,
 * the watchdog dumps a structured diagnostic (every outstanding
 * request plus whatever the L2 design reports — link busy horizons,
 * per-bank queue depths) and panics instead of letting the simulation
 * hang. The panic is a catchable PanicError, so crash-isolated sweeps
 * turn it into a per-run error report.
 */

#ifndef TLSIM_SIM_FAULT_WATCHDOG_HH
#define TLSIM_SIM_FAULT_WATCHDOG_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "sim/types.hh"

namespace tlsim
{
namespace fault
{

/** Deadlock detector for outstanding memory requests. */
class Watchdog
{
  public:
    /** @param max_age Oldest tolerated request age in ticks. */
    explicit Watchdog(Tick max_age) : maxAge(max_age) {}

    /** Register a request issuer; returns its client id. */
    int
    addClient(std::string name)
    {
        clients.push_back(std::move(name));
        return static_cast<int>(clients.size()) - 1;
    }

    /**
     * Install the design-specific diagnostic dump (e.g. the L2's
     * link/bank state) invoked when the watchdog fires.
     */
    void
    setDiagnostic(std::function<void()> fn)
    {
        diagnostic = std::move(fn);
    }

    /** A request for @p addr went outstanding at @p now. */
    void
    onIssue(int client, std::uint64_t addr, Tick now)
    {
        pending.emplace(std::make_pair(client, addr), now);
    }

    /** The request for @p addr completed. */
    void
    onComplete(int client, std::uint64_t addr)
    {
        pending.erase(std::make_pair(client, addr));
    }

    /** Outstanding request count. */
    std::size_t outstanding() const { return pending.size(); }

    /** Times the watchdog has fired (normally zero). */
    std::uint64_t firings() const { return fired; }

    /**
     * Arm a wall-clock deadline (harness --run-timeout under thread
     * isolation): checkAge additionally panics once @p seconds of
     * real time elapse, whatever the simulated tick. Observation
     * only — it never changes simulated behavior, so a run that
     * finishes under the deadline is byte-identical to an unarmed
     * one.
     */
    void
    setWallDeadline(double seconds)
    {
        wallSeconds = seconds;
        wallDeadline = std::chrono::steady_clock::now() +
                       std::chrono::microseconds(
                           static_cast<long long>(seconds * 1e6));
        wallArmed = seconds > 0.0;
    }

    /**
     * Poll while a core is blocked: panics when the oldest
     * outstanding request is older than the max-age bound, or when
     * the wall deadline (if armed) has passed.
     */
    void
    checkAge(Tick now)
    {
        // Rate-limit the clock read: wait loops poll every cycle.
        if (wallArmed && (++wallPolls & 0x3ff) == 0 &&
            std::chrono::steady_clock::now() >= wallDeadline)
            fireWall(now);
        if (pending.empty())
            return;
        for (const auto &[key, issued] : pending) {
            if (now - issued > maxAge)
                fire(now, "request exceeded max age");
        }
    }

    /**
     * Partitioned runs: poll the executor's window-barrier generation
     * counter before declaring a quiescent queue dead. A domain-0
     * view of "no events" can race a window whose cross-domain
     * messages are still staged; a generation bump since the last
     * quiescence check proves the machine is making progress.
     */
    void
    attachProgressCounter(const std::atomic<std::uint64_t> *counter)
    {
        progressCounter = counter;
        lastSeenGeneration = counter ? counter->load(
                                           std::memory_order_relaxed)
                                     : 0;
    }

    /**
     * The event queue drained with requests still outstanding: a
     * completion callback was lost. Fires if anything is pending —
     * unless an attached progress counter advanced since the last
     * check, in which case the caller should re-poll the queue.
     * @return true to retry (progress was observed), false when
     *         nothing is pending; panics otherwise.
     */
    bool
    onQuiescent(Tick now)
    {
        if (pending.empty())
            return false;
        if (progressCounter) {
            std::uint64_t gen =
                progressCounter->load(std::memory_order_relaxed);
            if (gen != lastSeenGeneration) {
                lastSeenGeneration = gen;
                return true;
            }
        }
        fire(now, "event queue quiescent");
    }

  private:
    [[noreturn]] void fire(Tick now, const char *why);
    [[noreturn]] void fireWall(Tick now);

    Tick maxAge;
    bool wallArmed = false;
    double wallSeconds = 0.0;
    std::chrono::steady_clock::time_point wallDeadline;
    std::uint64_t wallPolls = 0;
    std::vector<std::string> clients;
    std::function<void()> diagnostic;
    /** (client, block address) -> issue tick; ordered for stable dumps. */
    std::map<std::pair<int, std::uint64_t>, Tick> pending;
    std::uint64_t fired = 0;
    /** Executor window generation (null for serial runs). */
    const std::atomic<std::uint64_t> *progressCounter = nullptr;
    std::uint64_t lastSeenGeneration = 0;
};

} // namespace fault
} // namespace tlsim

#endif // TLSIM_SIM_FAULT_WATCHDOG_HH
