/**
 * @file
 * Event-queue deadlock watchdog.
 *
 * Request issuers (the L1 caches) register as clients and report each
 * outstanding miss; the cores' wait loops poll the watchdog while
 * blocked. If the event queue goes quiescent while requests are still
 * outstanding, or any single request exceeds the configured max age,
 * the watchdog dumps a structured diagnostic (every outstanding
 * request plus whatever the L2 design reports — link busy horizons,
 * per-bank queue depths) and panics instead of letting the simulation
 * hang. The panic is a catchable PanicError, so crash-isolated sweeps
 * turn it into a per-run error report.
 */

#ifndef TLSIM_SIM_FAULT_WATCHDOG_HH
#define TLSIM_SIM_FAULT_WATCHDOG_HH

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "sim/types.hh"

namespace tlsim
{
namespace fault
{

/** Deadlock detector for outstanding memory requests. */
class Watchdog
{
  public:
    /** @param max_age Oldest tolerated request age in ticks. */
    explicit Watchdog(Tick max_age) : maxAge(max_age) {}

    /** Register a request issuer; returns its client id. */
    int
    addClient(std::string name)
    {
        clients.push_back(std::move(name));
        return static_cast<int>(clients.size()) - 1;
    }

    /**
     * Install the design-specific diagnostic dump (e.g. the L2's
     * link/bank state) invoked when the watchdog fires.
     */
    void
    setDiagnostic(std::function<void()> fn)
    {
        diagnostic = std::move(fn);
    }

    /** A request for @p addr went outstanding at @p now. */
    void
    onIssue(int client, std::uint64_t addr, Tick now)
    {
        pending.emplace(std::make_pair(client, addr), now);
    }

    /** The request for @p addr completed. */
    void
    onComplete(int client, std::uint64_t addr)
    {
        pending.erase(std::make_pair(client, addr));
    }

    /** Outstanding request count. */
    std::size_t outstanding() const { return pending.size(); }

    /** Times the watchdog has fired (normally zero). */
    std::uint64_t firings() const { return fired; }

    /**
     * Poll while a core is blocked: panics when the oldest
     * outstanding request is older than the max-age bound.
     */
    void
    checkAge(Tick now)
    {
        if (pending.empty())
            return;
        for (const auto &[key, issued] : pending) {
            if (now - issued > maxAge)
                fire(now, "request exceeded max age");
        }
    }

    /**
     * The event queue drained with requests still outstanding: a
     * completion callback was lost. Always fires if anything is
     * pending.
     */
    void
    onQuiescent(Tick now)
    {
        if (!pending.empty())
            fire(now, "event queue quiescent");
    }

  private:
    [[noreturn]] void fire(Tick now, const char *why);

    Tick maxAge;
    std::vector<std::string> clients;
    std::function<void()> diagnostic;
    /** (client, block address) -> issue tick; ordered for stable dumps. */
    std::map<std::pair<int, std::uint64_t>, Tick> pending;
    std::uint64_t fired = 0;
};

} // namespace fault
} // namespace tlsim

#endif // TLSIM_SIM_FAULT_WATCHDOG_HH
