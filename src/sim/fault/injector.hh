/**
 * @file
 * Seeded, deterministic fault injector.
 *
 * One Injector lives inside each System (one per run) and is consulted
 * by the L2 controllers and the mesh on every response message. Its
 * RNG stream is derived from the FaultConfig seed mixed with the
 * per-run trace seed, so the fault schedule is a pure function of the
 * RunSpec: serial and parallel sweeps, warm and cold caches, all see
 * the identical sequence of faults.
 *
 * Three fault classes are supported:
 *  - transient message corruption (Bernoulli per response message,
 *    optionally weighted per link by signal-integrity margin),
 *  - scheduled permanent dead links ("id@tick" onset),
 *  - scheduled stuck-at banks ("id@tick" onset).
 */

#ifndef TLSIM_SIM_FAULT_INJECTOR_HH
#define TLSIM_SIM_FAULT_INJECTOR_HH

#include <cstdint>
#include <map>
#include <vector>

#include "sim/fault/faultconfig.hh"
#include "sim/rng.hh"
#include "sim/types.hh"

namespace tlsim
{
namespace fault
{

/**
 * Parse an "id@tick,id@tick,..." fault schedule string.
 *
 * Whitespace around entries is ignored; an entry without "@" means
 * onset at tick 0. Malformed entries are a configuration error
 * (fatal()).
 */
std::map<int, Tick> parseSchedule(const std::string &spec,
                                  const char *what);

/** Per-run deterministic fault source. See file comment. */
class Injector
{
  public:
    /**
     * @param cfg Fault description (copied).
     * @param stream_seed Per-run entropy (the run's trace seed) mixed
     *        with cfg.seed so distinct specs draw distinct streams.
     */
    Injector(const FaultConfig &cfg, std::uint64_t stream_seed);

    /** The configuration this injector was built from. */
    const FaultConfig &config() const { return cfg; }

    /**
     * Draw one Bernoulli trial: was the response message on @p link
     * corrupted in flight? Rate = bitErrorRate * linkWeight(link).
     * Advances the RNG stream exactly once per call.
     */
    bool messageError(int link);

    /**
     * Scale @p link's error rate (margin-derived weighting). Weights
     * must be set before simulation starts to keep the draw sequence
     * deterministic.
     */
    void setLinkWeight(int link, double weight);

    /** Error-rate multiplier for @p link (1.0 unless overridden). */
    double linkWeight(int link) const;

    /**
     * True when @p link has permanently failed by tick @p now.
     *
     * Consulted on every traversal, so the schedule lives in a flat
     * vector indexed by id (MaxTick = never fails) instead of the
     * node-based map the config parser produces.
     */
    bool
    linkDead(int link, Tick now) const
    {
        if (!anyDead)
            return false;
        auto idx = static_cast<std::size_t>(link);
        return idx < deadAt.size() && now >= deadAt[idx];
    }

    /** True when bank @p bank is stuck at tick @p now. */
    bool
    bankStuck(int bank, Tick now) const
    {
        if (!anyStuck)
            return false;
        auto idx = static_cast<std::size_t>(bank);
        return idx < stuckAt.size() && now >= stuckAt[idx];
    }

    /**
     * True when DRAM bank @p bank (channel-major global index) is
     * stuck at tick @p now; consulted by the banked memory backends.
     */
    bool
    dramBankStuck(int bank, Tick now) const
    {
        if (!anyDramStuck)
            return false;
        auto idx = static_cast<std::size_t>(bank);
        return idx < dramStuckAt.size() && now >= dramStuckAt[idx];
    }

    /** Any dead-link faults scheduled at all (at any tick)? */
    bool hasDeadLinks() const { return anyDead; }

    /** Exponential backoff before retry number @p attempt (0-based). */
    Tick
    backoff(int attempt) const
    {
        int shift = attempt < 24 ? attempt : 24;
        return cfg.retryBackoff << shift;
    }

    /** Total corrupted-message draws that came up faulty. */
    std::uint64_t errorsInjected() const { return injected; }

  private:
    /** Flatten a parsed id->tick schedule into an id-indexed vector. */
    static std::vector<Tick> flatten(const std::map<int, Tick> &sched);

    FaultConfig cfg;
    Rng rng;
    /** Onset tick per link/bank id; MaxTick = never. */
    std::vector<Tick> deadAt;
    std::vector<Tick> stuckAt;
    std::vector<Tick> dramStuckAt;
    bool anyDead = false;
    bool anyStuck = false;
    bool anyDramStuck = false;
    /** Error-rate multiplier per link id; ids past the end are 1.0. */
    std::vector<double> weights;
    std::uint64_t injected = 0;
};

} // namespace fault
} // namespace tlsim

#endif // TLSIM_SIM_FAULT_INJECTOR_HH
