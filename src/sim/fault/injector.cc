#include "sim/fault/injector.hh"

#include <cctype>
#include <string>

#include "sim/logging.hh"

namespace tlsim
{
namespace fault
{

namespace
{

/** splitmix64 finalizer; mixes the config seed with the run stream. */
std::uint64_t
mix(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

} // namespace

std::map<int, Tick>
parseSchedule(const std::string &spec, const char *what)
{
    std::map<int, Tick> out;
    std::size_t pos = 0;
    while (pos < spec.size()) {
        std::size_t end = spec.find(',', pos);
        if (end == std::string::npos)
            end = spec.size();
        std::string entry = spec.substr(pos, end - pos);
        pos = end + 1;
        // Trim surrounding whitespace.
        std::size_t b = 0, e = entry.size();
        while (b < e && std::isspace(static_cast<unsigned char>(entry[b])))
            ++b;
        while (e > b && std::isspace(static_cast<unsigned char>(entry[e - 1])))
            --e;
        entry = entry.substr(b, e - b);
        if (entry.empty())
            continue;
        std::size_t at = entry.find('@');
        std::string id_str = entry.substr(0, at);
        std::string tick_str =
            at == std::string::npos ? "0" : entry.substr(at + 1);
        try {
            std::size_t used = 0;
            int id = std::stoi(id_str, &used);
            if (used != id_str.size() || id < 0)
                throw std::invalid_argument(id_str);
            used = 0;
            // stoull silently wraps negatives ("-5" parses); require
            // pure digits so those are rejected as malformed.
            for (char c : tick_str) {
                if (!std::isdigit(static_cast<unsigned char>(c)))
                    throw std::invalid_argument(tick_str);
            }
            unsigned long long tick = std::stoull(tick_str, &used);
            if (used != tick_str.size())
                throw std::invalid_argument(tick_str);
            out[id] = static_cast<Tick>(tick);
        } catch (const std::exception &) {
            fatal("malformed {} entry '{}' (expected 'id@tick')", what,
                  entry);
        }
    }
    return out;
}

std::vector<Tick>
Injector::flatten(const std::map<int, Tick> &sched)
{
    std::vector<Tick> out;
    if (sched.empty())
        return out;
    out.assign(static_cast<std::size_t>(sched.rbegin()->first) + 1,
               MaxTick);
    for (const auto &[id, tick] : sched)
        out[static_cast<std::size_t>(id)] = tick;
    return out;
}

Injector::Injector(const FaultConfig &config, std::uint64_t stream_seed)
    : cfg(config), rng(mix(config.seed) ^ mix(stream_seed)),
      deadAt(flatten(parseSchedule(config.deadLinks, "deadLinks"))),
      stuckAt(flatten(parseSchedule(config.stuckBanks, "stuckBanks"))),
      dramStuckAt(flatten(
          parseSchedule(config.dramStuckBanks, "dramStuckBanks"))),
      anyDead(!deadAt.empty()), anyStuck(!stuckAt.empty()),
      anyDramStuck(!dramStuckAt.empty())
{
}

bool
Injector::messageError(int link)
{
    double rate = cfg.bitErrorRate * linkWeight(link);
    bool hit = rng.chance(rate);
    if (hit)
        ++injected;
    return hit;
}

void
Injector::setLinkWeight(int link, double weight)
{
    TLSIM_ASSERT(weight >= 0.0, "negative link fault weight");
    auto idx = static_cast<std::size_t>(link);
    if (idx >= weights.size())
        weights.resize(idx + 1, 1.0);
    weights[idx] = weight;
}

double
Injector::linkWeight(int link) const
{
    auto idx = static_cast<std::size_t>(link);
    return idx < weights.size() ? weights[idx] : 1.0;
}

} // namespace fault
} // namespace tlsim
