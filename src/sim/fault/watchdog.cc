#include "sim/fault/watchdog.hh"

#include "sim/logging.hh"

namespace tlsim
{
namespace fault
{

void
Watchdog::fire(Tick now, const char *why)
{
    ++fired;
    warn("deadlock watchdog fired at t={}: {} ({} outstanding)", now,
         why, pending.size());
    for (const auto &[key, issued] : pending) {
        const auto &[client, addr] = key;
        const std::string &name =
            client >= 0 && client < static_cast<int>(clients.size())
                ? clients[client]
                : "?";
        warn("  outstanding: {} addr={} issued at t={} (age {})", name,
             addr, issued, now - issued);
    }
    if (diagnostic)
        diagnostic();
    panic("deadlock watchdog: {} at t={} with {} outstanding "
          "request(s)",
          why, now, pending.size());
}

void
Watchdog::fireWall(Tick now)
{
    ++fired;
    warn("run timeout at t={} ({} outstanding request(s))", now,
         pending.size());
    if (diagnostic)
        diagnostic();
    panic("run timeout after {}s (wall clock)", wallSeconds);
}

} // namespace fault
} // namespace tlsim
