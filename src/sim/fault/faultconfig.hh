/**
 * @file
 * Declarative fault-injection configuration.
 *
 * A FaultConfig describes every fault a run injects and every knob of
 * the resilience protocol that answers them. It lives inside
 * harness::SystemConfig, round-trips through the config JSON, and is
 * folded into the machine hash — so faulty runs occupy their own
 * result-cache slots while the default (disabled) config leaves every
 * existing hash and cache entry untouched.
 *
 * Fault schedules are strings, not arrays ("id@tick,id@tick"), because
 * the config JSON reader deliberately supports only objects, strings,
 * numbers, and booleans.
 */

#ifndef TLSIM_SIM_FAULT_FAULTCONFIG_HH
#define TLSIM_SIM_FAULT_FAULTCONFIG_HH

#include <cstdint>
#include <string>

namespace tlsim
{
namespace fault
{

/** Everything the fault injector and resilience protocol need. */
struct FaultConfig
{
    /**
     * Master switch. When false (the default) no injector or watchdog
     * is built and every timing path is bit-identical to a build
     * without the fault subsystem.
     */
    bool enabled = false;

    /**
     * Probability that one response message is corrupted in flight
     * and caught by the controller's CRC check (per message, before
     * the per-link margin weight).
     */
    double bitErrorRate = 0.0;

    /**
     * Scale each link's error rate by its signal-integrity margin
     * (pulse-simulator amplitude/width slack): marginal transmission
     * lines fault more, healthy ones less.
     */
    bool deriveFromMargin = false;

    /**
     * Scheduled permanent link deaths as "id@tick,id@tick,...". Link
     * ids are design-specific: the TLC family numbers pair p's down
     * link 2p and up link 2p+1; mesh designs use mesh link indices.
     */
    std::string deadLinks;

    /** Scheduled stuck-at bank faults, same "id@tick,..." encoding. */
    std::string stuckBanks;

    /**
     * Scheduled stuck-at DRAM bank faults ("id@tick,..."), consumed
     * by the banked memory backends. Bank ids are channel-major:
     * channel * banksPerChannel + bank. Ignored by the "fixed"
     * backend, which has no bank structure.
     */
    std::string dramStuckBanks;

    /** Bounded retries per request before declaring a timeout. */
    int maxRetries = 4;

    /** Base retry backoff [cycles]; doubles with each attempt. */
    std::uint64_t retryBackoff = 8;

    /**
     * Per-request age bound [cycles]: a request older than this at
     * its CRC check abandons the L2 lookup and degrades to memory.
     */
    std::uint64_t requestTimeout = 4096;

    /** CRC check latency surcharge per response message [cycles]. */
    std::uint64_t crcCycles = 1;

    /**
     * Deadlock-watchdog age bound [cycles]: an L1 miss outstanding
     * longer than this trips the watchdog diagnostic dump.
     */
    std::uint64_t watchdogMaxAge = 1'000'000;

    /** Extra seed entropy for the fault RNG stream. */
    std::uint64_t seed = 0;

    bool operator==(const FaultConfig &) const = default;
};

} // namespace fault
} // namespace tlsim

#endif // TLSIM_SIM_FAULT_FAULTCONFIG_HH
