/**
 * @file
 * Conservative window-barrier PDES executor (see pdes.hh).
 */

#include "sim/pdes/pdes.hh"

#include <algorithm>

#include "sim/logging.hh"
#include "sim/prof/prof.hh"

namespace tlsim
{
namespace pdes
{

void *
Arena::allocateSlow(std::size_t bytes, std::size_t align)
{
    // A fresh chunk's base is new[]-aligned (fundamental alignment);
    // oversized requests get a dedicated chunk.
    std::size_t size = std::max(chunkBytes, bytes + align);
    Chunk chunk;
    chunk.data = std::make_unique<unsigned char[]>(size);
    chunk.size = size;
    chunks.push_back(std::move(chunk));
    Chunk &c = chunks.back();
    auto base = reinterpret_cast<std::uintptr_t>(c.data.get());
    std::size_t offset = ((base + align - 1) & ~(align - 1)) - base;
    c.used = offset + bytes;
    ++allocationCount;
    return c.data.get() + offset;
}

Executor::Executor(EventQueue &master_queue, int worker_domains,
                   Tick lookahead)
    : master(master_queue), horizon(lookahead)
{
    TLSIM_ASSERT(worker_domains > 0, "executor needs >= 1 worker");
    TLSIM_ASSERT(lookahead > 0, "executor needs lookahead >= 1");
    // Stride the master's sequence counter so cross-posted
    // deliveries own the key slots their worker-side child records
    // will use (see sequenceStride).
    master.setSequenceStride(sequenceStride);
    workers.reserve(static_cast<std::size_t>(worker_domains));
    for (int w = 0; w < worker_domains; ++w) {
        auto worker = std::make_unique<Worker>();
        worker->profName = "pdes:worker" + std::to_string(w);
        // Worker queues never draw their own sequences: every event
        // they hold carries a master-space key.
        worker->queue.setRequireExplicitSequence(true);
        worker->queue.setAllocHook(Arena::hook, &worker->arena);
        workers.push_back(std::move(worker));
    }
    // Workers 1.. get persistent threads; worker 0 runs each phase
    // on the master thread (so --domains=2 spawns no threads at all).
    for (std::size_t w = 1; w < workers.size(); ++w) {
        Worker &worker = *workers[w];
        worker.thread =
            std::thread([this, &worker] { threadMain(worker); });
    }
    master.setCoordinator(this);
}

Executor::~Executor()
{
    for (std::size_t w = 1; w < workers.size(); ++w) {
        Worker &worker = *workers[w];
        {
            std::lock_guard<std::mutex> lock(worker.mutex);
            worker.stop = true;
        }
        worker.cv.notify_one();
        worker.thread.join();
    }
    master.setCoordinator(nullptr);
    master.setSequenceStride(1);
}

void
Executor::postToWorker(int w, Tick when, std::function<void(Tick)> fn)
{
    // Master-thread only: the sequence draw must happen at the exact
    // point in the dispatch stream where the serial run would have
    // scheduled the delivery.
    Worker &worker = *workers[static_cast<std::size_t>(w)];
    worker.outbox.push_back(
        Message{when, master.allocSequence(), std::move(fn)});
}

void
Executor::postToMaster(int w, std::function<void(Tick)> fn)
{
    // Worker-phase context. The record's key places it immediately
    // after its triggering delivery's serial dispatch slot: the
    // delivery carries a master sequence s (s % stride == 0), so
    // s+1 .. s+stride-1 are unclaimed in the master key space.
    Worker &worker = *workers[static_cast<std::size_t>(w)];
    std::uint64_t base = worker.queue.currentDispatchSequence();
    if (worker.lastDispatchSeq != base) {
        worker.lastDispatchSeq = base;
        worker.childIdx = 0;
    }
    std::uint64_t child = ++worker.childIdx;
    TLSIM_ASSERT(child < sequenceStride,
                 "worker dispatch spawned {} master records; "
                 "sequenceStride {} leaves room for {}",
                 child, sequenceStride, sequenceStride - 1);
    worker.inbox.push_back(
        Message{worker.queue.now(), base + child, std::move(fn)});
}

void
Executor::flushOutboxes()
{
    for (auto &worker : workers) {
        for (Message &msg : worker->outbox) {
            crossCount++;
            worker->queue.scheduleCallbackKeyed(msg.when, msg.seq,
                                                std::move(msg.fn));
        }
        worker->outbox.clear();
    }
}

void
Executor::runWorkerSpan(Worker &w, Tick limit)
{
    prof::Scope scope(w.profName.c_str());
    w.processed += w.queue.advanceDirect(limit);
}

void
Executor::threadMain(Worker &w)
{
    while (true) {
        Tick limit;
        std::uint64_t gen;
        {
            std::unique_lock<std::mutex> lock(w.mutex);
            w.cv.wait(lock, [&w] {
                return w.stop || w.startGen != w.doneGen;
            });
            if (w.stop)
                return;
            limit = w.target;
            gen = w.startGen;
        }
        runWorkerSpan(w, limit);
        {
            std::lock_guard<std::mutex> lock(w.mutex);
            w.doneGen = gen;
        }
        w.cv.notify_one();
    }
}

Tick
Executor::coordNextTick()
{
    // Deliveries staged in outboxes must be visible before the
    // global minimum is computed (the cores call nextTick between
    // advanceTo calls, after master dispatches may have posted).
    flushOutboxes();
    Tick next = master.nextTickDirect();
    for (auto &worker : workers)
        next = std::min(next, worker->queue.nextTickDirect());
    return next;
}

std::uint64_t
Executor::coordAdvanceTo(Tick limit)
{
    std::uint64_t processed = 0;
    while (true) {
        flushOutboxes();
        Tick t = master.nextTickDirect();
        for (auto &worker : workers)
            t = std::min(t, worker->queue.nextTickDirect());
        if (t == MaxTick || t > limit)
            break;
        // Conservative horizon: nothing a dispatch at >= t creates
        // crosses a domain edge before t + horizon, so [t, hEnd] is
        // safe to run in parallel. The horizon must ride the
        // *current* global minimum (not the window entry tick):
        // records drained at a barrier can trigger master dispatches
        // that post new deliveries, and those are only guaranteed
        // beyond the tick they were posted at plus the lookahead.
        Tick span = limit - t;
        Tick hEnd = span >= horizon ? t + horizon - 1 : limit;
        ++windowCount;

        bool any_worker_due = false;
        for (auto &worker : workers) {
            if (worker->queue.nextTickDirect() <= hEnd) {
                any_worker_due = true;
                break;
            }
        }
        if (!any_worker_due) {
            // Fast path: the window is master-only. No barrier, no
            // thread wakeups — a serial-shaped region costs a few
            // comparisons over plain serial execution.
            ++fastWindowCount;
            processed += master.advanceDirect(hEnd);
            windowGen.fetch_add(1, std::memory_order_release);
            continue;
        }

        // Phase 1: every worker domain executes the window; worker 0
        // on this thread, the rest on theirs.
        for (std::size_t w = 1; w < workers.size(); ++w) {
            Worker &worker = *workers[w];
            {
                std::lock_guard<std::mutex> lock(worker.mutex);
                worker.target = hEnd;
                ++worker.startGen;
            }
            worker.cv.notify_one();
        }
        runWorkerSpan(*workers[0], hEnd);
        for (std::size_t w = 1; w < workers.size(); ++w) {
            Worker &worker = *workers[w];
            std::unique_lock<std::mutex> lock(worker.mutex);
            worker.cv.wait(lock, [&worker] {
                return worker.doneGen == worker.startGen;
            });
        }

        // Barrier: merge the worker->master records. Their explicit
        // keys slot them into the master heap exactly where the
        // serial run executed the corresponding inline calls, so
        // drain order is irrelevant.
        for (auto &worker : workers) {
            crossCount += worker->inbox.size();
            for (Message &msg : worker->inbox) {
                master.scheduleCallbackKeyed(msg.when, msg.seq,
                                             std::move(msg.fn));
            }
            worker->inbox.clear();
        }

        // Phase 2: the master executes the same window (records
        // included), posting next-window deliveries into outboxes.
        processed += master.advanceDirect(hEnd);
        windowGen.fetch_add(1, std::memory_order_release);
    }
    for (auto &worker : workers)
        processed += worker->processed;
    for (auto &worker : workers)
        worker->processed = 0;
    // Settle the master clock on the limit (nothing left at <= limit).
    processed += master.advanceDirect(limit);
    return processed;
}

} // namespace pdes
} // namespace tlsim
