/**
 * @file
 * Conservative-PDES partitioned event execution.
 *
 * One run's machine is split into event domains: domain 0 (the
 * "master") keeps the cores, L1s, DRAM, mesh links, and every
 * order-sensitive shared structure; worker domains own L2 banks whose
 * only coupling to the rest of the machine is a mesh flight with a
 * fixed minimum latency. That minimum flight latency is the
 * conservative lookahead L: no domain-0 dispatch at tick t can create
 * a worker event before t + L, so all domains may execute the window
 * [t, t + L) in parallel without null messages (classic
 * window-barrier PDES a la Chandy/Misra with static lookahead).
 *
 * Determinism: serial and partitioned runs are byte-identical. Every
 * cross-domain message carries an explicit (tick, priority, sequence)
 * order key in the master queue's sequence space — master draws
 * sequences with stride `sequenceStride`, leaving the slots between
 * consecutive draws free for the worker->master records a delivery
 * spawns. The untouched heap comparator then reproduces the exact
 * serial dispatch interleaving; thread scheduling can only change
 * *wall-clock* order inside a window, never the key order anything
 * observable is processed in.
 */

#ifndef TLSIM_SIM_PDES_PDES_HH
#define TLSIM_SIM_PDES_PDES_HH

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "sim/eventq.hh"
#include "sim/pdes/partition.hh"
#include "sim/types.hh"

namespace tlsim
{
namespace pdes
{

/**
 * Chunked bump allocator backing one worker domain's event objects.
 *
 * Allocation is a pointer bump (no per-object free); the whole arena
 * is released when the run's Executor is destroyed. Worker-domain
 * one-shot events are short-lived and pool-recycled, so the arena's
 * job is to absorb the pool's initial growth without touching the
 * global allocator from a worker thread.
 */
class Arena
{
  public:
    explicit Arena(std::size_t chunk_bytes = 64 * 1024)
        : chunkBytes(chunk_bytes)
    {}

    Arena(const Arena &) = delete;
    Arena &operator=(const Arena &) = delete;

    /** Bump-allocate @p bytes aligned to @p align. */
    void *
    allocate(std::size_t bytes, std::size_t align)
    {
        if (!chunks.empty()) {
            Chunk &c = chunks.back();
            std::size_t offset = (c.used + align - 1) & ~(align - 1);
            if (offset + bytes <= c.size) {
                c.used = offset + bytes;
                ++allocationCount;
                return c.data.get() + offset;
            }
        }
        return allocateSlow(bytes, align);
    }

    /** Objects ever handed out (never individually freed). */
    std::uint64_t allocations() const { return allocationCount; }

    /** Chunks currently held. */
    std::size_t chunkCount() const { return chunks.size(); }

    /** Total bytes reserved across all chunks. */
    std::size_t
    bytesReserved() const
    {
        std::size_t total = 0;
        for (const Chunk &c : chunks)
            total += c.size;
        return total;
    }

    /** EventQueue::AllocHook adapter (@p ctx is the Arena). */
    static void *
    hook(void *ctx, std::size_t bytes, std::size_t align)
    {
        return static_cast<Arena *>(ctx)->allocate(bytes, align);
    }

  private:
    struct Chunk
    {
        std::unique_ptr<unsigned char[]> data;
        std::size_t used = 0;
        std::size_t size = 0;
    };

    void *allocateSlow(std::size_t bytes, std::size_t align);

    std::vector<Chunk> chunks;
    std::size_t chunkBytes;
    std::uint64_t allocationCount = 0;
};

/**
 * The window-barrier coordinator: owns the worker domains' event
 * queues (each arena-backed), the per-edge mailboxes, and the worker
 * threads. Installed on the master queue via
 * EventQueue::setCoordinator, so the cores' existing
 * nextTick/advanceTo driving loop runs partitioned without changes.
 */
class Executor : public EventCoordinator
{
  public:
    /**
     * Master sequence stride: implicit draws on the master queue
     * advance its sequence counter by this much, so a cross-posted
     * delivery with sequence s leaves slots s+1 .. s+stride-1 free
     * for the worker->master records that delivery spawns. Serial
     * runs use stride 1; sequence *values* therefore differ between
     * serial and partitioned runs, but their order is isomorphic and
     * the values are never observable.
     */
    static constexpr std::uint64_t sequenceStride = 16;

    /**
     * @param master_queue The machine's (domain-0) event queue.
     * @param worker_domains Worker domains beyond domain 0 (>= 1).
     * @param lookahead Conservative window bound in ticks (>= 1):
     *        the minimum master->worker flight latency.
     */
    Executor(EventQueue &master_queue, int worker_domains,
             Tick lookahead);

    ~Executor() override;

    Executor(const Executor &) = delete;
    Executor &operator=(const Executor &) = delete;

    /** Worker domains (excluding domain 0). */
    int workerCount() const { return static_cast<int>(workers.size()); }

    /** Worker domain @p w's event queue. */
    EventQueue &workerQueue(int w) { return workers[w]->queue; }

    /** The conservative lookahead in ticks. */
    Tick lookahead() const { return horizon; }

    /**
     * Post a delivery into worker domain @p w. Master-thread only
     * (from a domain-0 dispatch or between windows): draws the
     * delivery's order key from the master sequence counter at the
     * exact point the serial run would have, and stages it in the
     * worker's mailbox until the next window edge.
     */
    void postToWorker(int w, Tick when, std::function<void(Tick)> fn);

    /**
     * Post a record from worker domain @p w back to domain 0. Called
     * from inside a worker-domain dispatch (any phase-1 thread): the
     * record inherits a key just after its triggering delivery's
     * serial slot — (current dispatch tick, sequence + 1 + child
     * index) — so it executes on the master exactly where the serial
     * run's inline call would have.
     */
    void postToMaster(int w, std::function<void(Tick)> fn);

    /**
     * Barrier generation counter: bumped once per completed window.
     * The fault watchdog polls it to distinguish "domains still
     * making progress" from a genuine deadlock.
     */
    const std::atomic<std::uint64_t> &
    windowGeneration() const
    {
        return windowGen;
    }

    /** Windows executed (fast + barrier). */
    std::uint64_t windows() const { return windowCount; }

    /**
     * Windows where no worker had work inside the horizon, executed
     * master-only with no barrier or thread wakeup.
     */
    std::uint64_t fastWindows() const { return fastWindowCount; }

    /** Cross-domain messages exchanged (both directions). */
    std::uint64_t crossMessages() const { return crossCount; }

    // EventCoordinator interface (the master queue delegates here).
    std::uint64_t coordAdvanceTo(Tick limit) override;
    Tick coordNextTick() override;

  private:
    struct Message
    {
        Tick when;
        std::uint64_t seq;
        std::function<void(Tick)> fn;
    };

    struct Worker
    {
        // The arena outlives the queue: the queue's destructor runs
        // arena-backed events' destructors in place.
        Arena arena;
        EventQueue queue;
        std::string profName;

        /** Master -> worker, staged until the next window edge. */
        std::vector<Message> outbox;
        /** Worker -> master, drained at the window barrier. */
        std::vector<Message> inbox;

        // Child-record key tracking for postToMaster.
        std::uint64_t lastDispatchSeq = ~std::uint64_t{0};
        std::uint64_t childIdx = 0;

        // Phase handoff (workers 1.. run on their own threads;
        // worker 0 executes on the master thread).
        std::mutex mutex;
        std::condition_variable cv;
        Tick target = 0;
        std::uint64_t startGen = 0;
        std::uint64_t doneGen = 0;
        std::uint64_t processed = 0;
        bool stop = false;
        std::thread thread;
    };

    void threadMain(Worker &w);
    void runWorkerSpan(Worker &w, Tick limit);
    void flushOutboxes();

    EventQueue &master;
    Tick horizon;
    std::vector<std::unique_ptr<Worker>> workers;
    std::atomic<std::uint64_t> windowGen{0};
    std::uint64_t windowCount = 0;
    std::uint64_t fastWindowCount = 0;
    std::uint64_t crossCount = 0;
};

} // namespace pdes
} // namespace tlsim

#endif // TLSIM_SIM_PDES_PDES_HH
