/**
 * @file
 * Partition plan: what an L2 design tells the harness about its
 * ability to run under partitioned (conservative-PDES) event
 * execution.
 *
 * Kept separate from pdes.hh so mem/l2cache.hh can declare the
 * partition virtuals without dragging thread machinery into every
 * cache translation unit.
 */

#ifndef TLSIM_SIM_PDES_PARTITION_HH
#define TLSIM_SIM_PDES_PARTITION_HH

#include <string>

#include "sim/types.hh"

namespace tlsim
{
namespace pdes
{

class Executor;

/**
 * A design's answer to "can you partition into @p domains event
 * domains?". An inactive plan carries a human-readable reason the
 * harness logs before falling back to serial execution; serial and
 * partitioned runs are byte-identical either way, so falling back is
 * a performance decision, never a correctness one.
 */
struct PartitionPlan
{
    /**
     * Worker domains the design wants beyond domain 0 (the master
     * domain that keeps cores, L1s, DRAM, the mesh links, and every
     * order-sensitive shared structure). Zero means "run serial".
     */
    int workerDomains = 0;

    /**
     * Conservative lookahead in ticks: the minimum cross-domain
     * flight latency. Every event a domain-0 dispatch at tick t can
     * create in a worker domain lands at >= t + lookahead, so all
     * domains may execute a [t, t + lookahead) window in parallel.
     */
    Tick lookahead = 0;

    /** Why the plan is inactive (logged when falling back). */
    std::string serialReason;

    bool active() const { return workerDomains > 0 && lookahead > 0; }
};

} // namespace pdes
} // namespace tlsim

#endif // TLSIM_SIM_PDES_PARTITION_HH
