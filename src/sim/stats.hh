/**
 * @file
 * Lightweight statistics package in the spirit of gem5's Stats.
 *
 * Statistics register themselves with a StatGroup at construction;
 * groups form a tree and can dump all values with names/descriptions.
 * Supported kinds: Scalar (counter), Average (mean of samples),
 * Distribution (bucketed range), Histogram (log2 buckets), and
 * Formula (a named lambda over other stats, evaluated at dump time).
 */

#ifndef TLSIM_SIM_STATS_HH
#define TLSIM_SIM_STATS_HH

#include <algorithm>
#include <array>
#include <cstdint>
#include <functional>
#include <limits>
#include <ostream>
#include <string>
#include <vector>

#include "sim/logging.hh"

namespace tlsim
{
namespace stats
{

class StatGroup;

/** Abstract base for all statistics. */
class StatBase
{
  public:
    /** Register a stat named @p name under @p parent. */
    StatBase(StatGroup *parent, std::string name, std::string desc);
    virtual ~StatBase() = default;

    StatBase(const StatBase &) = delete;
    StatBase &operator=(const StatBase &) = delete;

    /** Stat name within its group. */
    const std::string &name() const { return _name; }
    /** One-line human-readable description. */
    const std::string &desc() const { return _desc; }

    /** Reset to the freshly-constructed state. */
    virtual void reset() = 0;

    /** Write "name value # desc" lines to the stream. */
    virtual void dump(std::ostream &os,
                      const std::string &prefix) const = 0;

    /**
     * Write this stat as one JSON object (no trailing newline), e.g.
     * {"kind":"scalar","value":3}. Every kind includes "kind" and
     * "desc" keys so exported files are self-describing.
     */
    virtual void dumpJson(std::ostream &os) const = 0;

  private:
    std::string _name;
    std::string _desc;
};

/**
 * A named collection of statistics; groups nest to form a hierarchy.
 */
class StatGroup
{
  public:
    /** Create a group named @p name, nested under @p parent if given. */
    explicit StatGroup(std::string name, StatGroup *parent = nullptr);
    virtual ~StatGroup() = default;

    StatGroup(const StatGroup &) = delete;
    StatGroup &operator=(const StatGroup &) = delete;

    /** Name of this group (one path component of a stat's name). */
    const std::string &groupName() const { return _name; }

    /** Reset every stat in this group and all child groups. */
    void resetStats();

    /** Dump every stat (and children) as "prefix.name value # desc". */
    void dumpStats(std::ostream &os, const std::string &prefix = "") const;

    /**
     * Dump this group as a JSON object: each stat keyed by name, each
     * child group keyed by its group name. Machine-readable companion
     * of dumpStats(); see tests/test_statsjson.cc for the round trip.
     * With pretty = false the object is emitted on a single line, so
     * it can be embedded in line-delimited JSON (see StatSampler).
     */
    void dumpStatsJson(std::ostream &os, int indent = 0,
                       bool pretty = true) const;

  private:
    friend class StatBase;

    void addStat(StatBase *stat) { stats.push_back(stat); }
    void addChild(StatGroup *child) { children.push_back(child); }

    std::string _name;
    std::vector<StatBase *> stats;
    std::vector<StatGroup *> children;
};

/** Monotonic counter, also usable as a gauge. */
class Scalar : public StatBase
{
  public:
    Scalar(StatGroup *parent, std::string name, std::string desc)
        : StatBase(parent, std::move(name), std::move(desc))
    {}

    /** Increment by one. */
    Scalar &operator++() { ++_value; return *this; }
    /** Add @p v to the counter. */
    Scalar &operator+=(double v) { _value += v; return *this; }
    /** Set the value (gauge use). */
    Scalar &operator=(double v) { _value = v; return *this; }

    /** Current value. */
    double value() const { return _value; }

    void reset() override { _value = 0.0; }

    void
    dump(std::ostream &os, const std::string &prefix) const override;

    void dumpJson(std::ostream &os) const override;

  private:
    double _value = 0.0;
};

/** Arithmetic mean (and count) of a stream of samples. */
class Average : public StatBase
{
  public:
    Average(StatGroup *parent, std::string name, std::string desc)
        : StatBase(parent, std::move(name), std::move(desc))
    {}

    /** Record one sample. */
    void
    sample(double v)
    {
        _sum += v;
        _sumSq += v * v;
        ++_count;
        _min = std::min(_min, v);
        _max = std::max(_max, v);
    }

    /** Number of samples recorded. */
    std::uint64_t count() const { return _count; }
    /** Sum of all samples. */
    double sum() const { return _sum; }
    /** Arithmetic mean (0.0 when no samples). */
    double mean() const { return _count ? _sum / _count : 0.0; }
    /** Smallest sample (0.0 when no samples). */
    double minValue() const { return _count ? _min : 0.0; }
    /** Largest sample (0.0 when no samples). */
    double maxValue() const { return _count ? _max : 0.0; }

    /** Population variance of the samples. */
    double
    variance() const
    {
        if (_count == 0)
            return 0.0;
        double m = mean();
        double v = _sumSq / _count - m * m;
        return v > 0.0 ? v : 0.0;
    }

    void
    reset() override
    {
        _sum = _sumSq = 0.0;
        _count = 0;
        _min = std::numeric_limits<double>::infinity();
        _max = -std::numeric_limits<double>::infinity();
    }

    void
    dump(std::ostream &os, const std::string &prefix) const override;

    void dumpJson(std::ostream &os) const override;

  private:
    double _sum = 0.0;
    double _sumSq = 0.0;
    std::uint64_t _count = 0;
    double _min = std::numeric_limits<double>::infinity();
    double _max = -std::numeric_limits<double>::infinity();
};

/**
 * Fixed-range bucketed distribution with underflow/overflow bins.
 *
 * Alongside the linear in-range buckets, every sample also lands in a
 * log2 bucket (by magnitude). The linear buckets drive the legacy
 * quantile() view; the log buckets back p50/p95/p99 (percentile()),
 * which — unlike quantile() — cover the underflow/overflow regions,
 * so a fault run whose retry latencies blow past hi still reports
 * honest tail percentiles. The exact running _sum is unchanged: the
 * bucket-sum invariants asserted by tests/test_breakdown.cc hold.
 */
class Distribution : public StatBase
{
  public:
    Distribution(StatGroup *parent, std::string name, std::string desc,
                 double lo, double hi, std::size_t num_buckets)
        : StatBase(parent, std::move(name), std::move(desc)),
          _lo(lo), _hi(hi), buckets(num_buckets, 0)
    {
        TLSIM_ASSERT(hi > lo && num_buckets > 0,
                     "bad Distribution bounds");
        _bucketWidth = (hi - lo) / static_cast<double>(num_buckets);
    }

    /** Record one sample into its linear and log2 buckets. */
    void
    sample(double v)
    {
        ++_count;
        _sum += v;
        std::uint64_t mag =
            v < 1.0 ? 0 : static_cast<std::uint64_t>(v);
        int lb = mag == 0 ? 0 : 64 - __builtin_clzll(mag);
        ++logBuckets[static_cast<std::size_t>(lb)];
        if (v < _lo) {
            ++_underflow;
        } else if (v >= _hi) {
            ++_overflow;
        } else {
            auto idx = static_cast<std::size_t>((v - _lo) / _bucketWidth);
            if (idx >= buckets.size())
                idx = buckets.size() - 1;
            ++buckets[idx];
        }
    }

    /** Number of samples recorded (including out-of-range). */
    std::uint64_t count() const { return _count; }
    /** Arithmetic mean of all samples (0.0 when no samples). */
    double mean() const { return _count ? _sum / _count : 0.0; }
    /** Samples below the low bound. */
    std::uint64_t underflow() const { return _underflow; }
    /** Samples at or above the high bound. */
    std::uint64_t overflow() const { return _overflow; }
    /** Count in bucket @p i. */
    std::uint64_t bucket(std::size_t i) const { return buckets.at(i); }
    /** Number of in-range buckets. */
    std::size_t numBuckets() const { return buckets.size(); }

    /** Sum of all samples (exact, independent of bucketing). */
    double sum() const { return _sum; }

    /** Count in log2 bucket @p i (bucket 0 holds values < 1). */
    std::uint64_t
    logBucket(std::size_t i) const
    {
        return logBuckets.at(i);
    }

    /**
     * Value below which fraction @p q of in-range samples fall
     * (linear interpolation within a bucket).
     */
    double quantile(double q) const;

    /**
     * Value at quantile @p q over ALL samples, log2-bucket backed
     * with linear interpolation inside the bucket. Covers the
     * underflow/overflow regions quantile() cannot see.
     */
    double percentile(double q) const;

    double p50() const { return percentile(0.50); }
    double p95() const { return percentile(0.95); }
    double p99() const { return percentile(0.99); }

    void
    reset() override
    {
        _count = _underflow = _overflow = 0;
        _sum = 0.0;
        std::fill(buckets.begin(), buckets.end(), 0);
        logBuckets.fill(0);
    }

    void
    dump(std::ostream &os, const std::string &prefix) const override;

    void dumpJson(std::ostream &os) const override;

  private:
    double _lo, _hi, _bucketWidth = 1.0;
    double _sum = 0.0;
    std::uint64_t _count = 0;
    std::uint64_t _underflow = 0;
    std::uint64_t _overflow = 0;
    std::vector<std::uint64_t> buckets;
    /** Log2-bucketed backing over all samples (percentile view). */
    std::array<std::uint64_t, 65> logBuckets{};
};

/** Power-of-two bucketed histogram for unbounded positive samples. */
class Histogram : public StatBase
{
  public:
    Histogram(StatGroup *parent, std::string name, std::string desc)
        : StatBase(parent, std::move(name), std::move(desc))
    {
        buckets.fill(0);
    }

    /** Record one sample into its log2 bucket. */
    void
    sample(std::uint64_t v)
    {
        ++_count;
        _sum += static_cast<double>(v);
        int bucket = v == 0 ? 0 : 64 - __builtin_clzll(v);
        ++buckets[static_cast<std::size_t>(bucket)];
    }

    /** Number of samples recorded. */
    std::uint64_t count() const { return _count; }
    /** Arithmetic mean of all samples (0.0 when no samples). */
    double mean() const { return _count ? _sum / _count : 0.0; }
    /** Count in log2 bucket @p i (bucket 0 holds value 0). */
    std::uint64_t bucket(std::size_t i) const { return buckets.at(i); }

    void
    reset() override
    {
        _count = 0;
        _sum = 0.0;
        buckets.fill(0);
    }

    void
    dump(std::ostream &os, const std::string &prefix) const override;

    void dumpJson(std::ostream &os) const override;

  private:
    std::uint64_t _count = 0;
    double _sum = 0.0;
    std::array<std::uint64_t, 65> buckets{};
};

/** Derived value computed from other stats at dump time. */
class Formula : public StatBase
{
  public:
    Formula(StatGroup *parent, std::string name, std::string desc,
            std::function<double()> fn)
        : StatBase(parent, std::move(name), std::move(desc)),
          func(std::move(fn))
    {}

    /** Evaluate the formula now. */
    double value() const { return func ? func() : 0.0; }

    void reset() override {}

    void
    dump(std::ostream &os, const std::string &prefix) const override;

    void dumpJson(std::ostream &os) const override;

  private:
    std::function<double()> func;
};

} // namespace stats
} // namespace tlsim

#endif // TLSIM_SIM_STATS_HH
