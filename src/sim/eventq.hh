/**
 * @file
 * Discrete-event simulation kernel.
 *
 * A single EventQueue orders Event objects by (tick, priority,
 * insertion sequence); ties are broken deterministically so runs are
 * exactly reproducible. Events may be one-shot lambdas (see
 * EventQueue::scheduleFunc) or long-lived Event subclasses that are
 * rescheduled repeatedly without allocation. One-shot lambdas are
 * pooled per queue: firing returns the LambdaEvent to a freelist
 * instead of the allocator, so the hottest scheduling path
 * (L1 miss -> scheduleFunc) stops calling new/delete.
 */

#ifndef TLSIM_SIM_EVENTQ_HH
#define TLSIM_SIM_EVENTQ_HH

#include <algorithm>
#include <cstdint>
#include <functional>
#include <new>
#include <vector>

#include "sim/logging.hh"
#include "sim/prof/prof.hh"
#include "sim/trace/debug.hh"
#include "sim/trace/observed.hh"
#include "sim/trace/tracesink.hh"
#include "sim/types.hh"

namespace tlsim
{

class EventQueue;

/**
 * Coordinator a partitioned run installs on the machine's master
 * queue (sim/pdes): advanceTo/nextTick delegate here so the cores'
 * driving loop transparently advances *all* event domains. The
 * ...Direct entry points below bypass the delegation — they are what
 * the coordinator itself uses on the queues it manages.
 */
class EventCoordinator
{
  public:
    virtual ~EventCoordinator() = default;

    /** Advance every domain to @p limit; returns events processed. */
    virtual std::uint64_t coordAdvanceTo(Tick limit) = 0;

    /** Earliest pending tick across all domains (MaxTick if none). */
    virtual Tick coordNextTick() = 0;
};

/** Debug hook invoked just before a past-scheduling panic. */
inline void (*scheduleViolationHook)() = nullptr;

/**
 * When true (the default) the memory-system hot paths schedule
 * intrusive pre-allocated typed events; when false they fall back to
 * the historical scheduleFunc lambda path. The two paths schedule at
 * identical ticks/priorities in identical order, so results are
 * bit-identical either way — the toggle exists so the determinism
 * tests can assert exactly that. Flip only between runs, never while
 * a System is live.
 */
inline bool useTypedHotPathEvents = true;

/**
 * Base class for all schedulable events.
 *
 * An Event may be scheduled on at most one queue at a time. The queue
 * never owns the event; lifetime is the scheduler's responsibility —
 * except for self-deleting events (LambdaEvent), which the queue
 * machinery reclaims itself.
 */
class Event
{
  public:
    /** Default scheduling priority; lower value runs first at a tick. */
    static constexpr int defaultPriority = 0;

    explicit Event(int priority = defaultPriority)
        : _priority(priority)
    {}

    virtual ~Event() = default;

    Event(const Event &) = delete;
    Event &operator=(const Event &) = delete;

    /** Invoked by the queue when the event's tick is reached. */
    virtual void process() = 0;

    /** Human-readable name for diagnostics. */
    virtual const char *name() const { return "Event"; }

    /** True if the event sits in a queue awaiting dispatch. */
    bool scheduled() const { return _scheduled; }

    /** Tick at which the event will fire (valid while scheduled). */
    Tick when() const { return _when; }

    /** Scheduling priority; lower runs first within a tick. */
    int priority() const { return _priority; }

    /**
     * True for events the queue machinery owns and reclaims (the
     * LambdaEvents and TickCallbackEvents); lets the stale-entry pop
     * path avoid a dynamic_cast.
     */
    bool selfDeleting() const { return _selfDeleting; }

  protected:
    /** Only the pooled one-shot events mark themselves. */
    void markSelfDeleting() { _selfDeleting = true; }

    /** Distinguishes the two pooled one-shot flavours on reclaim. */
    void markTickCallback() { _tickCallback = true; }

  private:
    friend class EventQueue;

    Tick _when = 0;
    std::uint64_t _sequence = 0;
    int _priority;
    bool _scheduled = false;
    bool _selfDeleting = false;
    bool _tickCallback = false;
};

/**
 * One-shot event wrapping a callable. After firing (or after its
 * squashed heap entry is dropped) the event returns to its owning
 * queue's freelist for reuse; events constructed outside
 * EventQueue::scheduleFunc have no owner and delete themselves as
 * before.
 */
class LambdaEvent : public Event
{
  public:
    explicit LambdaEvent(std::function<void()> fn,
                         int priority = Event::defaultPriority)
        : Event(priority), func(std::move(fn))
    {
        markSelfDeleting();
    }

    void process() override; // defined after EventQueue

    const char *name() const override { return "LambdaEvent"; }

  private:
    friend class EventQueue;

    /** Refill a pooled event for its next one-shot use. */
    void
    rearm(std::function<void()> fn)
    {
        func = std::move(fn);
        pooled = false;
    }

    std::function<void()> func;
    /** Owning queue whose freelist reclaims this event (or null). */
    EventQueue *owner = nullptr;
    /** True while sitting in the owner's freelist. */
    bool pooled = false;
    /** Placement-constructed in an arena; destroy, never delete. */
    bool arenaBacked = false;
};

/**
 * Pooled one-shot event that hands its fire tick to the callback.
 *
 * The memory system's dominant scheduling pattern is "run cb(t) at
 * tick t": delivering a response, completing a DRAM access, retiring
 * a writeback. Wrapping that in a LambdaEvent forces the tick (and
 * often a moved std::function) into a closure too big for the
 * std::function small-buffer, heap-allocating on every L2 access.
 * TickCallbackEvent stores the std::function<void(Tick)> directly
 * (moving one transfers its buffer without allocating) and passes
 * when() at dispatch, so the hot path stops touching the allocator.
 */
class TickCallbackEvent : public Event
{
  public:
    explicit TickCallbackEvent(std::function<void(Tick)> fn,
                               int priority = Event::defaultPriority)
        : Event(priority), func(std::move(fn))
    {
        markSelfDeleting();
        markTickCallback();
    }

    void process() override; // defined after EventQueue

    const char *name() const override { return "TickCallbackEvent"; }

  private:
    friend class EventQueue;

    /** Refill a pooled event for its next one-shot use. */
    void
    rearm(std::function<void(Tick)> fn)
    {
        func = std::move(fn);
        pooled = false;
    }

    std::function<void(Tick)> func;
    /** Owning queue whose freelist reclaims this event (or null). */
    EventQueue *owner = nullptr;
    /** True while sitting in the owner's freelist. */
    bool pooled = false;
    /** Placement-constructed in an arena; destroy, never delete. */
    bool arenaBacked = false;
};

/**
 * Deterministic discrete-event queue.
 *
 * Deschedule is implemented by squashing: the heap entry stays but is
 * skipped on pop, so deschedule/reschedule are O(log n) amortized.
 */
class EventQueue
{
  public:
    /**
     * Optional backing allocator for the pooled one-shot events
     * (sim/pdes arenas): returns @p bytes of storage aligned to
     * @p align from @p ctx. Hook-backed events are destroyed in
     * place on queue teardown, never deleted — the hook's memory
     * must outlive the queue.
     */
    using AllocHook = void *(*)(void *ctx, std::size_t bytes,
                                std::size_t align);

    EventQueue() = default;

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    ~EventQueue()
    {
        // Reclaim machinery-owned one-shots still referenced by heap
        // entries (descheduled or never fired), then free the pools.
        // recycle() is idempotent per event via the pooled flag, so
        // duplicate stale entries are harmless. The self-deleting
        // flag is read from the Entry, not the event: externally
        // owned events may already be destroyed by the time the
        // queue goes down, and their entries must not be followed.
        for (const Entry &entry : heap) {
            if (entry.selfDel)
                recycleAny(entry.event);
        }
        for (LambdaEvent *ev : lambdaPool) {
            if (ev->arenaBacked)
                ev->~LambdaEvent();
            else
                delete ev;
        }
        for (TickCallbackEvent *ev : callbackPool) {
            if (ev->arenaBacked)
                ev->~TickCallbackEvent();
            else
                delete ev;
        }
    }

    /** Current simulated time in ticks. */
    Tick now() const { return curTick; }

    /** Number of events pending (excluding squashed entries). */
    std::size_t size() const { return liveCount; }

    /** True when no live events remain. */
    bool empty() const { return liveCount == 0; }

    /**
     * Schedule an event at an absolute tick >= now().
     * @param event Event to schedule; must not already be scheduled.
     * @param when Absolute tick at which to fire.
     */
    void
    schedule(Event *event, Tick when)
    {
        TLSIM_ASSERT(!requireExplicitSeq,
                     "implicit-sequence schedule on a queue that "
                     "requires explicit (cross-domain) keys");
        scheduleImpl(event, when, allocSequence());
    }

    /**
     * Schedule with an explicit order key instead of drawing one.
     * The partitioned executor uses this to place cross-domain
     * deliveries at their serial-run heap positions; @p seq must be
     * unique among entries sharing (when, priority).
     */
    void
    scheduleWithSequence(Event *event, Tick when, std::uint64_t seq)
    {
        scheduleImpl(event, when, seq);
    }

    /**
     * Draw the next implicit sequence number, advancing the counter
     * by the configured stride.
     */
    std::uint64_t
    allocSequence()
    {
        std::uint64_t seq = nextSequence;
        nextSequence += seqStride;
        return seq;
    }

    /**
     * Set the spacing of implicit sequence draws. The partitioned
     * executor strides the master queue so the slots between
     * consecutive draws stay free for worker-side child records;
     * serial runs keep the default stride of 1.
     */
    void setSequenceStride(std::uint64_t stride) { seqStride = stride; }

    /**
     * Forbid implicit sequence draws: every schedule must carry an
     * explicit key. Set on worker-domain queues, whose entire event
     * population is keyed in the master queue's sequence space.
     */
    void
    setRequireExplicitSequence(bool require)
    {
        requireExplicitSeq = require;
    }

    /**
     * Sequence key of the event currently being dispatched (valid
     * inside Event::process). Worker-side dispatches use it to mint
     * child-record keys adjacent to their own.
     */
    std::uint64_t
    currentDispatchSequence() const
    {
        return curDispatchSeq;
    }

    /**
     * Back pool growth with a bump-allocator hook (or detach with
     * null). Only affects events allocated after the call; the
     * hook's memory must outlive the queue.
     */
    void
    setAllocHook(AllocHook hook, void *ctx)
    {
        allocHook = hook;
        allocCtx = ctx;
    }

    /**
     * Install (or clear) a coordinator: advanceTo and nextTick then
     * delegate to it, making the partitioned run transparent to the
     * cores' driving loop.
     */
    void
    setCoordinator(EventCoordinator *coord)
    {
        coordinator = coord;
    }

    /**
     * Remove a scheduled event from the queue without firing it.
     *
     * The stale heap entry is lazily discarded; the Event object must
     * stay alive until the queue drops that entry (LambdaEvents are
     * reclaimed automatically).
     */
    void
    deschedule(Event *event)
    {
        TLSIM_ASSERT(event && event->_scheduled,
                     "descheduling an unscheduled event");
        event->_scheduled = false;
        --liveCount;
    }

    /** Deschedule (if needed) and schedule at a new tick. */
    void
    reschedule(Event *event, Tick when)
    {
        if (event->_scheduled)
            deschedule(event);
        schedule(event, when);
    }

    /**
     * Convenience: schedule a pooled one-shot callable.
     * @return The created event (owned by the queue machinery).
     */
    Event *
    scheduleFunc(Tick when, std::function<void()> fn,
                 int priority = Event::defaultPriority)
    {
        LambdaEvent *ev;
        if (!lambdaPool.empty()) {
            ev = lambdaPool.back();
            lambdaPool.pop_back();
            ev->rearm(std::move(fn));
            ev->_priority = priority;
        } else if (allocHook) {
            void *mem = allocHook(allocCtx, sizeof(LambdaEvent),
                                  alignof(LambdaEvent));
            ev = new (mem) LambdaEvent(std::move(fn), priority);
            ev->owner = this;
            ev->arenaBacked = true;
            ++lambdaAllocatedCount;
            ++lambdaArenaCount;
        } else {
            ev = new LambdaEvent(std::move(fn), priority);
            ev->owner = this;
            ++lambdaAllocatedCount;
        }
        try {
            schedule(ev, when);
        } catch (...) {
            recycle(ev); // past-tick panic must not strand the event
            throw;
        }
        return ev;
    }

    /**
     * Convenience: schedule a pooled one-shot that receives its fire
     * tick. Preferred over scheduleFunc for the "deliver cb(t) at t"
     * pattern — the callback is moved into the event (no closure, no
     * allocation) instead of being captured alongside the tick.
     * @return The created event (owned by the queue machinery).
     */
    Event *
    scheduleCallback(Tick when, std::function<void(Tick)> fn,
                     int priority = Event::defaultPriority)
    {
        TickCallbackEvent *ev = acquireCallback(std::move(fn),
                                                priority);
        try {
            schedule(ev, when);
        } catch (...) {
            recycleCallback(ev);
            throw;
        }
        return ev;
    }

    /**
     * scheduleCallback with an explicit cross-domain order key (see
     * scheduleWithSequence).
     * @return The created event (owned by the queue machinery).
     */
    Event *
    scheduleCallbackKeyed(Tick when, std::uint64_t seq,
                          std::function<void(Tick)> fn,
                          int priority = Event::defaultPriority)
    {
        TickCallbackEvent *ev = acquireCallback(std::move(fn),
                                                priority);
        try {
            scheduleImpl(ev, when, seq);
        } catch (...) {
            recycleCallback(ev);
            throw;
        }
        return ev;
    }

    /**
     * Execute events with tick <= limit, in order. Under a
     * coordinator this advances *all* event domains; afterwards
     * now() == max(limit, previous now()).
     * @return Number of events processed.
     */
    std::uint64_t
    advanceTo(Tick limit)
    {
        if (coordinator) [[unlikely]]
            return coordinator->coordAdvanceTo(limit);
        return advanceDirect(limit);
    }

    /**
     * advanceTo on this queue alone, bypassing any coordinator (the
     * coordinator itself advances its domains through this).
     */
    std::uint64_t
    advanceDirect(Tick limit)
    {
        // Profiling costs nothing per event even when on: sampling
        // is tick-strided, so the dispatch loop runs unmodified
        // between sample points and the stop tick rides the loop's
        // existing limit comparison. When on but with no sample due
        // within this span, the cost is one TLS load and a compare.
        // Latching enabled() here is safe — it only flips at quiesce
        // points, never from inside an event.
        if (prof::enabled()) [[unlikely]] {
            prof::ThreadState &ts = prof::threadState();
            if (ts.nextSampleTick <= limit)
                return advanceProfiled(limit, ts);
        }
        return advanceSpan(limit);
    }

    /** Run until the queue drains or maxTick is reached. */
    std::uint64_t
    run(Tick max_tick = MaxTick)
    {
        // Driven via nextTick/advanceTo (not empty()) so a
        // coordinator's worker domains keep the loop alive even
        // when this queue itself has drained.
        std::uint64_t processed = 0;
        while (true) {
            Tick next = nextTick();
            if (next == MaxTick || next > max_tick)
                break;
            processed += advanceTo(next);
        }
        if (max_tick != MaxTick && max_tick > curTick)
            curTick = max_tick;
        return processed;
    }

    /**
     * Tick of the earliest live event, or MaxTick when empty. Under
     * a coordinator: the earliest tick across all domains.
     */
    Tick
    nextTick()
    {
        if (coordinator) [[unlikely]]
            return coordinator->coordNextTick();
        return nextTickDirect();
    }

    /** nextTick on this queue alone, bypassing any coordinator. */
    Tick
    nextTickDirect()
    {
        while (!heap.empty()) {
            const Entry &top = heap.front();
            Event *ev = top.event;
            if (isStale(top)) {
                popTop();
                maybeReclaimSquashed(ev);
                continue;
            }
            return top.when;
        }
        return MaxTick;
    }

    /** LambdaEvents ever allocated by scheduleFunc on this queue. */
    std::size_t lambdaAllocated() const { return lambdaAllocatedCount; }

    /** LambdaEvents currently resting in the freelist. */
    std::size_t lambdaPoolSize() const { return lambdaPool.size(); }

    /**
     * Machinery-owned LambdaEvents in flight (scheduled or squashed
     * but not yet reclaimed). Zero once the queue has drained — the
     * eventq test asserts exactly that.
     */
    std::size_t
    lambdaOutstanding() const
    {
        return lambdaAllocatedCount - lambdaPool.size();
    }

    /** TickCallbackEvents ever allocated by scheduleCallback. */
    std::size_t callbackAllocated() const { return callbackAllocatedCount; }

    /** TickCallbackEvents currently resting in the freelist. */
    std::size_t callbackPoolSize() const { return callbackPool.size(); }

    /** Machinery-owned TickCallbackEvents in flight. */
    std::size_t
    callbackOutstanding() const
    {
        return callbackAllocatedCount - callbackPool.size();
    }

    /** LambdaEvents placement-built in the alloc hook's arena. */
    std::size_t lambdaArenaAllocated() const { return lambdaArenaCount; }

    /** TickCallbackEvents placement-built in the alloc hook's arena. */
    std::size_t
    callbackArenaAllocated() const
    {
        return callbackArenaCount;
    }

    /** Heap entries, live and squashed (>= size()). */
    std::size_t heapSize() const { return heap.size(); }

    /** Squashed (stale) entries still occupying the heap. */
    std::size_t staleCount() const { return heap.size() - liveCount; }

    /** Times the heap was compacted to shed squashed entries. */
    std::uint64_t compactions() const { return compactionCount; }

  private:
    friend class LambdaEvent;
    friend class TickCallbackEvent;

    /** Below this heap size compaction is never worth the make_heap. */
    static constexpr std::size_t compactMinHeap = 64;

    /** The shared scheduling tail behind every schedule flavour. */
    void
    scheduleImpl(Event *event, Tick when, std::uint64_t seq)
    {
        TLSIM_ASSERT(event != nullptr, "null event");
        TLSIM_ASSERT(!event->_scheduled, "event '{}' already scheduled",
                     event->name());
        if (when < curTick && scheduleViolationHook)
            scheduleViolationHook();
        TLSIM_ASSERT(when >= curTick,
                     "scheduling event '{}' at {} in the past (now {})",
                     event->name(), when, curTick);
        if (trace::observed()) [[unlikely]]
            observeSchedule(event, when);
        event->_when = when;
        event->_sequence = seq;
        event->_scheduled = true;
        heap.push_back(Entry{when, event, event->_sequence,
                             event->_priority, event->_selfDeleting});
        std::push_heap(heap.begin(), heap.end(), Later{});
        ++liveCount;
        // Retry-heavy runs squash far more entries than they fire;
        // compact before stale entries dominate the heap.
        if (heap.size() > compactMinHeap &&
            heap.size() - liveCount > 2 * liveCount) {
            compact();
        }
    }

    /** Pool-or-allocate a TickCallbackEvent ready to schedule. */
    TickCallbackEvent *
    acquireCallback(std::function<void(Tick)> fn, int priority)
    {
        TickCallbackEvent *ev;
        if (!callbackPool.empty()) {
            ev = callbackPool.back();
            callbackPool.pop_back();
            ev->rearm(std::move(fn));
            ev->_priority = priority;
        } else if (allocHook) {
            void *mem = allocHook(allocCtx, sizeof(TickCallbackEvent),
                                  alignof(TickCallbackEvent));
            ev = new (mem) TickCallbackEvent(std::move(fn), priority);
            ev->owner = this;
            ev->arenaBacked = true;
            ++callbackAllocatedCount;
            ++callbackArenaCount;
        } else {
            ev = new TickCallbackEvent(std::move(fn), priority);
            ev->owner = this;
            ++callbackAllocatedCount;
        }
        return ev;
    }

    struct Entry
    {
        Tick when;
        Event *event;
        std::uint64_t sequence;
        int priority;
        /**
         * Snapshot of event->selfDeleting() at schedule time, so the
         * destructor and compaction can classify entries without
         * dereferencing possibly-dead external events.
         */
        bool selfDel;
    };

    struct Later
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            if (a.priority != b.priority)
                return a.priority > b.priority;
            return a.sequence > b.sequence;
        }
    };

    /** Drop the top heap entry. */
    void
    popTop()
    {
        std::pop_heap(heap.begin(), heap.end(), Later{});
        heap.pop_back();
    }

    /**
     * Observation bodies live out of the schedule/dispatch hot paths
     * (cold + noinline) so that, with observation off, each site
     * costs one load of trace::observed() and a never-taken branch.
     */
    [[gnu::cold]] [[gnu::noinline]] void
    observeSchedule(const Event *event, Tick when) const
    {
        TLSIM_DPRINTF(EventQ, "t={} schedule '{}' at {}", curTick,
                      event->name(), when);
    }

    /**
     * The dispatch loop proper; no profiling state. The cumulative
     * dispatchedCount update is one add per call — paid identically
     * whether or not the profiler is on — and gives the sampler its
     * events-between-samples weights for free.
     */
    std::uint64_t
    advanceSpan(Tick limit)
    {
        std::uint64_t processed = 0;
        while (!heap.empty()) {
            const Entry &top = heap.front();
            Event *ev = top.event;
            if (isStale(top)) {
                popTop();
                maybeReclaimSquashed(ev);
                continue;
            }
            if (top.when > limit)
                break;
            curTick = top.when;
            curDispatchSeq = top.sequence;
            popTop();
            ev->_scheduled = false;
            --liveCount;
            if (trace::observed()) [[unlikely]]
                observeDispatch(ev);
            ev->process();
            ++processed;
        }
        dispatchedCount += processed;
        if (limit > curTick)
            curTick = limit;
        return processed;
    }

    /**
     * advanceTo() with the profiler recording and a sample due: run
     * plain spans up to each sample tick, then time exactly one
     * dispatch and attribute it — weighted by the dispatches on this
     * queue since the previous sample — to its event type. The
     * stride between samples adapts toward prof::dispatchSampleTarget
     * events per sample.
     */
    [[gnu::noinline]] std::uint64_t
    advanceProfiled(Tick limit, prof::ThreadState &ts)
    {
        std::uint64_t processed = 0;
        while (ts.nextSampleTick <= limit) {
            processed +=
                advanceSpan(std::min<Tick>(ts.nextSampleTick, limit));
            if (dispatchOneSampled(limit, ts)) {
                ++processed;
            } else {
                // Nothing left to sample before limit; re-arm past
                // it (saturating: limit may be MaxTick) so later
                // spans run unprofiled until the stride elapses.
                ts.nextSampleTick =
                    limit > MaxTick - ts.sampleStrideTicks
                        ? MaxTick
                        : limit + ts.sampleStrideTicks;
                break;
            }
        }
        processed += advanceSpan(limit);
        return processed;
    }

    /**
     * Dispatch the next runnable event at tick <= limit bracketed by
     * two clock reads, attributing its time scaled by the dispatches
     * since @p ts's previous sample on this queue. name() is
     * captured before process(): pooled events may be recycled
     * inside it.
     * @return false if no runnable event remains at tick <= limit.
     */
    bool
    dispatchOneSampled(Tick limit, prof::ThreadState &ts)
    {
        while (!heap.empty()) {
            const Entry &top = heap.front();
            Event *ev = top.event;
            if (isStale(top)) {
                popTop();
                maybeReclaimSquashed(ev);
                continue;
            }
            if (top.when > limit)
                return false;
            curTick = top.when;
            curDispatchSeq = top.sequence;
            popTop();
            ev->_scheduled = false;
            --liveCount;
            if (trace::observed()) [[unlikely]]
                observeDispatch(ev);
            const char *name = ev->name();
            std::uint64_t start = prof::nowNs();
            ev->process();
            std::uint64_t ns = prof::nowNs() - start;
            ++dispatchedCount;
            // Dispatches since the last sample on this queue; falls
            // back to 1 when the thread last sampled another queue.
            std::uint64_t weight = 1;
            if (ts.sampleQueue == this &&
                dispatchedCount > ts.sampleBaseDispatched)
                weight = dispatchedCount - ts.sampleBaseDispatched;
            prof::recordDispatch(name, ns, weight);
            ts.sampleQueue = this;
            ts.sampleBaseDispatched = dispatchedCount;
            ts.noteSample(curTick, weight);
            return true;
        }
        return false;
    }

    [[gnu::cold]] [[gnu::noinline]] void
    observeDispatch(const Event *ev) const
    {
        TLSIM_DPRINTF(EventQ, "t={} dispatch '{}'", curTick,
                      ev->name());
        if (auto *sink = trace::TraceSink::active()) {
            sink->span(trace::cat::eventq, ev->name(), curTick,
                       curTick, trace::tid::eventq);
        }
    }

    /** A heap entry is stale if its event was descheduled or moved. */
    static bool
    isStale(const Entry &entry)
    {
        return !entry.event->_scheduled ||
               entry.event->_sequence != entry.sequence;
    }

    /** Return a machinery-owned lambda to its owner's freelist. */
    static void
    recycle(LambdaEvent *ev)
    {
        if (ev->pooled)
            return;
        if (!ev->owner) {
            delete ev;
            return;
        }
        ev->pooled = true;
        ev->func = nullptr;
        ev->owner->lambdaPool.push_back(ev);
    }

    /** Return a machinery-owned tick callback to its freelist. */
    static void
    recycleCallback(TickCallbackEvent *ev)
    {
        if (ev->pooled)
            return;
        if (!ev->owner) {
            delete ev;
            return;
        }
        ev->pooled = true;
        ev->func = nullptr;
        ev->owner->callbackPool.push_back(ev);
    }

    /** Recycle either pooled one-shot flavour (ev must be alive). */
    static void
    recycleAny(Event *ev)
    {
        if (ev->_tickCallback)
            recycleCallback(static_cast<TickCallbackEvent *>(ev));
        else
            recycle(static_cast<LambdaEvent *>(ev));
    }

    /**
     * Reclaim a pooled one-shot whose squashed entry was just
     * dropped. Only safe when the event is not live elsewhere
     * (rescheduled events carry a newer sequence and stay alive).
     */
    static void
    maybeReclaimSquashed(Event *ev)
    {
        if (!ev->_scheduled && ev->selfDeleting())
            recycleAny(ev);
    }

    /**
     * Drop every stale entry and re-heapify. Dispatch order is
     * unaffected: the comparator's (when, priority, sequence) is a
     * total order over live entries, which make_heap re-establishes
     * exactly. Squashed self-deleting events are reclaimed here the
     * same way the lazy pop path would have.
     */
    void
    compact()
    {
        auto out = heap.begin();
        for (auto &entry : heap) {
            if (!isStale(entry)) {
                *out++ = entry;
                continue;
            }
            // Stale entries of live events (rescheduled under a newer
            // sequence) are dropped but their event stays alive.
            if (entry.selfDel)
                maybeReclaimSquashed(entry.event);
        }
        heap.erase(out, heap.end());
        std::make_heap(heap.begin(), heap.end(), Later{});
        ++compactionCount;
    }

    // Member order is deliberate: the per-schedule/per-dispatch state
    // (current tick, sequence counter and stride, the coordinator
    // check, live count) sits together right behind the heap vector
    // so the hot paths touch as few cache lines as possible; pools,
    // bookkeeping counters, and cold configuration follow.
    std::vector<Entry> heap;
    Tick curTick = 0;
    std::uint64_t nextSequence = 0;
    /** Spacing of implicit sequence draws (1 except under PDES). */
    std::uint64_t seqStride = 1;
    /** Sequence key of the in-flight dispatch (see accessor). */
    std::uint64_t curDispatchSeq = 0;
    std::size_t liveCount = 0;
    /** Installed by a partitioned run; null in serial mode. */
    EventCoordinator *coordinator = nullptr;
    /** Reject implicit draws (worker-domain queues). */
    bool requireExplicitSeq = false;
    std::vector<LambdaEvent *> lambdaPool;
    std::vector<TickCallbackEvent *> callbackPool;
    /** Cumulative dispatched events; weights profiler samples. */
    std::uint64_t dispatchedCount = 0;
    std::size_t lambdaAllocatedCount = 0;
    std::size_t callbackAllocatedCount = 0;
    std::size_t lambdaArenaCount = 0;
    std::size_t callbackArenaCount = 0;
    std::uint64_t compactionCount = 0;
    /** Arena hook backing pool growth (null: plain new). */
    AllocHook allocHook = nullptr;
    void *allocCtx = nullptr;
};

inline void
LambdaEvent::process()
{
    // Move the callable out first: it may reschedule, and a pooled
    // event can be handed out again from inside fn().
    auto fn = std::move(func);
    EventQueue::recycle(this);
    fn();
}

inline void
TickCallbackEvent::process()
{
    // Capture the fire tick before recycling: a rearm from inside
    // fn() would overwrite it.
    Tick t = when();
    auto fn = std::move(func);
    EventQueue::recycleCallback(this);
    fn(t);
}

} // namespace tlsim

#endif // TLSIM_SIM_EVENTQ_HH
