/**
 * @file
 * Discrete-event simulation kernel.
 *
 * A single EventQueue orders Event objects by (tick, priority,
 * insertion sequence); ties are broken deterministically so runs are
 * exactly reproducible. Events may be one-shot lambdas (see
 * EventQueue::scheduleFunc) or long-lived Event subclasses that are
 * rescheduled repeatedly without allocation.
 */

#ifndef TLSIM_SIM_EVENTQ_HH
#define TLSIM_SIM_EVENTQ_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/logging.hh"
#include "sim/trace/debug.hh"
#include "sim/trace/observed.hh"
#include "sim/trace/tracesink.hh"
#include "sim/types.hh"

namespace tlsim
{

class EventQueue;

/** Debug hook invoked just before a past-scheduling panic. */
inline void (*scheduleViolationHook)() = nullptr;

/**
 * Base class for all schedulable events.
 *
 * An Event may be scheduled on at most one queue at a time. The queue
 * never owns the event; lifetime is the scheduler's responsibility.
 */
class Event
{
  public:
    /** Default scheduling priority; lower value runs first at a tick. */
    static constexpr int defaultPriority = 0;

    explicit Event(int priority = defaultPriority)
        : _priority(priority)
    {}

    virtual ~Event() = default;

    Event(const Event &) = delete;
    Event &operator=(const Event &) = delete;

    /** Invoked by the queue when the event's tick is reached. */
    virtual void process() = 0;

    /** Human-readable name for diagnostics. */
    virtual const char *name() const { return "Event"; }

    /** True if the event sits in a queue awaiting dispatch. */
    bool scheduled() const { return _scheduled; }

    /** Tick at which the event will fire (valid while scheduled). */
    Tick when() const { return _when; }

    /** Scheduling priority; lower runs first within a tick. */
    int priority() const { return _priority; }

  private:
    friend class EventQueue;

    Tick _when = 0;
    std::uint64_t _sequence = 0;
    int _priority;
    bool _scheduled = false;
};

/** One-shot event wrapping a callable; deletes itself after firing. */
class LambdaEvent : public Event
{
  public:
    explicit LambdaEvent(std::function<void()> fn,
                         int priority = Event::defaultPriority)
        : Event(priority), func(std::move(fn))
    {}

    void
    process() override
    {
        auto fn = std::move(func);
        delete this;
        fn();
    }

    const char *name() const override { return "LambdaEvent"; }

  private:
    std::function<void()> func;
};

/**
 * Deterministic discrete-event queue.
 *
 * Deschedule is implemented by squashing: the heap entry stays but is
 * skipped on pop, so deschedule/reschedule are O(log n) amortized.
 */
class EventQueue
{
  public:
    EventQueue() = default;

    /** Current simulated time in ticks. */
    Tick now() const { return curTick; }

    /** Number of events pending (excluding squashed entries). */
    std::size_t size() const { return liveCount; }

    /** True when no live events remain. */
    bool empty() const { return liveCount == 0; }

    /**
     * Schedule an event at an absolute tick >= now().
     * @param event Event to schedule; must not already be scheduled.
     * @param when Absolute tick at which to fire.
     */
    void
    schedule(Event *event, Tick when)
    {
        TLSIM_ASSERT(event != nullptr, "null event");
        TLSIM_ASSERT(!event->_scheduled, "event '{}' already scheduled",
                     event->name());
        if (when < curTick && scheduleViolationHook)
            scheduleViolationHook();
        TLSIM_ASSERT(when >= curTick,
                     "scheduling event '{}' at {} in the past (now {})",
                     event->name(), when, curTick);
        if (trace::observed()) [[unlikely]]
            observeSchedule(event, when);
        event->_when = when;
        event->_sequence = nextSequence++;
        event->_scheduled = true;
        heap.push(Entry{when, event->_priority, event->_sequence, event});
        ++liveCount;
    }

    /**
     * Remove a scheduled event from the queue without firing it.
     *
     * The stale heap entry is lazily discarded; the Event object must
     * stay alive until the queue drops that entry (LambdaEvents are
     * reclaimed automatically).
     */
    void
    deschedule(Event *event)
    {
        TLSIM_ASSERT(event && event->_scheduled,
                     "descheduling an unscheduled event");
        event->_scheduled = false;
        --liveCount;
    }

    /** Deschedule (if needed) and schedule at a new tick. */
    void
    reschedule(Event *event, Tick when)
    {
        if (event->_scheduled)
            deschedule(event);
        schedule(event, when);
    }

    /**
     * Convenience: schedule a self-deleting one-shot callable.
     * @return The created event (owned by the queue machinery).
     */
    Event *
    scheduleFunc(Tick when, std::function<void()> fn,
                 int priority = Event::defaultPriority)
    {
        auto *ev = new LambdaEvent(std::move(fn), priority);
        schedule(ev, when);
        return ev;
    }

    /**
     * Execute events with tick <= limit, in order.
     * Afterwards now() == max(limit, previous now()).
     * @return Number of events processed.
     */
    std::uint64_t
    advanceTo(Tick limit)
    {
        std::uint64_t processed = 0;
        while (!heap.empty()) {
            const Entry &top = heap.top();
            Event *ev = top.event;
            if (isStale(top)) {
                heap.pop();
                maybeDeleteSquashed(ev);
                continue;
            }
            if (top.when > limit)
                break;
            curTick = top.when;
            heap.pop();
            ev->_scheduled = false;
            --liveCount;
            if (trace::observed()) [[unlikely]]
                observeDispatch(ev);
            ev->process();
            ++processed;
        }
        if (limit > curTick)
            curTick = limit;
        return processed;
    }

    /** Run until the queue drains or maxTick is reached. */
    std::uint64_t
    run(Tick max_tick = MaxTick)
    {
        std::uint64_t processed = 0;
        while (!empty()) {
            Tick next = nextTick();
            if (next > max_tick)
                break;
            processed += advanceTo(next);
        }
        if (max_tick != MaxTick && max_tick > curTick)
            curTick = max_tick;
        return processed;
    }

    /** Tick of the earliest live event, or MaxTick when empty. */
    Tick
    nextTick()
    {
        while (!heap.empty()) {
            const Entry &top = heap.top();
            Event *ev = top.event;
            if (isStale(top)) {
                heap.pop();
                maybeDeleteSquashed(ev);
                continue;
            }
            return top.when;
        }
        return MaxTick;
    }

  private:
    struct Entry
    {
        Tick when;
        int priority;
        std::uint64_t sequence;
        Event *event;
    };

    struct Later
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            if (a.priority != b.priority)
                return a.priority > b.priority;
            return a.sequence > b.sequence;
        }
    };

    /**
     * Observation bodies live out of the schedule/dispatch hot paths
     * (cold + noinline) so that, with observation off, each site
     * costs one load of trace::observed() and a never-taken branch.
     */
    [[gnu::cold]] [[gnu::noinline]] void
    observeSchedule(const Event *event, Tick when) const
    {
        TLSIM_DPRINTF(EventQ, "t={} schedule '{}' at {}", curTick,
                      event->name(), when);
    }

    [[gnu::cold]] [[gnu::noinline]] void
    observeDispatch(const Event *ev) const
    {
        TLSIM_DPRINTF(EventQ, "t={} dispatch '{}'", curTick,
                      ev->name());
        if (auto *sink = trace::TraceSink::active()) {
            sink->span(trace::cat::eventq, ev->name(), curTick,
                       curTick, trace::tid::eventq);
        }
    }

    /** A heap entry is stale if its event was descheduled or moved. */
    static bool
    isStale(const Entry &entry)
    {
        return !entry.event->_scheduled ||
               entry.event->_sequence != entry.sequence;
    }

    static void
    maybeDeleteSquashed(Event *ev)
    {
        // LambdaEvents delete themselves in process(); if one was
        // descheduled instead, reclaim it when its entry is dropped.
        // Only safe when the event is not live elsewhere.
        if (!ev->_scheduled && dynamic_cast<LambdaEvent *>(ev))
            delete ev;
    }

    std::priority_queue<Entry, std::vector<Entry>, Later> heap;
    Tick curTick = 0;
    std::uint64_t nextSequence = 0;
    std::size_t liveCount = 0;
};

} // namespace tlsim

#endif // TLSIM_SIM_EVENTQ_HH
