#include "sim/metrics/metrics.hh"

#include <cstdio>
#include <cstring>
#include <fstream>

namespace tlsim
{
namespace metrics
{

std::uint64_t
Gauge::toBits(double v)
{
    std::uint64_t b;
    std::memcpy(&b, &v, sizeof(b));
    return b;
}

double
Gauge::fromBits(std::uint64_t b)
{
    double v;
    std::memcpy(&v, &b, sizeof(v));
    return v;
}

void
Gauge::add(double delta)
{
    std::uint64_t expected = bits.load(std::memory_order_relaxed);
    while (!bits.compare_exchange_weak(
        expected, toBits(fromBits(expected) + delta),
        std::memory_order_relaxed)) {
    }
}

void
LogHistogram::observe(std::uint64_t v)
{
    std::size_t bucket =
        v == 0 ? 0
               : static_cast<std::size_t>(64 - __builtin_clzll(v));
    buckets[bucket].fetch_add(1, std::memory_order_relaxed);
    _count.fetch_add(1, std::memory_order_relaxed);
    _sum.fetch_add(v, std::memory_order_relaxed);
}

std::uint64_t
LogHistogram::bucketUpper(std::size_t i)
{
    if (i == 0)
        return 0;
    if (i >= 64)
        return ~std::uint64_t{0};
    return (std::uint64_t{1} << i) - 1;
}

double
LogHistogram::quantile(double q) const
{
    std::uint64_t total = count();
    if (total == 0)
        return 0.0;
    if (q < 0.0)
        q = 0.0;
    if (q > 1.0)
        q = 1.0;
    double target = q * static_cast<double>(total);
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < numBuckets; ++i) {
        std::uint64_t n = bucketCount(i);
        if (n == 0)
            continue;
        if (static_cast<double>(seen + n) >= target) {
            // Interpolate inside [lo, hi] of this bucket.
            double lo = i == 0 ? 0.0
                               : static_cast<double>(
                                     bucketUpper(i - 1)) +
                                     1.0;
            double hi = static_cast<double>(bucketUpper(i));
            double frac =
                (target - static_cast<double>(seen)) /
                static_cast<double>(n);
            return lo + (hi - lo) * frac;
        }
        seen += n;
    }
    return static_cast<double>(bucketUpper(numBuckets - 1));
}

Registry::Entry &
Registry::findOrCreate(const std::string &name, const std::string &help,
                       Kind kind)
{
    std::lock_guard<std::mutex> lock(mutex);
    for (auto &e : entries) {
        if (e->name == name)
            return *e;
    }
    auto e = std::make_unique<Entry>();
    e->name = name;
    e->help = help;
    e->kind = kind;
    switch (kind) {
      case Kind::CounterK:
        e->counter = std::make_unique<Counter>();
        break;
      case Kind::GaugeK:
        e->gauge = std::make_unique<Gauge>();
        break;
      case Kind::HistogramK:
        e->histogram = std::make_unique<LogHistogram>();
        break;
    }
    entries.push_back(std::move(e));
    return *entries.back();
}

Counter &
Registry::counter(const std::string &name, const std::string &help)
{
    return *findOrCreate(name, help, Kind::CounterK).counter;
}

Gauge &
Registry::gauge(const std::string &name, const std::string &help)
{
    return *findOrCreate(name, help, Kind::GaugeK).gauge;
}

LogHistogram &
Registry::histogram(const std::string &name, const std::string &help)
{
    return *findOrCreate(name, help, Kind::HistogramK).histogram;
}

namespace
{

/** Series name up to the label block: family the series belongs to. */
std::string
familyOf(const std::string &name)
{
    std::size_t brace = name.find('{');
    return brace == std::string::npos ? name : name.substr(0, brace);
}

void
promNumber(std::ostream &os, double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    os << buf;
}

} // namespace

void
Registry::writePrometheus(std::ostream &os) const
{
    std::lock_guard<std::mutex> lock(mutex);
    std::string last_family;
    for (const auto &e : entries) {
        std::string family = familyOf(e->name);
        if (family != last_family) {
            os << "# HELP " << family << ' ' << e->help << '\n';
            os << "# TYPE " << family << ' ';
            switch (e->kind) {
              case Kind::CounterK:
                os << "counter";
                break;
              case Kind::GaugeK:
                os << "gauge";
                break;
              case Kind::HistogramK:
                os << "histogram";
                break;
            }
            os << '\n';
            last_family = family;
        }
        switch (e->kind) {
          case Kind::CounterK:
            os << e->name << ' ' << e->counter->get() << '\n';
            break;
          case Kind::GaugeK:
            os << e->name << ' ';
            promNumber(os, e->gauge->get());
            os << '\n';
            break;
          case Kind::HistogramK: {
            const LogHistogram &h = *e->histogram;
            // Histogram series take labels; a labelled histogram
            // name is not supported (family == name).
            std::uint64_t cumulative = 0;
            for (std::size_t i = 0; i < LogHistogram::numBuckets;
                 ++i) {
                std::uint64_t n = h.bucketCount(i);
                cumulative += n;
                if (n == 0 && i + 1 != LogHistogram::numBuckets)
                    continue; // keep files small; le is cumulative
                os << family << "_bucket{le=\"";
                promNumber(
                    os,
                    static_cast<double>(LogHistogram::bucketUpper(i)));
                os << "\"} " << cumulative << '\n';
            }
            os << family << "_bucket{le=\"+Inf\"} " << h.count()
               << '\n';
            os << family << "_sum " << h.sum() << '\n';
            os << family << "_count " << h.count() << '\n';
            break;
          }
        }
    }
}

bool
Registry::writePrometheusFile(const std::string &path) const
{
    std::string tmp = path + ".tmp";
    {
        std::ofstream os(tmp, std::ios::trunc);
        if (!os)
            return false;
        writePrometheus(os);
        if (!os.flush())
            return false;
    }
    return std::rename(tmp.c_str(), path.c_str()) == 0;
}

} // namespace metrics
} // namespace tlsim
