/**
 * @file
 * Sweep-fleet metrics: counters, gauges, and log-bucketed histograms
 * with Prometheus text-format exposition.
 *
 * These are *operational* metrics about the simulator fleet (runs
 * completed, cache hits, wall-time percentiles) — not simulation
 * statistics. Simulation results live in the stats:: tree and stay
 * deterministic; this registry measures wall-clock and progress and
 * is never merged into stats JSON.
 *
 * Metric names may embed Prometheus labels directly, e.g.
 *   registry.counter("tlsim_sweep_runs_total{result=\"cached\"}", ...)
 * The exposition writer groups series of one family (the name up to
 * '{') under a single # HELP/# TYPE header.
 *
 * All mutators are thread-safe (atomics); creating metrics takes the
 * registry mutex. Histograms use log2 buckets, so observe() is one
 * clz plus two atomic adds, and quantiles are accurate to within one
 * power of two with linear interpolation inside the bucket.
 */

#ifndef TLSIM_SIM_METRICS_METRICS_HH
#define TLSIM_SIM_METRICS_METRICS_HH

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

namespace tlsim
{
namespace metrics
{

class Registry;

/** Monotonically increasing integer series. */
class Counter
{
  public:
    void inc(std::uint64_t by = 1)
    {
        value.fetch_add(by, std::memory_order_relaxed);
    }

    std::uint64_t
    get() const
    {
        return value.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<std::uint64_t> value{0};
};

/** Instantaneous value that can move both ways. */
class Gauge
{
  public:
    void
    set(double v)
    {
        bits.store(toBits(v), std::memory_order_relaxed);
    }

    void add(double delta);

    double
    get() const
    {
        return fromBits(bits.load(std::memory_order_relaxed));
    }

  private:
    static std::uint64_t toBits(double v);
    static double fromBits(std::uint64_t b);

    std::atomic<std::uint64_t> bits{0};
};

/**
 * Log2-bucketed histogram over non-negative integers (bucket i holds
 * values whose highest set bit is i-1; bucket 0 holds zero).
 */
class LogHistogram
{
  public:
    static constexpr std::size_t numBuckets = 65;

    void observe(std::uint64_t v);

    std::uint64_t count() const
    {
        return _count.load(std::memory_order_relaxed);
    }

    std::uint64_t sum() const
    {
        return _sum.load(std::memory_order_relaxed);
    }

    /**
     * Approximate value at quantile @p q in [0,1]: exact bucket,
     * linear interpolation inside it.
     */
    double quantile(double q) const;

    double p50() const { return quantile(0.50); }
    double p95() const { return quantile(0.95); }
    double p99() const { return quantile(0.99); }

    std::uint64_t
    bucketCount(std::size_t i) const
    {
        return buckets[i].load(std::memory_order_relaxed);
    }

    /** Inclusive upper bound of bucket @p i (2^i - 1; bucket 0 = 0). */
    static std::uint64_t bucketUpper(std::size_t i);

  private:
    std::array<std::atomic<std::uint64_t>, numBuckets> buckets{};
    std::atomic<std::uint64_t> _count{0};
    std::atomic<std::uint64_t> _sum{0};
};

/**
 * Insertion-ordered collection of named metrics with Prometheus
 * text-format exposition. Lookup by name returns the existing
 * instance, so call sites can re-resolve cheaply.
 */
class Registry
{
  public:
    Counter &counter(const std::string &name, const std::string &help);
    Gauge &gauge(const std::string &name, const std::string &help);
    LogHistogram &histogram(const std::string &name,
                            const std::string &help);

    /** Prometheus text exposition format, version 0.0.4. */
    void writePrometheus(std::ostream &os) const;

    /**
     * Atomically (write + rename) dump the exposition to @p path.
     * Returns false on I/O failure.
     */
    bool writePrometheusFile(const std::string &path) const;

  private:
    enum class Kind { CounterK, GaugeK, HistogramK };

    struct Entry
    {
        std::string name; ///< full series name, may embed {labels}
        std::string help;
        Kind kind;
        std::unique_ptr<Counter> counter;
        std::unique_ptr<Gauge> gauge;
        std::unique_ptr<LogHistogram> histogram;
    };

    Entry &findOrCreate(const std::string &name,
                        const std::string &help, Kind kind);

    mutable std::mutex mutex;
    std::vector<std::unique_ptr<Entry>> entries;
};

} // namespace metrics
} // namespace tlsim

#endif // TLSIM_SIM_METRICS_METRICS_HH
