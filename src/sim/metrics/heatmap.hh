/**
 * @file
 * Time x space utilization heatmaps.
 *
 * A Heatmap accumulates a value per (time window, cell) pair, where a
 * cell is a spatial resource index (a bank, a TLC link pair, a mesh
 * link) and the time axis is *simulated* ticks folded into fixed
 * windows. Because rows are keyed by simulated time only, the matrix
 * is fully deterministic: serial and parallel sweeps, cold and warm
 * caches all produce byte-identical exports (see tests/test_sweep.cc).
 *
 * Heatmap derives from stats::StatBase, so instances parented to a
 * design's StatGroup are exported in the stats JSON automatically and
 * reset by StatGroup::resetStats() at beginMeasurement — the matrix
 * covers exactly the measured phase. The first sample after a reset
 * re-latches the base window, so row 0 is the window of the first
 * measured sample.
 *
 * Unknown run length is handled by adaptive coarsening: when a sample
 * would exceed maxWindows rows, the window doubles and existing rows
 * are refolded pairwise. This is deterministic and keeps the matrix
 * bounded regardless of how long the measured phase runs.
 *
 * Collection is opt-in: designs only construct heatmaps when
 * metrics::spatialEnabled is set (e.g. via tlsim_repro --heatmaps),
 * so the default stats JSON shape — and thus every paper table and
 * figure — is unchanged when telemetry is off.
 */

#ifndef TLSIM_SIM_METRICS_HEATMAP_HH
#define TLSIM_SIM_METRICS_HEATMAP_HH

#include <cstdint>
#include <vector>

#include "sim/stats.hh"
#include "sim/types.hh"

namespace tlsim
{
namespace metrics
{

/** Collect spatial heatmaps? Read at design construction. */
inline bool spatialEnabled = false;

/** Window width override in ticks; 0 means Heatmap's default. */
inline Tick spatialWindowTicks = 0;

class Heatmap : public stats::StatBase
{
  public:
    static constexpr Tick defaultWindowTicks = 4096;
    static constexpr std::size_t maxWindows = 64;

    /**
     * @param cells   number of spatial cells (fixed for the run)
     * @param window  window width in ticks (0: global override or
     *                defaultWindowTicks)
     */
    Heatmap(stats::StatGroup *parent, std::string name,
            std::string desc, std::size_t cells, Tick window = 0);

    /** Accumulate @p value into (window-of(@p tick), @p cell). */
    void add(std::size_t cell, Tick tick, std::uint64_t value);

    std::size_t cells() const { return _cells; }
    std::size_t rowCount() const { return data.size() / _cells; }
    Tick windowTicks() const { return window; }
    Tick baseTick() const { return base; }

    /** Cell value at (@p row, @p cell); 0 when out of range. */
    std::uint64_t at(std::size_t row, std::size_t cell) const;

    void reset() override;
    void dump(std::ostream &os,
              const std::string &prefix) const override;
    void dumpJson(std::ostream &os) const override;

  private:
    void coarsen();

    std::size_t _cells;
    Tick configuredWindow;
    Tick window;
    Tick base = 0;
    bool baseLatched = false;
    /** Row-major [rows][cells] accumulation matrix. */
    std::vector<std::uint64_t> data;
};

} // namespace metrics
} // namespace tlsim

#endif // TLSIM_SIM_METRICS_HEATMAP_HH
