#include "sim/metrics/heatmap.hh"

#include "sim/logging.hh"
#include "sim/trace/tracesink.hh"

namespace tlsim
{
namespace metrics
{

Heatmap::Heatmap(stats::StatGroup *parent, std::string name,
                 std::string desc, std::size_t cells, Tick window_arg)
    : stats::StatBase(parent, std::move(name), std::move(desc)),
      _cells(cells)
{
    TLSIM_ASSERT(cells > 0, "heatmap needs at least one cell");
    configuredWindow = window_arg != 0          ? window_arg
                       : spatialWindowTicks != 0 ? spatialWindowTicks
                                                 : defaultWindowTicks;
    window = configuredWindow;
}

void
Heatmap::add(std::size_t cell, Tick tick, std::uint64_t value)
{
    TLSIM_ASSERT(cell < _cells, "heatmap cell out of range");
    if (!baseLatched) {
        base = tick;
        baseLatched = true;
    }
    // Samples are not guaranteed monotone across cells; clamp ticks
    // before the latched base into row 0.
    Tick rel = tick > base ? tick - base : 0;
    std::size_t row = static_cast<std::size_t>(rel / window);
    while (row >= maxWindows) {
        coarsen();
        row = static_cast<std::size_t>(rel / window);
    }
    if ((row + 1) * _cells > data.size())
        data.resize((row + 1) * _cells, 0);
    data[row * _cells + cell] += value;
}

void
Heatmap::coarsen()
{
    // Double the window and refold rows pairwise: old rows 2k and
    // 2k+1 land in new row k. Deterministic, order-independent.
    window *= 2;
    std::size_t old_rows = data.size() / _cells;
    std::size_t new_rows = (old_rows + 1) / 2;
    std::vector<std::uint64_t> folded(new_rows * _cells, 0);
    for (std::size_t r = 0; r < old_rows; ++r)
        for (std::size_t c = 0; c < _cells; ++c)
            folded[(r / 2) * _cells + c] += data[r * _cells + c];
    data = std::move(folded);
}

std::uint64_t
Heatmap::at(std::size_t row, std::size_t cell) const
{
    if (cell >= _cells || row >= rowCount())
        return 0;
    return data[row * _cells + cell];
}

void
Heatmap::reset()
{
    data.clear();
    base = 0;
    baseLatched = false;
    window = configuredWindow;
}

void
Heatmap::dump(std::ostream &os, const std::string &prefix) const
{
    std::uint64_t total = 0;
    for (std::uint64_t v : data)
        total += v;
    os << prefix << name() << "  rows=" << rowCount()
       << " cells=" << _cells << " window=" << window
       << " total=" << total << "  # " << desc() << '\n';
}

void
Heatmap::dumpJson(std::ostream &os) const
{
    os << "{\"kind\": \"heatmap\", \"desc\": \""
       << trace::jsonEscape(desc()) << "\", \"cells\": " << _cells
       << ", \"window\": " << window << ", \"base_tick\": " << base
       << ", \"rows\": " << rowCount() << ", \"data\": [";
    std::size_t rows = rowCount();
    for (std::size_t r = 0; r < rows; ++r) {
        os << (r ? ", [" : "[");
        for (std::size_t c = 0; c < _cells; ++c)
            os << (c ? ", " : "") << data[r * _cells + c];
        os << "]";
    }
    os << "]}";
}

} // namespace metrics
} // namespace tlsim
