/**
 * @file
 * Fundamental simulator types shared by all modules.
 */

#ifndef TLSIM_SIM_TYPES_HH
#define TLSIM_SIM_TYPES_HH

#include <cstdint>

namespace tlsim
{

/** Simulated time, in CPU clock cycles (10 GHz target clock). */
using Tick = std::uint64_t;

/** A relative number of clock cycles. */
using Cycles = std::uint64_t;

/** A physical memory address (byte granularity). */
using Addr = std::uint64_t;

/** Sentinel for "no tick scheduled". */
constexpr Tick MaxTick = ~Tick(0);

} // namespace tlsim

#endif // TLSIM_SIM_TYPES_HH
