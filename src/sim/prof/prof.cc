#include "sim/prof/prof.hh"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <functional>

namespace tlsim
{
namespace prof
{

void
setEnabled(bool on)
{
#ifdef TLSIM_NO_PROF
    (void)on;
#else
    detail::enabledFlag = on;
#endif
}

Node *
Node::child(const char *site)
{
    for (auto &c : children) {
        // Sites are literals, so pointer equality almost always
        // suffices; fall back to strcmp for identical literals
        // deduplicated differently across translation units.
        if (c->name == site || std::strcmp(c->name, site) == 0)
            return c.get();
    }
    children.push_back(std::make_unique<Node>(site, this));
    return children.back().get();
}

namespace
{

void
mergeInto(Node &dst, const Node &src)
{
    dst.count += src.count;
    dst.totalNs += src.totalNs;
    dst.childNs += src.childNs;
    for (const auto &c : src.children)
        mergeInto(*dst.child(c->name), *c);
}

void
clearNode(Node &n)
{
    n.count = 0;
    n.totalNs = 0;
    n.childNs = 0;
    n.children.clear();
}

} // namespace

ThreadState::ThreadState()
{
    Registry::instance().attach(this);
}

ThreadState::~ThreadState()
{
    // Thread teardown: drop the fast-path cache so a late caller
    // can't reach the dead object.
    if (detail::cachedThreadState == this)
        detail::cachedThreadState = nullptr;
    Registry::instance().detach(this);
}

ThreadState &
detail::threadStateSlow()
{
    static thread_local ThreadState state;
    detail::cachedThreadState = &state;
    return state;
}

void
recordDispatch(const char *event_name, std::uint64_t ns,
               std::uint64_t weight)
{
    ThreadState &ts = threadState();
    Node *n = ts.current->child(event_name);
    n->count += weight;
    std::uint64_t scaled = ns * weight;
    n->totalNs += scaled;
    ts.current->childNs += scaled;
}

void
Scope::begin(const char *site)
{
    ThreadState &ts = threadState();
    node = ts.current->child(site);
    ts.current = node;
    startNs = nowNs();
}

void
Scope::end()
{
    std::uint64_t elapsed = nowNs() - startNs;
    node->count += 1;
    node->totalNs += elapsed;
    if (node->parent)
        node->parent->childNs += elapsed;
    threadState().current = node->parent;
    node = nullptr;
}

Registry &
Registry::instance()
{
    static Registry registry;
    return registry;
}

void
Registry::attach(ThreadState *ts)
{
    std::lock_guard<std::mutex> lock(mutex);
    live.push_back(ts);
}

void
Registry::detach(ThreadState *ts)
{
    std::lock_guard<std::mutex> lock(mutex);
    mergeInto(retired, ts->root);
    live.erase(std::remove(live.begin(), live.end(), ts), live.end());
}

std::unique_ptr<Node>
Registry::snapshot() const
{
    std::lock_guard<std::mutex> lock(mutex);
    auto merged = std::make_unique<Node>("", nullptr);
    mergeInto(*merged, retired);
    for (const ThreadState *ts : live)
        mergeInto(*merged, ts->root);
    return merged;
}

void
Registry::reset()
{
    std::lock_guard<std::mutex> lock(mutex);
    clearNode(retired);
    for (ThreadState *ts : live) {
        clearNode(ts->root);
        ts->current = &ts->root;
        ts->nextSampleTick = 0;
        ts->sampleStrideTicks = dispatchSampleTarget;
        ts->sampleQueue = nullptr;
        ts->sampleBaseDispatched = 0;
    }
}

std::vector<ReportRow>
Registry::rows() const
{
    auto merged = snapshot();
    std::vector<ReportRow> out;
    std::function<void(const Node &, const std::string &, int)> walk =
        [&](const Node &n, const std::string &prefix, int depth) {
            for (const auto &c : n.children) {
                std::string path =
                    prefix.empty() ? c->name : prefix + ";" + c->name;
                out.push_back({path, depth, c->count, c->totalNs,
                               c->selfNs()});
                walk(*c, path, depth + 1);
            }
        };
    walk(*merged, "", 0);
    return out;
}

void
Registry::writeReport(std::ostream &os) const
{
    auto merged = snapshot();

    // Grand total = inclusive time of the top-level scopes. With the
    // run phases tiling runBenchmark, everything below is nested
    // attribution of that total.
    std::uint64_t grand = 0, topSelf = 0;
    for (const auto &c : merged->children) {
        grand += c->totalNs;
        topSelf += c->selfNs();
    }

    os << "=== wall-clock attribution (profiler) ===\n";
    if (grand == 0) {
        os << "(no samples recorded)\n";
        return;
    }
    char buf[256];
    std::snprintf(buf, sizeof(buf), "%-44s %12s %10s %8s %8s\n",
                  "site", "calls", "total ms", "self %", "incl %");
    os << buf;

    std::function<void(const Node &, int)> walk = [&](const Node &n,
                                                      int depth) {
        std::vector<const Node *> kids;
        for (const auto &c : n.children)
            kids.push_back(c.get());
        std::sort(kids.begin(), kids.end(),
                  [](const Node *a, const Node *b) {
                      return a->totalNs > b->totalNs;
                  });
        for (const Node *c : kids) {
            std::string label(static_cast<std::size_t>(depth) * 2, ' ');
            label += c->name;
            if (label.size() > 44)
                label.resize(44);
            std::snprintf(buf, sizeof(buf),
                          "%-44s %12" PRIu64 " %10.2f %7.1f%% %7.1f%%\n",
                          label.c_str(), c->count,
                          static_cast<double>(c->totalNs) / 1e6,
                          100.0 * static_cast<double>(c->selfNs()) /
                              static_cast<double>(grand),
                          100.0 * static_cast<double>(c->totalNs) /
                              static_cast<double>(grand));
            os << buf;
            walk(*c, depth + 1);
        }
    };
    walk(*merged, 0);

    // Coverage: how much of the top-level wall-clock was attributed
    // to some nested component rather than left as top-level self
    // time.
    double coverage = 100.0 *
                      static_cast<double>(grand - topSelf) /
                      static_cast<double>(grand);
    std::snprintf(buf, sizeof(buf),
                  "component attribution coverage: %.1f%% of %.2f ms\n",
                  coverage, static_cast<double>(grand) / 1e6);
    os << buf;
}

void
Registry::writeCollapsed(std::ostream &os) const
{
    auto merged = snapshot();
    std::function<void(const Node &, const std::string &)> walk =
        [&](const Node &n, const std::string &prefix) {
            for (const auto &c : n.children) {
                std::string path =
                    prefix.empty() ? c->name : prefix + ";" + c->name;
                std::uint64_t self_us = c->selfNs() / 1000;
                if (self_us > 0)
                    os << path << ' ' << self_us << '\n';
                walk(*c, path);
            }
        };
    walk(*merged, "");
}

} // namespace prof
} // namespace tlsim
