/**
 * @file
 * Low-overhead self-profiler: where does the simulator's own
 * wall-clock go?
 *
 * Two instruments share one call-tree per thread:
 *
 *  - prof::Scope, an RAII scoped timer for coarse sites (run phases,
 *    L2 access paths, mesh routing, DRAM, physics memo lookups).
 *    Each scope pushes a node onto the thread's stack; nesting builds
 *    real stacks, so the output is flamegraph-ready.
 *  - a sampled event-dispatch timer (see EventQueue::advanceTo): the
 *    dispatch loop is far too hot to bracket every event with two
 *    clock reads, so sampling is tick-strided — the loop runs
 *    unmodified between sample points and one dispatch per stride is
 *    timed, weighted by the dispatches it stands in for. Counts and
 *    times per event type are therefore estimates; the scoped-timer
 *    tree is exact.
 *
 * Zero-cost when off: every site reduces to one load of an inline
 * bool and a never-taken branch (the same discipline as
 * trace::observed()), and compiling with -DTLSIM_NO_PROF removes even
 * that. Profiling measures wall-clock only — it never touches
 * simulated state or the stats tree, so enabling it cannot change any
 * simulation result (asserted by tests/test_sweep.cc).
 *
 * Threads register their trees with the process-wide prof::Registry;
 * snapshot/report/collapsed-stack output merges all trees and must be
 * taken at a quiesce point (no concurrent recording), e.g. after a
 * sweep's workers have joined.
 */

#ifndef TLSIM_SIM_PROF_PROF_HH
#define TLSIM_SIM_PROF_PROF_HH

#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

namespace tlsim
{
namespace prof
{

namespace detail
{
/** Master runtime switch; flip only at quiesce points. */
#ifdef TLSIM_NO_PROF
inline constexpr bool enabledFlag = false;
#else
inline bool enabledFlag = false;
#endif
} // namespace detail

/** True when the profiler is recording. */
inline bool
enabled()
{
    return detail::enabledFlag;
}

/** Enable/disable recording (no-op under TLSIM_NO_PROF). */
void setEnabled(bool on);

/** Monotonic wall-clock in nanoseconds. */
inline std::uint64_t
nowNs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

/**
 * Target number of event dispatches per timed sample. Sampling is
 * tick-strided: the dispatch loop runs unmodified between sample
 * points (zero per-event cost — the stop tick rides the loop's
 * existing limit comparison) and the stride in simulated ticks
 * adapts toward this many events per sample. Each sample's time and
 * count are weighted by the dispatches since the previous sample.
 */
constexpr std::uint64_t dispatchSampleTarget = 1024;

/** Upper bound for the adaptive sampling stride [ticks]. */
constexpr std::uint64_t maxSampleStrideTicks = std::uint64_t{1} << 30;

/**
 * One node of a thread's scope tree. Site names must have static
 * storage duration (string literals): nodes keep the pointer.
 */
struct Node
{
    Node(const char *site, Node *up) : name(site), parent(up) {}

    const char *name;
    Node *parent;
    std::uint64_t count = 0;
    /** Inclusive wall-clock in this node [ns]. */
    std::uint64_t totalNs = 0;
    /** Portion of totalNs spent inside child nodes [ns]. */
    std::uint64_t childNs = 0;
    std::vector<std::unique_ptr<Node>> children;

    /** Find or create the child for @p site. */
    Node *child(const char *site);

    /** Exclusive (self) time [ns]. */
    std::uint64_t
    selfNs() const
    {
        return totalNs > childNs ? totalNs - childNs : 0;
    }
};

/** Per-thread recording state; registered with the Registry. */
struct ThreadState
{
    ThreadState();
    ~ThreadState();

    Node root{"", nullptr};
    Node *current = &root;

    /** Simulated tick at/after which the next dispatch is sampled. */
    std::uint64_t nextSampleTick = 0;
    /** Adaptive sampling stride [simulated ticks]. */
    std::uint64_t sampleStrideTicks = dispatchSampleTarget;
    /** Queue the last sample was taken on (identity only). */
    const void *sampleQueue = nullptr;
    /** That queue's cumulative dispatch count at the last sample. */
    std::uint64_t sampleBaseDispatched = 0;

    /**
     * Re-arm after a sample of weight @p weight taken at tick
     * @p now: nudge the stride toward dispatchSampleTarget events
     * per sample.
     */
    void
    noteSample(std::uint64_t now, std::uint64_t weight)
    {
        if (weight > 2 * dispatchSampleTarget && sampleStrideTicks > 1)
            sampleStrideTicks >>= 1;
        else if (weight < dispatchSampleTarget / 2 &&
                 sampleStrideTicks < maxSampleStrideTicks)
            sampleStrideTicks <<= 1;
        nextSampleTick = now + sampleStrideTicks;
    }
};

namespace detail
{
/** Cached pointer fast path for threadState(); see prof.cc. */
inline thread_local ThreadState *cachedThreadState = nullptr;
/** Constructs and caches the calling thread's state. */
ThreadState &threadStateSlow();
} // namespace detail

/**
 * The calling thread's recording state. The fast path is one TLS
 * pointer load — cheap enough for the dispatch loop to call once per
 * advanceTo() batch.
 */
inline ThreadState &
threadState()
{
    if (ThreadState *ts = detail::cachedThreadState) [[likely]]
        return *ts;
    return detail::threadStateSlow();
}

/**
 * Record one sampled event dispatch of @p ns nanoseconds under the
 * current scope; count and time are scaled by @p weight, the number
 * of dispatches this sample stands in for. @p event_name must be a
 * string literal (Event::name() is).
 */
void recordDispatch(const char *event_name, std::uint64_t ns,
                    std::uint64_t weight);

/**
 * RAII scoped timer. @p site must be a string literal; identical
 * sites merge into one tree node per stack position.
 */
class Scope
{
  public:
    explicit Scope(const char *site)
    {
        if (enabled()) [[unlikely]]
            begin(site);
    }

    ~Scope()
    {
        if (node) [[unlikely]]
            end();
    }

    Scope(const Scope &) = delete;
    Scope &operator=(const Scope &) = delete;

  private:
    [[gnu::cold]] [[gnu::noinline]] void begin(const char *site);
    [[gnu::cold]] [[gnu::noinline]] void end();

    Node *node = nullptr;
    std::uint64_t startNs = 0;
};

/** One row of the merged attribution table. */
struct ReportRow
{
    std::string path; ///< ';'-joined stack, e.g. "run;measure"
    int depth = 0;
    std::uint64_t count = 0;
    std::uint64_t totalNs = 0;
    std::uint64_t selfNs = 0;
};

/**
 * Process-wide registry of all threads' scope trees.
 *
 * snapshot()/writeReport()/writeCollapsed() must run at a quiesce
 * point: they read live threads' trees without synchronization
 * against recording.
 */
class Registry
{
  public:
    static Registry &instance();

    /** Merge every thread's tree (live and retired) into one. */
    std::unique_ptr<Node> snapshot() const;

    /**
     * Human-readable wall-clock attribution table. Times are
     * CPU-seconds: parallel sweeps sum across workers. The coverage
     * line reports how much of the top-level scopes' time was
     * attributed to a nested component.
     */
    void writeReport(std::ostream &os) const;

    /**
     * Flamegraph-compatible collapsed stacks: one "a;b;c <usec>"
     * line per tree node with non-zero self time.
     */
    void writeCollapsed(std::ostream &os) const;

    /** Rows of the attribution table, depth-first. */
    std::vector<ReportRow> rows() const;

    /** Drop all recorded data (live roots are cleared in place). */
    void reset();

  private:
    friend struct ThreadState;

    Registry() = default;

    void attach(ThreadState *ts);
    void detach(ThreadState *ts);

    mutable std::mutex mutex;
    std::vector<ThreadState *> live;
    Node retired{"", nullptr};
};

} // namespace prof
} // namespace tlsim

#endif // TLSIM_SIM_PROF_PROF_HH
