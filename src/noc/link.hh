/**
 * @file
 * A unidirectional communication link with busy-until contention.
 *
 * Shared by the NUCA mesh (inter-switch links) and the TLC designs
 * (point-to-point transmission-line links). A message reserves the
 * link for its serialization time; overlapping reservations queue in
 * FIFO order by simply starting when the link frees.
 */

#ifndef TLSIM_NOC_LINK_HH
#define TLSIM_NOC_LINK_HH

#include <algorithm>
#include <cstddef>
#include <cstdint>

#include "sim/logging.hh"
#include "sim/metrics/heatmap.hh"
#include "sim/types.hh"

namespace tlsim
{
namespace noc
{

/**
 * Busy-until occupancy tracking for one unidirectional link.
 */
class Link
{
  public:
    Link() = default;

    /**
     * Reserve the link for @p duration cycles at or after @p now.
     * Zero-duration reservations and Tick overflow are simulator
     * bugs and panic.
     * @return The tick at which the reservation actually starts.
     */
    Tick
    reserve(Tick now, Cycles duration)
    {
        TLSIM_ASSERT(duration > 0, "zero-duration link reservation");
        Tick start = std::max(now, busyUntil);
        TLSIM_ASSERT(start <= MaxTick - duration,
                     "link reservation overflows Tick (start {}, "
                     "duration {})",
                     start, duration);
        busyUntil = start + duration;
        busy += duration;
        ++messages;
        if (busyHeatmap) [[unlikely]] {
            // Busy time lands in the window where service starts;
            // queueing delay (start - now) in the arrival window.
            busyHeatmap->add(heatmapCell, start, duration);
            if (waitHeatmap && start > now)
                waitHeatmap->add(heatmapCell, now, start - now);
        }
        return start;
    }

    /**
     * Route this link's reservations into spatial heatmaps as cell
     * @p cell: busy cycles into @p busy_hm, queueing delay into
     * @p wait_hm (either may be null). Used only when spatial
     * telemetry is enabled; detached links pay one predictable
     * branch in reserve().
     */
    void
    attachTelemetry(metrics::Heatmap *busy_hm,
                    metrics::Heatmap *wait_hm, std::size_t cell)
    {
        busyHeatmap = busy_hm;
        waitHeatmap = wait_hm;
        heatmapCell = cell;
    }

    /** Tick until which the link is occupied. */
    Tick freeAt() const { return busyUntil; }

    /**
     * Drop any queued occupancy beyond @p now. Used when a fault
     * kills a link: in-flight reservations are abandoned and the
     * fallback path must not inherit the dead link's backlog.
     */
    void
    resetHorizon(Tick now)
    {
        busyUntil = std::min(busyUntil, now);
    }

    /** Total cycles this link has been occupied. */
    std::uint64_t busyCycles() const { return busy; }

    /** Number of reservations made. */
    std::uint64_t messageCount() const { return messages; }

    /** Clear occupancy statistics (not the busy horizon). */
    void
    resetStats()
    {
        busy = 0;
        messages = 0;
    }

  private:
    Tick busyUntil = 0;
    std::uint64_t busy = 0;
    std::uint64_t messages = 0;
    metrics::Heatmap *busyHeatmap = nullptr;
    metrics::Heatmap *waitHeatmap = nullptr;
    std::size_t heatmapCell = 0;
};

} // namespace noc
} // namespace tlsim

#endif // TLSIM_NOC_LINK_HH
