#include "noc/mesh.hh"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "phys/geometry.hh"
#include "sim/logging.hh"
#include "sim/trace/debug.hh"
#include "sim/trace/tracesink.hh"

namespace tlsim
{
namespace noc
{

Mesh::Mesh(EventQueue &eq, const phys::Technology &tech,
           const MeshConfig &config_)
    : eventq(eq), config(config_)
{
    TLSIM_ASSERT(config.rows > 0 && config.cols > 1,
                 "mesh needs a positive grid");

    // Link layout (all unidirectional):
    //   [0] controller -> mesh injection
    //   [1] mesh -> controller ejection
    //   vertical up/down per column between adjacent rows
    //   horizontal east/west along row 0 between adjacent columns
    int vertical = config.cols * (config.rows - 1);
    int horizontal = config.cols - 1;
    links.resize(2 + 2 * vertical + 2 * horizontal);

    // Energy of one flit crossing one hop: link wires + switch.
    phys::RcWireModel wire(tech, phys::conventionalGlobalWire());
    phys::SwitchModel sw(tech, 5, config.flitBits, 4);
    flitHopEnergyJ = config.flitBits * tech.activityFactor *
                         wire.energyPerTransition(config.hopLength) +
                     sw.energyPerFlit();
}

int
Mesh::linkIndex(Coord from, Coord to)
{
    int vertical = config.cols * (config.rows - 1);
    if (from.col == to.col) {
        int low = std::min(from.row, to.row);
        TLSIM_ASSERT(std::abs(from.row - to.row) == 1,
                     "non-adjacent vertical hop");
        int base = 2 + from.col * (config.rows - 1) + low;
        bool up = to.row > from.row;
        return up ? base : base + vertical;
    }
    TLSIM_ASSERT(from.row == to.row && from.row == 0 &&
                     std::abs(from.col - to.col) == 1,
                 "invalid horizontal hop");
    int low = std::min(from.col, to.col);
    int base = 2 + 2 * vertical + low;
    bool east = to.col > from.col;
    return east ? base : base + horizontalCount();
}

std::vector<int>
Mesh::buildRoute(Coord from, Coord to)
{
    std::vector<int> route;
    Coord cur = from;
    // Horizontal links exist only along row 0: inbound messages ride
    // the column down first, outbound ride row 0 first.
    auto move_vertical = [&](int target_row) {
        while (cur.row != target_row) {
            Coord next{cur.row + (target_row > cur.row ? 1 : -1),
                       cur.col};
            route.push_back(linkIndex(cur, next));
            cur = next;
        }
    };
    auto move_horizontal = [&]() {
        while (cur.col != to.col) {
            Coord next{cur.row, cur.col + (to.col > cur.col ? 1 : -1)};
            route.push_back(linkIndex(cur, next));
            cur = next;
        }
    };
    if (from.col == to.col) {
        move_vertical(to.row);
    } else if (from.row == 0) {
        move_horizontal();
        move_vertical(to.row);
    } else {
        move_vertical(0);
        move_horizontal();
        move_vertical(to.row);
    }
    return route;
}

double
Mesh::hopsTo(Coord bank) const
{
    double horiz = std::abs(bank.col - controllerCol()) - 0.5;
    if (horiz < 0.0)
        horiz = 0.0;
    return bank.row + horiz;
}

Tick
Mesh::traverseLink(int li, int flits, Tick head)
{
    if (injector && injector->linkDead(li, head)) {
        // Adaptive detour around the dead link: ride the neighboring
        // column/row and back, costing one extra hop each way. The
        // detour links' contention is folded into the doubled latency
        // rather than reserved individually.
        ++degradedHops;
        return head + 2 * config.hopLatency;
    }
    head = links[static_cast<std::size_t>(li)].reserve(
        head, static_cast<Cycles>(flits));
    return head + config.hopLatency;
}

void
Mesh::attachTelemetry(metrics::Heatmap *busy_hm,
                      metrics::Heatmap *wait_hm)
{
    for (std::size_t i = 0; i < links.size(); ++i)
        links[i].attachTelemetry(busy_hm, wait_hm, i);
}

Tick
Mesh::routeMessage(const std::vector<int> &path, int flits, Tick now)
{
    prof::Scope prof_scope("noc:route");
    Tick head = now;
    for (int li : path)
        head = traverseLink(li, flits, head);
    energy += static_cast<double>(flits) *
              static_cast<double>(path.size()) * flitHopEnergyJ;
    // Tail flit trails the head by the serialization time.
    return head + static_cast<Tick>(flits - 1);
}

namespace
{

/** Column of the bottom-row switch the controller attaches to. */
int
injectColumnFor(int dst_col, double controller_col)
{
    return dst_col <= controller_col
               ? static_cast<int>(std::floor(controller_col))
               : static_cast<int>(std::ceil(controller_col));
}

} // namespace

void
Mesh::sendToBank(Coord dst, int flits, Tick now, DeliverCallback cb)
{
    // The controller spans the cache edge, so its boundary is wide:
    // injection costs energy but does not serialize (contention is
    // modelled in the row-0 and column links).
    int inject_col = injectColumnFor(dst.col, controllerCol());
    auto route = buildRoute(Coord{0, inject_col}, dst);
    Tick tail = routeMessage(route, flits, now);
    energy += static_cast<double>(flits) * flitHopEnergyJ * 0.5;
    TLSIM_DPRINTF(NoC, "t={} mesh send {} flits to ({},{}) tail {}",
                  now, flits, dst.row, dst.col, tail);
    if (auto *sink = trace::TraceSink::active()) {
        sink->span(trace::cat::noc,
                   csprintf("to ({},{})", dst.row, dst.col), now, tail,
                   trace::tid::nocBase);
    }
    if (bankRouter) [[unlikely]] {
        // Partitioned run: banks owned by a worker domain take the
        // delivery there; the router declines for domain-0 banks.
        if (bankRouter(dst, tail, cb))
            return;
    }
    if (useTypedHotPathEvents) {
        eventq.scheduleCallback(tail, std::move(cb));
    } else {
        eventq.scheduleFunc(tail,
                            [cb = std::move(cb), tail]() { cb(tail); });
    }
}

void
Mesh::sendToController(Coord src, int flits, Tick now,
                       DeliverCallback cb)
{
    int eject_col = injectColumnFor(src.col, controllerCol());
    auto route = buildRoute(src, Coord{0, eject_col});
    Tick tail = routeMessage(route, flits, now);
    energy += static_cast<double>(flits) * flitHopEnergyJ * 0.5;
    TLSIM_DPRINTF(NoC, "t={} mesh recv {} flits from ({},{}) tail {}",
                  now, flits, src.row, src.col, tail);
    if (auto *sink = trace::TraceSink::active()) {
        sink->span(trace::cat::noc,
                   csprintf("from ({},{})", src.row, src.col), now,
                   tail, trace::tid::nocUpBase);
    }
    if (useTypedHotPathEvents) {
        eventq.scheduleCallback(tail, std::move(cb));
    } else {
        eventq.scheduleFunc(tail,
                            [cb = std::move(cb), tail]() { cb(tail); });
    }
}

void
Mesh::multicastToColumn(int col, const std::vector<int> &rows,
                        int flits, Tick now,
                        std::function<void(int, Tick)> cb)
{
    TLSIM_ASSERT(!rows.empty(), "multicast needs at least one row");
    int far_row = *std::max_element(rows.begin(), rows.end());

    int inject_col = injectColumnFor(col, controllerCol());
    Tick head = now;
    energy += static_cast<double>(flits) * flitHopEnergyJ * 0.5;

    // Horizontal portion along row 0.
    Coord cur{0, inject_col};
    int hops = 0;
    while (cur.col != col) {
        Coord next{0, cur.col + (col > cur.col ? 1 : -1)};
        head = traverseLink(linkIndex(cur, next), flits, head);
        cur = next;
        ++hops;
    }

    // Vertical portion: record the head's arrival at every row.
    std::vector<Tick> arrival(static_cast<std::size_t>(far_row) + 1);
    arrival[0] = head;
    while (cur.row != far_row) {
        Coord next{cur.row + 1, cur.col};
        head = traverseLink(linkIndex(cur, next), flits, head);
        cur = next;
        ++hops;
        arrival[static_cast<std::size_t>(cur.row)] = head;
    }
    energy += static_cast<double>(flits) * hops * flitHopEnergyJ;

    TLSIM_DPRINTF(NoC, "t={} mesh multicast {} flits col {} far row "
                  "{}", now, flits, col, far_row);
    if (auto *sink = trace::TraceSink::active()) {
        sink->span(trace::cat::noc, csprintf("multicast col{}", col),
                   now, head + static_cast<Tick>(flits - 1),
                   trace::tid::nocBase);
    }

    // Stays on scheduleFunc: the (row, tick) callback shape doesn't
    // fit scheduleCallback's void(Tick), and multicasts are rare
    // enough (one per DNUCA broadcast search) not to matter.
    for (int row : rows) {
        Tick tail = arrival[static_cast<std::size_t>(row)] +
                    static_cast<Tick>(flits - 1);
        eventq.scheduleFunc(tail,
                            [cb, row, tail]() { cb(row, tail); });
    }
}

void
Mesh::sendBankToBank(Coord src, Coord dst, int flits, Tick now,
                     DeliverCallback cb)
{
    auto route = buildRoute(src, dst);
    Tick tail = routeMessage(route, flits, now);
    if (useTypedHotPathEvents) {
        eventq.scheduleCallback(tail, std::move(cb));
    } else {
        eventq.scheduleFunc(tail,
                            [cb = std::move(cb), tail]() { cb(tail); });
    }
}

std::uint64_t
Mesh::totalBusyCycles() const
{
    std::uint64_t total = 0;
    for (const auto &link : links)
        total += link.busyCycles();
    return total;
}

void
Mesh::resetStats()
{
    for (auto &link : links)
        link.resetStats();
    energy = 0.0;
}

} // namespace noc
} // namespace tlsim
