/**
 * @file
 * 2-D switched mesh interconnect used by the NUCA cache designs.
 *
 * The mesh is a grid of wormhole switches connected by repeated RC
 * links (src/phys/rcwire). The cache controller injects at a port on
 * the bottom edge, centered between the two middle columns — this
 * reproduces the NUCA hop-count spectrum (DNUCA: 0..22 one-way hops
 * over a 16x16 grid). Messages are modeled per-hop with link
 * occupancy (contention) and tail-flit serialization at delivery.
 */

#ifndef TLSIM_NOC_MESH_HH
#define TLSIM_NOC_MESH_HH

#include <cmath>
#include <cstdint>
#include <functional>
#include <vector>

#include "noc/link.hh"
#include "phys/rcwire.hh"
#include "sim/fault/injector.hh"
#include "phys/switchmodel.hh"
#include "phys/technology.hh"
#include "sim/eventq.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace tlsim
{
namespace noc
{

/** Grid coordinate of a switch/bank. */
struct Coord
{
    int row; // 0 == closest to the controller edge
    int col;

    bool operator==(const Coord &other) const = default;
};

/**
 * Configuration of one mesh instance.
 */
struct MeshConfig
{
    int rows;
    int cols;
    /** Per-hop latency in cycles (link + switch traversal). */
    Cycles hopLatency;
    /** Link datapath width in bits. */
    int flitBits;
    /** Physical link length per hop [m] (for energy accounting). */
    double hopLength;
};

/**
 * The mesh: computes routes, reserves per-hop links, delivers
 * messages via the event queue, and accounts energy/occupancy.
 */
class Mesh
{
  public:
    /**
     * @param eq Event queue.
     * @param tech Technology (for link/switch energy).
     * @param config Grid geometry and timing.
     */
    Mesh(EventQueue &eq, const phys::Technology &tech,
         const MeshConfig &config);

    /** Delivery callback: fires when the message tail arrives. */
    using DeliverCallback = std::function<void(Tick)>;

    /**
     * Partitioned-execution delivery hook for controller-to-bank
     * messages: called after routing with the destination, the tail
     * tick, and the callback. Returns true after taking ownership of
     * @p cb (the delivery will run in a worker event domain);
     * returning false leaves @p cb untouched and the mesh schedules
     * the delivery on its own queue as usual. Routing, link
     * reservations, and energy accounting always stay on the caller
     * (domain-0) side — only the delivery dispatch moves.
     */
    using BankDeliveryRouter =
        std::function<bool(Coord dst, Tick tail, DeliverCallback &cb)>;

    /** Install (or clear, with nullptr) the bank-delivery router. */
    void
    setBankDeliveryRouter(BankDeliveryRouter router)
    {
        bankRouter = std::move(router);
    }

    /**
     * Send a message from the controller to a bank.
     * @param dst Destination bank coordinate.
     * @param flits Message length in flits.
     * @param now Injection tick.
     * @param cb Fires at tail delivery.
     */
    void sendToBank(Coord dst, int flits, Tick now, DeliverCallback cb);

    /** Send a message from a bank back to the controller. */
    void sendToController(Coord src, int flits, Tick now,
                          DeliverCallback cb);

    /**
     * Send a message between two banks in the same column (used for
     * DNUCA promotion swaps).
     */
    void sendBankToBank(Coord src, Coord dst, int flits, Tick now,
                        DeliverCallback cb);

    /**
     * Multicast a message from the controller up one column: the
     * message rides to the farthest requested row, dropping a copy
     * at each requested bank as it passes. @p cb fires once per
     * requested row, at that row's tail-arrival tick.
     */
    void multicastToColumn(int col, const std::vector<int> &rows,
                           int flits, Tick now,
                           std::function<void(int, Tick)> cb);

    /**
     * One-way hop count between the controller port and a bank
     * (fractional hops model the injection half-link).
     */
    double hopsTo(Coord bank) const;

    /** Uncontended one-way latency to a bank, in cycles. */
    Cycles
    uncontendedLatency(Coord bank) const
    {
        return static_cast<Cycles>(
            std::llround(hopsTo(bank) * config.hopLatency));
    }

    /** Total unidirectional links in the mesh. */
    int linkCount() const { return static_cast<int>(links.size()); }

    /** Sum of busy cycles across all links. */
    std::uint64_t totalBusyCycles() const;

    /** Dynamic energy consumed so far [J]. */
    double energyConsumed() const { return energy; }

    /** Energy of one flit traversing one hop (link + switch) [J]. */
    double flitHopEnergy() const { return flitHopEnergyJ; }

    /** Reset occupancy/energy statistics. */
    void resetStats();

    const MeshConfig &configuration() const { return config; }

    /**
     * Attach a fault injector. A dead mesh link is detoured around
     * adaptively (one extra hop each way), costing 2x hopLatency per
     * affected traversal; null disables fault handling.
     */
    void setInjector(fault::Injector *inj) { injector = inj; }

    /** Hops that detoured around a dead link so far. */
    std::uint64_t degradedHopCount() const { return degradedHops; }

    /**
     * Attach spatial heatmaps to every mesh link (cell = link
     * index, see the layout comment in the constructor). Either
     * heatmap may be null.
     */
    void attachTelemetry(metrics::Heatmap *busy_hm,
                         metrics::Heatmap *wait_hm);

  private:
    /**
     * Route a message over a given number of hops, reserving each
     * directional link in sequence.
     * @return Tick at which the tail flit arrives at the endpoint.
     */
    Tick routeMessage(const std::vector<int> &path, int flits, Tick now);

    /** Link index for the hop between two adjacent nodes. */
    int linkIndex(Coord from, Coord to);

    /**
     * Move a message head across one link, detouring around it when
     * the injector declares it dead.
     * @return Head-arrival tick at the far switch.
     */
    Tick traverseLink(int li, int flits, Tick head);

    /** Build the XY route (list of link indices) between two nodes. */
    std::vector<int> buildRoute(Coord from, Coord to);

    /** Controller attach point: between the two middle columns. */
    double controllerCol() const { return (config.cols - 1) / 2.0; }

    /** Number of horizontal links per direction. */
    int horizontalCount() const { return config.cols - 1; }

    EventQueue &eventq;
    MeshConfig config;
    std::vector<Link> links;
    // Injection/ejection links between the controller and the two
    // middle bottom-row switches.
    Link injectLink;
    Link ejectLink;
    double energy = 0.0;
    double flitHopEnergyJ = 0.0;
    fault::Injector *injector = nullptr;
    std::uint64_t degradedHops = 0;
    BankDeliveryRouter bankRouter;
};

} // namespace noc
} // namespace tlsim

#endif // TLSIM_NOC_MESH_HH
