#include "nuca/bankset.hh"

namespace tlsim
{
namespace nuca
{

BankSetArray::BankSetArray(const BankSetConfig &config)
    : cfg(config),
      frames(static_cast<std::size_t>(config.numBankSets) *
             config.setsPerBankSet * config.banksPerSet *
             config.waysPerBank)
{
    TLSIM_ASSERT((cfg.numBankSets & (cfg.numBankSets - 1)) == 0,
                 "numBankSets must be a power of two");
    TLSIM_ASSERT((cfg.setsPerBankSet & (cfg.setsPerBankSet - 1)) == 0,
                 "setsPerBankSet must be a power of two");
}

std::optional<BankLocation>
BankSetArray::lookup(Addr block_addr) const
{
    std::uint32_t bank_set = bankSetOf(block_addr);
    std::uint32_t set = setIndexOf(block_addr);
    Addr tag = tagOf(block_addr);
    for (std::uint32_t bank = 0; bank < cfg.banksPerSet; ++bank) {
        for (std::uint32_t way = 0; way < cfg.waysPerBank; ++way) {
            const auto &line =
                frames[frameIndex(bank_set, set, bank, way)];
            if (line.valid && line.tag == tag)
                return BankLocation{bank_set, set, bank, way};
        }
    }
    return std::nullopt;
}

std::vector<std::uint32_t>
BankSetArray::partialTagCandidates(Addr block_addr,
                                   std::uint32_t exclude_banks) const
{
    std::uint32_t bank_set = bankSetOf(block_addr);
    std::uint32_t set = setIndexOf(block_addr);
    std::uint32_t ptag = partialTagOf(block_addr);
    std::uint32_t mask = (1u << cfg.partialTagBits) - 1;

    std::vector<std::uint32_t> candidates;
    for (std::uint32_t bank = exclude_banks; bank < cfg.banksPerSet;
         ++bank) {
        for (std::uint32_t way = 0; way < cfg.waysPerBank; ++way) {
            const auto &line =
                frames[frameIndex(bank_set, set, bank, way)];
            if (line.valid &&
                static_cast<std::uint32_t>(line.tag & mask) == ptag) {
                candidates.push_back(bank);
                break;
            }
        }
    }
    return candidates;
}

void
BankSetArray::touch(const BankLocation &loc, std::uint64_t use_counter,
                    bool make_dirty)
{
    auto &line = frame(loc);
    TLSIM_ASSERT(line.valid, "touch of invalid frame");
    line.lastUse = use_counter;
    if (make_dirty)
        line.dirty = true;
}

BankLocation
BankSetArray::promote(const BankLocation &loc, std::uint64_t use_counter)
{
    TLSIM_ASSERT(loc.bank > 0, "cannot promote from the head bank");
    auto &line = frame(loc);
    TLSIM_ASSERT(line.valid, "promote of invalid frame");

    // Victim: LRU way of the same set in the next-closer bank.
    BankLocation dst{loc.bankSet, loc.setIndex, loc.bank - 1, 0};
    std::uint64_t oldest = ~std::uint64_t(0);
    bool found_invalid = false;
    for (std::uint32_t way = 0; way < cfg.waysPerBank; ++way) {
        BankLocation cand{loc.bankSet, loc.setIndex, loc.bank - 1, way};
        const auto &cand_line = frame(cand);
        if (!cand_line.valid) {
            dst = cand;
            found_invalid = true;
            break;
        }
        if (cand_line.lastUse < oldest) {
            oldest = cand_line.lastUse;
            dst = cand;
        }
    }

    auto &dst_line = frame(dst);
    if (found_invalid) {
        dst_line = line;
        line.valid = false;
    } else {
        std::swap(line, dst_line);
    }
    dst_line.lastUse = use_counter;
    return dst;
}

std::optional<mem::Eviction>
BankSetArray::insertAtTail(Addr block_addr, std::uint64_t use_counter,
                           bool dirty)
{
    return insertAt(block_addr, cfg.banksPerSet - 1, use_counter,
                    dirty);
}

std::optional<mem::Eviction>
BankSetArray::insertAt(Addr block_addr, std::uint32_t tail,
                       std::uint64_t use_counter, bool dirty)
{
    TLSIM_ASSERT(tail < cfg.banksPerSet, "insertion bank out of range");
    std::uint32_t bank_set = bankSetOf(block_addr);
    std::uint32_t set = setIndexOf(block_addr);

    // LRU (or invalid) way of the tail bank's set.
    std::uint32_t victim_way = 0;
    std::uint64_t oldest = ~std::uint64_t(0);
    for (std::uint32_t way = 0; way < cfg.waysPerBank; ++way) {
        const auto &line = frames[frameIndex(bank_set, set, tail, way)];
        if (!line.valid) {
            victim_way = way;
            oldest = 0;
            break;
        }
        if (line.lastUse < oldest) {
            oldest = line.lastUse;
            victim_way = way;
        }
    }

    auto &line = frames[frameIndex(bank_set, set, tail, victim_way)];
    std::optional<mem::Eviction> evicted;
    if (line.valid) {
        BankLocation loc{bank_set, set, tail, victim_way};
        evicted = mem::Eviction{blockAddrAt(loc), line.dirty};
    }
    line.tag = tagOf(block_addr);
    line.valid = true;
    line.dirty = dirty;
    line.lastUse = use_counter;
    return evicted;
}

Addr
BankSetArray::blockAddrAt(const BankLocation &loc) const
{
    const auto &line = frame(loc);
    TLSIM_ASSERT(line.valid, "blockAddrAt of invalid frame");
    return (line.tag << (bankSetShift() + setShift())) |
           (static_cast<Addr>(loc.setIndex) << bankSetShift()) |
           loc.bankSet;
}

mem::LineState &
BankSetArray::frame(const BankLocation &loc)
{
    return frames[frameIndex(loc.bankSet, loc.setIndex, loc.bank,
                             loc.way)];
}

const mem::LineState &
BankSetArray::frame(const BankLocation &loc) const
{
    return frames[frameIndex(loc.bankSet, loc.setIndex, loc.bank,
                             loc.way)];
}

std::uint64_t
BankSetArray::validCount() const
{
    std::uint64_t count = 0;
    for (const auto &line : frames)
        count += line.valid ? 1 : 0;
    return count;
}

} // namespace nuca
} // namespace tlsim
