#include "nuca/snuca.hh"

#include <algorithm>
#include <cmath>
#include <memory>

#include "mem/l2registry.hh"
#include "mem/warmstate.hh"
#include "sim/pdes/pdes.hh"
#include "sim/prof/prof.hh"
#include "sim/trace/debug.hh"
#include "sim/trace/tracesink.hh"

namespace tlsim
{
namespace nuca
{

namespace
{

constexpr int addrFlits = 1;

int
dataFlits(int flit_bits)
{
    return (mem::blockBytes * 8 + flit_bits - 1) / flit_bits;
}

} // namespace

SnucaCache::SnucaCache(EventQueue &eq, stats::StatGroup *parent,
                       mem::MemBackend &dram, const phys::Technology &tech,
                       const SnucaConfig &config,
                       fault::Injector *injector_)
    : mem::L2Cache("snuca2", eq, parent, dram), cfg(config),
      mesh(eq, tech,
           noc::MeshConfig{config.rows, config.cols, config.hopLatency,
                           config.flitBits, config.hopLength}),
      bankModel(tech, config.bankBytes, config.ways, mem::blockBytes),
      bankCycles(bankModel.accessCycles()),
      bankPorts(static_cast<std::size_t>(config.banks)),
      injector(injector_)
{
    TLSIM_ASSERT(cfg.banks == cfg.rows * cfg.cols,
                 "bank count must match the mesh grid");
    mesh.setInjector(injector);
    std::uint32_t sets = static_cast<std::uint32_t>(
        cfg.bankBytes / (static_cast<std::uint64_t>(mem::blockBytes) *
                         cfg.ways));
    arrays.reserve(cfg.banks);
    for (int i = 0; i < cfg.banks; ++i)
        arrays.emplace_back(sets, cfg.ways);

    if (metrics::spatialEnabled) {
        bankBusyHeatmap = std::make_unique<metrics::Heatmap>(
            this, "heatmap_bank_busy",
            "bank-port busy cycles per time window per bank",
            static_cast<std::size_t>(cfg.banks));
        bankWaitHeatmap = std::make_unique<metrics::Heatmap>(
            this, "heatmap_bank_wait",
            "bank-port queueing cycles per time window per bank",
            static_cast<std::size_t>(cfg.banks));
        linkBusyHeatmap = std::make_unique<metrics::Heatmap>(
            this, "heatmap_link_busy",
            "mesh link busy cycles per time window per link",
            static_cast<std::size_t>(mesh.linkCount()));
        linkWaitHeatmap = std::make_unique<metrics::Heatmap>(
            this, "heatmap_link_wait",
            "mesh link queueing cycles per time window per link",
            static_cast<std::size_t>(mesh.linkCount()));
        for (int b = 0; b < cfg.banks; ++b) {
            bankPorts[static_cast<std::size_t>(b)].attachTelemetry(
                bankBusyHeatmap.get(), bankWaitHeatmap.get(),
                static_cast<std::size_t>(b));
        }
        mesh.attachTelemetry(linkBusyHeatmap.get(),
                             linkWaitHeatmap.get());
    }
}

int
SnucaCache::bankOf(Addr block_addr) const
{
    return static_cast<int>(block_addr &
                            static_cast<Addr>(cfg.banks - 1));
}

noc::Coord
SnucaCache::coordOf(int bank) const
{
    return noc::Coord{bank / cfg.cols, bank % cfg.cols};
}

Cycles
SnucaCache::uncontendedLatency(int bank) const
{
    return 2 * mesh.uncontendedLatency(coordOf(bank)) +
           roundTripInjection + bankCycles;
}

std::pair<Cycles, Cycles>
SnucaCache::latencyRange() const
{
    Cycles lo = ~Cycles(0), hi = 0;
    for (int b = 0; b < cfg.banks; ++b) {
        Cycles lat = uncontendedLatency(b);
        lo = std::min(lo, lat);
        hi = std::max(hi, lat);
    }
    return {lo, hi};
}

int
SnucaCache::linkCount() const
{
    return mesh.linkCount();
}

pdes::PartitionPlan
SnucaCache::partitionPlan(int domains) const
{
    pdes::PartitionPlan plan;
    if (injector && injector->config().bitErrorRate > 0.0) {
        plan.serialReason =
            "SNUCA2 link-error retries re-reserve bank ports from "
            "controller context with zero lookahead";
        return plan;
    }
    // Only banks at least one vertical hop from the controller edge
    // have a guaranteed minimum flight latency.
    int eligible = (cfg.rows - 1) * cfg.cols;
    if (eligible < 1 || domains < 2) {
        plan.serialReason = "SNUCA2 has no worker-eligible banks for "
                            "this geometry/domain count";
        return plan;
    }
    plan.workerDomains = std::min(domains - 1, eligible);
    plan.lookahead = static_cast<Tick>(cfg.hopLatency);
    return plan;
}

void
SnucaCache::setPartition(pdes::Executor *executor)
{
    exec = executor;
    if (!exec) {
        mesh.setBankDeliveryRouter(nullptr);
        bankWorker.clear();
        shards.clear();
        return;
    }
    int wd = exec->workerCount();
    TLSIM_ASSERT(wd >= 1, "partition attach without worker domains");
    bankWorker.assign(static_cast<std::size_t>(cfg.banks), -1);
    for (int b = 0; b < cfg.banks; ++b) {
        if (b / cfg.cols >= 1)
            bankWorker[static_cast<std::size_t>(b)] = b % wd;
    }
    shards.assign(static_cast<std::size_t>(wd), Shard{});
    // Routing, link reservations, and energy accounting stay with the
    // caller (domain 0); only the bank-side delivery dispatch moves.
    mesh.setBankDeliveryRouter(
        [this](noc::Coord dst, Tick tail,
               noc::Mesh::DeliverCallback &cb) {
            int bank = dst.row * cfg.cols + dst.col;
            int w = bankWorker[static_cast<std::size_t>(bank)];
            if (w < 0)
                return false;
            exec->postToWorker(w, tail, std::move(cb));
            return true;
        });
}

void
SnucaCache::access(const mem::MemRequest &l2_req, mem::RespCallback cb)
{
    const Addr block_addr = l2_req.blockAddr;
    const mem::AccessType type = l2_req.type;
    const Tick now = l2_req.issued;

    prof::Scope prof_scope("snuca:access");
    ++requests;
    int bank = bankOf(block_addr);

    if (type == mem::AccessType::Store) {
        // Writebacks carry data to the bank and complete immediately
        // from the sender's point of view.
        banksAccessed.sample(1.0);
        int flits = dataFlits(cfg.flitBits);
        mesh.sendToBank(coordOf(bank), flits, now,
                        [this, block_addr, bank](Tick arrival) {
                            installBlock(block_addr, bank, arrival,
                                         true);
                        });
        cb(now);
        return;
    }

    ++demandRequests;
    banksAccessed.sample(1.0);
    std::uint64_t req = l2_req.id;
    TLSIM_DPRINTF(L2, "t={} snuca2 load block {} bank {}", now,
                  block_addr, bank);
    mesh.sendToBank(coordOf(bank), addrFlits, now,
                    [this, block_addr, bank, now, req,
                     cb = std::move(cb)](Tick arrival) {
                        handleRead(block_addr, bank, arrival, now, req,
                                   cb);
                    });
}

trace::LatencyBreakdown
SnucaCache::onChipBreakdown(int bank, Tick latency) const
{
    trace::LatencyBreakdown bd;
    bd.wire = static_cast<double>(
        2 * mesh.uncontendedLatency(coordOf(bank)) +
        roundTripInjection);
    bd.bank = static_cast<double>(bankCycles);
    bd.queueWait = static_cast<double>(latency) - bd.wire - bd.bank;
    return bd;
}

void
SnucaCache::accessFunctional(Addr block_addr, mem::AccessType type)
{
    int bank = bankOf(block_addr);
    auto &array = arrays[static_cast<std::size_t>(bank)];
    Addr frame_addr = block_addr >> __builtin_ctz(cfg.banks);
    ++useCounter;
    auto way = array.lookup(frame_addr);
    if (way) {
        array.touch(frame_addr, *way, useCounter, isWrite(type));
        return;
    }
    array.insert(frame_addr, useCounter, isWrite(type));
}

bool
SnucaCache::saveWarmState(std::ostream &os) const
{
    mem::warm::putU64(os, useCounter);
    mem::warm::putU32(os, static_cast<std::uint32_t>(arrays.size()));
    for (const auto &array : arrays)
        mem::warm::writeArray(os, array);
    return true;
}

bool
SnucaCache::loadWarmState(std::istream &is)
{
    std::uint64_t counter = 0;
    std::uint32_t banks = 0;
    if (!mem::warm::getU64(is, counter) ||
        !mem::warm::getU32(is, banks) || banks != arrays.size())
        return false;
    for (auto &array : arrays)
        if (!mem::warm::readArray(is, array))
            return false;
    useCounter = counter;
    return true;
}

void
SnucaCache::handleRead(Addr block_addr, int bank, Tick arrival,
                       Tick issue, std::uint64_t req,
                       mem::RespCallback cb)
{
    auto &array = arrays[static_cast<std::size_t>(bank)];
    Addr frame_addr = block_addr >> __builtin_ctz(cfg.banks);
    Tick start = bankPorts[static_cast<std::size_t>(bank)].reserve(
        arrival, bankCycles);
    Tick done = start + bankCycles;
    if (auto *sink = trace::TraceSink::active()) {
        sink->span(trace::cat::bank, csprintf("bank{}", bank), start,
                   done, trace::tid::bankBase + bank, req);
    }

    auto way = array.lookup(frame_addr);
    if (way) {
        int w = workerOf(bank);
        if (w >= 0) {
            Shard &shard = shards[static_cast<std::size_t>(w)];
            ++shard.hits;
            array.touch(frame_addr, *way, ++shard.use, false);
        } else {
            ++hits;
            ++useCounter;
            array.touch(frame_addr, *way, useCounter, false);
        }
        sendHitResponse(block_addr, bank, done, issue, req, 0, 0,
                        std::move(cb));
        return;
    }

    // Miss: a short response tells the controller to go to memory.
    // (Intentionally not CRC-retried: a corrupted "miss" notification
    // only delays the memory fetch the controller's timeout forces
    // anyway.)
    sendToControllerFrom(
        bank, addrFlits, done,
        [this, block_addr, bank, issue, req,
         cb = std::move(cb)](Tick tick) {
            Tick latency = tick - issue;
            lookupLatency.sample(static_cast<double>(latency));
            if (latency == uncontendedLatency(bank))
                ++predictableLookups;
            handleMiss(block_addr, bank, tick, issue, req, cb);
        });
}

void
SnucaCache::sendToControllerFrom(int bank, int flits, Tick done,
                                 noc::Mesh::DeliverCallback cb)
{
    int w = workerOf(bank);
    if (w >= 0) {
        exec->postToMaster(
            w, [this, bank, flits, done,
                cb = std::move(cb)](Tick) mutable {
                mesh.sendToController(coordOf(bank), flits, done,
                                      std::move(cb));
            });
        return;
    }
    mesh.sendToController(coordOf(bank), flits, done, std::move(cb));
}

void
SnucaCache::sendHitResponse(Addr block_addr, int bank, Tick done,
                            Tick issue, std::uint64_t req, int attempt,
                            Tick healthy_first, mem::RespCallback cb)
{
    int flits = dataFlits(cfg.flitBits);
    // The response body runs in controller (domain-0) context: fault
    // RNG draws and any retry's bank-port re-reservation stay serial.
    // Retries themselves are unreachable in a partitioned run (the
    // plan declines when bitErrorRate > 0), so the recursion below
    // always takes the synchronous branch of sendToControllerFrom.
    sendToControllerFrom(
        bank, flits, done,
        [this, block_addr, bank, issue, req, attempt, healthy_first,
         flits, cb = std::move(cb)](Tick tail) mutable {
            Tick first_word = tail - (flits - 1);
            if (healthy_first == 0)
                healthy_first = first_word;
            if (injector) {
                first_word +=
                    static_cast<Tick>(injector->config().crcCycles);
                if (injector->messageError(bank)) {
                    bool can_retry =
                        attempt < injector->config().maxRetries &&
                        first_word - issue <= static_cast<Tick>(
                            injector->config().requestTimeout);
                    if (can_retry) {
                        ++linkRetries;
                        Tick redo =
                            first_word + injector->backoff(attempt);
                        Tick start =
                            bankPorts[static_cast<std::size_t>(bank)]
                                .reserve(redo, bankCycles);
                        sendHitResponse(block_addr, bank,
                                        start + bankCycles, issue, req,
                                        attempt + 1, healthy_first,
                                        std::move(cb));
                        return;
                    }
                    // Retry budget or timeout exhausted: count it and
                    // deliver anyway (the end-to-end ECC recovers the
                    // payload; only the timing penalty matters here).
                    ++linkTimeouts;
                }
            }
            Tick latency = first_word - issue;
            lookupLatency.sample(static_cast<double>(latency));
            if (latency == uncontendedLatency(bank))
                ++predictableLookups;
            trace::LatencyBreakdown bd =
                onChipBreakdown(bank, latency);
            // Move the CRC/retry surcharge out of the contention
            // residual so the components still sum to the latency.
            double fault_cycles =
                static_cast<double>(first_word - healthy_first);
            bd.queueWait -= fault_cycles;
            bd.fault = fault_cycles;
            recordBreakdown(bd);
            if (auto *sink = trace::TraceSink::active()) {
                sink->span(trace::cat::l2,
                           csprintf("hit {}", block_addr), issue,
                           first_word, trace::tid::l2, req);
            }
            cb(first_word);
        });
}

void
SnucaCache::handleMiss(Addr block_addr, int bank, Tick miss_time,
                       Tick issue, std::uint64_t req,
                       mem::RespCallback cb)
{
    ++misses;
    TLSIM_DPRINTF(L2, "t={} snuca2 miss block {}", miss_time,
                  block_addr);
    trace::LatencyBreakdown bd =
        onChipBreakdown(bank, miss_time - issue);
    dram.read(block_addr, miss_time,
              [this, block_addr, bank, issue, miss_time, req, bd,
               cb = std::move(cb)](Tick ready) mutable {
                  bd.dram = static_cast<double>(ready - miss_time);
                  recordBreakdown(bd);
                  if (auto *sink = trace::TraceSink::active()) {
                      sink->span(trace::cat::l2,
                                 csprintf("miss {}", block_addr),
                                 issue, ready, trace::tid::l2, req);
                  }
                  // Deliver to the requester and install in parallel.
                  cb(ready);
                  ++inserts;
                  int flits = dataFlits(cfg.flitBits);
                  mesh.sendToBank(coordOf(bank), flits, ready,
                                  [this, block_addr, bank](
                                      Tick arrival) {
                                      installBlock(block_addr, bank,
                                                   arrival, false);
                                  });
              });
}

void
SnucaCache::installBlock(Addr block_addr, int bank, Tick now, bool dirty)
{
    auto &array = arrays[static_cast<std::size_t>(bank)];
    Addr frame_addr = block_addr >> __builtin_ctz(cfg.banks);
    bankPorts[static_cast<std::size_t>(bank)].reserve(now, bankCycles);

    int w = workerOf(bank);
    Shard *shard =
        w >= 0 ? &shards[static_cast<std::size_t>(w)] : nullptr;
    std::uint64_t use = shard ? ++shard->use : ++useCounter;
    auto way = array.lookup(frame_addr);
    if (way) {
        array.touch(frame_addr, *way, use, dirty);
        return;
    }
    auto evicted = array.insert(frame_addr, use, dirty);
    if (evicted && evicted->dirty) {
        if (shard)
            ++shard->writebacks;
        else
            ++writebacksToMemory;
        Addr victim_addr =
            (evicted->blockAddr << __builtin_ctz(cfg.banks)) |
            static_cast<Addr>(bank);
        int flits = dataFlits(cfg.flitBits);
        sendToControllerFrom(bank, flits, now,
                             [this, victim_addr](Tick tick) {
                                 dram.write(victim_addr, tick);
                             });
    }
}

void
SnucaCache::beginMeasurement()
{
    mesh.resetStats();
    for (auto &port : bankPorts)
        port.resetStats();
    // Warmup-era shard counts are discarded like the registered
    // Scalars they shadow; the LRU use counters must survive.
    for (auto &shard : shards) {
        shard.hits = 0;
        shard.writebacks = 0;
    }
}

void
SnucaCache::syncStats()
{
    // Fold the worker domains' counters into the shared Scalars
    // (and zero them so repeated syncs don't double-count). Runs
    // between windows on the master thread, never concurrently with
    // worker spans.
    for (auto &shard : shards) {
        hits += static_cast<double>(shard.hits);
        writebacksToMemory += static_cast<double>(shard.writebacks);
        shard.hits = 0;
        shard.writebacks = 0;
    }
    std::uint64_t bank_busy = 0;
    for (const auto &port : bankPorts)
        bank_busy += port.busyCycles();
    (void)bank_busy; // bank occupancy is not a link stat
    linkBusyCycles = static_cast<double>(mesh.totalBusyCycles());
    networkEnergy = mesh.energyConsumed();
    degradedRequests = static_cast<double>(mesh.degradedHopCount());
}

void
SnucaCache::dumpFaultDiagnostic() const
{
    warn("snuca2: fault diagnostic ({} banks, {} degraded hops, "
         "mesh busy {} cycles)",
         cfg.banks, mesh.degradedHopCount(), mesh.totalBusyCycles());
    int hot_bank = 0;
    std::uint64_t hot_busy = 0;
    for (int b = 0; b < cfg.banks; ++b) {
        const auto &port = bankPorts[static_cast<std::size_t>(b)];
        if (port.busyCycles() > hot_busy) {
            hot_busy = port.busyCycles();
            hot_bank = b;
        }
    }
    for (int b = 0; b < cfg.banks; ++b) {
        const auto &port = bankPorts[static_cast<std::size_t>(b)];
        warn("  bank {}: port free at t={} ({} busy cycles, {} "
             "messages){}",
             b, port.freeAt(), port.busyCycles(), port.messageCount(),
             b == hot_bank ? " [hottest bank]" : "");
    }
}

namespace
{

const char *const snucaOptions[] = {nullptr};

const l2::Registrar registerSnuca{
    "SNUCA2", [](const l2::BuildContext &ctx) {
        l2::rejectUnknownOptions("SNUCA2", ctx.options, snucaOptions);
        return std::make_unique<SnucaCache>(ctx.eq, ctx.parent,
                                            ctx.dram, ctx.tech,
                                            SnucaConfig{},
                                            ctx.injector);
    }};

} // namespace

} // namespace nuca
} // namespace tlsim
