#include "nuca/dnuca.hh"

#include <algorithm>
#include <memory>

#include "mem/l2registry.hh"
#include "mem/warmstate.hh"
#include "sim/prof/prof.hh"
#include "sim/trace/debug.hh"
#include "sim/trace/tracesink.hh"

namespace tlsim
{
namespace nuca
{

namespace
{

constexpr int addrFlits = 1;

int
dataFlits(int flit_bits)
{
    return (mem::blockBytes * 8 + flit_bits - 1) / flit_bits;
}

} // namespace

DnucaCache::DnucaCache(EventQueue &eq, stats::StatGroup *parent,
                       mem::MemBackend &dram, const phys::Technology &tech,
                       const DnucaConfig &config,
                       fault::Injector *injector)
    : mem::L2Cache("dnuca", eq, parent, dram), cfg(config),
      mesh(eq, tech,
           noc::MeshConfig{static_cast<int>(config.bankSets.banksPerSet),
                           static_cast<int>(config.bankSets.numBankSets),
                           config.hopLatency, config.flitBits,
                           config.hopLength}),
      bankModel(tech, config.bankBytes,
                static_cast<int>(config.bankSets.waysPerBank),
                mem::blockBytes),
      bankCycles(bankModel.accessCycles()),
      array(config.bankSets),
      bankPorts(static_cast<std::size_t>(config.bankSets.banksPerSet) *
                config.bankSets.numBankSets),
      closeHits(this, "close_hits", "hits in the closest banks"),
      promotions(this, "promotions", "generational promotion swaps"),
      fastMisses(this, "fast_misses",
                 "misses resolved by the partial tags alone"),
      searches(this, "searches", "banks searched beyond the closest")
{
    // Dead mesh links detour (2x hop latency); the detour count folds
    // into degraded_requests via syncStats.
    mesh.setInjector(injector);

    if (metrics::spatialEnabled) {
        std::size_t banks =
            static_cast<std::size_t>(cfg.bankSets.banksPerSet) *
            cfg.bankSets.numBankSets;
        bankBusyHeatmap = std::make_unique<metrics::Heatmap>(
            this, "heatmap_bank_busy",
            "bank-port busy cycles per time window per bank", banks);
        bankWaitHeatmap = std::make_unique<metrics::Heatmap>(
            this, "heatmap_bank_wait",
            "bank-port queueing cycles per time window per bank",
            banks);
        linkBusyHeatmap = std::make_unique<metrics::Heatmap>(
            this, "heatmap_link_busy",
            "mesh link busy cycles per time window per link",
            static_cast<std::size_t>(mesh.linkCount()));
        linkWaitHeatmap = std::make_unique<metrics::Heatmap>(
            this, "heatmap_link_wait",
            "mesh link queueing cycles per time window per link",
            static_cast<std::size_t>(mesh.linkCount()));
        for (std::size_t b = 0; b < banks; ++b) {
            bankPorts[b].attachTelemetry(bankBusyHeatmap.get(),
                                         bankWaitHeatmap.get(), b);
        }
        mesh.attachTelemetry(linkBusyHeatmap.get(),
                             linkWaitHeatmap.get());
    }
}

Cycles
DnucaCache::uncontendedLatency(std::uint32_t bank_row,
                               std::uint32_t column) const
{
    return 2 * mesh.uncontendedLatency(coordOf(bank_row, column)) +
           bankCycles;
}

std::pair<Cycles, Cycles>
DnucaCache::latencyRange() const
{
    Cycles lo = ~Cycles(0), hi = 0;
    for (std::uint32_t row = 0; row < cfg.bankSets.banksPerSet; ++row) {
        for (std::uint32_t col = 0; col < cfg.bankSets.numBankSets;
             ++col) {
            Cycles lat = uncontendedLatency(row, col);
            lo = std::min(lo, lat);
            hi = std::max(hi, lat);
        }
    }
    return {lo, hi};
}

int
DnucaCache::linkCount() const
{
    return mesh.linkCount();
}

void
DnucaCache::access(const mem::MemRequest &l2_req, mem::RespCallback cb)
{
    const Addr block_addr = l2_req.blockAddr;
    const mem::AccessType type = l2_req.type;
    const Tick now = l2_req.issued;

    prof::Scope prof_scope("dnuca:access");
    ++requests;

    if (type == mem::AccessType::Store) {
        auto loc = array.lookup(block_addr);
        banksAccessed.sample(1.0);
        if (loc) {
            // Write to the holding bank; no promotion for writebacks.
            ++useCounter;
            array.touch(*loc, useCounter, true);
            int flits = dataFlits(cfg.flitBits);
            std::uint32_t row = loc->bank, col = loc->bankSet;
            mesh.sendToBank(coordOf(row, col), flits, now,
                            [this, row, col](Tick arrival) {
                                bankPort(row, col).reserve(arrival,
                                                           bankCycles);
                            });
        } else {
            installAtTail(block_addr, now, true);
        }
        cb(now);
        return;
    }

    ++demandRequests;
    auto loc = array.lookup(block_addr);
    std::uint32_t column = array.bankSetOf(block_addr);
    std::uint64_t req = l2_req.id;
    TLSIM_DPRINTF(L2, "t={} dnuca load block {} column {}", now,
                  block_addr, column);

    // Phase 1: the two closest banks and the partial-tag structure
    // are probed in parallel. The close-bank probe is one multicast
    // address message riding up the column, dropping a copy at each
    // of the closest banks.
    Tick close_resolved = now + cfg.partialTagLatency;
    std::uint32_t probed = std::min(cfg.closeBanks,
                                    cfg.bankSets.banksPerSet);
    bool close_hit = loc && loc->bank < probed;

    for (std::uint32_t row = 0; row < probed; ++row) {
        Tick resp = now + uncontendedLatency(row, column);
        if (!(loc && loc->bank == row))
            close_resolved = std::max(close_resolved, resp);
    }

    std::vector<int> probe_rows;
    for (std::uint32_t row = 0; row < probed; ++row)
        probe_rows.push_back(static_cast<int>(row));

    if (close_hit) {
        ++hits;
        ++closeHits;
        banksAccessed.sample(static_cast<double>(probed));
        auto shared_cb =
            std::make_shared<mem::RespCallback>(std::move(cb));
        mesh.multicastToColumn(
            static_cast<int>(column), probe_rows, addrFlits, now,
            [this, loc = *loc, column, now, req, shared_cb](
                int row, Tick arrival) {
                Tick start = bankPort(static_cast<std::uint32_t>(row),
                                      column)
                                 .reserve(arrival, bankCycles);
                if (loc.bank == static_cast<std::uint32_t>(row)) {
                    deliverHit(loc, start + bankCycles, now, true, req,
                               std::move(*shared_cb));
                }
            });
        return;
    }

    // Close miss: the probed banks answer with short miss notices.
    mesh.multicastToColumn(
        static_cast<int>(column), probe_rows, addrFlits, now,
        [this, column](int row, Tick arrival) {
            Tick start =
                bankPort(static_cast<std::uint32_t>(row), column)
                    .reserve(arrival, bankCycles);
            mesh.sendToController(
                coordOf(static_cast<std::uint32_t>(row), column),
                addrFlits, start + bankCycles, [](Tick) {});
        });

    // Consult the partial tags.
    auto candidates = array.partialTagCandidates(block_addr, probed);
    if (candidates.empty()) {
        // Fast miss: no other bank can hold the block.
        TLSIM_ASSERT(!loc, "holder not found by partial tags");
        ++fastMisses;
        banksAccessed.sample(static_cast<double>(probed));
        Tick latency = close_resolved - now;
        lookupLatency.sample(static_cast<double>(latency));
        if (latency == uncontendedLatency(0, column))
            ++predictableLookups;
        handleMiss(block_addr, now, close_resolved, req,
                   std::move(cb));
        return;
    }

    banksAccessed.sample(static_cast<double>(probed) +
                         static_cast<double>(candidates.size()));
    // The centralized partial tags name the candidate banks at
    // now + partialTagLatency; the search multicast launches then,
    // without waiting for the close banks' miss notices. A miss is
    // still only *declared* once the close banks have answered.
    searchCandidates(block_addr, candidates, loc,
                     now + cfg.partialTagLatency, close_resolved, now,
                     req, std::move(cb));
}

void
DnucaCache::accessFunctional(Addr block_addr, mem::AccessType type)
{
    ++useCounter;
    auto loc = array.lookup(block_addr);
    if (loc) {
        array.touch(*loc, useCounter, mem::isWrite(type));
        if (!mem::isWrite(type) && cfg.promoteOnHit && loc->bank > 0) {
            BankLocation cur = array.promote(*loc, useCounter);
            for (std::uint32_t step = 1;
                 step < cfg.promotionDistance && cur.bank > 0; ++step) {
                cur = array.promote(cur, useCounter);
            }
        }
        return;
    }
    array.insertAt(block_addr,
                   std::min(cfg.insertionBank,
                            cfg.bankSets.banksPerSet - 1),
                   useCounter, mem::isWrite(type));
}

bool
DnucaCache::saveWarmState(std::ostream &os) const
{
    const BankSetConfig &bc = array.config();
    mem::warm::putU64(os, useCounter);
    mem::warm::putU32(os, bc.numBankSets);
    mem::warm::putU32(os, bc.setsPerBankSet);
    mem::warm::putU32(os, bc.banksPerSet);
    mem::warm::putU32(os, bc.waysPerBank);
    mem::warm::putU64(os, array.validCount());
    for (std::uint32_t bs = 0; bs < bc.numBankSets; ++bs) {
        for (std::uint32_t set = 0; set < bc.setsPerBankSet; ++set) {
            for (std::uint32_t bank = 0; bank < bc.banksPerSet;
                 ++bank) {
                for (std::uint32_t way = 0; way < bc.waysPerBank;
                     ++way) {
                    const mem::LineState &line =
                        array.frame(BankLocation{bs, set, bank, way});
                    if (!line.valid)
                        continue;
                    mem::warm::putU32(os, bs);
                    mem::warm::putU32(os, set);
                    mem::warm::putU32(os, bank);
                    mem::warm::putU32(os, way);
                    mem::warm::putU64(os, line.tag);
                    mem::warm::putU64(os, line.lastUse);
                    mem::warm::putU8(os, line.dirty ? 1 : 0);
                }
            }
        }
    }
    return true;
}

bool
DnucaCache::loadWarmState(std::istream &is)
{
    const BankSetConfig &bc = array.config();
    std::uint64_t counter = 0, valid = 0;
    std::uint32_t bank_sets = 0, sets = 0, banks = 0, ways = 0;
    if (!mem::warm::getU64(is, counter) ||
        !mem::warm::getU32(is, bank_sets) ||
        !mem::warm::getU32(is, sets) ||
        !mem::warm::getU32(is, banks) ||
        !mem::warm::getU32(is, ways) || !mem::warm::getU64(is, valid))
        return false;
    if (bank_sets != bc.numBankSets || sets != bc.setsPerBankSet ||
        banks != bc.banksPerSet || ways != bc.waysPerBank)
        return false;
    for (std::uint32_t bs = 0; bs < bc.numBankSets; ++bs)
        for (std::uint32_t set = 0; set < bc.setsPerBankSet; ++set)
            for (std::uint32_t bank = 0; bank < bc.banksPerSet; ++bank)
                for (std::uint32_t way = 0; way < bc.waysPerBank;
                     ++way)
                    array.frame(BankLocation{bs, set, bank, way}) =
                        mem::LineState{};
    for (std::uint64_t i = 0; i < valid; ++i) {
        std::uint32_t bs = 0, set = 0, bank = 0, way = 0;
        std::uint64_t tag = 0, last_use = 0;
        std::uint8_t dirty = 0;
        if (!mem::warm::getU32(is, bs) || !mem::warm::getU32(is, set) ||
            !mem::warm::getU32(is, bank) ||
            !mem::warm::getU32(is, way) || !mem::warm::getU64(is, tag) ||
            !mem::warm::getU64(is, last_use) ||
            !mem::warm::getU8(is, dirty))
            return false;
        if (bs >= bc.numBankSets || set >= bc.setsPerBankSet ||
            bank >= bc.banksPerSet || way >= bc.waysPerBank)
            return false;
        mem::LineState &line =
            array.frame(BankLocation{bs, set, bank, way});
        line.tag = tag;
        line.valid = true;
        line.dirty = dirty != 0;
        line.lastUse = last_use;
    }
    useCounter = counter;
    return true;
}

trace::LatencyBreakdown
DnucaCache::onChipBreakdown(std::uint32_t bank_row,
                            std::uint32_t column, Tick latency) const
{
    trace::LatencyBreakdown bd;
    bd.wire = static_cast<double>(
        2 * mesh.uncontendedLatency(coordOf(bank_row, column)));
    bd.bank = static_cast<double>(bankCycles);
    bd.queueWait = static_cast<double>(latency) - bd.wire - bd.bank;
    return bd;
}

void
DnucaCache::deliverHit(const BankLocation &loc, Tick bank_done,
                       Tick issue, bool promote_ok, std::uint64_t req,
                       mem::RespCallback cb)
{
    ++useCounter;
    array.touch(loc, useCounter, false);

    int flits = dataFlits(cfg.flitBits);
    std::uint32_t row = loc.bank, col = loc.bankSet;
    if (auto *sink = trace::TraceSink::active()) {
        sink->span(trace::cat::bank,
                   csprintf("bank({},{})", row, col),
                   bank_done - bankCycles, bank_done,
                   trace::tid::bankBase + static_cast<int>(row), req);
    }
    mesh.sendToController(
        coordOf(row, col), flits, bank_done,
        [this, row, col, issue, flits, req,
         cb = std::move(cb)](Tick tail) {
            Tick first_word = tail - (flits - 1);
            Tick latency = first_word - issue;
            lookupLatency.sample(static_cast<double>(latency));
            // Schedulers predict the closest-bank hit latency.
            if (latency == uncontendedLatency(0, col))
                ++predictableLookups;
            TLSIM_DPRINTF(L2, "t={} dnuca hit bank ({},{}) latency {}",
                          issue, row, col, latency);
            recordBreakdown(onChipBreakdown(row, col, latency));
            if (auto *sink = trace::TraceSink::active()) {
                sink->span(trace::cat::l2, "hit", issue, first_word,
                           trace::tid::l2, req);
            }
            cb(first_word);
        });

    if (promote_ok && cfg.promoteOnHit && loc.bank > 0)
        doPromotion(loc, bank_done);
}

void
DnucaCache::doPromotion(const BankLocation &loc, Tick now)
{
    ++promotions;
    ++useCounter;
    BankLocation dst = array.promote(loc, useCounter);
    for (std::uint32_t step = 1;
         step < cfg.promotionDistance && dst.bank > 0; ++step) {
        dst = array.promote(dst, useCounter);
    }

    // Swap traffic: one data message each way between the adjacent
    // banks. The promoted block's data was already read by the hit
    // itself; only the destination's read-and-write is a new bank
    // occupancy (the source's write of the demoted victim comes back
    // with the return message).
    int flits = dataFlits(cfg.flitBits);
    std::uint32_t col = loc.bankSet;
    noc::Coord from = coordOf(loc.bank, col);
    noc::Coord to = coordOf(dst.bank, col);
    mesh.sendBankToBank(from, to, flits, now,
                        [this, dst, col](Tick arrival) {
                            bankPort(dst.bank, col).reserve(arrival,
                                                            bankCycles);
                        });
    mesh.sendBankToBank(to, from, flits, now,
                        [this, loc, col](Tick arrival) {
                            bankPort(loc.bank, col).reserve(arrival,
                                                            bankCycles);
                        });
}

void
DnucaCache::searchCandidates(
    Addr block_addr, const std::vector<std::uint32_t> &candidates,
    std::optional<BankLocation> loc, Tick start, Tick close_resolved,
    Tick issue, std::uint64_t req, mem::RespCallback cb)
{
    searches += static_cast<double>(candidates.size());
    std::uint32_t column = array.bankSetOf(block_addr);

    // One multicast search message rides the column to the farthest
    // candidate, dropping a copy at each candidate bank in passing.
    // The holder (if resident) returns data; false positives return
    // short miss notifications.
    bool found_holder = loc.has_value();
    if (found_holder)
        ++hits;

    std::vector<int> search_rows;
    for (std::uint32_t row : candidates)
        search_rows.push_back(static_cast<int>(row));

    auto shared_cb = std::make_shared<mem::RespCallback>();
    if (found_holder)
        *shared_cb = std::move(cb);
    mesh.multicastToColumn(
        static_cast<int>(column), search_rows, addrFlits, start,
        [this, loc, column, issue, req, shared_cb](int row_i,
                                                   Tick arrival) {
            std::uint32_t row = static_cast<std::uint32_t>(row_i);
            Tick bank_start =
                bankPort(row, column).reserve(arrival, bankCycles);
            if (loc && loc->bank == row) {
                deliverHit(*loc, bank_start + bankCycles, issue, true,
                           req, std::move(*shared_cb));
            } else {
                // False positive: short miss notification.
                mesh.sendToController(coordOf(row, column), addrFlits,
                                      bank_start + bankCycles,
                                      [](Tick) {});
            }
        });

    Tick last_response = close_resolved;
    for (std::uint32_t row : candidates) {
        if (!(loc && loc->bank == row)) {
            last_response = std::max(
                last_response, start + uncontendedLatency(row, column));
        }
    }
    if (found_holder)
        return;

    // All candidates were false partial-tag matches: slow miss.
    Tick latency = last_response - issue;
    lookupLatency.sample(static_cast<double>(latency));
    if (latency == uncontendedLatency(0, column))
        ++predictableLookups;
    handleMiss(block_addr, issue, last_response, req, std::move(cb));
}

void
DnucaCache::handleMiss(Addr block_addr, Tick issue, Tick miss_time,
                       std::uint64_t req, mem::RespCallback cb)
{
    ++misses;
    TLSIM_DPRINTF(L2, "t={} dnuca miss block {}", miss_time,
                  block_addr);
    std::uint32_t column = array.bankSetOf(block_addr);
    trace::LatencyBreakdown bd =
        onChipBreakdown(0, column, miss_time - issue);
    dram.read(block_addr, miss_time,
              [this, block_addr, issue, miss_time, req, bd,
               cb = std::move(cb)](Tick ready) mutable {
                  bd.dram = static_cast<double>(ready - miss_time);
                  recordBreakdown(bd);
                  if (auto *sink = trace::TraceSink::active()) {
                      sink->span(trace::cat::l2, "miss", issue, ready,
                                 trace::tid::l2, req);
                  }
                  cb(ready);
                  installAtTail(block_addr, ready, false);
              });
}

void
DnucaCache::installAtTail(Addr block_addr, Tick now, bool dirty)
{
    ++inserts;
    ++useCounter;
    std::uint32_t tail = std::min(cfg.insertionBank,
                                  cfg.bankSets.banksPerSet - 1);
    auto evicted = array.insertAt(block_addr, tail, useCounter, dirty);

    std::uint32_t column = array.bankSetOf(block_addr);
    int flits = dataFlits(cfg.flitBits);
    mesh.sendToBank(coordOf(tail, column), flits, now,
                    [this, tail, column](Tick arrival) {
                        bankPort(tail, column).reserve(arrival,
                                                       bankCycles);
                    });

    if (evicted && evicted->dirty) {
        ++writebacksToMemory;
        Tick depart = now + mesh.uncontendedLatency(
                                coordOf(tail, column)) + bankCycles;
        mesh.sendToController(coordOf(tail, column), flits, depart,
                              [this, victim = evicted->blockAddr](
                                  Tick tick) {
                                  dram.write(victim, tick);
                              });
    }
}

void
DnucaCache::beginMeasurement()
{
    mesh.resetStats();
    for (auto &port : bankPorts)
        port.resetStats();
}

void
DnucaCache::syncStats()
{
    linkBusyCycles = static_cast<double>(mesh.totalBusyCycles());
    networkEnergy = mesh.energyConsumed();
    degradedRequests = static_cast<double>(mesh.degradedHopCount());
}

void
DnucaCache::dumpFaultDiagnostic() const
{
    std::size_t banks =
        static_cast<std::size_t>(cfg.bankSets.banksPerSet) *
        cfg.bankSets.numBankSets;
    warn("dnuca: fault diagnostic ({} banks, {} degraded hops, mesh "
         "busy {} cycles)",
         banks, mesh.degradedHopCount(), mesh.totalBusyCycles());
    std::size_t hot_bank = 0;
    std::uint64_t hot_busy = 0;
    for (std::size_t b = 0; b < banks; ++b) {
        if (bankPorts[b].busyCycles() > hot_busy) {
            hot_busy = bankPorts[b].busyCycles();
            hot_bank = b;
        }
    }
    for (std::size_t b = 0; b < banks; ++b) {
        const auto &port = bankPorts[b];
        // Quiet banks are omitted: 256 all-zero lines would bury the
        // hot resource the dump exists to expose.
        if (port.messageCount() == 0)
            continue;
        warn("  bank {}: port free at t={} ({} busy cycles, {} "
             "messages){}",
             b, port.freeAt(), port.busyCycles(), port.messageCount(),
             b == hot_bank ? " [hottest bank]" : "");
    }
}

namespace
{

const char *const dnucaOptions[] = {"promoteOnHit",
                                    "promotionDistance",
                                    "insertionBank", "closeBanks",
                                    "partialTagLatency", nullptr};

const l2::Registrar registerDnuca{
    "DNUCA", [](const l2::BuildContext &ctx) {
        l2::rejectUnknownOptions("DNUCA", ctx.options, dnucaOptions);
        DnucaConfig cfg;
        cfg.promoteOnHit =
            l2::optionOr(ctx.options, "promoteOnHit",
                         cfg.promoteOnHit ? 1.0 : 0.0) != 0.0;
        cfg.promotionDistance = static_cast<std::uint32_t>(
            l2::optionOr(ctx.options, "promotionDistance",
                         cfg.promotionDistance));
        cfg.insertionBank = static_cast<std::uint32_t>(l2::optionOr(
            ctx.options, "insertionBank", cfg.insertionBank));
        cfg.closeBanks = static_cast<std::uint32_t>(
            l2::optionOr(ctx.options, "closeBanks", cfg.closeBanks));
        cfg.partialTagLatency = static_cast<Cycles>(
            l2::optionOr(ctx.options, "partialTagLatency",
                         static_cast<double>(cfg.partialTagLatency)));
        return std::make_unique<DnucaCache>(ctx.eq, ctx.parent,
                                            ctx.dram, ctx.tech, cfg,
                                            ctx.injector);
    }};

} // namespace

} // namespace nuca
} // namespace tlsim
