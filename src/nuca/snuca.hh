/**
 * @file
 * SNUCA2: the statically-partitioned NUCA baseline (paper Table 2).
 *
 * 32 banks of 512 KB on a 2-D switched mesh; low-order block-address
 * bits select the bank; 4-way LRU sets within each bank. Uncontended
 * latency spans ~9-32 cycles depending on bank distance.
 */

#ifndef TLSIM_NUCA_SNUCA_HH
#define TLSIM_NUCA_SNUCA_HH

#include <memory>
#include <vector>

#include "cacti/srambank.hh"
#include "mem/l2cache.hh"
#include "mem/setassoc.hh"
#include "noc/link.hh"
#include "noc/mesh.hh"
#include "phys/technology.hh"

namespace tlsim
{
namespace nuca
{

/** Configuration of the SNUCA2 design. */
struct SnucaConfig
{
    int banks = 32;
    int rows = 4;
    int cols = 8;
    std::uint64_t bankBytes = 512 * 1024;
    int ways = 4;
    Cycles hopLatency = 2;
    int flitBits = 128;
    /** Physical hop length [m] (bank pitch for 512 KB banks). */
    double hopLength = 1.6e-3;
};

/**
 * The SNUCA2 cache design.
 */
class SnucaCache : public mem::L2Cache
{
  public:
    /** @param injector Per-run fault source; null disables faults. */
    SnucaCache(EventQueue &eq, stats::StatGroup *parent,
               mem::MemBackend &dram, const phys::Technology &tech,
               const SnucaConfig &config = SnucaConfig{},
               fault::Injector *injector = nullptr);

    using mem::L2Cache::access;
    void access(const mem::MemRequest &req,
                mem::RespCallback cb) override;

    void accessFunctional(Addr block_addr,
                          mem::AccessType type) override;

    bool saveWarmState(std::ostream &os) const override;
    bool loadWarmState(std::istream &is) override;

    int linkCount() const override;
    std::string designName() const override { return "SNUCA2"; }

    /** Copy network occupancy/energy into the shared stats. */
    void syncStats() override;

    void beginMeasurement() override;

    /**
     * SNUCA2 partitions cleanly: banks in rows >= 1 only couple to
     * the rest of the machine through a mesh flight of at least one
     * vertical hop (lookahead = hopLatency), so they move to worker
     * domains. Row-0 banks (zero-hop flight possible) and everything
     * order-sensitive — mesh links, DRAM, fault RNG — stay in domain
     * 0. Declines when bitErrorRate > 0: the CRC-retry path
     * re-reserves bank ports from the controller with zero lookahead.
     */
    pdes::PartitionPlan partitionPlan(int domains) const override;

    void setPartition(pdes::Executor *executor) override;

    /** Uncontended round-trip latency to a bank (Table 2). */
    Cycles uncontendedLatency(int bank) const;

    /** Bank access latency in cycles. */
    int bankAccessCycles() const { return bankCycles; }

    /** Min/max uncontended latencies over all banks (Table 2). */
    std::pair<Cycles, Cycles> latencyRange() const;

    void dumpFaultDiagnostic() const override;

  private:
    int bankOf(Addr block_addr) const;
    noc::Coord coordOf(int bank) const;

    /** Handle a demand read at the bank side. */
    void handleRead(Addr block_addr, int bank, Tick arrival, Tick issue,
                    std::uint64_t req, mem::RespCallback cb);

    /**
     * Ship a hit's data back to the controller. With fault injection
     * the response is CRC-checked on arrival; a transient error NACKs
     * it and the controller re-reads the bank after exponential
     * backoff (recursing with attempt + 1). @p healthy_first is the
     * pre-CRC delivery tick of the first attempt (0 = this is the
     * first attempt) so the fault surcharge can be decomposed exactly.
     */
    void sendHitResponse(Addr block_addr, int bank, Tick done,
                         Tick issue, std::uint64_t req, int attempt,
                         Tick healthy_first, mem::RespCallback cb);

    /** Miss path: fetch from memory, insert, respond. */
    void handleMiss(Addr block_addr, int bank, Tick miss_time,
                    Tick issue, std::uint64_t req,
                    mem::RespCallback cb);

    /**
     * Decompose a demand access's on-chip latency: wire and bank are
     * the static uncontended components of the bank's path, queueing
     * is the contention residual.
     */
    trace::LatencyBreakdown onChipBreakdown(int bank,
                                            Tick latency) const;

    /** Write a block into a bank (fill or store), evicting as needed. */
    void installBlock(Addr block_addr, int bank, Tick now, bool dirty);

    /**
     * Send a bank-to-controller message from bank-side context. In a
     * partitioned run a worker-owned bank posts the send back to
     * domain 0 (mesh links are domain-0 state) with an order key just
     * after its triggering delivery's serial slot; otherwise the call
     * is the plain synchronous mesh send.
     */
    void sendToControllerFrom(int bank, int flits, Tick done,
                              noc::Mesh::DeliverCallback cb);

    /** Worker domain owning @p bank, or -1 for domain 0. */
    int
    workerOf(int bank) const
    {
        return exec ? bankWorker[static_cast<std::size_t>(bank)] : -1;
    }

    SnucaConfig cfg;
    noc::Mesh mesh;
    cacti::SramBankModel bankModel;
    int bankCycles;
    std::vector<mem::SetAssocArray> arrays;
    std::vector<noc::Link> bankPorts;
    fault::Injector *injector;
    std::uint64_t useCounter = 0;
    /** Extra round-trip cycles for controller injection/ejection. */
    Tick roundTripInjection = 0;

    /**
     * Timed-phase LRU counter base for worker-domain shards: far
     * above any global useCounter value functional warmup can reach
     * (budgets are < 2^40 accesses), so warm-era touches always
     * compare older than timed worker touches — exactly the relation
     * the serial run's single monotone counter gives. Counter values
     * are only ever compared within one set (one bank, one domain),
     * so per-domain monotone counters reproduce serial LRU decisions
     * bit-exactly.
     */
    static constexpr std::uint64_t timedUseBase = 1ull << 40;

    /** Per-worker-domain counters mutated from worker threads. */
    struct alignas(64) Shard
    {
        std::uint64_t hits = 0;
        std::uint64_t writebacks = 0;
        std::uint64_t use = timedUseBase;
    };

    /** Partitioned-run state (empty/null when running serial). */
    pdes::Executor *exec = nullptr;
    std::vector<int> bankWorker;
    std::vector<Shard> shards;

    /**
     * Spatial heatmaps (constructed only when
     * metrics::spatialEnabled): bank cells are bank ids (row-major
     * over the mesh grid), link cells are mesh link indices.
     */
    std::unique_ptr<metrics::Heatmap> bankBusyHeatmap;
    std::unique_ptr<metrics::Heatmap> bankWaitHeatmap;
    std::unique_ptr<metrics::Heatmap> linkBusyHeatmap;
    std::unique_ptr<metrics::Heatmap> linkWaitHeatmap;
};

} // namespace nuca
} // namespace tlsim

#endif // TLSIM_NUCA_SNUCA_HH
