/**
 * @file
 * DNUCA: the Dynamic Non-Uniform Cache Architecture baseline
 * (Kim et al., ASPLOS 2002; paper Section 2 and Table 2).
 *
 * 256 banks of 64 KB on a 16x16 switched mesh. Each mesh column is a
 * bank set; a block maps to a column and may live in any of its 16
 * banks (x2 ways each). A request searches the two closest banks and
 * the controller's 6-bit partial-tag structure in parallel; a miss in
 * the close banks triggers a multicast search of the partial-tag
 * candidate banks, or a fast miss if there are none. Hits promote the
 * block one bank closer (generational promotion, implemented as a
 * swap). Fills insert at the farthest (tail) bank.
 */

#ifndef TLSIM_NUCA_DNUCA_HH
#define TLSIM_NUCA_DNUCA_HH

#include <memory>
#include <vector>

#include "cacti/srambank.hh"
#include "mem/l2cache.hh"
#include "noc/link.hh"
#include "noc/mesh.hh"
#include "nuca/bankset.hh"
#include "phys/technology.hh"

namespace tlsim
{
namespace nuca
{

/** Configuration of the DNUCA design. */
struct DnucaConfig
{
    BankSetConfig bankSets{};
    Cycles hopLatency = 1;
    int flitBits = 128;
    /** Physical hop length [m] (64 KB bank pitch). */
    double hopLength = 0.6e-3;
    /** Banks searched in parallel with the partial tags. */
    std::uint32_t closeBanks = 2;
    /** Partial tag structure access latency [cycles]. */
    Cycles partialTagLatency = 3;
    /** Generational promotion on hits (ablation knob). */
    bool promoteOnHit = true;
    /** Banks moved per promotion (Kim et al. design space). */
    std::uint32_t promotionDistance = 1;
    /**
     * Bank new blocks are inserted into; defaults to the tail
     * (banksPerSet - 1). Kim et al. also evaluated middle/head
     * insertion.
     */
    std::uint32_t insertionBank = 15;
    std::uint64_t bankBytes = 64 * 1024;
};

/**
 * The DNUCA cache design.
 */
class DnucaCache : public mem::L2Cache
{
  public:
    /** @param injector Per-run fault source; null disables faults. */
    DnucaCache(EventQueue &eq, stats::StatGroup *parent,
               mem::MemBackend &dram, const phys::Technology &tech,
               const DnucaConfig &config = DnucaConfig{},
               fault::Injector *injector = nullptr);

    using mem::L2Cache::access;
    void access(const mem::MemRequest &req,
                mem::RespCallback cb) override;

    void accessFunctional(Addr block_addr,
                          mem::AccessType type) override;

    bool saveWarmState(std::ostream &os) const override;
    bool loadWarmState(std::istream &is) override;

    int linkCount() const override;
    std::string designName() const override { return "DNUCA"; }

    void syncStats() override;

    void beginMeasurement() override;

    /**
     * DNUCA always runs serial: the shared BankSetArray (promotion
     * state spanning every bank row of a column) is mutated from
     * bank-side mesh callbacks with zero lookahead against the
     * controller's broadcast searches, so no bank can leave domain 0.
     */
    pdes::PartitionPlan
    partitionPlan(int domains) const override
    {
        pdes::PartitionPlan plan;
        (void)domains;
        plan.serialReason =
            "DNUCA promotion state is shared across bank rows and "
            "mutated from bank-side callbacks with zero lookahead";
        return plan;
    }

    void dumpFaultDiagnostic() const override;

    /** Uncontended round-trip latency to a bank row of a column. */
    Cycles uncontendedLatency(std::uint32_t bank_row,
                              std::uint32_t column) const;

    int bankAccessCycles() const { return bankCycles; }

    /** Min/max uncontended latencies over all banks (Table 2). */
    std::pair<Cycles, Cycles> latencyRange() const;

  private:
    DnucaConfig cfg;
    noc::Mesh mesh;
    cacti::SramBankModel bankModel;
    int bankCycles;
    BankSetArray array;
    std::vector<noc::Link> bankPorts;

  public:
    /** DNUCA-specific stats (Table 6). */
    stats::Scalar closeHits;
    stats::Scalar promotions;
    stats::Scalar fastMisses;
    stats::Scalar searches;

  private:
    noc::Coord
    coordOf(std::uint32_t bank_row, std::uint32_t column) const
    {
        return noc::Coord{static_cast<int>(bank_row),
                          static_cast<int>(column)};
    }

    noc::Link &
    bankPort(std::uint32_t bank_row, std::uint32_t column)
    {
        return bankPorts[static_cast<std::size_t>(bank_row) *
                             cfg.bankSets.numBankSets + column];
    }

    /** Deliver a hit from a bank and maybe promote the block. */
    void deliverHit(const BankLocation &loc, Tick bank_done, Tick issue,
                    bool promote_ok, std::uint64_t req,
                    mem::RespCallback cb);

    /**
     * Decompose an access's on-chip latency: wire and bank are the
     * static uncontended components of the answering bank's path,
     * queueing (probe waits, partial-tag consult, contention) is the
     * residual.
     */
    trace::LatencyBreakdown onChipBreakdown(std::uint32_t bank_row,
                                            std::uint32_t column,
                                            Tick latency) const;

    /** Swap a block one bank closer; models the swap traffic. */
    void doPromotion(const BankLocation &loc, Tick now);

    /**
     * Multicast search of the partial-tag candidate banks. Launches
     * at @p start (when the partial tags resolve); a miss is only
     * declared once both the searches and the close banks
     * (@p close_resolved) have answered.
     */
    void searchCandidates(Addr block_addr,
                          const std::vector<std::uint32_t> &candidates,
                          std::optional<BankLocation> loc, Tick start,
                          Tick close_resolved, Tick issue,
                          std::uint64_t req, mem::RespCallback cb);

    /** Miss path: DRAM fetch, tail insert, respond. */
    void handleMiss(Addr block_addr, Tick issue, Tick miss_time,
                    std::uint64_t req, mem::RespCallback cb);

    /** Insert a block at the tail bank, modelling the traffic. */
    void installAtTail(Addr block_addr, Tick now, bool dirty);

    std::uint64_t useCounter = 0;

    /**
     * Spatial heatmaps (constructed only when
     * metrics::spatialEnabled): bank cells are
     * bank_row * numBankSets + column, link cells are mesh link
     * indices.
     */
    std::unique_ptr<metrics::Heatmap> bankBusyHeatmap;
    std::unique_ptr<metrics::Heatmap> bankWaitHeatmap;
    std::unique_ptr<metrics::Heatmap> linkBusyHeatmap;
    std::unique_ptr<metrics::Heatmap> linkWaitHeatmap;
};

} // namespace nuca
} // namespace tlsim

#endif // TLSIM_NUCA_DNUCA_HH
