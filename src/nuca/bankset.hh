/**
 * @file
 * The DNUCA bank-set storage structure.
 *
 * A DNUCA cache groups its banks into bank sets: a block address maps
 * to one bank set and may reside in any bank of that set (each bank
 * contributing its internal ways to the set's total associativity).
 * Banks within a set are ordered by distance from the controller;
 * blocks are inserted at the farthest (tail) bank and migrate one
 * bank closer on each hit (generational promotion).
 *
 * A 6-bit partial tag view of the whole structure supports the
 * controller's "smart search": it names which non-close banks could
 * possibly hold a block, enabling fast misses.
 */

#ifndef TLSIM_NUCA_BANKSET_HH
#define TLSIM_NUCA_BANKSET_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "mem/setassoc.hh"
#include "sim/logging.hh"
#include "sim/types.hh"

namespace tlsim
{
namespace nuca
{

/** Where a block lives inside the bank-set structure. */
struct BankLocation
{
    std::uint32_t bankSet; // which bank set (mesh column)
    std::uint32_t setIndex; // set within the bank set
    std::uint32_t bank; // bank within the set (mesh row; 0 = closest)
    std::uint32_t way; // way within the bank
};

/** Geometry of the bank-set structure. */
struct BankSetConfig
{
    std::uint32_t numBankSets = 16;
    std::uint32_t banksPerSet = 16;
    std::uint32_t setsPerBankSet = 512;
    std::uint32_t waysPerBank = 2;
    int partialTagBits = 6;
};

/**
 * Tag state for an entire DNUCA cache (all bank sets).
 */
class BankSetArray
{
  public:
    explicit BankSetArray(const BankSetConfig &config);

    const BankSetConfig &config() const { return cfg; }

    /** Total capacity in blocks. */
    std::uint64_t
    capacityBlocks() const
    {
        return static_cast<std::uint64_t>(cfg.numBankSets) *
               cfg.setsPerBankSet * cfg.banksPerSet * cfg.waysPerBank;
    }

    /** Bank set a block address maps to. */
    std::uint32_t
    bankSetOf(Addr block_addr) const
    {
        return static_cast<std::uint32_t>(block_addr &
                                          (cfg.numBankSets - 1));
    }

    /** Set index within the bank set. */
    std::uint32_t
    setIndexOf(Addr block_addr) const
    {
        return static_cast<std::uint32_t>(
            (block_addr >> bankSetShift()) & (cfg.setsPerBankSet - 1));
    }

    /** Full tag of a block address. */
    Addr
    tagOf(Addr block_addr) const
    {
        return block_addr >> (bankSetShift() + setShift());
    }

    /** Partial tag (low bits of the full tag). */
    std::uint32_t
    partialTagOf(Addr block_addr) const
    {
        return static_cast<std::uint32_t>(
            tagOf(block_addr) & ((1u << cfg.partialTagBits) - 1));
    }

    /** Find a block anywhere in its bank set. */
    std::optional<BankLocation> lookup(Addr block_addr) const;

    /**
     * Banks (beyond the closest @p exclude_banks) whose partial tags
     * match the address in its set — the controller's smart-search
     * candidate list. Includes the true holder when resident and any
     * false positives.
     */
    std::vector<std::uint32_t>
    partialTagCandidates(Addr block_addr,
                         std::uint32_t exclude_banks) const;

    /** Update LRU/dirty on a hit. */
    void touch(const BankLocation &loc, std::uint64_t use_counter,
               bool make_dirty);

    /**
     * Promote the block one bank closer by swapping with the LRU way
     * of the same set in the next-closer bank.
     * @return The location the block now occupies.
     */
    BankLocation promote(const BankLocation &loc,
                         std::uint64_t use_counter);

    /**
     * Insert a block at the tail (farthest) bank of its bank set,
     * evicting that bank's LRU way if valid.
     */
    std::optional<mem::Eviction>
    insertAtTail(Addr block_addr, std::uint64_t use_counter, bool dirty);

    /**
     * Insert a block at an arbitrary bank of its set (Kim et al.'s
     * insertion-policy design space: tail / middle / head), evicting
     * that bank's LRU way if valid.
     */
    std::optional<mem::Eviction>
    insertAt(Addr block_addr, std::uint32_t bank,
             std::uint64_t use_counter, bool dirty);

    /** Block address stored in a frame (frame must be valid). */
    Addr blockAddrAt(const BankLocation &loc) const;

    /** Direct frame access. */
    mem::LineState &frame(const BankLocation &loc);
    const mem::LineState &frame(const BankLocation &loc) const;

    /** Count of valid frames (for tests). */
    std::uint64_t validCount() const;

  private:
    std::uint32_t bankSetShift() const
    {
        return __builtin_ctz(cfg.numBankSets);
    }

    std::uint32_t setShift() const
    {
        return __builtin_ctz(cfg.setsPerBankSet);
    }

    std::size_t
    frameIndex(std::uint32_t bank_set, std::uint32_t set,
               std::uint32_t bank, std::uint32_t way) const
    {
        return ((static_cast<std::size_t>(bank_set) *
                     cfg.setsPerBankSet + set) *
                    cfg.banksPerSet + bank) *
                   cfg.waysPerBank + way;
    }

    BankSetConfig cfg;
    std::vector<mem::LineState> frames;
};

} // namespace nuca
} // namespace tlsim

#endif // TLSIM_NUCA_BANKSET_HH
