/**
 * @file
 * Tests for the parallel sweep runner: spec-derived seeding, the
 * content-addressed result cache, and the two properties the repro
 * CLI is built on — a parallel sweep is byte-identical to a serial
 * one, and a warm cache executes zero simulations.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "harness/sweep/journal.hh"
#include "harness/sweep/resultcache.hh"
#include "harness/sweep/runspec.hh"
#include "harness/sweep/sweep.hh"
#include "phys/physcache.hh"
#include "repro/experiments.hh"
#include "sim/eventq.hh"
#include "sim/metrics/heatmap.hh"
#include "sim/prof/prof.hh"

using namespace tlsim;
using namespace tlsim::harness;
using namespace tlsim::harness::sweep;

namespace
{

/** Tiny budgets so a 24-run sweep finishes in well under a second. */
SystemConfig
testConfig()
{
    SystemConfig config;
    config.warmup = 5'000;
    config.measure = 20'000;
    config.functionalWarm = 200'000;
    return config;
}

std::vector<RunSpec>
table6Specs()
{
    return repro::findExperiment("table6")->specs(testConfig());
}

std::string
resultJson(const RunSpec &spec, const RunResult &result)
{
    std::ostringstream os;
    writeResultJson(os, spec, result);
    return os.str();
}

std::string
freshDir(const std::string &name)
{
    std::string dir = ::testing::TempDir() + "tlsim_sweep_" + name;
    std::filesystem::remove_all(dir);
    return dir;
}

} // namespace

TEST(RunSpec, SpecKeyNamesEveryField)
{
    RunSpec spec;
    spec.config.design = "DNUCA";
    spec.benchmark = "gcc";
    spec.config.warmup = 1;
    spec.config.measure = 2;
    spec.config.functionalWarm = 3;
    spec.baseSeed = 4;
    // Default machine: the key matches the pre-SystemConfig format
    // exactly, so historical cache entries stay addressable.
    EXPECT_EQ(specKey(spec), "DNUCA/gcc/w1/m2/f3/s4");
}

TEST(RunSpec, SpecKeySuffixesNonDefaultMachines)
{
    RunSpec spec = makeRunSpec(DesignKind::Dnuca, "gcc");
    std::string default_key = specKey(spec);
    EXPECT_EQ(default_key.find("/c"), std::string::npos);

    RunSpec cmp = spec;
    cmp.config.cores = 4;
    std::string cmp_key = specKey(cmp);
    EXPECT_NE(cmp_key.find("/c"), std::string::npos);
    EXPECT_NE(cmp_key, default_key);

    // The suffix depends on the machine, not design or budgets: a
    // different budget moves the key's w/m/f fields, not the hash.
    RunSpec cmp_budget = cmp;
    cmp_budget.config.measure += 1;
    std::string suffix = cmp_key.substr(cmp_key.rfind("/c"));
    EXPECT_EQ(specKey(cmp_budget).substr(specKey(cmp_budget).rfind(
                  "/c")),
              suffix);
}

TEST(RunSpec, TraceSeedIgnoresDesignOnly)
{
    RunSpec tlc = makeRunSpec(DesignKind::TlcBase, "mcf");
    RunSpec dnuca = tlc;
    dnuca.config.design = "DNUCA";
    // Same trace across designs: normalized comparisons replay the
    // bit-identical reference stream on every design.
    EXPECT_EQ(traceSeed(tlc), traceSeed(dnuca));

    // Same trace across machines, too: a 4-core CMP replays the same
    // per-core reference stream as core 0 of a single-core run.
    RunSpec cmp = tlc;
    cmp.config.cores = 4;
    EXPECT_EQ(traceSeed(tlc), traceSeed(cmp));

    RunSpec other_bench = tlc;
    other_bench.benchmark = "gcc";
    EXPECT_NE(traceSeed(tlc), traceSeed(other_bench));

    RunSpec other_budget = tlc;
    other_budget.config.measure += 1;
    EXPECT_NE(traceSeed(tlc), traceSeed(other_budget));

    RunSpec other_seed = tlc;
    other_seed.baseSeed = 99;
    EXPECT_NE(traceSeed(tlc), traceSeed(other_seed));
}

TEST(RunSpec, CacheKeyIsContentAddressed)
{
    RunSpec a;
    a.benchmark = "gcc";
    RunSpec b = a;
    EXPECT_EQ(cacheKey(a), cacheKey(b));
    EXPECT_EQ(cacheKey(a).size(), 16u);
    b.config.design = "DNUCA";
    EXPECT_NE(cacheKey(a), cacheKey(b));

    // Machine changes (core count, L1 geometry, l2 options) move the
    // cache key as well — the hash suffix feeds the content address.
    RunSpec c = a;
    c.config.cores = 2;
    EXPECT_NE(cacheKey(a), cacheKey(c));
    RunSpec d = a;
    d.config.l2Options["lineErrorRate"] = 1e-9;
    EXPECT_NE(cacheKey(a), cacheKey(d));
}

TEST(ResultCache, RoundTripsEveryField)
{
    RunSpec spec;
    spec.benchmark = "gcc";
    RunResult result;
    result.design = "TLC";
    result.benchmark = "gcc";
    result.cycles = 123456;
    result.instructions = 20000;
    result.ipc = 1.625;
    result.l2RequestsPer1k = 70.25;
    result.l2MissesPer1k = 0.0625;
    result.meanLookupLatency = 13.1234567890123;
    result.predictablePct = 99.5;
    result.banksPerRequest = 1.0;
    result.networkPowerMw = 321.125;
    result.linkUtilizationPct = 2.75;
    result.closeHitPct = 41.5;
    result.promotesPerInsert = 3205.0;
    result.fastMissPct = 0.5;
    result.multiMatchPct = 3.0;
    result.queueWaitMean = 0.25;
    result.wireMean = 8.5;
    result.bankMean = 4.0;
    result.dramMean = 210.0;
    result.queueWaitSamples = 1401;
    result.wireSamples = 1401;
    result.bankSamples = 1401;
    result.dramSamples = 7;

    ResultCache cache(freshDir("roundtrip"));
    EXPECT_FALSE(cache.load(spec).has_value());
    cache.store(spec, result);
    auto loaded = cache.load(spec);
    ASSERT_TRUE(loaded.has_value());
    EXPECT_EQ(resultJson(spec, result), resultJson(spec, *loaded));
}

TEST(ResultCache, RejectsWrongSpecAndGarbage)
{
    RunSpec spec;
    spec.benchmark = "gcc";
    RunResult result;
    result.design = "TLC";
    result.benchmark = "gcc";
    std::string text = resultJson(spec, result);

    RunSpec other = spec;
    other.benchmark = "mcf";
    EXPECT_TRUE(readResultJson(text, spec).has_value());
    EXPECT_FALSE(readResultJson(text, other).has_value());
    EXPECT_FALSE(readResultJson("not json", spec).has_value());
    EXPECT_FALSE(readResultJson("{}", spec).has_value());

    // A truncated cache file must read as a miss, not a bad result —
    // and the corrupt entry is discarded so the re-run can store a
    // clean replacement.
    ResultCache cache(freshDir("garbage"));
    cache.store(spec, result);
    std::string path = cache.dir() + "/" + cacheKey(spec) + ".json";
    std::ofstream(path) << text.substr(0, text.size() / 2);
    EXPECT_FALSE(cache.load(spec).has_value());
    EXPECT_FALSE(std::filesystem::exists(path));
    cache.store(spec, result);
    EXPECT_TRUE(cache.load(spec).has_value());

    // Arbitrary garbage (not just truncation) is a miss as well.
    std::ofstream(path) << "\xff\xfe garbage not json at all";
    EXPECT_FALSE(cache.load(spec).has_value());
}

TEST(Sweep, AddUniqueDeduplicates)
{
    std::vector<RunSpec> specs;
    RunSpec a;
    a.benchmark = "gcc";
    RunSpec b;
    b.benchmark = "mcf";
    addUnique(specs, a);
    addUnique(specs, b);
    addUnique(specs, a);
    EXPECT_EQ(specs.size(), 2u);
}

TEST(Sweep, ParallelByteIdenticalToSerial)
{
    auto specs = table6Specs();
    ASSERT_EQ(specs.size(), 24u); // 12 benchmarks x {TLC, DNUCA}

    SweepOptions serial;
    serial.jobs = 1;
    serial.captureStats = true;
    serial.verbose = false;
    auto serial_outcome = runSweep(specs, serial);

    SweepOptions parallel = serial;
    parallel.jobs = 8;
    auto parallel_outcome = runSweep(specs, parallel);

    ASSERT_EQ(serial_outcome.results.size(),
              parallel_outcome.results.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
        EXPECT_EQ(resultJson(specs[i], serial_outcome.results[i]),
                  resultJson(specs[i], parallel_outcome.results[i]))
            << specKey(specs[i]);
        EXPECT_EQ(serial_outcome.statsJson[i],
                  parallel_outcome.statsJson[i])
            << specKey(specs[i]);
        EXPECT_FALSE(serial_outcome.statsJson[i].empty());
    }
    EXPECT_EQ(mergedStatsJson(specs, serial_outcome),
              mergedStatsJson(specs, parallel_outcome));
}

TEST(Sweep, WarmCacheExecutesZeroSimulations)
{
    auto specs = table6Specs();

    SweepOptions options;
    options.jobs = 4;
    options.cacheDir = freshDir("warmcache");
    options.verbose = false;

    auto cold = runSweep(specs, options);
    EXPECT_EQ(cold.executed, specs.size());
    EXPECT_EQ(cold.cached, 0u);

    auto warm = runSweep(specs, options);
    EXPECT_EQ(warm.executed, 0u);
    EXPECT_EQ(warm.cached, specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
        EXPECT_EQ(resultJson(specs[i], cold.results[i]),
                  resultJson(specs[i], warm.results[i]))
            << specKey(specs[i]);
    }
}

TEST(Sweep, DdrFaultSweepDeterministic)
{
    // PR 8 acceptance: a multi-core, fault-enabled sweep on the "ddr"
    // backend is byte-identical serial vs parallel and cold vs warm
    // cache — scheduling reorders and refresh make the model richer,
    // not less deterministic.
    auto specs = table6Specs();
    specs.resize(6);
    for (RunSpec &spec : specs) {
        spec.config.cores = 2;
        spec.config.mem.backend = "ddr";
        spec.config.mem.options["channels"] = 1;
        spec.config.mem.options["tREFI"] = 2'000;
        spec.config.fault.enabled = true;
        spec.config.fault.dramStuckBanks = "0@0,5@10000";
    }
    // The non-default machine mints a content-hash suffix, giving the
    // backend its own result-cache namespace.
    EXPECT_NE(specKey(specs[0]).find("/c"), std::string::npos);

    SweepOptions serial;
    serial.jobs = 1;
    serial.captureStats = true;
    serial.verbose = false;
    serial.cacheDir = freshDir("ddrfault");
    auto cold = runSweep(specs, serial);
    EXPECT_EQ(cold.executed, specs.size());

    SweepOptions parallel = serial;
    parallel.jobs = 8;
    parallel.cacheDir.clear(); // no cache: force re-execution
    auto par = runSweep(specs, parallel);

    ASSERT_EQ(cold.results.size(), par.results.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
        EXPECT_EQ(resultJson(specs[i], cold.results[i]),
                  resultJson(specs[i], par.results[i]))
            << specKey(specs[i]);
        EXPECT_EQ(cold.statsJson[i], par.statsJson[i])
            << specKey(specs[i]);
    }

    // The controller stats made it into the captured stats tree.
    EXPECT_NE(cold.statsJson[0].find("row_hits"), std::string::npos);
    EXPECT_NE(cold.statsJson[0].find("lat_bank"), std::string::npos);

    auto warm = runSweep(specs, serial);
    EXPECT_EQ(warm.executed, 0u);
    EXPECT_EQ(warm.cached, specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
        EXPECT_EQ(resultJson(specs[i], cold.results[i]),
                  resultJson(specs[i], warm.results[i]))
            << specKey(specs[i]);
    }
}

TEST(Sweep, MergedStatsEmitsNullForUncapturedRuns)
{
    RunSpec spec;
    spec.benchmark = "gcc";
    SweepOutcome outcome;
    outcome.results.resize(1);
    outcome.statsJson.resize(1);
    std::string merged = mergedStatsJson({spec}, outcome);
    EXPECT_NE(merged.find("\"" + specKey(spec) + "\": null"),
              std::string::npos);
}

TEST(Sweep, MemoHotByteIdenticalToMemoCold)
{
    auto specs = table6Specs();

    SweepOptions options;
    options.jobs = 1;
    options.captureStats = true;
    options.verbose = false;

    // Memo-cold: the physics cache computes every entry from scratch.
    phys::PhysCache::instance().clear();
    auto cold = runSweep(specs, options);

    // Memo-hot: every physics value resolves from the process-wide
    // memo populated by the cold pass. Results must not move by a bit
    // — the memo returns stored bits, never recomputed ones.
    auto hot = runSweep(specs, options);

    ASSERT_EQ(cold.results.size(), hot.results.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
        EXPECT_EQ(resultJson(specs[i], cold.results[i]),
                  resultJson(specs[i], hot.results[i]))
            << specKey(specs[i]);
        EXPECT_EQ(cold.statsJson[i], hot.statsJson[i])
            << specKey(specs[i]);
    }
}

namespace
{

/** RAII guard: enable spatial telemetry for one test body. */
struct SpatialGuard
{
    SpatialGuard()
    {
        metrics::spatialEnabled = true;
        metrics::spatialWindowTicks = 0;
    }
    ~SpatialGuard() { metrics::spatialEnabled = false; }
};

} // namespace

TEST(Telemetry, HeatmapsSerialByteIdenticalToParallel)
{
    // Heatmap rows are keyed by simulated tick, never wall-clock, so
    // the spatial matrices must not move between a 1-worker and an
    // 8-worker sweep.
    auto specs = table6Specs();
    SpatialGuard spatial;

    SweepOptions serial;
    serial.jobs = 1;
    serial.captureStats = true;
    serial.verbose = false;
    auto serial_outcome = runSweep(specs, serial);

    SweepOptions parallel = serial;
    parallel.jobs = 8;
    auto parallel_outcome = runSweep(specs, parallel);

    // The heatmaps are actually present in the captured stats...
    ASSERT_FALSE(serial_outcome.statsJson.empty());
    EXPECT_NE(serial_outcome.statsJson[0].find(
                  "\"kind\": \"heatmap\""),
              std::string::npos);
    // ...and byte-identical across worker counts.
    for (std::size_t i = 0; i < specs.size(); ++i) {
        EXPECT_EQ(serial_outcome.statsJson[i],
                  parallel_outcome.statsJson[i])
            << specKey(specs[i]);
    }
    EXPECT_EQ(mergedStatsJson(specs, serial_outcome),
              mergedStatsJson(specs, parallel_outcome));
}

TEST(Telemetry, HeatmapsMemoHotByteIdenticalToMemoCold)
{
    auto specs = table6Specs();
    SpatialGuard spatial;

    SweepOptions options;
    options.jobs = 1;
    options.captureStats = true;
    options.verbose = false;

    phys::PhysCache::instance().clear();
    auto cold = runSweep(specs, options);
    auto hot = runSweep(specs, options);

    for (std::size_t i = 0; i < specs.size(); ++i) {
        EXPECT_EQ(cold.statsJson[i], hot.statsJson[i])
            << specKey(specs[i]);
    }
}

TEST(Telemetry, DisabledSpatialTelemetryLeavesStatsShapeAlone)
{
    // With the flag off no heatmap objects are even constructed, so
    // the exported stats tree has exactly the pre-telemetry shape —
    // the guarantee that keeps every paper table/figure bit-identical.
    auto specs = table6Specs();
    ASSERT_FALSE(metrics::spatialEnabled);

    SweepOptions options;
    options.jobs = 2;
    options.captureStats = true;
    options.verbose = false;
    auto outcome = runSweep(specs, options);

    for (std::size_t i = 0; i < specs.size(); ++i)
        EXPECT_EQ(outcome.statsJson[i].find("heatmap"),
                  std::string::npos)
            << specKey(specs[i]);
}

TEST(Telemetry, ProfilerChangesNoStatsKey)
{
    // The profiler observes wall-clock only; enabling it must leave
    // every simulation result and every stats key byte-identical.
    auto specs = table6Specs();

    SweepOptions options;
    options.jobs = 2;
    options.captureStats = true;
    options.verbose = false;

    ASSERT_FALSE(prof::enabled());
    auto off = runSweep(specs, options);

    prof::setEnabled(true);
    auto on = runSweep(specs, options);
    prof::setEnabled(false);
    prof::Registry::instance().reset();

    for (std::size_t i = 0; i < specs.size(); ++i) {
        EXPECT_EQ(resultJson(specs[i], off.results[i]),
                  resultJson(specs[i], on.results[i]))
            << specKey(specs[i]);
        EXPECT_EQ(off.statsJson[i], on.statsJson[i])
            << specKey(specs[i]);
    }
}

TEST(Telemetry, SweepWritesMetricsAndManifest)
{
    auto specs = table6Specs();
    std::string dir = freshDir("telemetry");
    std::filesystem::create_directories(dir);

    SweepOptions options;
    options.jobs = 4;
    options.verbose = false;
    options.metricsOut = dir + "/metrics.prom";
    options.manifestOut = dir + "/manifest.jsonl";
    auto outcome = runSweep(specs, options);
    EXPECT_EQ(outcome.executed, specs.size());

    std::ifstream prom(options.metricsOut);
    ASSERT_TRUE(prom.is_open());
    std::stringstream prom_text;
    prom_text << prom.rdbuf();
    EXPECT_NE(prom_text.str().find(
                  "tlsim_sweep_runs_total{result=\"executed\"} 24"),
              std::string::npos);
    EXPECT_NE(prom_text.str().find(
                  "# TYPE tlsim_sweep_run_wall_milliseconds "
                  "histogram"),
              std::string::npos);
    EXPECT_NE(prom_text.str().find(
                  "tlsim_sweep_run_wall_milliseconds_count 24"),
              std::string::npos);

    std::ifstream manifest(options.manifestOut);
    ASSERT_TRUE(manifest.is_open());
    std::size_t records = 0;
    std::string line;
    while (std::getline(manifest, line)) {
        if (line.empty())
            continue;
        ++records;
        EXPECT_NE(line.find("\"schema\": \"tlsim-manifest-v1\""),
                  std::string::npos);
        EXPECT_NE(line.find("\"outcome\": \"executed\""),
                  std::string::npos);
    }
    EXPECT_EQ(records, specs.size());
}

TEST(Sweep, TypedEventsByteIdenticalToLambdaEvents)
{
    // The allocation-free request path (typed MissEvent / FinishEvent
    // / TickCallbackEvent) must schedule the exact same (tick,
    // priority, sequence) stream as the std::function path it
    // replaced. Flipping the toggle between runs is the supported A/B
    // check; both sweeps must agree byte for byte.
    auto specs = table6Specs();

    SweepOptions options;
    options.jobs = 1;
    options.captureStats = true;
    options.verbose = false;

    const bool saved = useTypedHotPathEvents;
    useTypedHotPathEvents = true;
    auto typed = runSweep(specs, options);
    useTypedHotPathEvents = false;
    auto lambda = runSweep(specs, options);
    useTypedHotPathEvents = saved;

    ASSERT_EQ(typed.results.size(), lambda.results.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
        EXPECT_EQ(resultJson(specs[i], typed.results[i]),
                  resultJson(specs[i], lambda.results[i]))
            << specKey(specs[i]);
        EXPECT_EQ(typed.statsJson[i], lambda.statsJson[i])
            << specKey(specs[i]);
    }
}

namespace
{

/** RAII guard: set one environment variable for a test body. */
struct SetEnv
{
    SetEnv(const char *name_, const std::string &value) : name(name_)
    {
        ::setenv(name, value.c_str(), 1);
    }
    ~SetEnv() { ::unsetenv(name); }
    const char *name;
};

/** A handful of table6 specs: enough coverage, sub-second runtime. */
std::vector<RunSpec>
smallSpecs(std::size_t n = 4)
{
    auto specs = table6Specs();
    specs.resize(n);
    return specs;
}

SweepOptions
quietOptions()
{
    SweepOptions options;
    options.jobs = 2;
    options.captureStats = true;
    options.verbose = false;
    return options;
}

} // namespace

TEST(Robustness, ProcessIsolationByteIdenticalToThread)
{
    // The sandbox conformance pin: a forked, pipe-marshalled run is
    // byte-identical (results AND captured stats) to the same run
    // executed in-process, under both remaining isolation modes.
    auto specs = smallSpecs();

    SweepOptions thread = quietOptions();
    thread.isolate = Isolation::Thread;
    auto thread_outcome = runSweep(specs, thread);

    SweepOptions none = quietOptions();
    none.isolate = Isolation::None;
    auto none_outcome = runSweep(specs, none);

    SweepOptions process = quietOptions();
    process.isolate = Isolation::Process;
    auto process_outcome = runSweep(specs, process);

    EXPECT_EQ(process_outcome.failed, 0u);
    for (std::size_t i = 0; i < specs.size(); ++i) {
        EXPECT_EQ(resultJson(specs[i], thread_outcome.results[i]),
                  resultJson(specs[i], process_outcome.results[i]))
            << specKey(specs[i]);
        EXPECT_EQ(resultJson(specs[i], none_outcome.results[i]),
                  resultJson(specs[i], process_outcome.results[i]))
            << specKey(specs[i]);
        EXPECT_EQ(thread_outcome.statsJson[i],
                  process_outcome.statsJson[i])
            << specKey(specs[i]);
        EXPECT_FALSE(process_outcome.statsJson[i].empty());
    }
    EXPECT_EQ(mergedStatsJson(specs, thread_outcome),
              mergedStatsJson(specs, process_outcome));
}

TEST(Robustness, SandboxedCrashIsolatedToOneRun)
{
    // Acceptance: a segfaulting run under --isolate=process becomes
    // one failed run ("signal 11"), and every other run of the sweep
    // is byte-identical to a fault-free sweep.
    auto specs = smallSpecs();

    SweepOptions options = quietOptions();
    options.isolate = Isolation::Process;
    auto clean = runSweep(specs, options);
    ASSERT_EQ(clean.failed, 0u);

    std::size_t victim = 1;
    SweepOutcome crashed;
    {
        SetEnv hook("TLSIM_TEST_CRASH_SPEC", specKey(specs[victim]));
        crashed = runSweep(specs, options);
    }
    EXPECT_EQ(crashed.failed, 1u);
    EXPECT_NE(crashed.results[victim].error.find("signal 11"),
              std::string::npos)
        << crashed.results[victim].error;
    for (std::size_t i = 0; i < specs.size(); ++i) {
        if (i == victim)
            continue;
        EXPECT_EQ(resultJson(specs[i], clean.results[i]),
                  resultJson(specs[i], crashed.results[i]))
            << specKey(specs[i]);
        EXPECT_EQ(clean.statsJson[i], crashed.statsJson[i])
            << specKey(specs[i]);
    }
}

TEST(Robustness, SandboxWallTimeoutKillsHungRun)
{
    auto specs = smallSpecs(2);

    SweepOptions options = quietOptions();
    options.isolate = Isolation::Process;
    options.runTimeoutSec = 0.25;

    SetEnv hook("TLSIM_TEST_HANG_SPEC", specKey(specs[0]));
    auto outcome = runSweep(specs, options);
    EXPECT_EQ(outcome.failed, 1u);
    EXPECT_NE(outcome.results[0].error.find("timeout after"),
              std::string::npos)
        << outcome.results[0].error;
    EXPECT_TRUE(outcome.results[1].error.empty());
}

TEST(Robustness, SandboxCpuLimitKillsSpinningRun)
{
    auto specs = smallSpecs(1);

    SweepOptions options = quietOptions();
    options.jobs = 1;
    options.isolate = Isolation::Process;
    options.rlimitCpuSec = 1;

    SetEnv hook("TLSIM_TEST_HANG_SPEC", specKey(specs[0]));
    auto outcome = runSweep(specs, options);
    EXPECT_EQ(outcome.failed, 1u);
    EXPECT_NE(outcome.results[0].error.find("cpu limit"),
              std::string::npos)
        << outcome.results[0].error;
}

TEST(Robustness, SandboxRssLimitKillsAllocatingRun)
{
    auto specs = smallSpecs(1);

    SweepOptions options = quietOptions();
    options.jobs = 1;
    options.isolate = Isolation::Process;
    options.rlimitRssMb = 256;

    SetEnv hook("TLSIM_TEST_OOM_SPEC", specKey(specs[0]));
    auto outcome = runSweep(specs, options);
    EXPECT_EQ(outcome.failed, 1u);
    EXPECT_NE(outcome.results[0].error.find("rss limit"),
              std::string::npos)
        << outcome.results[0].error;
}

TEST(Robustness, ThreadIsolationRunTimeout)
{
    // Thread mode can't fork, so --run-timeout rides the watchdog's
    // wall deadline, polled from the cores' wait loops.
    auto specs = smallSpecs(1);
    specs[0].config.measure = 30'000'000;

    SweepOptions options = quietOptions();
    options.jobs = 1;
    options.isolate = Isolation::Thread;
    options.runTimeoutSec = 0.05;

    auto outcome = runSweep(specs, options);
    EXPECT_EQ(outcome.failed, 1u);
    EXPECT_NE(outcome.results[0].error.find("run timeout"),
              std::string::npos)
        << outcome.results[0].error;
}

TEST(Robustness, ArmedButUnfiredTimeoutLeavesResultsAlone)
{
    // The watchdog only observes: a run that finishes under its wall
    // deadline must be byte-identical to an untimed one.
    auto specs = smallSpecs(2);

    SweepOptions untimed = quietOptions();
    auto reference = runSweep(specs, untimed);

    SweepOptions timed = quietOptions();
    timed.runTimeoutSec = 3600.0;
    auto guarded = runSweep(specs, timed);

    for (std::size_t i = 0; i < specs.size(); ++i) {
        EXPECT_EQ(resultJson(specs[i], reference.results[i]),
                  resultJson(specs[i], guarded.results[i]))
            << specKey(specs[i]);
        EXPECT_EQ(reference.statsJson[i], guarded.statsJson[i])
            << specKey(specs[i]);
    }
}

TEST(Journal, ResumeRestoresCompletedRunsByteIdentically)
{
    auto specs = smallSpecs();
    std::string dir = freshDir("journal_resume");
    std::filesystem::create_directories(dir);

    SweepOptions options = quietOptions();
    options.journalPath = dir + "/sweep.jsonl";
    auto first = runSweep(specs, options);
    EXPECT_EQ(first.executed, specs.size());

    // Resume against the completed journal: everything restores,
    // nothing executes, and the merged stats document (the --stats-
    // json payload) is byte-identical.
    options.resume = true;
    auto resumed = runSweep(specs, options);
    EXPECT_EQ(resumed.executed, 0u);
    EXPECT_EQ(resumed.restored, specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
        EXPECT_EQ(resultJson(specs[i], first.results[i]),
                  resultJson(specs[i], resumed.results[i]))
            << specKey(specs[i]);
        EXPECT_EQ(first.statsJson[i], resumed.statsJson[i])
            << specKey(specs[i]);
    }
    EXPECT_EQ(mergedStatsJson(specs, first),
              mergedStatsJson(specs, resumed));
}

TEST(Journal, ResumeRequeuesInFlightAndTornRecords)
{
    auto specs = smallSpecs();
    std::string dir = freshDir("journal_requeue");
    std::filesystem::create_directories(dir);
    std::string path = dir + "/sweep.jsonl";

    SweepOptions options = quietOptions();
    options.jobs = 1; // deterministic journal order for the cut
    options.journalPath = path;
    auto first = runSweep(specs, options);
    EXPECT_EQ(first.executed, specs.size());

    // Reconstruct a mid-flight kill: keep the header, the first run's
    // started+done pair, a dangling started for the second run, and a
    // torn final line.
    std::vector<std::string> lines;
    {
        std::ifstream in(path);
        std::string line;
        while (std::getline(in, line))
            lines.push_back(line);
    }
    ASSERT_GE(lines.size(), 4u);
    std::ofstream out(path, std::ios::trunc);
    out << lines[0] << "\n"   // header
        << lines[1] << "\n"   // started #0
        << lines[2] << "\n"   // done #0
        << lines[3] << "\n"   // started #1 (in-flight at the "kill")
        << lines[2].substr(0, lines[2].size() / 2); // torn line
    out.close();

    auto state = journal::loadForResume(path, specs);
    ASSERT_TRUE(state.ok) << state.error;
    EXPECT_EQ(state.restored, 1u);
    EXPECT_EQ(state.inFlight, 1u);

    options.resume = true;
    auto resumed = runSweep(specs, options);
    EXPECT_EQ(resumed.restored, 1u);
    EXPECT_EQ(resumed.executed, specs.size() - 1);
    for (std::size_t i = 0; i < specs.size(); ++i) {
        EXPECT_EQ(resultJson(specs[i], first.results[i]),
                  resultJson(specs[i], resumed.results[i]))
            << specKey(specs[i]);
        EXPECT_EQ(first.statsJson[i], resumed.statsJson[i])
            << specKey(specs[i]);
    }
}

TEST(Journal, RejectsIdentityMismatch)
{
    auto specs = smallSpecs();
    std::string dir = freshDir("journal_identity");
    std::filesystem::create_directories(dir);
    std::string path = dir + "/sweep.jsonl";

    SweepOptions options = quietOptions();
    options.journalPath = path;
    runSweep(specs, options);

    // Different spec list (one budget moved): same machine, different
    // identity — the journal must refuse to resume.
    auto other = specs;
    other[0].config.measure += 1;
    auto state = journal::loadForResume(path, other);
    EXPECT_FALSE(state.ok);
    EXPECT_NE(state.error.find("identity mismatch"),
              std::string::npos)
        << state.error;

    // Different machine: same failure mode.
    auto cmp = specs;
    for (auto &spec : cmp)
        spec.config.cores = 2;
    state = journal::loadForResume(path, cmp);
    EXPECT_FALSE(state.ok);

    // A journal with no header is unusable.
    std::ofstream(path, std::ios::trunc)
        << "{\"schema\": \"tlsim-journal-v1\", \"event\": "
           "\"started\", \"spec\": \"x\"}\n";
    state = journal::loadForResume(path, specs);
    EXPECT_FALSE(state.ok);
    EXPECT_NE(state.error.find("header"), std::string::npos);
}

TEST(Journal, EscapeRoundTripsControlCharacters)
{
    std::string nasty = "line1\nline2\t\"quoted\\\"\r\x01\x1f end";
    EXPECT_EQ(journal::unescapeJson(journal::escapeJson(nasty)),
              nasty);
    // The escaped form is single-line (JSONL-safe).
    EXPECT_EQ(journal::escapeJson(nasty).find('\n'),
              std::string::npos);
}

TEST(Fsck, QuarantinesCorruptEntriesOnly)
{
    auto specs = smallSpecs(3);
    std::string dir = freshDir("fsck");
    ResultCache cache(dir);

    RunResult result;
    result.design = "TLC";
    for (const auto &spec : specs) {
        result.benchmark = spec.benchmark;
        cache.store(spec, result);
    }

    // Corrupt entry 0 (truncate), misfile a copy of entry 1 under a
    // wrong name, and leave a tmp droppings file around.
    std::string path0 = dir + "/" + cacheKey(specs[0]) + ".json";
    std::string text0;
    {
        std::ifstream in(path0);
        std::ostringstream os;
        os << in.rdbuf();
        text0 = os.str();
    }
    std::ofstream(path0, std::ios::trunc)
        << text0.substr(0, text0.size() / 2);
    std::string misfiled = dir + "/0123456789abcdef.json";
    {
        std::ifstream in(dir + "/" + cacheKey(specs[1]) + ".json");
        std::ofstream out(misfiled);
        out << in.rdbuf();
    }
    std::ofstream(dir + "/deadbeef.json.tmp.12345") << "partial";

    auto report = fsckCache(dir);
    EXPECT_EQ(report.scanned, 4u); // 3 entries + the misfiled copy
    EXPECT_EQ(report.valid, 2u);
    EXPECT_EQ(report.quarantined, 2u);
    EXPECT_EQ(report.problems.size(), 2u);

    // Quarantined files moved (preserved, not deleted), healthy ones
    // stayed, and the cache no longer sees the corrupt entry.
    EXPECT_FALSE(std::filesystem::exists(path0));
    EXPECT_TRUE(std::filesystem::exists(
        dir + "/quarantine/" + cacheKey(specs[0]) + ".json"));
    EXPECT_TRUE(std::filesystem::exists(
        dir + "/quarantine/0123456789abcdef.json"));
    EXPECT_FALSE(cache.load(specs[0]).has_value());
    EXPECT_TRUE(cache.load(specs[1]).has_value());
    EXPECT_TRUE(cache.load(specs[2]).has_value());

    // A second pass over the now-clean cache finds nothing to do.
    auto clean = fsckCache(dir);
    EXPECT_EQ(clean.scanned, 2u);
    EXPECT_EQ(clean.quarantined, 0u);
}
