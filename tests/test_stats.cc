/**
 * @file
 * Unit tests for the statistics package.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/stats.hh"

using namespace tlsim;
using namespace tlsim::stats;

TEST(Scalar, StartsAtZero)
{
    StatGroup group("g");
    Scalar s(&group, "s", "desc");
    EXPECT_EQ(s.value(), 0.0);
}

TEST(Scalar, IncrementAndAdd)
{
    StatGroup group("g");
    Scalar s(&group, "s", "desc");
    ++s;
    s += 2.5;
    EXPECT_DOUBLE_EQ(s.value(), 3.5);
}

TEST(Scalar, Assignment)
{
    StatGroup group("g");
    Scalar s(&group, "s", "desc");
    s = 7.0;
    EXPECT_DOUBLE_EQ(s.value(), 7.0);
}

TEST(Scalar, Reset)
{
    StatGroup group("g");
    Scalar s(&group, "s", "desc");
    s += 9;
    group.resetStats();
    EXPECT_EQ(s.value(), 0.0);
}

TEST(Average, MeanCountMinMax)
{
    StatGroup group("g");
    Average a(&group, "a", "desc");
    a.sample(1.0);
    a.sample(2.0);
    a.sample(6.0);
    EXPECT_EQ(a.count(), 3u);
    EXPECT_DOUBLE_EQ(a.mean(), 3.0);
    EXPECT_DOUBLE_EQ(a.minValue(), 1.0);
    EXPECT_DOUBLE_EQ(a.maxValue(), 6.0);
}

TEST(Average, EmptyMeanIsZero)
{
    StatGroup group("g");
    Average a(&group, "a", "desc");
    EXPECT_EQ(a.mean(), 0.0);
    EXPECT_EQ(a.minValue(), 0.0);
}

TEST(Average, Variance)
{
    StatGroup group("g");
    Average a(&group, "a", "desc");
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        a.sample(v);
    EXPECT_NEAR(a.variance(), 4.0, 1e-9);
}

TEST(Average, ResetClearsEverything)
{
    StatGroup group("g");
    Average a(&group, "a", "desc");
    a.sample(5.0);
    a.reset();
    EXPECT_EQ(a.count(), 0u);
    EXPECT_EQ(a.mean(), 0.0);
}

TEST(Distribution, BucketsAndOverflow)
{
    StatGroup group("g");
    Distribution d(&group, "d", "desc", 0.0, 10.0, 10);
    d.sample(-1.0);
    d.sample(0.5);
    d.sample(5.5);
    d.sample(25.0);
    EXPECT_EQ(d.count(), 4u);
    EXPECT_EQ(d.underflow(), 1u);
    EXPECT_EQ(d.overflow(), 1u);
    EXPECT_EQ(d.bucket(0), 1u);
    EXPECT_EQ(d.bucket(5), 1u);
}

TEST(Distribution, MeanOverAllSamples)
{
    StatGroup group("g");
    Distribution d(&group, "d", "desc", 0.0, 100.0, 10);
    d.sample(10.0);
    d.sample(30.0);
    EXPECT_DOUBLE_EQ(d.mean(), 20.0);
}

TEST(Distribution, QuantileMedian)
{
    StatGroup group("g");
    Distribution d(&group, "d", "desc", 0.0, 100.0, 100);
    for (int i = 0; i < 100; ++i)
        d.sample(static_cast<double>(i) + 0.5);
    EXPECT_NEAR(d.quantile(0.5), 50.0, 1.5);
    EXPECT_NEAR(d.quantile(0.9), 90.0, 1.5);
}

TEST(Distribution, BadBoundsPanic)
{
    StatGroup group("g");
    EXPECT_THROW(Distribution(&group, "d", "desc", 10.0, 0.0, 4),
                 PanicError);
}

TEST(Histogram, Log2Buckets)
{
    StatGroup group("g");
    Histogram h(&group, "h", "desc");
    h.sample(0); // bucket 0
    h.sample(1); // bucket 1
    h.sample(2); // bucket 2
    h.sample(3); // bucket 2
    h.sample(1024); // bucket 11
    EXPECT_EQ(h.count(), 5u);
    EXPECT_EQ(h.bucket(0), 1u);
    EXPECT_EQ(h.bucket(1), 1u);
    EXPECT_EQ(h.bucket(2), 2u);
    EXPECT_EQ(h.bucket(11), 1u);
}

TEST(Histogram, MeanTracksSamples)
{
    StatGroup group("g");
    Histogram h(&group, "h", "desc");
    h.sample(10);
    h.sample(20);
    EXPECT_DOUBLE_EQ(h.mean(), 15.0);
}

TEST(Formula, EvaluatesLazily)
{
    StatGroup group("g");
    Scalar s(&group, "s", "desc");
    Formula f(&group, "f", "twice s", [&s]() { return 2 * s.value(); });
    s += 3;
    EXPECT_DOUBLE_EQ(f.value(), 6.0);
    s += 1;
    EXPECT_DOUBLE_EQ(f.value(), 8.0);
}

TEST(StatGroup, DumpContainsNamesAndValues)
{
    StatGroup group("root");
    Scalar s(&group, "counter", "a counter");
    s += 5;
    std::ostringstream os;
    group.dumpStats(os);
    std::string text = os.str();
    EXPECT_NE(text.find("root.counter"), std::string::npos);
    EXPECT_NE(text.find("5"), std::string::npos);
    EXPECT_NE(text.find("a counter"), std::string::npos);
}

TEST(StatGroup, NestedGroupsDumpAndReset)
{
    StatGroup root("root");
    StatGroup child("child", &root);
    Scalar s(&child, "x", "nested");
    s += 2;
    std::ostringstream os;
    root.dumpStats(os);
    EXPECT_NE(os.str().find("root.child.x"), std::string::npos);
    root.resetStats();
    EXPECT_EQ(s.value(), 0.0);
}

TEST(StatGroup, NullParentPanics)
{
    EXPECT_THROW(Scalar(nullptr, "s", "d"), PanicError);
}
