/**
 * @file
 * Unit tests for the discrete-event kernel.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "sim/eventq.hh"

using namespace tlsim;

namespace
{

/** Records its firing tick into a shared log. */
class LogEvent : public Event
{
  public:
    LogEvent(std::vector<int> *log, int id)
        : log(log), id(id)
    {}

    void process() override { log->push_back(id); }
    const char *name() const override { return "LogEvent"; }

  private:
    std::vector<int> *log;
    int id;
};

} // namespace

TEST(EventQueue, StartsEmptyAtTickZero)
{
    EventQueue eq;
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.now(), 0u);
    EXPECT_EQ(eq.nextTick(), MaxTick);
}

TEST(EventQueue, FiresInTimeOrder)
{
    EventQueue eq;
    std::vector<int> log;
    LogEvent a(&log, 1), b(&log, 2), c(&log, 3);
    eq.schedule(&b, 20);
    eq.schedule(&a, 10);
    eq.schedule(&c, 30);
    eq.run();
    EXPECT_EQ(log, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, TiesBreakByScheduleOrder)
{
    EventQueue eq;
    std::vector<int> log;
    LogEvent a(&log, 1), b(&log, 2), c(&log, 3);
    eq.schedule(&c, 5);
    eq.schedule(&a, 5);
    eq.schedule(&b, 5);
    eq.run();
    EXPECT_EQ(log, (std::vector<int>{3, 1, 2}));
}

TEST(EventQueue, PriorityBeatsSequenceAtSameTick)
{
    EventQueue eq;
    std::vector<int> log;
    class PrioEvent : public LogEvent
    {
      public:
        PrioEvent(std::vector<int> *log, int id, int prio)
            : LogEvent(log, id)
        {
            (void)prio;
        }
    };
    LogEvent low(&log, 1);
    std::vector<int> *lp = &log;
    eq.schedule(&low, 5);
    eq.scheduleFunc(
        5, [lp]() { lp->push_back(2); }, -1);
    eq.run();
    EXPECT_EQ(log, (std::vector<int>{2, 1}));
}

TEST(EventQueue, AdvanceToPartial)
{
    EventQueue eq;
    std::vector<int> log;
    LogEvent a(&log, 1), b(&log, 2);
    eq.schedule(&a, 10);
    eq.schedule(&b, 20);
    eq.advanceTo(15);
    EXPECT_EQ(log, (std::vector<int>{1}));
    EXPECT_EQ(eq.now(), 15u);
    EXPECT_EQ(eq.size(), 1u);
}

TEST(EventQueue, AdvanceToInclusive)
{
    EventQueue eq;
    std::vector<int> log;
    LogEvent a(&log, 1);
    eq.schedule(&a, 10);
    eq.advanceTo(10);
    EXPECT_EQ(log.size(), 1u);
}

TEST(EventQueue, DescheduleSkipsEvent)
{
    EventQueue eq;
    std::vector<int> log;
    LogEvent a(&log, 1), b(&log, 2);
    eq.schedule(&a, 10);
    eq.schedule(&b, 20);
    eq.deschedule(&a);
    EXPECT_FALSE(a.scheduled());
    eq.run();
    EXPECT_EQ(log, (std::vector<int>{2}));
}

TEST(EventQueue, RescheduleMovesEvent)
{
    EventQueue eq;
    std::vector<int> log;
    LogEvent a(&log, 1), b(&log, 2);
    eq.schedule(&a, 10);
    eq.schedule(&b, 20);
    eq.reschedule(&a, 30);
    eq.run();
    EXPECT_EQ(log, (std::vector<int>{2, 1}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, LambdaEventsSelfDelete)
{
    EventQueue eq;
    int fired = 0;
    eq.scheduleFunc(5, [&fired]() { ++fired; });
    eq.scheduleFunc(6, [&fired]() { ++fired; });
    eq.run();
    EXPECT_EQ(fired, 2);
    EXPECT_TRUE(eq.empty());
}

TEST(EventQueue, EventsScheduledDuringProcessing)
{
    EventQueue eq;
    std::vector<Tick> ticks;
    eq.scheduleFunc(10, [&]() {
        ticks.push_back(eq.now());
        eq.scheduleFunc(15, [&]() { ticks.push_back(eq.now()); });
    });
    eq.run();
    EXPECT_EQ(ticks, (std::vector<Tick>{10, 15}));
}

TEST(EventQueue, SchedulingInPastPanics)
{
    EventQueue eq;
    eq.scheduleFunc(10, []() {});
    eq.run();
    EXPECT_EQ(eq.now(), 10u);
    EXPECT_THROW(eq.scheduleFunc(5, []() {}), PanicError);
}

TEST(EventQueue, DoubleSchedulePanics)
{
    EventQueue eq;
    std::vector<int> log;
    LogEvent a(&log, 1);
    eq.schedule(&a, 10);
    EXPECT_THROW(eq.schedule(&a, 20), PanicError);
    eq.deschedule(&a);
}

TEST(EventQueue, RunUpToMaxTick)
{
    EventQueue eq;
    int fired = 0;
    eq.scheduleFunc(10, [&]() { ++fired; });
    eq.scheduleFunc(100, [&]() { ++fired; });
    eq.run(50);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.now(), 50u);
    eq.run();
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, NextTickSeesEarliestLive)
{
    EventQueue eq;
    std::vector<int> log;
    LogEvent a(&log, 1), b(&log, 2);
    eq.schedule(&a, 10);
    eq.schedule(&b, 5);
    EXPECT_EQ(eq.nextTick(), 5u);
    eq.deschedule(&b);
    EXPECT_EQ(eq.nextTick(), 10u);
    eq.deschedule(&a);
}

TEST(EventQueue, SizeTracksLiveEvents)
{
    EventQueue eq;
    std::vector<int> log;
    LogEvent a(&log, 1), b(&log, 2);
    eq.schedule(&a, 10);
    eq.schedule(&b, 20);
    EXPECT_EQ(eq.size(), 2u);
    eq.deschedule(&a);
    EXPECT_EQ(eq.size(), 1u);
    eq.run();
    EXPECT_EQ(eq.size(), 0u);
}

TEST(EventQueue, LambdaPoolReusesEvents)
{
    EventQueue eq;
    int fired = 0;
    // Sequential one-shots: after the first fires, every later
    // scheduleFunc should reuse the pooled event instead of
    // allocating a new one.
    for (int i = 0; i < 100; ++i) {
        eq.scheduleFunc(static_cast<Tick>(i + 1),
                        [&fired]() { ++fired; });
        eq.run();
    }
    EXPECT_EQ(fired, 100);
    EXPECT_EQ(eq.lambdaAllocated(), 1u);
    EXPECT_EQ(eq.lambdaPoolSize(), 1u);
    EXPECT_EQ(eq.lambdaOutstanding(), 0u);
}

TEST(EventQueue, LambdaPoolDrainsEmptyAfterRun)
{
    EventQueue eq;
    int fired = 0;
    // Burst of overlapping one-shots, including events scheduled from
    // inside handlers (the L1-miss pattern).
    for (int i = 0; i < 50; ++i) {
        eq.scheduleFunc(static_cast<Tick>(i % 7 + 1), [&]() {
            ++fired;
            if (fired < 200)
                eq.scheduleFunc(eq.now() + 3, [&]() { ++fired; });
        });
    }
    eq.run();
    EXPECT_TRUE(eq.empty());
    // Every machinery-owned lambda must be back in the freelist.
    EXPECT_EQ(eq.lambdaOutstanding(), 0u);
    EXPECT_GT(eq.lambdaAllocated(), 0u);
    EXPECT_LT(eq.lambdaAllocated(), 51u);
}

TEST(EventQueue, SquashedLambdaReturnsToPool)
{
    EventQueue eq;
    int fired = 0;
    Event *ev = eq.scheduleFunc(10, [&fired]() { ++fired; });
    eq.deschedule(ev);
    eq.scheduleFunc(20, [&fired]() { fired += 10; });
    eq.run();
    // The squashed lambda never fires but is reclaimed when its stale
    // heap entry pops.
    EXPECT_EQ(fired, 10);
    EXPECT_EQ(eq.lambdaOutstanding(), 0u);
}

TEST(EventQueue, ManyEventsStressOrdering)
{
    EventQueue eq;
    Tick last = 0;
    bool monotone = true;
    for (int i = 0; i < 1000; ++i) {
        Tick when = static_cast<Tick>((i * 7919) % 1000 + 1);
        eq.scheduleFunc(when, [&, when]() {
            if (eq.now() < last)
                monotone = false;
            last = eq.now();
        });
    }
    eq.run();
    EXPECT_TRUE(monotone);
}

TEST(EventQueue, TickCallbackReceivesScheduledTick)
{
    EventQueue eq;
    std::vector<Tick> seen;
    eq.scheduleCallback(7, [&seen](Tick t) { seen.push_back(t); });
    eq.scheduleCallback(3, [&seen](Tick t) { seen.push_back(t); });
    eq.run();
    EXPECT_EQ(seen, (std::vector<Tick>{3, 7}));
}

TEST(EventQueue, TickCallbackPoolRecycles)
{
    EventQueue eq;
    int fired = 0;
    // Strictly sequential one-shots: a single pooled event should
    // serve every iteration after the first allocation.
    for (int i = 0; i < 100; ++i) {
        eq.scheduleCallback(eq.now() + 1,
                            [&fired](Tick) { ++fired; });
        eq.run();
    }
    EXPECT_EQ(fired, 100);
    EXPECT_EQ(eq.callbackAllocated(), 1u);
    EXPECT_EQ(eq.callbackPoolSize(), 1u);
    EXPECT_EQ(eq.callbackOutstanding(), 0u);
}

TEST(EventQueue, SquashedTickCallbackReturnsToPool)
{
    EventQueue eq;
    int fired = 0;
    Event *ev = eq.scheduleCallback(10, [&fired](Tick) { ++fired; });
    eq.deschedule(ev);
    eq.scheduleCallback(20, [&fired](Tick) { fired += 10; });
    eq.run();
    EXPECT_EQ(fired, 10);
    EXPECT_EQ(eq.callbackOutstanding(), 0u);
}

TEST(EventQueue, TypedAndLambdaPathsInterleaveInOrder)
{
    // The hot-path conversion relies on typed events and lambda
    // events sharing one total order (when, priority, sequence)
    // regardless of which API scheduled them.
    EventQueue eq;
    std::vector<int> log;
    LogEvent typed(&log, 1);
    eq.scheduleFunc(10, [&log]() { log.push_back(2); });
    eq.schedule(&typed, 10);
    eq.scheduleCallback(10, [&log](Tick) { log.push_back(3); });
    eq.run();
    // Same tick, same priority: schedule order wins.
    EXPECT_EQ(log, (std::vector<int>{2, 1, 3}));
}

TEST(EventQueue, StaleCountTracksSquashedEntries)
{
    EventQueue eq;
    int fired = 0;
    std::vector<Event *> events;
    for (int i = 0; i < 10; ++i)
        events.push_back(eq.scheduleCallback(
            static_cast<Tick>(100 + i), [&fired](Tick) { ++fired; }));
    EXPECT_EQ(eq.heapSize(), 10u);
    EXPECT_EQ(eq.staleCount(), 0u);
    for (int i = 0; i < 4; ++i)
        eq.deschedule(events[static_cast<std::size_t>(i)]);
    // Invariant: live entries + stale entries == heap entries.
    EXPECT_EQ(eq.size(), 6u);
    EXPECT_EQ(eq.staleCount(), 4u);
    EXPECT_EQ(eq.heapSize(), eq.size() + eq.staleCount());
    eq.run();
    EXPECT_EQ(fired, 6);
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.staleCount(), 0u);
}

TEST(EventQueue, CompactionBoundsStaleEntries)
{
    EventQueue eq;
    int fired = 0;
    // Far-future churn: schedule and immediately squash, never
    // advancing time, so stale entries can only leave via compaction.
    for (int i = 0; i < 10'000; ++i) {
        Event *ev = eq.scheduleCallback(
            static_cast<Tick>(1'000'000 + i),
            [&fired](Tick) { ++fired; });
        eq.deschedule(ev);
        // The compaction policy caps stale entries at 2x live (once
        // past the small-heap threshold).
        if (eq.heapSize() > 64)
            EXPECT_LE(eq.staleCount(), 2 * eq.size() + 1);
        EXPECT_EQ(eq.heapSize(), eq.size() + eq.staleCount());
    }
    EXPECT_GT(eq.compactions(), 0u);
    EXPECT_EQ(eq.size(), 0u);
    // A live sentinel past every squashed tick forces run() to drain
    // the remaining stale entries (with no live events it would
    // return immediately and leave them for the destructor).
    bool sentinel = false;
    eq.scheduleCallback(2'000'000, [&sentinel](Tick) {
        sentinel = true;
    });
    eq.run();
    EXPECT_EQ(fired, 0);
    EXPECT_TRUE(sentinel);
    // Every squashed pooled callback was reclaimed — by compaction
    // for the bulk, by the stale-entry pop in run() for the tail —
    // rather than leaked into dead heap entries.
    EXPECT_EQ(eq.callbackOutstanding(), 0u);
}

TEST(EventQueue, CompactionPreservesDispatchOrder)
{
    EventQueue eq;
    std::vector<int> log;
    std::vector<Event *> doomed;
    // Interleave keepers and victims at adversarial ticks so the
    // compacted heap must re-establish ordering from scratch.
    for (int i = 0; i < 500; ++i) {
        Tick when = static_cast<Tick>((i * 7919) % 997 + 1);
        eq.scheduleCallback(when, [&log, i](Tick) { log.push_back(i); });
        doomed.push_back(eq.scheduleCallback(
            when, [&log](Tick) { log.push_back(-1); }));
    }
    for (Event *ev : doomed)
        eq.deschedule(ev);
    eq.run();
    ASSERT_EQ(log.size(), 500u);
    // Expected order: by tick, ties by schedule order (ascending i).
    std::vector<int> expected(500);
    for (int i = 0; i < 500; ++i)
        expected[static_cast<std::size_t>(i)] = i;
    std::stable_sort(expected.begin(), expected.end(),
                     [](int a, int b) {
                         return (a * 7919) % 997 < (b * 7919) % 997;
                     });
    EXPECT_EQ(log, expected);
}
