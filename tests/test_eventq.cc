/**
 * @file
 * Unit tests for the discrete-event kernel.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/eventq.hh"

using namespace tlsim;

namespace
{

/** Records its firing tick into a shared log. */
class LogEvent : public Event
{
  public:
    LogEvent(std::vector<int> *log, int id)
        : log(log), id(id)
    {}

    void process() override { log->push_back(id); }
    const char *name() const override { return "LogEvent"; }

  private:
    std::vector<int> *log;
    int id;
};

} // namespace

TEST(EventQueue, StartsEmptyAtTickZero)
{
    EventQueue eq;
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.now(), 0u);
    EXPECT_EQ(eq.nextTick(), MaxTick);
}

TEST(EventQueue, FiresInTimeOrder)
{
    EventQueue eq;
    std::vector<int> log;
    LogEvent a(&log, 1), b(&log, 2), c(&log, 3);
    eq.schedule(&b, 20);
    eq.schedule(&a, 10);
    eq.schedule(&c, 30);
    eq.run();
    EXPECT_EQ(log, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, TiesBreakByScheduleOrder)
{
    EventQueue eq;
    std::vector<int> log;
    LogEvent a(&log, 1), b(&log, 2), c(&log, 3);
    eq.schedule(&c, 5);
    eq.schedule(&a, 5);
    eq.schedule(&b, 5);
    eq.run();
    EXPECT_EQ(log, (std::vector<int>{3, 1, 2}));
}

TEST(EventQueue, PriorityBeatsSequenceAtSameTick)
{
    EventQueue eq;
    std::vector<int> log;
    class PrioEvent : public LogEvent
    {
      public:
        PrioEvent(std::vector<int> *log, int id, int prio)
            : LogEvent(log, id)
        {
            (void)prio;
        }
    };
    LogEvent low(&log, 1);
    std::vector<int> *lp = &log;
    eq.schedule(&low, 5);
    eq.scheduleFunc(
        5, [lp]() { lp->push_back(2); }, -1);
    eq.run();
    EXPECT_EQ(log, (std::vector<int>{2, 1}));
}

TEST(EventQueue, AdvanceToPartial)
{
    EventQueue eq;
    std::vector<int> log;
    LogEvent a(&log, 1), b(&log, 2);
    eq.schedule(&a, 10);
    eq.schedule(&b, 20);
    eq.advanceTo(15);
    EXPECT_EQ(log, (std::vector<int>{1}));
    EXPECT_EQ(eq.now(), 15u);
    EXPECT_EQ(eq.size(), 1u);
}

TEST(EventQueue, AdvanceToInclusive)
{
    EventQueue eq;
    std::vector<int> log;
    LogEvent a(&log, 1);
    eq.schedule(&a, 10);
    eq.advanceTo(10);
    EXPECT_EQ(log.size(), 1u);
}

TEST(EventQueue, DescheduleSkipsEvent)
{
    EventQueue eq;
    std::vector<int> log;
    LogEvent a(&log, 1), b(&log, 2);
    eq.schedule(&a, 10);
    eq.schedule(&b, 20);
    eq.deschedule(&a);
    EXPECT_FALSE(a.scheduled());
    eq.run();
    EXPECT_EQ(log, (std::vector<int>{2}));
}

TEST(EventQueue, RescheduleMovesEvent)
{
    EventQueue eq;
    std::vector<int> log;
    LogEvent a(&log, 1), b(&log, 2);
    eq.schedule(&a, 10);
    eq.schedule(&b, 20);
    eq.reschedule(&a, 30);
    eq.run();
    EXPECT_EQ(log, (std::vector<int>{2, 1}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, LambdaEventsSelfDelete)
{
    EventQueue eq;
    int fired = 0;
    eq.scheduleFunc(5, [&fired]() { ++fired; });
    eq.scheduleFunc(6, [&fired]() { ++fired; });
    eq.run();
    EXPECT_EQ(fired, 2);
    EXPECT_TRUE(eq.empty());
}

TEST(EventQueue, EventsScheduledDuringProcessing)
{
    EventQueue eq;
    std::vector<Tick> ticks;
    eq.scheduleFunc(10, [&]() {
        ticks.push_back(eq.now());
        eq.scheduleFunc(15, [&]() { ticks.push_back(eq.now()); });
    });
    eq.run();
    EXPECT_EQ(ticks, (std::vector<Tick>{10, 15}));
}

TEST(EventQueue, SchedulingInPastPanics)
{
    EventQueue eq;
    eq.scheduleFunc(10, []() {});
    eq.run();
    EXPECT_EQ(eq.now(), 10u);
    EXPECT_THROW(eq.scheduleFunc(5, []() {}), PanicError);
}

TEST(EventQueue, DoubleSchedulePanics)
{
    EventQueue eq;
    std::vector<int> log;
    LogEvent a(&log, 1);
    eq.schedule(&a, 10);
    EXPECT_THROW(eq.schedule(&a, 20), PanicError);
    eq.deschedule(&a);
}

TEST(EventQueue, RunUpToMaxTick)
{
    EventQueue eq;
    int fired = 0;
    eq.scheduleFunc(10, [&]() { ++fired; });
    eq.scheduleFunc(100, [&]() { ++fired; });
    eq.run(50);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.now(), 50u);
    eq.run();
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, NextTickSeesEarliestLive)
{
    EventQueue eq;
    std::vector<int> log;
    LogEvent a(&log, 1), b(&log, 2);
    eq.schedule(&a, 10);
    eq.schedule(&b, 5);
    EXPECT_EQ(eq.nextTick(), 5u);
    eq.deschedule(&b);
    EXPECT_EQ(eq.nextTick(), 10u);
    eq.deschedule(&a);
}

TEST(EventQueue, SizeTracksLiveEvents)
{
    EventQueue eq;
    std::vector<int> log;
    LogEvent a(&log, 1), b(&log, 2);
    eq.schedule(&a, 10);
    eq.schedule(&b, 20);
    EXPECT_EQ(eq.size(), 2u);
    eq.deschedule(&a);
    EXPECT_EQ(eq.size(), 1u);
    eq.run();
    EXPECT_EQ(eq.size(), 0u);
}

TEST(EventQueue, LambdaPoolReusesEvents)
{
    EventQueue eq;
    int fired = 0;
    // Sequential one-shots: after the first fires, every later
    // scheduleFunc should reuse the pooled event instead of
    // allocating a new one.
    for (int i = 0; i < 100; ++i) {
        eq.scheduleFunc(static_cast<Tick>(i + 1),
                        [&fired]() { ++fired; });
        eq.run();
    }
    EXPECT_EQ(fired, 100);
    EXPECT_EQ(eq.lambdaAllocated(), 1u);
    EXPECT_EQ(eq.lambdaPoolSize(), 1u);
    EXPECT_EQ(eq.lambdaOutstanding(), 0u);
}

TEST(EventQueue, LambdaPoolDrainsEmptyAfterRun)
{
    EventQueue eq;
    int fired = 0;
    // Burst of overlapping one-shots, including events scheduled from
    // inside handlers (the L1-miss pattern).
    for (int i = 0; i < 50; ++i) {
        eq.scheduleFunc(static_cast<Tick>(i % 7 + 1), [&]() {
            ++fired;
            if (fired < 200)
                eq.scheduleFunc(eq.now() + 3, [&]() { ++fired; });
        });
    }
    eq.run();
    EXPECT_TRUE(eq.empty());
    // Every machinery-owned lambda must be back in the freelist.
    EXPECT_EQ(eq.lambdaOutstanding(), 0u);
    EXPECT_GT(eq.lambdaAllocated(), 0u);
    EXPECT_LT(eq.lambdaAllocated(), 51u);
}

TEST(EventQueue, SquashedLambdaReturnsToPool)
{
    EventQueue eq;
    int fired = 0;
    Event *ev = eq.scheduleFunc(10, [&fired]() { ++fired; });
    eq.deschedule(ev);
    eq.scheduleFunc(20, [&fired]() { fired += 10; });
    eq.run();
    // The squashed lambda never fires but is reclaimed when its stale
    // heap entry pops.
    EXPECT_EQ(fired, 10);
    EXPECT_EQ(eq.lambdaOutstanding(), 0u);
}

TEST(EventQueue, ManyEventsStressOrdering)
{
    EventQueue eq;
    Tick last = 0;
    bool monotone = true;
    for (int i = 0; i < 1000; ++i) {
        Tick when = static_cast<Tick>((i * 7919) % 1000 + 1);
        eq.scheduleFunc(when, [&, when]() {
            if (eq.now() < last)
                monotone = false;
            last = eq.now();
        });
    }
    eq.run();
    EXPECT_TRUE(monotone);
}
