/**
 * @file
 * Unit and property tests for the generic set-associative array.
 */

#include <gtest/gtest.h>

#include "mem/setassoc.hh"
#include "sim/rng.hh"

using namespace tlsim;
using namespace tlsim::mem;

TEST(SetAssoc, MissOnEmpty)
{
    SetAssocArray array(16, 2);
    EXPECT_FALSE(array.lookup(0x1234).has_value());
}

TEST(SetAssoc, InsertThenHit)
{
    SetAssocArray array(16, 2);
    array.insert(0x1234, 1, false);
    auto way = array.lookup(0x1234);
    ASSERT_TRUE(way.has_value());
}

TEST(SetAssoc, DistinctSetsDoNotCollide)
{
    SetAssocArray array(16, 1);
    array.insert(0, 1, false);
    array.insert(1, 2, false);
    EXPECT_TRUE(array.lookup(0).has_value());
    EXPECT_TRUE(array.lookup(1).has_value());
}

TEST(SetAssoc, LruEviction)
{
    SetAssocArray array(1, 2); // one set, two ways
    array.insert(0x10, 1, false);
    array.insert(0x20, 2, false);
    auto evicted = array.insert(0x30, 3, false);
    ASSERT_TRUE(evicted.has_value());
    EXPECT_EQ(evicted->blockAddr, 0x10u); // oldest goes
    EXPECT_FALSE(array.lookup(0x10).has_value());
    EXPECT_TRUE(array.lookup(0x20).has_value());
    EXPECT_TRUE(array.lookup(0x30).has_value());
}

TEST(SetAssoc, TouchRefreshesLru)
{
    SetAssocArray array(1, 2);
    array.insert(0x10, 1, false);
    array.insert(0x20, 2, false);
    auto way = array.lookup(0x10);
    array.touch(0x10, *way, 3, false);
    auto evicted = array.insert(0x30, 4, false);
    ASSERT_TRUE(evicted.has_value());
    EXPECT_EQ(evicted->blockAddr, 0x20u); // 0x10 was refreshed
}

TEST(SetAssoc, DirtyTracking)
{
    SetAssocArray array(1, 1);
    array.insert(0x10, 1, true);
    auto evicted = array.insert(0x20, 2, false);
    ASSERT_TRUE(evicted.has_value());
    EXPECT_TRUE(evicted->dirty);
    auto evicted2 = array.insert(0x30, 3, false);
    ASSERT_TRUE(evicted2.has_value());
    EXPECT_FALSE(evicted2->dirty);
}

TEST(SetAssoc, TouchMakesDirty)
{
    SetAssocArray array(1, 1);
    array.insert(0x10, 1, false);
    auto way = array.lookup(0x10);
    array.touch(0x10, *way, 2, true);
    auto evicted = array.insert(0x20, 3, false);
    ASSERT_TRUE(evicted->dirty);
}

TEST(SetAssoc, EvictionAddressRoundTrips)
{
    SetAssocArray array(64, 4);
    Addr addr = 0xdeadbe;
    array.insert(addr, 1, false);
    for (int i = 0; i < 4; ++i) {
        // Fill the same set with conflicting blocks.
        array.insert(addr + 64 * (i + 1), 2 + i, false);
    }
    // The original must have been evicted with its full address.
    EXPECT_FALSE(array.lookup(addr).has_value());
}

TEST(SetAssoc, InvalidateRemovesBlock)
{
    SetAssocArray array(16, 2);
    array.insert(0x55, 1, false);
    EXPECT_TRUE(array.invalidate(0x55));
    EXPECT_FALSE(array.lookup(0x55).has_value());
    EXPECT_FALSE(array.invalidate(0x55));
}

TEST(SetAssoc, ValidCount)
{
    SetAssocArray array(16, 2);
    EXPECT_EQ(array.validCount(), 0u);
    array.insert(1, 1, false);
    array.insert(2, 2, false);
    EXPECT_EQ(array.validCount(), 2u);
}

TEST(SetAssoc, PartialTagMatchesCountsWays)
{
    SetAssocArray array(16, 4);
    // Two blocks in set 0 whose tags share the low 6 bits.
    Addr a = 0 | (Addr(0x01) << 4); // tag 0x01
    Addr b = 0 | (Addr(0x41) << 4); // tag 0x41: same low-6 bits
    Addr c = 0 | (Addr(0x02) << 4); // tag 0x02: different
    array.insert(a, 1, false);
    array.insert(b, 2, false);
    array.insert(c, 3, false);
    EXPECT_EQ(array.partialTagMatches(a, 6), 2);
    EXPECT_EQ(array.partialTagMatches(c, 6), 1);
    // Wider partial tags disambiguate.
    EXPECT_EQ(array.partialTagMatches(a, 8), 1);
}

TEST(SetAssoc, VictimPrefersInvalid)
{
    SetAssocArray array(1, 4);
    array.insert(0x10, 10, false);
    EXPECT_NE(array.victimWay(0), 0u); // way 0 is valid, prefer empty
}

TEST(SetAssoc, NonPowerOfTwoSetsPanics)
{
    EXPECT_THROW(SetAssocArray(15, 2), PanicError);
}

TEST(SetAssoc, TouchWrongBlockPanics)
{
    SetAssocArray array(16, 2);
    array.insert(0x10, 1, false);
    EXPECT_THROW(array.touch(0x20, 0, 2, false), PanicError);
}

/** Property: capacity is never exceeded and LRU victims are oldest. */
class SetAssocSweep
    : public ::testing::TestWithParam<std::pair<std::uint32_t,
                                                std::uint32_t>>
{};

TEST_P(SetAssocSweep, RandomizedLruInvariant)
{
    auto [sets, ways] = GetParam();
    SetAssocArray array(sets, ways);
    Rng rng(sets * 131 + ways);
    std::uint64_t counter = 0;
    for (int i = 0; i < 5000; ++i) {
        Addr addr = rng.below(sets * ways * 4);
        ++counter;
        auto way = array.lookup(addr);
        if (way) {
            array.touch(addr, *way, counter, false);
        } else {
            array.insert(addr, counter, false);
        }
        EXPECT_LE(array.validCount(),
                  static_cast<std::uint64_t>(sets) * ways);
    }
    EXPECT_GT(array.validCount(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SetAssocSweep,
    ::testing::Values(std::make_pair(1u, 1u), std::make_pair(1u, 8u),
                      std::make_pair(16u, 2u), std::make_pair(64u, 4u),
                      std::make_pair(512u, 4u)));
