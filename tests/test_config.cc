/**
 * @file
 * Tests for the declarative SystemConfig (JSON round-trip, content
 * hashing), the L2 design registry, and multi-core determinism.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "harness/config.hh"
#include "harness/sweep/resultcache.hh"
#include "harness/sweep/sweep.hh"
#include "harness/system.hh"
#include "mem/dram.hh"
#include "mem/l2registry.hh"
#include "phys/technology.hh"
#include "sim/logging.hh"
#include "workload/profile.hh"

using namespace tlsim;
using namespace tlsim::harness;

namespace
{

/** A config exercising every non-default field class. */
SystemConfig
fancyConfig()
{
    SystemConfig config;
    config.cores = 4;
    config.design = "DNUCA";
    config.technologyNm = 32;
    config.core.robEntries = 96;
    config.l1i.bytes = 32 * 1024;
    config.l1d.ways = 4;
    config.l1d.mshrs = 16;
    config.l2Options["promoteOnHit"] = 0;
    config.l2Options["insertionBank"] = 3;
    config.mem.backend = "ddr";
    config.mem.options["tCAS"] = 36;
    config.mem.options["channels"] = 4;
    config.fault.enabled = true;
    config.fault.dramStuckBanks = "3@1000";
    config.functionalWarm = 1'000'000;
    config.warmup = 10'000;
    config.measure = 50'000;
    config.coreQuantum = 5'000;
    return config;
}

} // namespace

TEST(SystemConfig, JsonRoundTripIsIdentity)
{
    SystemConfig original = fancyConfig();
    std::string json = configToJson(original);
    SystemConfig loaded = loadConfigJson(json);
    EXPECT_EQ(loaded, original);
    // Save -> load -> save is byte-stable.
    EXPECT_EQ(configToJson(loaded), json);
    // And the identity survives the trip.
    EXPECT_EQ(loaded.contentHash(), original.contentHash());
    EXPECT_EQ(loaded.canonicalKey(), original.canonicalKey());
}

TEST(SystemConfig, DefaultRoundTripsToo)
{
    SystemConfig config;
    EXPECT_EQ(loadConfigJson(configToJson(config)), config);
    EXPECT_TRUE(config.isDefaultMachine());
}

TEST(SystemConfig, ContentHashSeesEveryField)
{
    SystemConfig base;
    std::uint64_t h = base.contentHash();

    auto mutated = [&](auto &&change) {
        SystemConfig config;
        change(config);
        return config.contentHash();
    };
    EXPECT_NE(h, mutated([](SystemConfig &c) { c.cores = 2; }));
    EXPECT_NE(h, mutated([](SystemConfig &c) { c.design = "SNUCA2"; }));
    EXPECT_NE(h, mutated([](SystemConfig &c) { c.technologyNm = 65; }));
    EXPECT_NE(h,
              mutated([](SystemConfig &c) { c.core.robEntries += 1; }));
    EXPECT_NE(h, mutated([](SystemConfig &c) { c.l1i.ways = 4; }));
    EXPECT_NE(h, mutated([](SystemConfig &c) { c.l1d.bytes *= 2; }));
    EXPECT_NE(h, mutated([](SystemConfig &c) {
        c.l2Options["lineErrorRate"] = 1e-9;
    }));
    EXPECT_NE(h, mutated([](SystemConfig &c) { c.warmup += 1; }));
    EXPECT_NE(h, mutated([](SystemConfig &c) { c.measure += 1; }));
    EXPECT_NE(h, mutated([](SystemConfig &c) {
        c.functionalWarm += 1;
    }));
    EXPECT_NE(h, mutated([](SystemConfig &c) { c.coreQuantum += 1; }));

    // Stable across equal values.
    EXPECT_EQ(h, SystemConfig{}.contentHash());
}

TEST(SystemConfig, MachineHashIgnoresDesignAndBudgets)
{
    SystemConfig base;
    SystemConfig other_design = base;
    other_design.design = "DNUCA";
    other_design.warmup += 7;
    other_design.measure += 7;
    other_design.functionalWarm += 7;
    EXPECT_EQ(base.machineHash(), other_design.machineHash());
    EXPECT_TRUE(other_design.isDefaultMachine());

    SystemConfig cmp = base;
    cmp.cores = 4;
    EXPECT_NE(base.machineHash(), cmp.machineHash());
    EXPECT_FALSE(cmp.isDefaultMachine());
}

TEST(SystemConfig, DefaultMemBackendLeavesKeysUntouched)
{
    // PR 8 invariant: a default MemConfig must leave cache/spec keys
    // byte-identical to the pre-registry encoding, so no on-disk
    // ResultCache entry or paper output is invalidated.
    SystemConfig config;
    EXPECT_EQ(config.mem, MemConfig{});
    EXPECT_EQ(config.canonicalKey().find("mem."), std::string::npos);
    EXPECT_EQ(config.canonicalKey().find("dramStuckBanks"),
              std::string::npos);
    EXPECT_TRUE(config.isDefaultMachine());
}

TEST(SystemConfig, MemBackendChangesMachineHash)
{
    SystemConfig base;
    SystemConfig ddr = base;
    ddr.mem.backend = "ddr";
    EXPECT_NE(base.machineHash(), ddr.machineHash());
    EXPECT_NE(base.canonicalKey(), ddr.canonicalKey());
    EXPECT_FALSE(ddr.isDefaultMachine());
    EXPECT_NE(ddr.canonicalKey().find("mem.backend=ddr"),
              std::string::npos);

    // Options alone (same backend) mint a different machine too.
    SystemConfig tuned = ddr;
    tuned.mem.options["tCAS"] = 36;
    EXPECT_NE(ddr.machineHash(), tuned.machineHash());
    EXPECT_NE(ddr.contentHash(), tuned.contentHash());
}

TEST(SystemConfig, MemConfigRoundTripsThroughJson)
{
    SystemConfig config;
    config.mem.backend = "ddr";
    config.mem.options["rowBytes"] = 65536;
    config.mem.options["fcfs"] = 1;
    config.fault.enabled = true;
    config.fault.dramStuckBanks = "0@0,17@5000";
    SystemConfig loaded = loadConfigJson(configToJson(config));
    EXPECT_EQ(loaded, config);
    EXPECT_EQ(loaded.mem.backend, "ddr");
    EXPECT_EQ(loaded.mem.options, config.mem.options);
    EXPECT_EQ(loaded.fault.dramStuckBanks, "0@0,17@5000");
    EXPECT_EQ(configToJson(loaded), configToJson(config));
}

TEST(SystemConfig, LoadRejectsMalformedInput)
{
    EXPECT_THROW(loadConfigJson("not json"), FatalError);
    EXPECT_THROW(loadConfigJson("{}"), FatalError);
    EXPECT_THROW(loadConfigJson(R"({"schema": "bogus"})"), FatalError);

    SystemConfig zero_cores;
    zero_cores.cores = 0;
    EXPECT_THROW(loadConfigJson(configToJson(zero_cores)), FatalError);
}

TEST(Registry, KnowsThePaperDesigns)
{
    for (DesignKind kind : allDesigns())
        EXPECT_TRUE(l2::Registry::known(designName(kind)))
            << designName(kind);
    EXPECT_FALSE(l2::Registry::known("NOPE"));
    EXPECT_EQ(l2::Registry::names().size(), 6u);
}

TEST(Registry, RejectsUnknownNamesListingKnownOnes)
{
    EventQueue eq;
    stats::StatGroup root("root");
    mem::Dram dram(eq, &root);
    l2::DesignOptions options;
    l2::BuildContext ctx{eq, &root, dram, phys::tech45(), options};
    try {
        l2::Registry::build("NOPE", ctx);
        FAIL() << "build() accepted an unknown design name";
    } catch (const FatalError &err) {
        std::string message = err.what();
        EXPECT_NE(message.find("NOPE"), std::string::npos) << message;
        // The error teaches the valid names.
        EXPECT_NE(message.find("TLC"), std::string::npos) << message;
        EXPECT_NE(message.find("DNUCA"), std::string::npos) << message;
    }
}

TEST(Registry, RejectsUnknownDesignOptions)
{
    EventQueue eq;
    stats::StatGroup root("root");
    mem::Dram dram(eq, &root);
    l2::DesignOptions options{{"definitelyNotAKnob", 1.0}};
    l2::BuildContext ctx{eq, &root, dram, phys::tech45(), options};
    EXPECT_THROW(l2::Registry::build("TLC", ctx), FatalError);
}

TEST(MultiCore, SystemBuildsPerCoreStats)
{
    SystemConfig config;
    config.cores = 2;
    System system(config);
    EXPECT_EQ(system.numCores(), 2);
    EXPECT_EQ(system.core(0).coreId(), 0);
    EXPECT_EQ(system.core(1).coreId(), 1);

    std::ostringstream os;
    system.root().dumpStatsJson(os);
    std::string json = os.str();
    EXPECT_NE(json.find("\"core0\""), std::string::npos);
    EXPECT_NE(json.find("\"core1\""), std::string::npos);
}

TEST(MultiCore, SameSeedSameCycles)
{
    SystemConfig config;
    config.cores = 2;
    config.functionalWarm = 50'000;
    config.warmup = 2'000;
    config.measure = 5'000;
    const auto &profile = workload::profileByName("gcc");

    RunResult a = runBenchmark(config, profile, /*run_seed=*/7);
    RunResult b = runBenchmark(config, profile, /*run_seed=*/7);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_GT(a.cycles, 0u);
    // Both cores' measured instructions count.
    EXPECT_EQ(a.instructions, config.measure * 2);

    RunResult c = runBenchmark(config, profile, /*run_seed=*/8);
    EXPECT_NE(a.cycles, c.cycles);
}

TEST(MultiCore, SweepParallelMatchesSerial)
{
    using namespace tlsim::harness::sweep;

    std::vector<RunSpec> specs;
    for (const char *bench : {"gcc", "mcf", "apache"}) {
        RunSpec spec;
        spec.benchmark = bench;
        spec.config.cores = 2;
        spec.config.design = "TLC";
        spec.config.functionalWarm = 50'000;
        spec.config.warmup = 2'000;
        spec.config.measure = 5'000;
        specs.push_back(spec);
    }

    SweepOptions serial;
    serial.jobs = 1;
    serial.verbose = false;
    auto serial_outcome = runSweep(specs, serial);

    SweepOptions parallel = serial;
    parallel.jobs = 4;
    auto parallel_outcome = runSweep(specs, parallel);

    for (std::size_t i = 0; i < specs.size(); ++i) {
        std::ostringstream a, b;
        writeResultJson(a, specs[i], serial_outcome.results[i]);
        writeResultJson(b, specs[i], parallel_outcome.results[i]);
        EXPECT_EQ(a.str(), b.str()) << specKey(specs[i]);
    }
}
