/**
 * @file
 * Tests for TLC's end-to-end ECC retry path (error injection).
 */

#include <gtest/gtest.h>

#include "mem/dram.hh"
#include "phys/technology.hh"
#include "tlc/tlccache.hh"

using namespace tlsim;
using namespace tlsim::tlc;
using tlsim::mem::AccessType;

namespace
{

struct Fixture
{
    explicit Fixture(double error_rate)
        : root("root"), dram(eq, &root), cfg(makeConfig(error_rate)),
          cache(eq, &root, dram, phys::tech45(), cfg)
    {}

    static TlcConfig
    makeConfig(double error_rate)
    {
        TlcConfig cfg = baseTlc();
        cfg.lineErrorRate = error_rate;
        return cfg;
    }

    EventQueue eq;
    stats::StatGroup root;
    mem::Dram dram;
    TlcConfig cfg;
    TlcCache cache;
};

} // namespace

TEST(Ecc, CleanLinesNeverRetry)
{
    Fixture f(0.0);
    for (Addr a = 0; a < 50; ++a) {
        f.cache.accessFunctional(a, AccessType::Load);
        f.cache.access(a, AccessType::Load, f.eq.now() + 100,
                       [](Tick) {});
        f.eq.run();
    }
    EXPECT_EQ(f.cache.eccRetries.value(), 0.0);
}

TEST(Ecc, CertainErrorsAlwaysRetry)
{
    Fixture f(1.0);
    f.cache.accessFunctional(0x10, AccessType::Load);
    Tick issue = 100, done = 0;
    f.cache.access(0x10, AccessType::Load, issue,
                   [&](Tick t) { done = t; });
    f.eq.run();
    EXPECT_EQ(f.cache.eccRetries.value(), 1.0);
    // The retry is a full second round trip.
    EXPECT_GT(done - issue,
              f.cache.uncontendedLoadLatency(0x10) + 5);
    EXPECT_EQ(f.cache.predictableLookups.value(), 0.0);
}

TEST(Ecc, RetryRateTracksErrorRate)
{
    Fixture f(0.25);
    const int n = 2000;
    for (int i = 0; i < n; ++i) {
        Addr a = static_cast<Addr>(i % 64);
        f.cache.accessFunctional(a, AccessType::Load);
        f.cache.access(a, AccessType::Load, f.eq.now() + 50,
                       [](Tick) {});
        f.eq.run();
    }
    double rate = f.cache.eccRetries.value() / n;
    EXPECT_NEAR(rate, 0.25, 0.04);
}

TEST(Ecc, RetriedLookupsStillReturnData)
{
    Fixture f(1.0);
    f.cache.accessFunctional(0x20, AccessType::Load);
    bool delivered = false;
    f.cache.access(0x20, AccessType::Load, 100,
                   [&](Tick) { delivered = true; });
    f.eq.run();
    EXPECT_TRUE(delivered);
    EXPECT_EQ(f.cache.hits.value(), 1.0);
}

TEST(Ecc, DeterministicInjection)
{
    auto run_once = []() {
        Fixture f(0.3);
        for (int i = 0; i < 500; ++i) {
            Addr a = static_cast<Addr>(i % 32);
            f.cache.accessFunctional(a, AccessType::Load);
            f.cache.access(a, AccessType::Load, f.eq.now() + 50,
                           [](Tick) {});
            f.eq.run();
        }
        return f.cache.eccRetries.value();
    };
    EXPECT_EQ(run_once(), run_once());
}
