/**
 * @file
 * Tests for the `tlt` v1 binary trace format: encode/decode round
 * trips, instruction accounting, seeking, wrapping, the text-format
 * converter, and rejection of malformed input.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "sim/logging.hh"
#include "workload/generator.hh"
#include "workload/tracefile.hh"

using namespace tlsim;
using namespace tlsim::workload;
using tlsim::cpu::TraceRecord;

namespace
{

TraceRecord
rec(std::uint32_t gap, bool ifetch, mem::AccessType type, Addr addr,
    bool dep = false, bool mispredict = false)
{
    TraceRecord r;
    r.gap = gap;
    r.isIFetch = ifetch;
    if (!ifetch)
        r.type = type; // type is meaningless for ifetch records
    r.blockAddr = addr;
    r.dependsOnPrev = dep;
    r.mispredict = mispredict;
    return r;
}

/** Hand-built record list covering the encoder's edge cases. */
std::vector<TraceRecord>
edgeRecords()
{
    using mem::AccessType;
    return {
        // Inline gaps (0..14), escaped gaps (>= 15), large gaps.
        rec(0, false, AccessType::Load, 0x1000),
        rec(14, false, AccessType::Store, 0x1001),
        rec(15, false, AccessType::Load, 0x1000), // zero delta
        rec(200, false, AccessType::Load, 0x0),   // negative delta
        rec(100000, true, AccessType::InstFetch, 0x400000),
        // Interleaved streams: each keeps its own delta register.
        rec(3, false, AccessType::Load, 0x2000, true),
        rec(0, true, AccessType::InstFetch, 0x400001, false, true),
        rec(1, false, AccessType::Store, 0x1fff),
        rec(2, true, AccessType::InstFetch, 0x3fffff),
        // A huge forward jump exercises multi-byte varints.
        rec(7, false, AccessType::Load, Addr(1) << 40),
        rec(0, false, AccessType::Load, 0x1000),
    };
}

std::uint64_t
instructionsOf(const std::vector<TraceRecord> &records)
{
    std::uint64_t n = 0;
    for (const TraceRecord &r : records)
        n += r.gap + (r.isIFetch ? 0 : 1);
    return n;
}

TraceFile
encode(const std::vector<TraceRecord> &records,
       std::uint32_t stride = tltDefaultIndexStride)
{
    TraceFileWriter writer(stride);
    for (const TraceRecord &r : records)
        writer.append(r);
    std::ostringstream os(std::ios::binary);
    writer.finish(os);
    const std::string &bytes = os.str();
    return TraceFile::fromBytes(
        std::vector<std::uint8_t>(bytes.begin(), bytes.end()),
        "<test>");
}

void
expectEqual(const TraceRecord &a, const TraceRecord &b)
{
    EXPECT_EQ(a.gap, b.gap);
    EXPECT_EQ(a.isIFetch, b.isIFetch);
    if (!a.isIFetch)
        EXPECT_EQ(a.type, b.type);
    EXPECT_EQ(a.blockAddr, b.blockAddr);
    EXPECT_EQ(a.dependsOnPrev, b.dependsOnPrev);
    EXPECT_EQ(a.mispredict, b.mispredict);
}

} // namespace

TEST(TraceFile, RoundTripPreservesEveryField)
{
    auto records = edgeRecords();
    TraceFile trace = encode(records);
    EXPECT_EQ(trace.recordCount(), records.size());
    EXPECT_EQ(trace.instructionCount(), instructionsOf(records));

    TraceFileSource source(trace);
    for (std::size_t i = 0; i < records.size(); ++i) {
        SCOPED_TRACE(i);
        expectEqual(source.next(), records[i]);
    }
}

TEST(TraceFile, GeneratorRoundTripIsExact)
{
    TraceGenerator generator(profileByName("gcc"), 42);
    std::vector<TraceRecord> records;
    TraceFileWriter writer(4096); // small stride: many index entries
    while (writer.instructionCount() < 50000) {
        records.push_back(generator.next());
        writer.append(records.back());
    }
    std::ostringstream os(std::ios::binary);
    writer.finish(os);
    const std::string &bytes = os.str();
    TraceFile trace = TraceFile::fromBytes(
        std::vector<std::uint8_t>(bytes.begin(), bytes.end()));

    EXPECT_GT(trace.seekIndex().size(), 2u);
    TraceFileSource source(trace);
    for (std::size_t i = 0; i < records.size(); ++i)
        expectEqual(source.next(), records[i]);
}

TEST(TraceFile, SeekMatchesLinearReplay)
{
    TraceGenerator generator(profileByName("mcf"), 9);
    TraceFileWriter writer(2048);
    while (writer.instructionCount() < 30000)
        writer.append(generator.next());
    std::ostringstream os(std::ios::binary);
    writer.finish(os);
    const std::string &bytes = os.str();
    TraceFile trace = TraceFile::fromBytes(
        std::vector<std::uint8_t>(bytes.begin(), bytes.end()));

    for (std::uint64_t target :
         {std::uint64_t(0), std::uint64_t(1), trace.recordCount() / 3,
          trace.recordCount() / 2, trace.recordCount() - 1}) {
        TraceFileSource linear(trace);
        for (std::uint64_t i = 0; i < target; ++i)
            linear.next();
        TraceFileSource seeked(trace);
        seeked.seekToRecord(target);
        EXPECT_EQ(seeked.recordIndex(), linear.recordIndex());
        EXPECT_EQ(seeked.instructionsConsumed(),
                  linear.instructionsConsumed());
        // The next few records must decode identically: the seek
        // restored both delta registers, not just the position.
        for (int i = 0; i < 5; ++i)
            expectEqual(seeked.next(), linear.next());
    }
}

TEST(TraceFile, WrapRestartsTheStream)
{
    auto records = edgeRecords();
    TraceFile trace = encode(records);
    TraceFileSource source(trace);
    for (std::size_t i = 0; i < records.size(); ++i)
        source.next();
    EXPECT_EQ(source.wrapCount(), 0u);
    // Wrapped replay equals a fresh cursor: delta registers reset.
    TraceFileSource fresh(trace);
    for (std::size_t i = 0; i < records.size(); ++i) {
        SCOPED_TRACE(i);
        expectEqual(source.next(), fresh.next());
    }
    EXPECT_EQ(source.wrapCount(), 1u);
}

TEST(TraceFile, TextRoundTripReproducesTheBinary)
{
    auto records = edgeRecords();
    TraceFile direct = encode(records);

    std::ostringstream text;
    text << "# comment line\n\n";
    for (const TraceRecord &r : records)
        formatTextRecord(text, r);

    std::istringstream is(text.str());
    TraceFileWriter writer;
    EXPECT_EQ(parseTextTrace(is, writer, "<test>"), records.size());
    std::ostringstream os(std::ios::binary);
    writer.finish(os);
    const std::string &bytes = os.str();
    TraceFile parsed = TraceFile::fromBytes(
        std::vector<std::uint8_t>(bytes.begin(), bytes.end()));

    // Same records in, same file image out: the content hashes match,
    // which is what makes text->tlt conversion reproducible.
    EXPECT_EQ(parsed.contentHash(), direct.contentHash());
    EXPECT_EQ(parsed.recordCount(), direct.recordCount());
    EXPECT_EQ(parsed.instructionCount(), direct.instructionCount());
}

TEST(TraceFile, MalformedTextIsFatal)
{
    TraceFileWriter writer;
    std::istringstream bad_kind("0 X 1000\n");
    EXPECT_THROW(parseTextTrace(bad_kind, writer, "<t>"), FatalError);
    std::istringstream bad_addr("0 L zzzz\n");
    EXPECT_THROW(parseTextTrace(bad_addr, writer, "<t>"), FatalError);
    std::istringstream bad_flag("0 L 1000 q\n");
    EXPECT_THROW(parseTextTrace(bad_flag, writer, "<t>"), FatalError);
}

TEST(TraceFile, CorruptImagesAreRejected)
{
    auto records = edgeRecords();
    TraceFileWriter writer;
    for (const TraceRecord &r : records)
        writer.append(r);
    std::ostringstream os(std::ios::binary);
    writer.finish(os);
    const std::string &str = os.str();
    std::vector<std::uint8_t> image(str.begin(), str.end());

    std::vector<std::uint8_t> truncated(image.begin(),
                                        image.begin() + 20);
    EXPECT_THROW(TraceFile::fromBytes(truncated), FatalError);

    std::vector<std::uint8_t> bad_magic = image;
    bad_magic[0] ^= 0xff;
    EXPECT_THROW(TraceFile::fromBytes(bad_magic), FatalError);

    // Header record count no longer matches the body.
    std::vector<std::uint8_t> bad_count = image;
    bad_count[16] ^= 0x01;
    EXPECT_THROW(TraceFile::fromBytes(bad_count), FatalError);
}

TEST(TraceFile, SeekPastEndIsFatal)
{
    TraceFile trace = encode(edgeRecords());
    TraceFileSource source(trace);
    EXPECT_THROW(source.seekToRecord(trace.recordCount() + 1),
                 PanicError);
}
