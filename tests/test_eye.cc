/**
 * @file
 * Tests for the eye-diagram / inter-symbol-interference analysis of
 * the pulse simulator (extension of the paper's single-pulse checks).
 */

#include <gtest/gtest.h>

#include "phys/geometry.hh"
#include "phys/pulse.hh"

using namespace tlsim::phys;

namespace
{

PulseSimulator
sim()
{
    return PulseSimulator(tech45());
}

} // namespace

TEST(Eye, Table1LinesKeepOpenEyes)
{
    // The paper's conservative 40%-of-cycle margin holds for random
    // bit trains, not just isolated pulses.
    auto ps = sim();
    for (const auto &spec : paperTable1Lines()) {
        EyeResult eye = ps.eyeDiagram(spec.geometry, spec.length, 48);
        EXPECT_TRUE(eye.passes())
            << "len " << spec.length << " height " << eye.eyeHeight
            << " width " << eye.eyeWidth;
    }
}

TEST(Eye, HeightBoundedByUnit)
{
    auto ps = sim();
    const auto &spec = paperTable1Lines()[0];
    EyeResult eye = ps.eyeDiagram(spec.geometry, spec.length, 32);
    EXPECT_GT(eye.eyeHeight, 0.0);
    EXPECT_LE(eye.eyeHeight, 1.0);
    EXPECT_GE(eye.worstHigh, eye.worstLow);
}

TEST(Eye, LongerLineSmallerEye)
{
    auto ps = sim();
    const auto &geom = paperTable1Lines()[0].geometry;
    EyeResult near = ps.eyeDiagram(geom, 0.5e-2, 32);
    EyeResult far = ps.eyeDiagram(geom, 1.5e-2, 32);
    EXPECT_GT(near.eyeHeight, far.eyeHeight);
}

TEST(Eye, RcWireEyeCollapses)
{
    // The dispersive tail of a thin RC wire closes the eye at 10 GHz
    // over a centimetre — why such wires need repeaters, not faster
    // drivers.
    auto ps = sim();
    EyeResult eye = ps.eyeDiagram(conventionalGlobalWire(), 1.0e-2, 32);
    EXPECT_FALSE(eye.passes());
}

TEST(Eye, DeterministicAcrossCalls)
{
    auto ps = sim();
    const auto &spec = paperTable1Lines()[1];
    EyeResult a = ps.eyeDiagram(spec.geometry, spec.length, 32, 7);
    EyeResult b = ps.eyeDiagram(spec.geometry, spec.length, 32, 7);
    EXPECT_DOUBLE_EQ(a.eyeHeight, b.eyeHeight);
    EXPECT_DOUBLE_EQ(a.eyeWidth, b.eyeWidth);
}

TEST(Eye, DifferentSeedsSimilarEye)
{
    // The eye is a property of the channel, not the pattern: two
    // random patterns agree to ~15%.
    auto ps = sim();
    const auto &spec = paperTable1Lines()[2];
    EyeResult a = ps.eyeDiagram(spec.geometry, spec.length, 64, 1);
    EyeResult b = ps.eyeDiagram(spec.geometry, spec.length, 64, 99);
    EXPECT_NEAR(a.eyeHeight, b.eyeHeight, 0.15);
}

TEST(Eye, TrainWaveformSpansTrain)
{
    auto ps = sim();
    const auto &spec = paperTable1Lines()[0];
    auto wave = ps.trainWaveform(spec.geometry, spec.length, 16, 3);
    EXPECT_GE(wave.size(), 16u * 32u);
    double peak = 0.0;
    for (double v : wave)
        peak = std::max(peak, v);
    EXPECT_GT(peak, 0.7);
}
