/**
 * @file
 * Unit tests for the TLC floorplan model (Figures 2/4, Table 7
 * controller and channel areas, and the 0-3 cycle internal delays
 * behind Table 2's latency spread).
 */

#include <gtest/gtest.h>

#include "tlc/floorplan.hh"
#include "phys/technology.hh"

using namespace tlsim;
using namespace tlsim::tlc;
using tlsim::phys::tech45;

TEST(Floorplan, BasePairCount)
{
    TlcFloorplan fp(tech45(), baseTlc());
    EXPECT_EQ(fp.pairs(), 16);
}

TEST(Floorplan, LengthsSpanTable1)
{
    TlcFloorplan fp(tech45(), baseTlc());
    double lo = 1.0, hi = 0.0;
    for (int i = 0; i < fp.pairs(); ++i) {
        lo = std::min(lo, fp.pair(i).length);
        hi = std::max(hi, fp.pair(i).length);
    }
    EXPECT_NEAR(lo, 0.9e-2, 1e-9);
    EXPECT_NEAR(hi, 1.3e-2, 1e-9);
}

TEST(Floorplan, FlightAlwaysOneCycle)
{
    TlcFloorplan fp(tech45(), baseTlc());
    for (int i = 0; i < fp.pairs(); ++i)
        EXPECT_EQ(fp.pair(i).flightCycles, 1);
}

TEST(Floorplan, InternalDelaysSpanZeroToThree)
{
    TlcFloorplan fp(tech45(), baseTlc());
    int lo = 99, hi = -1;
    for (int i = 0; i < fp.pairs(); ++i) {
        lo = std::min(lo, fp.pair(i).internalCycles);
        hi = std::max(hi, fp.pair(i).internalCycles);
    }
    EXPECT_EQ(lo, 0); // innermost bundles
    EXPECT_EQ(hi, 3); // outermost bundles ("up to three cycles")
}

TEST(Floorplan, ControllerAreaNearTenMm2)
{
    // Paper Table 7: TLC controller area 10 mm^2.
    TlcFloorplan fp(tech45(), baseTlc());
    double mm2 = fp.controllerArea() / 1e-6;
    EXPECT_GT(mm2, 8.0);
    EXPECT_LT(mm2, 13.0);
}

TEST(Floorplan, ChannelAreaNearPaper)
{
    // Paper Table 7: TLC channel area 3.1 mm^2.
    TlcFloorplan fp(tech45(), baseTlc());
    double mm2 = fp.channelArea() / 1e-6;
    EXPECT_GT(mm2, 2.0);
    EXPECT_LT(mm2, 4.5);
}

TEST(Floorplan, OptControllersSmaller)
{
    // Table 2's rationale: fewer lines -> shorter controller faces.
    TlcFloorplan base(tech45(), baseTlc());
    TlcFloorplan opt1000(tech45(), tlcOpt1000());
    TlcFloorplan opt500(tech45(), tlcOpt500());
    TlcFloorplan opt350(tech45(), tlcOpt350());
    EXPECT_LT(opt1000.controllerArea(), base.controllerArea());
    EXPECT_LT(opt500.controllerArea(), opt1000.controllerArea());
    EXPECT_LT(opt350.controllerArea(), opt500.controllerArea());
}

TEST(Floorplan, OptInternalDelaysSmaller)
{
    TlcFloorplan opt500(tech45(), tlcOpt500());
    for (int i = 0; i < opt500.pairs(); ++i)
        EXPECT_LE(opt500.pair(i).internalCycles, 1);
}

TEST(Floorplan, BundleHeightsScaleWithLines)
{
    TlcFloorplan base(tech45(), baseTlc());
    TlcFloorplan opt350(tech45(), tlcOpt350());
    EXPECT_GT(base.pair(0).bundleHeight,
              2.0 * opt350.pair(0).bundleHeight);
}

TEST(Floorplan, EnergyPerBitPositive)
{
    TlcFloorplan fp(tech45(), baseTlc());
    for (int i = 0; i < fp.pairs(); ++i) {
        EXPECT_GT(fp.pair(i).energyPerBit, 0.1e-12);
        EXPECT_LT(fp.pair(i).energyPerBit, 5e-12);
    }
}

TEST(Floorplan, OneWayCyclesComposition)
{
    TlcFloorplan fp(tech45(), baseTlc());
    for (int i = 0; i < fp.pairs(); ++i) {
        EXPECT_EQ(fp.oneWayCycles(i), fp.pair(i).flightCycles +
                                          fp.pair(i).internalCycles);
    }
}
