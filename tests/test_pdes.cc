/**
 * @file
 * Tests for partitioned (conservative-PDES) event execution: the
 * arena allocator, explicit-sequence keyed scheduling, cross-domain
 * mailbox ordering through the Executor, the watchdog's domain-aware
 * quiescence, and — the load-bearing guarantee — byte-identical
 * results between the serial loop and any worker-domain count, for
 * every L2 design, with and without fault injection.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "harness/system.hh"
#include "sim/eventq.hh"
#include "sim/eventqstats.hh"
#include "sim/fault/watchdog.hh"
#include "sim/logging.hh"
#include "sim/pdes/pdes.hh"
#include "workload/profile.hh"

using namespace tlsim;
using namespace tlsim::harness;

// ---------------------------------------------------------------- Arena

TEST(Arena, BumpAllocatesAlignedWithinChunk)
{
    pdes::Arena arena(1024);
    void *a = arena.allocate(24, 8);
    void *b = arena.allocate(40, 16);
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(a) % 8, 0u);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b) % 16, 0u);
    EXPECT_NE(a, b);
    EXPECT_EQ(arena.allocations(), 2u);
    EXPECT_EQ(arena.chunkCount(), 1u);
}

TEST(Arena, GrowsByChunksAndOversizedRequestsGetTheirOwn)
{
    pdes::Arena arena(256);
    for (int i = 0; i < 32; ++i)
        arena.allocate(64, 8);
    EXPECT_GT(arena.chunkCount(), 1u);
    std::size_t before = arena.chunkCount();
    void *big = arena.allocate(4096, 64);
    ASSERT_NE(big, nullptr);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(big) % 64, 0u);
    EXPECT_GT(arena.chunkCount(), before);
    EXPECT_GE(arena.bytesReserved(), 4096u);
}

// ------------------------------------------------- keyed scheduling

TEST(EventQueueKeyed, SameTickExecutesInSequenceOrder)
{
    EventQueue eq;
    std::vector<int> order;
    // Insert out of sequence order at one tick; the heap comparator
    // (when, priority, sequence) must restore key order.
    eq.scheduleCallbackKeyed(10, 7, [&order](Tick) { order.push_back(7); });
    eq.scheduleCallbackKeyed(10, 3, [&order](Tick) { order.push_back(3); });
    eq.scheduleCallbackKeyed(10, 5, [&order](Tick) { order.push_back(5); });
    eq.run(100);
    EXPECT_EQ(order, (std::vector<int>{3, 5, 7}));
}

TEST(EventQueueKeyed, SequenceStrideLeavesChildSlots)
{
    EventQueue eq;
    eq.setSequenceStride(pdes::Executor::sequenceStride);
    std::uint64_t a = eq.allocSequence();
    std::uint64_t b = eq.allocSequence();
    EXPECT_EQ(b - a, pdes::Executor::sequenceStride);
}

TEST(EventQueueStats, PoolStatsSeesArenaAllocations)
{
    EventQueue eq;
    eq.scheduleFunc(1, [] {});
    eq.run(10);
    PoolStats heap_stats(eq);
    EXPECT_GT(heap_stats.heapAllocations(), 0u);

    pdes::Arena arena;
    EventQueue aq;
    aq.setAllocHook(pdes::Arena::hook, &arena);
    for (int i = 0; i < 8; ++i)
        aq.scheduleCallback(i + 1, [](Tick) {});
    aq.run(100);
    PoolStats arena_stats(aq);
    EXPECT_EQ(arena_stats.heapAllocations(), 0u);
    EXPECT_GT(arena.allocations(), 0u);
}

// --------------------------------------------------- executor order

TEST(Executor, CrossDomainMailboxesPreserveKeyOrder)
{
    EventQueue eq;
    std::vector<std::string> order;
    {
        pdes::Executor exec(eq, 2, 4);
        eq.scheduleFunc(10, [&order] { order.push_back("m10"); });
        // Delivery into worker 0 at t=12 spawns a record back to the
        // master; a later master event at the same tick must run
        // after the record (its sequence was drawn later).
        exec.postToWorker(0, 12, [&order, &exec](Tick t) {
            EXPECT_EQ(t, 12u);
            order.push_back("w12");
            exec.postToMaster(0, [&order](Tick t2) {
                EXPECT_EQ(t2, 12u);
                order.push_back("r12a");
            });
            exec.postToMaster(0, [&order](Tick) {
                order.push_back("r12b");
            });
        });
        eq.scheduleFunc(12, [&order] { order.push_back("m12"); });
        // Second worker gets its own delivery; its tick interleaves
        // by key with everything above.
        exec.postToWorker(1, 11, [&order](Tick) {
            order.push_back("v11");
        });
        eq.run(100);
        EXPECT_EQ(order,
                  (std::vector<std::string>{"m10", "v11", "w12",
                                            "r12a", "r12b", "m12"}));
        EXPECT_GT(exec.windows(), 0u);
        EXPECT_EQ(exec.crossMessages(), 4u);
        EXPECT_GT(exec.windowGeneration().load(), 0u);
    }
    // Destroying the executor restored the serial queue contract.
    std::uint64_t s1 = eq.allocSequence();
    std::uint64_t s2 = eq.allocSequence();
    EXPECT_EQ(s2 - s1, 1u);
}

TEST(Executor, DeliveriesToOneWorkerRunInPostOrder)
{
    EventQueue eq;
    std::vector<int> order;
    {
        pdes::Executor exec(eq, 1, 2);
        for (int i = 0; i < 5; ++i)
            exec.postToWorker(0, 20, [&order, i](Tick) {
                order.push_back(i);
            });
        eq.run(50);
    }
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

// ------------------------------------------------- watchdog plumbing

TEST(Watchdog, QuiescenceRetriesWhileWindowsAdvance)
{
    fault::Watchdog wd(1'000);
    std::atomic<std::uint64_t> gen{0};
    wd.attachProgressCounter(&gen);
    int client = wd.addClient("core0.l1d");
    wd.onIssue(client, 0x40, 100);
    gen.store(1);
    EXPECT_TRUE(wd.onQuiescent(200)); // progress since attach: retry
    EXPECT_EQ(wd.firings(), 0u);
    // No further generation bumps: a second quiescence is genuine.
    EXPECT_THROW(wd.onQuiescent(300), PanicError);
    EXPECT_EQ(wd.firings(), 1u);
}

TEST(Watchdog, QuiescenceWithNothingPendingIsFine)
{
    fault::Watchdog wd(1'000);
    std::atomic<std::uint64_t> gen{0};
    wd.attachProgressCounter(&gen);
    EXPECT_FALSE(wd.onQuiescent(500));
    EXPECT_EQ(wd.firings(), 0u);
}

// ------------------------------------------------ byte-identity runs

namespace
{

/** Tiny-budget config for one design. */
SystemConfig
smallConfig(const std::string &design, int domains)
{
    SystemConfig config;
    config.design = design;
    config.functionalWarm = 50'000;
    config.warmup = 2'000;
    config.measure = 5'000;
    config.domains = domains;
    return config;
}

/** Every RunResult field must match exactly (byte-identity claim). */
void
expectIdentical(const RunResult &a, const RunResult &b)
{
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.ipc, b.ipc);
    EXPECT_EQ(a.l2RequestsPer1k, b.l2RequestsPer1k);
    EXPECT_EQ(a.l2MissesPer1k, b.l2MissesPer1k);
    EXPECT_EQ(a.meanLookupLatency, b.meanLookupLatency);
    EXPECT_EQ(a.predictablePct, b.predictablePct);
    EXPECT_EQ(a.banksPerRequest, b.banksPerRequest);
    EXPECT_EQ(a.networkPowerMw, b.networkPowerMw);
    EXPECT_EQ(a.linkUtilizationPct, b.linkUtilizationPct);
    EXPECT_EQ(a.closeHitPct, b.closeHitPct);
    EXPECT_EQ(a.promotesPerInsert, b.promotesPerInsert);
    EXPECT_EQ(a.fastMissPct, b.fastMissPct);
    EXPECT_EQ(a.multiMatchPct, b.multiMatchPct);
    EXPECT_EQ(a.queueWaitMean, b.queueWaitMean);
    EXPECT_EQ(a.wireMean, b.wireMean);
    EXPECT_EQ(a.bankMean, b.bankMean);
    EXPECT_EQ(a.dramMean, b.dramMean);
    EXPECT_EQ(a.queueWaitSamples, b.queueWaitSamples);
    EXPECT_EQ(a.wireSamples, b.wireSamples);
    EXPECT_EQ(a.bankSamples, b.bankSamples);
    EXPECT_EQ(a.dramSamples, b.dramSamples);
    EXPECT_EQ(a.linkRetries, b.linkRetries);
    EXPECT_EQ(a.linkTimeouts, b.linkTimeouts);
    EXPECT_EQ(a.degradedRequests, b.degradedRequests);
    EXPECT_EQ(a.faultMean, b.faultMean);
    EXPECT_EQ(a.faultSamples, b.faultSamples);
}

/** Observer capturing whether the run's partition was active. */
struct PartitionProbe
{
    bool active = false;
    std::uint64_t windows = 0;
    std::uint64_t crossMessages = 0;
    std::size_t workerHeapAllocations = 0;
    RunObserver observer;

    PartitionProbe()
    {
        observer.onMeasureEnd = [this](System &system) {
            pdes::Executor *exec = system.partitionExecutor();
            active = exec != nullptr;
            if (!exec)
                return;
            windows = exec->windows();
            crossMessages = exec->crossMessages();
            for (int w = 0; w < exec->workerCount(); ++w) {
                PoolStats pool(exec->workerQueue(w));
                workerHeapAllocations += pool.heapAllocations();
            }
        };
    }
};

} // namespace

TEST(PdesIdentity, SnucaMatchesSerialAtEveryDomainCount)
{
    const auto &profile = workload::profileByName("bzip");
    RunResult serial =
        runBenchmark(smallConfig("SNUCA2", 1), profile, 3);
    for (int domains : {2, 4, 8}) {
        PartitionProbe probe;
        RunResult par = runBenchmark(smallConfig("SNUCA2", domains),
                                     profile, 3, &probe.observer);
        SCOPED_TRACE(domains);
        expectIdentical(serial, par);
        EXPECT_TRUE(probe.active);
        EXPECT_GT(probe.windows, 0u);
        EXPECT_GT(probe.crossMessages, 0u);
        // Worker-domain events are arena-backed: the run's hot path
        // never touched the global allocator from a worker queue.
        EXPECT_EQ(probe.workerHeapAllocations, 0u);
    }
}

TEST(PdesIdentity, SerialFallbackDesignsStayIdentical)
{
    // DNUCA and TLC decline to partition; domains > 1 must still
    // produce the exact serial results (and no executor).
    const auto &profile = workload::profileByName("oltp");
    for (const std::string design : {"DNUCA", "TLC"}) {
        SCOPED_TRACE(design);
        RunResult serial =
            runBenchmark(smallConfig(design, 1), profile, 5);
        PartitionProbe probe;
        RunResult par = runBenchmark(smallConfig(design, 4), profile,
                                     5, &probe.observer);
        expectIdentical(serial, par);
        EXPECT_FALSE(probe.active);
    }
}

TEST(PdesIdentity, DeadLinkFaultsRunPartitionedAndIdentical)
{
    // Dead-link detours are domain-0 mesh state; with a zero bit
    // error rate the partition stays active and byte-identical.
    const auto &profile = workload::profileByName("apache");
    SystemConfig serial_config = smallConfig("SNUCA2", 1);
    serial_config.fault.enabled = true;
    serial_config.fault.deadLinks = "2@0,9@1000";
    SystemConfig par_config = serial_config;
    par_config.domains = 4;

    RunResult serial = runBenchmark(serial_config, profile, 11);
    PartitionProbe probe;
    RunResult par =
        runBenchmark(par_config, profile, 11, &probe.observer);
    expectIdentical(serial, par);
    EXPECT_TRUE(probe.active);
    EXPECT_GT(probe.windows, 0u);
}

TEST(PdesIdentity, BitErrorFaultsFallBackToSerialAndIdentical)
{
    // The CRC-retry path re-reserves bank ports from controller
    // context with zero lookahead, so BER > 0 declines the plan.
    const auto &profile = workload::profileByName("bzip");
    SystemConfig serial_config = smallConfig("SNUCA2", 1);
    serial_config.fault.enabled = true;
    serial_config.fault.bitErrorRate = 1e-4;
    SystemConfig par_config = serial_config;
    par_config.domains = 4;

    RunResult serial = runBenchmark(serial_config, profile, 13);
    PartitionProbe probe;
    RunResult par =
        runBenchmark(par_config, profile, 13, &probe.observer);
    expectIdentical(serial, par);
    EXPECT_FALSE(probe.active);
}

TEST(PdesConfig, DomainsRoundTripButStayOutOfTheCacheKey)
{
    SystemConfig config;
    config.domains = 6;
    SystemConfig reloaded = loadConfigJson(configToJson(config));
    EXPECT_EQ(reloaded.domains, 6);

    SystemConfig serial;
    EXPECT_EQ(config.canonicalKey(), serial.canonicalKey());
    EXPECT_EQ(config.contentHash(), serial.contentHash());
    EXPECT_EQ(config.machineHash(), serial.machineHash());
    EXPECT_TRUE(config.isDefaultMachine());
}
