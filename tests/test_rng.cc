/**
 * @file
 * Unit and property tests for the deterministic RNG.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "sim/rng.hh"

using namespace tlsim;

TEST(Rng, SameSeedSameSequence)
{
    Rng a(123), b(123);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += (a.next() == b.next()) ? 1 : 0;
    EXPECT_LT(same, 3);
}

TEST(Rng, ReseedRestartsSequence)
{
    Rng a(77);
    std::uint64_t first = a.next();
    a.next();
    a.reseed(77);
    EXPECT_EQ(a.next(), first);
}

TEST(Rng, BelowRespectsBound)
{
    Rng rng(5);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, BelowOneAlwaysZero)
{
    Rng rng(6);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, BelowCoversRange)
{
    Rng rng(7);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i)
        seen.insert(rng.below(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, RangeInclusive)
{
    Rng rng(8);
    for (int i = 0; i < 10000; ++i) {
        auto v = rng.range(10, 20);
        EXPECT_GE(v, 10u);
        EXPECT_LE(v, 20u);
    }
}

TEST(Rng, RealInUnitInterval)
{
    Rng rng(9);
    for (int i = 0; i < 10000; ++i) {
        double v = rng.real();
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
    }
}

TEST(Rng, RealMeanNearHalf)
{
    Rng rng(10);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += rng.real();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, ChanceExtremes)
{
    Rng rng(11);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

TEST(Rng, ChanceFrequency)
{
    Rng rng(12);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        hits += rng.chance(0.3) ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, GeometricMeanMatches)
{
    Rng rng(13);
    const double mean = 5.0;
    double sum = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i)
        sum += static_cast<double>(rng.geometric(mean));
    EXPECT_NEAR(sum / n, mean, 0.15);
}

TEST(Rng, GeometricZeroMean)
{
    Rng rng(14);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(rng.geometric(0.0), 0u);
}

TEST(Rng, ZipfWithinBounds)
{
    Rng rng(15);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.zipf(1000, 0.8), 1000u);
}

TEST(Rng, ZipfSkewConcentratesHead)
{
    Rng rng(16);
    const int n = 100000;
    int head_skewed = 0, head_uniform = 0;
    for (int i = 0; i < n; ++i) {
        if (rng.zipf(10000, 1.2) < 100)
            ++head_skewed;
        if (rng.zipf(10000, 0.0) < 100)
            ++head_uniform;
    }
    // Strong skew puts far more mass on the first 1% of ranks.
    EXPECT_GT(head_skewed, 10 * head_uniform);
}

TEST(Rng, ZipfSingleItem)
{
    Rng rng(17);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(rng.zipf(1, 0.9), 0u);
}

/** Property sweep: below() stays in range across bounds and seeds. */
class RngBoundSweep
    : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(RngBoundSweep, BelowAlwaysInBounds)
{
    std::uint64_t bound = GetParam();
    Rng rng(bound * 31 + 7);
    std::uint64_t max_seen = 0;
    for (int i = 0; i < 5000; ++i) {
        auto v = rng.below(bound);
        EXPECT_LT(v, bound);
        max_seen = std::max(max_seen, v);
    }
    if (bound > 4)
        EXPECT_GT(max_seen, bound / 2); // upper half is reachable
}

INSTANTIATE_TEST_SUITE_P(Bounds, RngBoundSweep,
                         ::testing::Values(1, 2, 3, 7, 16, 100, 1023,
                                           1024, 1u << 20));
