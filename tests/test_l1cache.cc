/**
 * @file
 * Unit tests for the L1 cache: hit latency, MSHR behaviour,
 * writebacks, and the functional-warm path, against a fake L2.
 */

#include <gtest/gtest.h>

#include <vector>

#include "mem/dram.hh"
#include "mem/l1cache.hh"
#include "mem/l2cache.hh"
#include "sim/eventq.hh"

using namespace tlsim;
using namespace tlsim::mem;

namespace
{

/** Fixed-latency L2 stub that records the requests it sees. */
class FakeL2 : public L2Cache
{
  public:
    FakeL2(EventQueue &eq, stats::StatGroup *parent, Dram &dram,
           Cycles latency)
        : L2Cache("fake_l2", eq, parent, dram), latency(latency)
    {}

    using L2Cache::access;

    void
    access(const MemRequest &req, RespCallback cb) override
    {
        ++requests;
        seen.push_back(req);
        if (req.type == AccessType::Store) {
            cb(req.issued);
            return;
        }
        Tick done = req.issued + latency;
        eventq.scheduleFunc(done,
                            [cb = std::move(cb), done]() { cb(done); });
    }

    void
    accessFunctional(Addr block_addr, AccessType type) override
    {
        seen.push_back({block_addr, type, 0});
    }

    int linkCount() const override { return 0; }
    std::string designName() const override { return "fake"; }

    Cycles latency;
    std::vector<MemRequest> seen;
};

struct Fixture
{
    Fixture(Cycles l2_latency = 20)
        : root("root"), dram(eq, &root),
          l2(eq, &root, dram, l2_latency),
          l1("l1d", eq, &root, l2, 64 * 1024, 2, 3, 8)
    {}

    EventQueue eq;
    stats::StatGroup root;
    Dram dram;
    FakeL2 l2;
    L1Cache l1;
};

} // namespace

TEST(L1Cache, MissThenHit)
{
    Fixture f;
    Tick first = 0, second = 0;
    f.l1.access(0x100, AccessType::Load, 0,
                [&](Tick t) { first = t; });
    f.eq.run();
    // Miss: tag check (3) + L2 (20).
    EXPECT_EQ(first, 23u);
    f.l1.access(0x100, AccessType::Load, 30,
                [&](Tick t) { second = t; });
    f.eq.run();
    EXPECT_EQ(second, 33u); // hit latency 3
    EXPECT_EQ(f.l1.hits.value(), 1.0);
    EXPECT_EQ(f.l1.misses.value(), 1.0);
}

TEST(L1Cache, CoalescedMissSingleL2Request)
{
    Fixture f;
    int done = 0;
    f.l1.access(0x100, AccessType::Load, 0, [&](Tick) { ++done; });
    f.l1.access(0x100, AccessType::Load, 1, [&](Tick) { ++done; });
    f.eq.run();
    EXPECT_EQ(done, 2);
    EXPECT_EQ(f.l2.seen.size(), 1u);
    EXPECT_EQ(f.l1.coalescedMisses.value(), 1.0);
}

TEST(L1Cache, StoreMissFetchesAsLoad)
{
    Fixture f;
    f.l1.access(0x200, AccessType::Store, 0, [](Tick) {});
    f.eq.run();
    ASSERT_EQ(f.l2.seen.size(), 1u);
    EXPECT_EQ(f.l2.seen[0].type, AccessType::Load);
}

TEST(L1Cache, DirtyEvictionWritesBack)
{
    Fixture f;
    // 64 KB, 2-way: 512 sets. Three blocks in one set force an
    // eviction; the dirty one triggers a writeback.
    Addr a = 0x1000, b = a + 512, c = a + 1024;
    f.l1.access(a, AccessType::Store, 0, [](Tick) {});
    f.eq.run();
    f.l1.access(b, AccessType::Load, 100, [](Tick) {});
    f.eq.run();
    f.l1.access(c, AccessType::Load, 200, [](Tick) {});
    f.eq.run();
    EXPECT_EQ(f.l1.writebacks.value(), 1.0);
    bool saw_store = false;
    for (const auto &req : f.l2.seen) {
        if (req.type == AccessType::Store && req.blockAddr == a)
            saw_store = true;
    }
    EXPECT_TRUE(saw_store);
}

TEST(L1Cache, MshrLimitQueuesExtraMisses)
{
    Fixture f(1000); // slow L2
    int done = 0;
    for (Addr a = 0; a < 9; ++a) {
        f.l1.access(0x1000 + a, AccessType::Load, 0,
                    [&](Tick) { ++done; });
    }
    // Only 8 MSHRs: the 9th miss waits (L2 requests depart after the
    // 3-cycle tag check).
    f.eq.advanceTo(10);
    EXPECT_EQ(f.l2.seen.size(), 8u);
    f.eq.run();
    EXPECT_EQ(done, 9);
    EXPECT_EQ(f.l2.seen.size(), 9u);
    EXPECT_GT(f.l1.mshrStallCycles.value(), 0.0);
}

TEST(L1Cache, FunctionalAccessWarmsArray)
{
    Fixture f;
    f.l1.accessFunctional(0x300, AccessType::Load);
    EXPECT_EQ(f.l2.seen.size(), 1u); // functional miss forwarded
    Tick done = 0;
    f.l1.access(0x300, AccessType::Load, 0, [&](Tick t) { done = t; });
    f.eq.run();
    EXPECT_EQ(done, 3u); // timed access now hits
}

TEST(L1Cache, FunctionalDirtyEvictionForwarded)
{
    Fixture f;
    Addr a = 0x2000;
    f.l1.accessFunctional(a, AccessType::Store);
    f.l1.accessFunctional(a + 512, AccessType::Load);
    f.l1.accessFunctional(a + 1024, AccessType::Load);
    bool saw_store = false;
    for (const auto &req : f.l2.seen)
        saw_store |= (req.type == AccessType::Store);
    EXPECT_TRUE(saw_store);
}

TEST(L1Cache, AccessesStatCountsEverything)
{
    Fixture f;
    f.l1.access(1, AccessType::Load, 0, [](Tick) {});
    f.eq.run();
    f.l1.access(1, AccessType::Load, 50, [](Tick) {});
    f.eq.run();
    EXPECT_EQ(f.l1.accesses.value(), 2.0);
}
