/**
 * @file
 * Minimal recursive-descent JSON parser for validating the JSON the
 * observability subsystem emits (Chrome traces, stats exports). Test
 * helper only — strict enough to catch malformed output, no escapes
 * beyond the ones the emitters produce.
 */

#ifndef TLSIM_TESTS_TESTJSON_HH
#define TLSIM_TESTS_TESTJSON_HH

#include <cctype>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

namespace testjson
{

struct Value;
using ValuePtr = std::shared_ptr<Value>;

struct Value
{
    enum class Kind
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string str;
    std::vector<ValuePtr> items;
    std::map<std::string, ValuePtr> members;

    bool isObject() const { return kind == Kind::Object; }
    bool isArray() const { return kind == Kind::Array; }
    bool isNumber() const { return kind == Kind::Number; }
    bool isString() const { return kind == Kind::String; }

    bool has(const std::string &key) const
    {
        return members.count(key) > 0;
    }

    const Value &at(const std::string &key) const
    {
        auto it = members.find(key);
        if (it == members.end())
            throw std::runtime_error("missing key: " + key);
        return *it->second;
    }

    const Value &at(std::size_t i) const { return *items.at(i); }

    std::size_t size() const
    {
        return isArray() ? items.size() : members.size();
    }
};

class Parser
{
  public:
    explicit Parser(const std::string &text) : s(text) {}

    Value parse()
    {
        Value v = parseValue();
        skipWs();
        if (pos != s.size())
            fail("trailing characters");
        return v;
    }

  private:
    [[noreturn]] void fail(const std::string &why) const
    {
        throw std::runtime_error("JSON parse error at offset " +
                                 std::to_string(pos) + ": " + why);
    }

    void skipWs()
    {
        while (pos < s.size() &&
               std::isspace(static_cast<unsigned char>(s[pos])))
            ++pos;
    }

    char peek()
    {
        if (pos >= s.size())
            fail("unexpected end of input");
        return s[pos];
    }

    void expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "', got '" + s[pos] +
                 "'");
        ++pos;
    }

    Value parseValue()
    {
        skipWs();
        char c = peek();
        switch (c) {
          case '{':
            return parseObject();
          case '[':
            return parseArray();
          case '"':
            return parseString();
          case 't':
          case 'f':
            return parseBool();
          case 'n':
            return parseNull();
          default:
            return parseNumber();
        }
    }

    Value parseObject()
    {
        Value v;
        v.kind = Value::Kind::Object;
        expect('{');
        skipWs();
        if (peek() == '}') {
            ++pos;
            return v;
        }
        while (true) {
            skipWs();
            Value key = parseString();
            skipWs();
            expect(':');
            v.members[key.str] =
                std::make_shared<Value>(parseValue());
            skipWs();
            if (peek() == ',') {
                ++pos;
                continue;
            }
            expect('}');
            return v;
        }
    }

    Value parseArray()
    {
        Value v;
        v.kind = Value::Kind::Array;
        expect('[');
        skipWs();
        if (peek() == ']') {
            ++pos;
            return v;
        }
        while (true) {
            v.items.push_back(std::make_shared<Value>(parseValue()));
            skipWs();
            if (peek() == ',') {
                ++pos;
                continue;
            }
            expect(']');
            return v;
        }
    }

    Value parseString()
    {
        Value v;
        v.kind = Value::Kind::String;
        expect('"');
        while (true) {
            if (pos >= s.size())
                fail("unterminated string");
            char c = s[pos++];
            if (c == '"')
                return v;
            if (c == '\\') {
                if (pos >= s.size())
                    fail("truncated escape");
                char e = s[pos++];
                switch (e) {
                  case '"':
                  case '\\':
                  case '/':
                    v.str += e;
                    break;
                  case 'n':
                    v.str += '\n';
                    break;
                  case 't':
                    v.str += '\t';
                    break;
                  case 'r':
                    v.str += '\r';
                    break;
                  case 'b':
                    v.str += '\b';
                    break;
                  case 'f':
                    v.str += '\f';
                    break;
                  case 'u': {
                    if (pos + 4 > s.size())
                        fail("truncated \\u escape");
                    unsigned code = static_cast<unsigned>(std::stoul(
                        s.substr(pos, 4), nullptr, 16));
                    pos += 4;
                    if (code > 0x7f)
                        fail("non-ASCII \\u escape unsupported");
                    v.str += static_cast<char>(code);
                    break;
                  }
                  default:
                    fail("unknown escape");
                }
            } else {
                v.str += c;
            }
        }
    }

    Value parseBool()
    {
        Value v;
        v.kind = Value::Kind::Bool;
        if (s.compare(pos, 4, "true") == 0) {
            v.boolean = true;
            pos += 4;
        } else if (s.compare(pos, 5, "false") == 0) {
            v.boolean = false;
            pos += 5;
        } else {
            fail("bad literal");
        }
        return v;
    }

    Value parseNull()
    {
        if (s.compare(pos, 4, "null") != 0)
            fail("bad literal");
        pos += 4;
        return Value{};
    }

    Value parseNumber()
    {
        std::size_t start = pos;
        if (pos < s.size() && (s[pos] == '-' || s[pos] == '+'))
            ++pos;
        while (pos < s.size() &&
               (std::isdigit(static_cast<unsigned char>(s[pos])) ||
                s[pos] == '.' || s[pos] == 'e' || s[pos] == 'E' ||
                s[pos] == '-' || s[pos] == '+'))
            ++pos;
        if (pos == start)
            fail("expected a number");
        Value v;
        v.kind = Value::Kind::Number;
        try {
            v.number = std::stod(s.substr(start, pos - start));
        } catch (const std::exception &) {
            fail("bad number");
        }
        return v;
    }

    const std::string &s;
    std::size_t pos = 0;
};

inline Value
parse(const std::string &text)
{
    return Parser(text).parse();
}

} // namespace testjson

#endif // TLSIM_TESTS_TESTJSON_HH
