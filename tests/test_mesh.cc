/**
 * @file
 * Unit tests for the 2-D mesh interconnect.
 */

#include <gtest/gtest.h>

#include "noc/mesh.hh"
#include "phys/technology.hh"

using namespace tlsim;
using namespace tlsim::noc;
using tlsim::phys::tech45;

namespace
{

MeshConfig
dnucaMesh()
{
    return MeshConfig{16, 16, 1, 128, 0.6e-3};
}

MeshConfig
snucaMesh()
{
    return MeshConfig{4, 8, 2, 128, 1.6e-3};
}

} // namespace

TEST(Mesh, DnucaHopSpectrum)
{
    // Paper Table 2: DNUCA bank latencies span 3-47 cycles with a
    // 3-cycle bank: one-way hops must span 0..22.
    EventQueue eq;
    Mesh mesh(eq, tech45(), dnucaMesh());
    double lo = 1e9, hi = -1;
    for (int r = 0; r < 16; ++r) {
        for (int c = 0; c < 16; ++c) {
            double h = mesh.hopsTo(Coord{r, c});
            lo = std::min(lo, h);
            hi = std::max(hi, h);
        }
    }
    EXPECT_DOUBLE_EQ(lo, 0.0);
    EXPECT_DOUBLE_EQ(hi, 22.0);
}

TEST(Mesh, SnucaHopSpectrum)
{
    EventQueue eq;
    Mesh mesh(eq, tech45(), snucaMesh());
    double hi = -1;
    for (int r = 0; r < 4; ++r)
        for (int c = 0; c < 8; ++c)
            hi = std::max(hi, mesh.hopsTo(Coord{r, c}));
    // 3 vertical + 3 horizontal = 6 hops, 2 cycles each = 12.
    EXPECT_DOUBLE_EQ(hi, 6.0);
    EXPECT_EQ(mesh.uncontendedLatency(Coord{3, 0}), 12u);
}

TEST(Mesh, AdjacentBankZeroHops)
{
    EventQueue eq;
    Mesh mesh(eq, tech45(), dnucaMesh());
    EXPECT_DOUBLE_EQ(mesh.hopsTo(Coord{0, 7}), 0.0);
    EXPECT_DOUBLE_EQ(mesh.hopsTo(Coord{0, 8}), 0.0);
}

TEST(Mesh, DeliveryLatencyMatchesHops)
{
    EventQueue eq;
    Mesh mesh(eq, tech45(), dnucaMesh());
    Tick arrival = 0;
    mesh.sendToBank(Coord{3, 7}, 1, 100,
                    [&](Tick t) { arrival = t; });
    eq.run();
    EXPECT_EQ(arrival, 100u + 3u);
}

TEST(Mesh, SerializationAddsToTail)
{
    EventQueue eq;
    Mesh mesh(eq, tech45(), dnucaMesh());
    Tick arrival = 0;
    mesh.sendToBank(Coord{3, 7}, 4, 100,
                    [&](Tick t) { arrival = t; });
    eq.run();
    EXPECT_EQ(arrival, 100u + 3u + 3u); // +3 tail flits
}

TEST(Mesh, RoundTripSymmetry)
{
    EventQueue eq;
    Mesh mesh(eq, tech45(), dnucaMesh());
    Tick down = 0, up = 0;
    mesh.sendToBank(Coord{5, 2}, 1, 0, [&](Tick t) { down = t; });
    eq.run();
    mesh.sendToController(Coord{5, 2}, 1, down,
                          [&](Tick t) { up = t; });
    eq.run();
    EXPECT_EQ(up - down, down); // symmetric path
}

TEST(Mesh, ContentionSerializesSharedLink)
{
    EventQueue eq;
    Mesh mesh(eq, tech45(), dnucaMesh());
    Tick first = 0, second = 0;
    // Two messages to the same far bank at the same tick share every
    // link on the route.
    mesh.sendToBank(Coord{10, 7}, 4, 0, [&](Tick t) { first = t; });
    mesh.sendToBank(Coord{10, 7}, 4, 0, [&](Tick t) { second = t; });
    eq.run();
    EXPECT_GT(second, first);
    EXPECT_GE(second - first, 4u); // one serialization quantum
}

TEST(Mesh, IndependentColumnsDoNotInterfere)
{
    EventQueue eq;
    Mesh mesh(eq, tech45(), dnucaMesh());
    Tick a = 0, b = 0;
    mesh.sendToBank(Coord{10, 3}, 4, 0, [&](Tick t) { a = t; });
    mesh.sendToBank(Coord{10, 12}, 4, 0, [&](Tick t) { b = t; });
    eq.run();
    // Opposite sides of the controller: no shared links.
    EXPECT_EQ(a, b);
}

TEST(Mesh, BankToBankVertical)
{
    EventQueue eq;
    Mesh mesh(eq, tech45(), dnucaMesh());
    Tick arrival = 0;
    mesh.sendBankToBank(Coord{5, 4}, Coord{4, 4}, 4, 10,
                        [&](Tick t) { arrival = t; });
    eq.run();
    EXPECT_EQ(arrival, 10u + 1u + 3u); // one hop + serialization
}

TEST(Mesh, MulticastArrivalsOrdered)
{
    EventQueue eq;
    Mesh mesh(eq, tech45(), dnucaMesh());
    std::vector<std::pair<int, Tick>> arrivals;
    mesh.multicastToColumn(4, {0, 1, 5, 15}, 1, 0,
                           [&](int row, Tick t) {
                               arrivals.push_back({row, t});
                           });
    eq.run();
    ASSERT_EQ(arrivals.size(), 4u);
    // Scheduled in time order: row 0 first, row 15 last.
    EXPECT_EQ(arrivals.front().first, 0);
    EXPECT_EQ(arrivals.back().first, 15);
    for (std::size_t i = 1; i < arrivals.size(); ++i)
        EXPECT_GT(arrivals[i].second, arrivals[i - 1].second);
}

TEST(Mesh, MulticastMatchesUnicastTiming)
{
    EventQueue eq;
    Mesh mesh(eq, tech45(), dnucaMesh());
    Tick uni = 0, multi = 0;
    mesh.sendToBank(Coord{6, 9}, 1, 0, [&](Tick t) { uni = t; });
    eq.run();
    Mesh mesh2(eq, tech45(), dnucaMesh());
    mesh2.multicastToColumn(9, {6}, 1, eq.now(),
                            [&](int, Tick t) { multi = t; });
    Tick base = eq.now();
    eq.run();
    EXPECT_EQ(multi - base, uni);
}

TEST(Mesh, EnergyAccumulates)
{
    EventQueue eq;
    Mesh mesh(eq, tech45(), dnucaMesh());
    EXPECT_EQ(mesh.energyConsumed(), 0.0);
    mesh.sendToBank(Coord{5, 5}, 4, 0, [](Tick) {});
    eq.run();
    double e1 = mesh.energyConsumed();
    EXPECT_GT(e1, 0.0);
    mesh.sendToBank(Coord{10, 5}, 4, eq.now(), [](Tick) {});
    eq.run();
    EXPECT_GT(mesh.energyConsumed(), 1.5 * e1); // longer route
}

TEST(Mesh, BusyCyclesAndReset)
{
    EventQueue eq;
    Mesh mesh(eq, tech45(), dnucaMesh());
    mesh.sendToBank(Coord{3, 7}, 4, 0, [](Tick) {});
    eq.run();
    EXPECT_GT(mesh.totalBusyCycles(), 0u);
    mesh.resetStats();
    EXPECT_EQ(mesh.totalBusyCycles(), 0u);
    EXPECT_EQ(mesh.energyConsumed(), 0.0);
}

TEST(Mesh, LinkCountMatchesTopology)
{
    EventQueue eq;
    Mesh mesh(eq, tech45(), dnucaMesh());
    // 2 boundary + 2*16*15 vertical + 2*15 horizontal.
    EXPECT_EQ(mesh.linkCount(), 2 + 2 * 16 * 15 + 2 * 15);
}

TEST(Mesh, FlitHopEnergyPicojouleScale)
{
    EventQueue eq;
    Mesh mesh(eq, tech45(), dnucaMesh());
    double pj = mesh.flitHopEnergy() / 1e-12;
    EXPECT_GT(pj, 1.0);
    EXPECT_LT(pj, 50.0);
}
