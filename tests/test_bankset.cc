/**
 * @file
 * Unit tests for the DNUCA bank-set storage structure.
 */

#include <gtest/gtest.h>

#include "nuca/bankset.hh"
#include "sim/rng.hh"

using namespace tlsim;
using namespace tlsim::nuca;

namespace
{

BankSetArray
makeArray()
{
    return BankSetArray(BankSetConfig{});
}

/** Build a block address from (bankset, set, tag). */
Addr
makeAddr(std::uint32_t bank_set, std::uint32_t set, Addr tag)
{
    return bank_set | (Addr(set) << 4) | (tag << 13);
}

} // namespace

TEST(BankSet, CapacityIs16MB)
{
    auto array = makeArray();
    EXPECT_EQ(array.capacityBlocks() * 64, 16u * 1024 * 1024);
}

TEST(BankSet, AddressDecomposition)
{
    auto array = makeArray();
    Addr addr = makeAddr(5, 100, 0x77);
    EXPECT_EQ(array.bankSetOf(addr), 5u);
    EXPECT_EQ(array.setIndexOf(addr), 100u);
    EXPECT_EQ(array.tagOf(addr), 0x77u);
    EXPECT_EQ(array.partialTagOf(addr), 0x37u); // low 6 of 0x77
}

TEST(BankSet, InsertGoesToTailBank)
{
    auto array = makeArray();
    Addr addr = makeAddr(3, 10, 1);
    array.insertAtTail(addr, 1, false);
    auto loc = array.lookup(addr);
    ASSERT_TRUE(loc.has_value());
    EXPECT_EQ(loc->bank, 15u);
    EXPECT_EQ(loc->bankSet, 3u);
    EXPECT_EQ(loc->setIndex, 10u);
}

TEST(BankSet, LookupMissOnEmpty)
{
    auto array = makeArray();
    EXPECT_FALSE(array.lookup(makeAddr(0, 0, 1)).has_value());
}

TEST(BankSet, PromoteMovesOneCloser)
{
    auto array = makeArray();
    Addr addr = makeAddr(2, 7, 9);
    array.insertAtTail(addr, 1, false);
    auto loc = array.lookup(addr);
    auto new_loc = array.promote(*loc, 2);
    EXPECT_EQ(new_loc.bank, 14u);
    auto found = array.lookup(addr);
    ASSERT_TRUE(found.has_value());
    EXPECT_EQ(found->bank, 14u);
}

TEST(BankSet, PromoteSwapsVictim)
{
    auto array = makeArray();
    Addr a = makeAddr(1, 5, 10);
    Addr b = makeAddr(1, 5, 11);
    array.insertAtTail(a, 1, false);
    // Promote a to bank 14.
    array.promote(*array.lookup(a), 2);
    array.insertAtTail(b, 3, false);
    // Fill bank 14's two ways so a swap has a victim... promote b
    // into 14: the LRU way there might hold a.
    array.promote(*array.lookup(b), 4);
    // Both still resident somewhere in the chain.
    EXPECT_TRUE(array.lookup(a).has_value());
    EXPECT_TRUE(array.lookup(b).has_value());
}

TEST(BankSet, PromoteFromHeadPanics)
{
    auto array = makeArray();
    Addr addr = makeAddr(0, 0, 1);
    array.insertAtTail(addr, 1, false);
    auto loc = array.lookup(addr);
    // Walk it all the way to bank 0.
    for (int i = 0; i < 15; ++i)
        loc = array.promote(*loc, 2 + i);
    EXPECT_EQ(loc->bank, 0u);
    EXPECT_THROW(array.promote(*loc, 99), PanicError);
}

TEST(BankSet, TailEvictionLru)
{
    auto array = makeArray();
    Addr a = makeAddr(0, 3, 1);
    Addr b = makeAddr(0, 3, 2);
    Addr c = makeAddr(0, 3, 3);
    array.insertAtTail(a, 1, false);
    array.insertAtTail(b, 2, false);
    auto evicted = array.insertAtTail(c, 3, true);
    ASSERT_TRUE(evicted.has_value());
    EXPECT_EQ(evicted->blockAddr, a);
    EXPECT_FALSE(array.lookup(a).has_value());
}

TEST(BankSet, EvictionReportsDirty)
{
    auto array = makeArray();
    Addr a = makeAddr(0, 3, 1);
    array.insertAtTail(a, 1, true);
    array.insertAtTail(makeAddr(0, 3, 2), 2, false);
    auto evicted = array.insertAtTail(makeAddr(0, 3, 3), 3, false);
    ASSERT_TRUE(evicted.has_value());
    EXPECT_TRUE(evicted->dirty);
}

TEST(BankSet, PromotedBlocksSurviveTailChurn)
{
    // The scan-resistance property: a promoted block is immune to
    // insertion-driven tail eviction.
    auto array = makeArray();
    Addr hot = makeAddr(0, 9, 100);
    array.insertAtTail(hot, 1, false);
    array.promote(*array.lookup(hot), 2);
    for (Addr t = 0; t < 50; ++t)
        array.insertAtTail(makeAddr(0, 9, 200 + t), 3 + t, false);
    EXPECT_TRUE(array.lookup(hot).has_value());
}

TEST(BankSet, PartialTagCandidatesFindHolder)
{
    auto array = makeArray();
    Addr addr = makeAddr(4, 20, 0x55);
    array.insertAtTail(addr, 1, false);
    auto candidates = array.partialTagCandidates(addr, 2);
    ASSERT_EQ(candidates.size(), 1u);
    EXPECT_EQ(candidates[0], 15u);
}

TEST(BankSet, PartialTagFalsePositive)
{
    auto array = makeArray();
    // Two tags sharing the low 6 bits (0x15 and 0x55).
    Addr resident = makeAddr(4, 20, 0x55);
    Addr probe = makeAddr(4, 20, 0x15);
    array.insertAtTail(resident, 1, false);
    auto candidates = array.partialTagCandidates(probe, 2);
    ASSERT_EQ(candidates.size(), 1u); // false positive
    EXPECT_FALSE(array.lookup(probe).has_value());
}

TEST(BankSet, PartialTagExcludesCloseBanks)
{
    auto array = makeArray();
    Addr addr = makeAddr(4, 20, 0x55);
    array.insertAtTail(addr, 1, false);
    auto loc = array.lookup(addr);
    // Promote to bank 1 (a "close" bank).
    while (loc->bank > 1)
        loc = array.promote(*loc, 100 + loc->bank);
    auto candidates = array.partialTagCandidates(addr, 2);
    EXPECT_TRUE(candidates.empty());
}

TEST(BankSet, BlockAddrRoundTrip)
{
    auto array = makeArray();
    Addr addr = makeAddr(7, 300, 0x1234);
    array.insertAtTail(addr, 1, false);
    auto loc = array.lookup(addr);
    EXPECT_EQ(array.blockAddrAt(*loc), addr);
}

TEST(BankSet, TouchUpdatesDirty)
{
    auto array = makeArray();
    Addr addr = makeAddr(0, 0, 5);
    array.insertAtTail(addr, 1, false);
    auto loc = array.lookup(addr);
    array.touch(*loc, 2, true);
    EXPECT_TRUE(array.frame(*loc).dirty);
}

TEST(BankSet, RandomizedCapacityInvariant)
{
    auto array = makeArray();
    Rng rng(99);
    std::uint64_t counter = 0;
    for (int i = 0; i < 20000; ++i) {
        Addr addr = rng.below(1 << 18);
        ++counter;
        auto loc = array.lookup(addr);
        if (loc) {
            array.touch(*loc, counter, false);
            if (loc->bank > 0)
                array.promote(*loc, counter);
        } else {
            array.insertAtTail(addr, counter, false);
        }
    }
    EXPECT_LE(array.validCount(), array.capacityBlocks());
    EXPECT_GT(array.validCount(), 0u);
}
