/**
 * @file
 * Unit tests for the technology parameter model.
 */

#include <gtest/gtest.h>

#include "phys/technology.hh"

using namespace tlsim::phys;

TEST(Technology, DefaultsMatchPaperDesignPoint)
{
    const Technology &tech = tech45();
    EXPECT_DOUBLE_EQ(tech.featureSize, 45e-9);
    EXPECT_DOUBLE_EQ(tech.clockFreq, 10e9);
    EXPECT_DOUBLE_EQ(tech.vdd, 1.0);
}

TEST(Technology, CycleTimeIs100ps)
{
    EXPECT_NEAR(tech45().cycleTime(), 100e-12, 1e-15);
}

TEST(Technology, LambdaIsHalfFeature)
{
    EXPECT_NEAR(tech45().lambda, tech45().featureSize / 2.0, 1e-12);
}

TEST(Technology, DielectricVelocityBelowLightSpeed)
{
    double v = tech45().dielectricVelocity();
    EXPECT_LT(v, constants::speedOfLight);
    EXPECT_GT(v, constants::speedOfLight / 3.0);
}

TEST(Technology, DielectricVelocityMatchesSqrtK)
{
    const Technology &tech = tech45();
    EXPECT_NEAR(tech.dielectricVelocity() * tech.sqrtK(),
                constants::speedOfLight, 1.0);
}

TEST(Technology, BulkCopperFasterThanBarriered)
{
    const Technology &tech = tech45();
    EXPECT_LT(tech.bulkCopperResistivity, tech.copperResistivity);
}

TEST(Technology, CustomTechnologyIsIndependent)
{
    Technology custom;
    custom.clockFreq = 5e9;
    EXPECT_NEAR(custom.cycleTime(), 200e-12, 1e-15);
    EXPECT_NEAR(tech45().cycleTime(), 100e-12, 1e-15);
}
