/**
 * @file
 * Unit tests for the closed-form stripline RLC extractor.
 */

#include <gtest/gtest.h>

#include "sim/logging.hh"

#include <cmath>

#include "phys/fieldsolver.hh"
#include "phys/geometry.hh"

using namespace tlsim::phys;

namespace
{

FieldSolver
solver()
{
    return FieldSolver(tech45());
}

} // namespace

TEST(FieldSolver, Table1LinesHavePlausibleZ0)
{
    auto fs = solver();
    for (const auto &spec : paperTable1Lines()) {
        LineParams params = fs.extract(spec.geometry);
        double z0 = params.z0();
        // On-chip transmission lines: tens of ohms.
        EXPECT_GT(z0, 20.0) << "W=" << spec.geometry.width;
        EXPECT_LT(z0, 120.0) << "W=" << spec.geometry.width;
    }
}

TEST(FieldSolver, VelocityBoundedBySpeedOfLightInDielectric)
{
    auto fs = solver();
    double v_max = tech45().dielectricVelocity();
    for (const auto &spec : paperTable1Lines()) {
        LineParams params = fs.extract(spec.geometry);
        EXPECT_LE(params.velocity(), v_max * 1.001);
        EXPECT_GT(params.velocity(), 0.5 * v_max);
    }
}

TEST(FieldSolver, WiderLineLowerImpedance)
{
    auto fs = solver();
    const auto &specs = paperTable1Lines();
    double z_narrow = fs.extract(specs[0].geometry).z0();
    double z_wide = fs.extract(specs[2].geometry).z0();
    EXPECT_GT(z_narrow, z_wide);
}

TEST(FieldSolver, ResistanceMatchesBulkCopper)
{
    auto fs = solver();
    const auto &geom = paperTable1Lines()[0].geometry;
    LineParams params = fs.extract(geom);
    double expected = tech45().bulkCopperResistivity /
                      geom.crossSection();
    EXPECT_NEAR(params.resistance, expected, expected * 1e-9);
}

TEST(FieldSolver, SkinDepthAt10GHz)
{
    auto fs = solver();
    // Copper at 10 GHz: ~0.65-0.75 um.
    double delta = fs.skinDepth(10e9);
    EXPECT_GT(delta, 0.4e-6);
    EXPECT_LT(delta, 1.0e-6);
}

TEST(FieldSolver, SkinDepthDecreasesWithFrequency)
{
    auto fs = solver();
    EXPECT_GT(fs.skinDepth(1e9), fs.skinDepth(10e9));
    EXPECT_GT(fs.skinDepth(10e9), fs.skinDepth(100e9));
}

TEST(FieldSolver, SkinDepthInverseSquareRootLaw)
{
    auto fs = solver();
    EXPECT_NEAR(fs.skinDepth(1e9) / fs.skinDepth(4e9), 2.0, 1e-6);
}

TEST(FieldSolver, AcResistanceNeverBelowDc)
{
    auto fs = solver();
    const auto &geom = paperTable1Lines()[1].geometry;
    double r_dc = fs.acResistance(geom, 0.0);
    for (double f : {1e8, 1e9, 1e10, 1e11})
        EXPECT_GE(fs.acResistance(geom, f), r_dc);
}

TEST(FieldSolver, AcResistanceGrowsAtHighFrequency)
{
    auto fs = solver();
    const auto &geom = paperTable1Lines()[2].geometry;
    EXPECT_GT(fs.acResistance(geom, 100e9),
              1.5 * fs.acResistance(geom, 1e9));
}

TEST(FieldSolver, LinePropagationDelayAbout50to80PsPerCm)
{
    // The headline property: ~speed-of-light flight over 1 cm.
    auto fs = solver();
    for (const auto &spec : paperTable1Lines()) {
        LineParams params = fs.extract(spec.geometry);
        double flight_ps = 0.01 / params.velocity() / 1e-12;
        EXPECT_GT(flight_ps, 35.0);
        EXPECT_LT(flight_ps, 95.0);
    }
}

TEST(FieldSolver, DegenerateGeometryPanics)
{
    auto fs = solver();
    WireGeometry bad{0.0, 1e-6, 1e-6, 1e-6};
    EXPECT_THROW(fs.extract(bad), tlsim::PanicError);
}
