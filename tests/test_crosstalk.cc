/**
 * @file
 * Tests for the coupled-line crosstalk model: the paper's shielding
 * scheme keeps neighbour noise within budget, unshielded bundles do
 * not.
 */

#include <gtest/gtest.h>

#include "sim/logging.hh"

#include "phys/crosstalk.hh"
#include "phys/geometry.hh"

using namespace tlsim::phys;

namespace
{

CrosstalkModel
model()
{
    return CrosstalkModel(tech45());
}

} // namespace

TEST(Crosstalk, ShieldedTable1LinesWithinBudget)
{
    auto xt = model();
    for (const auto &spec : paperTable1Lines()) {
        auto result = xt.analyze(spec.geometry, spec.length, true);
        EXPECT_TRUE(result.withinBudget())
            << "len " << spec.length << " noise "
            << result.worstNoise();
    }
}

TEST(Crosstalk, UnshieldedLinesNearOrOverBudget)
{
    // Without shields the denser design points bust the budget
    // outright; even the widest-spaced line sits right at the edge
    // with no margin for the other noise sources.
    auto xt = model();
    for (const auto &spec : paperTable1Lines()) {
        auto result = xt.analyze(spec.geometry, spec.length, false);
        EXPECT_GT(result.worstNoise(), 0.12)
            << "len " << spec.length;
    }
    auto narrow =
        xt.analyze(paperTable1Lines()[0].geometry,
                   paperTable1Lines()[0].length, false);
    EXPECT_FALSE(narrow.withinBudget());
}

TEST(Crosstalk, ShieldCutsCouplingByAnOrderOfMagnitude)
{
    auto xt = model();
    const auto &spec = paperTable1Lines()[1];
    auto bare = xt.analyze(spec.geometry, spec.length, false);
    auto shielded = xt.analyze(spec.geometry, spec.length, true);
    EXPECT_LT(shielded.capacitiveRatio,
              0.1 * bare.capacitiveRatio);
    EXPECT_LT(shielded.inductiveRatio, 0.5 * bare.inductiveRatio);
    EXPECT_LT(shielded.worstNoise(), bare.worstNoise());
}

TEST(Crosstalk, NearEndSaturatesWithLength)
{
    auto xt = model();
    const auto &geom = paperTable1Lines()[0].geometry;
    auto near = xt.analyze(geom, 0.2e-2, false);
    auto far = xt.analyze(geom, 1.3e-2, false);
    // Backward crosstalk saturates once the line is longer than the
    // edge: the two long lines agree.
    EXPECT_NEAR(far.nearEnd, near.nearEnd, 0.05);
}

TEST(Crosstalk, RatiosAreFractions)
{
    auto xt = model();
    for (const auto &spec : paperTable1Lines()) {
        for (bool shielded : {false, true}) {
            auto r = xt.analyze(spec.geometry, spec.length, shielded);
            EXPECT_GE(r.capacitiveRatio, 0.0);
            EXPECT_LE(r.capacitiveRatio, 1.0);
            EXPECT_GE(r.inductiveRatio, 0.0);
            EXPECT_LE(r.inductiveRatio, 1.0);
            EXPECT_GE(r.farEnd, 0.0);
            EXPECT_LE(r.farEnd, 1.0);
        }
    }
}

TEST(Crosstalk, SlowerEdgesCoupleLess)
{
    auto xt = model();
    const auto &spec = paperTable1Lines()[2];
    auto fast = xt.analyze(spec.geometry, spec.length, true, 5e-12);
    auto slow = xt.analyze(spec.geometry, spec.length, true, 50e-12);
    EXPECT_LE(slow.farEnd, fast.farEnd);
}

TEST(Crosstalk, BadQueryPanics)
{
    auto xt = model();
    EXPECT_THROW(xt.analyze(paperTable1Lines()[0].geometry, 0.0, true),
                 tlsim::PanicError);
}
