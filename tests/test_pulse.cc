/**
 * @file
 * Tests for the frequency-domain pulse simulator — the HSPICE
 * W-element substitute. The central reproduction check: all three
 * Table 1 transmission-line design points meet the paper's signal
 * integrity requirements (>= 75% Vdd amplitude, >= 40% cycle pulse
 * width) at 10 GHz.
 */

#include <gtest/gtest.h>

#include "sim/logging.hh"

#include "phys/fieldsolver.hh"
#include "phys/geometry.hh"
#include "phys/pulse.hh"

using namespace tlsim::phys;

namespace
{

PulseSimulator
sim()
{
    return PulseSimulator(tech45());
}

} // namespace

TEST(Pulse, Table1LinesPassSignalIntegrity)
{
    auto ps = sim();
    for (const auto &spec : paperTable1Lines()) {
        PulseResult result = ps.simulate(spec.geometry, spec.length);
        EXPECT_TRUE(result.amplitudeOk)
            << "length " << spec.length << " peak "
            << result.peakAmplitude;
        EXPECT_TRUE(result.widthOk)
            << "length " << spec.length << " width "
            << result.pulseWidth;
    }
}

TEST(Pulse, DelayTracksFlightTime)
{
    auto ps = sim();
    FieldSolver fs(tech45());
    for (const auto &spec : paperTable1Lines()) {
        LineParams params = fs.extract(spec.geometry);
        double flight = spec.length / params.velocity();
        PulseResult result = ps.simulate(spec.geometry, spec.length);
        // 50%-crossing delay is within ~60% of the LC flight time
        // (attenuation slows the apparent edge).
        EXPECT_GT(result.delay, 0.8 * flight);
        EXPECT_LT(result.delay, 1.6 * flight);
    }
}

TEST(Pulse, LongerLineMoreDelay)
{
    auto ps = sim();
    const auto &geom = paperTable1Lines()[2].geometry;
    PulseResult near = ps.simulate(geom, 0.5e-2);
    PulseResult far = ps.simulate(geom, 1.3e-2);
    EXPECT_GT(far.delay, near.delay);
}

TEST(Pulse, LongerLineMoreAttenuation)
{
    auto ps = sim();
    const auto &geom = paperTable1Lines()[0].geometry;
    PulseResult near = ps.simulate(geom, 0.3e-2);
    PulseResult far = ps.simulate(geom, 1.5e-2);
    EXPECT_GT(near.peakAmplitude, far.peakAmplitude);
}

TEST(Pulse, SubCycleFlightAt10GHz)
{
    // The headline TLC property: ~1 cm reachable within one cycle.
    auto ps = sim();
    for (const auto &spec : paperTable1Lines()) {
        PulseResult result = ps.simulate(spec.geometry, spec.length);
        EXPECT_LT(result.delay, tech45().cycleTime());
    }
}

TEST(Pulse, NarrowRcWireFailsAsTransmissionLine)
{
    // A minimum-pitch RC wire cannot carry a clean 10 GHz pulse over
    // 1 cm: the resistive attenuation destroys the amplitude.
    auto ps = sim();
    PulseResult result = ps.simulate(conventionalGlobalWire(), 1.0e-2);
    EXPECT_FALSE(result.amplitudeOk);
}

TEST(Pulse, MismatchedSourceStillDelivers)
{
    auto ps = sim();
    const auto &spec = paperTable1Lines()[0];
    PulseResult matched = ps.simulate(spec.geometry, spec.length);
    PulseResult strong =
        ps.simulate(spec.geometry, spec.length, 10.0); // low-R driver
    EXPECT_GT(strong.peakAmplitude, 0.5);
    EXPECT_GT(matched.peakAmplitude, 0.5);
}

TEST(Pulse, WaveformHasSaneShape)
{
    auto ps = sim();
    const auto &spec = paperTable1Lines()[1];
    auto wave = ps.waveform(spec.geometry, spec.length);
    ASSERT_FALSE(wave.empty());
    // Starts near zero, peaks somewhere above 0.7 Vdd, returns low.
    EXPECT_LT(std::abs(wave.front()), 0.2);
    double peak = 0.0;
    for (double v : wave)
        peak = std::max(peak, v);
    EXPECT_GT(peak, 0.7);
    EXPECT_LT(std::abs(wave.back()), 0.35);
}

TEST(Pulse, BadFftSizePanics)
{
    EXPECT_THROW(PulseSimulator(tech45(), 1000), tlsim::PanicError);
}
