/**
 * @file
 * Unit tests for the busy-until contention link.
 */

#include <gtest/gtest.h>

#include "noc/link.hh"
#include "sim/logging.hh"

using namespace tlsim;
using namespace tlsim::noc;

TEST(Link, FreeLinkStartsImmediately)
{
    Link link;
    EXPECT_EQ(link.reserve(100, 4), 100u);
    EXPECT_EQ(link.freeAt(), 104u);
}

TEST(Link, BackToBackSerializes)
{
    Link link;
    link.reserve(100, 4);
    EXPECT_EQ(link.reserve(100, 4), 104u);
    EXPECT_EQ(link.freeAt(), 108u);
}

TEST(Link, GapLeavesIdleTime)
{
    Link link;
    link.reserve(100, 4);
    EXPECT_EQ(link.reserve(200, 2), 200u);
}

TEST(Link, BusyCyclesAccumulate)
{
    Link link;
    link.reserve(0, 3);
    link.reserve(0, 5);
    EXPECT_EQ(link.busyCycles(), 8u);
    EXPECT_EQ(link.messageCount(), 2u);
}

TEST(Link, ResetStatsKeepsHorizon)
{
    Link link;
    link.reserve(0, 10);
    link.resetStats();
    EXPECT_EQ(link.busyCycles(), 0u);
    EXPECT_EQ(link.messageCount(), 0u);
    // Still busy until 10: the physical pipe state survives.
    EXPECT_EQ(link.reserve(0, 1), 10u);
}

TEST(Link, ZeroDurationReservationPanics)
{
    // A zero-duration reservation is a simulator bug (it would make
    // serialization time vanish); the guard turns it into a panic.
    Link link;
    EXPECT_THROW(link.reserve(5, 0), PanicError);
}

TEST(Link, OverflowingReservationPanics)
{
    Link link;
    EXPECT_THROW(link.reserve(MaxTick - 1, 4), PanicError);
}

TEST(Link, ReservationUpToMaxTickSucceeds)
{
    Link link;
    EXPECT_EQ(link.reserve(MaxTick - 4, 4), MaxTick - 4);
    EXPECT_EQ(link.freeAt(), MaxTick);
}

TEST(Link, ResetHorizonDropsBacklog)
{
    // Fault-induced drain: a dead link's queued reservations are
    // abandoned so fallback traffic does not inherit its backlog.
    Link link;
    link.reserve(0, 100);
    link.resetHorizon(10);
    EXPECT_EQ(link.freeAt(), 10u);
    EXPECT_EQ(link.reserve(10, 2), 10u);
    // Stats survive the drain (occupancy already happened).
    EXPECT_EQ(link.messageCount(), 2u);
}

TEST(Link, ResetHorizonNeverExtends)
{
    Link link;
    link.reserve(0, 5);
    link.resetHorizon(50); // later than busy-until: no-op
    EXPECT_EQ(link.freeAt(), 5u);
}

TEST(Link, FifoOrderUnderContention)
{
    Link link;
    Tick a = link.reserve(10, 2);
    Tick b = link.reserve(10, 2);
    Tick c = link.reserve(11, 2);
    EXPECT_LT(a, b);
    EXPECT_LT(b, c);
}
