/**
 * @file
 * Unit tests for the busy-until contention link.
 */

#include <gtest/gtest.h>

#include "noc/link.hh"

using namespace tlsim;
using namespace tlsim::noc;

TEST(Link, FreeLinkStartsImmediately)
{
    Link link;
    EXPECT_EQ(link.reserve(100, 4), 100u);
    EXPECT_EQ(link.freeAt(), 104u);
}

TEST(Link, BackToBackSerializes)
{
    Link link;
    link.reserve(100, 4);
    EXPECT_EQ(link.reserve(100, 4), 104u);
    EXPECT_EQ(link.freeAt(), 108u);
}

TEST(Link, GapLeavesIdleTime)
{
    Link link;
    link.reserve(100, 4);
    EXPECT_EQ(link.reserve(200, 2), 200u);
}

TEST(Link, BusyCyclesAccumulate)
{
    Link link;
    link.reserve(0, 3);
    link.reserve(0, 5);
    EXPECT_EQ(link.busyCycles(), 8u);
    EXPECT_EQ(link.messageCount(), 2u);
}

TEST(Link, ResetStatsKeepsHorizon)
{
    Link link;
    link.reserve(0, 10);
    link.resetStats();
    EXPECT_EQ(link.busyCycles(), 0u);
    EXPECT_EQ(link.messageCount(), 0u);
    // Still busy until 10: the physical pipe state survives.
    EXPECT_EQ(link.reserve(0, 1), 10u);
}

TEST(Link, ZeroDurationReservation)
{
    Link link;
    EXPECT_EQ(link.reserve(5, 0), 5u);
    EXPECT_EQ(link.freeAt(), 5u);
}

TEST(Link, FifoOrderUnderContention)
{
    Link link;
    Tick a = link.reserve(10, 2);
    Tick b = link.reserve(10, 2);
    Tick c = link.reserve(11, 2);
    EXPECT_LT(a, b);
    EXPECT_LT(b, c);
}
