/**
 * @file
 * Tests for the fault-injection & resilience subsystem: the seeded
 * injector, schedule parsing, the deadlock watchdog, FaultConfig's
 * config-plumbing guarantees (default config stays bit-identical to
 * the pre-fault-subsystem format), and end-to-end fault runs (bit
 * errors drive retries; a dead link degrades instead of hanging) with
 * serial/parallel determinism.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>
#include <string>
#include <vector>

#include "harness/config.hh"
#include "harness/sweep/resultcache.hh"
#include "harness/sweep/runspec.hh"
#include "harness/sweep/sweep.hh"
#include "sim/fault/faultconfig.hh"
#include "sim/fault/injector.hh"
#include "sim/fault/watchdog.hh"
#include "sim/logging.hh"

using namespace tlsim;
using namespace tlsim::fault;
using namespace tlsim::harness;

namespace
{

/** Tiny budgets so each fault run finishes in milliseconds. */
sweep::RunSpec
faultSpec(DesignKind design, const std::string &bench)
{
    sweep::RunSpec spec = sweep::makeRunSpec(design, bench);
    spec.config.warmup = 2'000;
    spec.config.measure = 10'000;
    spec.config.functionalWarm = 100'000;
    return spec;
}

sweep::SweepOptions
quietSweep(int jobs)
{
    sweep::SweepOptions options;
    options.jobs = jobs;
    options.verbose = false;
    return options;
}

std::string
resultJson(const sweep::RunSpec &spec, const RunResult &result)
{
    std::ostringstream os;
    writeResultJson(os, spec, result);
    return os.str();
}

} // namespace

TEST(FaultInjector, SameSeedsSameErrorStream)
{
    FaultConfig cfg;
    cfg.enabled = true;
    cfg.bitErrorRate = 0.25;
    Injector a(cfg, 42), b(cfg, 42), c(cfg, 43);
    bool diverged = false;
    for (int i = 0; i < 256; ++i) {
        bool ea = a.messageError(i % 4);
        EXPECT_EQ(ea, b.messageError(i % 4));
        diverged |= ea != c.messageError(i % 4);
    }
    EXPECT_TRUE(diverged); // different stream seed, different stream
    EXPECT_EQ(a.errorsInjected(), b.errorsInjected());
    EXPECT_GT(a.errorsInjected(), 0u);
}

TEST(FaultInjector, LinkWeightScalesErrorRate)
{
    FaultConfig cfg;
    cfg.enabled = true;
    cfg.bitErrorRate = 0.5;
    Injector inj(cfg, 7);
    inj.setLinkWeight(0, 0.0); // weighted rate 0: never faults
    inj.setLinkWeight(1, 2.0); // weighted rate 1.0: always faults
    for (int i = 0; i < 64; ++i) {
        EXPECT_FALSE(inj.messageError(0));
        EXPECT_TRUE(inj.messageError(1));
    }
    EXPECT_DOUBLE_EQ(inj.linkWeight(0), 0.0);
    EXPECT_DOUBLE_EQ(inj.linkWeight(2), 1.0); // default
}

TEST(FaultInjector, ParsesSchedules)
{
    auto sched = parseSchedule(" 3@100, 5 ,7@0 ", "deadLinks");
    ASSERT_EQ(sched.size(), 3u);
    EXPECT_EQ(sched.at(3), 100u);
    EXPECT_EQ(sched.at(5), 0u); // no '@': dead from the start
    EXPECT_EQ(sched.at(7), 0u);
    EXPECT_TRUE(parseSchedule("", "deadLinks").empty());
    EXPECT_THROW(parseSchedule("x@y", "deadLinks"), FatalError);
    EXPECT_THROW(parseSchedule("1@-5", "deadLinks"), FatalError);
}

TEST(FaultInjector, DeadLinksAndStuckBanksRespectOnset)
{
    FaultConfig cfg;
    cfg.enabled = true;
    cfg.deadLinks = "2@50";
    cfg.stuckBanks = "4";
    Injector inj(cfg, 0);
    EXPECT_TRUE(inj.hasDeadLinks());
    EXPECT_FALSE(inj.linkDead(2, 49));
    EXPECT_TRUE(inj.linkDead(2, 50));
    EXPECT_FALSE(inj.linkDead(3, 1000));
    EXPECT_TRUE(inj.bankStuck(4, 0));
    EXPECT_FALSE(inj.bankStuck(5, 0));
}

TEST(FaultInjector, BackoffIsExponentialAndCapped)
{
    FaultConfig cfg;
    cfg.retryBackoff = 8;
    Injector inj(cfg, 0);
    EXPECT_EQ(inj.backoff(0), 8u);
    EXPECT_EQ(inj.backoff(1), 16u);
    EXPECT_EQ(inj.backoff(3), 64u);
    // The shift saturates: huge attempt counts cannot overflow Tick.
    EXPECT_EQ(inj.backoff(1000), inj.backoff(24));
}

TEST(Watchdog, FiresOnQuiescentQueueWithOutstandingRequests)
{
    Watchdog wd(1'000);
    int client = wd.addClient("core0.l1d");
    wd.onIssue(client, 0x40, 100);
    EXPECT_EQ(wd.outstanding(), 1u);
    EXPECT_THROW(wd.onQuiescent(200), PanicError);
    EXPECT_EQ(wd.firings(), 1u);
}

TEST(Watchdog, FiresOnOverAgeRequestOnly)
{
    Watchdog wd(1'000);
    int client = wd.addClient("core0.l1i");
    wd.onIssue(client, 0x80, 100);
    wd.checkAge(500); // within budget: no fire
    EXPECT_EQ(wd.firings(), 0u);
    EXPECT_THROW(wd.checkAge(2'000), PanicError);
    EXPECT_EQ(wd.firings(), 1u);
}

TEST(Watchdog, CompletedRequestsDoNotFire)
{
    Watchdog wd(1'000);
    int client = wd.addClient("core0.l1d");
    wd.onIssue(client, 0x40, 100);
    wd.onComplete(client, 0x40);
    EXPECT_EQ(wd.outstanding(), 0u);
    wd.onQuiescent(5'000); // nothing outstanding: quiescence is fine
    wd.checkAge(5'000);
    EXPECT_EQ(wd.firings(), 0u);
}

TEST(Watchdog, DiagnosticCallbackRunsBeforePanic)
{
    Watchdog wd(10);
    int client = wd.addClient("core0.l1d");
    bool dumped = false;
    wd.setDiagnostic([&] { dumped = true; });
    wd.onIssue(client, 0x40, 0);
    EXPECT_THROW(wd.checkAge(100), PanicError);
    EXPECT_TRUE(dumped);
}

TEST(FaultConfig, DefaultLeavesCanonicalKeyAndHashesUntouched)
{
    // The fault section must not appear for a default FaultConfig:
    // every pre-fault-subsystem canonical key, machine hash, and
    // cache entry stays bit-identical.
    SystemConfig config;
    EXPECT_EQ(config.canonicalKey().find("fault."), std::string::npos);

    SystemConfig faulty;
    faulty.fault.enabled = true;
    faulty.fault.bitErrorRate = 1e-3;
    EXPECT_NE(faulty.canonicalKey().find("fault."), std::string::npos);
    EXPECT_NE(faulty.canonicalKey(), config.canonicalKey());
    EXPECT_NE(faulty.machineHash(), config.machineHash());

    // Spec keys follow: a faulty machine is a non-default machine.
    sweep::RunSpec plain = sweep::makeRunSpec(DesignKind::TlcBase,
                                              "gcc");
    sweep::RunSpec injected = plain;
    injected.config.fault = faulty.fault;
    EXPECT_EQ(sweep::specKey(plain).find("/c"), std::string::npos);
    EXPECT_NE(sweep::specKey(injected).find("/c"), std::string::npos);
    EXPECT_NE(sweep::cacheKey(plain), sweep::cacheKey(injected));
}

TEST(FaultConfig, JsonRoundTripsEveryField)
{
    SystemConfig config;
    config.fault.enabled = true;
    config.fault.bitErrorRate = 2.5e-4;
    config.fault.deriveFromMargin = true;
    config.fault.deadLinks = "0@100,3";
    config.fault.stuckBanks = "7@5000";
    config.fault.maxRetries = 9;
    config.fault.retryBackoff = 16;
    config.fault.requestTimeout = 9999;
    config.fault.crcCycles = 2;
    config.fault.watchdogMaxAge = 123456;
    config.fault.seed = 77;
    SystemConfig loaded = loadConfigJson(configToJson(config));
    EXPECT_EQ(loaded, config);
    EXPECT_EQ(loaded.fault, config.fault);
}

TEST(FaultConfig, LoadsConfigsWrittenBeforeFaultSubsystem)
{
    // Strip the fault object from a saved config to reproduce the
    // pre-fault-subsystem JSON shape; it must still load, with a
    // default FaultConfig.
    SystemConfig config;
    std::string json = configToJson(config);
    std::size_t pos = json.find(",\n  \"fault\"");
    ASSERT_NE(pos, std::string::npos);
    std::string legacy = json.substr(0, pos) + "\n}\n";
    SystemConfig loaded = loadConfigJson(legacy);
    EXPECT_EQ(loaded, config);
    EXPECT_EQ(loaded.fault, FaultConfig{});
}

TEST(FaultRun, BitErrorsDriveRetriesAndFaultLatency)
{
    sweep::RunSpec spec = faultSpec(DesignKind::TlcBase, "gcc");
    spec.config.fault.enabled = true;
    spec.config.fault.bitErrorRate = 0.02;
    auto outcome = sweep::runSweep({spec}, quietSweep(1));
    ASSERT_EQ(outcome.failed, 0u);
    const RunResult &r = outcome.results[0];
    EXPECT_TRUE(r.error.empty());
    EXPECT_GT(r.linkRetries, 0.0);
    EXPECT_GT(r.faultSamples, 0u);
    EXPECT_GT(r.faultMean, 0.0); // CRC surcharge at minimum
}

TEST(FaultRun, DeadLinkDegradesInsteadOfHanging)
{
    // Kill pair 0's down link (id 0) from t=0: every group whose
    // members ride pair 0 must fall back to the RC path and the run
    // still completes with zero watchdog firings.
    sweep::RunSpec spec = faultSpec(DesignKind::TlcBase, "gcc");
    spec.config.fault.enabled = true;
    spec.config.fault.deadLinks = "0@0";
    auto outcome = sweep::runSweep({spec}, quietSweep(1));
    ASSERT_EQ(outcome.failed, 0u);
    const RunResult &r = outcome.results[0];
    EXPECT_TRUE(r.error.empty());
    EXPECT_GT(r.degradedRequests, 0.0);
    EXPECT_GT(r.faultSamples, 0u);
}

TEST(FaultRun, MarginDerivedWeightsStayDeterministic)
{
    sweep::RunSpec spec = faultSpec(DesignKind::TlcOpt500, "mcf");
    spec.config.fault.enabled = true;
    spec.config.fault.bitErrorRate = 0.01;
    spec.config.fault.deriveFromMargin = true;
    auto first = sweep::runSweep({spec}, quietSweep(1));
    auto second = sweep::runSweep({spec}, quietSweep(1));
    ASSERT_EQ(first.failed, 0u);
    EXPECT_EQ(resultJson(spec, first.results[0]),
              resultJson(spec, second.results[0]));
    EXPECT_GT(first.results[0].linkRetries, 0.0);
}

TEST(FaultRun, ParallelAndWarmCacheMatchSerial)
{
    // The fault stream derives from the spec, not the schedule: a
    // fault sweep is deterministic across --jobs and cache state.
    std::vector<sweep::RunSpec> specs;
    for (const char *bench : {"gcc", "mcf", "apache"}) {
        sweep::RunSpec spec = faultSpec(DesignKind::TlcBase, bench);
        spec.config.fault.enabled = true;
        spec.config.fault.bitErrorRate = 0.01;
        specs.push_back(spec);
        sweep::RunSpec dead = faultSpec(DesignKind::Snuca2, bench);
        dead.config.fault.enabled = true;
        dead.config.fault.bitErrorRate = 0.005;
        specs.push_back(dead);
    }

    auto serial = sweep::runSweep(specs, quietSweep(1));
    auto parallel = sweep::runSweep(specs, quietSweep(4));
    ASSERT_EQ(serial.failed, 0u);
    ASSERT_EQ(parallel.failed, 0u);
    for (std::size_t i = 0; i < specs.size(); ++i) {
        EXPECT_EQ(resultJson(specs[i], serial.results[i]),
                  resultJson(specs[i], parallel.results[i]))
            << sweep::specKey(specs[i]);
    }

    std::string dir =
        ::testing::TempDir() + "tlsim_fault_warmcache";
    std::filesystem::remove_all(dir);
    sweep::SweepOptions cached = quietSweep(2);
    cached.cacheDir = dir;
    auto cold = sweep::runSweep(specs, cached);
    auto warm = sweep::runSweep(specs, cached);
    EXPECT_EQ(warm.executed, 0u);
    for (std::size_t i = 0; i < specs.size(); ++i) {
        EXPECT_EQ(resultJson(specs[i], serial.results[i]),
                  resultJson(specs[i], warm.results[i]))
            << sweep::specKey(specs[i]);
    }
}

TEST(FaultRun, CrashIsolatedSweepReportsFailureAndCachesSuccesses)
{
    // One healthy spec, one spec that panics during System build
    // (unknown design): the sweep completes, reports the failure, and
    // memoizes only the success.
    sweep::RunSpec good = faultSpec(DesignKind::TlcBase, "gcc");
    sweep::RunSpec bad = good;
    bad.config.design = "NoSuchDesign";

    std::string dir = ::testing::TempDir() + "tlsim_fault_crash";
    std::filesystem::remove_all(dir);
    sweep::SweepOptions options = quietSweep(2);
    options.cacheDir = dir;
    auto outcome = sweep::runSweep({good, bad}, options);

    EXPECT_EQ(outcome.failed, 1u);
    EXPECT_TRUE(outcome.results[0].error.empty());
    EXPECT_FALSE(outcome.results[1].error.empty());

    // Rerun: the success is warm, the failure executes (and fails)
    // again — a crash must never be served from cache.
    auto rerun = sweep::runSweep({good, bad}, options);
    EXPECT_EQ(rerun.cached, 1u);
    EXPECT_EQ(rerun.executed, 1u);
    EXPECT_EQ(rerun.failed, 1u);
}
