/**
 * @file
 * Tests for SimPoint-style interval selection, reweighted
 * aggregation, and warm-state checkpointing: plan determinism,
 * weight arithmetic, cold-vs-checkpoint byte identity, and the
 * sampled-vs-full accuracy bound documented in docs/SAMPLING.md.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>
#include <vector>

#include "harness/checkpoint.hh"
#include "harness/tracerun.hh"
#include "workload/generator.hh"
#include "workload/simpoint.hh"
#include "workload/tracefile.hh"

using namespace tlsim;
using namespace tlsim::harness;
using namespace tlsim::workload;

namespace
{

/** Synthesize a small in-memory trace from a paper profile. */
TraceFile
makeTrace(const std::string &profile, std::uint64_t instructions,
          std::uint64_t seed = 3)
{
    TraceGenerator generator(profileByName(profile), seed);
    TraceFileWriter writer(8192);
    while (writer.instructionCount() < instructions)
        writer.append(generator.next());
    std::ostringstream os(std::ios::binary);
    writer.finish(os);
    const std::string &bytes = os.str();
    return TraceFile::fromBytes(
        std::vector<std::uint8_t>(bytes.begin(), bytes.end()),
        "<" + profile + ">");
}

std::string
freshDir(const std::string &name)
{
    std::string dir = ::testing::TempDir() + "tlsim_sampling_" + name;
    std::filesystem::remove_all(dir);
    return dir;
}

RunResult
syntheticResult(std::uint64_t cycles, std::uint64_t instructions,
                double misses_per_1k)
{
    RunResult r;
    r.design = "S-NUCA";
    r.cycles = cycles;
    r.instructions = instructions;
    r.ipc = static_cast<double>(instructions) /
            static_cast<double>(cycles);
    r.l2MissesPer1k = misses_per_1k;
    return r;
}

IntervalRun
weighted(const RunResult &result, double weight)
{
    IntervalRun run;
    run.result = result;
    run.rep.weight = weight;
    run.rep.instructions = result.instructions;
    return run;
}

} // namespace

TEST(Sampling, PlanIsDeterministicAndWeightsSumToOne)
{
    TraceFile trace = makeTrace("gcc", 300000);
    SamplingPlan a = selectIntervals(trace, 30000, 4, 0);
    SamplingPlan b = selectIntervals(trace, 30000, 4, 0);

    ASSERT_FALSE(a.representatives.empty());
    ASSERT_EQ(a.representatives.size(), b.representatives.size());
    double weight_sum = 0.0;
    for (std::size_t i = 0; i < a.representatives.size(); ++i) {
        const RepresentativeInterval &ra = a.representatives[i];
        const RepresentativeInterval &rb = b.representatives[i];
        EXPECT_EQ(ra.interval, rb.interval);
        EXPECT_EQ(ra.startRecord, rb.startRecord);
        EXPECT_EQ(ra.weight, rb.weight); // bit-identical plans
        weight_sum += ra.weight;
        if (i > 0) {
            EXPECT_GT(ra.interval,
                      a.representatives[i - 1].interval);
        }
    }
    EXPECT_NEAR(weight_sum, 1.0, 1e-12);
    EXPECT_LE(a.coveredInstructions, trace.instructionCount());
    EXPECT_GT(a.coveredInstructions, trace.instructionCount() / 2);
}

TEST(Sampling, FirstIntervalOnlyRepresentsItself)
{
    TraceFile trace = makeTrace("gcc", 400000);
    SamplingPlan plan = selectIntervals(trace, 25000, 4, 0);
    for (const RepresentativeInterval &rep : plan.representatives) {
        if (rep.startInstr == 0)
            EXPECT_EQ(rep.clusterSize, 1u)
                << "cold-boot interval must not stand for a larger "
                   "cluster";
    }
}

TEST(Sampling, AggregateOfIdenticalIntervalsIsIdentity)
{
    RunResult base = syntheticResult(200000, 50000, 12.5);
    std::vector<IntervalRun> runs = {weighted(base, 0.5),
                                     weighted(base, 0.25),
                                     weighted(base, 0.25)};
    RunResult out = aggregateWeighted(runs, 1000000, "bench");
    // Identical per-interval behaviour must extrapolate unchanged:
    // CPI 4.0 -> 4M cycles over 1M instructions.
    EXPECT_EQ(out.instructions, 1000000u);
    EXPECT_EQ(out.cycles, 4000000u);
    EXPECT_NEAR(out.ipc, base.ipc, 1e-12);
    EXPECT_NEAR(out.l2MissesPer1k, 12.5, 1e-12);
    EXPECT_EQ(out.benchmark, "bench");
}

TEST(Sampling, AggregateWeightsArithmetic)
{
    // CPI 2 at weight 0.75, CPI 6 at weight 0.25 -> CPI 3.
    std::vector<IntervalRun> runs = {
        weighted(syntheticResult(100000, 50000, 10.0), 0.75),
        weighted(syntheticResult(300000, 50000, 30.0), 0.25)};
    RunResult out = aggregateWeighted(runs, 400000, "w");
    EXPECT_EQ(out.cycles, 1200000u);
    EXPECT_NEAR(out.ipc, 1.0 / 3.0, 1e-12);
    EXPECT_NEAR(out.l2MissesPer1k, 15.0, 1e-12);
}

TEST(Sampling, PlanCacheRoundTrip)
{
    TraceFile trace = makeTrace("mcf", 200000);
    SamplingPlan plan = selectIntervals(trace, 20000, 3, 0);

    WarmCheckpointCache cache(freshDir("plan"));
    std::string key =
        samplingPlanKey(trace.contentHash(), 20000, 3, 0);
    SamplingPlan loaded;
    EXPECT_FALSE(cache.loadPlan(key, loaded));
    cache.storePlan(key, plan);
    ASSERT_TRUE(cache.loadPlan(key, loaded));

    EXPECT_EQ(loaded.intervalInstructions, plan.intervalInstructions);
    EXPECT_EQ(loaded.numIntervals, plan.numIntervals);
    EXPECT_EQ(loaded.coveredInstructions, plan.coveredInstructions);
    EXPECT_EQ(loaded.droppedTail, plan.droppedTail);
    ASSERT_EQ(loaded.representatives.size(),
              plan.representatives.size());
    for (std::size_t i = 0; i < plan.representatives.size(); ++i) {
        EXPECT_EQ(loaded.representatives[i].startRecord,
                  plan.representatives[i].startRecord);
        EXPECT_EQ(loaded.representatives[i].weight,
                  plan.representatives[i].weight);
        EXPECT_EQ(loaded.representatives[i].clusterSize,
                  plan.representatives[i].clusterSize);
    }
}

TEST(Sampling, KeysSeparateTracePositionMachineAndParameters)
{
    SystemConfig config;
    std::string base = checkpointKey(0x1111, 50000, config);
    EXPECT_NE(base, checkpointKey(0x2222, 50000, config));
    EXPECT_NE(base, checkpointKey(0x1111, 50001, config));
    SystemConfig other = config;
    other.design = "S-NUCA";
    EXPECT_NE(base, checkpointKey(0x1111, 50000, other));

    std::string plan = samplingPlanKey(0x1111, 50000, 4, 0);
    EXPECT_NE(plan, samplingPlanKey(0x1111, 50000, 4, 1));
    EXPECT_NE(plan, samplingPlanKey(0x1111, 50000, 5, 0));
    EXPECT_NE(plan, samplingPlanKey(0x1111, 40000, 4, 0));
}

TEST(Sampling, CheckpointResumeIsByteIdenticalToColdWarm)
{
    TraceFile trace = makeTrace("gcc", 200000);
    TraceRunOptions options;
    options.config = SystemConfig{};
    options.intervalInstructions = 25000;
    options.maxIntervals = 3;
    options.checkpointDir = freshDir("resume");

    SampledTraceOutcome cold = runSampledTrace(trace, options);
    EXPECT_EQ(cold.checkpointHits, 0u);
    EXPECT_GT(cold.checkpointStores, 0u);
    EXPECT_GT(cold.warmRecordsReplayed, 0u);

    SampledTraceOutcome resumed = runSampledTrace(trace, options);
    EXPECT_EQ(resumed.checkpointHits, resumed.intervals.size());
    EXPECT_EQ(resumed.warmRecordsReplayed, 0u);

    // Resume must be *byte-identical* to warming cold — both paths
    // load the same serialized warm payload before the timed phase.
    ASSERT_EQ(cold.intervals.size(), resumed.intervals.size());
    for (std::size_t i = 0; i < cold.intervals.size(); ++i) {
        SCOPED_TRACE(i);
        EXPECT_EQ(cold.intervals[i].result.cycles,
                  resumed.intervals[i].result.cycles);
        EXPECT_EQ(cold.intervals[i].result.ipc,
                  resumed.intervals[i].result.ipc);
        EXPECT_EQ(cold.intervals[i].result.l2MissesPer1k,
                  resumed.intervals[i].result.l2MissesPer1k);
        EXPECT_EQ(cold.intervals[i].result.meanLookupLatency,
                  resumed.intervals[i].result.meanLookupLatency);
    }
    EXPECT_EQ(cold.aggregate.cycles, resumed.aggregate.cycles);
    EXPECT_EQ(cold.aggregate.ipc, resumed.aggregate.ipc);
}

TEST(Sampling, DisabledCheckpointDirMatchesEnabled)
{
    TraceFile trace = makeTrace("gcc", 150000);
    TraceRunOptions options;
    options.config = SystemConfig{};
    options.intervalInstructions = 25000;
    options.maxIntervals = 2;
    options.checkpointDir.clear(); // disabled

    SampledTraceOutcome without = runSampledTrace(trace, options);
    EXPECT_EQ(without.checkpointHits, 0u);
    EXPECT_EQ(without.checkpointStores, 0u);

    options.checkpointDir = freshDir("disabled_vs");
    SampledTraceOutcome with = runSampledTrace(trace, options);
    EXPECT_EQ(with.aggregate.cycles, without.aggregate.cycles);
    EXPECT_EQ(with.aggregate.ipc, without.aggregate.ipc);
}

TEST(Sampling, SampledTracksFullWithinDocumentedTolerance)
{
    // The documented bound (docs/SAMPLING.md) is 10% IPC / 15% miss
    // rate for the shipped 2M-instruction sample; this 300k-trace
    // smoke uses the same machinery at unit-test cost.
    TraceFile trace = makeTrace("gcc", 300000);
    TraceRunOptions options;
    options.config = SystemConfig{};
    options.intervalInstructions = 30000;
    options.maxIntervals = 4;

    RunResult full = runFullTrace(trace, options);
    SampledTraceOutcome sampled = runSampledTrace(trace, options);

    ASSERT_GT(full.ipc, 0.0);
    double ipc_err =
        std::abs(sampled.aggregate.ipc - full.ipc) / full.ipc;
    EXPECT_LT(ipc_err, 0.10)
        << "sampled ipc " << sampled.aggregate.ipc << " vs full "
        << full.ipc;
    ASSERT_GT(full.l2MissesPer1k, 0.0);
    double miss_err = std::abs(sampled.aggregate.l2MissesPer1k -
                               full.l2MissesPer1k) /
                      full.l2MissesPer1k;
    EXPECT_LT(miss_err, 0.15)
        << "sampled miss/1k " << sampled.aggregate.l2MissesPer1k
        << " vs full " << full.l2MissesPer1k;
    // Sampling must actually sample: the timed instruction budget
    // stays well under the full trace.
    EXPECT_LT(sampled.timedInstructions,
              trace.instructionCount() / 2);
}
