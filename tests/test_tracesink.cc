/**
 * @file
 * Tests for the Chrome trace-event sink: JSON well-formedness, span
 * fields, and an end-to-end traced benchmark run covering all the
 * major span categories.
 */

#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "harness/system.hh"
#include "sim/trace/tracesink.hh"
#include "testjson.hh"

using namespace tlsim;

namespace
{

/** Install a sink for the test's scope and uninstall on exit. */
struct ActiveSinkGuard
{
    explicit ActiveSinkGuard(trace::TraceSink &sink)
    {
        trace::TraceSink::setActive(&sink);
    }

    ~ActiveSinkGuard() { trace::TraceSink::setActive(nullptr); }
};

} // namespace

TEST(TraceSink, EmptyTraceIsValidJson)
{
    std::ostringstream out;
    {
        trace::TraceSink sink(out);
        sink.close();
    }
    testjson::Value doc = testjson::parse(out.str());
    ASSERT_TRUE(doc.isObject());
    EXPECT_TRUE(doc.at("traceEvents").isArray());
    EXPECT_EQ(doc.at("traceEvents").size(), 0u);
}

TEST(TraceSink, SpanFieldsRoundTrip)
{
    std::ostringstream out;
    trace::TraceSink sink(out);
    sink.span(trace::cat::l2, "load 42", 100, 130, trace::tid::l2, 7);
    sink.span(trace::cat::noc, "hop", 105, 110, trace::tid::nocBase + 3);
    sink.close();

    testjson::Value doc = testjson::parse(out.str());
    const auto &events = doc.at("traceEvents");
    ASSERT_EQ(events.size(), 2u);
    EXPECT_EQ(sink.eventCount(), 2u);

    const auto &l2 = events.at(0);
    EXPECT_EQ(l2.at("ph").str, "X");
    EXPECT_EQ(l2.at("cat").str, "l2");
    EXPECT_EQ(l2.at("name").str, "load 42");
    EXPECT_EQ(l2.at("ts").number, 100.0);
    EXPECT_EQ(l2.at("dur").number, 30.0);
    EXPECT_EQ(l2.at("tid").number, static_cast<double>(trace::tid::l2));
    EXPECT_EQ(l2.at("args").at("req").number, 7.0);

    // No request id -> no args.req.
    const auto &hop = events.at(1);
    EXPECT_EQ(hop.at("cat").str, "noc");
    EXPECT_FALSE(hop.has("args"));
}

TEST(TraceSink, CounterEventsEmitted)
{
    std::ostringstream out;
    trace::TraceSink sink(out);
    sink.counter(trace::cat::dram, "outstanding", 50, 3.0);
    sink.close();

    testjson::Value doc = testjson::parse(out.str());
    const auto &ev = doc.at("traceEvents").at(0);
    EXPECT_EQ(ev.at("ph").str, "C");
    EXPECT_EQ(ev.at("args").at("value").number, 3.0);
}

TEST(TraceSink, NamesAreJsonEscaped)
{
    std::ostringstream out;
    trace::TraceSink sink(out);
    sink.span(trace::cat::l2, "weird \"name\"\nwith\tescapes", 0, 1,
              trace::tid::l2);
    sink.close();

    testjson::Value doc = testjson::parse(out.str());
    EXPECT_EQ(doc.at("traceEvents").at(0).at("name").str,
              "weird \"name\"\nwith\tescapes");
}

TEST(TraceSink, CloseIsIdempotentAndDropsLateEvents)
{
    std::ostringstream out;
    trace::TraceSink sink(out);
    sink.span(trace::cat::l2, "a", 0, 1, trace::tid::l2);
    sink.close();
    sink.span(trace::cat::l2, "late", 2, 3, trace::tid::l2);
    sink.close();

    testjson::Value doc = testjson::parse(out.str());
    EXPECT_EQ(doc.at("traceEvents").size(), 1u);
}

TEST(TraceSink, ActiveSinkInstallUninstall)
{
    EXPECT_EQ(trace::TraceSink::active(), nullptr);
    std::ostringstream out;
    trace::TraceSink sink(out);
    {
        ActiveSinkGuard guard(sink);
        EXPECT_EQ(trace::TraceSink::active(), &sink);
    }
    EXPECT_EQ(trace::TraceSink::active(), nullptr);
}

/**
 * End-to-end: run a short benchmark with tracing on and check that
 * the trace parses and covers the major span categories (the
 * acceptance bar from the PR issue: eventq, l2, noc, dram).
 */
TEST(TraceSink, TracedBenchmarkRunCoversCategories)
{
    std::ostringstream out;
    trace::TraceSink sink(out);
    {
        ActiveSinkGuard guard(sink);
        const auto &profile = workload::profileByName("mcf");
        harness::runBenchmark(harness::DesignKind::TlcBase, profile,
                              /*warm_instructions=*/20'000,
                              /*measure_instructions=*/100'000,
                              /*run_seed=*/0,
                              /*functional_warm=*/100'000);
    }
    sink.close();

    testjson::Value doc = testjson::parse(out.str());
    const auto &events = doc.at("traceEvents");
    ASSERT_GT(events.size(), 100u);

    std::set<std::string> categories;
    bool linked_req = false;
    for (std::size_t i = 0; i < events.size(); ++i) {
        const auto &ev = events.at(i);
        categories.insert(ev.at("cat").str);
        if (ev.at("ph").str == "X") {
            EXPECT_GE(ev.at("dur").number, 0.0);
        }
        if (ev.has("args") && ev.at("args").has("req"))
            linked_req = true;
    }
    EXPECT_TRUE(categories.count("eventq"));
    EXPECT_TRUE(categories.count("l2"));
    EXPECT_TRUE(categories.count("noc"));
    EXPECT_TRUE(categories.count("dram"));
    EXPECT_TRUE(categories.count("l1"));
    EXPECT_TRUE(categories.count("bank"));
    EXPECT_GE(categories.size(), 4u);
    EXPECT_TRUE(linked_req);
}
