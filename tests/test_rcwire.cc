/**
 * @file
 * Unit and property tests for the repeated RC wire model.
 */

#include <gtest/gtest.h>

#include "sim/logging.hh"

#include "phys/geometry.hh"
#include "phys/rcwire.hh"
#include "phys/technology.hh"

using namespace tlsim::phys;

namespace
{

RcWireModel
globalWire()
{
    return RcWireModel(tech45(), conventionalGlobalWire());
}

} // namespace

TEST(RcWire, PositiveParameters)
{
    auto wire = globalWire();
    EXPECT_GT(wire.resistancePerMeter(), 0.0);
    EXPECT_GT(wire.capacitancePerMeter(), 0.0);
    EXPECT_GT(wire.repeaterSpacing(), 0.0);
    EXPECT_GT(wire.repeaterSize(), 1.0);
}

TEST(RcWire, DelayLinearInLength)
{
    auto wire = globalWire();
    double d1 = wire.delay(1e-3);
    double d2 = wire.delay(2e-3);
    EXPECT_NEAR(d2, 2.0 * d1, 1e-15);
}

TEST(RcWire, RepeatedDelayNear100PsPerMm)
{
    // Calibration target: ~90 ps/mm keeps the paper's premise that
    // crossing a 2 cm die takes 25+ cycles at 10 GHz.
    auto wire = globalWire();
    double ps_per_mm = wire.delay(1e-3) / 1e-12;
    EXPECT_GT(ps_per_mm, 60.0);
    EXPECT_LT(ps_per_mm, 140.0);
}

TEST(RcWire, UnrepeatedQuadraticallyWorse)
{
    auto wire = globalWire();
    // For long wires, leaving out repeaters is far slower.
    EXPECT_GT(wire.unrepeatedDelay(1e-2), 5.0 * wire.delay(1e-2));
    // And unrepeated delay grows superlinearly (the driver's linear
    // charging term keeps it below the pure-quadratic 16x).
    double u1 = wire.unrepeatedDelay(1e-3);
    double u4 = wire.unrepeatedDelay(4e-3);
    EXPECT_GT(u4, 4.0 * u1);
}

TEST(RcWire, VelocityConsistentWithDelay)
{
    auto wire = globalWire();
    EXPECT_NEAR(wire.velocity() * wire.delay(1.0), 1.0, 1e-9);
}

TEST(RcWire, RepeaterCountScalesWithLength)
{
    auto wire = globalWire();
    int short_count = wire.repeaterCount(1e-3);
    int long_count = wire.repeaterCount(1e-2);
    EXPECT_GE(short_count, 1);
    EXPECT_GT(long_count, short_count);
    EXPECT_NEAR(static_cast<double>(long_count),
                10.0 * short_count, short_count + 2.0);
}

TEST(RcWire, TransistorsTwoPerRepeater)
{
    auto wire = globalWire();
    EXPECT_EQ(wire.transistorCount(1e-3),
              2L * wire.repeaterCount(1e-3));
}

TEST(RcWire, EnergyMonotoneInLength)
{
    auto wire = globalWire();
    EXPECT_LT(wire.energyPerTransition(1e-3),
              wire.energyPerTransition(5e-3));
}

TEST(RcWire, EnergyPerMmInPlausibleRange)
{
    auto wire = globalWire();
    double fj = wire.energyPerTransition(1e-3) / 1e-15;
    // Tens to hundreds of fJ per mm per transition at 45 nm.
    EXPECT_GT(fj, 10.0);
    EXPECT_LT(fj, 1000.0);
}

TEST(RcWire, GateWidthPositive)
{
    auto wire = globalWire();
    EXPECT_GT(wire.gateWidthLambda(1e-3), 0.0);
    EXPECT_GT(wire.repeaterArea(1e-3), 0.0);
}

TEST(RcWire, DegenerateGeometryPanics)
{
    WireGeometry bad{0.0, 1e-7, 1e-7, 1e-7};
    EXPECT_THROW(RcWireModel(tech45(), bad), tlsim::PanicError);
}

/** Property sweep: wider wires are faster (repeated). */
class RcWireWidthSweep : public ::testing::TestWithParam<double>
{};

TEST_P(RcWireWidthSweep, WiderIsFasterRepeated)
{
    double width = GetParam();
    WireGeometry narrow{width, width, 2.0 * width, 1.5 * width};
    WireGeometry wide{2.0 * width, 2.0 * width, 4.0 * width,
                      3.0 * width};
    RcWireModel a(tech45(), narrow);
    RcWireModel b(tech45(), wide);
    EXPECT_LT(b.delay(5e-3), a.delay(5e-3));
}

INSTANTIATE_TEST_SUITE_P(Widths, RcWireWidthSweep,
                         ::testing::Values(0.05e-6, 0.1e-6, 0.2e-6,
                                           0.4e-6));
