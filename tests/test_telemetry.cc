/**
 * @file
 * Tests for the telemetry subsystem: the self-profiler's scope tree
 * and report formats, spatial heatmaps (windowing, coarsening, JSON
 * export, stats-tree integration), the fleet metrics registry's
 * Prometheus exposition, and the enriched fault-diagnostic dumps.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "mem/dram.hh"
#include "phys/technology.hh"
#include "sim/eventq.hh"
#include "sim/metrics/heatmap.hh"
#include "sim/metrics/metrics.hh"
#include "sim/prof/prof.hh"
#include "sim/stats.hh"
#include "tlc/tlccache.hh"

using namespace tlsim;
using tlsim::mem::AccessType;

namespace
{

/** RAII guard: clean profiler state before and after a test body. */
struct ProfGuard
{
    ProfGuard()
    {
        prof::Registry::instance().reset();
        prof::setEnabled(true);
    }
    ~ProfGuard()
    {
        prof::setEnabled(false);
        prof::Registry::instance().reset();
    }
};

const prof::ReportRow *
findRow(const std::vector<prof::ReportRow> &rows,
        const std::string &path)
{
    for (const auto &row : rows) {
        if (row.path == path)
            return &row;
    }
    return nullptr;
}

} // namespace

// ---------------------------------------------------------------- //
// Self-profiler                                                    //
// ---------------------------------------------------------------- //

TEST(Prof, DisabledScopeRecordsNothing)
{
    prof::Registry::instance().reset();
    ASSERT_FALSE(prof::enabled());
    {
        prof::Scope scope("never");
    }
    EXPECT_TRUE(prof::Registry::instance().rows().empty());
}

TEST(Prof, NestedScopesBuildAStackTree)
{
    ProfGuard guard;
    {
        prof::Scope outer("outer");
        {
            prof::Scope inner("inner");
        }
        {
            prof::Scope inner("inner");
        }
        prof::Scope other("other");
    }

    auto rows = prof::Registry::instance().rows();
    const auto *outer = findRow(rows, "outer");
    const auto *inner = findRow(rows, "outer;inner");
    const auto *other = findRow(rows, "outer;other");
    ASSERT_NE(outer, nullptr);
    ASSERT_NE(inner, nullptr);
    ASSERT_NE(other, nullptr);
    EXPECT_EQ(outer->count, 1u);
    EXPECT_EQ(inner->count, 2u); // identical sites merge per position
    EXPECT_EQ(other->count, 1u);
    EXPECT_EQ(outer->depth, 0);
    EXPECT_EQ(inner->depth, 1);
    // Inclusive time dominates nested time; self = total - children.
    EXPECT_GE(outer->totalNs, inner->totalNs + other->totalNs);
    EXPECT_EQ(outer->selfNs,
              outer->totalNs - inner->totalNs - other->totalNs);
}

TEST(Prof, ReportAndCollapsedShareOneTree)
{
    ProfGuard guard;
    {
        prof::Scope run("run");
        prof::Scope measure("measure");
        // Busy-wait a little so self time is non-zero microseconds.
        auto until = prof::nowNs() + 2'000'000;
        while (prof::nowNs() < until) {
        }
    }

    std::ostringstream report;
    prof::Registry::instance().writeReport(report);
    EXPECT_NE(report.str().find("wall-clock attribution"),
              std::string::npos);
    EXPECT_NE(report.str().find("run"), std::string::npos);
    EXPECT_NE(report.str().find("  measure"), std::string::npos);
    EXPECT_NE(report.str().find("component attribution coverage"),
              std::string::npos);

    std::ostringstream collapsed;
    prof::Registry::instance().writeCollapsed(collapsed);
    // Flamegraph format: "stack;frames self_us" per line.
    EXPECT_NE(collapsed.str().find("run;measure "), std::string::npos);
}

TEST(Prof, SampledDispatchAttributesEventTypes)
{
    ProfGuard guard;
    // Enough events spread over enough ticks that several sample
    // strides elapse and a few dispatches are actually timed.
    EventQueue eq;
    std::uint64_t fired = 0;
    const std::uint64_t events = 8 * prof::dispatchSampleTarget;
    for (std::uint64_t i = 0; i < events; ++i)
        eq.scheduleCallback(i + 1, [&fired](Tick) { ++fired; });
    eq.run();
    EXPECT_EQ(fired, events);

    auto rows = prof::Registry::instance().rows();
    ASSERT_FALSE(rows.empty());
    bool saw_callback_type = false;
    std::uint64_t sampled = 0;
    for (const auto &row : rows) {
        sampled += row.count;
        if (row.path.find("TickCallbackEvent") != std::string::npos)
            saw_callback_type = true;
    }
    // Sample weights stand in for the unsampled dispatches between
    // samples: the total estimated count is positive, attributed to
    // the right event type, and never exceeds what actually ran.
    EXPECT_GT(sampled, 0u);
    EXPECT_LE(sampled, events);
    EXPECT_TRUE(saw_callback_type);
}

TEST(Prof, ResetDropsEverything)
{
    ProfGuard guard;
    {
        prof::Scope scope("gone");
    }
    EXPECT_FALSE(prof::Registry::instance().rows().empty());
    prof::Registry::instance().reset();
    EXPECT_TRUE(prof::Registry::instance().rows().empty());
}

// ---------------------------------------------------------------- //
// Spatial heatmaps                                                 //
// ---------------------------------------------------------------- //

TEST(Heatmap, AccumulatesIntoTickWindows)
{
    stats::StatGroup root("root");
    metrics::Heatmap hm(&root, "hm", "test", 4, 100);

    hm.add(0, 1'000, 5); // base latches at the first sample
    hm.add(1, 1'050, 7); // same window
    hm.add(0, 1'150, 3); // next window
    EXPECT_EQ(hm.baseTick(), 1'000u);
    EXPECT_EQ(hm.rowCount(), 2u);
    EXPECT_EQ(hm.at(0, 0), 5u);
    EXPECT_EQ(hm.at(0, 1), 7u);
    EXPECT_EQ(hm.at(1, 0), 3u);

    // Pre-base ticks clamp into row 0 instead of underflowing.
    hm.add(2, 500, 9);
    EXPECT_EQ(hm.at(0, 2), 9u);
}

TEST(Heatmap, CoarsensInsteadOfGrowingUnbounded)
{
    stats::StatGroup root("root");
    metrics::Heatmap hm(&root, "hm", "test", 1, 10);

    // One count per window for 4x the row budget: the window must
    // double (twice) and every count must survive the refolds.
    const std::uint64_t windows = 4 * metrics::Heatmap::maxWindows;
    for (std::uint64_t w = 0; w < windows; ++w)
        hm.add(0, w * 10, 1);

    EXPECT_LE(hm.rowCount(), metrics::Heatmap::maxWindows);
    EXPECT_EQ(hm.windowTicks(), 40u); // 10 -> 20 -> 40
    std::uint64_t total = 0;
    for (std::size_t r = 0; r < hm.rowCount(); ++r)
        total += hm.at(r, 0);
    EXPECT_EQ(total, windows);
}

TEST(Heatmap, JsonIsSelfDescribingAndAllInteger)
{
    stats::StatGroup root("root");
    metrics::Heatmap hm(&root, "hm", "bank busy", 2, 50);
    hm.add(0, 100, 4);
    hm.add(1, 160, 6);

    std::ostringstream os;
    root.dumpStatsJson(os, 0, false);
    std::string json = os.str();
    EXPECT_NE(json.find("\"kind\": \"heatmap\""), std::string::npos);
    EXPECT_NE(json.find("\"cells\": 2"), std::string::npos);
    EXPECT_NE(json.find("\"window\": 50"), std::string::npos);
    EXPECT_NE(json.find("\"base_tick\": 100"), std::string::npos);
    EXPECT_NE(json.find("\"rows\": 2"), std::string::npos);
    // Deterministic export: the matrix is all integers, no floats.
    EXPECT_NE(json.find("\"data\": [[4, 0], [0, 6]]"),
              std::string::npos);
}

TEST(Heatmap, ResetClearsDataAndBase)
{
    stats::StatGroup root("root");
    metrics::Heatmap hm(&root, "hm", "test", 2, 100);
    hm.add(0, 5'000, 1);
    ASSERT_EQ(hm.rowCount(), 1u);

    // beginMeasurement() drives StatGroup::resetStats(): the matrix
    // restarts empty and re-latches its base at the next sample, so
    // exported heatmaps cover exactly the measured window.
    root.resetStats();
    EXPECT_EQ(hm.rowCount(), 0u);
    hm.add(1, 9'000, 2);
    EXPECT_EQ(hm.baseTick(), 9'000u);
    EXPECT_EQ(hm.at(0, 1), 2u);
}

TEST(Heatmap, DefaultWindowComesFromGlobalKnob)
{
    stats::StatGroup root("root");
    metrics::Heatmap def(&root, "d", "test", 1);
    EXPECT_EQ(def.windowTicks(), metrics::Heatmap::defaultWindowTicks);

    metrics::spatialWindowTicks = 777;
    metrics::Heatmap knob(&root, "k", "test", 1);
    metrics::spatialWindowTicks = 0;
    EXPECT_EQ(knob.windowTicks(), 777u);
}

// ---------------------------------------------------------------- //
// Fleet metrics registry                                           //
// ---------------------------------------------------------------- //

TEST(Metrics, CounterAndGaugeExposition)
{
    metrics::Registry reg;
    reg.counter("tlsim_runs_total{result=\"ok\"}", "Runs by result")
        .inc(3);
    reg.counter("tlsim_runs_total{result=\"bad\"}", "Runs by result")
        .inc();
    reg.gauge("tlsim_specs", "Specs in the sweep").set(24);

    std::ostringstream os;
    reg.writePrometheus(os);
    std::string text = os.str();
    // One HELP/TYPE header per family, not per labeled series.
    EXPECT_EQ(text.find("# HELP tlsim_runs_total Runs by result"),
              text.rfind("# HELP tlsim_runs_total"));
    EXPECT_NE(text.find("# TYPE tlsim_runs_total counter"),
              std::string::npos);
    EXPECT_NE(text.find("tlsim_runs_total{result=\"ok\"} 3"),
              std::string::npos);
    EXPECT_NE(text.find("tlsim_runs_total{result=\"bad\"} 1"),
              std::string::npos);
    EXPECT_NE(text.find("# TYPE tlsim_specs gauge"),
              std::string::npos);
    EXPECT_NE(text.find("tlsim_specs 24"), std::string::npos);
}

TEST(Metrics, RegistryReturnsSameInstrumentForSameName)
{
    metrics::Registry reg;
    auto *a = &reg.counter("c", "help");
    auto *b = &reg.counter("c", "help");
    EXPECT_EQ(a, b);
    a->inc(2);
    EXPECT_EQ(b->get(), 2u);
}

TEST(Metrics, LogHistogramPercentilesAndCumulativeBuckets)
{
    metrics::Registry reg;
    auto &h = reg.histogram("lat_ms", "Latency");
    for (std::uint64_t v = 1; v <= 1000; ++v)
        h.observe(v);

    EXPECT_EQ(h.count(), 1000u);
    EXPECT_EQ(h.sum(), 500'500u);
    // Log-bucketed estimates: right order of magnitude, monotone.
    EXPECT_GT(h.p50(), 250.0);
    EXPECT_LT(h.p50(), 1024.0);
    EXPECT_LE(h.p50(), h.p95());
    EXPECT_LE(h.p95(), h.p99());

    std::ostringstream os;
    reg.writePrometheus(os);
    std::string text = os.str();
    EXPECT_NE(text.find("# TYPE lat_ms histogram"), std::string::npos);
    EXPECT_NE(text.find("lat_ms_bucket{le=\"+Inf\"} 1000"),
              std::string::npos);
    EXPECT_NE(text.find("lat_ms_sum 500500"), std::string::npos);
    EXPECT_NE(text.find("lat_ms_count 1000"), std::string::npos);

    // Buckets are cumulative: each le line >= the previous one.
    std::istringstream lines(text);
    std::string line;
    double prev = 0.0;
    while (std::getline(lines, line)) {
        if (line.rfind("lat_ms_bucket", 0) != 0)
            continue;
        double v = std::stod(line.substr(line.rfind(' ') + 1));
        EXPECT_GE(v, prev) << line;
        prev = v;
    }
}

TEST(Metrics, PrometheusFileWriteIsAtomic)
{
    metrics::Registry reg;
    reg.counter("c_total", "help").inc();
    std::string path = ::testing::TempDir() + "tlsim_metrics.prom";
    std::remove(path.c_str());
    ASSERT_TRUE(reg.writePrometheusFile(path));

    std::ifstream in(path);
    ASSERT_TRUE(in.is_open());
    std::stringstream text;
    text << in.rdbuf();
    EXPECT_NE(text.str().find("c_total 1"), std::string::npos);
    // No .tmp litter after a successful rename.
    EXPECT_FALSE(std::ifstream(path + ".tmp").is_open());
    std::remove(path.c_str());
}

// ---------------------------------------------------------------- //
// Fault-diagnostic dumps                                           //
// ---------------------------------------------------------------- //

TEST(Diagnostic, TlcDumpNamesHottestLinkAndBank)
{
    EventQueue eq;
    stats::StatGroup root("root");
    mem::Dram dram(eq, &root);
    tlc::TlcCache cache(eq, &root, dram, phys::tech45(),
                        tlc::baseTlc());

    // Real traffic so the utilization counters are non-zero and a
    // hottest resource exists.
    for (int i = 0; i < 32; ++i) {
        Addr addr = static_cast<Addr>(0x40 + i * 0x1000);
        cache.accessFunctional(addr, AccessType::Load);
        cache.access(addr, AccessType::Load,
                     static_cast<Tick>(100 + i * 50), [](Tick) {});
    }
    eq.run();

    ::testing::internal::CaptureStderr();
    cache.dumpFaultDiagnostic();
    std::string dump = ::testing::internal::GetCapturedStderr();

    EXPECT_NE(dump.find("fault diagnostic"), std::string::npos);
    // Per-resource utilization: busy cycles and message counts on
    // every line, with the hottest pair/bank called out once each.
    EXPECT_NE(dump.find("busy cycles"), std::string::npos);
    EXPECT_NE(dump.find("messages"), std::string::npos);
    EXPECT_NE(dump.find("[hottest pair]"), std::string::npos);
    EXPECT_NE(dump.find("[hottest bank]"), std::string::npos);
    EXPECT_EQ(dump.find("[hottest pair]"),
              dump.rfind("[hottest pair]"));
    EXPECT_EQ(dump.find("[hottest bank]"),
              dump.rfind("[hottest bank]"));
}
