/**
 * @file
 * Unit tests for the calibrated benchmark profiles.
 */

#include <gtest/gtest.h>

#include "workload/profile.hh"
#include "sim/logging.hh"

using namespace tlsim;
using namespace tlsim::workload;

TEST(Profiles, TwelvePaperBenchmarks)
{
    EXPECT_EQ(paperBenchmarks().size(), 12u);
}

TEST(Profiles, NamesMatchPaperOrder)
{
    const std::vector<std::string> expected = {
        "bzip", "gcc", "mcf", "perl", "equake", "swim",
        "applu", "lucas", "apache", "zeus", "sjbb", "oltp"};
    const auto &profiles = paperBenchmarks();
    ASSERT_EQ(profiles.size(), expected.size());
    for (std::size_t i = 0; i < expected.size(); ++i)
        EXPECT_EQ(profiles[i].name, expected[i]);
}

TEST(Profiles, FractionsValid)
{
    for (const auto &p : paperBenchmarks()) {
        EXPECT_GE(p.hotFrac, 0.0) << p.name;
        EXPECT_GE(p.warmFrac, 0.0) << p.name;
        EXPECT_GE(p.streamFrac(), 0.0) << p.name;
        EXPECT_LE(p.hotFrac + p.warmFrac, 1.0) << p.name;
        EXPECT_GE(p.storeFrac, 0.0) << p.name;
        EXPECT_LE(p.storeFrac, 1.0) << p.name;
    }
}

TEST(Profiles, SeedsDistinct)
{
    std::set<std::uint64_t> seeds;
    for (const auto &p : paperBenchmarks())
        seeds.insert(p.seed);
    EXPECT_EQ(seeds.size(), paperBenchmarks().size());
}

TEST(Profiles, StreamingBenchmarksStreamHeavily)
{
    EXPECT_GT(profileByName("swim").streamFrac(), 0.08);
    EXPECT_GT(profileByName("applu").streamFrac(), 0.03);
    EXPECT_LT(profileByName("perl").streamFrac(), 0.02);
}

TEST(Profiles, McfIsPointerChasing)
{
    EXPECT_GT(profileByName("mcf").depFrac, 0.5);
    // And it has the largest warm footprint of the SPECint codes.
    EXPECT_GT(profileByName("mcf").warmBlocks,
              profileByName("gcc").warmBlocks);
}

TEST(Profiles, CommercialHaveLargeCodeFootprints)
{
    for (const char *name : {"apache", "zeus", "sjbb", "oltp"}) {
        EXPECT_GT(profileByName(name).iBlocks, 1000u) << name;
        EXPECT_GT(profileByName(name).jumpProb, 0.1) << name;
    }
}

TEST(Profiles, LookupByNameFatalOnUnknown)
{
    EXPECT_THROW(profileByName("quake3"), FatalError);
}

TEST(Profiles, LookupReturnsCorrectProfile)
{
    EXPECT_EQ(profileByName("gcc").name, "gcc");
    EXPECT_EQ(profileByName("oltp").name, "oltp");
}
