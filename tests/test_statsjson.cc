/**
 * @file
 * Tests for the JSON stats export: StatGroup::dumpStatsJson round-trip
 * and the periodic StatSampler time series.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "sim/eventq.hh"
#include "sim/stats.hh"
#include "sim/trace/sampler.hh"
#include "testjson.hh"

using namespace tlsim;

namespace
{

/** A small stats tree exercising every stat kind. */
struct TreeFixture
{
    stats::StatGroup root{"system"};
    stats::StatGroup child{"l2", &root};
    stats::Scalar requests{&child, "requests", "requests received"};
    stats::Average latency{&child, "latency", "request latency"};
    stats::Distribution queue{&child, "queue", "queue depth", 0.0,
                              10.0, 5};
    stats::Histogram gaps{&child, "gaps", "inter-arrival gaps"};
    stats::Formula missRate{&child, "miss_rate", "relative misses",
                            [this]() {
                                return requests.value() > 0.0
                                           ? 1.0 / requests.value()
                                           : 0.0;
                            }};
};

} // namespace

TEST(StatsJson, RoundTripAllKinds)
{
    TreeFixture t;
    t.requests += 5.0;
    t.latency.sample(10.0);
    t.latency.sample(20.0);
    t.queue.sample(-1.0); // underflow
    t.queue.sample(2.5);
    t.queue.sample(99.0); // overflow
    t.gaps.sample(7);

    std::ostringstream out;
    t.root.dumpStatsJson(out);
    testjson::Value doc = testjson::parse(out.str());

    const auto &l2 = doc.at("l2");
    EXPECT_EQ(l2.at("requests").at("kind").str, "scalar");
    EXPECT_EQ(l2.at("requests").at("value").number, 5.0);
    EXPECT_NE(l2.at("requests").at("desc").str, "");

    const auto &lat = l2.at("latency");
    EXPECT_EQ(lat.at("kind").str, "average");
    EXPECT_EQ(lat.at("count").number, 2.0);
    EXPECT_EQ(lat.at("mean").number, 15.0);
    EXPECT_EQ(lat.at("min").number, 10.0);
    EXPECT_EQ(lat.at("max").number, 20.0);

    const auto &queue = l2.at("queue");
    EXPECT_EQ(queue.at("kind").str, "distribution");
    EXPECT_EQ(queue.at("count").number, 3.0);
    EXPECT_EQ(queue.at("underflow").number, 1.0);
    EXPECT_EQ(queue.at("overflow").number, 1.0);
    ASSERT_EQ(queue.at("buckets").size(), 5u);
    EXPECT_EQ(queue.at("buckets").at(1).number, 1.0);

    const auto &gaps = l2.at("gaps");
    EXPECT_EQ(gaps.at("kind").str, "histogram");
    EXPECT_EQ(gaps.at("count").number, 1.0);
    // 7 falls in the log2 bucket with index 3 (values 4..7).
    EXPECT_TRUE(gaps.at("buckets").has("3"));

    const auto &rate = l2.at("miss_rate");
    EXPECT_EQ(rate.at("kind").str, "formula");
    EXPECT_DOUBLE_EQ(rate.at("value").number, 0.2);
}

TEST(StatsJson, DoublesSurviveExactly)
{
    stats::StatGroup root{"root"};
    stats::Scalar value{&root, "value", "a precise value"};
    value += 0.1 + 0.2; // classic non-representable sum

    std::ostringstream out;
    root.dumpStatsJson(out);
    testjson::Value doc = testjson::parse(out.str());
    EXPECT_EQ(doc.at("value").at("value").number, 0.1 + 0.2);
}

TEST(StatsJson, NonFiniteValuesBecomeZero)
{
    stats::StatGroup root{"root"};
    stats::Formula bad{&root, "bad", "divides by zero",
                       []() { return std::nan(""); }};
    stats::Formula worse{&root, "worse", "infinite", []() {
                             return std::numeric_limits<
                                 double>::infinity();
                         }};

    std::ostringstream out;
    root.dumpStatsJson(out);
    // Must still parse: NaN/Inf are not valid JSON.
    testjson::Value doc = testjson::parse(out.str());
    EXPECT_EQ(doc.at("bad").at("value").number, 0.0);
    EXPECT_EQ(doc.at("worse").at("value").number, 0.0);
}

TEST(StatsJson, EmptyGroupIsValid)
{
    stats::StatGroup root{"root"};
    std::ostringstream out;
    root.dumpStatsJson(out);
    testjson::Value doc = testjson::parse(out.str());
    EXPECT_TRUE(doc.isObject());
}

TEST(StatSampler, PeriodicSamplesFormJsonLines)
{
    EventQueue eq;
    TreeFixture t;
    std::ostringstream out;
    trace::StatSampler sampler(eq, t.root, 100, out);
    sampler.start();

    // Give the queue work up to tick 500; the sampler should fire at
    // 100, 200, 300, 400, 500 alongside it.
    for (Tick tick = 50; tick <= 550; tick += 100) {
        eq.scheduleFunc(tick, [&t]() { t.requests += 1.0; });
    }
    eq.advanceTo(520);
    sampler.stop();
    eq.run();

    EXPECT_EQ(sampler.samplesTaken(), 5u);

    std::istringstream lines(out.str());
    std::string line;
    std::size_t parsed = 0;
    double last_tick = 0.0;
    while (std::getline(lines, line)) {
        testjson::Value doc = testjson::parse(line);
        EXPECT_GT(doc.at("tick").number, last_tick);
        last_tick = doc.at("tick").number;
        EXPECT_TRUE(doc.at("stats").at("l2").isObject());
        ++parsed;
    }
    EXPECT_EQ(parsed, 5u);

    // The time series captures the growth of the counter.
    std::istringstream again(out.str());
    std::getline(again, line);
    testjson::Value first = testjson::parse(line);
    EXPECT_EQ(first.at("stats")
                  .at("l2")
                  .at("requests")
                  .at("value")
                  .number,
              1.0);
}

TEST(StatSampler, StopPreventsFurtherSamples)
{
    EventQueue eq;
    TreeFixture t;
    std::ostringstream out;
    trace::StatSampler sampler(eq, t.root, 10, out);
    sampler.start();
    eq.scheduleFunc(35, []() {});
    eq.advanceTo(35);
    EXPECT_EQ(sampler.samplesTaken(), 3u);
    sampler.stop();
    eq.scheduleFunc(100, []() {});
    eq.run();
    EXPECT_EQ(sampler.samplesTaken(), 3u);
}
