/**
 * @file
 * Cross-module integration tests: whole-system properties that the
 * paper's evaluation relies on, checked on short runs.
 */

#include <gtest/gtest.h>

#include "harness/system.hh"
#include "nuca/dnuca.hh"
#include "tlc/tlccache.hh"

using namespace tlsim;
using namespace tlsim::harness;

namespace
{

RunResult
quickRun(DesignKind kind, const char *bench,
         std::uint64_t measure = 200'000)
{
    return runBenchmark(kind, workload::profileByName(bench), 20'000,
                        measure, 0, 3'000'000);
}

} // namespace

TEST(Integration, SameTrafficAcrossDesigns)
{
    // All designs see the same trace, so demand request rates agree
    // to within L1-noise.
    auto tlc = quickRun(DesignKind::TlcBase, "gcc");
    auto snuca = quickRun(DesignKind::Snuca2, "gcc");
    auto dnuca = quickRun(DesignKind::Dnuca, "gcc");
    EXPECT_NEAR(tlc.l2RequestsPer1k, snuca.l2RequestsPer1k,
                0.05 * tlc.l2RequestsPer1k);
    EXPECT_NEAR(tlc.l2RequestsPer1k, dnuca.l2RequestsPer1k,
                0.05 * tlc.l2RequestsPer1k);
}

TEST(Integration, TlcAndSnucaSameMissRates)
{
    // Identical storage organisation (32 x 512 KB, 4-way LRU): the
    // designs differ only in interconnect, so misses match exactly.
    auto tlc = quickRun(DesignKind::TlcBase, "equake");
    auto snuca = quickRun(DesignKind::Snuca2, "equake");
    EXPECT_NEAR(tlc.l2MissesPer1k, snuca.l2MissesPer1k,
                0.02 * (tlc.l2MissesPer1k + 1e-9) + 1e-9);
}

TEST(Integration, TlcFasterThanSnuca)
{
    // Figure 5's main effect: TLC's 10-16 cycle window beats
    // SNUCA2's 8-32 spectrum for cache-resident workloads.
    auto tlc = quickRun(DesignKind::TlcBase, "mcf", 300'000);
    auto snuca = quickRun(DesignKind::Snuca2, "mcf", 300'000);
    EXPECT_LT(tlc.cycles, snuca.cycles);
    EXPECT_LT(tlc.meanLookupLatency, snuca.meanLookupLatency);
}

TEST(Integration, TlcLatencyMoreConsistentThanDnuca)
{
    // Figure 6's claim: TLC's mean lookup latency stays near 13
    // across benchmarks while DNUCA's swings.
    auto tlc_a = quickRun(DesignKind::TlcBase, "perl");
    auto tlc_b = quickRun(DesignKind::TlcBase, "mcf", 300'000);
    auto dnuca_a = quickRun(DesignKind::Dnuca, "perl");
    auto dnuca_b = quickRun(DesignKind::Dnuca, "mcf", 300'000);
    double tlc_spread =
        std::abs(tlc_a.meanLookupLatency - tlc_b.meanLookupLatency);
    double dnuca_spread = std::abs(dnuca_a.meanLookupLatency -
                                   dnuca_b.meanLookupLatency);
    EXPECT_LT(tlc_spread, dnuca_spread);
}

TEST(Integration, TlcMorePredictableThanDnuca)
{
    for (const char *bench : {"gcc", "apache"}) {
        auto tlc = quickRun(DesignKind::TlcBase, bench);
        auto dnuca = quickRun(DesignKind::Dnuca, bench);
        EXPECT_GT(tlc.predictablePct, dnuca.predictablePct) << bench;
    }
}

TEST(Integration, TlcAccessesOneBankDnucaSeveral)
{
    auto tlc = quickRun(DesignKind::TlcBase, "gcc");
    auto dnuca = quickRun(DesignKind::Dnuca, "gcc");
    EXPECT_DOUBLE_EQ(tlc.banksPerRequest, 1.0);
    // Demand lookups probe >= 2 banks; writebacks touch 1, pulling
    // the blended mean slightly below 2 on store-heavy mixes.
    EXPECT_GE(dnuca.banksPerRequest, 1.8);
}

TEST(Integration, OptDesignsUseFewerLinksMoreUtilization)
{
    auto base = quickRun(DesignKind::TlcBase, "swim");
    auto opt = quickRun(DesignKind::TlcOpt350, "swim");
    EXPECT_GT(opt.linkUtilizationPct, base.linkUtilizationPct);
}

TEST(Integration, OptDesignPerformanceClose)
{
    // Figure 8: the family performs within a few percent.
    auto base = quickRun(DesignKind::TlcBase, "gcc", 300'000);
    auto opt = quickRun(DesignKind::TlcOpt500, "gcc", 300'000);
    double ratio = static_cast<double>(opt.cycles) /
                   static_cast<double>(base.cycles);
    EXPECT_GT(ratio, 0.9);
    EXPECT_LT(ratio, 1.25);
}

TEST(Integration, StreamingWorkloadInsensitiveToDesign)
{
    // swim/applu: all designs within a few percent of each other
    // (Figure 5's flat region).
    auto snuca = quickRun(DesignKind::Snuca2, "swim");
    auto tlc = quickRun(DesignKind::TlcBase, "swim");
    double ratio = static_cast<double>(tlc.cycles) /
                   static_cast<double>(snuca.cycles);
    EXPECT_GT(ratio, 0.9);
    EXPECT_LT(ratio, 1.1);
}

TEST(Integration, MemoryBoundWorkloadThrottledByDram)
{
    auto result = quickRun(DesignKind::TlcBase, "swim");
    // ~42 misses per 1K instructions with 8 outstanding and 300-cycle
    // DRAM caps IPC well below 1.
    EXPECT_LT(result.ipc, 0.8);
}
