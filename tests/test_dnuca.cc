/**
 * @file
 * Unit tests for the DNUCA design: search, promotion, fast misses,
 * tail insertion, and the Table 2 latency spectrum.
 */

#include <gtest/gtest.h>

#include "mem/dram.hh"
#include "nuca/dnuca.hh"
#include "phys/technology.hh"

using namespace tlsim;
using namespace tlsim::nuca;
using tlsim::mem::AccessType;

namespace
{

struct Fixture
{
    Fixture()
        : root("root"), dram(eq, &root),
          cache(eq, &root, dram, phys::tech45())
    {}

    EventQueue eq;
    stats::StatGroup root;
    mem::Dram dram;
    DnucaCache cache;
};

} // namespace

TEST(Dnuca, LatencyRangeMatchesTable2)
{
    Fixture f;
    auto [lo, hi] = f.cache.latencyRange();
    EXPECT_EQ(lo, 3u);
    EXPECT_EQ(hi, 47u);
}

TEST(Dnuca, BankAccessThreeCycles)
{
    Fixture f;
    EXPECT_EQ(f.cache.bankAccessCycles(), 3);
}

TEST(Dnuca, FastMissWhenNoPartialMatch)
{
    Fixture f;
    Tick done = 0;
    f.cache.access(0x1234, AccessType::Load, 0,
                   [&](Tick t) { done = t; });
    f.eq.run();
    EXPECT_EQ(f.cache.fastMisses.value(), 1.0);
    EXPECT_EQ(f.cache.misses.value(), 1.0);
    EXPECT_GT(done, 300u);
}

TEST(Dnuca, InsertAtTailThenSearchHit)
{
    Fixture f;
    Addr addr = 0x1234;
    // Miss fills the tail bank.
    f.cache.access(addr, AccessType::Load, 0, [](Tick) {});
    f.eq.run();
    EXPECT_EQ(f.cache.inserts.value(), 1.0);

    // The next access finds it far away via the partial tags.
    Tick issue = f.eq.now() + 100;
    Tick done = 0;
    f.cache.access(addr, AccessType::Load, issue,
                   [&](Tick t) { done = t; });
    f.eq.run();
    EXPECT_EQ(f.cache.hits.value(), 1.0);
    EXPECT_EQ(f.cache.closeHits.value(), 0.0);
    EXPECT_GT(f.cache.searches.value(), 0.0);
    // Latency covers the close probe plus the far search.
    EXPECT_GT(done - issue, f.cache.uncontendedLatency(1, 4));
}

TEST(Dnuca, HitsPromoteTowardController)
{
    Fixture f;
    Addr addr = 0x1234;
    f.cache.access(addr, AccessType::Load, 0, [](Tick) {});
    f.eq.run();
    double promotions_before = f.cache.promotions.value();
    for (int i = 0; i < 20; ++i) {
        f.cache.access(addr, AccessType::Load, f.eq.now() + 100,
                       [](Tick) {});
        f.eq.run();
    }
    EXPECT_GT(f.cache.promotions.value(), promotions_before + 10);
    // After enough hits the block lives in the closest banks.
    Tick issue = f.eq.now() + 100;
    Tick done = 0;
    f.cache.access(addr, AccessType::Load, issue,
                   [&](Tick t) { done = t; });
    f.eq.run();
    EXPECT_GT(f.cache.closeHits.value(), 0.0);
}

TEST(Dnuca, CloseHitLatencyPredictable)
{
    Fixture f;
    Addr addr = 7; // column 7, adjacent to the controller
    // Functionally place and promote to the head bank.
    for (int i = 0; i < 20; ++i)
        f.cache.accessFunctional(addr, AccessType::Load);
    Tick issue = 1000;
    Tick done = 0;
    f.cache.access(addr, AccessType::Load, issue,
                   [&](Tick t) { done = t; });
    f.eq.run();
    EXPECT_EQ(done - issue, f.cache.uncontendedLatency(0, 7));
    EXPECT_EQ(f.cache.predictableLookups.value(), 1.0);
}

TEST(Dnuca, StoreToResidentBlockNoPromotion)
{
    Fixture f;
    Addr addr = 0x777;
    f.cache.accessFunctional(addr, AccessType::Load);
    double promos = f.cache.promotions.value();
    f.cache.access(addr, AccessType::Store, 100, [](Tick) {});
    f.eq.run();
    EXPECT_EQ(f.cache.promotions.value(), promos);
}

TEST(Dnuca, StoreToAbsentBlockInstallsAtTail)
{
    Fixture f;
    f.cache.access(0x888, AccessType::Store, 0, [](Tick) {});
    f.eq.run();
    EXPECT_EQ(f.cache.inserts.value(), 1.0);
}

TEST(Dnuca, FunctionalPromotionMatchesTimed)
{
    Fixture f;
    Addr addr = 0x42;
    for (int i = 0; i < 16; ++i)
        f.cache.accessFunctional(addr, AccessType::Load);
    // Block should now be in a close bank: a timed load close-hits.
    f.cache.access(addr, AccessType::Load, 100, [](Tick) {});
    f.eq.run();
    EXPECT_EQ(f.cache.closeHits.value(), 1.0);
}

TEST(Dnuca, BanksAccessedAtLeastCloseBanks)
{
    Fixture f;
    f.cache.access(0x3, AccessType::Load, 0, [](Tick) {});
    f.eq.run();
    EXPECT_GE(f.cache.banksAccessed.mean(), 2.0);
}

TEST(Dnuca, TailChurnCannotEvictPromotedBlock)
{
    Fixture f;
    Addr hot = 0x5; // bank set 5
    for (int i = 0; i < 16; ++i)
        f.cache.accessFunctional(hot, AccessType::Load);
    // Stream many conflicting blocks through the same bank set.
    for (int i = 1; i <= 200; ++i) {
        f.cache.accessFunctional(hot + (Addr(i) << 13),
                                 AccessType::Load);
    }
    // The hot block survives (it was promoted away from the tail).
    f.cache.access(hot, AccessType::Load, f.eq.now() + 1000,
                   [](Tick) {});
    f.eq.run();
    EXPECT_EQ(f.cache.hits.value(), 1.0);
}

TEST(Dnuca, SearchLatencyExceedsCloseHitLatency)
{
    Fixture f;
    Addr far_block = 0x1111;
    f.cache.accessFunctional(far_block, AccessType::Load); // at tail
    Addr close_block = far_block + (Addr(1) << 13); // same set
    for (int i = 0; i < 16; ++i)
        f.cache.accessFunctional(close_block, AccessType::Load);

    Tick t0 = 1000, far_done = 0, close_done = 0;
    f.cache.access(far_block, AccessType::Load, t0,
                   [&](Tick t) { far_done = t; });
    f.eq.run();
    Tick t1 = f.eq.now() + 1000;
    f.cache.access(close_block, AccessType::Load, t1,
                   [&](Tick t) { close_done = t; });
    f.eq.run();
    EXPECT_GT(far_done - t0, close_done - t1);
}

TEST(Dnuca, PromotionDistanceTwoMovesFaster)
{
    DnucaConfig cfg;
    cfg.promotionDistance = 2;
    EventQueue eq;
    stats::StatGroup root("root");
    mem::Dram dram(eq, &root);
    DnucaCache cache(eq, &root, dram, phys::tech45(), cfg);

    Addr addr = 0x42;
    cache.accessFunctional(addr, AccessType::Load); // tail (15)
    for (int i = 0; i < 4; ++i)
        cache.accessFunctional(addr, AccessType::Load);
    // 4 promotions x 2 banks: at row 7 by now; a 16th-distance walk
    // with distance 1 would only reach row 11.
    cache.access(addr, AccessType::Load, 100, [](Tick) {});
    eq.run();
    // Another 4 accesses reach the close banks.
    for (int i = 0; i < 4; ++i)
        cache.accessFunctional(addr, AccessType::Load);
    cache.access(addr, AccessType::Load, eq.now() + 1000, [](Tick) {});
    eq.run();
    EXPECT_GE(cache.closeHits.value(), 1.0);
}

TEST(Dnuca, HeadInsertionHitsCloseImmediately)
{
    DnucaConfig cfg;
    cfg.insertionBank = 0;
    EventQueue eq;
    stats::StatGroup root("root");
    mem::Dram dram(eq, &root);
    DnucaCache cache(eq, &root, dram, phys::tech45(), cfg);

    cache.accessFunctional(0x99, AccessType::Load);
    cache.access(0x99, AccessType::Load, 100, [](Tick) {});
    eq.run();
    EXPECT_EQ(cache.closeHits.value(), 1.0);
}

TEST(Dnuca, MiddleInsertionLandsMidChain)
{
    DnucaConfig cfg;
    cfg.insertionBank = 8;
    EventQueue eq;
    stats::StatGroup root("root");
    mem::Dram dram(eq, &root);
    DnucaCache cache(eq, &root, dram, phys::tech45(), cfg);

    cache.accessFunctional(0x77, AccessType::Load);
    // Not a close hit (row 8), but found via search on next access.
    cache.access(0x77, AccessType::Load, 100, [](Tick) {});
    eq.run();
    EXPECT_EQ(cache.closeHits.value(), 0.0);
    EXPECT_EQ(cache.hits.value(), 1.0);
}
