/**
 * @file
 * Tests for the system builder and benchmark runner.
 */

#include <gtest/gtest.h>

#include "harness/system.hh"

using namespace tlsim;
using namespace tlsim::harness;

TEST(Harness, AllSixDesignsBuild)
{
    for (DesignKind kind : allDesigns()) {
        System system(kind);
        EXPECT_EQ(system.l2().designName(), designName(kind));
        EXPECT_GT(system.l2().linkCount(), 0);
    }
}

TEST(Harness, DesignNames)
{
    EXPECT_EQ(designName(DesignKind::Snuca2), "SNUCA2");
    EXPECT_EQ(designName(DesignKind::Dnuca), "DNUCA");
    EXPECT_EQ(designName(DesignKind::TlcBase), "TLC");
    EXPECT_EQ(designName(DesignKind::TlcOpt350), "TLCopt350");
}

TEST(Harness, TlcFamilyHasFourMembers)
{
    EXPECT_EQ(tlcFamily().size(), 4u);
    EXPECT_EQ(allDesigns().size(), 6u);
}

TEST(Harness, ShortRunProducesSaneMetrics)
{
    const auto &profile = workload::profileByName("bzip");
    RunResult result = runBenchmark(DesignKind::TlcBase, profile,
                                    10'000, 50'000, 0, 500'000);
    EXPECT_EQ(result.design, "TLC");
    EXPECT_EQ(result.benchmark, "bzip");
    EXPECT_GT(result.cycles, 0u);
    EXPECT_GT(result.ipc, 0.0);
    EXPECT_LE(result.ipc, 4.0);
    EXPECT_GT(result.l2RequestsPer1k, 0.0);
    EXPECT_GT(result.meanLookupLatency, 9.0);
    EXPECT_GT(result.predictablePct, 0.0);
    EXPECT_LE(result.predictablePct, 100.0);
}

TEST(Harness, SameSeedReproducible)
{
    const auto &profile = workload::profileByName("perl");
    RunResult a = runBenchmark(DesignKind::Snuca2, profile, 10'000,
                               30'000, 7, 100'000);
    RunResult b = runBenchmark(DesignKind::Snuca2, profile, 10'000,
                               30'000, 7, 100'000);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.l2RequestsPer1k, b.l2RequestsPer1k);
    EXPECT_EQ(a.meanLookupLatency, b.meanLookupLatency);
}

TEST(Harness, DnucaMetricsPopulated)
{
    const auto &profile = workload::profileByName("gcc");
    RunResult result = runBenchmark(DesignKind::Dnuca, profile,
                                    10'000, 50'000, 0, 2'000'000);
    EXPECT_GT(result.closeHitPct, 0.0);
    EXPECT_GE(result.promotesPerInsert, 0.0);
}

TEST(Harness, FunctionalWarmReducesColdMisses)
{
    const auto &profile = workload::profileByName("bzip");
    RunResult cold = runBenchmark(DesignKind::TlcBase, profile, 0,
                                  50'000, 0, 0);
    RunResult warm = runBenchmark(DesignKind::TlcBase, profile, 0,
                                  50'000, 0, 5'000'000);
    EXPECT_LT(warm.l2MissesPer1k, cold.l2MissesPer1k);
}

TEST(Harness, TlcLookupLatencyNear13)
{
    const auto &profile = workload::profileByName("perl");
    RunResult result = runBenchmark(DesignKind::TlcBase, profile,
                                    10'000, 50'000, 0, 1'000'000);
    // Figure 6: TLC holds ~13 cycles.
    EXPECT_GT(result.meanLookupLatency, 10.0);
    EXPECT_LT(result.meanLookupLatency, 17.0);
}

TEST(Harness, StatsResetBetweenPhases)
{
    System system(DesignKind::TlcBase);
    workload::TraceGenerator gen(workload::profileByName("bzip"), 0);
    system.core().run(gen, 20'000);
    system.beginMeasurement();
    EXPECT_EQ(system.l2().requests.value(), 0.0);
    EXPECT_EQ(system.core().instructions.value(), 0.0);
}
