/**
 * @file
 * Unit tests for the Orion-style mesh switch model.
 */

#include <gtest/gtest.h>

#include "sim/logging.hh"

#include "phys/switchmodel.hh"
#include "phys/technology.hh"

using namespace tlsim::phys;

TEST(SwitchModel, DnucaSwitchTransistorBudget)
{
    // 256 of these must total ~1.2e7 transistors (paper Table 8).
    SwitchModel sw(tech45(), 5, 128, 4);
    long total = 256L * sw.transistorCount();
    EXPECT_GT(total, 0.5e7);
    EXPECT_LT(total, 2.5e7);
}

TEST(SwitchModel, TransistorsScaleWithWidth)
{
    SwitchModel narrow(tech45(), 5, 64, 4);
    SwitchModel wide(tech45(), 5, 128, 4);
    EXPECT_GT(wide.transistorCount(), 1.7 * narrow.transistorCount());
}

TEST(SwitchModel, TransistorsScaleWithPorts)
{
    SwitchModel small(tech45(), 3, 128, 4);
    SwitchModel large(tech45(), 5, 128, 4);
    EXPECT_GT(large.transistorCount(), small.transistorCount());
}

TEST(SwitchModel, BufferDepthMatters)
{
    SwitchModel shallow(tech45(), 5, 128, 2);
    SwitchModel deep(tech45(), 5, 128, 8);
    EXPECT_GT(deep.transistorCount(), shallow.transistorCount());
}

TEST(SwitchModel, EnergyPerFlitPicojouleRange)
{
    SwitchModel sw(tech45(), 5, 128, 4);
    double pj = sw.energyPerFlit() / 1e-12;
    EXPECT_GT(pj, 0.1);
    EXPECT_LT(pj, 10.0);
}

TEST(SwitchModel, AreaPositiveAndSmall)
{
    SwitchModel sw(tech45(), 5, 128, 4);
    double mm2 = sw.area() / 1e-6;
    EXPECT_GT(mm2, 0.0);
    EXPECT_LT(mm2, 1.0); // one switch is far below 1 mm^2
}

TEST(SwitchModel, GateWidthExceedsTransistorCount)
{
    // Average device is wider than minimum.
    SwitchModel sw(tech45(), 5, 128, 4);
    EXPECT_GT(sw.gateWidthLambda(),
              static_cast<double>(sw.transistorCount()));
}

TEST(SwitchModel, BadConfigPanics)
{
    EXPECT_THROW(SwitchModel(tech45(), 0, 128, 4), tlsim::PanicError);
    EXPECT_THROW(SwitchModel(tech45(), 5, 0, 4), tlsim::PanicError);
    EXPECT_THROW(SwitchModel(tech45(), 5, 128, 0), tlsim::PanicError);
}
