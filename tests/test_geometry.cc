/**
 * @file
 * Unit tests for wire geometries (paper Table 1 / Figure 3).
 */

#include <gtest/gtest.h>

#include "phys/geometry.hh"

using namespace tlsim::phys;

TEST(Geometry, Table1HasThreeDesignPoints)
{
    EXPECT_EQ(paperTable1Lines().size(), 3u);
}

TEST(Geometry, Table1ValuesMatchPaper)
{
    const auto &specs = paperTable1Lines();
    EXPECT_NEAR(specs[0].length, 0.9e-2, 1e-9);
    EXPECT_NEAR(specs[0].geometry.width, 2.0e-6, 1e-12);
    EXPECT_NEAR(specs[1].length, 1.1e-2, 1e-9);
    EXPECT_NEAR(specs[1].geometry.width, 2.5e-6, 1e-12);
    EXPECT_NEAR(specs[2].length, 1.3e-2, 1e-9);
    EXPECT_NEAR(specs[2].geometry.width, 3.0e-6, 1e-12);
    for (const auto &spec : specs) {
        EXPECT_NEAR(spec.geometry.height, 1.75e-6, 1e-12);
        EXPECT_NEAR(spec.geometry.thickness, 3.0e-6, 1e-12);
        EXPECT_NEAR(spec.geometry.spacing, spec.geometry.width, 1e-12);
    }
}

TEST(Geometry, SpecForLengthPicksSmallestSufficient)
{
    EXPECT_NEAR(specForLength(0.5e-2).geometry.width, 2.0e-6, 1e-12);
    EXPECT_NEAR(specForLength(0.9e-2).geometry.width, 2.0e-6, 1e-12);
    EXPECT_NEAR(specForLength(1.0e-2).geometry.width, 2.5e-6, 1e-12);
    EXPECT_NEAR(specForLength(1.25e-2).geometry.width, 3.0e-6, 1e-12);
}

TEST(Geometry, SpecForLengthBeyondTableUsesWidest)
{
    EXPECT_NEAR(specForLength(2.0e-2).geometry.width, 3.0e-6, 1e-12);
}

TEST(Geometry, TransmissionLinesAreMuchFatterThanRcWires)
{
    // The Figure 3 contrast: TL cross-sections dwarf conventional
    // global wires.
    WireGeometry rc = conventionalGlobalWire();
    WireGeometry tl = paperTable1Lines()[0].geometry;
    EXPECT_GT(tl.crossSection(), 50.0 * rc.crossSection());
}

TEST(Geometry, HelperAccessors)
{
    WireGeometry geom{2e-6, 3e-6, 1e-6, 4e-6};
    EXPECT_NEAR(geom.crossSection(), 8e-12, 1e-18);
    EXPECT_NEAR(geom.pitch(), 5e-6, 1e-12);
}

TEST(Geometry, SemiGlobalSmallerThanGlobalTl)
{
    WireGeometry semi = conventionalSemiGlobalWire();
    WireGeometry tl = paperTable1Lines()[0].geometry;
    EXPECT_LT(semi.crossSection(), tl.crossSection());
}
