/**
 * @file
 * Unit tests for the debug-flag facility (sim/trace/debug).
 */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/trace/debug.hh"

using namespace tlsim;

namespace
{

/** Capture debug output and restore clean flag state afterwards. */
struct DebugCapture
{
    DebugCapture()
    {
        debug::clearFlags();
        debug::setOutput(&stream);
    }

    ~DebugCapture()
    {
        debug::setOutput(nullptr);
        debug::clearFlags();
    }

    std::string text() const { return stream.str(); }

    std::ostringstream stream;
};

} // namespace

TEST(DebugFlags, RegistryContainsAllBuiltins)
{
    for (const char *name :
         {"EventQ", "L1", "L2", "NoC", "Dram", "CPU", "Stats"}) {
        debug::Flag *flag = debug::Flag::find(name);
        ASSERT_NE(flag, nullptr) << name;
        EXPECT_STREQ(flag->name(), name);
        EXPECT_NE(std::string(flag->desc()), "");
    }
    EXPECT_GE(debug::Flag::all().size(), 7u);
}

TEST(DebugFlags, FindUnknownReturnsNull)
{
    EXPECT_EQ(debug::Flag::find("NoSuchFlag"), nullptr);
}

TEST(DebugFlags, DisabledByDefault)
{
    DebugCapture capture;
    for (debug::Flag *flag : debug::Flag::all())
        EXPECT_FALSE(flag->enabled()) << flag->name();
}

TEST(DebugFlags, SetFlagsEnablesListed)
{
    DebugCapture capture;
    debug::setFlags("L2,NoC");
    EXPECT_TRUE(debug::flags::L2.enabled());
    EXPECT_TRUE(debug::flags::NoC.enabled());
    EXPECT_FALSE(debug::flags::L1.enabled());
    EXPECT_FALSE(debug::flags::Dram.enabled());
}

TEST(DebugFlags, AllEnablesEverythingAndMinusDisables)
{
    DebugCapture capture;
    debug::setFlags("All,-EventQ");
    EXPECT_FALSE(debug::flags::EventQ.enabled());
    EXPECT_TRUE(debug::flags::L1.enabled());
    EXPECT_TRUE(debug::flags::CPU.enabled());
    debug::clearFlags();
    for (debug::Flag *flag : debug::Flag::all())
        EXPECT_FALSE(flag->enabled());
}

TEST(DebugFlags, DprintfFormatsWhenEnabled)
{
    DebugCapture capture;
    debug::setFlags("L2");
    TLSIM_DPRINTF(L2, "block {} latency {}", 42, 17);
    std::string out = capture.text();
    EXPECT_NE(out.find("L2"), std::string::npos);
    EXPECT_NE(out.find("block 42 latency 17"), std::string::npos);
}

TEST(DebugFlags, DprintfSilentAndLazyWhenDisabled)
{
    DebugCapture capture;
    int evaluations = 0;
    auto expensive = [&evaluations]() {
        ++evaluations;
        return 1;
    };
    TLSIM_DPRINTF(L2, "value {}", expensive());
    EXPECT_EQ(capture.text(), "");
    EXPECT_EQ(evaluations, 0);

    debug::setFlags("L2");
    TLSIM_DPRINTF(L2, "value {}", expensive());
    EXPECT_EQ(evaluations, 1);
    EXPECT_NE(capture.text().find("value 1"), std::string::npos);
}

TEST(DebugFlags, UnknownNameIsIgnored)
{
    DebugCapture capture;
    logging_detail::quiet = true;
    debug::setFlags("Bogus,L1");
    logging_detail::quiet = false;
    EXPECT_TRUE(debug::flags::L1.enabled());
}
