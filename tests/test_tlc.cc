/**
 * @file
 * Unit tests for the TLC design family: Table 2 parameters, latency
 * ranges, hit/miss/store paths, striping, and partial-tag multi-match
 * handling.
 */

#include <gtest/gtest.h>

#include <set>

#include "tlc/tlccache.hh"
#include "mem/dram.hh"
#include "phys/technology.hh"

using namespace tlsim;
using namespace tlsim::tlc;
using tlsim::mem::AccessType;

namespace
{

struct Fixture
{
    explicit Fixture(const TlcConfig &config)
        : root("root"), dram(eq, &root),
          cache(eq, &root, dram, phys::tech45(), config)
    {}

    EventQueue eq;
    stats::StatGroup root;
    mem::Dram dram;
    TlcCache cache;
};

} // namespace

TEST(TlcConfigs, Table2Parameters)
{
    EXPECT_EQ(baseTlc().banks, 32);
    EXPECT_EQ(baseTlc().banksPerBlock, 1);
    EXPECT_EQ(baseTlc().linesPerPair, 128);
    EXPECT_EQ(baseTlc().totalLines(), 2048);

    EXPECT_EQ(tlcOpt1000().banks, 16);
    EXPECT_EQ(tlcOpt1000().banksPerBlock, 2);
    EXPECT_EQ(tlcOpt1000().totalLines(), 1008);

    EXPECT_EQ(tlcOpt500().banksPerBlock, 4);
    EXPECT_EQ(tlcOpt500().totalLines(), 512);

    EXPECT_EQ(tlcOpt350().banksPerBlock, 8);
    EXPECT_EQ(tlcOpt350().totalLines(), 352);
}

TEST(TlcConfigs, AllSixteenMegabytes)
{
    for (const auto &cfg : {baseTlc(), tlcOpt1000(), tlcOpt500(),
                            tlcOpt350()}) {
        EXPECT_EQ(cfg.capacity(), 16u * 1024 * 1024) << cfg.name;
    }
}

TEST(Tlc, BaseLatencyRange10To16)
{
    Fixture f(baseTlc());
    auto [lo, hi] = f.cache.latencyRange();
    EXPECT_EQ(lo, 10u);
    EXPECT_EQ(hi, 16u);
    EXPECT_EQ(f.cache.bankAccessCycles(), 8);
}

TEST(Tlc, OptLatencyRangeNear12)
{
    for (const auto &cfg : {tlcOpt1000(), tlcOpt500(), tlcOpt350()}) {
        Fixture f(cfg);
        auto [lo, hi] = f.cache.latencyRange();
        EXPECT_GE(lo, 12u) << cfg.name;
        EXPECT_LE(hi, 14u) << cfg.name;
        EXPECT_EQ(f.cache.bankAccessCycles(), 10) << cfg.name;
    }
}

TEST(Tlc, HitLatencyPredictableWhenIdle)
{
    Fixture f(baseTlc());
    Addr addr = 0x1234;
    f.cache.accessFunctional(addr, AccessType::Load);
    Tick issue = 1000, done = 0;
    f.cache.access(addr, AccessType::Load, issue,
                   [&](Tick t) { done = t; });
    f.eq.run();
    EXPECT_EQ(done - issue, f.cache.uncontendedLoadLatency(addr));
    EXPECT_EQ(f.cache.predictableLookups.value(), 1.0);
}

TEST(Tlc, MissDeterminationSameTiming)
{
    // TLC's key predictability property: a miss is detected with the
    // same timing as a hit would have been delivered.
    Fixture f(baseTlc());
    Addr addr = 0x4321;
    Tick issue = 500;
    f.cache.access(addr, AccessType::Load, issue, [](Tick) {});
    f.eq.run();
    EXPECT_EQ(f.cache.misses.value(), 1.0);
    EXPECT_EQ(f.cache.lookupLatency.mean(),
              static_cast<double>(f.cache.uncontendedLoadLatency(addr)));
    EXPECT_EQ(f.cache.predictableLookups.value(), 1.0);
}

TEST(Tlc, MissFillsAndHitsAfter)
{
    Fixture f(baseTlc());
    Addr addr = 0x99;
    Tick first = 0;
    f.cache.access(addr, AccessType::Load, 0,
                   [&](Tick t) { first = t; });
    f.eq.run();
    EXPECT_GT(first, 300u);
    f.cache.access(addr, AccessType::Load, first + 100, [](Tick) {});
    f.eq.run();
    EXPECT_EQ(f.cache.hits.value(), 1.0);
}

TEST(Tlc, BanksAccessedEqualsStriping)
{
    for (const auto &cfg : {baseTlc(), tlcOpt1000(), tlcOpt500(),
                            tlcOpt350()}) {
        Fixture f(cfg);
        f.cache.access(0x5, AccessType::Load, 0, [](Tick) {});
        f.eq.run();
        EXPECT_DOUBLE_EQ(f.cache.banksAccessed.mean(),
                         cfg.banksPerBlock)
            << cfg.name;
    }
}

TEST(Tlc, StoreWritesWithoutTagComparison)
{
    Fixture f(baseTlc());
    Tick done = MaxTick;
    f.cache.access(0x77, AccessType::Store, 10,
                   [&](Tick t) { done = t; });
    EXPECT_EQ(done, 10u); // accepted immediately
    f.eq.run();
    f.cache.access(0x77, AccessType::Load, 10000, [](Tick) {});
    f.eq.run();
    EXPECT_EQ(f.cache.hits.value(), 1.0);
}

TEST(Tlc, DirtyEvictionReachesMemory)
{
    Fixture f(baseTlc());
    // 32 groups x 2048 sets: same (group,set) stride = 65536.
    for (int i = 0; i < 5; ++i) {
        f.cache.access(0x40 + 65536u * i, AccessType::Store, i * 3000,
                       [](Tick) {});
        f.eq.run();
    }
    EXPECT_EQ(f.cache.writebacksToMemory.value(), 1.0);
    EXPECT_EQ(f.dram.writes.value(), 1.0);
}

TEST(Tlc, ContentionDelaysBackToBackSameBank)
{
    Fixture f(baseTlc());
    Addr addr = 0x10;
    f.cache.accessFunctional(addr, AccessType::Load);
    f.cache.accessFunctional(addr + 32, AccessType::Load); // same bank
    Tick d1 = 0, d2 = 0;
    f.cache.access(addr, AccessType::Load, 100,
                   [&](Tick t) { d1 = t; });
    f.cache.access(addr + 32, AccessType::Load, 100,
                   [&](Tick t) { d2 = t; });
    f.eq.run();
    // The second access queues behind the first at the bank.
    EXPECT_GT(d2 - 100, d1 - 100);
    EXPECT_LT(f.cache.predictableLookups.value(), 2.0);
}

TEST(Tlc, DifferentBanksProceedInParallel)
{
    Fixture f(baseTlc());
    Addr a = 0x10, b = 0x11; // adjacent blocks -> different banks
    f.cache.accessFunctional(a, AccessType::Load);
    f.cache.accessFunctional(b, AccessType::Load);
    Tick da = 0, db = 0;
    f.cache.access(a, AccessType::Load, 100, [&](Tick t) { da = t; });
    f.cache.access(b, AccessType::Load, 100, [&](Tick t) { db = t; });
    f.eq.run();
    EXPECT_EQ(da, 100 + f.cache.uncontendedLoadLatency(a));
    EXPECT_EQ(db, 100 + f.cache.uncontendedLoadLatency(b));
}

TEST(Tlc, MultiMatchNeedsSecondRoundTrip)
{
    // Construct two resident blocks in one TLCopt set whose tags
    // share the low 6 bits; a load of either sees a multi-match.
    TlcConfig cfg = tlcOpt1000();
    Fixture f(cfg);
    int groups = cfg.groups(); // 8
    // frame = blockAddr >> 3; set = frame mod 8192; tag = frame >> 13.
    Addr set_bits = Addr(5) << 3;
    Addr a = set_bits | (Addr(0x040) << 16); // tag 0x040
    Addr b = set_bits | (Addr(0x080) << 16); // tag 0x080: same low 6
    ASSERT_EQ(static_cast<int>(a & (groups - 1)),
              static_cast<int>(b & (groups - 1)));
    f.cache.accessFunctional(a, AccessType::Load);
    f.cache.accessFunctional(b, AccessType::Load);

    Tick issue = 1000, done = 0;
    f.cache.access(a, AccessType::Load, issue,
                   [&](Tick t) { done = t; });
    f.eq.run();
    EXPECT_EQ(f.cache.multiMatches.value(), 1.0);
    EXPECT_EQ(f.cache.hits.value(), 1.0);
    // Two round trips: well above the uncontended single-trip time.
    EXPECT_GT(done - issue, f.cache.uncontendedLoadLatency(a) + 5);
    EXPECT_EQ(f.cache.predictableLookups.value(), 0.0);
}

TEST(Tlc, FalsePartialMatchIsCleanMiss)
{
    TlcConfig cfg = tlcOpt1000();
    Fixture f(cfg);
    Addr set_bits = Addr(5) << 3;
    Addr resident = set_bits | (Addr(0x040) << 16);
    Addr probe = set_bits | (Addr(0x100) << 16); // same low-6 tag bits
    f.cache.accessFunctional(resident, AccessType::Load);
    f.cache.access(probe, AccessType::Load, 100, [](Tick) {});
    f.eq.run();
    EXPECT_EQ(f.cache.falseMatches.value(), 1.0);
    EXPECT_EQ(f.cache.misses.value(), 1.0);
}

TEST(Tlc, LinkUtilizationAccounted)
{
    Fixture f(baseTlc());
    for (Addr a = 0; a < 64; ++a)
        f.cache.access(a, AccessType::Load, a * 2, [](Tick) {});
    f.eq.run();
    f.cache.syncStats();
    EXPECT_GT(f.cache.linkBusyCycles.value(), 0.0);
    EXPECT_GT(f.cache.networkEnergy.value(), 0.0);
    EXPECT_EQ(f.cache.linkCount(), 32);
}

TEST(Tlc, GroupsSpanDistinctPairs)
{
    // Striping invariant: the banks of one group use different pairs
    // so slices transfer in parallel.
    for (const auto &cfg : {tlcOpt1000(), tlcOpt500(), tlcOpt350()}) {
        for (int g = 0; g < cfg.groups(); ++g) {
            std::set<int> pairs;
            for (int m = 0; m < cfg.banksPerBlock; ++m) {
                int bank = g * cfg.banksPerBlock + m;
                pairs.insert(bank % cfg.pairs());
            }
            EXPECT_EQ(static_cast<int>(pairs.size()),
                      cfg.banksPerBlock)
                << cfg.name << " group " << g;
        }
    }
}
