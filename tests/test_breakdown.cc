/**
 * @file
 * Tests that the per-request latency breakdown (queue wait / wire /
 * bank / dram) recorded by every L2 design is exact: the components
 * of a request sum to its measured end-to-end latency.
 */

#include <gtest/gtest.h>

#include "mem/dram.hh"
#include "nuca/dnuca.hh"
#include "nuca/snuca.hh"
#include "phys/technology.hh"
#include "sim/fault/faultconfig.hh"
#include "sim/fault/injector.hh"
#include "tlc/tlccache.hh"

using namespace tlsim;
using tlsim::mem::AccessType;

namespace
{

template <typename Cache, typename... Args>
struct Fixture
{
    explicit Fixture(Args... args)
        : root("root"), dram(eq, &root),
          cache(eq, &root, dram, phys::tech45(), args...)
    {}

    EventQueue eq;
    stats::StatGroup root;
    mem::Dram dram;
    Cache cache;
};

using TlcFixture = Fixture<tlc::TlcCache, const tlc::TlcConfig &>;
using SnucaFixture = Fixture<nuca::SnucaCache>;
using DnucaFixture = Fixture<nuca::DnucaCache>;
using FaultTlcFixture =
    Fixture<tlc::TlcCache, const tlc::TlcConfig &, fault::Injector *>;

/** Every sample in a Distribution lands in exactly one log2 bucket. */
std::uint64_t
logBucketTotal(const stats::Distribution &dist)
{
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < 65; ++i)
        total += dist.logBucket(i);
    return total;
}

} // namespace

TEST(Breakdown, TlcHitComponentsSumToLatency)
{
    for (const auto &cfg :
         {tlc::baseTlc(), tlc::tlcOpt1000(), tlc::tlcOpt500(),
          tlc::tlcOpt350()}) {
        TlcFixture f(cfg);
        Addr addr = 0x1234;
        f.cache.accessFunctional(addr, AccessType::Load);
        Tick issue = 1000, done = 0;
        f.cache.access(addr, AccessType::Load, issue,
                       [&](Tick t) { done = t; });
        f.eq.run();
        ASSERT_EQ(f.cache.hits.value(), 1.0) << cfg.name;

        const trace::LatencyBreakdown &bd = f.cache.lastBreakdown();
        EXPECT_DOUBLE_EQ(bd.total(), static_cast<double>(done - issue))
            << cfg.name;
        EXPECT_DOUBLE_EQ(bd.dram, 0.0) << cfg.name;
        // Uncontended: no queueing anywhere on the critical path.
        EXPECT_DOUBLE_EQ(bd.queueWait, 0.0) << cfg.name;
        EXPECT_DOUBLE_EQ(bd.bank,
                         static_cast<double>(
                             f.cache.bankAccessCycles()))
            << cfg.name;
        EXPECT_GT(bd.wire, 0.0) << cfg.name;
    }
}

TEST(Breakdown, TlcMissComponentsSumToEndToEnd)
{
    TlcFixture f(tlc::baseTlc());
    Addr addr = 0x4321;
    Tick issue = 500, done = 0;
    f.cache.access(addr, AccessType::Load, issue,
                   [&](Tick t) { done = t; });
    f.eq.run();
    ASSERT_EQ(f.cache.misses.value(), 1.0);

    const trace::LatencyBreakdown &bd = f.cache.lastBreakdown();
    EXPECT_DOUBLE_EQ(bd.total(), static_cast<double>(done - issue));
    EXPECT_GT(bd.dram, 0.0);
    EXPECT_EQ(f.cache.dramLatency.count(), 1u);
}

TEST(Breakdown, TlcContendedRequestShowsQueueWait)
{
    // Two loads to the same group issued in the same cycle: the
    // second serializes behind the first on the shared links/banks
    // and its breakdown must attribute the wait to queueing while
    // still summing exactly.
    TlcFixture f(tlc::baseTlc());
    Addr a = 0x1000, b = a + 0x10000; // same group, different sets
    ASSERT_EQ(f.cache.config().groups(),
              32); // stride keeps the group equal
    f.cache.accessFunctional(a, AccessType::Load);
    f.cache.accessFunctional(b, AccessType::Load);

    Tick done_a = 0, done_b = 0;
    Tick issue = 100;
    f.cache.access(a, AccessType::Load, issue,
                   [&](Tick t) { done_a = t; });
    trace::LatencyBreakdown bd_a = f.cache.lastBreakdown();
    f.cache.access(b, AccessType::Load, issue,
                   [&](Tick t) { done_b = t; });
    trace::LatencyBreakdown bd_b = f.cache.lastBreakdown();
    f.eq.run();
    ASSERT_EQ(f.cache.hits.value(), 2.0);

    EXPECT_DOUBLE_EQ(bd_a.total(), static_cast<double>(done_a - issue));
    EXPECT_DOUBLE_EQ(bd_b.total(), static_cast<double>(done_b - issue));
    EXPECT_GT(done_b, done_a);
    EXPECT_DOUBLE_EQ(bd_a.queueWait, 0.0);
    EXPECT_GT(bd_b.queueWait, 0.0);
    // The contended request loses no cycles to unexplained latency:
    // its wire and bank components match the uncontended request's.
    EXPECT_DOUBLE_EQ(bd_b.wire, bd_a.wire);
    EXPECT_DOUBLE_EQ(bd_b.bank, bd_a.bank);
}

TEST(Breakdown, TlcDistributionsCountEveryDemandRequest)
{
    TlcFixture f(tlc::tlcOpt500());
    for (int i = 0; i < 8; ++i) {
        f.cache.access(static_cast<Addr>(0x40 + i * 7),
                       AccessType::Load, i * 500, [](Tick) {});
        f.eq.run();
    }
    EXPECT_EQ(f.cache.queueWaitLatency.count(), 8u);
    EXPECT_EQ(f.cache.wireLatency.count(), 8u);
    EXPECT_EQ(f.cache.bankLatency.count(), 8u);
    EXPECT_EQ(f.cache.dramLatency.count(), 8u);
}

TEST(Breakdown, SnucaHitComponentsSumToLatency)
{
    SnucaFixture f;
    Addr addr = 0x777;
    f.cache.accessFunctional(addr, AccessType::Load);
    Tick issue = 2000, done = 0;
    f.cache.access(addr, AccessType::Load, issue,
                   [&](Tick t) { done = t; });
    f.eq.run();
    ASSERT_EQ(f.cache.hits.value(), 1.0);

    const trace::LatencyBreakdown &bd = f.cache.lastBreakdown();
    EXPECT_DOUBLE_EQ(bd.total(), static_cast<double>(done - issue));
    EXPECT_DOUBLE_EQ(bd.queueWait, 0.0); // uncontended
    EXPECT_DOUBLE_EQ(bd.dram, 0.0);
    EXPECT_GT(bd.wire, 0.0);
}

TEST(Breakdown, SnucaMissComponentsSumToEndToEnd)
{
    SnucaFixture f;
    Tick issue = 300, done = 0;
    f.cache.access(0x888, AccessType::Load, issue,
                   [&](Tick t) { done = t; });
    f.eq.run();
    ASSERT_EQ(f.cache.misses.value(), 1.0);

    const trace::LatencyBreakdown &bd = f.cache.lastBreakdown();
    EXPECT_DOUBLE_EQ(bd.total(), static_cast<double>(done - issue));
    EXPECT_GT(bd.dram, 0.0);
}

TEST(Breakdown, DnucaHitComponentsSumToLatency)
{
    DnucaFixture f;
    Addr addr = 0x55;
    f.cache.accessFunctional(addr, AccessType::Load);
    Tick issue = 1500, done = 0;
    f.cache.access(addr, AccessType::Load, issue,
                   [&](Tick t) { done = t; });
    f.eq.run();
    ASSERT_EQ(f.cache.hits.value(), 1.0);

    const trace::LatencyBreakdown &bd = f.cache.lastBreakdown();
    EXPECT_DOUBLE_EQ(bd.total(), static_cast<double>(done - issue));
    EXPECT_GE(bd.queueWait, 0.0);
    EXPECT_GT(bd.wire, 0.0);
    EXPECT_GT(bd.bank, 0.0);
}

TEST(Breakdown, DnucaMissComponentsSumToEndToEnd)
{
    DnucaFixture f;
    Tick issue = 400, done = 0;
    f.cache.access(0xabc, AccessType::Load, issue,
                   [&](Tick t) { done = t; });
    f.eq.run();
    ASSERT_EQ(f.cache.misses.value(), 1.0);

    const trace::LatencyBreakdown &bd = f.cache.lastBreakdown();
    EXPECT_DOUBLE_EQ(bd.total(), static_cast<double>(done - issue));
    EXPECT_GT(bd.dram, 0.0);
}

TEST(Breakdown, TlcFaultRunComponentsStillSumExactly)
{
    // Under bit-error injection the links retry, stretching requests
    // — the breakdown must attribute every retried cycle, and the
    // Distribution backing (exact sum + log2 buckets) must stay
    // consistent with the per-request breakdowns we observed.
    fault::FaultConfig fcfg;
    fcfg.enabled = true;
    fcfg.bitErrorRate = 0.05;
    fault::Injector injector(fcfg, 7);
    FaultTlcFixture f(tlc::baseTlc(), &injector);

    const int requests = 64;
    double queue_sum = 0.0, wire_sum = 0.0, bank_sum = 0.0,
           dram_sum = 0.0;
    for (int i = 0; i < requests; ++i) {
        Addr addr = static_cast<Addr>(0x40 + i * 0x430);
        f.cache.accessFunctional(addr, AccessType::Load);
        Tick issue = static_cast<Tick>(1000 + i * 400);
        Tick done = 0;
        f.cache.access(addr, AccessType::Load, issue,
                       [&](Tick t) { done = t; });
        f.eq.run();
        const trace::LatencyBreakdown &bd = f.cache.lastBreakdown();
        EXPECT_DOUBLE_EQ(bd.total(),
                         static_cast<double>(done - issue))
            << "request " << i;
        queue_sum += bd.queueWait;
        wire_sum += bd.wire;
        bank_sum += bd.bank;
        dram_sum += bd.dram;
    }
    // The error stream actually fired (otherwise this tests nothing).
    EXPECT_GT(injector.errorsInjected(), 0u);

    // Exact-sum invariant: the Distribution's running sum equals the
    // accumulated breakdowns bit for bit — log bucketing never
    // perturbs it.
    EXPECT_DOUBLE_EQ(f.cache.queueWaitLatency.sum(), queue_sum);
    EXPECT_DOUBLE_EQ(f.cache.wireLatency.sum(), wire_sum);
    EXPECT_DOUBLE_EQ(f.cache.bankLatency.sum(), bank_sum);
    EXPECT_DOUBLE_EQ(f.cache.dramLatency.sum(), dram_sum);

    // Every sample landed in exactly one log2 bucket, and the
    // percentile view built on them is ordered.
    for (const stats::Distribution *dist :
         {&f.cache.queueWaitLatency, &f.cache.wireLatency,
          &f.cache.bankLatency, &f.cache.dramLatency}) {
        EXPECT_EQ(dist->count(), static_cast<std::uint64_t>(requests));
        EXPECT_EQ(logBucketTotal(*dist), dist->count());
        EXPECT_LE(dist->p50(), dist->p95());
        EXPECT_LE(dist->p95(), dist->p99());
        EXPECT_GE(dist->p50(), 0.0);
    }
}

TEST(Breakdown, DistributionPercentilesCoverOutOfRangeSamples)
{
    stats::StatGroup root("root");
    stats::Distribution dist(&root, "d", "test", 0.0, 10.0, 10);
    // 90 in-range samples and 10 far past hi: quantile() saturates at
    // hi, while percentile() keeps resolving the tail.
    for (int i = 0; i < 90; ++i)
        dist.sample(5.0);
    for (int i = 0; i < 10; ++i)
        dist.sample(5000.0);

    EXPECT_EQ(dist.overflow(), 10u);
    EXPECT_DOUBLE_EQ(dist.sum(), 90 * 5.0 + 10 * 5000.0);
    EXPECT_EQ(logBucketTotal(dist), 100u);
    EXPECT_LT(dist.p50(), 10.0);
    EXPECT_GT(dist.p95(), 1000.0); // sees past the linear range
    EXPECT_GE(dist.p99(), dist.p95());
}

TEST(Breakdown, AccumulatesAcrossComponents)
{
    trace::LatencyBreakdown a{1.0, 2.0, 3.0, 4.0};
    trace::LatencyBreakdown b{10.0, 20.0, 30.0, 40.0};
    a += b;
    EXPECT_DOUBLE_EQ(a.queueWait, 11.0);
    EXPECT_DOUBLE_EQ(a.wire, 22.0);
    EXPECT_DOUBLE_EQ(a.bank, 33.0);
    EXPECT_DOUBLE_EQ(a.dram, 44.0);
    EXPECT_DOUBLE_EQ(a.total(), 110.0);
}
