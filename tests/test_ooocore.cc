/**
 * @file
 * Unit tests for the trace-driven OoO core timing model.
 */

#include <gtest/gtest.h>

#include <deque>

#include "cpu/ooocore.hh"
#include "mem/dram.hh"
#include "mem/l1cache.hh"
#include "mem/l2cache.hh"
#include "sim/eventq.hh"

using namespace tlsim;
using namespace tlsim::cpu;
using namespace tlsim::mem;

namespace
{

/** Fixed-latency L2 stub. */
class FixedL2 : public L2Cache
{
  public:
    FixedL2(EventQueue &eq, stats::StatGroup *parent, Dram &dram,
            Cycles latency)
        : L2Cache("fixed_l2", eq, parent, dram), latency(latency)
    {}

    using L2Cache::access;

    void
    access(const MemRequest &req, RespCallback cb) override
    {
        if (req.type == AccessType::Store) {
            cb(req.issued);
            return;
        }
        Tick done = req.issued + latency;
        eventq.scheduleFunc(done,
                            [cb = std::move(cb), done]() { cb(done); });
    }

    void accessFunctional(Addr, AccessType) override {}
    int linkCount() const override { return 0; }
    std::string designName() const override { return "fixed"; }

    Cycles latency;
};

/** Scripted trace source. */
class ScriptedTrace : public TraceSource
{
  public:
    explicit ScriptedTrace(std::deque<TraceRecord> recs)
        : records(std::move(recs))
    {}

    TraceRecord
    next() override
    {
        if (records.empty()) {
            TraceRecord filler;
            filler.gap = 1000;
            filler.isIFetch = true;
            filler.blockAddr = 0xF000;
            return filler;
        }
        TraceRecord rec = records.front();
        records.pop_front();
        return rec;
    }

    std::deque<TraceRecord> records;
};

struct Fixture
{
    explicit Fixture(Cycles l2_latency = 20, CoreConfig cfg = {})
        : root("root"), dram(eq, &root), l2(eq, &root, dram, l2_latency),
          l1i("l1i", eq, &root, l2, 64 * 1024, 2, 3, 4),
          l1d("l1d", eq, &root, l2, 64 * 1024, 2, 3, 8),
          core(eq, &root, l1i, l1d, cfg)
    {}

    EventQueue eq;
    stats::StatGroup root;
    Dram dram;
    FixedL2 l2;
    L1Cache l1i, l1d;
    OoOCore core;
};

TraceRecord
loadRec(Addr addr, std::uint32_t gap = 0, bool dep = false)
{
    TraceRecord rec;
    rec.gap = gap;
    rec.type = AccessType::Load;
    rec.blockAddr = addr;
    rec.dependsOnPrev = dep;
    return rec;
}

} // namespace

TEST(OoOCore, IdealIpcIsWidth)
{
    Fixture f;
    ScriptedTrace trace({});
    std::uint64_t cycles = f.core.run(trace, 100000);
    double ipc = 100000.0 / static_cast<double>(cycles);
    EXPECT_NEAR(ipc, 4.0, 0.1);
}

TEST(OoOCore, FetchQuantaCapsIpc)
{
    CoreConfig cfg;
    cfg.fetchQuanta = 4; // 1 IPC ceiling
    Fixture f(20, cfg);
    ScriptedTrace trace({});
    std::uint64_t cycles = f.core.run(trace, 50000);
    EXPECT_NEAR(50000.0 / cycles, 1.0, 0.05);
}

TEST(OoOCore, IndependentMissesOverlap)
{
    Fixture f(200);
    // Two independent loads to different blocks: their L2 latencies
    // overlap inside the ROB.
    ScriptedTrace trace({loadRec(0x100), loadRec(0x200)});
    std::uint64_t cycles = f.core.run(trace, 10);
    EXPECT_LT(cycles, 280u); // ~1 latency, not 2
    EXPECT_EQ(f.core.loads.value(), 2.0);
}

TEST(OoOCore, DependentMissesSerialize)
{
    Fixture f(200);
    ScriptedTrace trace({loadRec(0x100), loadRec(0x200, 0, true)});
    std::uint64_t cycles = f.core.run(trace, 10);
    EXPECT_GT(cycles, 400u); // two serialized L2 accesses
}

TEST(OoOCore, LoadMissBlocksRetirementViaRob)
{
    // One miss plus more instructions than the ROB holds: execution
    // time is bounded below by the miss latency.
    Fixture f(500);
    ScriptedTrace trace({loadRec(0x100)});
    std::uint64_t cycles = f.core.run(trace, 1000);
    EXPECT_GT(cycles, 400u);
}

TEST(OoOCore, StoresDoNotStall)
{
    Fixture f(500);
    TraceRecord store;
    store.type = AccessType::Store;
    store.blockAddr = 0x300;
    ScriptedTrace trace({store});
    std::uint64_t cycles = f.core.run(trace, 1000);
    EXPECT_LT(cycles, 300u);
    EXPECT_EQ(f.core.stores.value(), 1.0);
}

TEST(OoOCore, MispredictAddsPenalty)
{
    Fixture base;
    ScriptedTrace clean({});
    std::uint64_t clean_cycles = base.core.run(clean, 10000);

    Fixture f;
    std::deque<TraceRecord> recs;
    for (int i = 0; i < 100; ++i) {
        TraceRecord rec;
        rec.isIFetch = true;
        rec.gap = 100;
        rec.blockAddr = 0xF00;
        rec.mispredict = true;
        recs.push_back(rec);
    }
    ScriptedTrace trace(std::move(recs));
    std::uint64_t cycles = f.core.run(trace, 10000);
    // ~100 mispredicts x 25 cycles on top of the clean time.
    EXPECT_GT(cycles, clean_cycles + 1500);
    EXPECT_GE(f.core.mispredicts.value(), 95.0);
}

TEST(OoOCore, IFetchMissStallsFrontend)
{
    Fixture f(300);
    std::deque<TraceRecord> recs;
    TraceRecord ifetch;
    ifetch.isIFetch = true;
    ifetch.gap = 0;
    ifetch.blockAddr = 0xABC;
    recs.push_back(ifetch);
    ScriptedTrace trace(std::move(recs));
    std::uint64_t cycles = f.core.run(trace, 1000);
    EXPECT_GT(cycles, 300u);
    EXPECT_EQ(f.core.ifetchStalls.value(), 1.0);
}

TEST(OoOCore, InstructionAccountingExact)
{
    Fixture f;
    ScriptedTrace trace({loadRec(0x1, 7), loadRec(0x2, 3)});
    f.core.run(trace, 5000);
    EXPECT_EQ(f.core.instructions.value(), 5000.0);
    EXPECT_EQ(f.core.instructionsRetired(), 5000u);
}

TEST(OoOCore, ConsecutiveRunsAccumulate)
{
    Fixture f;
    ScriptedTrace trace({});
    f.core.run(trace, 1000);
    std::uint64_t mid = f.core.currentCycle();
    f.core.run(trace, 1000);
    EXPECT_GT(f.core.currentCycle(), mid);
    EXPECT_EQ(f.core.instructionsRetired(), 2000u);
}

TEST(OoOCore, IpcFormula)
{
    Fixture f;
    ScriptedTrace trace({});
    f.core.run(trace, 4000);
    EXPECT_NEAR(f.core.ipc.value(), 4.0, 0.2);
}
