/**
 * @file
 * Unit tests for the radix-2 FFT.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <vector>

#include "phys/fft.hh"
#include "sim/rng.hh"

using namespace tlsim;
using namespace tlsim::phys;

using CVec = std::vector<std::complex<double>>;

TEST(Fft, PowerOfTwoCheck)
{
    EXPECT_TRUE(isPowerOfTwo(1));
    EXPECT_TRUE(isPowerOfTwo(2));
    EXPECT_TRUE(isPowerOfTwo(1024));
    EXPECT_FALSE(isPowerOfTwo(0));
    EXPECT_FALSE(isPowerOfTwo(3));
    EXPECT_FALSE(isPowerOfTwo(1000));
}

TEST(Fft, NonPowerOfTwoPanics)
{
    CVec data(12, {1.0, 0.0});
    EXPECT_THROW(fft(data), PanicError);
}

TEST(Fft, ImpulseGivesFlatSpectrum)
{
    CVec data(8, {0.0, 0.0});
    data[0] = {1.0, 0.0};
    fft(data);
    for (const auto &bin : data) {
        EXPECT_NEAR(bin.real(), 1.0, 1e-12);
        EXPECT_NEAR(bin.imag(), 0.0, 1e-12);
    }
}

TEST(Fft, DcSignalGivesSingleBin)
{
    CVec data(16, {1.0, 0.0});
    fft(data);
    EXPECT_NEAR(data[0].real(), 16.0, 1e-9);
    for (std::size_t k = 1; k < data.size(); ++k)
        EXPECT_NEAR(std::abs(data[k]), 0.0, 1e-9);
}

TEST(Fft, SineConcentratesInOneBin)
{
    const std::size_t n = 64;
    CVec data(n);
    for (std::size_t i = 0; i < n; ++i) {
        data[i] = {std::sin(2.0 * M_PI * 5.0 * i / n), 0.0};
    }
    fft(data);
    // Energy at bins 5 and n-5 only.
    EXPECT_NEAR(std::abs(data[5]), n / 2.0, 1e-9);
    EXPECT_NEAR(std::abs(data[n - 5]), n / 2.0, 1e-9);
    EXPECT_NEAR(std::abs(data[3]), 0.0, 1e-9);
}

TEST(Fft, RoundTripIdentity)
{
    Rng rng(42);
    CVec data(256);
    for (auto &x : data)
        x = {rng.real() - 0.5, rng.real() - 0.5};
    CVec orig = data;
    fft(data);
    ifft(data);
    for (std::size_t i = 0; i < data.size(); ++i) {
        EXPECT_NEAR(data[i].real(), orig[i].real(), 1e-10);
        EXPECT_NEAR(data[i].imag(), orig[i].imag(), 1e-10);
    }
}

TEST(Fft, Linearity)
{
    Rng rng(7);
    CVec a(64), b(64), sum(64);
    for (std::size_t i = 0; i < 64; ++i) {
        a[i] = {rng.real(), 0.0};
        b[i] = {rng.real(), 0.0};
        sum[i] = a[i] + b[i];
    }
    fft(a);
    fft(b);
    fft(sum);
    for (std::size_t i = 0; i < 64; ++i)
        EXPECT_NEAR(std::abs(sum[i] - a[i] - b[i]), 0.0, 1e-9);
}

TEST(Fft, ParsevalEnergyConserved)
{
    Rng rng(9);
    CVec data(128);
    double time_energy = 0.0;
    for (auto &x : data) {
        x = {rng.real() - 0.5, 0.0};
        time_energy += std::norm(x);
    }
    fft(data);
    double freq_energy = 0.0;
    for (const auto &x : data)
        freq_energy += std::norm(x);
    EXPECT_NEAR(freq_energy, 128.0 * time_energy, 1e-6);
}

/** Property: round trip holds across sizes. */
class FftSizeSweep : public ::testing::TestWithParam<std::size_t>
{};

TEST_P(FftSizeSweep, RoundTrip)
{
    std::size_t n = GetParam();
    Rng rng(n);
    CVec data(n);
    for (auto &x : data)
        x = {rng.real(), rng.real()};
    CVec orig = data;
    fft(data);
    ifft(data);
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_NEAR(std::abs(data[i] - orig[i]), 0.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sizes, FftSizeSweep,
                         ::testing::Values(2, 4, 8, 64, 512, 4096));
