/**
 * @file
 * Unit tests for the transmission-line latency/energy/circuit model.
 */

#include <gtest/gtest.h>

#include "sim/logging.hh"

#include "phys/transline.hh"

using namespace tlsim::phys;

TEST(TransLine, FlightCyclesOneForTlcLengths)
{
    // All TLC routed lengths (0.9-1.3 cm) fly in a single 10 GHz
    // cycle — the basis of the Table 2 latency decomposition.
    for (double len : {0.9e-2, 1.1e-2, 1.3e-2}) {
        TransmissionLine line(tech45(), len);
        EXPECT_EQ(line.flightCycles(), 1) << "length " << len;
    }
}

TEST(TransLine, FlightTimeMatchesVelocity)
{
    TransmissionLine line(tech45(), 1.0e-2);
    EXPECT_NEAR(line.flightTime() * line.velocity(), 1.0e-2, 1e-9);
}

TEST(TransLine, Z0InOnChipRange)
{
    for (double len : {0.9e-2, 1.1e-2, 1.3e-2}) {
        TransmissionLine line(tech45(), len);
        EXPECT_GT(line.z0(), 20.0);
        EXPECT_LT(line.z0(), 120.0);
    }
}

TEST(TransLine, EnergyPerBitAboutAPicojoule)
{
    TransmissionLine line(tech45(), 1.1e-2);
    double pj = line.energyPerBit() / 1e-12;
    EXPECT_GT(pj, 0.3);
    EXPECT_LT(pj, 3.0);
}

TEST(TransLine, EnergyIndependentOfLength)
{
    // Unlike RC wires, the launch energy depends on Z0 and bit time,
    // not on the wire's length.
    TransmissionLine a(tech45(), 0.9e-2);
    TransmissionLine b(tech45(), 1.3e-2);
    EXPECT_NEAR(a.energyPerBit() / b.energyPerBit(), 1.0, 0.5);
}

TEST(TransLine, AttenuationReasonable)
{
    TransmissionLine line(tech45(), 1.3e-2);
    double atten = line.incidentAttenuation();
    EXPECT_GT(atten, 0.4);
    EXPECT_LT(atten, 1.0);
}

TEST(TransLine, ShorterLineLessAttenuation)
{
    TransmissionLine a(tech45(), 0.9e-2);
    TransmissionLine b(tech45(), 1.3e-2);
    EXPECT_GT(a.incidentAttenuation(), b.incidentAttenuation());
}

TEST(TransLine, TransistorCountPerLine)
{
    // Driver + receiver: ~90 devices (Table 8: 2048 lines -> 1.9e5).
    int n = TransmissionLine::transistorsPerLine();
    EXPECT_GT(n, 50);
    EXPECT_LT(n, 150);
}

TEST(TransLine, DriverGateWidthImpedanceSized)
{
    TransmissionLine line(tech45(), 1.1e-2);
    // Matching ~40-60 ohm lines from a 25 kOhm/min-width process
    // needs hundreds of minimum widths.
    double lambda = line.gateWidthLambda();
    EXPECT_GT(lambda, 2000.0);
    EXPECT_LT(lambda, 20000.0);
}

TEST(TransLine, NonPositiveLengthPanics)
{
    EXPECT_THROW(TransmissionLine(tech45(), 0.0), tlsim::PanicError);
}
