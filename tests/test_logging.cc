/**
 * @file
 * Unit tests for the logging / string formatting primitives.
 */

#include <gtest/gtest.h>

#include "sim/logging.hh"

using namespace tlsim;

namespace
{

struct QuietGuard
{
    QuietGuard() { logging_detail::quiet = true; }
    ~QuietGuard() { logging_detail::quiet = false; }
};

} // namespace

TEST(Csprintf, NoPlaceholders)
{
    EXPECT_EQ(csprintf("hello"), "hello");
}

TEST(Csprintf, SingleSubstitution)
{
    EXPECT_EQ(csprintf("value={}", 42), "value=42");
}

TEST(Csprintf, MultipleSubstitutions)
{
    EXPECT_EQ(csprintf("{} + {} = {}", 1, 2, 3), "1 + 2 = 3");
}

TEST(Csprintf, StringArguments)
{
    EXPECT_EQ(csprintf("name: {}", std::string("tlc")), "name: tlc");
}

TEST(Csprintf, MixedTypes)
{
    EXPECT_EQ(csprintf("{}-{}-{}", "a", 1, 2.5), "a-1-2.5");
}

TEST(Csprintf, SurplusArgumentsAppended)
{
    EXPECT_EQ(csprintf("x={}", 1, 2), "x=1 2");
}

TEST(Csprintf, SurplusPlaceholdersKept)
{
    EXPECT_EQ(csprintf("{} {}", 7), "7 {}");
}

TEST(Csprintf, EmptyFormat)
{
    EXPECT_EQ(csprintf(""), "");
}

TEST(Csprintf, PlaceholderAtStart)
{
    EXPECT_EQ(csprintf("{} end", 5), "5 end");
}

TEST(Csprintf, EscapedBraces)
{
    EXPECT_EQ(csprintf("{{}}"), "{}");
    EXPECT_EQ(csprintf("json: {{\"k\": {}}}", 3), "json: {\"k\": 3}");
}

TEST(Csprintf, EscapedBracesAroundPlaceholder)
{
    EXPECT_EQ(csprintf("{{{}}}", 1), "{1}");
}

TEST(Csprintf, EscapedBracesWithoutArguments)
{
    EXPECT_EQ(csprintf("set {{1, 2}}"), "set {1, 2}");
}

TEST(Csprintf, EscapedBracesInTailAfterArgsExhausted)
{
    // The tail flush (after all arguments are consumed) must still
    // resolve doubled braces while keeping surplus placeholders.
    EXPECT_EQ(csprintf("{} {{x}} {}", 7), "7 {x} {}");
}

TEST(Csprintf, LoneBracesUntouched)
{
    EXPECT_EQ(csprintf("a { b } c"), "a { b } c");
}

TEST(Logging, PanicThrowsPanicError)
{
    QuietGuard guard;
    EXPECT_THROW(panic("boom {}", 1), PanicError);
}

TEST(Logging, FatalThrowsFatalError)
{
    QuietGuard guard;
    EXPECT_THROW(fatal("config error"), FatalError);
}

TEST(Logging, PanicMessageContainsFormattedText)
{
    QuietGuard guard;
    try {
        panic("bad tick {}", 99);
        FAIL() << "panic did not throw";
    } catch (const PanicError &err) {
        EXPECT_NE(std::string(err.what()).find("bad tick 99"),
                  std::string::npos);
    }
}

TEST(Logging, AssertMacroPassesOnTrue)
{
    TLSIM_ASSERT(1 + 1 == 2, "math works");
    SUCCEED();
}

TEST(Logging, AssertMacroThrowsOnFalse)
{
    QuietGuard guard;
    EXPECT_THROW(TLSIM_ASSERT(false, "nope"), PanicError);
}

TEST(Logging, WarnAndInformDoNotThrow)
{
    QuietGuard guard;
    warn("just a warning {}", 1);
    inform("status {}", 2);
    SUCCEED();
}
